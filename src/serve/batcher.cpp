#include "serve/batcher.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace wknng::serve {

const char* query_status_name(QueryStatus s) {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kTimeout: return "timeout";
    case QueryStatus::kShed: return "shed";
    case QueryStatus::kFailed: return "failed";
  }
  return "unknown";
}

MicroBatcher::MicroBatcher(std::size_t max_batch, std::uint64_t max_delay_us,
                           std::size_t capacity)
    : max_batch_(std::max<std::size_t>(1, max_batch)),
      max_delay_(std::chrono::microseconds(max_delay_us)),
      capacity_(capacity) {
  WKNNG_CHECK_MSG(capacity_ > 0, "batcher capacity must be positive");
}

bool MicroBatcher::push(Request&& r) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(r));
  }
  ready_cv_.notify_one();
  return true;
}

std::vector<Request> MicroBatcher::next_batch() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    ready_cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // closed and drained

    // A batch is open: flush when full, when the oldest request has waited
    // its delay budget, or at close. wait_until re-checks because another
    // executor may steal the queue while we sleep.
    const auto flush_at = queue_.front().enqueued + max_delay_;
    ready_cv_.wait_until(lock, flush_at, [&] {
      return closed_ || queue_.size() >= max_batch_ || queue_.empty();
    });
    if (queue_.empty()) continue;  // raced with another executor

    const std::size_t take = std::min(max_batch_, queue_.size());
    std::vector<Request> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    // More work may remain (e.g. close() flushed a long backlog): let the
    // next executor start forming its batch immediately.
    if (!queue_.empty()) ready_cv_.notify_one();
    return batch;
  }
}

void MicroBatcher::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_cv_.notify_all();
}

std::size_t MicroBatcher::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool MicroBatcher::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace wknng::serve
