#include "serve/snapshot.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "opt/optimize.hpp"

namespace wknng::serve {

std::shared_ptr<const GraphSnapshot> with_serving_layout(
    ThreadPool& pool, const std::shared_ptr<const GraphSnapshot>& snap,
    const opt::OptimizeOptions& options) {
  WKNNG_CHECK_MSG(snap != nullptr, "cannot optimize a null snapshot");
  auto next = std::make_shared<GraphSnapshot>(*snap);
  next->serving = std::make_shared<const opt::ServingGraph>(
      opt::optimize_serving(pool, snap->base, snap->graph, options,
                            snap->exclusion_mask(), snap->version));
  // The layout's baked exclude is this snapshot's tombstones; no separate
  // publish-time mask needed for a freshly-built layout.
  next->serving_exclude = nullptr;
  return next;
}

}  // namespace wknng::serve
