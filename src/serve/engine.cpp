#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace wknng::serve {

using Clock = std::chrono::steady_clock;

namespace {

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

ServeEngine::ServeEngine(ThreadPool& pool, ServeOptions options,
                         std::shared_ptr<const GraphSnapshot> initial)
    : pool_(&pool),
      options_(options),
      slot_(std::move(initial)),
      batcher_(options.max_batch, options.max_delay_us,
               options.queue_capacity) {
  WKNNG_CHECK_MSG(slot_.current() != nullptr,
                  "ServeEngine needs an initial snapshot");
  WKNNG_CHECK_MSG(options_.workers > 0, "ServeEngine needs >= 1 worker");
  if (options_.rerank_depth != 0) {
    options_.search.rerank_depth = options_.rerank_depth;
  }
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ServeEngine::~ServeEngine() { stop(); }

std::future<QueryResult> ServeEngine::submit(std::vector<float> query,
                                             std::uint64_t deadline_us,
                                             std::uint64_t tag) {
  return submit_impl(std::move(query), deadline_us,
                     next_id_.fetch_add(1, std::memory_order_relaxed), tag);
}

std::future<QueryResult> ServeEngine::submit(std::vector<float> query,
                                             std::uint64_t deadline_us) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return submit_impl(std::move(query), deadline_us, id, /*tag=*/id);
}

std::future<QueryResult> ServeEngine::submit_impl(std::vector<float> query,
                                                  std::uint64_t deadline_us,
                                                  std::uint64_t id,
                                                  std::uint64_t tag) {
  const auto snap = slot_.current();
  WKNNG_CHECK_MSG(query.size() == snap->base.cols(),
                  "query dim " << query.size() << " != base dim "
                               << snap->base.cols());

  Request r;
  r.id = id;
  r.tag = tag;
  r.query = std::move(query);
  r.enqueued = Clock::now();
  const std::uint64_t effective =
      deadline_us != 0 ? deadline_us : options_.default_deadline_us;
  if (effective != 0) {
    r.deadline = r.enqueued + std::chrono::microseconds(effective);
  }
  std::future<QueryResult> fut = r.promise.get_future();

  metrics_.enqueued.add();
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (stopped_.load(std::memory_order_acquire) || !batcher_.push(std::move(r))) {
    QueryResult qr;
    qr.status = QueryStatus::kShed;
    std::ostringstream os;
    os << "OverloadShed: request " << r.id << " rejected at admission ("
       << (stopped_.load(std::memory_order_acquire) ? "engine stopped"
                                                    : "queue full")
       << ")";
    qr.error = os.str();
    metrics_.shed.add();
    finish(r, std::move(qr), Clock::now());
  }
  return fut;
}

void ServeEngine::publish(std::shared_ptr<const GraphSnapshot> next) {
  WKNNG_CHECK_MSG(next != nullptr, "cannot publish a null snapshot");
  slot_.publish(std::move(next));
  metrics_.snapshots_published.add();
}

void ServeEngine::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void ServeEngine::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  batcher_.close();  // executors drain the backlog, then exit
  for (auto& t : workers_) t.join();
  workers_.clear();
}

void ServeEngine::worker_loop() {
  while (true) {
    std::vector<Request> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained
    run_batch(std::move(batch));
  }
}

void ServeEngine::finish(Request& r, QueryResult qr, Clock::time_point now) {
  qr.request_id = r.id;
  qr.tag = r.tag;
  qr.total_us = us_between(r.enqueued, now);
  metrics_.latency_us.record(qr.total_us);
  metrics_.completed.add();
  r.promise.set_value(std::move(qr));
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drain_cv_.notify_all();
  }
}

void ServeEngine::run_batch(std::vector<Request> batch) {
  const auto dispatched = Clock::now();
  metrics_.batches.add();
  metrics_.batch_size.record(static_cast<double>(batch.size()));

  // Serve-batch span: id is counter-hashed from a monotone batch index, so
  // the id sequence is deterministic even though batch *composition* depends
  // on arrival timing. The span covers triage + kernel + fan-out.
  std::optional<obs::Span> span;
  obs::Tracer* tr = options_.obs.trace ? obs::active_tracer() : nullptr;
  if (tr != nullptr) {
    const std::uint64_t idx =
        batch_index_.fetch_add(1, std::memory_order_relaxed);
    span.emplace(tr, "serve_batch", "serve",
                 obs::Tracer::span_id(idx, 0, 0, obs::SpanSalt::kServeBatch),
                 obs::kTrackServe);
    span->arg_num("size", static_cast<std::uint64_t>(batch.size()));
  }

  // Deadline triage: expired requests get typed timeout results and are
  // never executed — the engine sheds their work, not just their response.
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& r : batch) {
    if (dispatched > r.deadline) {
      QueryResult qr;
      qr.status = QueryStatus::kTimeout;
      std::ostringstream os;
      os << "DeadlineExceeded: request " << r.id
         << " expired before dispatch (waited "
         << us_between(r.enqueued, dispatched) << " us)";
      qr.error = os.str();
      qr.queue_us = us_between(r.enqueued, dispatched);
      metrics_.queue_us.record(qr.queue_us);
      metrics_.timed_out.add();
      metrics_.rejected_deadline.add();
      finish(r, std::move(qr), dispatched);
    } else {
      live.push_back(std::move(r));
    }
  }
  if (span) span->arg_num("live", static_cast<std::uint64_t>(live.size()));
  if (live.empty()) return;

  const std::shared_ptr<const GraphSnapshot> snap = slot_.current();
  if (span) {
    span->arg_num("snapshot_version",
                  static_cast<std::uint64_t>(snap->version));
  }
  FloatMatrix queries(live.size(), snap->base.cols());
  std::vector<std::uint64_t> tags(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    std::copy(live[i].query.begin(), live[i].query.end(),
              queries.row(i).begin());
    tags[i] = live[i].tag;
  }

  // Compressed tier: score through the snapshot's codes when it carries
  // them. The view aliases `snap`, which this batch keeps pinned.
  const kernels::Sq8View sq8 = snap->sq8_view();

  core::BatchSearchResult result;
  try {
    result = core::graph_search_batch(*pool_, snap->base, snap->graph,
                                      queries, tags, options_.search,
                                      &scratch_, nullptr,
                                      sq8.valid() ? &sq8 : nullptr,
                                      snap->exclusion_mask());
  } catch (const std::exception& e) {
    // A failed batch (e.g. an injected LaunchAllocError) answers every
    // request with a typed failure; the engine itself stays live.
    const auto now = Clock::now();
    for (Request& r : live) {
      QueryResult qr;
      qr.status = QueryStatus::kFailed;
      qr.snapshot_version = snap->version;
      qr.queue_us = us_between(r.enqueued, dispatched);
      metrics_.queue_us.record(qr.queue_us);
      qr.error = e.what();
      metrics_.failed.add();
      finish(r, std::move(qr), now);
    }
    return;
  }

  const auto done = Clock::now();
  metrics_.queries.add(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    Request& r = live[i];
    QueryResult qr;
    qr.snapshot_version = snap->version;
    qr.points_visited = result.visits[i];
    qr.queue_us = us_between(r.enqueued, dispatched);
    metrics_.queue_us.record(qr.queue_us);
    metrics_.points_visited.add(result.visits[i]);
    metrics_.visited.record(static_cast<double>(result.visits[i]));
    const auto row = result.results.row(i);
    const std::size_t valid = result.results.row_size(i);
    qr.neighbors.assign(row.begin(), row.begin() + valid);
    if (snap->external_ids != nullptr) {
      // Dynamic snapshot: answers carry stable external ids, so a client's
      // view of a point never changes when compaction rewrites rows.
      for (Neighbor& nb : qr.neighbors) nb.id = snap->external_id(nb.id);
    }
    if (done > r.deadline) {
      qr.status = QueryStatus::kTimeout;  // late result: neighbors included
      std::ostringstream os;
      os << "DeadlineExceeded: request " << r.id << " completed "
         << us_between(r.deadline, done) << " us past its deadline";
      qr.error = os.str();
      metrics_.timed_out.add();
    } else {
      metrics_.ok.add();
    }
    finish(r, std::move(qr), done);
  }
}

}  // namespace wknng::serve
