#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"

namespace wknng::serve {

using Clock = std::chrono::steady_clock;

namespace {

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

obs::RequestOutcome outcome_of(QueryStatus s) {
  switch (s) {
    case QueryStatus::kOk: return obs::RequestOutcome::kOk;
    case QueryStatus::kTimeout: return obs::RequestOutcome::kTimeout;
    case QueryStatus::kShed: return obs::RequestOutcome::kShed;
    case QueryStatus::kFailed: return obs::RequestOutcome::kFailed;
  }
  return obs::RequestOutcome::kFailed;
}

}  // namespace

ServeEngine::ServeEngine(ThreadPool& pool, ServeOptions options,
                         std::shared_ptr<const GraphSnapshot> initial)
    : pool_(&pool),
      options_(options),
      slot_(std::move(initial)),
      batcher_(options.max_batch, options.max_delay_us,
               options.queue_capacity) {
  WKNNG_CHECK_MSG(slot_.current() != nullptr,
                  "ServeEngine needs an initial snapshot");
  WKNNG_CHECK_MSG(options_.workers > 0, "ServeEngine needs >= 1 worker");
  if (options_.rerank_depth != 0) {
    options_.search.rerank_depth = options_.rerank_depth;
  }
  // Admission validation at construction: a misconfigured engine (k == 0,
  // entry_sample == 0) throws SearchParamError here, before any thread
  // starts, instead of failing every query.
  core::validate_search_params(options_.search);
  if (options_.adaptive_budget) {
    budget_ = std::make_unique<opt::BudgetController>(options_.budget);
  }
  if (options_.slo) {
    slo_ = std::make_unique<obs::SloTracker>(options_.slo_options);
  }
  if (options_.audit.fraction > 0.0) {
    auditor_ = std::make_unique<obs::RecallAuditor>(options_.audit);
    auditor_->attach_slo(slo_.get());
  }
  if (options_.optimize) {
    const auto snap = slot_.current();
    if (snap->serving_layout() == nullptr) {
      slot_.publish(
          with_serving_layout(*pool_, snap, options_.optimize_options));
    }
  }
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ServeEngine::~ServeEngine() { stop(); }

std::future<QueryResult> ServeEngine::submit(std::vector<float> query,
                                             std::uint64_t deadline_us,
                                             std::uint64_t tag) {
  return submit_impl(std::move(query), deadline_us,
                     next_id_.fetch_add(1, std::memory_order_relaxed), tag);
}

std::future<QueryResult> ServeEngine::submit(std::vector<float> query,
                                             std::uint64_t deadline_us) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return submit_impl(std::move(query), deadline_us, id, /*tag=*/id);
}

std::future<QueryResult> ServeEngine::submit_impl(std::vector<float> query,
                                                  std::uint64_t deadline_us,
                                                  std::uint64_t id,
                                                  std::uint64_t tag) {
  const auto snap = slot_.current();
  WKNNG_CHECK_MSG(query.size() == snap->base.cols(),
                  "query dim " << query.size() << " != base dim "
                               << snap->base.cols());

  Request r;
  r.id = id;
  r.tag = tag;
  r.query = std::move(query);
  r.enqueued = Clock::now();
  const std::uint64_t effective =
      deadline_us != 0 ? deadline_us : options_.default_deadline_us;
  if (effective != 0) {
    r.deadline = r.enqueued + std::chrono::microseconds(effective);
  }
  std::future<QueryResult> fut = r.promise.get_future();

  metrics_.enqueued.add();
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (stopped_.load(std::memory_order_acquire) || !batcher_.push(std::move(r))) {
    QueryResult qr;
    qr.status = QueryStatus::kShed;
    // A shed response still names the graph that would have answered it, so
    // flight records and audits join on snapshot_version for every outcome.
    qr.snapshot_version = snap->version;
    std::ostringstream os;
    os << "OverloadShed: request " << r.id << " rejected at admission ("
       << (stopped_.load(std::memory_order_acquire) ? "engine stopped"
                                                    : "queue full")
       << ")";
    qr.error = os.str();
    metrics_.shed.add();
    finish(r, std::move(qr), Clock::now());
  }
  return fut;
}

void ServeEngine::publish(std::shared_ptr<const GraphSnapshot> next) {
  WKNNG_CHECK_MSG(next != nullptr, "cannot publish a null snapshot");
  if (options_.optimize && next->serving_layout() == nullptr) {
    // The publisher pays for the layout build; query threads only ever see
    // the finished snapshot land atomically.
    next = with_serving_layout(*pool_, next, options_.optimize_options);
  }
  const std::uint64_t version = next->version;
  slot_.publish(std::move(next));
  metrics_.snapshots_published.add();
  if (slo_) slo_->note_publication(version);
}

void ServeEngine::drain() {
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [&] {
      return in_flight_.load(std::memory_order_acquire) == 0;
    });
  }
  if (auditor_) auditor_->drain();
}

void ServeEngine::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  batcher_.close();  // executors drain the backlog, then exit
  for (auto& t : workers_) t.join();
  workers_.clear();
  if (auditor_) auditor_->drain();
}

void ServeEngine::worker_loop() {
  while (true) {
    std::vector<Request> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained
    run_batch(std::move(batch));
  }
}

void ServeEngine::finish(Request& r, QueryResult qr, Clock::time_point now,
                         const BatchContext* ctx) {
  qr.request_id = r.id;
  qr.tag = r.tag;
  qr.total_us = us_between(r.enqueued, now);
  metrics_.latency_us.record(qr.total_us);
  metrics_.completed.add();
  if (slo_) {
    // Windows tick on the request *tag* (the loadgen's request counter), not
    // the submission id: tags are a pure function of the workload, so window
    // membership replays bit-identically under any thread interleaving.
    slo_->record_request(r.tag, qr.total_us, outcome_of(qr.status),
                         ctx != nullptr ? ctx->escalations : 0);
  }
  if (obs::FlightRecorder* fr = obs::active_flight_recorder()) {
    obs::FlightRecord rec;
    rec.request_id = r.id;
    rec.tag = r.tag;
    rec.snapshot_version = qr.snapshot_version;
    rec.span_id = ctx != nullptr ? ctx->span_id : 0;
    rec.visits = qr.points_visited;
    rec.budget_rung = ctx != nullptr ? ctx->budget_rung : 0;
    rec.escalations = ctx != nullptr ? ctx->escalations : 0;
    rec.batch_size = ctx != nullptr ? ctx->batch_size : 0;
    rec.entry_keep = static_cast<std::uint32_t>(options_.search.entry_keep);
    rec.status = static_cast<std::uint8_t>(qr.status);
    rec.queue_us = qr.queue_us;
    rec.total_us = qr.total_us;
    fr->record(rec);
  }
  r.promise.set_value(std::move(qr));
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drain_cv_.notify_all();
  }
}

void ServeEngine::maybe_audit(const Request& r, const QueryResult& qr,
                              const std::shared_ptr<const GraphSnapshot>& snap) {
  if (!auditor_ || qr.neighbors.empty() || !auditor_->should_sample(r.tag)) {
    return;
  }
  std::vector<std::uint32_t> served;
  served.reserve(qr.neighbors.size());
  for (const Neighbor& nb : qr.neighbors) served.push_back(nb.id);
  obs::AuditTarget target;
  target.pin = snap;  // ground truth sees exactly the graph the query saw
  target.base = &snap->base;
  target.exclude = snap->exclusion_mask();
  if (snap->external_ids != nullptr) {
    target.external_ids = {snap->external_ids->data(),
                           snap->external_ids->size()};
  }
  target.version = snap->version;
  auditor_->submit(r.tag, r.query, std::move(served), std::move(target));
}

core::BatchSearchResult ServeEngine::run_optimized(
    const opt::ServingGraph& sg, std::span<const std::uint8_t> exclude,
    const FloatMatrix& queries, std::span<const std::uint64_t> tags,
    std::vector<std::uint32_t>* escalations,
    std::vector<std::uint64_t>* budgets) {
  core::SearchParams p = options_.search;
  p.patience = options_.patience;
  p.visit_budget =
      budget_ != nullptr ? budget_->predict() : options_.visit_budget;
  if (escalations != nullptr) escalations->assign(queries.rows(), 0);
  if (budgets != nullptr) budgets->assign(queries.rows(), p.visit_budget);

  core::BatchSearchResult result = core::serving_search_batch(
      *pool_, sg, queries, tags, p, exclude, &scratch_, nullptr);
  metrics_.optimized_queries.add(queries.rows());

  if (budget_ != nullptr) {
    // Bucketing escalation: re-run only the queries the predicted rung
    // capped, at successively higher rungs. Past the top rung the budget is
    // 0 (unlimited), so a learned budget can delay a hard query but never
    // truncate its answer.
    while (p.visit_budget != 0) {
      std::vector<std::size_t> retry;
      for (std::size_t i = 0; i < result.capped.size(); ++i) {
        if (result.capped[i] != 0) retry.push_back(i);
      }
      if (retry.empty()) break;
      metrics_.budget_capped.add(retry.size());
      p.visit_budget = budget_->escalate(p.visit_budget);
      FloatMatrix sub(retry.size(), queries.cols());
      std::vector<std::uint64_t> sub_tags(retry.size());
      for (std::size_t j = 0; j < retry.size(); ++j) {
        const auto qrow = queries.row(retry[j]);
        std::copy(qrow.begin(), qrow.end(), sub.row(j).begin());
        sub_tags[j] = tags.empty() ? retry[j] : tags[retry[j]];
        if (escalations != nullptr) ++(*escalations)[retry[j]];
        if (budgets != nullptr) (*budgets)[retry[j]] = p.visit_budget;
      }
      core::BatchSearchResult esc = core::serving_search_batch(
          *pool_, sg, sub, sub_tags, p, exclude, &scratch_, nullptr);
      metrics_.escalations.add(retry.size());
      for (std::size_t j = 0; j < retry.size(); ++j) {
        const std::size_t i = retry[j];
        const auto from = esc.results.row(j);
        const auto to = result.results.row(i);
        std::copy(from.begin(), from.end(), to.begin());
        // Replace, don't sum: the learner buckets "what a completed search
        // costs", and only the finishing run answers that.
        result.visits[i] = esc.visits[j];
        result.capped[i] = esc.capped[j];
      }
    }
    for (std::size_t i = 0; i < result.visits.size(); ++i) {
      if (result.capped[i] == 0) budget_->observe(result.visits[i]);
    }
  } else if (p.visit_budget != 0) {
    std::uint64_t capped = 0;
    for (const std::uint8_t c : result.capped) capped += c != 0 ? 1 : 0;
    metrics_.budget_capped.add(capped);
  }
  return result;
}

void ServeEngine::run_batch(std::vector<Request> batch) {
  const auto dispatched = Clock::now();
  metrics_.batches.add();
  metrics_.batch_size.record(static_cast<double>(batch.size()));

  // Batch ordinal and the span id hashed from it are computed for every
  // batch (two cheap pure operations): the flight recorder cross-links its
  // records to this id whether or not a tracer is installed, so a slow-log
  // line captured today joins a trace captured tomorrow.
  const std::uint64_t batch_idx =
      batch_index_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t span_id =
      obs::Tracer::span_id(batch_idx, 0, 0, obs::SpanSalt::kServeBatch);

  // The snapshot is pinned before triage so even requests rejected at the
  // deadline gate carry the version that would have answered them.
  const std::shared_ptr<const GraphSnapshot> snap = slot_.current();

  BatchContext ctx;
  ctx.span_id = span_id;
  ctx.batch_size = static_cast<std::uint32_t>(batch.size());

  // Serve-batch span: id is counter-hashed from a monotone batch index, so
  // the id sequence is deterministic even though batch *composition* depends
  // on arrival timing. The span covers triage + kernel + fan-out.
  std::optional<obs::Span> span;
  obs::Tracer* tr = options_.obs.trace ? obs::active_tracer() : nullptr;
  if (tr != nullptr) {
    span.emplace(tr, "serve_batch", "serve", span_id, obs::kTrackServe);
    span->arg_num("size", static_cast<std::uint64_t>(batch.size()));
  }

  // Deadline triage: expired requests get typed timeout results and are
  // never executed — the engine sheds their work, not just their response.
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& r : batch) {
    if (dispatched > r.deadline) {
      QueryResult qr;
      qr.status = QueryStatus::kTimeout;
      qr.snapshot_version = snap->version;
      std::ostringstream os;
      os << "DeadlineExceeded: request " << r.id
         << " expired before dispatch (waited "
         << us_between(r.enqueued, dispatched) << " us)";
      qr.error = os.str();
      qr.queue_us = us_between(r.enqueued, dispatched);
      metrics_.queue_us.record(qr.queue_us);
      metrics_.timed_out.add();
      metrics_.rejected_deadline.add();
      finish(r, std::move(qr), dispatched, &ctx);
    } else {
      live.push_back(std::move(r));
    }
  }
  if (span) span->arg_num("live", static_cast<std::uint64_t>(live.size()));
  if (slo_) slo_->record_batch(batch_idx, live.size(), options_.max_batch);
  if (live.empty()) return;

  if (span) {
    span->arg_num("snapshot_version",
                  static_cast<std::uint64_t>(snap->version));
  }
  FloatMatrix queries(live.size(), snap->base.cols());
  std::vector<std::uint64_t> tags(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    std::copy(live[i].query.begin(), live[i].query.end(),
              queries.row(i).begin());
    tags[i] = live[i].tag;
  }

  // Compressed tier: score through the snapshot's codes when it carries
  // them. The view aliases `snap`, which this batch keeps pinned.
  const kernels::Sq8View sq8 = snap->sq8_view();
  // Optimized layout: route through the pruned, cache-blocked CSR when the
  // snapshot carries one. The sq8 tier keeps codes in source order, so a
  // snapshot with both falls back to the raw path (see serving_search_batch).
  const opt::ServingGraph* layout =
      sq8.valid() ? nullptr : snap->serving_layout();
  if (span && layout != nullptr) {
    span->arg_num("optimized", std::uint64_t{1});
  }

  ctx.batch_size = static_cast<std::uint32_t>(live.size());
  core::BatchSearchResult result;
  std::vector<std::uint32_t> escalations;
  std::vector<std::uint64_t> budgets;
  try {
    if (layout != nullptr) {
      result = run_optimized(*layout, snap->serving_exclusion(), queries, tags,
                             &escalations, &budgets);
    } else {
      result = core::graph_search_batch(*pool_, snap->base, snap->graph,
                                        queries, tags, options_.search,
                                        &scratch_, nullptr,
                                        sq8.valid() ? &sq8 : nullptr,
                                        snap->exclusion_mask());
    }
  } catch (const std::exception& e) {
    // A failed batch (e.g. an injected LaunchAllocError) answers every
    // request with a typed failure; the engine itself stays live.
    const auto now = Clock::now();
    for (Request& r : live) {
      QueryResult qr;
      qr.status = QueryStatus::kFailed;
      qr.snapshot_version = snap->version;
      qr.queue_us = us_between(r.enqueued, dispatched);
      metrics_.queue_us.record(qr.queue_us);
      qr.error = e.what();
      metrics_.failed.add();
      finish(r, std::move(qr), now, &ctx);
    }
    return;
  }

  const auto done = Clock::now();
  metrics_.queries.add(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    Request& r = live[i];
    QueryResult qr;
    qr.snapshot_version = snap->version;
    qr.points_visited = result.visits[i];
    qr.queue_us = us_between(r.enqueued, dispatched);
    metrics_.queue_us.record(qr.queue_us);
    metrics_.points_visited.add(result.visits[i]);
    metrics_.visited.record(static_cast<double>(result.visits[i]));
    const auto row = result.results.row(i);
    const std::size_t valid = result.results.row_size(i);
    qr.neighbors.assign(row.begin(), row.begin() + valid);
    if (snap->external_ids != nullptr) {
      // Dynamic snapshot: answers carry stable external ids, so a client's
      // view of a point never changes when compaction rewrites rows.
      for (Neighbor& nb : qr.neighbors) nb.id = snap->external_id(nb.id);
    }
    if (done > r.deadline) {
      qr.status = QueryStatus::kTimeout;  // late result: neighbors included
      std::ostringstream os;
      os << "DeadlineExceeded: request " << r.id << " completed "
         << us_between(r.deadline, done) << " us past its deadline";
      qr.error = os.str();
      metrics_.timed_out.add();
    } else {
      metrics_.ok.add();
    }
    BatchContext qctx = ctx;
    if (i < escalations.size()) qctx.escalations = escalations[i];
    if (budget_ != nullptr && i < budgets.size()) {
      qctx.budget_rung = budget_->rung_of(budgets[i]);
    }
    maybe_audit(r, qr, snap);
    finish(r, std::move(qr), done, &qctx);
  }
}

}  // namespace wknng::serve
