#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace wknng::serve {

using Clock = std::chrono::steady_clock;

namespace {

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

ServeEngine::ServeEngine(ThreadPool& pool, ServeOptions options,
                         std::shared_ptr<const GraphSnapshot> initial)
    : pool_(&pool),
      options_(options),
      slot_(std::move(initial)),
      batcher_(options.max_batch, options.max_delay_us,
               options.queue_capacity) {
  WKNNG_CHECK_MSG(slot_.current() != nullptr,
                  "ServeEngine needs an initial snapshot");
  WKNNG_CHECK_MSG(options_.workers > 0, "ServeEngine needs >= 1 worker");
  if (options_.rerank_depth != 0) {
    options_.search.rerank_depth = options_.rerank_depth;
  }
  // Admission validation at construction: a misconfigured engine (k == 0,
  // entry_sample == 0) throws SearchParamError here, before any thread
  // starts, instead of failing every query.
  core::validate_search_params(options_.search);
  if (options_.adaptive_budget) {
    budget_ = std::make_unique<opt::BudgetController>(options_.budget);
  }
  if (options_.optimize) {
    const auto snap = slot_.current();
    if (snap->serving_layout() == nullptr) {
      slot_.publish(
          with_serving_layout(*pool_, snap, options_.optimize_options));
    }
  }
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ServeEngine::~ServeEngine() { stop(); }

std::future<QueryResult> ServeEngine::submit(std::vector<float> query,
                                             std::uint64_t deadline_us,
                                             std::uint64_t tag) {
  return submit_impl(std::move(query), deadline_us,
                     next_id_.fetch_add(1, std::memory_order_relaxed), tag);
}

std::future<QueryResult> ServeEngine::submit(std::vector<float> query,
                                             std::uint64_t deadline_us) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return submit_impl(std::move(query), deadline_us, id, /*tag=*/id);
}

std::future<QueryResult> ServeEngine::submit_impl(std::vector<float> query,
                                                  std::uint64_t deadline_us,
                                                  std::uint64_t id,
                                                  std::uint64_t tag) {
  const auto snap = slot_.current();
  WKNNG_CHECK_MSG(query.size() == snap->base.cols(),
                  "query dim " << query.size() << " != base dim "
                               << snap->base.cols());

  Request r;
  r.id = id;
  r.tag = tag;
  r.query = std::move(query);
  r.enqueued = Clock::now();
  const std::uint64_t effective =
      deadline_us != 0 ? deadline_us : options_.default_deadline_us;
  if (effective != 0) {
    r.deadline = r.enqueued + std::chrono::microseconds(effective);
  }
  std::future<QueryResult> fut = r.promise.get_future();

  metrics_.enqueued.add();
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (stopped_.load(std::memory_order_acquire) || !batcher_.push(std::move(r))) {
    QueryResult qr;
    qr.status = QueryStatus::kShed;
    std::ostringstream os;
    os << "OverloadShed: request " << r.id << " rejected at admission ("
       << (stopped_.load(std::memory_order_acquire) ? "engine stopped"
                                                    : "queue full")
       << ")";
    qr.error = os.str();
    metrics_.shed.add();
    finish(r, std::move(qr), Clock::now());
  }
  return fut;
}

void ServeEngine::publish(std::shared_ptr<const GraphSnapshot> next) {
  WKNNG_CHECK_MSG(next != nullptr, "cannot publish a null snapshot");
  if (options_.optimize && next->serving_layout() == nullptr) {
    // The publisher pays for the layout build; query threads only ever see
    // the finished snapshot land atomically.
    next = with_serving_layout(*pool_, next, options_.optimize_options);
  }
  slot_.publish(std::move(next));
  metrics_.snapshots_published.add();
}

void ServeEngine::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void ServeEngine::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  batcher_.close();  // executors drain the backlog, then exit
  for (auto& t : workers_) t.join();
  workers_.clear();
}

void ServeEngine::worker_loop() {
  while (true) {
    std::vector<Request> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained
    run_batch(std::move(batch));
  }
}

void ServeEngine::finish(Request& r, QueryResult qr, Clock::time_point now) {
  qr.request_id = r.id;
  qr.tag = r.tag;
  qr.total_us = us_between(r.enqueued, now);
  metrics_.latency_us.record(qr.total_us);
  metrics_.completed.add();
  r.promise.set_value(std::move(qr));
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drain_cv_.notify_all();
  }
}

core::BatchSearchResult ServeEngine::run_optimized(
    const opt::ServingGraph& sg, std::span<const std::uint8_t> exclude,
    const FloatMatrix& queries, std::span<const std::uint64_t> tags) {
  core::SearchParams p = options_.search;
  p.patience = options_.patience;
  p.visit_budget =
      budget_ != nullptr ? budget_->predict() : options_.visit_budget;

  core::BatchSearchResult result = core::serving_search_batch(
      *pool_, sg, queries, tags, p, exclude, &scratch_, nullptr);
  metrics_.optimized_queries.add(queries.rows());

  if (budget_ != nullptr) {
    // Bucketing escalation: re-run only the queries the predicted rung
    // capped, at successively higher rungs. Past the top rung the budget is
    // 0 (unlimited), so a learned budget can delay a hard query but never
    // truncate its answer.
    while (p.visit_budget != 0) {
      std::vector<std::size_t> retry;
      for (std::size_t i = 0; i < result.capped.size(); ++i) {
        if (result.capped[i] != 0) retry.push_back(i);
      }
      if (retry.empty()) break;
      metrics_.budget_capped.add(retry.size());
      p.visit_budget = budget_->escalate(p.visit_budget);
      FloatMatrix sub(retry.size(), queries.cols());
      std::vector<std::uint64_t> sub_tags(retry.size());
      for (std::size_t j = 0; j < retry.size(); ++j) {
        const auto qrow = queries.row(retry[j]);
        std::copy(qrow.begin(), qrow.end(), sub.row(j).begin());
        sub_tags[j] = tags.empty() ? retry[j] : tags[retry[j]];
      }
      core::BatchSearchResult esc = core::serving_search_batch(
          *pool_, sg, sub, sub_tags, p, exclude, &scratch_, nullptr);
      metrics_.escalations.add(retry.size());
      for (std::size_t j = 0; j < retry.size(); ++j) {
        const std::size_t i = retry[j];
        const auto from = esc.results.row(j);
        const auto to = result.results.row(i);
        std::copy(from.begin(), from.end(), to.begin());
        // Replace, don't sum: the learner buckets "what a completed search
        // costs", and only the finishing run answers that.
        result.visits[i] = esc.visits[j];
        result.capped[i] = esc.capped[j];
      }
    }
    for (std::size_t i = 0; i < result.visits.size(); ++i) {
      if (result.capped[i] == 0) budget_->observe(result.visits[i]);
    }
  } else if (p.visit_budget != 0) {
    std::uint64_t capped = 0;
    for (const std::uint8_t c : result.capped) capped += c != 0 ? 1 : 0;
    metrics_.budget_capped.add(capped);
  }
  return result;
}

void ServeEngine::run_batch(std::vector<Request> batch) {
  const auto dispatched = Clock::now();
  metrics_.batches.add();
  metrics_.batch_size.record(static_cast<double>(batch.size()));

  // Serve-batch span: id is counter-hashed from a monotone batch index, so
  // the id sequence is deterministic even though batch *composition* depends
  // on arrival timing. The span covers triage + kernel + fan-out.
  std::optional<obs::Span> span;
  obs::Tracer* tr = options_.obs.trace ? obs::active_tracer() : nullptr;
  if (tr != nullptr) {
    const std::uint64_t idx =
        batch_index_.fetch_add(1, std::memory_order_relaxed);
    span.emplace(tr, "serve_batch", "serve",
                 obs::Tracer::span_id(idx, 0, 0, obs::SpanSalt::kServeBatch),
                 obs::kTrackServe);
    span->arg_num("size", static_cast<std::uint64_t>(batch.size()));
  }

  // Deadline triage: expired requests get typed timeout results and are
  // never executed — the engine sheds their work, not just their response.
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& r : batch) {
    if (dispatched > r.deadline) {
      QueryResult qr;
      qr.status = QueryStatus::kTimeout;
      std::ostringstream os;
      os << "DeadlineExceeded: request " << r.id
         << " expired before dispatch (waited "
         << us_between(r.enqueued, dispatched) << " us)";
      qr.error = os.str();
      qr.queue_us = us_between(r.enqueued, dispatched);
      metrics_.queue_us.record(qr.queue_us);
      metrics_.timed_out.add();
      metrics_.rejected_deadline.add();
      finish(r, std::move(qr), dispatched);
    } else {
      live.push_back(std::move(r));
    }
  }
  if (span) span->arg_num("live", static_cast<std::uint64_t>(live.size()));
  if (live.empty()) return;

  const std::shared_ptr<const GraphSnapshot> snap = slot_.current();
  if (span) {
    span->arg_num("snapshot_version",
                  static_cast<std::uint64_t>(snap->version));
  }
  FloatMatrix queries(live.size(), snap->base.cols());
  std::vector<std::uint64_t> tags(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    std::copy(live[i].query.begin(), live[i].query.end(),
              queries.row(i).begin());
    tags[i] = live[i].tag;
  }

  // Compressed tier: score through the snapshot's codes when it carries
  // them. The view aliases `snap`, which this batch keeps pinned.
  const kernels::Sq8View sq8 = snap->sq8_view();
  // Optimized layout: route through the pruned, cache-blocked CSR when the
  // snapshot carries one. The sq8 tier keeps codes in source order, so a
  // snapshot with both falls back to the raw path (see serving_search_batch).
  const opt::ServingGraph* layout =
      sq8.valid() ? nullptr : snap->serving_layout();
  if (span && layout != nullptr) {
    span->arg_num("optimized", std::uint64_t{1});
  }

  core::BatchSearchResult result;
  try {
    if (layout != nullptr) {
      result = run_optimized(*layout, snap->serving_exclusion(), queries, tags);
    } else {
      result = core::graph_search_batch(*pool_, snap->base, snap->graph,
                                        queries, tags, options_.search,
                                        &scratch_, nullptr,
                                        sq8.valid() ? &sq8 : nullptr,
                                        snap->exclusion_mask());
    }
  } catch (const std::exception& e) {
    // A failed batch (e.g. an injected LaunchAllocError) answers every
    // request with a typed failure; the engine itself stays live.
    const auto now = Clock::now();
    for (Request& r : live) {
      QueryResult qr;
      qr.status = QueryStatus::kFailed;
      qr.snapshot_version = snap->version;
      qr.queue_us = us_between(r.enqueued, dispatched);
      metrics_.queue_us.record(qr.queue_us);
      qr.error = e.what();
      metrics_.failed.add();
      finish(r, std::move(qr), now);
    }
    return;
  }

  const auto done = Clock::now();
  metrics_.queries.add(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    Request& r = live[i];
    QueryResult qr;
    qr.snapshot_version = snap->version;
    qr.points_visited = result.visits[i];
    qr.queue_us = us_between(r.enqueued, dispatched);
    metrics_.queue_us.record(qr.queue_us);
    metrics_.points_visited.add(result.visits[i]);
    metrics_.visited.record(static_cast<double>(result.visits[i]));
    const auto row = result.results.row(i);
    const std::size_t valid = result.results.row_size(i);
    qr.neighbors.assign(row.begin(), row.begin() + valid);
    if (snap->external_ids != nullptr) {
      // Dynamic snapshot: answers carry stable external ids, so a client's
      // view of a point never changes when compaction rewrites rows.
      for (Neighbor& nb : qr.neighbors) nb.id = snap->external_id(nb.id);
    }
    if (done > r.deadline) {
      qr.status = QueryStatus::kTimeout;  // late result: neighbors included
      std::ostringstream os;
      os << "DeadlineExceeded: request " << r.id << " completed "
         << us_between(r.deadline, done) << " us past its deadline";
      qr.error = os.str();
      metrics_.timed_out.add();
    } else {
      metrics_.ok.add();
    }
    finish(r, std::move(qr), done);
  }
}

}  // namespace wknng::serve
