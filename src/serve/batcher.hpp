#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "common/topk.hpp"

namespace wknng::serve {

/// How one served query ended.
enum class QueryStatus : std::uint8_t {
  kOk,       ///< neighbors delivered within the deadline
  kTimeout,  ///< typed timeout result (DeadlineExceededError vocabulary)
  kShed,     ///< rejected at admission (OverloadShedError vocabulary)
  kFailed,   ///< batch execution threw a typed error; engine stayed live
};

const char* query_status_name(QueryStatus s);

/// What a submitted query's future resolves to. Timeout results may still
/// carry neighbors (the batch finished after the deadline — late but usable);
/// shed and pre-dispatch timeouts carry none.
struct QueryResult {
  QueryStatus status = QueryStatus::kOk;
  std::vector<Neighbor> neighbors;   ///< valid entries only, sorted
  std::uint64_t request_id = 0;
  std::uint64_t tag = 0;             ///< determinism tag the search ran under
  std::uint64_t snapshot_version = 0;
  std::uint64_t points_visited = 0;
  double queue_us = 0.0;             ///< enqueue → batch dispatch
  double total_us = 0.0;             ///< enqueue → future fulfilled
  std::string error;                 ///< typed error text when status != kOk
};

/// One queued request. `tag` seeds the query's RNG stream in
/// core::graph_search_batch — assigned once at admission so the result is
/// independent of how requests get batched. `deadline` of time_point::max()
/// means none.
struct Request {
  std::uint64_t id = 0;
  std::uint64_t tag = 0;
  std::vector<float> query;
  std::chrono::steady_clock::time_point enqueued{};
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  std::promise<QueryResult> promise;
};

/// Bounded MPMC request queue plus the micro-batch policy: a batch flushes
/// when it reaches `max_batch` requests or when the oldest queued request has
/// waited `max_delay_us`, whichever comes first. Push never blocks — a full
/// queue rejects (the caller sheds the request with a typed result), which
/// bounds memory and queueing delay under overload. Multiple executor
/// threads may call next_batch concurrently.
class MicroBatcher {
 public:
  MicroBatcher(std::size_t max_batch, std::uint64_t max_delay_us,
               std::size_t capacity);

  /// Enqueues `r`; returns false (leaving `r` intact) when the queue is at
  /// capacity or the batcher is closed.
  bool push(Request&& r);

  /// Blocks for the next micro-batch. An empty vector means the batcher was
  /// closed and fully drained — the executor should exit.
  std::vector<Request> next_batch();

  /// Stops admission and wakes every waiter; queued requests still drain
  /// through next_batch.
  void close();

  std::size_t depth() const;
  bool closed() const;

 private:
  const std::size_t max_batch_;
  const std::chrono::microseconds max_delay_;
  const std::size_t capacity_;

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;  // queue non-empty or closed
  std::deque<Request> queue_;
  bool closed_ = false;
};

}  // namespace wknng::serve
