#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "serve/engine.hpp"

namespace wknng::serve {

/// Deterministic load generator over a ServeEngine.
///
/// Two modes:
///  - kClosed: `concurrency` submitter threads, each with exactly one request
///    outstanding (thread t handles requests t, t+C, t+2C, ...). Measures the
///    engine's saturated throughput at a given parallelism.
///  - kOpen: requests arrive on a precomputed Poisson schedule at `rate_qps`.
///    Inter-arrival gaps are exponential draws keyed by (seed, index) — a
///    counter-hash, so the schedule is a pure function of the config and no
///    wall-clock reading ever influences *which* requests exist or how they
///    are tagged. Open-loop arrivals keep coming when the engine falls
///    behind, which is what forces the deadline/shed paths under overload.
///
/// Determinism: request i always carries tag i and query row i % queries.rows.
/// Tags key the kernel's RNG streams, so the neighbors in every response are
/// a pure function of (snapshot, config) — identical across runs, worker
/// counts, and batch compositions. `LoadGenReport::result_hash` folds every
/// response with a commutative combine, so equal hashes mean equal per-request
/// results regardless of completion order.
///
/// Write mix: `mutate_fraction` of the request slots are classified as
/// mutations instead of reads, each slot's kind drawn from its own
/// counter-hashed (seed, index) stream — like arrivals, the classification
/// is a pure function of the config, never of the clock or of completion
/// order. Mutation slots invoke the caller's MutationHooks inline on the
/// submitting thread; read slots keep their original tag i, so at
/// mutate_fraction == 0 the run (and its result_hash) is bit-identical to a
/// read-only one.
struct LoadGenConfig {
  enum class Mode : std::uint8_t { kClosed, kOpen };

  Mode mode = Mode::kClosed;
  std::uint64_t seed = 42;
  std::size_t requests = 1024;
  double rate_qps = 10000.0;      ///< open-loop arrival rate
  std::size_t concurrency = 4;    ///< closed-loop submitter threads
  std::uint64_t deadline_us = 0;  ///< per-request deadline; 0 = engine default

  /// Fraction of request slots that are mutations (0 = read-only). Slots
  /// classified as mutations with no matching hook degrade to reads.
  double mutate_fraction = 0.0;
  /// Of the mutation slots, the fraction that are deletes (rest: inserts).
  double delete_fraction = 0.25;
};

/// What a mutation slot does — supplied by the harness that owns the mutable
/// index (e.g. a dynamic::DynamicKnng wired to the engine via on_publish).
/// Each hook receives the slot's request index; everything else it needs it
/// derives deterministically (the CLI inserts query row i and deletes
/// counter-chosen ids). Hooks run inline on the submitting thread.
struct MutationHooks {
  std::function<void(std::size_t request_index)> insert;
  std::function<void(std::size_t request_index)> erase;
};

/// The kind request slot i resolves to under `config` — exposed so tests and
/// harnesses can reproduce the classification without running the load.
enum class RequestKind : std::uint8_t { kRead, kInsert, kDelete };
RequestKind request_kind(const LoadGenConfig& config, std::size_t i);

/// Aggregated outcome of one load-generation run. Counters and result_hash
/// are deterministic for a fixed (snapshot, config) when no deadline forces
/// timing-dependent statuses; wall_seconds / achieved_qps are measurements.
struct LoadGenReport {
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t timed_out = 0;
  std::size_t shed = 0;
  std::size_t failed = 0;
  std::size_t reads = 0;             ///< slots served as queries
  std::size_t inserts = 0;           ///< slots that invoked hooks.insert
  std::size_t deletes = 0;           ///< slots that invoked hooks.erase
  std::size_t mutation_failures = 0; ///< hook invocations that threw
  double wall_seconds = 0.0;
  double achieved_qps = 0.0;
  std::uint64_t points_visited = 0;  ///< summed over executed requests
  std::uint64_t result_hash = 0;     ///< order-independent response digest
                                     ///< (read slots only)

  /// Exact sample quantiles (nearest-rank over the sorted per-request
  /// total_us of every read slot) — no bucket interpolation, unlike the
  /// engine histogram's 1-2-5-bucket percentiles (see DESIGN.md for that
  /// estimator's error bound). 0 when no read slot completed.
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;

  std::string to_json() const;
};

/// Nearest-rank sample quantile: the smallest element with at least ⌈p·n⌉
/// of the sample at or below it. `sorted_us` must be ascending; returns 0 on
/// an empty sample. Exposed for tests and for report post-processing.
double exact_quantile(const std::vector<double>& sorted_us, double p);

/// The open-loop arrival schedule: requests[i] arrives at offset_us[i] after
/// the run starts. Exponential gaps with mean 1/rate_qps, each drawn from an
/// Rng stream keyed by (seed, index) — no generator state threads through the
/// schedule, so any prefix is stable under config.requests changes.
std::vector<double> open_loop_schedule(std::uint64_t seed, std::size_t requests,
                                       double rate_qps);

/// Runs the configured load against `engine`, pulling query vectors
/// round-robin from the rows of `queries`. Blocks until every response
/// arrives (the engine is left running). `hooks` supplies the mutation
/// half of a mixed workload; the hook-less overload is the read-only path
/// (mutation slots degrade to reads).
LoadGenReport run_load(ServeEngine& engine, const FloatMatrix& queries,
                       const LoadGenConfig& config,
                       const MutationHooks& hooks);

LoadGenReport run_load(ServeEngine& engine, const FloatMatrix& queries,
                       const LoadGenConfig& config);

}  // namespace wknng::serve
