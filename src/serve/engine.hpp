#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/graph_search.hpp"
#include "obs/audit.hpp"
#include "obs/params.hpp"
#include "obs/slo.hpp"
#include "opt/budget.hpp"
#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/snapshot.hpp"

namespace wknng::serve {

/// Engine policy knobs. The defaults serve interactively (small batches,
/// sub-millisecond flush); throughput-oriented callers raise max_batch and
/// max_delay_us (bench/fig11_serving sweeps exactly this trade-off).
struct ServeOptions {
  std::size_t max_batch = 32;          ///< flush threshold (queries per batch)
  std::uint64_t max_delay_us = 200;    ///< flush timeout for a partial batch
  std::size_t workers = 2;             ///< batch executor threads
  std::size_t queue_capacity = 4096;   ///< pending requests before shedding
  std::uint64_t default_deadline_us = 0;  ///< per-request default; 0 = none
  core::SearchParams search;           ///< kernel parameters (k, beam, seed)

  /// Compressed-tier rerank depth; nonzero overrides `search.rerank_depth`
  /// at engine construction. Only meaningful when served snapshots carry an
  /// SQ8 tier (GraphSnapshot::sq8); see core::SearchParams::rerank_depth
  /// for the 0 = auto (2k) semantics.
  std::size_t rerank_depth = 0;
  obs::ObsParams obs;                  ///< span-tracing participation knobs

  /// Serve-path optimization. With `optimize` on, the engine ensures every
  /// served snapshot carries an optimized layout (opt::optimize_serving with
  /// `optimize_options`): the initial snapshot and any published without one
  /// are optimized synchronously on the publisher's thread before the swap.
  /// Snapshots that already carry a layout (e.g. from the dynamic index) are
  /// served as-is. With `optimize` off, snapshots still route through their
  /// layout when they happen to carry one.
  bool optimize = false;
  opt::OptimizeOptions optimize_options;

  /// Early-termination knobs for the optimized path (raw-path batches are
  /// untouched — their results stay bit-identical to the engine's historical
  /// behavior). `patience` / `visit_budget` map onto the same-named
  /// core::SearchParams fields; 0 = off.
  std::size_t patience = 0;
  std::size_t visit_budget = 0;

  /// Learned per-query budgets: predict a cheap rung for every fresh query,
  /// re-run the (few) queries the rung capped at successively higher rungs,
  /// feed completed costs back to the learner. Overrides `visit_budget`.
  /// Escalation re-runs make per-query latency depend on the learned ladder
  /// (and therefore on observation order), so results stay correct but the
  /// visit *counts* are no longer a pure function of the request — keep this
  /// off when bit-reproducible accounting matters.
  bool adaptive_budget = false;
  opt::BudgetOptions budget;

  /// Online SLO & quality plane (obs/slo.hpp, obs/audit.hpp). With `slo` on
  /// the engine owns an SloTracker fed from every completion (windows ticked
  /// by request *tag*, batches by batch index — counters, so replays are
  /// bit-identical) and every snapshot publication. `audit.fraction > 0`
  /// additionally runs the sampled recall auditor: answered queries chosen
  /// by counter-hash of their tag are re-answered exactly against the
  /// snapshot they were served from, and the rolling estimate feeds the
  /// tracker's recall objective. The flight recorder is ambient, not an
  /// engine option: install one with obs::ScopedFlightRecording and every
  /// completion is recorded, at the cost of one atomic load when none is.
  bool slo = false;
  obs::SloTrackerOptions slo_options;
  obs::AuditOptions audit;
};

/// Batched, deadline-aware query serving over a K-NN graph.
///
/// Request path: `submit` assigns the request an id and a determinism tag,
/// stamps its deadline, and enqueues it (or sheds, typed, when the queue is
/// full). Executor threads form micro-batches (flush at `max_batch` or
/// `max_delay_us`, whichever first), pin the current GraphSnapshot, and run
/// the warp-per-query `core::graph_search_batch` kernel on the shared
/// ThreadPool — several batches in flight use the pool's multi-job
/// scheduling, the substrate's analogue of concurrent kernels on one device.
///
/// Snapshots: `publish` atomically swaps the graph (std::shared_ptr store);
/// in-flight batches finish on the snapshot they pinned, new batches see the
/// new one. `core::IncrementalKnng` can therefore insert and publish while
/// the engine serves (tests/serve/test_snapshot_swap.cpp).
///
/// Deadlines: a request whose deadline passes before dispatch is answered
/// with a typed timeout result (DeadlineExceededError vocabulary) and never
/// executed — shed-load accounting, not silent drops. A batch that finishes
/// past a request's deadline still returns the neighbors, marked kTimeout.
///
/// Determinism: a request's neighbors are a pure function of (snapshot,
/// query vector, search params, tag). With caller-assigned tags (see the
/// loadgen) the same seed and config reproduce bit-identical per-request
/// results for any worker count, batching, or timing.
class ServeEngine {
 public:
  ServeEngine(ThreadPool& pool, ServeOptions options,
              std::shared_ptr<const GraphSnapshot> initial);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Enqueues one query (dimension must match the current snapshot).
  /// `deadline_us` overrides the default (0 = use default); `tag` seeds the
  /// query's RNG stream. The future always resolves — ok, timeout, shed, or
  /// failed — it never throws on the serving path.
  std::future<QueryResult> submit(std::vector<float> query,
                                  std::uint64_t deadline_us, std::uint64_t tag);

  /// Auto-tagged convenience: tag = the assigned request id.
  std::future<QueryResult> submit(std::vector<float> query,
                                  std::uint64_t deadline_us = 0);

  /// Atomically swaps the served snapshot (never null).
  void publish(std::shared_ptr<const GraphSnapshot> next);
  std::shared_ptr<const GraphSnapshot> snapshot() const {
    return slot_.current();
  }

  /// Blocks until every accepted request has been answered.
  void drain();

  /// Drains the queue, stops the executors, and joins them (idempotent; the
  /// destructor calls it). Requests submitted after stop() are shed.
  void stop();

  const ServeMetrics& metrics() const { return metrics_; }
  std::string metrics_json() const { return metrics_.to_json(); }
  const ServeOptions& options() const { return options_; }

  /// The adaptive budget learner; null unless `adaptive_budget` is on.
  const opt::BudgetController* budget_controller() const {
    return budget_.get();
  }

  /// The SLO tracker; null unless `options.slo` is on.
  obs::SloTracker* slo_tracker() const { return slo_.get(); }
  /// The recall auditor; null unless `options.audit.fraction > 0`.
  obs::RecallAuditor* auditor() const { return auditor_.get(); }

 private:
  /// Per-batch context threaded into finish() so flight records and SLO
  /// events carry what only the batch knew (span id, live size, per-query
  /// budget escalations).
  struct BatchContext {
    std::uint64_t span_id = 0;
    std::uint32_t batch_size = 0;
    std::uint32_t escalations = 0;
    std::uint64_t budget_rung = 0;
  };

  std::future<QueryResult> submit_impl(std::vector<float> query,
                                       std::uint64_t deadline_us,
                                       std::uint64_t id, std::uint64_t tag);
  void worker_loop();
  void run_batch(std::vector<Request> batch);

  /// One batch through the optimized layout: predicted budget, then
  /// escalation re-runs for the queries the rung capped (adaptive mode).
  core::BatchSearchResult run_optimized(const opt::ServingGraph& sg,
                                        std::span<const std::uint8_t> exclude,
                                        const FloatMatrix& queries,
                                        std::span<const std::uint64_t> tags,
                                        std::vector<std::uint32_t>* escalations,
                                        std::vector<std::uint64_t>* budgets);
  void finish(Request& r, QueryResult qr,
              std::chrono::steady_clock::time_point now,
              const BatchContext* ctx = nullptr);
  void maybe_audit(const Request& r, const QueryResult& qr,
                   const std::shared_ptr<const GraphSnapshot>& snap);

  ThreadPool* pool_;
  ServeOptions options_;
  SnapshotSlot slot_;
  MicroBatcher batcher_;
  ServeMetrics metrics_;
  core::SearchScratch scratch_;
  std::unique_ptr<opt::BudgetController> budget_;
  std::unique_ptr<obs::SloTracker> slo_;
  std::unique_ptr<obs::RecallAuditor> auditor_;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> batch_index_{0};  ///< deterministic span ids
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace wknng::serve
