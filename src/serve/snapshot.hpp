#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "kernels/kernels.hpp"
#include "kernels/sq8.hpp"
#include "opt/serving_graph.hpp"

namespace wknng {
class ThreadPool;
}  // namespace wknng

namespace wknng::serve {

/// One immutable (base points, K-NN graph) pair served to queries. Builders
/// (core::build_knng, core::IncrementalKnng) construct a snapshot off to the
/// side and publish it whole; the serving path never sees a half-updated
/// graph. `version` is the publisher's monotonic label — responses carry it
/// so a client (or a test) can say exactly which graph answered them.
///
/// A snapshot may additionally carry the base's SQ8 compressed tier (the
/// code matrix the builder trained under `compression=sq8`, plus the
/// per-row term cache). When present, batch executors score candidates
/// against the compressed rows and rerank exactly; when absent, serving is
/// bit-identical to the uncompressed path.
/// A snapshot published by the dynamic index (src/dynamic) additionally
/// carries the mutable-lifecycle metadata frozen at publish time:
/// `tombstones` (one byte per base row; non-zero = deleted, the executor
/// hands it to graph_search_batch as the exclusion mask so deleted points are
/// invisible to results the moment the snapshot lands) and `external_ids`
/// (internal row -> stable client-facing id; the executor remaps every
/// emitted neighbor, so ids survive compaction's row rewrites). Both are
/// null on static snapshots, which serve exactly as before.
struct GraphSnapshot {
  std::uint64_t version = 0;
  FloatMatrix base;
  KnnGraph graph;
  std::shared_ptr<const kernels::Sq8Matrix> sq8;  ///< optional compressed tier
  std::vector<float> sq8_terms;  ///< per-row term cache (empty in strict mode)
  std::shared_ptr<const std::vector<std::uint8_t>> tombstones;
  std::shared_ptr<const std::vector<std::uint32_t>> external_ids;

  /// Optional optimized serving layout (opt::optimize_serving over this
  /// snapshot's graph): pruned edges, BFS/CSR relayout, gathered base rows.
  /// Batch executors route through core::serving_search_batch when present
  /// (and no sq8 tier is carried); null serves exactly as before.
  std::shared_ptr<const opt::ServingGraph> serving;

  /// Tombstones re-permuted into `serving`'s id space, frozen at publish.
  /// Lets the dynamic index reuse a structurally-valid layout across
  /// delete-only publications: the mask is rebuilt (O(n) permute) every
  /// publish while the layout itself is rebuilt only on structural change.
  /// Null → the layout's own baked `exclude` applies.
  std::shared_ptr<const std::vector<std::uint8_t>> serving_exclude;

  GraphSnapshot() = default;
  GraphSnapshot(std::uint64_t v, FloatMatrix b, KnnGraph g)
      : version(v), base(std::move(b)), graph(std::move(g)) {}
  GraphSnapshot(std::uint64_t v, FloatMatrix b, KnnGraph g,
                std::shared_ptr<const kernels::Sq8Matrix> codes)
      : version(v), base(std::move(b)), graph(std::move(g)),
        sq8(std::move(codes)) {
    if (sq8 != nullptr && !kernels::strict_mode()) {
      sq8_terms = kernels::sq8_code_terms(*sq8);
    }
  }

  /// Borrowed view of the compressed tier; `!valid()` when the snapshot has
  /// no codes. The view aliases this snapshot — readers keep the snapshot
  /// pinned (shared_ptr) for as long as they score through the view.
  kernels::Sq8View sq8_view() const {
    if (sq8 == nullptr) return {};
    return {sq8.get(), sq8_terms};
  }

  /// The exclusion mask batch executors pass to the search kernel: empty for
  /// static snapshots or when the mask's shape does not match the base.
  std::span<const std::uint8_t> exclusion_mask() const {
    if (tombstones == nullptr || tombstones->size() != base.rows()) return {};
    return {tombstones->data(), tombstones->size()};
  }

  /// Maps an internal row id to its stable external id (identity when the
  /// snapshot carries no mapping).
  std::uint32_t external_id(std::uint32_t internal) const {
    if (external_ids == nullptr || internal >= external_ids->size()) {
      return internal;
    }
    return (*external_ids)[internal];
  }

  /// The optimized layout to serve through, or null when the snapshot
  /// carries none or the layout's shape does not match this snapshot's base
  /// (a layout from another graph is never served). The sq8 fallback is the
  /// executor's call, not this accessor's.
  const opt::ServingGraph* serving_layout() const {
    if (serving == nullptr) return nullptr;
    if (serving->dim != base.cols() || serving->n() != base.rows()) {
      return nullptr;
    }
    return serving.get();
  }

  /// The exclusion mask for the optimized path, in the layout's permuted id
  /// space: the publish-time re-permuted tombstones when present, the
  /// layout's baked mask otherwise.
  std::span<const std::uint8_t> serving_exclusion() const {
    if (serving == nullptr) return {};
    if (serving_exclude != nullptr &&
        serving_exclude->size() == serving->n()) {
      return {serving_exclude->data(), serving_exclude->size()};
    }
    return {serving->exclude.data(), serving->exclude.size()};
  }
};

/// The single-slot atomic publication point between one writer (the build /
/// incremental-insert side) and many readers (batch executors). Readers pin
/// the current snapshot with a shared_ptr copy; a publish is one atomic
/// store, after which new batches run on the new graph while in-flight
/// batches finish on the old one — it stays alive until its last reader
/// drops it. No locks, no reader/writer ordering requirements beyond the
/// store/load pair.
class SnapshotSlot {
 public:
  SnapshotSlot() = default;
  explicit SnapshotSlot(std::shared_ptr<const GraphSnapshot> initial)
      : slot_(std::move(initial)) {}

  SnapshotSlot(const SnapshotSlot&) = delete;
  SnapshotSlot& operator=(const SnapshotSlot&) = delete;

  std::shared_ptr<const GraphSnapshot> current() const {
    return slot_.load(std::memory_order_acquire);
  }

  void publish(std::shared_ptr<const GraphSnapshot> next) {
    slot_.store(std::move(next), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<const GraphSnapshot>> slot_;
};

/// Convenience: snapshot the current state of an already-built graph.
inline std::shared_ptr<const GraphSnapshot> make_snapshot(
    std::uint64_t version, const FloatMatrix& base, const KnnGraph& graph) {
  return std::make_shared<const GraphSnapshot>(version, base, graph);
}

/// Same, carrying the compressed tier (e.g. BuildResult::sq8). A null
/// `codes` degrades to the uncompressed snapshot.
inline std::shared_ptr<const GraphSnapshot> make_snapshot(
    std::uint64_t version, const FloatMatrix& base, const KnnGraph& graph,
    std::shared_ptr<const kernels::Sq8Matrix> codes) {
  return std::make_shared<const GraphSnapshot>(version, base, graph,
                                               std::move(codes));
}

/// Returns a copy of `snap` carrying an optimized serving layout built from
/// its graph: occlusion pruning + BFS/CSR relayout (opt::optimize_serving),
/// with the snapshot's tombstones baked in and source_version stamped to the
/// snapshot's version. The original snapshot is untouched; publish the
/// returned one to serve through the optimized path. Building is the
/// publisher's cost — query threads never see a half-built layout.
std::shared_ptr<const GraphSnapshot> with_serving_layout(
    ThreadPool& pool, const std::shared_ptr<const GraphSnapshot>& snap,
    const opt::OptimizeOptions& options = {});

}  // namespace wknng::serve
