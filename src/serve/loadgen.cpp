#include "serve/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wknng::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Stream-id base for arrival draws, disjoint from the kernel's query
/// streams (0x5EA5C000 + tag) so the schedule never correlates with search.
constexpr std::uint64_t kArrivalStream = 0x10AD6E4100000000ULL;

/// Stream-id base for write-mix classification draws — its own disjoint
/// block, so changing mutate_fraction never perturbs arrival times and
/// vice versa.
constexpr std::uint64_t kMutateStream = 0x3317A7E500000000ULL;

/// One response folded to a 64-bit digest. Each request's digest is keyed by
/// its tag, so the run-level commutative sum detects any per-request change
/// (wrong neighbors, wrong visit count, wrong status) independent of the
/// order responses happened to arrive in.
std::uint64_t response_hash(const QueryResult& qr) {
  SplitMix64 sm(qr.tag ^ 0x9E3779B97F4A7C15ULL);
  std::uint64_t h = sm.next() ^ static_cast<std::uint64_t>(qr.status);
  for (const Neighbor& nb : qr.neighbors) {
    std::uint32_t dist_bits = 0;
    std::memcpy(&dist_bits, &nb.dist, sizeof(dist_bits));
    h = (h ^ nb.id) * 0xBF58476D1CE4E5B9ULL;
    h = (h ^ dist_bits) * 0x94D049BB133111EBULL;
    h ^= h >> 29;
  }
  h ^= qr.points_visited * 0x2545F4914F6CDD1DULL;
  return h;
}

void fold(LoadGenReport& rep, const QueryResult& qr) {
  switch (qr.status) {
    case QueryStatus::kOk: ++rep.ok; break;
    case QueryStatus::kTimeout: ++rep.timed_out; break;
    case QueryStatus::kShed: ++rep.shed; break;
    case QueryStatus::kFailed: ++rep.failed; break;
  }
  rep.points_visited += qr.points_visited;
  rep.result_hash += response_hash(qr);  // commutative: order-independent
}

}  // namespace

std::string LoadGenReport::to_json() const {
  std::ostringstream os;
  os << "{\"requests\":" << requests << ",\"ok\":" << ok
     << ",\"timed_out\":" << timed_out << ",\"shed\":" << shed
     << ",\"failed\":" << failed << ",\"reads\":" << reads
     << ",\"inserts\":" << inserts << ",\"deletes\":" << deletes
     << ",\"mutation_failures\":" << mutation_failures
     << ",\"wall_seconds\":" << wall_seconds
     << ",\"achieved_qps\":" << achieved_qps
     << ",\"points_visited\":" << points_visited
     << ",\"latency_p50_us\":" << latency_p50_us
     << ",\"latency_p95_us\":" << latency_p95_us
     << ",\"latency_p99_us\":" << latency_p99_us
     << ",\"latency_max_us\":" << latency_max_us << ",\"result_hash\":\""
     << std::hex << result_hash << "\"}";
  return os.str();
}

double exact_quantile(const std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const double clamped = std::min(1.0, std::max(0.0, p));
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted_us.size())));
  return sorted_us[rank == 0 ? 0 : rank - 1];
}

RequestKind request_kind(const LoadGenConfig& config, std::size_t i) {
  if (config.mutate_fraction <= 0.0) return RequestKind::kRead;
  // Counter-hash: slot i's kind comes from its own (seed, i) stream — a pure
  // function of the config, independent of every other slot.
  Rng rng(config.seed, kMutateStream + i);
  const double u = rng.next_double();
  if (u >= config.mutate_fraction) return RequestKind::kRead;
  return u < config.mutate_fraction * config.delete_fraction
             ? RequestKind::kDelete
             : RequestKind::kInsert;
}

std::vector<double> open_loop_schedule(std::uint64_t seed,
                                       std::size_t requests, double rate_qps) {
  WKNNG_CHECK_MSG(rate_qps > 0.0, "open-loop rate must be positive");
  std::vector<double> offsets;
  offsets.reserve(requests);
  const double mean_gap_us = 1e6 / rate_qps;
  double at = 0.0;
  for (std::size_t i = 0; i < requests; ++i) {
    // Counter-hash: the i-th gap comes from its own (seed, i) stream, not a
    // generator threaded through the loop, so draws never depend on how many
    // requests precede them.
    Rng rng(seed, kArrivalStream + i);
    const double u = rng.next_double();  // [0, 1)
    at += -std::log1p(-u) * mean_gap_us;
    offsets.push_back(at);
  }
  return offsets;
}

LoadGenReport run_load(ServeEngine& engine, const FloatMatrix& queries,
                       const LoadGenConfig& config,
                       const MutationHooks& hooks) {
  WKNNG_CHECK_MSG(queries.rows() > 0, "loadgen needs at least one query row");
  const std::size_t n = config.requests;
  LoadGenReport rep;
  rep.requests = n;
  if (n == 0) return rep;

  // Which requests exist, what each one asks, and which are mutations is all
  // fixed here — before any clock is read. A mutation kind with no matching
  // hook degrades to a read so read-only callers never need hooks.
  std::vector<RequestKind> kinds(n, RequestKind::kRead);
  for (std::size_t i = 0; i < n; ++i) {
    RequestKind kind = request_kind(config, i);
    if (kind == RequestKind::kInsert && !hooks.insert) kind = RequestKind::kRead;
    if (kind == RequestKind::kDelete && !hooks.erase) kind = RequestKind::kRead;
    kinds[i] = kind;
  }

  // Request i always carries tag i and query row i % rows.
  auto query_row = [&](std::size_t i) {
    const auto row = queries.row(i % queries.rows());
    return std::vector<float>(row.begin(), row.end());
  };

  std::atomic<std::size_t> inserts{0}, deletes{0}, mutation_failures{0};
  auto mutate = [&](std::size_t i) {
    try {
      if (kinds[i] == RequestKind::kInsert) {
        hooks.insert(i);
        inserts.fetch_add(1, std::memory_order_relaxed);
      } else {
        hooks.erase(i);
        deletes.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (const Error&) {
      // A rejected mutation (MutationError etc.) is an outcome, not a crash.
      mutation_failures.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<QueryResult> results(n);
  const auto t0 = Clock::now();

  if (config.mode == LoadGenConfig::Mode::kOpen) {
    const std::vector<double> offsets =
        open_loop_schedule(config.seed, n, config.rate_qps);
    std::vector<std::future<QueryResult>> futures(n);
    std::vector<std::uint8_t> submitted(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double, std::micro>(offsets[i])));
      if (kinds[i] == RequestKind::kRead) {
        futures[i] = engine.submit(query_row(i), config.deadline_us, i);
        submitted[i] = 1;
      } else {
        mutate(i);  // inline on the arrival thread: admission is ordered
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (submitted[i] != 0) results[i] = futures[i].get();
    }
  } else {
    const std::size_t c =
        std::max<std::size_t>(1, std::min(config.concurrency, n));
    std::vector<std::thread> threads;
    threads.reserve(c);
    for (std::size_t t = 0; t < c; ++t) {
      threads.emplace_back([&, t] {
        // One request outstanding per thread; distinct indices, no locking.
        for (std::size_t i = t; i < n; i += c) {
          if (kinds[i] == RequestKind::kRead) {
            results[i] =
                engine.submit(query_row(i), config.deadline_us, i).get();
          } else {
            mutate(i);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }

  const auto t1 = Clock::now();
  rep.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  rep.achieved_qps =
      rep.wall_seconds > 0.0 ? static_cast<double>(n) / rep.wall_seconds : 0.0;
  std::vector<double> latencies;
  latencies.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (kinds[i] != RequestKind::kRead) continue;
    ++rep.reads;
    fold(rep, results[i]);
    latencies.push_back(results[i].total_us);
  }
  // Exact sample quantiles over the full latency sample — the loadgen holds
  // every response anyway, so unlike the engine's streaming histogram there
  // is no reason to pay the bucket estimator's interpolation error here.
  std::sort(latencies.begin(), latencies.end());
  rep.latency_p50_us = exact_quantile(latencies, 0.50);
  rep.latency_p95_us = exact_quantile(latencies, 0.95);
  rep.latency_p99_us = exact_quantile(latencies, 0.99);
  rep.latency_max_us = latencies.empty() ? 0.0 : latencies.back();
  rep.inserts = inserts.load();
  rep.deletes = deletes.load();
  rep.mutation_failures = mutation_failures.load();
  return rep;
}

LoadGenReport run_load(ServeEngine& engine, const FloatMatrix& queries,
                       const LoadGenConfig& config) {
  return run_load(engine, queries, config, MutationHooks{});
}

}  // namespace wknng::serve
