#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wknng::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Stream-id base for arrival draws, disjoint from the kernel's query
/// streams (0x5EA5C000 + tag) so the schedule never correlates with search.
constexpr std::uint64_t kArrivalStream = 0x10AD6E4100000000ULL;

/// One response folded to a 64-bit digest. Each request's digest is keyed by
/// its tag, so the run-level commutative sum detects any per-request change
/// (wrong neighbors, wrong visit count, wrong status) independent of the
/// order responses happened to arrive in.
std::uint64_t response_hash(const QueryResult& qr) {
  SplitMix64 sm(qr.tag ^ 0x9E3779B97F4A7C15ULL);
  std::uint64_t h = sm.next() ^ static_cast<std::uint64_t>(qr.status);
  for (const Neighbor& nb : qr.neighbors) {
    std::uint32_t dist_bits = 0;
    std::memcpy(&dist_bits, &nb.dist, sizeof(dist_bits));
    h = (h ^ nb.id) * 0xBF58476D1CE4E5B9ULL;
    h = (h ^ dist_bits) * 0x94D049BB133111EBULL;
    h ^= h >> 29;
  }
  h ^= qr.points_visited * 0x2545F4914F6CDD1DULL;
  return h;
}

void fold(LoadGenReport& rep, const QueryResult& qr) {
  switch (qr.status) {
    case QueryStatus::kOk: ++rep.ok; break;
    case QueryStatus::kTimeout: ++rep.timed_out; break;
    case QueryStatus::kShed: ++rep.shed; break;
    case QueryStatus::kFailed: ++rep.failed; break;
  }
  rep.points_visited += qr.points_visited;
  rep.result_hash += response_hash(qr);  // commutative: order-independent
}

}  // namespace

std::string LoadGenReport::to_json() const {
  std::ostringstream os;
  os << "{\"requests\":" << requests << ",\"ok\":" << ok
     << ",\"timed_out\":" << timed_out << ",\"shed\":" << shed
     << ",\"failed\":" << failed << ",\"wall_seconds\":" << wall_seconds
     << ",\"achieved_qps\":" << achieved_qps
     << ",\"points_visited\":" << points_visited << ",\"result_hash\":\""
     << std::hex << result_hash << "\"}";
  return os.str();
}

std::vector<double> open_loop_schedule(std::uint64_t seed,
                                       std::size_t requests, double rate_qps) {
  WKNNG_CHECK_MSG(rate_qps > 0.0, "open-loop rate must be positive");
  std::vector<double> offsets;
  offsets.reserve(requests);
  const double mean_gap_us = 1e6 / rate_qps;
  double at = 0.0;
  for (std::size_t i = 0; i < requests; ++i) {
    // Counter-hash: the i-th gap comes from its own (seed, i) stream, not a
    // generator threaded through the loop, so draws never depend on how many
    // requests precede them.
    Rng rng(seed, kArrivalStream + i);
    const double u = rng.next_double();  // [0, 1)
    at += -std::log1p(-u) * mean_gap_us;
    offsets.push_back(at);
  }
  return offsets;
}

LoadGenReport run_load(ServeEngine& engine, const FloatMatrix& queries,
                       const LoadGenConfig& config) {
  WKNNG_CHECK_MSG(queries.rows() > 0, "loadgen needs at least one query row");
  const std::size_t n = config.requests;
  LoadGenReport rep;
  rep.requests = n;
  if (n == 0) return rep;

  // Request i always carries tag i and query row i % rows: which requests
  // exist, and what each one asks, is fixed before any clock is read.
  auto query_row = [&](std::size_t i) {
    const auto row = queries.row(i % queries.rows());
    return std::vector<float>(row.begin(), row.end());
  };

  std::vector<QueryResult> results(n);
  const auto t0 = Clock::now();

  if (config.mode == LoadGenConfig::Mode::kOpen) {
    const std::vector<double> offsets =
        open_loop_schedule(config.seed, n, config.rate_qps);
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double, std::micro>(offsets[i])));
      futures.push_back(engine.submit(query_row(i), config.deadline_us, i));
    }
    for (std::size_t i = 0; i < n; ++i) results[i] = futures[i].get();
  } else {
    const std::size_t c =
        std::max<std::size_t>(1, std::min(config.concurrency, n));
    std::vector<std::thread> threads;
    threads.reserve(c);
    for (std::size_t t = 0; t < c; ++t) {
      threads.emplace_back([&, t] {
        // One request outstanding per thread; distinct indices, no locking.
        for (std::size_t i = t; i < n; i += c) {
          results[i] =
              engine.submit(query_row(i), config.deadline_us, i).get();
        }
      });
    }
    for (auto& th : threads) th.join();
  }

  const auto t1 = Clock::now();
  rep.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  rep.achieved_qps =
      rep.wall_seconds > 0.0 ? static_cast<double>(n) / rep.wall_seconds : 0.0;
  for (const QueryResult& qr : results) fold(rep, qr);
  return rep;
}

}  // namespace wknng::serve
