#include "serve/metrics.hpp"

#include <sstream>

#include "obs/registry.hpp"

namespace wknng::serve {

std::string ServeMetrics::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{"
     << "\"enqueued\":" << enqueued.value()
     << ",\"completed\":" << completed.value() << ",\"ok\":" << ok.value()
     << ",\"timed_out\":" << timed_out.value() << ",\"shed\":" << shed.value()
     << ",\"rejected_overload\":" << shed.value()
     << ",\"rejected_deadline\":" << rejected_deadline.value()
     << ",\"failed\":" << failed.value() << ",\"batches\":" << batches.value()
     << ",\"queries\":" << queries.value()
     << ",\"points_visited\":" << points_visited.value()
     << ",\"snapshots_published\":" << snapshots_published.value()
     << ",\"optimized_queries\":" << optimized_queries.value()
     << ",\"budget_capped\":" << budget_capped.value()
     << ",\"escalations\":" << escalations.value() << "}"
     << ",\"latency_us\":" << latency_us.to_json()
     << ",\"queue_us\":" << queue_us.to_json()
     << ",\"batch_size\":" << batch_size.to_json()
     << ",\"visited\":" << visited.to_json() << "}";
  return os.str();
}

void register_metrics(obs::MetricsRegistry& reg, const ServeMetrics& m) {
  reg.link_counter("wknng_serve_enqueued_total", m.enqueued,
                   "Requests accepted into the queue");
  reg.link_counter("wknng_serve_completed_total", m.completed,
                   "Futures fulfilled (any status)");
  reg.link_counter("wknng_serve_ok_total", m.ok,
                   "Requests completed with neighbors in time");
  reg.link_counter("wknng_serve_timed_out_total", m.timed_out,
                   "Typed timeout results (deadline passed)");
  reg.link_counter("wknng_serve_shed_total", m.shed,
                   "Requests rejected at admission");
  reg.link_counter("wknng_serve_rejected_overload_total", m.shed,
                   "OverloadShed rejections (admission: queue full/shutdown)");
  reg.link_counter("wknng_serve_rejected_deadline_total", m.rejected_deadline,
                   "DeadlineExceeded rejections (expired before dispatch)");
  reg.link_counter("wknng_serve_failed_total", m.failed,
                   "Batch executions failed with a typed error");
  reg.link_counter("wknng_serve_batches_total", m.batches,
                   "Micro-batches dispatched");
  reg.link_counter("wknng_serve_queries_total", m.queries,
                   "Queries executed by the kernel");
  reg.link_counter("wknng_serve_points_visited_total", m.points_visited,
                   "Distance evaluations across executed queries");
  reg.link_counter("wknng_serve_snapshots_published_total",
                   m.snapshots_published, "Graph snapshots published");
  reg.link_counter("wknng_serve_optimized_queries_total", m.optimized_queries,
                   "Queries answered through the optimized serving layout");
  reg.link_counter("wknng_serve_budget_capped_total", m.budget_capped,
                   "Search runs stopped by a visit budget before convergence");
  reg.link_counter("wknng_serve_escalations_total", m.escalations,
                   "Adaptive re-runs at a higher budget rung");
  reg.link_histogram("wknng_serve_latency_us", m.latency_us,
                     "Enqueue to future-fulfilled latency (us)");
  reg.link_histogram("wknng_serve_queue_us", m.queue_us,
                     "Enqueue to batch-dispatch latency (us)");
  reg.link_histogram("wknng_serve_batch_size", m.batch_size,
                     "Dispatched batch sizes");
  reg.link_histogram("wknng_serve_visited", m.visited,
                     "Per-request points visited");
}

}  // namespace wknng::serve
