#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace wknng::obs {
class MetricsRegistry;
}  // namespace wknng::obs

namespace wknng::serve {

// The serving metrics are built from the shared observability instruments
// (obs/metrics.hpp) — one Counter/Histogram implementation, one percentile
// contract, shared with the central registry. The aliases keep the historical
// serve:: spellings working.
using obs::Counter;
using obs::Histogram;
using obs::latency_bounds_us;
using obs::size_bounds;

/// The embedded metrics layer of one ServeEngine: monotonic counters plus
/// fixed-bucket latency histograms, dumped as a single JSON object. All
/// members are safe to update from any engine thread.
struct ServeMetrics {
  // Counters.
  Counter enqueued;         ///< requests accepted into the queue
  Counter completed;        ///< futures fulfilled (any status)
  Counter ok;               ///< completed with neighbors in time
  Counter timed_out;        ///< typed timeout results (deadline passed)
  Counter shed;             ///< rejected at admission (queue full / shutdown)

  /// Requests whose deadline expired before dispatch — rejected un-executed
  /// at batch triage. Disjoint from `shed` (admission-time OverloadShed) and
  /// a strict subset of `timed_out` (which also counts requests that ran but
  /// finished late). Exported as wknng_serve_rejected_deadline_total next to
  /// wknng_serve_rejected_overload_total so a Prometheus reader never has to
  /// infer which rejection path fired.
  Counter rejected_deadline;
  Counter failed;           ///< batch execution failed with a typed error
  Counter batches;          ///< micro-batches dispatched
  Counter queries;          ///< queries actually executed by the kernel
  Counter points_visited;   ///< distance evaluations across executed queries
  Counter snapshots_published;

  /// Serve-path optimization (opt layer). `optimized_queries` counts queries
  /// answered through the pruned/CSR layout (subset of `queries`);
  /// `budget_capped` counts runs a visit budget stopped short of
  /// convergence; `escalations` counts adaptive re-runs at a higher budget
  /// rung (one query escalated twice counts twice).
  Counter optimized_queries;
  Counter budget_capped;
  Counter escalations;

  // Histograms.
  Histogram latency_us{latency_bounds_us()};   ///< enqueue → future fulfilled
  Histogram queue_us{latency_bounds_us()};     ///< enqueue → batch dispatch
  Histogram batch_size{size_bounds(65536.0)};  ///< dispatched batch sizes
  Histogram visited{size_bounds(1e9)};         ///< per-request points visited

  std::string to_json() const;
};

/// Link every ServeMetrics instrument into the central registry as live
/// `wknng_serve_*` series — a scrape reads the engine's current values with
/// no copying. `m` must outlive the registry's exports (render the scrape
/// before the engine is destroyed).
void register_metrics(obs::MetricsRegistry& reg, const ServeMetrics& m);

}  // namespace wknng::serve
