#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wknng::serve {

/// Monotonic event counter. Relaxed increments: the serving hot path only
/// ever adds, and reports tolerate a momentarily stale read.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are strictly increasing bucket upper
/// bounds (inclusive), with an implicit +inf overflow bucket. Recording is
/// lock-free (one relaxed bucket increment plus count/sum updates);
/// percentiles are extracted at report time by linear interpolation inside
/// the covering bucket — the Prometheus model, embedded. Bucket layouts are
/// fixed at construction so two runs of the same config produce structurally
/// identical JSON.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double max_seen() const { return max_.load(std::memory_order_relaxed); }

  /// Value at percentile `p` in [0, 100]; 0 when the histogram is empty.
  double percentile(double p) const;

  /// {"count":..,"sum":..,"mean":..,"p50":..,"p95":..,"p99":..,"max":..,
  ///  "buckets":[{"le":bound,"count":n},...]}  (overflow bucket has "le":"inf")
  std::string to_json() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// 1-2-5 geometric series from 1 µs to 10 s — the latency bucket layout every
/// serving histogram shares.
std::vector<double> latency_bounds_us();

/// 1-2-5 geometric series from 1 to `max_value` (sizes, visit counts).
std::vector<double> size_bounds(double max_value);

/// The embedded metrics layer of one ServeEngine: monotonic counters plus
/// fixed-bucket latency histograms, dumped as a single JSON object. All
/// members are safe to update from any engine thread.
struct ServeMetrics {
  // Counters.
  Counter enqueued;         ///< requests accepted into the queue
  Counter completed;        ///< futures fulfilled (any status)
  Counter ok;               ///< completed with neighbors in time
  Counter timed_out;        ///< typed timeout results (deadline passed)
  Counter shed;             ///< rejected at admission (queue full / shutdown)
  Counter failed;           ///< batch execution failed with a typed error
  Counter batches;          ///< micro-batches dispatched
  Counter queries;          ///< queries actually executed by the kernel
  Counter points_visited;   ///< distance evaluations across executed queries
  Counter snapshots_published;

  // Histograms.
  Histogram latency_us{latency_bounds_us()};   ///< enqueue → future fulfilled
  Histogram queue_us{latency_bounds_us()};     ///< enqueue → batch dispatch
  Histogram batch_size{size_bounds(65536.0)};  ///< dispatched batch sizes
  Histogram visited{size_bounds(1e9)};         ///< per-request points visited

  std::string to_json() const;
};

}  // namespace wknng::serve
