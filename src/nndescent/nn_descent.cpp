#include "nndescent/nn_descent.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "exact/brute_force.hpp"

namespace wknng::nndescent {

namespace {

/// Host-side spin locks for per-point update serialisation.
class HostLocks {
 public:
  explicit HostLocks(std::size_t n)
      : locks_(std::make_unique<std::atomic_flag[]>(n)) {}

  void acquire(std::size_t i) {
    while (locks_[i].test_and_set(std::memory_order_acquire)) {
    }
  }
  void release(std::size_t i) { locks_[i].clear(std::memory_order_release); }

 private:
  std::unique_ptr<std::atomic_flag[]> locks_;
};

/// The mutable neighbor table: k slots per point, replace-worst updates,
/// NN-Descent "new" flags.
struct NeighborTable {
  std::size_t n;
  std::size_t k;
  std::vector<Neighbor> slots;  // n * k
  std::vector<char> is_new;     // n * k

  NeighborTable(std::size_t n_, std::size_t k_)
      : n(n_), k(k_),
        slots(n * k, Neighbor{std::numeric_limits<float>::infinity(),
                              KnnGraph::kInvalid}),
        is_new(n * k, 0) {}

  /// Replace-worst insert under the caller's lock. Returns true if the
  /// table changed (the NN-Descent convergence signal).
  bool insert(std::uint32_t p, float dist, std::uint32_t id) {
    Neighbor* row = slots.data() + static_cast<std::size_t>(p) * k;
    char* flags = is_new.data() + static_cast<std::size_t>(p) * k;
    std::size_t worst = 0;
    for (std::size_t s = 0; s < k; ++s) {
      if (row[s].id == id) return false;  // duplicate
      if (row[worst] < row[s]) worst = s;
    }
    if (!(Neighbor{dist, id} < row[worst])) return false;
    row[worst] = {dist, id};
    flags[worst] = 1;
    return true;
  }
};

}  // namespace

KnnGraph nn_descent(ThreadPool& pool, const FloatMatrix& points,
                    const NnDescentParams& params, NnDescentCost* cost) {
  const std::size_t n = points.rows();
  const std::size_t k = params.k;
  WKNNG_CHECK_MSG(k > 0 && k < n, "need 0 < k < n; k=" << k << " n=" << n);
  Timer timer;

  NeighborTable table(n, k);
  HostLocks locks(n);
  std::atomic<std::uint64_t> evals{0};

  // Random initialisation: k distinct non-self neighbors per point.
  pool.parallel_for(n, 128, [&](std::size_t p) {
    Rng rng(params.seed, 0x10000u + p);
    std::uint64_t local_evals = 0;
    std::size_t placed = 0;
    while (placed < k) {
      const auto id = static_cast<std::uint32_t>(rng.next_below(n));
      if (id == p) continue;
      const float d = exact::l2_sq(points.row(p), points.row(id));
      ++local_evals;
      if (table.insert(static_cast<std::uint32_t>(p), d, id)) ++placed;
      // Duplicate draws do not advance `placed` but always terminate for
      // n > k (expected O(k) draws).
    }
    evals.fetch_add(local_evals, std::memory_order_relaxed);
  });

  std::size_t iters_done = 0;
  for (std::size_t iter = 0; iter < params.max_iters; ++iter) {
    ++iters_done;

    // Phase 1: sample new/old forward candidates, clearing sampled flags.
    std::vector<std::vector<std::uint32_t>> fwd_new(n), fwd_old(n);
    for (std::size_t p = 0; p < n; ++p) {
      Neighbor* row = table.slots.data() + p * k;
      char* flags = table.is_new.data() + p * k;
      auto& nw = fwd_new[p];
      auto& od = fwd_old[p];
      for (std::size_t s = 0; s < k; ++s) {
        if (row[s].id == KnnGraph::kInvalid) continue;
        if (flags[s] != 0 && nw.size() < params.max_candidates) {
          nw.push_back(row[s].id);
          flags[s] = 0;
        } else if (flags[s] == 0 && od.size() < params.max_candidates) {
          od.push_back(row[s].id);
        }
      }
    }

    // Phase 2: reverse candidates (capped, deterministically subsampled by
    // arrival order — adequate for a baseline).
    std::vector<std::vector<std::uint32_t>> rev_new(n), rev_old(n);
    for (std::size_t p = 0; p < n; ++p) {
      for (std::uint32_t q : fwd_new[p]) {
        if (rev_new[q].size() < params.max_candidates) {
          rev_new[q].push_back(static_cast<std::uint32_t>(p));
        }
      }
      for (std::uint32_t q : fwd_old[p]) {
        if (rev_old[q].size() < params.max_candidates) {
          rev_old[q].push_back(static_cast<std::uint32_t>(p));
        }
      }
    }

    // Phase 3: local join.
    std::atomic<std::uint64_t> updates{0};
    pool.parallel_for(n, 32, [&](std::size_t p) {
      std::vector<std::uint32_t> join_new = fwd_new[p];
      join_new.insert(join_new.end(), rev_new[p].begin(), rev_new[p].end());
      std::vector<std::uint32_t> join_old = fwd_old[p];
      join_old.insert(join_old.end(), rev_old[p].begin(), rev_old[p].end());

      std::uint64_t local_updates = 0;
      std::uint64_t local_evals = 0;
      auto submit = [&](std::uint32_t u, std::uint32_t v) {
        if (u == v) return;
        const float d = exact::l2_sq(points.row(u), points.row(v));
        ++local_evals;
        locks.acquire(u);
        local_updates += table.insert(u, d, v) ? 1 : 0;
        locks.release(u);
        locks.acquire(v);
        local_updates += table.insert(v, d, u) ? 1 : 0;
        locks.release(v);
      };

      for (std::size_t a = 0; a < join_new.size(); ++a) {
        for (std::size_t b = a + 1; b < join_new.size(); ++b) {
          submit(join_new[a], join_new[b]);
        }
        for (std::uint32_t v : join_old) submit(join_new[a], v);
      }
      updates.fetch_add(local_updates, std::memory_order_relaxed);
      evals.fetch_add(local_evals, std::memory_order_relaxed);
    });

    if (updates.load() <= static_cast<std::uint64_t>(
                              params.delta * static_cast<double>(n) * k)) {
      break;
    }
  }

  // Extract.
  KnnGraph g(n, k);
  pool.parallel_for(n, 128, [&](std::size_t p) {
    std::vector<Neighbor> row(table.slots.begin() + p * k,
                              table.slots.begin() + (p + 1) * k);
    std::sort(row.begin(), row.end());
    auto out = g.row(p);
    std::size_t count = 0;
    for (const Neighbor& nb : row) {
      if (nb.id == KnnGraph::kInvalid) break;
      out[count++] = nb;
    }
  });

  if (cost != nullptr) {
    cost->distance_evals += evals.load();
    cost->iterations = iters_done;
    cost->seconds += timer.elapsed_s();
  }
  return g;
}

}  // namespace wknng::nndescent
