#pragma once

#include <cstdint>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"

namespace wknng::nndescent {

/// Classic CPU NN-Descent (Dong, Moses & Li, WWW 2011) — the second
/// comparator of the speed-versus-accuracy experiments, and the family the
/// paper's refinement phase descends from.
struct NnDescentParams {
  std::size_t k = 10;
  std::size_t max_iters = 12;
  std::size_t max_candidates = 50;  ///< sampled new/old candidates per point
  double delta = 0.001;             ///< stop when updates < delta * n * k
  std::uint64_t seed = 7;
};

struct NnDescentCost {
  std::uint64_t distance_evals = 0;
  std::size_t iterations = 0;  ///< rounds actually executed
  double seconds = 0.0;
};

/// Builds an approximate K-NN graph by iterative local joins: initialise
/// with random neighbors, then repeatedly let each point's neighborhood
/// propose candidate pairs among themselves until convergence.
KnnGraph nn_descent(ThreadPool& pool, const FloatMatrix& points,
                    const NnDescentParams& params,
                    NnDescentCost* cost = nullptr);

}  // namespace wknng::nndescent
