#include "exact/brute_force.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/topk.hpp"

namespace wknng::exact {

namespace {

void write_row(KnnGraph& g, std::size_t row, TopK&& heap) {
  const auto sorted = heap.take_sorted();
  auto out = g.row(row);
  std::copy(sorted.begin(), sorted.end(), out.begin());
}

}  // namespace

KnnGraph brute_force_knng(ThreadPool& pool, const FloatMatrix& points,
                          std::size_t k, std::size_t block) {
  const std::size_t n = points.rows();
  WKNNG_CHECK_MSG(k > 0 && k < n, "need 0 < k < n; k=" << k << " n=" << n);
  block = std::max<std::size_t>(1, block);

  KnnGraph g(n, k);
  // Parallelise over query stripes; each stripe streams all j-blocks so a
  // block of candidate rows stays cache-hot across the stripe's queries.
  const std::size_t stripe = 64;
  const std::size_t num_stripes = (n + stripe - 1) / stripe;
  pool.parallel_for(num_stripes, [&](std::size_t s) {
    const std::size_t i_begin = s * stripe;
    const std::size_t i_end = std::min(i_begin + stripe, n);
    std::vector<TopK> heaps;
    heaps.reserve(i_end - i_begin);
    for (std::size_t i = i_begin; i < i_end; ++i) heaps.emplace_back(k);

    for (std::size_t j0 = 0; j0 < n; j0 += block) {
      const std::size_t j_end = std::min(j0 + block, n);
      for (std::size_t i = i_begin; i < i_end; ++i) {
        auto qi = points.row(i);
        TopK& heap = heaps[i - i_begin];
        for (std::size_t j = j0; j < j_end; ++j) {
          if (j == i) continue;
          const float d = l2_sq(qi, points.row(j));
          heap.push(d, static_cast<std::uint32_t>(j));
        }
      }
    }
    for (std::size_t i = i_begin; i < i_end; ++i) {
      write_row(g, i, std::move(heaps[i - i_begin]));
    }
  });
  return g;
}

KnnGraph brute_force_knn(ThreadPool& pool, const FloatMatrix& base,
                         const FloatMatrix& queries, std::size_t k,
                         std::span<const std::uint32_t> exclude_id) {
  const std::size_t n = base.rows();
  const std::size_t q = queries.rows();
  WKNNG_CHECK_MSG(k > 0 && k <= n, "need 0 < k <= n; k=" << k << " n=" << n);
  WKNNG_CHECK(base.cols() == queries.cols());
  WKNNG_CHECK(exclude_id.empty() || exclude_id.size() == q);

  KnnGraph g(q, k);
  pool.parallel_for(q, 8, [&](std::size_t qi) {
    const std::uint32_t skip =
        exclude_id.empty() ? kNoExclude : exclude_id[qi];
    TopK heap(k);
    auto query = queries.row(qi);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == skip) continue;
      heap.push(l2_sq(query, base.row(j)), static_cast<std::uint32_t>(j));
    }
    write_row(g, qi, std::move(heap));
  });
  return g;
}

SampledTruth sampled_ground_truth(ThreadPool& pool, const FloatMatrix& points,
                                  std::size_t k, std::size_t sample_size,
                                  std::uint64_t seed) {
  const std::size_t n = points.rows();
  sample_size = std::min(sample_size, n);

  // Deterministic sample without replacement (partial Fisher–Yates).
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  Rng rng(seed, 7);
  for (std::size_t i = 0; i < sample_size; ++i) {
    const std::size_t j = i + rng.next_below(n - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(sample_size);
  std::sort(ids.begin(), ids.end());

  FloatMatrix queries(sample_size, points.cols());
  for (std::size_t i = 0; i < sample_size; ++i) {
    auto src = points.row(ids[i]);
    std::copy(src.begin(), src.end(), queries.row(i).begin());
  }

  SampledTruth truth;
  truth.graph = brute_force_knn(pool, points, queries, k, ids);
  truth.ids = std::move(ids);
  return truth;
}

}  // namespace wknng::exact
