#include "exact/brute_force.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/topk.hpp"

namespace wknng::exact {

namespace {

void write_row(KnnGraph& g, std::size_t row, TopK&& heap) {
  const auto sorted = heap.take_sorted();
  auto out = g.row(row);
  std::copy(sorted.begin(), sorted.end(), out.begin());
}

}  // namespace

KnnGraph brute_force_knng(ThreadPool& pool, const FloatMatrix& points,
                          std::size_t k, std::size_t block) {
  const std::size_t n = points.rows();
  WKNNG_CHECK_MSG(k > 0 && k < n, "need 0 < k < n; k=" << k << " n=" << n);
  block = std::max<std::size_t>(1, block);

  KnnGraph g(n, k);
  // Row pointers and the squared-norm cache feeding the tile micro-kernel
  // (the strict backend ignores the norms and runs the serial reference).
  std::vector<const float*> rows(n);
  for (std::size_t r = 0; r < n; ++r) rows[r] = points.row(r).data();
  std::vector<float> norms;
  if (!kernels::strict_mode()) norms = kernels::row_norms(points);
  const float* norms_ptr = norms.empty() ? nullptr : norms.data();
  const kernels::KernelOps& ops = kernels::ops();

  // Parallelise over query stripes; each stripe streams all j-blocks so a
  // block of candidate rows stays cache-hot across the stripe's queries.
  const std::size_t stripe = 64;
  const std::size_t num_stripes = (n + stripe - 1) / stripe;
  pool.parallel_for(num_stripes, [&](std::size_t s) {
    const std::size_t i_begin = s * stripe;
    const std::size_t i_end = std::min(i_begin + stripe, n);
    const std::size_t na = i_end - i_begin;
    std::vector<TopK> heaps;
    heaps.reserve(na);
    for (std::size_t i = i_begin; i < i_end; ++i) heaps.emplace_back(k);
    std::vector<float> dist(na * block);

    for (std::size_t j0 = 0; j0 < n; j0 += block) {
      const std::size_t j_end = std::min(j0 + block, n);
      const std::size_t nb = j_end - j0;
      ops.l2_tile(rows.data() + i_begin,
                  norms_ptr != nullptr ? norms_ptr + i_begin : nullptr, na,
                  rows.data() + j0,
                  norms_ptr != nullptr ? norms_ptr + j0 : nullptr, nb,
                  points.cols(), dist.data(), block);
      // Heap pushes keep the historical (i-then-j) order, so tie-breaking is
      // unchanged from the pre-dispatch loop.
      for (std::size_t i = i_begin; i < i_end; ++i) {
        TopK& heap = heaps[i - i_begin];
        const float* drow = &dist[(i - i_begin) * block];
        for (std::size_t j = j0; j < j_end; ++j) {
          if (j == i) continue;
          heap.push(drow[j - j0], static_cast<std::uint32_t>(j));
        }
      }
    }
    for (std::size_t i = i_begin; i < i_end; ++i) {
      write_row(g, i, std::move(heaps[i - i_begin]));
    }
  });
  return g;
}

KnnGraph brute_force_knn(ThreadPool& pool, const FloatMatrix& base,
                         const FloatMatrix& queries, std::size_t k,
                         std::span<const std::uint32_t> exclude_id) {
  const std::size_t n = base.rows();
  const std::size_t q = queries.rows();
  WKNNG_CHECK_MSG(k > 0 && k <= n, "need 0 < k <= n; k=" << k << " n=" << n);
  WKNNG_CHECK(base.cols() == queries.cols());
  WKNNG_CHECK(exclude_id.empty() || exclude_id.size() == q);

  KnnGraph g(q, k);
  // Base row pointers + norm cache shared by every query (strict backend
  // ignores the norms and scores serially).
  std::vector<const float*> rows(n);
  for (std::size_t r = 0; r < n; ++r) rows[r] = base.row(r).data();
  std::vector<float> norms;
  if (!kernels::strict_mode()) norms = kernels::row_norms(base);
  const float* norms_ptr = norms.empty() ? nullptr : norms.data();
  const kernels::KernelOps& ops = kernels::ops();

  constexpr std::size_t kChunk = 1024;
  pool.parallel_for(q, 8, [&](std::size_t qi) {
    const std::uint32_t skip =
        exclude_id.empty() ? kNoExclude : exclude_id[qi];
    TopK heap(k);
    auto query = queries.row(qi);
    float dist[kChunk];
    for (std::size_t j0 = 0; j0 < n; j0 += kChunk) {
      const std::size_t cnt = std::min(kChunk, n - j0);
      ops.l2_batch(query.data(), rows.data() + j0,
                   norms_ptr != nullptr ? norms_ptr + j0 : nullptr, cnt,
                   base.cols(), dist);
      for (std::size_t j = j0; j < j0 + cnt; ++j) {
        if (j == skip) continue;
        heap.push(dist[j - j0], static_cast<std::uint32_t>(j));
      }
    }
    write_row(g, qi, std::move(heap));
  });
  return g;
}

SampledTruth sampled_ground_truth(ThreadPool& pool, const FloatMatrix& points,
                                  std::size_t k, std::size_t sample_size,
                                  std::uint64_t seed) {
  const std::size_t n = points.rows();
  sample_size = std::min(sample_size, n);

  // Deterministic sample without replacement (partial Fisher–Yates).
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  Rng rng(seed, 7);
  for (std::size_t i = 0; i < sample_size; ++i) {
    const std::size_t j = i + rng.next_below(n - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(sample_size);
  std::sort(ids.begin(), ids.end());

  FloatMatrix queries(sample_size, points.cols());
  for (std::size_t i = 0; i < sample_size; ++i) {
    auto src = points.row(ids[i]);
    std::copy(src.begin(), src.end(), queries.row(i).begin());
  }

  SampledTruth truth;
  truth.graph = brute_force_knn(pool, points, queries, k, ids);
  truth.ids = std::move(ids);
  return truth;
}

}  // namespace wknng::exact
