#include "exact/recall.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace wknng::exact {

double row_recall(std::span<const Neighbor> approx,
                  std::span<const Neighbor> exact) {
  if (exact.empty()) return 1.0;
  // An exact entry counts as recalled when the approximate row contains its
  // id, or contains some neighbor at exactly the same distance (distance
  // ties are interchangeable — the ANN-benchmarks convention, which stops
  // tie-breaking noise from depressing recall on gridded/synthetic data).
  std::size_t hits = 0;
  for (const Neighbor& e : exact) {
    if (e.id == KnnGraph::kInvalid) continue;
    const bool found =
        std::any_of(approx.begin(), approx.end(), [&](const Neighbor& a) {
          return a.id == e.id ||
                 (a.id != KnnGraph::kInvalid && a.dist == e.dist);
        });
    hits += found ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(exact.size());
}

double recall(const KnnGraph& approx, const KnnGraph& truth) {
  WKNNG_CHECK(approx.num_points() == truth.num_points());
  WKNNG_CHECK(approx.k() >= truth.k());
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.num_points(); ++i) {
    acc += row_recall(approx.row(i).subspan(0, truth.k()), truth.row(i));
  }
  return acc / static_cast<double>(truth.num_points());
}

double recall(const KnnGraph& approx, const SampledTruth& truth) {
  WKNNG_CHECK(approx.k() >= truth.graph.k());
  double acc = 0.0;
  for (std::size_t j = 0; j < truth.ids.size(); ++j) {
    acc += row_recall(approx.row(truth.ids[j]).subspan(0, truth.graph.k()),
                      truth.graph.row(j));
  }
  return truth.ids.empty() ? 1.0
                           : acc / static_cast<double>(truth.ids.size());
}

}  // namespace wknng::exact
