#pragma once

#include <cstdint>
#include <span>

#include "common/knn_graph.hpp"
#include "exact/brute_force.hpp"

namespace wknng::exact {

/// recall@k of one approximate row against its exact row: fraction of the
/// exact k ids present in the approximate row. Distance ties in the exact
/// set are handled by id-match (the standard ANN-benchmarks convention:
/// an approximate neighbor at exactly the tie distance also counts).
double row_recall(std::span<const Neighbor> approx,
                  std::span<const Neighbor> exact);

/// Mean recall@k over all points: `approx` and `truth` must have identical
/// shape (truth from brute_force_knng).
double recall(const KnnGraph& approx, const KnnGraph& truth);

/// Mean recall@k over a ground-truth sample: truth.row(j) corresponds to
/// point truth.ids[j] of `approx`.
double recall(const KnnGraph& approx, const SampledTruth& truth);

}  // namespace wknng::exact
