#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "kernels/kernels.hpp"

namespace wknng::exact {

/// Squared Euclidean distance via the dispatched kernel backend (the host
/// reference used by every baseline and by recall ground truth). On the
/// strict scalar backend this is exactly the historical serial accumulation;
/// on the SIMD backends it shares the dot/norm core with every other
/// primitive, so the same pair yields the same bits everywhere.
inline float l2_sq(std::span<const float> x, std::span<const float> y) {
  return kernels::l2_serial(x, y);
}

/// Exact all-points K-NN graph by cache-blocked brute force: O(n^2 d).
/// This is both the recall ground truth and the "exact" baseline of the
/// speed-versus-accuracy experiments. `block` controls the j-tile size kept
/// hot in cache while a stripe of query rows streams over it.
KnnGraph brute_force_knng(ThreadPool& pool, const FloatMatrix& points,
                          std::size_t k, std::size_t block = 256);

/// Exact k-NN sets of `queries` against `base` (queries need not be rows of
/// base). Self-matches are excluded only when `exclude_id` maps a query to
/// its base row (pass kNoExclude entries otherwise).
inline constexpr std::uint32_t kNoExclude = ~std::uint32_t{0};
KnnGraph brute_force_knn(ThreadPool& pool, const FloatMatrix& base,
                         const FloatMatrix& queries, std::size_t k,
                         std::span<const std::uint32_t> exclude_id = {});

/// Ground truth for a deterministic sample of `sample_size` point ids:
/// returns (sampled ids, exact KnnGraph rows for those ids against the full
/// set). Large-N experiments use this so that recall evaluation stays
/// O(sample * n) instead of O(n^2).
struct SampledTruth {
  std::vector<std::uint32_t> ids;
  KnnGraph graph;  ///< row j corresponds to point ids[j]
};
SampledTruth sampled_ground_truth(ThreadPool& pool, const FloatMatrix& points,
                                  std::size_t k, std::size_t sample_size,
                                  std::uint64_t seed);

}  // namespace wknng::exact
