#pragma once

// Internal shared kernel of the tiled strategy: computes one 32x32 distance
// block between two point tiles with scratch-staged coordinate chunks, then
// merges the block's sorted row/column runs into the k-NN sets. Used by the
// leaf kernel (tiles within an RP-forest bucket) and by the warp-centric
// exact brute force (tiles over the whole dataset).

#include <algorithm>
#include <cstring>
#include <span>

#include <vector>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "core/knn_set.hpp"
#include "kernels/kernels.hpp"
#include "kernels/sq8.hpp"
#include "simt/fault.hpp"
#include "simt/packed.hpp"
#include "simt/sort.hpp"
#include "simt/warp.hpp"

namespace wknng::core::detail {

/// Per-warp state of the tiled kernel's compressed (SQ8) path: the borrowed
/// dataset view plus reusable buffers for one tile of prepared queries. The
/// prepared-query staging lives on the heap rather than in warp scratch —
/// like the fp32 kernel's query rows it models register/scratch-resident
/// data, and the scratch plan's budget keeps being charged against the
/// coordinate staging buffers it was sized for.
struct Sq8TileState {
  const kernels::Sq8View* view = nullptr;
  std::vector<float> w;                      ///< kWarpSize x dim pre-scaled rows
  std::vector<kernels::Sq8Query> queries;    ///< one prepared handle per A row

  bool active() const { return view != nullptr && view->valid(); }
};

/// Scratch plan of the tiled kernel; allocate once per warp task.
struct TileBuffers {
  std::span<float> block;    ///< 32 x 32 distance accumulator
  std::span<float> a_stage;  ///< 32 x chunk_dims coordinates of tile A
  std::span<float> b_stage;  ///< 32 x chunk_dims coordinates of tile B
  std::size_t chunk_dims = 0;
};

/// Chooses how many dimensions one staging chunk holds so that the working
/// set (A-stage + B-stage + distance block + merge buffer) fits the budget.
inline std::size_t tiled_chunk_dims(std::size_t scratch_capacity,
                                    std::size_t dim, std::size_t k) {
  const std::size_t reserve =
      simt::kWarpSize * simt::kWarpSize * sizeof(float)  // distance block
      + k * sizeof(std::uint64_t)                        // merge buffer
      + 512;                                             // alignment slack
  WKNNG_CHECK_MSG(
      scratch_capacity > reserve + 2 * simt::kWarpSize * sizeof(float) * 8,
      "scratch too small for tiled kernel: " << scratch_capacity);
  const std::size_t dc =
      (scratch_capacity - reserve) / (2 * simt::kWarpSize * sizeof(float));
  return std::clamp<std::size_t>(dc, 8, dim);
}

/// Allocates the kernel's scratch buffers out of the warp's arena.
inline TileBuffers alloc_tile_buffers(simt::Warp& w, std::size_t dim,
                                      std::size_t k) {
  TileBuffers buf;
  buf.chunk_dims = tiled_chunk_dims(w.scratch().capacity(), dim, k);
  buf.block = w.scratch().alloc<float>(simt::kWarpSize * simt::kWarpSize);
  buf.a_stage = w.scratch().alloc<float>(simt::kWarpSize * buf.chunk_dims);
  buf.b_stage = w.scratch().alloc<float>(simt::kWarpSize * buf.chunk_dims);
  return buf;
}

/// Processes one tile pair: computes the squared-distance block with the
/// dispatched `l2_tile` micro-kernel (register-blocked norm trick on the
/// SIMD backends, the original serial accumulation on the strict scalar
/// backend), then submits each block row to the A-side point and each block
/// column to the B-side point as sorted 32-candidate runs. Diagonal pairs
/// (the same tile on both sides) use the upper triangle for rows and its
/// mirror for columns, so every ordered pair is submitted exactly once.
///
/// `a_id(i)` / `b_id(j)` map tile-local indices to point ids; `na`, `nb`
/// are the tile occupancies (<= 32). `norms_by_id`, when non-empty, is a
/// squared-norm cache indexed by point id (see kernels::row_norms); the
/// strict backend ignores it.
///
/// When `sq8` is active, the distance block comes from the compressed tier
/// instead: the A-side rows are prepared as asymmetric queries and scored
/// against the B-side u8 code rows with the dispatched `sq8_l2_tile`
/// micro-kernel (candidate traffic drops to 1 byte/dim). Block values are
/// then the asymmetric approximation d(a_fp32, decode(b)) for both the row
/// and the mirrored column runs — the builder's exact rerank phase restores
/// full-precision ordering before the final graph is emitted.
template <typename AIdFn, typename BIdFn>
void process_tile_pair(simt::Warp& w, const FloatMatrix& points, AIdFn&& a_id,
                       std::size_t na, BIdFn&& b_id, std::size_t nb,
                       bool diagonal, KnnSetArray& sets, const TileBuffers& buf,
                       std::span<const float> norms_by_id = {},
                       Sq8TileState* sq8 = nullptr) {
  using simt::kWarpSize;
  using simt::Lanes;
  using simt::Packed;

  const std::size_t dim = points.cols();
  const std::size_t pairs = diagonal ? na * (na - 1) / 2 : na * nb;

  if (sq8 != nullptr && sq8->active()) {
    const kernels::Sq8View& view = *sq8->view;
    const std::uint8_t* code_rows[kWarpSize];
    float b_terms[kWarpSize];
    const bool have_terms = !view.terms.empty();
    for (std::size_t j = 0; j < nb; ++j) {
      const auto id =
          static_cast<std::uint32_t>(diagonal ? a_id(j) : b_id(j));
      code_rows[j] = view.row(id).data();
      if (have_terms) b_terms[j] = view.terms[id];
    }
    // Stage one prepared query per A row into slices of the reusable warp
    // buffer; preparation reads the full-precision row once (charged below).
    sq8->w.resize(kWarpSize * dim);
    sq8->queries.resize(na);
    for (std::size_t i = 0; i < na; ++i) {
      sq8->queries[i] = kernels::sq8_prepare_into(
          points.row(a_id(i)), view.codebook(), sq8->w.data() + i * dim);
    }
    kernels::ops().sq8_l2_tile(sq8->queries.data(), na, code_rows,
                               have_terms ? b_terms : nullptr, nb,
                               buf.block.data(), kWarpSize);

    // Query rows are read at full precision once for preparation; candidate
    // traffic is the compressed tier's whole point — 1 byte/dim per code row.
    w.count_read(na * dim * sizeof(float));
    w.count_read(nb * dim * sizeof(std::uint8_t));
    w.stats().distance_evals += pairs;
    w.stats().flops += 3 * dim * na + 4 * dim * pairs;
  } else {
    // Gather the tile's row pointers (and cached norms, when provided). The
    // scratch staging buffers of `buf` still reserve the modeled per-warp
    // footprint — the space constraint the chunking plan is sized against —
    // but the arithmetic streams the rows through the micro-kernel directly.
    const float* a_rows[kWarpSize];
    const float* b_rows[kWarpSize];
    float a_norms[kWarpSize];
    float b_norms[kWarpSize];
    for (std::size_t i = 0; i < na; ++i) {
      a_rows[i] = points.row(a_id(i)).data();
      if (!norms_by_id.empty()) a_norms[i] = norms_by_id[a_id(i)];
    }
    if (diagonal) {
      for (std::size_t j = 0; j < nb; ++j) {
        b_rows[j] = a_rows[j];
        if (!norms_by_id.empty()) b_norms[j] = a_norms[j];
      }
    } else {
      for (std::size_t j = 0; j < nb; ++j) {
        b_rows[j] = points.row(b_id(j)).data();
        if (!norms_by_id.empty()) b_norms[j] = norms_by_id[b_id(j)];
      }
    }

    const bool have_norms = !norms_by_id.empty();
    kernels::ops().l2_tile(a_rows, have_norms ? a_norms : nullptr, na, b_rows,
                           have_norms ? b_norms : nullptr, nb, dim,
                           buf.block.data(), kWarpSize);

    // Same global traffic as the staged-chunk plan: each tile row is read
    // once per tile pair (A and B tiles alias on the diagonal).
    w.count_read(na * dim * sizeof(float));
    if (!diagonal) w.count_read(nb * dim * sizeof(float));

    w.stats().distance_evals += pairs;
    w.stats().flops += 3 * dim * pairs;
  }

  // Row runs: candidates for A-side points.
  for (std::size_t i = 0; i < na; ++i) {
    Lanes<std::uint64_t> run;
    run.fill(Packed::kEmpty);
    const std::size_t j_begin = diagonal ? i + 1 : 0;
    if (j_begin >= nb) continue;
    for (std::size_t j = j_begin; j < nb; ++j) {
      run[j] =
          Packed::make(simt::fault_corrupt_distance(buf.block[i * kWarpSize + j]),
                       static_cast<std::uint32_t>(b_id(j)));
    }
    simt::bitonic_sort_lanes(w, run);
    sets.merge_sorted_tile(w, static_cast<std::uint32_t>(a_id(i)), run);
  }

  // Column runs: candidates for B-side points (mirror of the block).
  for (std::size_t j = 0; j < nb; ++j) {
    Lanes<std::uint64_t> run;
    run.fill(Packed::kEmpty);
    const std::size_t i_end = diagonal ? j : na;
    if (i_end == 0) continue;
    for (std::size_t i = 0; i < i_end; ++i) {
      run[i] =
          Packed::make(simt::fault_corrupt_distance(buf.block[i * kWarpSize + j]),
                       static_cast<std::uint32_t>(a_id(i)));
    }
    simt::bitonic_sort_lanes(w, run);
    sets.merge_sorted_tile(w, static_cast<std::uint32_t>(b_id(j)), run);
  }
}

}  // namespace wknng::core::detail
