#include "core/rp_forest.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "simt/launch.hpp"
#include "simt/warp.hpp"

namespace wknng::core {

void Buckets::append(const Buckets& other) {
  const std::uint32_t base = offsets.back();
  ids.insert(ids.end(), other.ids.begin(), other.ids.end());
  offsets.reserve(offsets.size() + other.num_buckets());
  for (std::size_t b = 1; b < other.offsets.size(); ++b) {
    offsets.push_back(base + other.offsets[b]);
  }
}

namespace {

/// A node still being split: the half-open range [begin, end) of `perm`.
struct Segment {
  std::uint32_t begin;
  std::uint32_t end;

  std::uint32_t size() const { return end - begin; }
};

/// One warp's worth of projection work: 32 consecutive perm slots of one
/// segment, all projected onto that segment's direction.
struct Chunk {
  std::uint32_t perm_begin;
  std::uint32_t count;
  std::uint32_t segment;  // index into the level's direction matrix
};

}  // namespace

Buckets build_rp_tree(ThreadPool& pool, const FloatMatrix& points,
                      std::size_t leaf_size, std::uint64_t seed,
                      std::size_t tree_index, simt::StatsAccumulator* acc) {
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  WKNNG_CHECK_MSG(leaf_size >= 2, "leaf_size must be >= 2");

  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::vector<float> proj(n, 0.0f);

  Buckets out;
  std::vector<Segment> active;
  if (n > leaf_size) {
    active.push_back({0, static_cast<std::uint32_t>(n)});
  } else {
    out.ids = perm;
    out.offsets.push_back(static_cast<std::uint32_t>(n));
    return out;
  }

  std::size_t level = 0;
  while (!active.empty()) {
    // Draw one Gaussian direction per active node. The stream id folds in
    // (tree, level, node) so every split is an independent projection.
    FloatMatrix dirs(active.size(), dim);
    for (std::size_t s = 0; s < active.size(); ++s) {
      Rng rng(seed, (tree_index << 40) ^ (level << 20) ^ s);
      auto d = dirs.row(s);
      for (std::size_t j = 0; j < dim; ++j) d[j] = rng.next_gaussian();
    }

    // Flatten the level into warp-sized chunks and project with one launch
    // (the level-synchronous GPU structure: one kernel per tree level).
    std::vector<Chunk> chunks;
    for (std::size_t s = 0; s < active.size(); ++s) {
      const Segment& seg = active[s];
      for (std::uint32_t b = seg.begin; b < seg.end; b += simt::kWarpSize) {
        const std::uint32_t cnt =
            std::min<std::uint32_t>(simt::kWarpSize, seg.end - b);
        chunks.push_back({b, cnt, static_cast<std::uint32_t>(s)});
      }
    }

    simt::LaunchConfig config;
    config.trace_label = "rp_forest_level";
    simt::launch_warps(pool, chunks.size(), config, acc, [&](simt::Warp& w) {
      const Chunk& c = chunks[w.id()];
      auto dir = dirs.row(c.segment);
      // Direction is staged once per warp (shared-memory resident on HW).
      w.count_read(dim * sizeof(float));
      for (std::uint32_t l = 0; l < c.count; ++l) {
        const std::uint32_t id = perm[c.perm_begin + l];
        auto x = points.row(id);
        float acc_dot = 0.0f;
        for (std::size_t j = 0; j < dim; ++j) acc_dot += x[j] * dir[j];
        // proj is keyed by point id (each point appears in exactly one
        // active node per level, so there is no aliasing).
        proj[id] = acc_dot;
      }
      w.stats().flops += 2 * dim * c.count;
      w.count_read(static_cast<std::uint64_t>(c.count) * dim * sizeof(float));
      w.count_write(static_cast<std::uint64_t>(c.count) * sizeof(float));
    });

    // Host split: exact balanced median split. nth_element partitions the
    // node's ids around the positional median of their projections, so both
    // children get floor/ceil(m/2) points even under duplicate projections —
    // the tree depth is always ceil(log2(n / leaf_size)).
    std::vector<Segment> next;
    for (const Segment& seg : active) {
      const std::uint32_t mid = seg.size() / 2;
      auto begin = perm.begin() + seg.begin;
      std::nth_element(begin, begin + mid, perm.begin() + seg.end,
                       [&](std::uint32_t a, std::uint32_t b) {
                         return proj[a] < proj[b];
                       });
      const Segment left{seg.begin, seg.begin + mid};
      const Segment right{seg.begin + mid, seg.end};
      for (const Segment& child : {left, right}) {
        if (child.size() <= leaf_size) {
          out.ids.insert(out.ids.end(), perm.begin() + child.begin,
                         perm.begin() + child.end);
          out.offsets.push_back(static_cast<std::uint32_t>(out.ids.size()));
        } else {
          next.push_back(child);
        }
      }
    }
    active = std::move(next);
    ++level;
  }

  return out;
}

namespace {

/// Computes projections of `ids` onto `dir` with one SIMT launch (warp per
/// 32-id chunk, candidate-parallel dot products). Shared by the spill-tree
/// build, which cannot use the in-place permutation representation.
std::vector<float> project_ids(ThreadPool& pool, const FloatMatrix& points,
                               std::span<const std::uint32_t> ids,
                               std::span<const float> dir,
                               simt::StatsAccumulator* acc) {
  const std::size_t dim = points.cols();
  std::vector<float> proj(ids.size());
  const std::size_t num_chunks =
      (ids.size() + simt::kWarpSize - 1) / simt::kWarpSize;
  simt::LaunchConfig config;
  config.trace_label = "rp_forest_project";
  simt::launch_warps(pool, num_chunks, config, acc, [&](simt::Warp& w) {
    const std::size_t begin = static_cast<std::size_t>(w.id()) * simt::kWarpSize;
    const std::size_t cnt =
        std::min<std::size_t>(simt::kWarpSize, ids.size() - begin);
    w.count_read(dim * sizeof(float));  // direction staged once per warp
    for (std::size_t l = 0; l < cnt; ++l) {
      auto x = points.row(ids[begin + l]);
      float acc_dot = 0.0f;
      for (std::size_t j = 0; j < dim; ++j) acc_dot += x[j] * dir[j];
      proj[begin + l] = acc_dot;
    }
    w.stats().flops += 2 * dim * cnt;
    w.count_read(cnt * dim * sizeof(float));
    w.count_write(cnt * sizeof(float));
  });
  return proj;
}

}  // namespace

Buckets build_rp_tree_spill(ThreadPool& pool, const FloatMatrix& points,
                            std::size_t leaf_size, float spill,
                            std::uint64_t seed, std::size_t tree_index,
                            simt::StatsAccumulator* acc) {
  WKNNG_CHECK_MSG(spill >= 0.0f && spill < 0.45f,
                  "spill must be in [0, 0.45): " << spill);
  if (spill == 0.0f) {
    return build_rp_tree(pool, points, leaf_size, seed, tree_index, acc);
  }
  WKNNG_CHECK_MSG(leaf_size >= 2, "leaf_size must be >= 2");
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();

  Buckets out;
  // Nodes own explicit id vectors — children overlap, so the permutation
  // trick of the non-spill build does not apply.
  struct Node {
    std::vector<std::uint32_t> ids;
    std::size_t depth;
  };
  std::vector<Node> stack;
  {
    std::vector<std::uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0u);
    stack.push_back({std::move(all), 0});
  }

  std::size_t node_counter = 0;
  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();
    if (node.ids.size() <= leaf_size) {
      out.ids.insert(out.ids.end(), node.ids.begin(), node.ids.end());
      out.offsets.push_back(static_cast<std::uint32_t>(out.ids.size()));
      continue;
    }

    // Direction seeded by (tree, running node index) — deterministic for a
    // fixed traversal order.
    Rng rng(seed, (tree_index << 40) ^ 0x5B1LL ^ node_counter++);
    std::vector<float> dir(dim);
    for (auto& v : dir) v = rng.next_gaussian();

    const std::vector<float> proj = project_ids(pool, points, node.ids, dir, acc);

    // Order ids by projection; children take overlapping halves.
    std::vector<std::uint32_t> order(node.ids.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      if (proj[a] != proj[b]) return proj[a] < proj[b];
      return node.ids[a] < node.ids[b];  // deterministic tiebreak
    });

    const std::size_t m = node.ids.size();
    const std::size_t mid = m / 2;
    const auto spill_count = static_cast<std::size_t>(spill * static_cast<float>(m));

    Node left{{}, node.depth + 1}, right{{}, node.depth + 1};
    left.ids.reserve(mid + spill_count);
    right.ids.reserve(m - mid + spill_count);
    for (std::size_t i = 0; i < std::min(m, mid + spill_count); ++i) {
      left.ids.push_back(node.ids[order[i]]);
    }
    for (std::size_t i = mid >= spill_count ? mid - spill_count : 0; i < m; ++i) {
      right.ids.push_back(node.ids[order[i]]);
    }
    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }
  return out;
}

Buckets build_rp_forest(ThreadPool& pool, const FloatMatrix& points,
                        std::size_t num_trees, std::size_t leaf_size,
                        std::uint64_t seed, simt::StatsAccumulator* acc,
                        float spill) {
  WKNNG_CHECK(num_trees > 0);
  Buckets forest;
  for (std::size_t t = 0; t < num_trees; ++t) {
    Buckets tree =
        spill > 0.0f
            ? build_rp_tree_spill(pool, points, leaf_size, spill, seed, t, acc)
            : build_rp_tree(pool, points, leaf_size, seed, t, acc);
    if (t == 0) {
      forest = std::move(tree);
    } else {
      forest.append(tree);
    }
  }
  return forest;
}

}  // namespace wknng::core
