#pragma once

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/params.hpp"
#include "simt/stats.hpp"

namespace wknng::core {

/// Everything a build produces: the graph, per-phase wall-clock timings, and
/// the aggregated device work counters. Phase timings are the rows of the
/// phase-breakdown experiment (Tab. 1 in DESIGN.md).
struct BuildResult {
  KnnGraph graph;

  double forest_seconds = 0.0;   ///< RP-forest construction
  double leaf_seconds = 0.0;     ///< warp-centric brute force over buckets
  double refine_seconds = 0.0;   ///< all neighbor-of-neighbor rounds
  double extract_seconds = 0.0;  ///< k-set normalisation into KnnGraph
  double total_seconds = 0.0;

  simt::Stats stats;             ///< aggregated over every launch
  std::size_t num_buckets = 0;   ///< forest leaves processed

  /// Conflicts flagged by the race detector; always 0 unless
  /// BuildParams::check_races (or WKNNG_CHECK_RACES) enabled detection.
  std::size_t races_detected = 0;
};

/// w-KNNG: the paper's all-points approximate K-NN graph builder.
///
/// Pipeline: RP forest -> warp-per-bucket brute force into global-memory
/// k-NN sets (maintained by the configured Strategy) -> optional
/// neighbor-of-neighbor refinement rounds -> extraction.
///
/// Usage:
///   ThreadPool pool;
///   core::BuildParams params;              // k, strategy, trees, ...
///   core::KnngBuilder builder(pool, params);
///   core::BuildResult r = builder.build(points);
///   // r.graph.row(i) = point i's neighbors, sorted by distance
class KnngBuilder {
 public:
  KnngBuilder(ThreadPool& pool, BuildParams params);

  const BuildParams& params() const { return params_; }

  /// Builds the graph for `points` (rows = points). Thread-compatible: one
  /// build at a time per builder, but distinct builders are independent.
  BuildResult build(const FloatMatrix& points) const;

 private:
  ThreadPool* pool_;
  BuildParams params_;
};

/// One-call convenience wrapper.
BuildResult build_knng(ThreadPool& pool, const FloatMatrix& points,
                       const BuildParams& params);

}  // namespace wknng::core
