#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/params.hpp"
#include "data/graph_io.hpp"
#include "kernels/sq8.hpp"
#include "simt/stats.hpp"

namespace wknng::obs {
class MetricsRegistry;
}  // namespace wknng::obs

namespace wknng::core {

/// What the build had to survive: the recovery ledger of one build. A build
/// is `degraded` when its output may differ from the ideal run — points were
/// quarantined or skipped, a strategy fallback happened, buckets failed for
/// good, or the deadline shed refinement rounds. Successful retries alone do
/// NOT degrade a build: retrying a partially processed bucket is idempotent,
/// so the result is the one the ideal run would have produced.
struct BuildHealth {
  bool degraded = false;
  std::string fallback_reason;         ///< e.g. kShared -> kTiled, with cause
  std::size_t buckets_retried = 0;     ///< leaf bucket executions re-launched
  std::size_t buckets_failed = 0;      ///< leaf buckets failed after all retries
  std::size_t buckets_degraded = 0;    ///< kShared buckets re-run as kTiled
  std::size_t launches_retried = 0;    ///< whole launches retried (alloc fail)
  std::size_t points_quarantined = 0;  ///< non-finite input rows excluded
  std::size_t refine_points_skipped = 0;  ///< point-rounds skipped in refine
  std::size_t rounds_completed = 0;    ///< refine rounds actually finished
  bool deadline_hit = false;           ///< soft budget stopped the build early
  std::uint64_t faults_injected = 0;   ///< decisions fired by the fault campaign
};

/// Everything a build produces: the graph, per-phase wall-clock timings, and
/// the aggregated device work counters. Phase timings are the rows of the
/// phase-breakdown experiment (Tab. 1 in DESIGN.md).
struct BuildResult {
  KnnGraph graph;

  double forest_seconds = 0.0;   ///< RP-forest construction
  double leaf_seconds = 0.0;     ///< warp-centric brute force over buckets
  double refine_seconds = 0.0;   ///< all neighbor-of-neighbor rounds
  double rerank_seconds = 0.0;   ///< exact fp32 rerank (compression=sq8 only)
  double extract_seconds = 0.0;  ///< k-set normalisation into KnnGraph
  double total_seconds = 0.0;

  /// Compressed-tier artifacts (compression=sq8 only; null otherwise): the
  /// trained code matrix — shared with checkpoints and handed to serving so
  /// queries keep scoring compressed rows — plus the rerank ledger.
  std::shared_ptr<const kernels::Sq8Matrix> sq8;
  std::uint64_t candidates_reranked = 0;  ///< exact distances in rerank phase
  std::size_t rerank_depth_used = 0;      ///< resolved per-point rerank depth

  simt::Stats stats;             ///< aggregated over every launch
  std::size_t num_buckets = 0;   ///< forest leaves processed

  /// Conflicts flagged by the race detector; always 0 unless
  /// BuildParams::check_races (or WKNNG_CHECK_RACES) enabled detection.
  std::size_t races_detected = 0;

  /// The recovery ledger: retries, fallbacks, quarantines, deadline.
  BuildHealth health;

  /// Ids of quarantined (non-finite) input rows, sorted ascending. Their
  /// graph rows hold best-effort neighbors at +inf distance.
  std::vector<std::uint32_t> quarantined_ids;
};

/// w-KNNG: the paper's all-points approximate K-NN graph builder.
///
/// Pipeline: RP forest -> warp-per-bucket brute force into global-memory
/// k-NN sets (maintained by the configured Strategy) -> optional
/// neighbor-of-neighbor refinement rounds -> extraction.
///
/// Usage:
///   ThreadPool pool;
///   core::BuildParams params;              // k, strategy, trees, ...
///   core::KnngBuilder builder(pool, params);
///   core::BuildResult r = builder.build(points);
///   // r.graph.row(i) = point i's neighbors, sorted by distance
class KnngBuilder {
 public:
  KnngBuilder(ThreadPool& pool, BuildParams params);

  const BuildParams& params() const { return params_; }

  /// Builds the graph for `points` (rows = points). Thread-compatible: one
  /// build at a time per builder, but distinct builders are independent.
  BuildResult build(const FloatMatrix& points) const;

  /// Resumes a build from a checkpoint written by a previous run with the
  /// same parameters and points (verified via build_signature — throws
  /// CheckpointMismatchError otherwise). The forest and leaf phases are
  /// skipped; refinement continues from the checkpointed round. Under a
  /// deterministic schedule the result is bit-identical to the
  /// uninterrupted build.
  BuildResult resume(const FloatMatrix& points,
                     const std::string& checkpoint_path) const;
  BuildResult resume(const FloatMatrix& points,
                     const data::BuildCheckpoint& checkpoint) const;

 private:
  BuildResult run(const FloatMatrix& points,
                  const data::BuildCheckpoint* checkpoint) const;

  ThreadPool* pool_;
  BuildParams params_;
};

/// One-call convenience wrapper.
BuildResult build_knng(ThreadPool& pool, const FloatMatrix& points,
                       const BuildParams& params);

/// Register the build's timings, health ledger, fault counts, and aggregated
/// Stats counters into the central metrics registry (`wknng_build_*` series),
/// for export via the registry's Prometheus/JSON formats.
void register_build_metrics(obs::MetricsRegistry& reg, const BuildResult& r);

// --- Input quarantine (shared with the incremental / dynamic layers) -------

/// Finds the input rows containing a non-finite coordinate. Returns their
/// ids, sorted ascending (parallel scan with a deterministic gather).
std::vector<std::uint32_t> scan_nonfinite_rows(ThreadPool& pool,
                                               const FloatMatrix& points);

/// Gives every quarantined point a best-effort row: the k lowest-id healthy
/// points at +inf distance — valid under the graph invariants and
/// unambiguously marked, so search code that walks the graph never falls off
/// a hole. `quarantined` must be sorted ascending.
void fill_quarantined_rows(KnnGraph& g,
                           std::span<const std::uint32_t> quarantined);

}  // namespace wknng::core
