#pragma once

#include <cstdint>
#include <span>

#include "common/knn_graph.hpp"
#include "common/thread_pool.hpp"
#include "core/params.hpp"
#include "simt/memory.hpp"
#include "simt/packed.hpp"
#include "simt/warp.hpp"

namespace wknng::core {

/// The global-memory k-NN sets of all n points, plus the three maintenance
/// strategies that operate on them. This is the heart of the paper: k-NN
/// sets of high-dimensional points do not fit in shared memory, so they live
/// in global memory as n*k packed 64-bit (distance,id) words, and the three
/// strategies differ in how concurrent warps update them.
///
/// Slot-order invariants differ by strategy:
///  * kBasic / kAtomic rows are unordered slot arrays (insertion replaces
///    the current worst slot).
///  * kTiled rows are kept sorted ascending (merge-based updates).
/// Extraction normalises both into a sorted, deduplicated KnnGraph.
class KnnSetArray {
 public:
  KnnSetArray(std::size_t n, std::size_t k);

  std::size_t num_points() const { return n_; }
  std::size_t k() const { return k_; }

  /// Raw row access (packed words). Concurrent use must go through the
  /// strategy member functions.
  std::uint64_t* row(std::size_t p) { return sets_.data() + p * k_; }
  const std::uint64_t* row(std::size_t p) const { return sets_.data() + p * k_; }

  // --- Strategy: basic (per-point lock, scan & replace) -------------------

  /// Inserts `cand` into point `dst`'s set under dst's spin lock. The warp
  /// scans the k slots in lane-parallel rounds for (a) a duplicate id and
  /// (b) the worst slot, then overwrites the worst if cand beats it.
  void insert_basic(simt::Warp& w, std::uint32_t dst, std::uint64_t cand);

  // --- Strategy: atomic (lock-free CAS on the worst slot) -----------------

  /// Lock-free insert: scan (atomic loads) for duplicate/worst, then CAS the
  /// worst slot; on a lost race, rescan and retry. cas_retries in the warp
  /// stats measures contention.
  void insert_atomic(simt::Warp& w, std::uint32_t dst, std::uint64_t cand);

  // --- Strategy: tiled (sorted rows, merge of sorted scratch runs) --------

  /// Returns the current worst (k-th best) packed value of dst's set without
  /// synchronisation. The worst value decreases monotonically over a build,
  /// so it is always safe to prune candidates that are >= this bound.
  std::uint64_t peek_worst_sorted(simt::Warp& w, std::uint32_t dst) const;

  /// Merges a *sorted ascending* run of 32 packed candidates (kEmpty-padded)
  /// into dst's sorted row, keeping the k best, under dst's lock. Candidates
  /// equal to an existing packed word are collapsed (same pair submitted by
  /// two trees). Scratch is used for the merge buffer.
  void merge_sorted_tile(simt::Warp& w, std::uint32_t dst,
                         const simt::Lanes<std::uint64_t>& sorted_run);

  // --- Uniform entry point -------------------------------------------------

  /// Strategy-dispatched single-candidate insert (used by kernels that do
  /// not batch; kTiled callers should prefer merge_sorted_tile).
  void insert(simt::Warp& w, Strategy s, std::uint32_t dst, std::uint64_t cand) {
    switch (s) {
      case Strategy::kBasic: insert_basic(w, dst, cand); return;
      case Strategy::kAtomic: insert_atomic(w, dst, cand); return;
      case Strategy::kTiled: insert_tiled_single(w, dst, cand); return;
      // kShared has no per-candidate *global* insert of its own (its sets
      // live in scratch during the bucket pass and are merged at the end);
      // out-of-kernel callers get the sorted-merge path, which preserves
      // the sorted-row invariant the bucket-end merge relies on.
      case Strategy::kShared: insert_tiled_single(w, dst, cand); return;
    }
  }

  /// Reads the current neighbor ids of point p into `out` (up to k entries,
  /// unsynchronised snapshot); returns the count. Used by the refinement
  /// phase to enumerate adjacency.
  std::size_t snapshot_ids(std::uint32_t p, std::uint32_t* out) const;

  /// True if id is currently present in p's set (unsynchronised; callers use
  /// it as a cheap pre-distance skip, false negatives are harmless).
  bool contains(simt::Warp& w, std::uint32_t p, std::uint32_t id) const;

  /// Normalises all sets into a KnnGraph: per row sort ascending, drop
  /// duplicates by id (keep best), drop empties. Runs on the pool.
  KnnGraph extract(ThreadPool& pool) const;

  /// The whole packed state as one flat span (n*k words) — the image the
  /// checkpoint format serialises. Host-side only.
  std::span<const std::uint64_t> words() const { return sets_.span(); }

  /// Overwrites the packed state from a checkpoint image of exactly n*k
  /// words (throws wknng::Error on size mismatch). Host-side only.
  void restore(std::span<const std::uint64_t> words);

  /// Grows the array to `new_n` points (existing sets preserved, new sets
  /// empty). Host-side only — must not race with running kernels. Used by
  /// the incremental builder when a batch of points arrives.
  void grow(std::size_t new_n);

  /// Shrinks the array to `new_n` points, keeping rows [0, new_n). Host-side
  /// only. Used by dynamic compaction after live rows were packed down.
  void shrink(std::size_t new_n);

 private:
  /// Degenerate single-candidate path for kTiled (wraps the candidate into a
  /// one-element run).
  void insert_tiled_single(simt::Warp& w, std::uint32_t dst, std::uint64_t cand);

  std::size_t n_;
  std::size_t k_;
  simt::DeviceBuffer<std::uint64_t> sets_;
  simt::SpinLockArray locks_;
};

}  // namespace wknng::core
