#include "core/builder.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <span>
#include <sstream>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/knn_set.hpp"
#include "core/leaf_knn.hpp"
#include "core/refine.hpp"
#include "core/resilience.hpp"
#include "core/rp_forest.hpp"
#include "kernels/kernels.hpp"
#include "simt/fault.hpp"
#include "simt/race.hpp"

namespace wknng::core {

const char* refine_mode_name(RefineMode m) {
  switch (m) {
    case RefineMode::kExpand: return "expand";
    case RefineMode::kLocalJoin: return "local-join";
  }
  return "?";
}

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kBasic: return "basic";
    case Strategy::kAtomic: return "atomic";
    case Strategy::kTiled: return "tiled";
    case Strategy::kShared: return "shared";
  }
  return "?";
}

Strategy strategy_from_name(const std::string& name) {
  if (name == "basic") return Strategy::kBasic;
  if (name == "atomic") return Strategy::kAtomic;
  if (name == "tiled") return Strategy::kTiled;
  if (name == "shared") return Strategy::kShared;
  throw Error("unknown strategy: " + name +
              " (valid: basic, atomic, tiled, shared)");
}

Strategy recommended_strategy(std::size_t dim) {
  return dim <= 16 ? Strategy::kAtomic : Strategy::kTiled;
}

std::uint64_t build_signature(const BuildParams& p, std::size_t n,
                              std::size_t dim) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis as a start
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix(p.k);
  mix(static_cast<std::uint64_t>(p.strategy));
  mix(p.num_trees);
  mix(p.leaf_size);
  mix(std::bit_cast<std::uint32_t>(p.spill));
  mix(p.refine_sample);
  mix(p.reverse_cap);
  mix(static_cast<std::uint64_t>(p.refine_mode));
  mix(p.seed);
  mix(p.scratch_bytes);
  mix(static_cast<std::uint64_t>(p.schedule.policy));
  mix(p.schedule.seed);
  mix(n);
  mix(dim);
  return h;
}

KnngBuilder::KnngBuilder(ThreadPool& pool, BuildParams params)
    : pool_(&pool), params_(params) {
  WKNNG_CHECK_MSG(params_.k > 0, "k must be positive");
  WKNNG_CHECK_MSG(params_.num_trees > 0, "need at least one tree");
  WKNNG_CHECK_MSG(params_.leaf_size >= 2, "leaf_size must be >= 2");
  WKNNG_CHECK_MSG(params_.spill >= 0.0f && params_.spill < 0.45f,
                  "spill must be in [0, 0.45): " << params_.spill);
  WKNNG_CHECK_MSG(params_.refine_iters == 0 || params_.refine_sample > 0,
                  "refine_sample must be positive when refine_iters > 0");
  WKNNG_CHECK_MSG(params_.deadline_seconds >= 0.0,
                  "deadline_seconds must be >= 0: " << params_.deadline_seconds);
  if (const char* env = std::getenv("WKNNG_CHECK_RACES");
      env != nullptr && *env != '\0' && *env != '0') {
    params_.check_races = true;
  }
  if (const char* env = std::getenv("WKNNG_INJECT_FAULTS");
      env != nullptr && *env != '\0') {
    params_.faults = simt::fault_spec_from_string(env);
  }
}

namespace {

/// Finds the input rows containing a non-finite coordinate. Returns their
/// ids, sorted ascending (parallel scan with a deterministic gather).
std::vector<std::uint32_t> scan_nonfinite_rows(ThreadPool& pool,
                                               const FloatMatrix& points) {
  const std::size_t n = points.rows();
  std::vector<std::uint8_t> bad(n, 0);
  std::atomic<std::size_t> any{0};
  pool.parallel_for(n, 256, [&](std::size_t p) {
    if (kernels::has_nonfinite(points.row(p))) {
      bad[p] = 1;
      any.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<std::uint32_t> ids;
  if (any.load(std::memory_order_relaxed) != 0) {
    for (std::size_t p = 0; p < n; ++p) {
      if (bad[p] != 0) ids.push_back(static_cast<std::uint32_t>(p));
    }
  }
  return ids;
}

/// Gives every quarantined point a best-effort row: the k lowest-id healthy
/// points at +inf distance. The row is valid under the graph invariants
/// (+inf entries sort by ascending id) and unambiguously marked — a consumer
/// can tell these are placeholders, but search code that walks the graph
/// never falls off a hole.
void fill_quarantined_rows(KnnGraph& g,
                           std::span<const std::uint32_t> quarantined) {
  const std::size_t k = g.k();
  std::vector<std::uint32_t> healthy;
  healthy.reserve(k + 1);
  for (std::uint32_t id = 0; healthy.size() < k + 1 &&
                             id < static_cast<std::uint32_t>(g.num_points());
       ++id) {
    if (!std::binary_search(quarantined.begin(), quarantined.end(), id)) {
      healthy.push_back(id);
    }
  }
  const float inf = std::numeric_limits<float>::infinity();
  for (const std::uint32_t q : quarantined) {
    auto row = g.row(q);
    std::size_t out = 0;
    for (const std::uint32_t id : healthy) {
      if (out == k) break;
      if (id == q) continue;
      row[out++] = Neighbor{inf, id};
    }
  }
}

}  // namespace

BuildResult KnngBuilder::build(const FloatMatrix& points) const {
  return run(points, nullptr);
}

BuildResult KnngBuilder::resume(const FloatMatrix& points,
                                const std::string& checkpoint_path) const {
  const data::BuildCheckpoint ckpt = data::read_checkpoint(checkpoint_path);
  return run(points, &ckpt);
}

BuildResult KnngBuilder::resume(const FloatMatrix& points,
                                const data::BuildCheckpoint& checkpoint) const {
  return run(points, &checkpoint);
}

BuildResult KnngBuilder::run(const FloatMatrix& points,
                             const data::BuildCheckpoint* ckpt) const {
  const std::size_t n = points.rows();
  WKNNG_CHECK_MSG(n > params_.k,
                  "need more points than k: n=" << n << " k=" << params_.k);

  BuildResult result;
  simt::StatsAccumulator acc;
  Timer total;
  Timer phase;

  // Opt-in deterministic fault injection for the whole build (one injector
  // at a time process-wide, like the race detector below).
  std::optional<simt::FaultInjector> injector;
  std::optional<simt::ScopedFaultInjection> injection;
  if (params_.faults.enabled) {
    injector.emplace(params_.faults);
    injection.emplace(*injector);
  }

  // Opt-in shadow-state race checking for the whole build (one detector at
  // a time process-wide; concurrent checked builds are not supported).
  std::optional<simt::RaceDetector> detector;
  std::optional<simt::ScopedRaceDetection> detection;
  if (params_.check_races) {
    detector.emplace();
    detection.emplace(*detector);
  }

  // Phase 0: input quarantine. Non-finite rows are excluded from the entire
  // build (a NaN coordinate would poison every distance it touches) and get
  // best-effort placeholder neighbors at extraction.
  const std::vector<std::uint32_t> quarantined =
      scan_nonfinite_rows(*pool_, points);
  result.quarantined_ids = quarantined;
  result.health.points_quarantined = quarantined.size();
  WKNNG_CHECK_MSG(n - quarantined.size() > params_.k,
                  "quarantine left too few usable points: " << quarantined.size()
                      << " of " << n << " rows are non-finite, need more than k="
                      << params_.k << " healthy ones");
  // The forest projects every row, so quarantined rows are zeroed in a
  // sanitized copy (only taken when needed). They still land in buckets but
  // are filtered out before any distance is computed.
  std::optional<FloatMatrix> sanitized;
  if (!quarantined.empty()) {
    sanitized.emplace(points);
    for (const std::uint32_t q : quarantined) {
      auto row = sanitized->row(q);
      std::fill(row.begin(), row.end(), 0.0f);
    }
  }
  const FloatMatrix& pts = sanitized ? *sanitized : points;

  const std::uint64_t signature =
      build_signature(params_, n, points.cols());

  // Resume path: verify the checkpoint belongs to this (params, points)
  // pair, then restore the k-NN set state and skip the phases it embodies.
  Strategy effective = params_.strategy;
  std::size_t start_round = 0;
  KnnSetArray sets(n, params_.k);
  if (ckpt != nullptr) {
    if (ckpt->signature != signature || ckpt->n != n ||
        ckpt->k != params_.k) {
      std::ostringstream os;
      os << "checkpoint does not match this build: signature "
         << ckpt->signature << " vs " << signature << ", n=" << ckpt->n
         << " vs " << n << ", k=" << ckpt->k << " vs " << params_.k;
      throw CheckpointMismatchError(os.str());
    }
    if (!std::equal(ckpt->quarantined.begin(), ckpt->quarantined.end(),
                    quarantined.begin(), quarantined.end())) {
      throw CheckpointMismatchError(
          "checkpoint quarantine list does not match the input data");
    }
    WKNNG_CHECK_MSG(ckpt->effective_strategy <=
                        static_cast<std::uint32_t>(Strategy::kShared),
                    "checkpoint has invalid strategy value "
                        << ckpt->effective_strategy);
    effective = static_cast<Strategy>(ckpt->effective_strategy);
    start_round = ckpt->rounds_done;
    sets.restore(ckpt->sets);
    if (effective != params_.strategy) {
      result.health.degraded = true;
      result.health.fallback_reason =
          std::string("resumed from a checkpoint built with the ") +
          strategy_name(effective) + " strategy";
    }
  }
  if (detector) {
    detector->label_region(sets.row(0), n * params_.k * sizeof(std::uint64_t),
                           "knn_sets");
  }

  const auto write_ckpt = [&](std::uint32_t rounds_done) {
    if (params_.checkpoint_path.empty()) return;
    data::BuildCheckpoint c;
    c.signature = signature;
    c.n = n;
    c.k = params_.k;
    c.rounds_done = rounds_done;
    c.effective_strategy = static_cast<std::uint32_t>(effective);
    c.quarantined = quarantined;
    c.sets.assign(sets.words().begin(), sets.words().end());
    data::write_checkpoint(params_.checkpoint_path, c);
  };

  const auto deadline_exceeded = [&] {
    return params_.deadline_seconds > 0.0 &&
           total.elapsed_s() >= params_.deadline_seconds;
  };

  if (ckpt == nullptr) {
    // Phase 1: random-projection forest.
    const Buckets forest =
        build_rp_forest(*pool_, pts, params_.num_trees, params_.leaf_size,
                        params_.seed, &acc, params_.spill);
    result.num_buckets = forest.num_buckets();
    result.forest_seconds = phase.lap_s();

    // kShared feasibility preflight: if the largest bucket cannot hold its
    // scratch-resident k-NN sets, degrade the whole pass to kTiled up front
    // instead of throwing — the paper's space limitation handled as policy.
    if (effective == Strategy::kShared) {
      const std::size_t need =
          forest.max_bucket_size() * params_.k * sizeof(std::uint64_t) + 1024;
      if (need > params_.scratch_bytes) {
        effective = Strategy::kTiled;
        std::ostringstream os;
        os << "shared-memory strategy infeasible (largest bucket of "
           << forest.max_bucket_size() << " points x k=" << params_.k
           << " needs " << need << " B of scratch, budget "
           << params_.scratch_bytes << " B); fell back to tiled";
        result.health.fallback_reason = os.str();
        result.health.degraded = true;
      }
    }

    // Phase 2: warp-centric brute force over every bucket, with bucket-level
    // retry/requeue and per-bucket kShared -> kTiled fallback.
    LeafReport leaf;
    leaf_knn_resilient(*pool_, pts, forest, effective, sets, &acc,
                       params_.scratch_bytes, params_.schedule,
                       params_.max_bucket_retries, quarantined, leaf);
    result.health.buckets_retried = leaf.buckets_retried;
    result.health.buckets_failed = leaf.buckets_failed;
    result.health.buckets_degraded = leaf.buckets_degraded;
    result.health.launches_retried = leaf.launches_retried;
    result.leaf_seconds = phase.lap_s();
    write_ckpt(0);
  } else {
    phase.lap_s();  // resumed builds report zero forest/leaf time
  }

  // Phase 3: neighbor-of-neighbor refinement rounds. The deadline is
  // checked between rounds only — a round that started always finishes, so
  // the sets are at a well-defined phase boundary when we stop.
  BuildParams eff_params = params_;
  eff_params.strategy = effective;
  result.health.rounds_completed = start_round;
  for (std::size_t round = start_round; round < params_.refine_iters; ++round) {
    if (deadline_exceeded()) {
      result.health.deadline_hit = true;
      break;
    }
    const Adjacency adj =
        snapshot_adjacency(*pool_, sets, params_.reverse_cap);
    std::size_t skipped = 0;
    with_launch_retry(params_.max_bucket_retries,
                      result.health.launches_retried, [&] {
                        skipped = refine_round(*pool_, pts, adj, eff_params,
                                               sets, &acc);
                      });
    result.health.refine_points_skipped += skipped;
    result.health.rounds_completed = round + 1;
    write_ckpt(static_cast<std::uint32_t>(round + 1));
  }
  result.refine_seconds = phase.lap_s();

  // Phase 4: normalise into the output graph; quarantined rows get their
  // placeholder neighbors.
  result.graph = sets.extract(*pool_);
  if (!quarantined.empty()) {
    fill_quarantined_rows(result.graph, quarantined);
  }
  result.extract_seconds = phase.lap_s();

  if (detector) {
    detection.reset();
    result.races_detected = detector->race_count();
  }
  if (injector) {
    injection.reset();
    result.health.faults_injected = injector->injected();
  }
  result.health.degraded =
      result.health.degraded || !quarantined.empty() ||
      result.health.buckets_failed > 0 ||
      result.health.refine_points_skipped > 0 || result.health.deadline_hit;
  result.total_seconds = total.elapsed_s();
  result.stats = acc.total();
  return result;
}

BuildResult build_knng(ThreadPool& pool, const FloatMatrix& points,
                       const BuildParams& params) {
  return KnngBuilder(pool, params).build(points);
}

}  // namespace wknng::core
