#include "core/builder.hpp"

#include <cstdlib>
#include <optional>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/knn_set.hpp"
#include "core/leaf_knn.hpp"
#include "core/refine.hpp"
#include "core/rp_forest.hpp"
#include "simt/race.hpp"

namespace wknng::core {

const char* refine_mode_name(RefineMode m) {
  switch (m) {
    case RefineMode::kExpand: return "expand";
    case RefineMode::kLocalJoin: return "local-join";
  }
  return "?";
}

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kBasic: return "basic";
    case Strategy::kAtomic: return "atomic";
    case Strategy::kTiled: return "tiled";
    case Strategy::kShared: return "shared";
  }
  return "?";
}

Strategy strategy_from_name(const std::string& name) {
  if (name == "basic") return Strategy::kBasic;
  if (name == "atomic") return Strategy::kAtomic;
  if (name == "tiled") return Strategy::kTiled;
  if (name == "shared") return Strategy::kShared;
  throw Error("unknown strategy: " + name);
}

Strategy recommended_strategy(std::size_t dim) {
  return dim <= 16 ? Strategy::kAtomic : Strategy::kTiled;
}

KnngBuilder::KnngBuilder(ThreadPool& pool, BuildParams params)
    : pool_(&pool), params_(params) {
  WKNNG_CHECK_MSG(params_.k > 0, "k must be positive");
  WKNNG_CHECK_MSG(params_.num_trees > 0, "need at least one tree");
  WKNNG_CHECK_MSG(params_.leaf_size >= 2, "leaf_size must be >= 2");
  if (const char* env = std::getenv("WKNNG_CHECK_RACES");
      env != nullptr && *env != '\0' && *env != '0') {
    params_.check_races = true;
  }
}

BuildResult KnngBuilder::build(const FloatMatrix& points) const {
  const std::size_t n = points.rows();
  WKNNG_CHECK_MSG(n > params_.k,
                  "need more points than k: n=" << n << " k=" << params_.k);

  BuildResult result;
  simt::StatsAccumulator acc;
  Timer total;
  Timer phase;

  // Opt-in shadow-state race checking for the whole build (one detector at
  // a time process-wide; concurrent checked builds are not supported).
  std::optional<simt::RaceDetector> detector;
  std::optional<simt::ScopedRaceDetection> detection;
  if (params_.check_races) {
    detector.emplace();
    detection.emplace(*detector);
  }

  // Phase 1: random-projection forest.
  const Buckets forest =
      build_rp_forest(*pool_, points, params_.num_trees, params_.leaf_size,
                      params_.seed, &acc, params_.spill);
  result.num_buckets = forest.num_buckets();
  result.forest_seconds = phase.lap_s();

  // Phase 2: warp-centric brute force over every bucket.
  KnnSetArray sets(n, params_.k);
  if (detector) {
    detector->label_region(sets.row(0), n * params_.k * sizeof(std::uint64_t),
                           "knn_sets");
  }
  leaf_knn(*pool_, points, forest, params_.strategy, sets, &acc,
           params_.scratch_bytes, params_.schedule);
  result.leaf_seconds = phase.lap_s();

  // Phase 3: neighbor-of-neighbor refinement rounds.
  for (std::size_t round = 0; round < params_.refine_iters; ++round) {
    const Adjacency adj =
        snapshot_adjacency(*pool_, sets, params_.reverse_cap);
    refine_round(*pool_, points, adj, params_, sets, &acc);
  }
  result.refine_seconds = phase.lap_s();

  // Phase 4: normalise into the output graph.
  result.graph = sets.extract(*pool_);
  result.extract_seconds = phase.lap_s();

  if (detector) {
    detection.reset();
    result.races_detected = detector->race_count();
  }
  result.total_seconds = total.elapsed_s();
  result.stats = acc.total();
  return result;
}

BuildResult build_knng(ThreadPool& pool, const FloatMatrix& points,
                       const BuildParams& params) {
  return KnngBuilder(pool, params).build(points);
}

}  // namespace wknng::core
