#include "core/builder.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/knn_set.hpp"
#include "core/leaf_knn.hpp"
#include "core/refine.hpp"
#include "core/resilience.hpp"
#include "core/rp_forest.hpp"
#include "kernels/kernels.hpp"
#include "kernels/sq8.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "simt/fault.hpp"
#include "simt/launch.hpp"
#include "simt/race.hpp"
#include "simt/warp_distance.hpp"

namespace wknng::core {

const char* refine_mode_name(RefineMode m) {
  switch (m) {
    case RefineMode::kExpand: return "expand";
    case RefineMode::kLocalJoin: return "local-join";
  }
  return "?";
}

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kBasic: return "basic";
    case Strategy::kAtomic: return "atomic";
    case Strategy::kTiled: return "tiled";
    case Strategy::kShared: return "shared";
  }
  return "?";
}

Strategy strategy_from_name(const std::string& name) {
  if (name == "basic") return Strategy::kBasic;
  if (name == "atomic") return Strategy::kAtomic;
  if (name == "tiled") return Strategy::kTiled;
  if (name == "shared") return Strategy::kShared;
  throw Error("unknown strategy: " + name +
              " (valid: basic, atomic, tiled, shared)");
}

Strategy recommended_strategy(std::size_t dim) {
  return dim <= 16 ? Strategy::kAtomic : Strategy::kTiled;
}

const char* compression_name(Compression c) {
  switch (c) {
    case Compression::kNone: return "none";
    case Compression::kSq8: return "sq8";
  }
  return "?";
}

Compression compression_from_name(const std::string& name) {
  if (name == "none") return Compression::kNone;
  if (name == "sq8") return Compression::kSq8;
  throw Error("unknown compression: " + name + " (valid: none, sq8)");
}

std::uint64_t build_signature(const BuildParams& p, std::size_t n,
                              std::size_t dim) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis as a start
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix(p.k);
  mix(static_cast<std::uint64_t>(p.strategy));
  mix(p.num_trees);
  mix(p.leaf_size);
  mix(std::bit_cast<std::uint32_t>(p.spill));
  mix(p.refine_sample);
  mix(p.reverse_cap);
  mix(static_cast<std::uint64_t>(p.refine_mode));
  mix(p.seed);
  mix(p.scratch_bytes);
  mix(static_cast<std::uint64_t>(p.schedule.policy));
  mix(p.schedule.seed);
  // The compressed tier changes every candidate distance, so it belongs in
  // the signature — but only when enabled: compression=none must keep the
  // exact pre-compression signature so existing checkpoints stay valid.
  if (p.compression != Compression::kNone) {
    mix(static_cast<std::uint64_t>(p.compression));
    mix(p.rerank_depth);
  }
  mix(n);
  mix(dim);
  return h;
}

KnngBuilder::KnngBuilder(ThreadPool& pool, BuildParams params)
    : pool_(&pool), params_(params) {
  WKNNG_CHECK_MSG(params_.k > 0, "k must be positive");
  WKNNG_CHECK_MSG(params_.num_trees > 0, "need at least one tree");
  WKNNG_CHECK_MSG(params_.leaf_size >= 2, "leaf_size must be >= 2");
  WKNNG_CHECK_MSG(params_.spill >= 0.0f && params_.spill < 0.45f,
                  "spill must be in [0, 0.45): " << params_.spill);
  WKNNG_CHECK_MSG(params_.refine_iters == 0 || params_.refine_sample > 0,
                  "refine_sample must be positive when refine_iters > 0");
  WKNNG_CHECK_MSG(params_.deadline_seconds >= 0.0,
                  "deadline_seconds must be >= 0: " << params_.deadline_seconds);
  if (const char* env = std::getenv("WKNNG_CHECK_RACES");
      env != nullptr && *env != '\0' && *env != '0') {
    params_.check_races = true;
  }
  if (const char* env = std::getenv("WKNNG_INJECT_FAULTS");
      env != nullptr && *env != '\0') {
    params_.faults = simt::fault_spec_from_string(env);
  }
  params_.obs = obs::params_from_env(params_.obs);
}

/// Finds the input rows containing a non-finite coordinate. Returns their
/// ids, sorted ascending (parallel scan with a deterministic gather).
std::vector<std::uint32_t> scan_nonfinite_rows(ThreadPool& pool,
                                               const FloatMatrix& points) {
  const std::size_t n = points.rows();
  std::vector<std::uint8_t> bad(n, 0);
  std::atomic<std::size_t> any{0};
  pool.parallel_for(n, 256, [&](std::size_t p) {
    if (kernels::has_nonfinite(points.row(p))) {
      bad[p] = 1;
      any.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<std::uint32_t> ids;
  if (any.load(std::memory_order_relaxed) != 0) {
    for (std::size_t p = 0; p < n; ++p) {
      if (bad[p] != 0) ids.push_back(static_cast<std::uint32_t>(p));
    }
  }
  return ids;
}

/// Gives every quarantined point a best-effort row: the k lowest-id healthy
/// points at +inf distance. The row is valid under the graph invariants
/// (+inf entries sort by ascending id) and unambiguously marked — a consumer
/// can tell these are placeholders, but search code that walks the graph
/// never falls off a hole.
void fill_quarantined_rows(KnnGraph& g,
                           std::span<const std::uint32_t> quarantined) {
  const std::size_t k = g.k();
  std::vector<std::uint32_t> healthy;
  healthy.reserve(k + 1);
  for (std::uint32_t id = 0; healthy.size() < k + 1 &&
                             id < static_cast<std::uint32_t>(g.num_points());
       ++id) {
    if (!std::binary_search(quarantined.begin(), quarantined.end(), id)) {
      healthy.push_back(id);
    }
  }
  const float inf = std::numeric_limits<float>::infinity();
  for (const std::uint32_t q : quarantined) {
    auto row = g.row(q);
    std::size_t out = 0;
    for (const std::uint32_t id : healthy) {
      if (out == k) break;
      if (id == q) continue;
      row[out++] = Neighbor{inf, id};
    }
  }
}

namespace {

/// One top-level phase on the build track of a trace: begins a tracer phase
/// at construction (so kernel launches attribute to it) and records a span
/// carrying the phase duration plus the Stats delta it covered. All methods
/// are no-ops when the tracer is null.
class PhaseSpan {
 public:
  PhaseSpan(obs::Tracer* tr, const char* name, simt::StatsAccumulator& acc)
      : acc_(&acc) {
    if (tr == nullptr) return;
    const std::uint64_t phase_idx = tr->begin_phase(name);
    span_.emplace(tr, name, "phase",
                  obs::Tracer::span_id(phase_idx, 0, 0, obs::SpanSalt::kPhase),
                  obs::kTrackBuild);
    before_ = acc_->total();
  }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  ~PhaseSpan() { finish(); }

  /// Record the span now; `seconds < 0` omits the seconds argument.
  void finish(double seconds = -1.0) {
    if (!span_) return;
    if (seconds >= 0.0) span_->arg_num("seconds", seconds);
    span_->arg("stats",
               simt::stats_delta(acc_->total(), before_).to_json());
    span_->finish();
    span_.reset();
  }

 private:
  simt::StatsAccumulator* acc_;
  simt::Stats before_;
  std::optional<obs::Span> span_;
};

}  // namespace

BuildResult KnngBuilder::build(const FloatMatrix& points) const {
  return run(points, nullptr);
}

BuildResult KnngBuilder::resume(const FloatMatrix& points,
                                const std::string& checkpoint_path) const {
  const data::BuildCheckpoint ckpt = data::read_checkpoint(checkpoint_path);
  return run(points, &ckpt);
}

BuildResult KnngBuilder::resume(const FloatMatrix& points,
                                const data::BuildCheckpoint& checkpoint) const {
  return run(points, &checkpoint);
}

BuildResult KnngBuilder::run(const FloatMatrix& points,
                             const data::BuildCheckpoint* ckpt) const {
  const std::size_t n = points.rows();
  WKNNG_CHECK_MSG(n > params_.k,
                  "need more points than k: n=" << n << " k=" << params_.k);

  BuildResult result;
  simt::StatsAccumulator acc;
  Timer total;
  Timer phase;

  // Observability: with a trace_path and no tracer already installed, the
  // builder owns one for the duration of the build and writes the Chrome
  // trace JSON at the end. Otherwise it participates in whatever tracer the
  // caller installed — unless obs.trace turned participation off.
  std::optional<obs::Tracer> own_tracer;
  std::optional<obs::ScopedTracing> own_scope;
  if (params_.obs.trace && !params_.obs.trace_path.empty() &&
      obs::active_tracer() == nullptr) {
    own_tracer.emplace(params_.obs.trace_warps);
    own_scope.emplace(*own_tracer);
  }
  obs::Tracer* tr = params_.obs.trace ? obs::active_tracer() : nullptr;

  std::optional<obs::Span> root;
  if (tr != nullptr) {
    const std::uint64_t idx = tr->begin_phase("build");
    root.emplace(tr, "build", "build",
                 obs::Tracer::span_id(idx, 0, 0, obs::SpanSalt::kBuild),
                 obs::kTrackBuild);
    root->arg_num("n", static_cast<std::uint64_t>(n));
    root->arg_num("dim", static_cast<std::uint64_t>(points.cols()));
    root->arg_num("k", static_cast<std::uint64_t>(params_.k));
    root->arg_str("strategy", strategy_name(params_.strategy));
    root->arg_str("compression", compression_name(params_.compression));
  }
  // First phase: everything up to the forest lap (quarantine scan, resume
  // verification, tree building) — mirroring what forest_seconds measures.
  std::optional<PhaseSpan> cur_phase;
  cur_phase.emplace(tr, ckpt == nullptr ? "forest" : "restore", acc);

  // Opt-in deterministic fault injection for the whole build (one injector
  // at a time process-wide, like the race detector below). When a caller —
  // e.g. a shard::ShardManager running many builds under one campaign — has
  // already installed an injector, the build runs under the ambient one
  // instead of nesting a second (ScopedFaultInjection rejects nesting), and
  // faults_injected reports only this build's share of its count.
  std::optional<simt::FaultInjector> injector;
  std::optional<simt::ScopedFaultInjection> injection;
  simt::FaultInjector* ambient = simt::active_fault_injector();
  const std::uint64_t ambient_injected_before =
      ambient != nullptr ? ambient->injected() : 0;
  if (params_.faults.enabled && ambient == nullptr) {
    injector.emplace(params_.faults);
    injection.emplace(*injector);
  }

  // Opt-in shadow-state race checking for the whole build (one detector at
  // a time process-wide; concurrent checked builds are not supported).
  std::optional<simt::RaceDetector> detector;
  std::optional<simt::ScopedRaceDetection> detection;
  if (params_.check_races) {
    detector.emplace();
    detection.emplace(*detector);
  }

  // Phase 0: input quarantine. Non-finite rows are excluded from the entire
  // build (a NaN coordinate would poison every distance it touches) and get
  // best-effort placeholder neighbors at extraction.
  const std::vector<std::uint32_t> quarantined =
      scan_nonfinite_rows(*pool_, points);
  result.quarantined_ids = quarantined;
  result.health.points_quarantined = quarantined.size();
  WKNNG_CHECK_MSG(n - quarantined.size() > params_.k,
                  "quarantine left too few usable points: " << quarantined.size()
                      << " of " << n << " rows are non-finite, need more than k="
                      << params_.k << " healthy ones");
  // The forest projects every row, so quarantined rows are zeroed in a
  // sanitized copy (only taken when needed). They still land in buckets but
  // are filtered out before any distance is computed.
  std::optional<FloatMatrix> sanitized;
  if (!quarantined.empty()) {
    sanitized.emplace(points);
    for (const std::uint32_t q : quarantined) {
      auto row = sanitized->row(q);
      std::fill(row.begin(), row.end(), 0.0f);
    }
  }
  const FloatMatrix& pts = sanitized ? *sanitized : points;

  const std::uint64_t signature =
      build_signature(params_, n, points.cols());

  // Compressed tier (compression=sq8): train/encode the codes every
  // candidate-generation distance is scored against. The k-NN sets are
  // widened to the rerank depth so the exact rerank phase has a pool of
  // compressed-tier survivors to re-order at full precision; the final
  // graph is truncated back to k.
  const bool use_sq8 = params_.compression == Compression::kSq8;
  const std::size_t k_build =
      use_sq8 ? effective_rerank_depth(params_.k, params_.rerank_depth)
              : params_.k;
  std::shared_ptr<const kernels::Sq8Matrix> sq8_matrix;
  std::vector<float> sq8_terms;
  kernels::Sq8View sq8_view;
  const kernels::Sq8View* sq8 = nullptr;
  if (use_sq8) {
    if (ckpt != nullptr && ckpt->sq8 != nullptr) {
      // Resume scores against the exact codes the checkpointed state was
      // produced under — the codes travel with the state, so bit-identical
      // continuation does not even rely on re-encoding determinism.
      WKNNG_CHECK_MSG(
          ckpt->sq8->rows() == n && ckpt->sq8->dim() == points.cols(),
          "checkpoint sq8 codes are " << ckpt->sq8->rows() << "x"
              << ckpt->sq8->dim() << ", expected " << n << "x"
              << points.cols());
      sq8_matrix = ckpt->sq8;
    } else {
      sq8_matrix =
          std::make_shared<const kernels::Sq8Matrix>(kernels::sq8_encode(pts));
    }
    // Per-row term cache for the SIMD backends' expanded form; the strict
    // scalar backend ignores terms, so skip the pass there.
    if (!kernels::strict_mode()) {
      sq8_terms = kernels::sq8_code_terms(*sq8_matrix);
    }
    sq8_view.matrix = sq8_matrix.get();
    sq8_view.terms = sq8_terms;
    sq8 = &sq8_view;
    result.sq8 = sq8_matrix;
    result.rerank_depth_used = k_build;
  }

  // Resume path: verify the checkpoint belongs to this (params, points)
  // pair, then restore the k-NN set state and skip the phases it embodies.
  Strategy effective = params_.strategy;
  std::size_t start_round = 0;
  KnnSetArray sets(n, k_build);
  if (ckpt != nullptr) {
    if (ckpt->signature != signature || ckpt->n != n ||
        ckpt->k != k_build) {
      std::ostringstream os;
      os << "checkpoint does not match this build: signature "
         << ckpt->signature << " vs " << signature << ", n=" << ckpt->n
         << " vs " << n << ", k=" << ckpt->k << " vs " << k_build;
      throw CheckpointMismatchError(os.str());
    }
    if (!std::equal(ckpt->quarantined.begin(), ckpt->quarantined.end(),
                    quarantined.begin(), quarantined.end())) {
      throw CheckpointMismatchError(
          "checkpoint quarantine list does not match the input data");
    }
    WKNNG_CHECK_MSG(ckpt->effective_strategy <=
                        static_cast<std::uint32_t>(Strategy::kShared),
                    "checkpoint has invalid strategy value "
                        << ckpt->effective_strategy);
    effective = static_cast<Strategy>(ckpt->effective_strategy);
    start_round = ckpt->rounds_done;
    sets.restore(ckpt->sets);
    if (effective != params_.strategy) {
      result.health.degraded = true;
      result.health.fallback_reason =
          std::string("resumed from a checkpoint built with the ") +
          strategy_name(effective) + " strategy";
    }
  }
  if (detector) {
    detector->label_region(sets.row(0), n * k_build * sizeof(std::uint64_t),
                           "knn_sets");
  }

  const auto write_ckpt = [&](std::uint32_t rounds_done) {
    if (params_.checkpoint_path.empty()) return;
    std::optional<obs::Span> ck;
    if (tr != nullptr) {
      ck.emplace(tr, "checkpoint", "ckpt",
                 obs::Tracer::span_id(tr->current_phase(), rounds_done, 0,
                                      obs::SpanSalt::kCheckpoint),
                 obs::kTrackBuild);
      ck->arg_num("rounds_done", static_cast<std::uint64_t>(rounds_done));
    }
    data::BuildCheckpoint c;
    c.signature = signature;
    c.n = n;
    c.k = k_build;
    c.rounds_done = rounds_done;
    c.sq8 = sq8_matrix;
    c.effective_strategy = static_cast<std::uint32_t>(effective);
    c.quarantined = quarantined;
    c.sets.assign(sets.words().begin(), sets.words().end());
    data::write_checkpoint(params_.checkpoint_path, c);
  };

  const auto deadline_exceeded = [&] {
    return params_.deadline_seconds > 0.0 &&
           total.elapsed_s() >= params_.deadline_seconds;
  };

  if (ckpt == nullptr) {
    // Phase 1: random-projection forest.
    const Buckets forest =
        build_rp_forest(*pool_, pts, params_.num_trees, params_.leaf_size,
                        params_.seed, &acc, params_.spill);
    result.num_buckets = forest.num_buckets();
    result.forest_seconds = phase.lap_s();
    cur_phase->finish(result.forest_seconds);
    cur_phase.emplace(tr, "leaf", acc);

    // kShared feasibility preflight: if the largest bucket cannot hold its
    // scratch-resident k-NN sets, degrade the whole pass to kTiled up front
    // instead of throwing — the paper's space limitation handled as policy.
    if (effective == Strategy::kShared) {
      const std::size_t need =
          forest.max_bucket_size() * k_build * sizeof(std::uint64_t) + 1024;
      if (need > params_.scratch_bytes) {
        effective = Strategy::kTiled;
        std::ostringstream os;
        os << "shared-memory strategy infeasible (largest bucket of "
           << forest.max_bucket_size() << " points x k=" << k_build
           << " needs " << need << " B of scratch, budget "
           << params_.scratch_bytes << " B); fell back to tiled";
        result.health.fallback_reason = os.str();
        result.health.degraded = true;
      }
    }

    // Phase 2: warp-centric brute force over every bucket, with bucket-level
    // retry/requeue and per-bucket kShared -> kTiled fallback.
    LeafReport leaf;
    leaf_knn_resilient(*pool_, pts, forest, effective, sets, &acc,
                       params_.scratch_bytes, params_.schedule,
                       params_.max_bucket_retries, quarantined, leaf, sq8);
    result.health.buckets_retried = leaf.buckets_retried;
    result.health.buckets_failed = leaf.buckets_failed;
    result.health.buckets_degraded = leaf.buckets_degraded;
    result.health.launches_retried = leaf.launches_retried;
    result.leaf_seconds = phase.lap_s();
    cur_phase->finish(result.leaf_seconds);
    cur_phase.emplace(tr, "refine", acc);
    write_ckpt(0);
  } else {
    phase.lap_s();  // resumed builds report zero forest/leaf time
    cur_phase->finish();
    cur_phase.emplace(tr, "refine", acc);
  }

  // Phase 3: neighbor-of-neighbor refinement rounds. The deadline is
  // checked between rounds only — a round that started always finishes, so
  // the sets are at a well-defined phase boundary when we stop.
  BuildParams eff_params = params_;
  eff_params.strategy = effective;
  result.health.rounds_completed = start_round;
  for (std::size_t round = start_round; round < params_.refine_iters; ++round) {
    if (deadline_exceeded()) {
      result.health.deadline_hit = true;
      break;
    }
    // Sub-phase per round: launches inside attribute to this round's phase
    // index, and the round span nests inside the "refine" phase span.
    PhaseSpan round_span(tr, "refine_round", acc);
    const Adjacency adj =
        snapshot_adjacency(*pool_, sets, params_.reverse_cap);
    std::size_t skipped = 0;
    with_launch_retry(params_.max_bucket_retries,
                      result.health.launches_retried, [&] {
                        skipped = refine_round(*pool_, pts, adj, eff_params,
                                               sets, &acc, sq8);
                      });
    result.health.refine_points_skipped += skipped;
    result.health.rounds_completed = round + 1;
    write_ckpt(static_cast<std::uint32_t>(round + 1));
  }
  result.refine_seconds = phase.lap_s();
  cur_phase->finish(result.refine_seconds);

  // Phase 3.5 (compression=sq8 only): exact fp32 rerank. The widened k-NN
  // sets hold each point's best k_build candidates under the *approximate*
  // (quantized) metric; one warp per point rescores that pool against the
  // original fp32 rows and keeps the exact top k — restoring full-precision
  // ordering before anything reaches the output graph.
  std::optional<KnnGraph> reranked_graph;
  if (use_sq8) {
    cur_phase.emplace(tr, "rerank", acc);
    const KnnGraph wide = sets.extract(*pool_);
    reranked_graph.emplace(n, params_.k);
    std::vector<float> norms;
    if (!kernels::strict_mode()) norms = kernels::row_norms(pts);
    std::atomic<std::uint64_t> rescored{0};
    simt::LaunchConfig config;
    config.scratch_bytes = params_.scratch_bytes;
    config.schedule = params_.schedule;
    config.trace_label = "sq8_rerank";
    simt::launch_warps(*pool_, n, config, &acc, [&](simt::Warp& w) {
      const auto p = static_cast<std::uint32_t>(w.id());
      if (std::binary_search(quarantined.begin(), quarantined.end(), p)) {
        return;
      }
      const auto pool_row = wide.row(p);
      const std::size_t cnt = wide.row_size(p);
      if (cnt == 0) return;
      auto xp = pts.row(p);
      w.count_read(cnt * sizeof(Neighbor));
      std::vector<std::pair<float, std::uint32_t>> scored;
      scored.reserve(cnt);
      for (std::size_t t0 = 0; t0 < cnt; t0 += simt::kWarpSize) {
        const std::size_t c =
            std::min<std::size_t>(simt::kWarpSize, cnt - t0);
        simt::Lanes<std::uint32_t> ids{};
        simt::Lanes<bool> active{};
        for (std::size_t l = 0; l < c; ++l) {
          ids[l] = pool_row[t0 + l].id;
          active[l] = true;
        }
        const simt::Lanes<float> d = simt::warp_l2_batch(
            w, xp, ids, active,
            [&](std::uint32_t id) { return pts.row(id); }, norms);
        for (std::size_t l = 0; l < c; ++l) {
          if (std::isfinite(d[l])) {
            scored.emplace_back(d[l], ids[l]);
          } else {
            ++w.stats().nonfinite_dropped;
          }
        }
      }
      rescored.fetch_add(scored.size(), std::memory_order_relaxed);
      // (dist, id) sort: deterministic ordering even under exact-distance
      // ties, matching the graph invariant.
      std::sort(scored.begin(), scored.end());
      auto out = reranked_graph->row(p);
      const std::size_t keep = std::min<std::size_t>(params_.k, scored.size());
      for (std::size_t i = 0; i < keep; ++i) {
        out[i] = Neighbor{scored[i].first, scored[i].second};
      }
      w.count_write(keep * sizeof(Neighbor));
    });
    result.candidates_reranked = rescored.load(std::memory_order_relaxed);
    result.rerank_seconds = phase.lap_s();
    cur_phase->finish(result.rerank_seconds);
  }

  cur_phase.emplace(tr, "extract", acc);

  // Phase 4: normalise into the output graph; quarantined rows get their
  // placeholder neighbors.
  result.graph =
      reranked_graph ? std::move(*reranked_graph) : sets.extract(*pool_);
  if (!quarantined.empty()) {
    fill_quarantined_rows(result.graph, quarantined);
  }
  result.extract_seconds = phase.lap_s();
  cur_phase->finish(result.extract_seconds);
  cur_phase.reset();

  if (detector) {
    detection.reset();
    result.races_detected = detector->race_count();
  }
  if (injector) {
    injection.reset();
    result.health.faults_injected = injector->injected();
  } else if (ambient != nullptr) {
    result.health.faults_injected =
        ambient->injected() - ambient_injected_before;
  }
  result.health.degraded =
      result.health.degraded || !quarantined.empty() ||
      result.health.buckets_failed > 0 ||
      result.health.refine_points_skipped > 0 || result.health.deadline_hit;
  result.total_seconds = total.elapsed_s();
  result.stats = acc.total();

  if (root) {
    root->arg_num("total_seconds", result.total_seconds);
    root->arg("stats", result.stats.to_json());
    root->finish();
  }
  if (own_tracer) {
    own_scope.reset();  // uninstall before the file write
    own_tracer->write_chrome_json(params_.obs.trace_path);
  }
  return result;
}

void register_build_metrics(obs::MetricsRegistry& reg, const BuildResult& r) {
  const auto gauge = [&reg](const char* name, double v, const char* help) {
    reg.gauge(name, help).set(v);
  };
  const auto counter = [&reg](const char* name, std::uint64_t v,
                              const char* help) {
    reg.counter(name, help).add(v);
  };

  gauge("wknng_build_forest_seconds", r.forest_seconds,
        "RP-forest construction wall time");
  gauge("wknng_build_leaf_seconds", r.leaf_seconds,
        "Warp-centric leaf brute-force wall time");
  gauge("wknng_build_refine_seconds", r.refine_seconds,
        "Neighbor-of-neighbor refinement wall time");
  gauge("wknng_build_rerank_seconds", r.rerank_seconds,
        "Exact fp32 rerank wall time (compression=sq8 only)");
  gauge("wknng_build_extract_seconds", r.extract_seconds,
        "Graph extraction wall time");
  gauge("wknng_build_total_seconds", r.total_seconds,
        "End-to-end build wall time");
  gauge("wknng_build_num_buckets", static_cast<double>(r.num_buckets),
        "Forest leaves processed");
  gauge("wknng_build_races_detected", static_cast<double>(r.races_detected),
        "Conflicts flagged by the race detector");

  gauge("wknng_build_degraded", r.health.degraded ? 1.0 : 0.0,
        "1 when the build output may differ from the ideal run");
  gauge("wknng_build_deadline_hit", r.health.deadline_hit ? 1.0 : 0.0,
        "1 when the soft deadline shed refinement rounds");
  gauge("wknng_build_rounds_completed",
        static_cast<double>(r.health.rounds_completed),
        "Refinement rounds actually finished");
  counter("wknng_build_buckets_retried_total", r.health.buckets_retried,
          "Leaf bucket executions re-launched");
  counter("wknng_build_buckets_failed_total", r.health.buckets_failed,
          "Leaf buckets failed after all retries");
  counter("wknng_build_buckets_degraded_total", r.health.buckets_degraded,
          "kShared buckets re-run as kTiled");
  counter("wknng_build_launches_retried_total", r.health.launches_retried,
          "Whole launches retried after allocation failure");
  counter("wknng_build_points_quarantined_total",
          r.health.points_quarantined,
          "Non-finite input rows excluded from the build");
  counter("wknng_build_refine_points_skipped_total",
          r.health.refine_points_skipped,
          "Point-rounds skipped during refinement");
  // The fault series is registered even when zero so scrapes always expose
  // whether a campaign ran.
  counter("wknng_build_faults_injected_total", r.health.faults_injected,
          "Fault-injection decisions fired during the build");

  counter("wknng_build_distance_evals_total", r.stats.distance_evals,
          "Full point-to-point distance computations");
  counter("wknng_build_flops_total", r.stats.flops,
          "Floating-point ops in distance kernels");
  counter("wknng_build_global_reads_total", r.stats.global_reads,
          "Bytes read from global memory");
  counter("wknng_build_global_writes_total", r.stats.global_writes,
          "Bytes written to global memory");
  counter("wknng_build_atomic_ops_total", r.stats.atomic_ops,
          "Completed atomic RMW operations");
  counter("wknng_build_cas_retries_total", r.stats.cas_retries,
          "Failed CAS attempts (contention)");
  counter("wknng_build_lock_acquires_total", r.stats.lock_acquires,
          "Spin-lock acquisitions");
  counter("wknng_build_lock_spins_total", r.stats.lock_spins,
          "Failed lock attempts while spinning");
  counter("wknng_build_warp_collectives_total", r.stats.warp_collectives,
          "Warp shuffles/ballots/reductions executed");
  counter("wknng_build_warps_executed_total", r.stats.warps_executed,
          "Warp tasks executed");
  counter("wknng_build_shadow_events_total", r.stats.shadow_events,
          "Race-detector shadow accesses recorded");
  counter("wknng_build_nonfinite_dropped_total", r.stats.nonfinite_dropped,
          "Candidates rejected for non-finite distance");
  gauge("wknng_build_scratch_bytes_peak",
        static_cast<double>(r.stats.scratch_bytes_peak),
        "Max per-warp scratch footprint observed");

  // Compressed-tier series: registered even for compression=none builds
  // (zeros) so scrapes always expose whether the tier ran.
  gauge("wknng_sq8_rerank_depth", static_cast<double>(r.rerank_depth_used),
        "Resolved per-point rerank depth (0 when compression=none)");
  counter("wknng_sq8_candidates_reranked_total", r.candidates_reranked,
          "Compressed-tier candidates rescored at full precision");
  // Named distinctly from obs's wknng_build_info so both can share one
  // registry (the CLI's --metrics-out export registers both).
  reg.info("wknng_build_config_info",
           {{"compression", r.sq8 != nullptr ? "sq8" : "none"},
            {"kernel_backend", kernels::ops().name}},
           "Build configuration: storage tier and dispatched kernel backend");

  // Full Stats object for JSON consumers (Tab. 3 tooling) — one source of
  // truth, rendered by Stats::to_json.
  reg.json_blob("build_stats", r.stats.to_json());
}

BuildResult build_knng(ThreadPool& pool, const FloatMatrix& points,
                       const BuildParams& params) {
  return KnngBuilder(pool, params).build(points);
}

}  // namespace wknng::core
