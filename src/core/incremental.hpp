#pragma once

#include <cstdint>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/builder.hpp"
#include "core/knn_set.hpp"
#include "core/params.hpp"
#include "simt/stats.hpp"

namespace wknng::core {

/// Knobs of the graph-descent insertion used for new points.
struct InsertParams {
  std::size_t entry_sample = 64;  ///< random existing points scored as entries
  std::size_t beam = 32;          ///< best-first frontier width (ef)
  std::size_t max_visits = 512;   ///< hard cap on points expanded per insert
};

/// Online (incremental) K-NN graph — an extension beyond the paper's batch
/// construction: the initial graph is built with the w-KNNG pipeline, and
/// subsequent batches of points are inserted by warp-centric graph descent:
/// each new point's warp scores a random entry sample, best-first descends
/// the current graph to gather candidates, keeps the k best as forward
/// neighbors, and pushes itself into those neighbors' sets through the
/// configured maintenance strategy (the same concurrent-update machinery
/// the leaf kernel uses).
///
/// Quality: recall of inserted points tracks the base build closely on
/// clustered data (see tests/core/test_incremental.cpp and the fig7 bench).
class IncrementalKnng {
 public:
  /// Builds the initial graph over `initial_points` with `params`.
  IncrementalKnng(ThreadPool& pool, BuildParams params,
                  FloatMatrix initial_points,
                  InsertParams insert = InsertParams{});

  std::size_t size() const { return points_.rows(); }
  std::size_t k() const { return params_.k; }
  const FloatMatrix& points() const { return points_; }

  /// Inserts a batch; the new points receive ids [size(), size() + batch).
  /// Dimensions must match the initial points.
  void add_batch(const FloatMatrix& batch);

  /// Runs one neighbor-of-neighbor refinement round over the whole graph
  /// (recommended every few batches to repair reverse-edge quality).
  void refine();

  /// Snapshot of the current graph.
  KnnGraph graph() const;

  /// Aggregated device work since construction.
  simt::Stats stats() const { return acc_.total(); }

 private:
  ThreadPool* pool_;
  BuildParams params_;
  InsertParams insert_;
  FloatMatrix points_;
  KnnSetArray sets_;
  mutable simt::StatsAccumulator acc_;
};

}  // namespace wknng::core
