#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "common/topk.hpp"
#include "core/builder.hpp"
#include "core/knn_set.hpp"
#include "core/params.hpp"
#include "simt/stats.hpp"
#include "simt/warp.hpp"

namespace wknng::core {

/// Knobs of the graph-descent insertion used for new points.
struct InsertParams {
  std::size_t entry_sample = 64;  ///< random existing points scored as entries
  std::size_t beam = 32;          ///< best-first frontier width (ef)
  std::size_t max_visits = 512;   ///< hard cap on points expanded per insert
};

/// Online (incremental) K-NN graph — an extension beyond the paper's batch
/// construction: the initial graph is built with the w-KNNG pipeline, and
/// subsequent batches of points are inserted by warp-centric graph descent:
/// each new point's warp scores a random entry sample, best-first descends
/// the current graph to gather candidates, keeps the k best as forward
/// neighbors, and pushes itself into those neighbors' sets through the
/// configured maintenance strategy (the same concurrent-update machinery
/// the leaf kernel uses).
///
/// Quality: recall of inserted points tracks the base build closely on
/// clustered data (see tests/core/test_incremental.cpp and the fig7 bench).
class IncrementalKnng {
 public:
  /// Builds the initial graph over `initial_points` with `params`.
  IncrementalKnng(ThreadPool& pool, BuildParams params,
                  FloatMatrix initial_points,
                  InsertParams insert = InsertParams{});

  std::size_t size() const { return points_.rows(); }
  std::size_t k() const { return params_.k; }
  const FloatMatrix& points() const { return points_; }

  /// Inserts a batch; the new points receive ids [size(), size() + batch).
  ///
  /// Admission contract (typed, common/error.hpp): an empty batch or a
  /// dimension mismatch throws wknng::MutationError and leaves the index
  /// untouched. Rows containing a non-finite coordinate are quarantined the
  /// way the batch builder quarantines them (PR-2): their coordinates are
  /// zeroed in storage so distance kernels stay finite, they are never
  /// connected into the graph, and graph() gives them +inf placeholder rows.
  void add_batch(const FloatMatrix& batch);

  /// Ids of quarantined (non-finite) inserted rows, sorted ascending.
  const std::vector<std::uint32_t>& quarantined() const { return quarantined_; }

  /// Runs one neighbor-of-neighbor refinement round over the whole graph
  /// (recommended every few batches to repair reverse-edge quality).
  void refine();

  /// Snapshot of the current graph.
  KnnGraph graph() const;

  /// Aggregated device work since construction.
  simt::Stats stats() const { return acc_.total(); }

 private:
  ThreadPool* pool_;
  BuildParams params_;
  InsertParams insert_;
  FloatMatrix points_;
  KnnSetArray sets_;
  std::vector<std::uint32_t> quarantined_;
  mutable simt::StatsAccumulator acc_;
};

/// The connect half of search-then-connect insertion: adopts `found` (the
/// descent's k best, sorted) as `id`'s forward neighbors and pushes the
/// reverse edge into each neighbor's set through the strategy's concurrent
/// machinery. Shared by IncrementalKnng::add_batch and the dynamic index
/// (src/dynamic), so both sides keep the exact same edge discipline.
void connect_point(simt::Warp& w, KnnSetArray& sets, Strategy strategy,
                   std::uint32_t id, std::span<const Neighbor> found);

}  // namespace wknng::core
