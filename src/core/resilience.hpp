#pragma once

// Small shared helpers of the recovery layer: capped-backoff retry of
// whole-launch failures. Bucket-level recovery lives in leaf_knn.cpp; the
// degradation ladder (retry -> strategy fallback -> quarantine -> partial
// result) is documented in DESIGN.md "Fault model and recovery".

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/error.hpp"

namespace wknng::core {

/// Sleeps the capped exponential backoff for retry number `attempt`
/// (1ms, 2ms, 4ms, ... capped at 50ms). Wall-clock only — never affects the
/// deterministic replay of the work itself.
inline void retry_backoff_sleep(std::size_t attempt) {
  const std::uint64_t ms = std::min<std::uint64_t>(
      std::uint64_t{1} << std::min<std::size_t>(attempt, 6), 50);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Runs `fn`, retrying on LaunchAllocError (the "device OOM at grid setup"
/// failure — launch_warps throws it before any warp has run, so a retry
/// never repeats partial work). Each retry backs off and increments
/// `retries_done`; after `max_retries` failed retries the error propagates
/// to the caller as the typed wknng::Error it is.
template <typename Fn>
void with_launch_retry(std::size_t max_retries, std::size_t& retries_done,
                       Fn&& fn) {
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      fn();
      return;
    } catch (const LaunchAllocError&) {
      if (attempt >= max_retries) throw;
      ++retries_done;
      retry_backoff_sleep(attempt);
    }
  }
}

}  // namespace wknng::core
