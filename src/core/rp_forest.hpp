#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "simt/stats.hpp"

namespace wknng::core {

/// Leaf buckets of one or more random-projection trees, in CSR layout:
/// bucket b holds point ids ids[offsets[b] .. offsets[b+1]).
/// Every tree contributes a complete partition of the point set, so a forest
/// of T trees yields buckets whose sizes sum to T * n.
struct Buckets {
  std::vector<std::uint32_t> ids;
  std::vector<std::uint32_t> offsets{0};

  std::size_t num_buckets() const { return offsets.size() - 1; }

  std::span<const std::uint32_t> bucket(std::size_t b) const {
    return {ids.data() + offsets[b], ids.data() + offsets[b + 1]};
  }

  std::size_t max_bucket_size() const {
    std::size_t m = 0;
    for (std::size_t b = 0; b < num_buckets(); ++b) {
      m = std::max<std::size_t>(m, offsets[b + 1] - offsets[b]);
    }
    return m;
  }

  /// Appends all buckets of `other` (used to concatenate trees into a forest).
  void append(const Buckets& other);
};

/// Builds one random-projection tree over `points` and returns its leaves.
///
/// Construction is level-synchronous, mirroring the GPU formulation: at each
/// level every oversized node draws a random Gaussian direction, a single
/// SIMT launch computes the projections of all points of all active nodes
/// (one warp per 32-point chunk, candidate-parallel dot products), and the
/// host splits each node at its median projection (exact balanced split via
/// nth_element). Nodes at or below `leaf_size` become buckets.
///
/// Determinism: directions depend only on (seed, tree_index, level, node),
/// so the same inputs always give the same tree.
Buckets build_rp_tree(ThreadPool& pool, const FloatMatrix& points,
                      std::size_t leaf_size, std::uint64_t seed,
                      std::size_t tree_index,
                      simt::StatsAccumulator* acc = nullptr);

/// Spill-tree variant: at every split, the `spill` fraction of the node's
/// points nearest the median plane (on each side) is copied into *both*
/// children, so near-boundary neighbor pairs are not separated. Leaves
/// overlap — a point appears in up to (1 + 2*spill)^depth leaves — trading
/// memory and brute-force work for recall per tree (Liu et al., "An
/// investigation of practical approximate nearest neighbor algorithms",
/// NIPS 2004). `spill` must be in [0, 0.45); 0 reduces to build_rp_tree.
Buckets build_rp_tree_spill(ThreadPool& pool, const FloatMatrix& points,
                            std::size_t leaf_size, float spill,
                            std::uint64_t seed, std::size_t tree_index,
                            simt::StatsAccumulator* acc = nullptr);

/// Builds `num_trees` independent trees and concatenates their leaves.
/// `spill > 0` selects the spill-tree variant.
Buckets build_rp_forest(ThreadPool& pool, const FloatMatrix& points,
                        std::size_t num_trees, std::size_t leaf_size,
                        std::uint64_t seed,
                        simt::StatsAccumulator* acc = nullptr,
                        float spill = 0.0f);

}  // namespace wknng::core
