#include "core/graph_ops.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/topk.hpp"

namespace wknng::core {

KnnGraph with_k(const KnnGraph& g, std::size_t new_k) {
  WKNNG_CHECK_MSG(new_k > 0, "new_k must be positive");
  KnnGraph out(g.num_points(), new_k);
  for (std::size_t i = 0; i < g.num_points(); ++i) {
    auto src = g.row(i);
    auto dst = out.row(i);
    const std::size_t n = std::min(new_k, g.k());
    for (std::size_t s = 0; s < n; ++s) dst[s] = src[s];
  }
  return out;
}

KnnGraph merge_graphs(const KnnGraph& a, const KnnGraph& b) {
  WKNNG_CHECK(a.num_points() == b.num_points());
  const std::size_t k = std::max(a.k(), b.k());
  KnnGraph out(a.num_points(), k);
  for (std::size_t i = 0; i < a.num_points(); ++i) {
    TopK heap(k);
    std::vector<std::uint32_t> seen;
    auto offer = [&](const Neighbor& nb) {
      if (nb.id == KnnGraph::kInvalid) return;
      if (std::find(seen.begin(), seen.end(), nb.id) != seen.end()) return;
      seen.push_back(nb.id);
      heap.push(nb.dist, nb.id);
    };
    for (const Neighbor& nb : a.row(i)) offer(nb);
    for (const Neighbor& nb : b.row(i)) offer(nb);
    const auto sorted = heap.take_sorted();
    std::copy(sorted.begin(), sorted.end(), out.row(i).begin());
  }
  return out;
}

KnnGraph symmetrized(const KnnGraph& g) {
  const std::size_t n = g.num_points();
  const std::size_t k = g.k();
  // Collect each point's own edges plus all reverse edges, keep k best.
  std::vector<TopK> heaps;
  heaps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) heaps.emplace_back(k);
  std::vector<std::vector<std::uint32_t>> seen(n);
  auto offer = [&](std::size_t dst, float dist, std::uint32_t id) {
    auto& ids = seen[dst];
    if (std::find(ids.begin(), ids.end(), id) != ids.end()) return;
    ids.push_back(id);
    heaps[dst].push(dist, id);
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (const Neighbor& nb : g.row(i)) {
      if (nb.id == KnnGraph::kInvalid) break;
      offer(i, nb.dist, nb.id);
      offer(nb.id, nb.dist, static_cast<std::uint32_t>(i));
    }
  }
  KnnGraph out(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    const auto sorted = heaps[i].take_sorted();
    std::copy(sorted.begin(), sorted.end(), out.row(i).begin());
  }
  return out;
}

}  // namespace wknng::core
