#include "core/leaf_knn.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "core/tiled_block.hpp"
#include "simt/launch.hpp"
#include "simt/packed.hpp"
#include "simt/sort.hpp"
#include "simt/warp_distance.hpp"

namespace wknng::core {

using simt::kWarpSize;
using simt::Lanes;
using simt::Packed;
using simt::Warp;

namespace {

/// Pair-at-a-time bucket kernel shared by kBasic and kAtomic: one distance
/// per step (dimension-parallel lanes), immediate strategy insert of both
/// directions.
void bucket_pairwise(Warp& w, const FloatMatrix& points,
                     std::span<const std::uint32_t> ids, Strategy strategy,
                     KnnSetArray& sets) {
  const std::size_t m = ids.size();
  for (std::size_t a = 0; a + 1 < m; ++a) {
    const std::uint32_t ia = ids[a];
    auto xa = points.row(ia);
    for (std::size_t b = a + 1; b < m; ++b) {
      const std::uint32_t ib = ids[b];
      const float dist = simt::warp_l2_dims(w, xa, points.row(ib));
      sets.insert(w, strategy, ia, Packed::make(dist, ib));
      sets.insert(w, strategy, ib, Packed::make(dist, ia));
    }
  }
}

/// GEMM-style tiled bucket kernel (strategy kTiled): the bucket is swept as
/// pairs of 32-point tiles through the shared tile-pair kernel
/// (core/tiled_block.hpp), which stages coordinates in scratch so each
/// global coordinate is read once per tile pair — the coalesced,
/// reuse-friendly pattern that makes this strategy win at high
/// dimensionality.
void bucket_tiled(Warp& w, const FloatMatrix& points,
                  std::span<const std::uint32_t> ids, KnnSetArray& sets) {
  const std::size_t m = ids.size();
  if (m < 2) return;
  const detail::TileBuffers buf =
      detail::alloc_tile_buffers(w, points.cols(), sets.k());

  const std::size_t num_tiles = (m + kWarpSize - 1) / kWarpSize;
  for (std::size_t ta = 0; ta < num_tiles; ++ta) {
    const std::size_t a0 = ta * kWarpSize;
    const std::size_t na = std::min<std::size_t>(kWarpSize, m - a0);
    for (std::size_t tb = ta; tb < num_tiles; ++tb) {
      const std::size_t b0 = tb * kWarpSize;
      const std::size_t nb = std::min<std::size_t>(kWarpSize, m - b0);
      detail::process_tile_pair(
          w, points, [&](std::size_t i) { return ids[a0 + i]; }, na,
          [&](std::size_t j) { return ids[b0 + j]; }, nb,
          /*diagonal=*/ta == tb, sets, buf);
    }
  }
}

/// Shared-memory bucket kernel (strategy kShared — the baseline the paper
/// improves on): the bucket's k-NN sets are scratch-resident for the whole
/// pass. Pairwise distances update the scratch sets with zero global-memory
/// traffic and zero synchronisation (one warp owns the bucket); at bucket
/// end every point's scratch set is sorted and merged into its global set.
/// Throws when leaf_size * k exceeds the scratch budget — the limitation
/// that motivates the three global-memory strategies.
void bucket_shared(Warp& w, const FloatMatrix& points,
                   std::span<const std::uint32_t> ids, KnnSetArray& sets) {
  const std::size_t m = ids.size();
  if (m < 2) return;
  const std::size_t k = sets.k();

  WKNNG_CHECK_MSG(
      m * k * sizeof(std::uint64_t) + 1024 <= w.scratch().capacity(),
      "shared-memory strategy infeasible: bucket of " << m << " points x k="
          << k << " needs " << m * k * sizeof(std::uint64_t)
          << " B of scratch (capacity " << w.scratch().capacity()
          << " B) — use a global-memory strategy (this is the limitation "
             "the paper's w-KNNG strategies remove)");
  auto local = w.scratch().alloc<std::uint64_t>(m * k);
  std::fill(local.begin(), local.end(), Packed::kEmpty);

  // Scratch-set insert: replace-worst scan, no locks, no global traffic.
  auto insert_local = [&](std::size_t slot_owner, std::uint64_t cand) {
    std::uint64_t* row = &local[slot_owner * k];
    std::size_t worst = 0;
    for (std::size_t s = 0; s < k; ++s) {
      if (row[s] == cand) return;  // duplicate pair
      if (row[s] > row[worst]) worst = s;
    }
    w.stats().warp_collectives += (k + kWarpSize - 1) / kWarpSize + 5;
    if (cand < row[worst]) row[worst] = cand;
  };

  for (std::size_t a = 0; a + 1 < m; ++a) {
    auto xa = points.row(ids[a]);
    for (std::size_t b = a + 1; b < m; ++b) {
      const float dist = simt::warp_l2_dims(w, xa, points.row(ids[b]));
      insert_local(a, Packed::make(dist, ids[b]));
      insert_local(b, Packed::make(dist, ids[a]));
    }
  }

  // Bucket-end writeback: sort each scratch set, merge into the global set
  // in 32-candidate runs.
  for (std::size_t a = 0; a < m; ++a) {
    std::span<std::uint64_t> row = local.subspan(a * k, k);
    simt::sort_scratch(w, row);
    for (std::size_t c0 = 0; c0 < k; c0 += kWarpSize) {
      const std::size_t cnt = std::min<std::size_t>(kWarpSize, k - c0);
      if (Packed::is_empty(row[c0])) break;  // rest of the row is empty
      Lanes<std::uint64_t> run;
      run.fill(Packed::kEmpty);
      for (std::size_t c = 0; c < cnt; ++c) run[c] = row[c0 + c];
      sets.merge_sorted_tile(w, ids[a], run);
    }
  }
}

}  // namespace

void process_bucket(simt::Warp& w, const FloatMatrix& points,
                    std::span<const std::uint32_t> ids, Strategy strategy,
                    KnnSetArray& sets) {
  switch (strategy) {
    case Strategy::kTiled:
      bucket_tiled(w, points, ids, sets);
      return;
    case Strategy::kShared:
      bucket_shared(w, points, ids, sets);
      return;
    case Strategy::kBasic:
    case Strategy::kAtomic:
      bucket_pairwise(w, points, ids, strategy, sets);
      return;
  }
}

void leaf_knn(ThreadPool& pool, const FloatMatrix& points,
              const Buckets& buckets, Strategy strategy, KnnSetArray& sets,
              simt::StatsAccumulator* acc, std::size_t scratch_bytes,
              const simt::ScheduleSpec& schedule) {
  simt::LaunchConfig config;
  config.scratch_bytes = scratch_bytes;
  config.schedule = schedule;
  simt::launch_warps(pool, buckets.num_buckets(), config, acc, [&](Warp& w) {
    process_bucket(w, points, buckets.bucket(w.id()), strategy, sets);
  });
}

}  // namespace wknng::core
