#include "core/leaf_knn.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "core/resilience.hpp"
#include "core/tiled_block.hpp"
#include "kernels/kernels.hpp"
#include "simt/fault.hpp"
#include "simt/launch.hpp"
#include "simt/packed.hpp"
#include "simt/sort.hpp"
#include "simt/warp_distance.hpp"

namespace wknng::core {

using simt::kWarpSize;
using simt::Lanes;
using simt::Packed;
using simt::Warp;

namespace {

/// Pair-at-a-time bucket kernel shared by kBasic and kAtomic: one distance
/// per step (dimension-parallel lanes), immediate strategy insert of both
/// directions.
void bucket_pairwise(Warp& w, const FloatMatrix& points,
                     std::span<const std::uint32_t> ids, Strategy strategy,
                     KnnSetArray& sets, const kernels::Sq8View* sq8) {
  const std::size_t m = ids.size();
  const bool use_sq8 = sq8 != nullptr && sq8->valid();
  std::vector<float> wbuf;
  for (std::size_t a = 0; a + 1 < m; ++a) {
    simt::fault_maybe_throw(simt::FaultSite::kWarpAbort);  // mid-bucket kill
    const std::uint32_t ia = ids[a];
    auto xa = points.row(ia);
    if (use_sq8) {
      // Compressed tier: point a is the asymmetric query (prepared once, one
      // fp32 row read); every partner streams its 1-byte/dim code row. Both
      // directions share the one asymmetric distance, like the fp32 kernel.
      const kernels::Sq8Query q =
          simt::warp_sq8_prepare(w, xa, sq8->codebook(), wbuf);
      for (std::size_t b = a + 1; b < m; ++b) {
        const std::uint32_t ib = ids[b];
        const float dist = simt::warp_sq8_l2_dims(w, q, sq8->row(ib));
        sets.insert(w, strategy, ia, Packed::make(dist, ib));
        sets.insert(w, strategy, ib, Packed::make(dist, ia));
      }
      continue;
    }
    for (std::size_t b = a + 1; b < m; ++b) {
      const std::uint32_t ib = ids[b];
      const float dist = simt::warp_l2_dims(w, xa, points.row(ib));
      sets.insert(w, strategy, ia, Packed::make(dist, ib));
      sets.insert(w, strategy, ib, Packed::make(dist, ia));
    }
  }
}

/// GEMM-style tiled bucket kernel (strategy kTiled): the bucket is swept as
/// pairs of 32-point tiles through the shared tile-pair kernel
/// (core/tiled_block.hpp), which stages coordinates in scratch so each
/// global coordinate is read once per tile pair — the coalesced,
/// reuse-friendly pattern that makes this strategy win at high
/// dimensionality.
void bucket_tiled(Warp& w, const FloatMatrix& points,
                  std::span<const std::uint32_t> ids, KnnSetArray& sets,
                  std::span<const float> norms_by_id,
                  const kernels::Sq8View* sq8) {
  const std::size_t m = ids.size();
  if (m < 2) return;
  const detail::TileBuffers buf =
      detail::alloc_tile_buffers(w, points.cols(), sets.k());
  detail::Sq8TileState sq8_state;
  if (sq8 != nullptr && sq8->valid()) sq8_state.view = sq8;
  detail::Sq8TileState* sq8_tile = sq8_state.active() ? &sq8_state : nullptr;

  const std::size_t num_tiles = (m + kWarpSize - 1) / kWarpSize;
  for (std::size_t ta = 0; ta < num_tiles; ++ta) {
    const std::size_t a0 = ta * kWarpSize;
    const std::size_t na = std::min<std::size_t>(kWarpSize, m - a0);
    for (std::size_t tb = ta; tb < num_tiles; ++tb) {
      simt::fault_maybe_throw(simt::FaultSite::kWarpAbort);  // mid-bucket kill
      const std::size_t b0 = tb * kWarpSize;
      const std::size_t nb = std::min<std::size_t>(kWarpSize, m - b0);
      detail::process_tile_pair(
          w, points, [&](std::size_t i) { return ids[a0 + i]; }, na,
          [&](std::size_t j) { return ids[b0 + j]; }, nb,
          /*diagonal=*/ta == tb, sets, buf, norms_by_id, sq8_tile);
    }
  }
}

/// Shared-memory bucket kernel (strategy kShared — the baseline the paper
/// improves on): the bucket's k-NN sets are scratch-resident for the whole
/// pass. Pairwise distances update the scratch sets with zero global-memory
/// traffic and zero synchronisation (one warp owns the bucket); at bucket
/// end every point's scratch set is sorted and merged into its global set.
/// Throws when leaf_size * k exceeds the scratch budget — the limitation
/// that motivates the three global-memory strategies.
void bucket_shared(Warp& w, const FloatMatrix& points,
                   std::span<const std::uint32_t> ids, KnnSetArray& sets,
                   const kernels::Sq8View* sq8) {
  const std::size_t m = ids.size();
  if (m < 2) return;
  const std::size_t k = sets.k();

  if (m * k * sizeof(std::uint64_t) + 1024 > w.scratch().capacity()) {
    std::ostringstream os;
    os << "shared-memory strategy infeasible: bucket of " << m << " points x k="
       << k << " needs " << m * k * sizeof(std::uint64_t)
       << " B of scratch (capacity " << w.scratch().capacity()
       << " B) — use a global-memory strategy (this is the limitation "
          "the paper's w-KNNG strategies remove)";
    throw ScratchOverflowError(os.str());
  }
  auto local = w.scratch().alloc<std::uint64_t>(m * k);
  std::fill(local.begin(), local.end(), Packed::kEmpty);

  // Scratch-set insert: replace-worst scan, no locks, no global traffic.
  auto insert_local = [&](std::size_t slot_owner, std::uint64_t cand) {
    std::uint64_t* row = &local[slot_owner * k];
    std::size_t worst = 0;
    for (std::size_t s = 0; s < k; ++s) {
      if (row[s] == cand) return;  // duplicate pair
      if (row[s] > row[worst]) worst = s;
    }
    w.stats().warp_collectives += (k + kWarpSize - 1) / kWarpSize + 5;
    if (cand < row[worst]) row[worst] = cand;
  };

  const bool use_sq8 = sq8 != nullptr && sq8->valid();
  std::vector<float> wbuf;
  for (std::size_t a = 0; a + 1 < m; ++a) {
    simt::fault_maybe_throw(simt::FaultSite::kWarpAbort);  // mid-bucket kill
    auto xa = points.row(ids[a]);
    if (use_sq8) {
      const kernels::Sq8Query q =
          simt::warp_sq8_prepare(w, xa, sq8->codebook(), wbuf);
      for (std::size_t b = a + 1; b < m; ++b) {
        const float dist = simt::warp_sq8_l2_dims(w, q, sq8->row(ids[b]));
        insert_local(a, Packed::make(dist, ids[b]));
        insert_local(b, Packed::make(dist, ids[a]));
      }
      continue;
    }
    for (std::size_t b = a + 1; b < m; ++b) {
      const float dist = simt::warp_l2_dims(w, xa, points.row(ids[b]));
      insert_local(a, Packed::make(dist, ids[b]));
      insert_local(b, Packed::make(dist, ids[a]));
    }
  }

  // Bucket-end writeback: sort each scratch set, merge into the global set
  // in 32-candidate runs.
  for (std::size_t a = 0; a < m; ++a) {
    std::span<std::uint64_t> row = local.subspan(a * k, k);
    simt::sort_scratch(w, row);
    for (std::size_t c0 = 0; c0 < k; c0 += kWarpSize) {
      const std::size_t cnt = std::min<std::size_t>(kWarpSize, k - c0);
      if (Packed::is_empty(row[c0])) break;  // rest of the row is empty
      Lanes<std::uint64_t> run;
      run.fill(Packed::kEmpty);
      for (std::size_t c = 0; c < cnt; ++c) run[c] = row[c0 + c];
      sets.merge_sorted_tile(w, ids[a], run);
    }
  }
}

}  // namespace

void process_bucket(simt::Warp& w, const FloatMatrix& points,
                    std::span<const std::uint32_t> ids, Strategy strategy,
                    KnnSetArray& sets, std::span<const float> norms_by_id,
                    const kernels::Sq8View* sq8) {
  simt::fault_maybe_throw(simt::FaultSite::kWarpAbort);
  switch (strategy) {
    case Strategy::kTiled:
      bucket_tiled(w, points, ids, sets, norms_by_id, sq8);
      return;
    case Strategy::kShared:
      bucket_shared(w, points, ids, sets, sq8);
      return;
    case Strategy::kBasic:
    case Strategy::kAtomic:
      bucket_pairwise(w, points, ids, strategy, sets, sq8);
      return;
  }
}

void leaf_knn(ThreadPool& pool, const FloatMatrix& points,
              const Buckets& buckets, Strategy strategy, KnnSetArray& sets,
              simt::StatsAccumulator* acc, std::size_t scratch_bytes,
              const simt::ScheduleSpec& schedule,
              const kernels::Sq8View* sq8) {
  // Per-dataset squared-norm cache for the tiled micro-kernel's norm-trick
  // path. The strict backend ignores norm caches, so skip the O(n*dim) pass;
  // the compressed tier has its own per-row term cache (Sq8View::terms).
  std::vector<float> norms;
  const bool use_sq8 = sq8 != nullptr && sq8->valid();
  if (strategy == Strategy::kTiled && !use_sq8 && !kernels::strict_mode()) {
    norms = kernels::row_norms(points);
  }
  simt::LaunchConfig config;
  config.scratch_bytes = scratch_bytes;
  config.schedule = schedule;
  config.trace_label = "leaf_knn";
  simt::launch_warps(pool, buckets.num_buckets(), config, acc, [&](Warp& w) {
    process_bucket(w, points, buckets.bucket(w.id()), strategy, sets, norms,
                   sq8);
  });
}

namespace {

/// One failed bucket execution: which bucket, and whether the failure was a
/// scratch overflow (the only failure kind with a dedicated fallback rung).
struct BucketFailure {
  std::uint32_t bucket = 0;
  bool scratch_overflow = false;

  friend bool operator<(const BucketFailure& a, const BucketFailure& b) {
    return a.bucket != b.bucket ? a.bucket < b.bucket
                                : a.scratch_overflow < b.scratch_overflow;
  }
};

}  // namespace

void leaf_knn_resilient(ThreadPool& pool, const FloatMatrix& points,
                        const Buckets& buckets, Strategy strategy,
                        KnnSetArray& sets, simt::StatsAccumulator* acc,
                        std::size_t scratch_bytes,
                        const simt::ScheduleSpec& schedule,
                        std::size_t max_retries,
                        std::span<const std::uint32_t> quarantined,
                        LeafReport& report,
                        const kernels::Sq8View* sq8) {
  // Norm cache for the tiled micro-kernel; kShared needs it too because its
  // scratch-overflow fallback rung re-runs buckets with the tiled kernel.
  // The compressed tier replaces it with the Sq8View's per-row term cache.
  std::vector<float> norms;
  const bool use_sq8 = sq8 != nullptr && sq8->valid();
  if ((strategy == Strategy::kTiled || strategy == Strategy::kShared) &&
      !use_sq8 && !kernels::strict_mode()) {
    norms = kernels::row_norms(points);
  }
  simt::LaunchConfig config;
  config.scratch_bytes = scratch_bytes;
  config.schedule = schedule;
  config.trace_label = "leaf_knn";

  std::mutex failures_mutex;
  std::vector<BucketFailure> failures;

  // Runs the buckets listed in `work` (all buckets when empty) with
  // `strat`, catching per-bucket failures inside the warp body so one bad
  // bucket never aborts the launch. The launch itself is retried on
  // allocation failure (which fires before any warp has run).
  const auto run = [&](std::span<const BucketFailure> work, Strategy strat) {
    const std::size_t count = work.empty() ? buckets.num_buckets() : work.size();
    if (count == 0) return;
    with_launch_retry(max_retries, report.launches_retried, [&] {
      simt::launch_warps(pool, count, config, acc, [&](Warp& w) {
        const std::uint32_t b = work.empty()
                                    ? static_cast<std::uint32_t>(w.id())
                                    : work[w.id()].bucket;
        std::span<const std::uint32_t> ids = buckets.bucket(b);
        std::vector<std::uint32_t> kept;
        if (!quarantined.empty()) {
          kept.reserve(ids.size());
          for (const std::uint32_t id : ids) {
            if (!std::binary_search(quarantined.begin(), quarantined.end(), id)) {
              kept.push_back(id);
            }
          }
          ids = kept;
        }
        try {
          process_bucket(w, points, ids, strat, sets, norms, sq8);
        } catch (const ScratchOverflowError&) {
          std::lock_guard<std::mutex> lock(failures_mutex);
          failures.push_back({b, /*scratch_overflow=*/true});
        } catch (const WarpAbortError&) {
          std::lock_guard<std::mutex> lock(failures_mutex);
          failures.push_back({b, /*scratch_overflow=*/false});
        } catch (const LockTimeoutError&) {
          std::lock_guard<std::mutex> lock(failures_mutex);
          failures.push_back({b, /*scratch_overflow=*/false});
        }
      });
    });
  };

  run({}, strategy);

  for (std::size_t attempt = 0; !failures.empty() && attempt < max_retries;
       ++attempt) {
    // Sorted retry list for a deterministic re-launch order; a retried
    // bucket may have done partial work already, which is safe to repeat
    // because k-NN-set inserts are idempotent (duplicates rejected,
    // keep-k-best).
    std::vector<BucketFailure> retry = std::move(failures);
    failures.clear();
    std::sort(retry.begin(), retry.end());
    retry.erase(std::unique(retry.begin(), retry.end(),
                            [](const BucketFailure& a, const BucketFailure& b) {
                              return a.bucket == b.bucket;
                            }),
                retry.end());
    report.buckets_retried += retry.size();
    retry_backoff_sleep(attempt);

    if (strategy == Strategy::kShared) {
      // A kShared bucket that overflowed scratch will overflow again —
      // degrade those to the kTiled kernel; retry the rest as kShared.
      std::vector<BucketFailure> degrade;
      std::vector<BucketFailure> same;
      for (const BucketFailure& f : retry) {
        (f.scratch_overflow ? degrade : same).push_back(f);
      }
      report.buckets_degraded += degrade.size();
      // An empty span means "all buckets" to run(), so skip empty partitions.
      if (!degrade.empty()) run(degrade, Strategy::kTiled);
      if (!same.empty()) run(same, Strategy::kShared);
    } else {
      if (!retry.empty()) run(retry, strategy);
    }
  }
  report.buckets_failed = failures.size();
}

}  // namespace wknng::core
