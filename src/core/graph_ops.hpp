#pragma once

#include "common/knn_graph.hpp"

namespace wknng::core {

/// Structural graph utilities consumers need around a builder:
/// re-sizing k and ensembling independently built graphs.

/// Returns a copy of `g` truncated (or padded with invalid slots) to
/// `new_k` neighbors per row. Truncation keeps the nearest entries — rows
/// are sorted, so this is exact.
KnnGraph with_k(const KnnGraph& g, std::size_t new_k);

/// Union-merge: for each point, the k best distinct neighbors across both
/// graphs (k = max of the two). Ensembling two cheap builds (different
/// seeds, different metrics after a transform, or w-KNNG + NN-Descent)
/// often beats one expensive build — see MergeBeatsEitherInput in the tests.
KnnGraph merge_graphs(const KnnGraph& a, const KnnGraph& b);

/// Makes the graph symmetric by adding every reverse edge that fits: if
/// (i -> j) exists but (j -> i) does not, offer (j, dist) to row j. Some
/// consumers (spectral methods, t-SNE) want symmetric adjacency.
KnnGraph symmetrized(const KnnGraph& g);

}  // namespace wknng::core
