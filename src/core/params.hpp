#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/params.hpp"
#include "simt/fault.hpp"
#include "simt/schedule.hpp"

namespace wknng::core {

/// The paper's three warp-centric k-NN-set maintenance strategies.
enum class Strategy {
  /// "w-KNNG": per-point spin lock; the warp scans the k slots, replaces the
  /// current worst. Simple, serialises concurrent updaters of one point.
  kBasic,
  /// "w-KNNG atomic": lock-free — packed (dist,id) words updated by CAS on
  /// the worst slot. Wins when distances are cheap (low dimensionality) and
  /// update rate dominates.
  kAtomic,
  /// "tiled w-KNNG": candidates staged and sorted in per-warp scratch tiles,
  /// distance blocks computed GEMM-style with coordinate reuse, sorted runs
  /// merged into the k-set in one short critical section. Wins for higher
  /// dimensional points.
  kTiled,
  /// Shared-memory baseline — the approach the paper argues *against*: the
  /// whole bucket's k-NN sets live in per-warp scratch during the leaf pass
  /// (zero global-memory traffic for set maintenance) and are merged into
  /// global memory once at bucket end. Only feasible while
  /// leaf_size * k * 8 bytes fit the scratch budget; the builder throws
  /// otherwise — which is exactly the "space limitation in maintaining
  /// these sets in high speed shared memory" the abstract motivates the
  /// three global-memory strategies with.
  kShared,
};

/// How a refinement round generates and scores candidates.
enum class RefineMode {
  /// Each point scores its neighbors' neighbors against *itself* only
  /// (contention-free: a warp writes its own point's set). Cheap rounds;
  /// information propagates one hop per round.
  kExpand,
  /// Classic NN-Descent local join: each point brute-forces its combined
  /// forward+reverse neighborhood as a bucket, so every candidate pair is
  /// submitted to *both* endpoints. Fewer rounds needed, but the k-NN sets
  /// see concurrent updates — the maintenance strategies earn their keep.
  kLocalJoin,
};

/// Compressed storage tier for candidate-generation distances.
enum class Compression {
  /// Full-precision fp32 rows everywhere (the pre-compression behavior,
  /// bit for bit).
  kNone,
  /// 8-bit scalar quantization (kernels/sq8.hpp): the leaf pass, refinement,
  /// and graph search score u8 code rows asymmetrically (1 byte/dim of
  /// candidate traffic instead of 4), then an exact fp32 rerank of the top
  /// `rerank_depth` candidates restores full-precision ordering before
  /// admission to the final top-k.
  kSq8,
};

const char* refine_mode_name(RefineMode m);

const char* strategy_name(Strategy s);

const char* compression_name(Compression c);

/// Parse "none" / "sq8" (throws wknng::Error listing the valid names
/// otherwise).
Compression compression_from_name(const std::string& name);

/// Parse "basic" / "atomic" / "tiled" / "shared" (throws wknng::Error listing
/// the valid names otherwise).
Strategy strategy_from_name(const std::string& name);

/// The paper's conclusion as a policy: atomic for a smaller number of
/// dimensions, tiled for higher-dimensional points. The threshold comes
/// from the Fig. 1 crossover measured on this substrate (see
/// EXPERIMENTS.md); callers with unusual workloads should sweep
/// bench/fig1_dim_crossover themselves.
Strategy recommended_strategy(std::size_t dim);

/// All knobs of the w-KNNG builder. Defaults give a reasonable
/// recall/time point for clustered data in the tens-of-thousands range.
struct BuildParams {
  std::size_t k = 10;            ///< neighbors per point in the output graph
  Strategy strategy = Strategy::kTiled;

  // Random-projection forest.
  std::size_t num_trees = 8;     ///< independent RP trees; more = higher recall
  std::size_t leaf_size = 64;    ///< max bucket size; brute-forced by one warp
  float spill = 0.0f;            ///< spill-tree overlap fraction in [0, 0.45);
                                 ///< boundary points enter both children

  // Neighbor-of-neighbor refinement.
  std::size_t refine_iters = 1;      ///< rounds after the forest pass (0 = off)
  std::size_t refine_sample = 512;   ///< max candidates examined per point/round
  std::size_t reverse_cap = 0;       ///< reverse edges kept per point (0 = k)
  RefineMode refine_mode = RefineMode::kExpand;

  std::uint64_t seed = 1234;     ///< drives tree directions and sampling

  /// Scratch ("shared memory") budget per warp in bytes.
  std::size_t scratch_bytes = 48 * 1024;

  /// Warp-scheduling policy for every kernel launch of the build. The
  /// default (dynamic) is the performance path; deterministic policies
  /// replay the build under a fixed warp interleaving — the schedule-fuzzing
  /// hook used to prove strategies order-independent (simt/schedule.hpp).
  simt::ScheduleSpec schedule;

  /// Runs the whole build under the shadow-state race detector
  /// (simt/race.hpp) and reports flagged conflicts in
  /// BuildResult::races_detected. Also enabled by setting the
  /// WKNNG_CHECK_RACES environment variable (CI hook). Expensive — debug
  /// and CI only.
  bool check_races = false;

  /// Deterministic fault-injection campaign for the whole build
  /// (simt/fault.hpp). Also enabled via the WKNNG_INJECT_FAULTS environment
  /// variable ("site:seed[:probability[:max_faults]]"). Injected failures
  /// exercise the same recovery paths as real ones; outcomes are reported in
  /// BuildResult::health.
  simt::FaultSpec faults;

  /// How many times a failed leaf bucket (or an allocation-failed launch) is
  /// retried before being recorded as failed. Retries back off with a capped
  /// exponential sleep.
  std::size_t max_bucket_retries = 3;

  /// Soft wall-clock budget for the build; 0 disables. When exceeded, the
  /// build stops cleanly after the current phase / refinement round and
  /// returns the partial (still valid) graph with health.deadline_hit set.
  /// The forest and leaf phases always complete — the budget only sheds
  /// refinement rounds.
  double deadline_seconds = 0.0;

  /// When non-empty, the builder writes a resumable checkpoint of the k-NN
  /// set state to this path after the leaf pass and after every refinement
  /// round (atomically, via a temp file + rename). KnngBuilder::resume picks
  /// the build up from it.
  std::string checkpoint_path;

  /// Storage tier for candidate-generation distances. kSq8 trains an SQ8
  /// codebook on the (sanitized) input at build time, scores candidates
  /// against the compressed rows, and exact-reranks before emitting the
  /// final graph. kNone leaves every code path bit-identical to the
  /// pre-compression builder.
  Compression compression = Compression::kNone;

  /// How many compressed-tier candidates per point survive to the exact
  /// fp32 rerank (compression != kNone only). 0 means auto: 2*k. Values
  /// below k are rounded up to k. Larger depths recover more of the
  /// full-precision recall at the cost of more fp32 distance evaluations.
  std::size_t rerank_depth = 0;

  /// Observability knobs (obs/params.hpp): span-tracing participation, the
  /// optional builder-owned trace output path, and per-warp spans. Also
  /// driven by the WKNNG_TRACE / WKNNG_TRACE_WARPS environment variables.
  /// Tracing never changes the build's result — spans observe, they do not
  /// steer.
  obs::ObsParams obs;
};

/// Hash of every parameter (plus n and dim) that determines the k-NN set
/// state at a phase boundary. Stored in checkpoints and verified on resume;
/// deliberately excludes refine_iters (a checkpoint after round i is valid
/// under any total round count), the deadline, the fault spec, and the
/// checkpoint path itself.
std::uint64_t build_signature(const BuildParams& p, std::size_t n,
                              std::size_t dim);

/// Resolves the rerank-depth knob: 0 = auto (2*k); explicit values are
/// clamped up to k so the rerank can never shrink the candidate pool below
/// the output width. Shared by the builder and the serve-time search path.
inline std::size_t effective_rerank_depth(std::size_t k,
                                          std::size_t rerank_depth) {
  if (rerank_depth == 0) return 2 * k;
  return rerank_depth < k ? k : rerank_depth;
}

}  // namespace wknng::core
