#include "core/graph_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace wknng::core {

namespace {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

}  // namespace

Components connected_components(const KnnGraph& g) {
  const std::size_t n = g.num_points();
  UnionFind uf(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const Neighbor& nb : g.row(i)) {
      if (nb.id == KnnGraph::kInvalid) break;
      uf.unite(static_cast<std::uint32_t>(i), nb.id);
    }
  }
  Components out;
  out.label.assign(n, 0);
  std::vector<std::uint32_t> root_to_label(n, ~0u);
  std::vector<std::size_t> sizes;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t root = uf.find(static_cast<std::uint32_t>(i));
    if (root_to_label[root] == ~0u) {
      root_to_label[root] = static_cast<std::uint32_t>(sizes.size());
      sizes.push_back(0);
    }
    out.label[i] = root_to_label[root];
    ++sizes[out.label[i]];
  }
  out.count = sizes.size();
  out.largest = sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  return out;
}

std::vector<std::uint32_t> in_degrees(const KnnGraph& g) {
  std::vector<std::uint32_t> deg(g.num_points(), 0);
  for (std::size_t i = 0; i < g.num_points(); ++i) {
    for (const Neighbor& nb : g.row(i)) {
      if (nb.id == KnnGraph::kInvalid) break;
      ++deg[nb.id];
    }
  }
  return deg;
}

DegreeSummary summarize_degrees(const std::vector<std::uint32_t>& degrees) {
  DegreeSummary s;
  if (degrees.empty()) return s;
  s.min = *std::min_element(degrees.begin(), degrees.end());
  s.max = *std::max_element(degrees.begin(), degrees.end());
  double sum = 0.0, sum_sq = 0.0;
  for (std::uint32_t d : degrees) {
    sum += d;
    sum_sq += static_cast<double>(d) * d;
  }
  s.mean = sum / static_cast<double>(degrees.size());
  s.stddev = std::sqrt(
      std::max(0.0, sum_sq / static_cast<double>(degrees.size()) - s.mean * s.mean));
  return s;
}

double mean_edge_distance(const KnnGraph& g) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < g.num_points(); ++i) {
    for (const Neighbor& nb : g.row(i)) {
      if (nb.id == KnnGraph::kInvalid) break;
      sum += nb.dist;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double edge_agreement(const KnnGraph& a, const KnnGraph& b) {
  WKNNG_CHECK(a.num_points() == b.num_points());
  std::size_t shared = 0, total = 0;
  for (std::size_t i = 0; i < a.num_points(); ++i) {
    auto brow = b.row(i);
    for (const Neighbor& nb : a.row(i)) {
      if (nb.id == KnnGraph::kInvalid) break;
      ++total;
      shared += std::any_of(brow.begin(), brow.end(),
                            [&](const Neighbor& other) {
                              return other.id == nb.id;
                            })
                    ? 1
                    : 0;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(shared) / static_cast<double>(total);
}

double symmetry_rate(const KnnGraph& g) {
  std::size_t symmetric = 0, total = 0;
  for (std::size_t i = 0; i < g.num_points(); ++i) {
    for (const Neighbor& nb : g.row(i)) {
      if (nb.id == KnnGraph::kInvalid) break;
      ++total;
      auto rrow = g.row(nb.id);
      symmetric += std::any_of(rrow.begin(), rrow.end(),
                               [&](const Neighbor& other) {
                                 return other.id == i;
                               })
                       ? 1
                       : 0;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(symmetric) / static_cast<double>(total);
}

}  // namespace wknng::core
