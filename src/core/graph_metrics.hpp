#pragma once

#include <cstdint>
#include <vector>

#include "common/knn_graph.hpp"

namespace wknng::core {

/// Structural quality measures of a K-NN graph, beyond recall. These matter
/// to downstream users: t-SNE needs connected affinity graphs, and
/// graph-based search (similarity_search example) degrades sharply when the
/// graph fragments into components.

/// Weakly-connected component decomposition (edges treated as undirected).
struct Components {
  std::size_t count = 0;
  std::vector<std::uint32_t> label;  ///< per point, in [0, count)
  std::size_t largest = 0;           ///< size of the biggest component
};
Components connected_components(const KnnGraph& g);

/// In-degree (reverse-edge count) of every point. Hub formation — a few
/// points with huge in-degree — is the classic pathology of high-dimensional
/// K-NN graphs and what reverse-edge caps in refinement guard against.
std::vector<std::uint32_t> in_degrees(const KnnGraph& g);

struct DegreeSummary {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
};
DegreeSummary summarize_degrees(const std::vector<std::uint32_t>& degrees);

/// Mean edge distance over all valid edges (lower = tighter graph at equal
/// connectivity; equal-recall graphs can still differ here).
double mean_edge_distance(const KnnGraph& g);

/// Fraction of directed edges of `a` also present in `b` (id match). Both
/// graphs must have the same number of points. Used to compare strategy
/// outputs and to measure build-to-build stability.
double edge_agreement(const KnnGraph& a, const KnnGraph& b);

/// Fraction of edges (i -> j) whose reverse (j -> i) is also present —
/// symmetric neighborhoods indicate locally consistent graphs.
double symmetry_rate(const KnnGraph& g);

}  // namespace wknng::core
