#pragma once

#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/knn_set.hpp"
#include "core/params.hpp"
#include "core/rp_forest.hpp"
#include "kernels/sq8.hpp"
#include "simt/stats.hpp"

namespace wknng::core {

/// Runs the warp-centric brute-force pass over every forest bucket, feeding
/// the global k-NN sets with the selected maintenance strategy. One warp
/// processes one bucket.
///
/// Kernel shapes (see DESIGN.md):
///  * kBasic / kAtomic — pair-at-a-time: the warp walks ordered pairs (a,b),
///    computes one distance with dimension-parallel lanes, and submits both
///    directions through the strategy's insert.
///  * kTiled — GEMM-style: the warp computes 32x32 distance blocks with
///    dimension-chunked coordinate staging in scratch (each coordinate is
///    read from global memory once per tile pair instead of once per pair),
///    then merges sorted 32-candidate runs into the k-sets.
/// When `sq8` points at a valid kernels::Sq8View, every candidate distance
/// is scored against the compressed (u8) rows asymmetrically instead of the
/// fp32 rows — the compressed storage tier. The k-NN sets then hold
/// approximate distances; the builder's exact rerank restores full-precision
/// ordering before the final graph is emitted.
void leaf_knn(ThreadPool& pool, const FloatMatrix& points,
              const Buckets& buckets, Strategy strategy, KnnSetArray& sets,
              simt::StatsAccumulator* acc, std::size_t scratch_bytes,
              const simt::ScheduleSpec& schedule = {},
              const kernels::Sq8View* sq8 = nullptr);

/// What the resilient leaf pass had to do beyond the happy path.
struct LeafReport {
  std::size_t buckets_retried = 0;   ///< bucket executions re-launched
  std::size_t buckets_failed = 0;    ///< still failed after every retry
  std::size_t buckets_degraded = 0;  ///< kShared buckets re-run as kTiled
  std::size_t launches_retried = 0;  ///< whole launches retried (alloc fail)
};

/// Recovery-wrapped leaf pass used by the builder. Per-bucket failures
/// (scratch overflow, warp abort, lock timeout — real or injected) are
/// caught inside the warp body, recorded, and the affected buckets are
/// re-launched up to `max_retries` times with capped backoff; a kShared
/// bucket that overflowed its scratch budget is retried with the kTiled
/// kernel instead (recorded as degraded). Retrying a partially processed
/// bucket is safe because k-NN-set inserts are idempotent (duplicate ids
/// rejected, keep-k-best). `quarantined` — a sorted id list — is filtered
/// out of every bucket before processing. Buckets that fail every retry are
/// counted in the report; their points simply keep whatever neighbors other
/// buckets gave them.
void leaf_knn_resilient(ThreadPool& pool, const FloatMatrix& points,
                        const Buckets& buckets, Strategy strategy,
                        KnnSetArray& sets, simt::StatsAccumulator* acc,
                        std::size_t scratch_bytes,
                        const simt::ScheduleSpec& schedule,
                        std::size_t max_retries,
                        std::span<const std::uint32_t> quarantined,
                        LeafReport& report,
                        const kernels::Sq8View* sq8 = nullptr);

/// Brute-forces one id list as a bucket with the given strategy, feeding the
/// global k-NN sets: every unordered pair is evaluated once and submitted to
/// both endpoints. This is the leaf pass's inner kernel; the local-join
/// refinement mode reuses it on per-point candidate neighborhoods.
/// `norms_by_id`, when non-empty, is a squared-norm cache indexed by point
/// id (kernels::row_norms) used by the tiled kernel's norm-trick path.
/// `sq8`, when valid, routes every pair distance through the compressed tier
/// (asymmetric fp32-query-vs-u8-codes; see leaf_knn).
void process_bucket(simt::Warp& w, const FloatMatrix& points,
                    std::span<const std::uint32_t> ids, Strategy strategy,
                    KnnSetArray& sets, std::span<const float> norms_by_id = {},
                    const kernels::Sq8View* sq8 = nullptr);

}  // namespace wknng::core
