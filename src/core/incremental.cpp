#include "core/incremental.hpp"

#include <algorithm>
#include <cstring>
#include <queue>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/topk.hpp"
#include "core/leaf_knn.hpp"
#include "core/refine.hpp"
#include "core/rp_forest.hpp"
#include "simt/launch.hpp"
#include "simt/packed.hpp"
#include "simt/warp_distance.hpp"

namespace wknng::core {

using simt::kWarpSize;
using simt::Lanes;
using simt::Packed;
using simt::Warp;

namespace {

/// Appends rows of `extra` to `base` (reallocating copy — points are
/// immutable once stored, so this happens between kernel launches only).
FloatMatrix append_rows(const FloatMatrix& base, const FloatMatrix& extra) {
  WKNNG_CHECK(base.cols() == extra.cols());
  FloatMatrix out(base.rows() + extra.rows(), base.cols());
  std::memcpy(out.data(), base.data(), base.size() * sizeof(float));
  std::memcpy(out.data() + base.size(), extra.data(),
              extra.size() * sizeof(float));
  return out;
}

struct MinHeapCmp {
  bool operator()(const Neighbor& a, const Neighbor& b) const { return b < a; }
};

}  // namespace

IncrementalKnng::IncrementalKnng(ThreadPool& pool, BuildParams params,
                                 FloatMatrix initial_points,
                                 InsertParams insert)
    : pool_(&pool),
      params_(params),
      insert_(insert),
      points_(std::move(initial_points)),
      sets_(points_.rows(), params.k) {
  WKNNG_CHECK_MSG(points_.rows() > params_.k,
                  "need more initial points than k");
  // Initial build: the standard w-KNNG pipeline feeding our own set array.
  const Buckets forest =
      build_rp_forest(*pool_, points_, params_.num_trees, params_.leaf_size,
                      params_.seed, &acc_, params_.spill);
  leaf_knn(*pool_, points_, forest, params_.strategy, sets_, &acc_,
           params_.scratch_bytes);
  for (std::size_t round = 0; round < params_.refine_iters; ++round) {
    const Adjacency adj = snapshot_adjacency(*pool_, sets_, params_.reverse_cap);
    refine_round(*pool_, points_, adj, params_, sets_, &acc_);
  }
}

void IncrementalKnng::add_batch(const FloatMatrix& batch) {
  // Typed admission: a rejected batch never mutates the index.
  if (batch.rows() == 0) {
    throw MutationError("add_batch: empty batch");
  }
  if (batch.cols() != points_.cols()) {
    std::ostringstream os;
    os << "add_batch: batch dim " << batch.cols() << " != index dim "
       << points_.cols();
    throw MutationError(os.str());
  }

  const std::size_t old_n = points_.rows();

  // Quarantine non-finite rows (the PR-2 builder discipline): zero their
  // coordinates in storage so every distance kernel stays finite, and skip
  // their connect pass below — they get +inf placeholder rows in graph().
  const std::vector<std::uint32_t> bad = scan_nonfinite_rows(*pool_, batch);
  std::vector<std::uint8_t> row_bad(batch.rows(), 0);
  const FloatMatrix* src = &batch;
  FloatMatrix sanitized;
  if (!bad.empty()) {
    sanitized = batch;
    for (const std::uint32_t r : bad) {
      auto row = sanitized.row(r);
      std::fill(row.begin(), row.end(), 0.0f);
      row_bad[r] = 1;
      quarantined_.push_back(static_cast<std::uint32_t>(old_n + r));
    }
    src = &sanitized;
  }

  points_ = append_rows(points_, *src);
  sets_.grow(points_.rows());

  const std::size_t k = params_.k;
  const Strategy strategy = params_.strategy;
  const InsertParams ins = insert_;

  simt::LaunchConfig config;
  config.scratch_bytes = params_.scratch_bytes;
  config.trace_label = "incremental_insert";
  simt::launch_warps(*pool_, batch.rows(), config, &acc_, [&](Warp& w) {
    if (row_bad[w.id()] != 0) return;  // quarantined: stored but not connected
    const auto id = static_cast<std::uint32_t>(old_n + w.id());
    const auto query = points_.row(id);
    Rng rng(params_.seed, 0xABCD0000ULL + id);

    // Per-warp private search state (registers / local memory on hardware).
    std::vector<char> visited(points_.rows(), 0);
    visited[id] = 1;
    std::priority_queue<Neighbor, std::vector<Neighbor>, MinHeapCmp> frontier;
    TopK best(std::max(k, ins.beam));
    std::size_t visits = 0;

    auto score_tile = [&](const std::vector<std::uint32_t>& ids) {
      for (std::size_t t0 = 0; t0 < ids.size(); t0 += kWarpSize) {
        const std::size_t cnt = std::min<std::size_t>(kWarpSize, ids.size() - t0);
        Lanes<std::uint32_t> lane_ids{};
        Lanes<bool> active{};
        for (std::size_t l = 0; l < cnt; ++l) {
          lane_ids[l] = ids[t0 + l];
          active[l] = true;
        }
        const Lanes<float> d = simt::warp_l2_batch(
            w, query, lane_ids, active,
            [&](std::uint32_t p) { return points_.row(p); });
        for (std::size_t l = 0; l < cnt; ++l) {
          if (d[l] < best.worst()) {
            frontier.push({d[l], lane_ids[l]});
            best.push(d[l], lane_ids[l]);
          }
        }
      }
    };

    // Entry sample over the pre-batch graph.
    std::vector<std::uint32_t> entries;
    entries.reserve(ins.entry_sample);
    for (std::size_t e = 0; e < ins.entry_sample && e < old_n; ++e) {
      const auto p = static_cast<std::uint32_t>(rng.next_below(old_n));
      if (visited[p]) continue;
      visited[p] = 1;
      ++visits;
      entries.push_back(p);
    }
    score_tile(entries);

    // Best-first descent.
    std::vector<std::uint32_t> neighbor_ids(k);
    std::vector<std::uint32_t> expand;
    while (!frontier.empty() && visits < ins.max_visits) {
      const Neighbor cur = frontier.top();
      frontier.pop();
      if (cur.dist > best.worst()) break;
      const std::size_t cnt = sets_.snapshot_ids(cur.id, neighbor_ids.data());
      w.count_read(k * sizeof(std::uint64_t));
      expand.clear();
      for (std::size_t s = 0; s < cnt; ++s) {
        const std::uint32_t nb = neighbor_ids[s];
        if (nb >= points_.rows() || visited[nb]) continue;
        visited[nb] = 1;
        ++visits;
        expand.push_back(nb);
      }
      score_tile(expand);
    }

    // Adopt the k best as forward neighbors; push reverse edges.
    auto found = best.take_sorted();
    if (found.size() > k) found.resize(k);
    connect_point(w, sets_, strategy, id, found);
  });
}

void connect_point(simt::Warp& w, KnnSetArray& sets, Strategy strategy,
                   std::uint32_t id, std::span<const Neighbor> found) {
  for (const Neighbor& nb : found) {
    sets.insert(w, strategy, id, Packed::make(nb.dist, nb.id));
    sets.insert(w, strategy, nb.id, Packed::make(nb.dist, id));
  }
}

void IncrementalKnng::refine() {
  const Adjacency adj = snapshot_adjacency(*pool_, sets_, params_.reverse_cap);
  refine_round(*pool_, points_, adj, params_, sets_, &acc_);
}

KnnGraph IncrementalKnng::graph() const {
  KnnGraph g = sets_.extract(*pool_);
  if (!quarantined_.empty()) fill_quarantined_rows(g, quarantined_);
  return g;
}

}  // namespace wknng::core
