#include "core/knn_set.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "simt/sort.hpp"

namespace wknng::core {

using simt::Packed;

KnnSetArray::KnnSetArray(std::size_t n, std::size_t k)
    : n_(n), k_(k), sets_(n * k, Packed::kEmpty), locks_(n) {
  WKNNG_CHECK_MSG(k > 0, "k must be positive");
  WKNNG_CHECK_MSG(n > 0, "n must be positive");
}

namespace {

/// Result of the lane-parallel slot scan every strategy starts with.
struct ScanResult {
  bool duplicate = false;      ///< cand's id already present
  std::size_t worst_slot = 0;  ///< index of the largest packed value
  std::uint64_t worst_value = 0;
};

/// Scans k slots in ceil(k/32) lane-parallel rounds, looking for a duplicate
/// of cand's id and for the worst slot. `atomic` selects load discipline.
/// Charges the modelled costs: k*8 bytes of global reads, one ballot per
/// round, one argmax-reduce at the end.
ScanResult scan_slots(simt::Warp& w, const std::uint64_t* slots, std::size_t k,
                      std::uint64_t cand, bool atomic) {
  const std::uint32_t cand_id = Packed::id(cand);
  ScanResult r;
  r.worst_value = 0;

  const std::size_t rounds = (k + simt::kWarpSize - 1) / simt::kWarpSize;
  w.stats().warp_collectives += rounds;  // per-round duplicate ballot
  w.count_read(k * sizeof(std::uint64_t));

  for (std::size_t s = 0; s < k; ++s) {
    const std::uint64_t v =
        atomic ? simt::atomic_load(slots[s]) : simt::plain_load(slots[s]);
    if (!Packed::is_empty(v) && Packed::id(v) == cand_id) {
      r.duplicate = true;
      return r;
    }
    if (s == 0 || v > r.worst_value) {
      r.worst_value = v;
      r.worst_slot = s;
    }
  }
  w.stats().warp_collectives += 5;  // argmax reduction
  return r;
}

}  // namespace

void KnnSetArray::insert_basic(simt::Warp& w, std::uint32_t dst,
                               std::uint64_t cand) {
  if (!Packed::is_finite(cand)) {
    ++w.stats().nonfinite_dropped;
    return;
  }
  locks_.acquire(dst, w.stats());
  std::uint64_t* slots = row(dst);
  const ScanResult scan = scan_slots(w, slots, k_, cand, /*atomic=*/false);
  if (!scan.duplicate && cand < scan.worst_value) {
    simt::plain_store(slots[scan.worst_slot], cand);
    w.count_write(sizeof(std::uint64_t));
  }
  locks_.release(dst);
}

void KnnSetArray::insert_atomic(simt::Warp& w, std::uint32_t dst,
                                std::uint64_t cand) {
  if (!Packed::is_finite(cand)) {
    ++w.stats().nonfinite_dropped;
    return;
  }
  std::uint64_t* slots = row(dst);
  while (true) {
    const ScanResult scan = scan_slots(w, slots, k_, cand, /*atomic=*/true);
    if (scan.duplicate) return;
    if (cand >= scan.worst_value) return;  // not better than the current worst
    std::uint64_t expected = scan.worst_value;
    if (simt::atomic_cas(slots[scan.worst_slot], expected, cand, w.stats())) {
      w.count_write(sizeof(std::uint64_t));
      return;
    }
    // Lost the race: the slot changed under us; rescan and retry.
  }
}

std::uint64_t KnnSetArray::peek_worst_sorted(simt::Warp& w,
                                             std::uint32_t dst) const {
  w.count_read(sizeof(std::uint64_t));
  return simt::atomic_load(row(dst)[k_ - 1]);
}

void KnnSetArray::merge_sorted_tile(simt::Warp& w, std::uint32_t dst,
                                    const simt::Lanes<std::uint64_t>& sorted_run) {
  // Non-finite (corrupted) distances pack to bit patterns that sort after
  // every valid candidate, so in the sorted run they form a suffix just
  // before the kEmpty padding: truncate the run there instead of admitting
  // them into the set.
  simt::Lanes<std::uint64_t> cleaned;
  const simt::Lanes<std::uint64_t>* run = &sorted_run;
  for (int l = 0; l < simt::kWarpSize; ++l) {
    if (Packed::is_finite(sorted_run[l])) continue;
    if (Packed::is_empty(sorted_run[l])) break;  // only padding left
    cleaned = sorted_run;
    for (int m = l; m < simt::kWarpSize; ++m) {
      if (Packed::is_empty(cleaned[m])) break;
      ++w.stats().nonfinite_dropped;
      cleaned[m] = Packed::kEmpty;
    }
    run = &cleaned;
    break;
  }

  // Monotonic-bound prune: the k-th best only ever improves, so a candidate
  // that fails against the current worst can never be admitted later.
  if ((*run)[0] >= peek_worst_sorted(w, dst)) return;

  const std::size_t mark = w.scratch().mark();
  auto tmp = w.scratch().alloc<std::uint64_t>(k_);
  locks_.acquire(dst, w.stats());
  std::span<std::uint64_t> list(row(dst), k_);
  w.record_read(list.data(), k_);
  simt::merge_sorted_run(w, list, *run, tmp, Packed::kEmpty);
  w.record_write(list.data(), k_);
  locks_.release(dst);
  w.scratch().release(mark);
}

void KnnSetArray::insert_tiled_single(simt::Warp& w, std::uint32_t dst,
                                      std::uint64_t cand) {
  simt::Lanes<std::uint64_t> run;
  run.fill(Packed::kEmpty);
  run[0] = cand;
  merge_sorted_tile(w, dst, run);
}

std::size_t KnnSetArray::snapshot_ids(std::uint32_t p, std::uint32_t* out) const {
  const std::uint64_t* slots = row(p);
  std::size_t count = 0;
  for (std::size_t s = 0; s < k_; ++s) {
    const std::uint64_t v = simt::atomic_load(slots[s]);
    if (!Packed::is_empty(v)) out[count++] = Packed::id(v);
  }
  return count;
}

bool KnnSetArray::contains(simt::Warp& w, std::uint32_t p,
                           std::uint32_t id) const {
  const std::uint64_t* slots = row(p);
  w.count_read(k_ * sizeof(std::uint64_t));
  w.stats().warp_collectives += (k_ + simt::kWarpSize - 1) / simt::kWarpSize;
  for (std::size_t s = 0; s < k_; ++s) {
    const std::uint64_t v = simt::atomic_load(slots[s]);
    if (!Packed::is_empty(v) && Packed::id(v) == id) return true;
  }
  return false;
}

void KnnSetArray::restore(std::span<const std::uint64_t> words) {
  WKNNG_CHECK_MSG(words.size() == n_ * k_,
                  "checkpoint state has " << words.size() << " words, expected "
                                          << n_ * k_);
  std::copy(words.begin(), words.end(), sets_.data());
}

void KnnSetArray::grow(std::size_t new_n) {
  WKNNG_CHECK_MSG(new_n >= n_, "grow cannot shrink: " << new_n << " < " << n_);
  if (new_n == n_) return;
  sets_.resize_preserving(new_n * k_, Packed::kEmpty);
  locks_.assign(new_n);  // all locks idle by precondition
  n_ = new_n;
}

void KnnSetArray::shrink(std::size_t new_n) {
  WKNNG_CHECK_MSG(new_n <= n_, "shrink cannot grow: " << new_n << " > " << n_);
  if (new_n == n_) return;
  sets_.resize_preserving(new_n * k_, Packed::kEmpty);
  locks_.assign(new_n);  // all locks idle by precondition
  n_ = new_n;
}

KnnGraph KnnSetArray::extract(ThreadPool& pool) const {
  KnnGraph g(n_, k_);
  pool.parallel_for(n_, 64, [&](std::size_t p) {
    std::vector<std::uint64_t> vals(row(p), row(p) + k_);
    std::sort(vals.begin(), vals.end());
    auto out = g.row(p);
    std::size_t count = 0;
    for (const std::uint64_t v : vals) {
      if (Packed::is_empty(v)) break;
      if (!Packed::is_finite(v)) continue;  // never emit a corrupt distance
      const std::uint32_t id = Packed::id(v);
      bool dup = false;
      for (std::size_t j = 0; j < count; ++j) {
        if (out[j].id == id) {
          dup = true;  // racing duplicate insert (atomic strategy): keep best
          break;
        }
      }
      if (dup || id == p) continue;
      out[count++] = Neighbor{Packed::dist(v), id};
    }
  });
  return g;
}

}  // namespace wknng::core
