#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "kernels/sq8.hpp"
#include "simt/stats.hpp"

namespace wknng::core {

/// Out-of-sample query answering over a built K-NN graph (GNNS-style
/// best-first descent; Hajebi et al., IJCAI 2011) — the "similarity search"
/// application the abstract motivates, as a library facility.
///
/// A K-NN graph is only weakly navigable across cluster boundaries, so the
/// search seeds itself from the best of a scored random sample
/// (`entry_sample`) instead of raw random entries, then descends greedily
/// with a bounded frontier (`beam`).
struct SearchParams {
  std::size_t k = 10;             ///< results per query
  std::size_t entry_sample = 256; ///< random base points scored for entry
  std::size_t entry_keep = 8;     ///< best entries that seed the frontier
  std::size_t beam = 48;          ///< result/frontier width during descent
  std::uint64_t seed = 7;         ///< entry sampling seed

  /// Compressed-tier rerank depth: how many sq8-scored candidates survive
  /// to the exact fp32 rerank before the top-k is emitted. 0 = auto (2*k);
  /// explicit values are clamped up to k. Ignored unless an Sq8View is
  /// supplied to the search.
  std::size_t rerank_depth = 0;
};

struct SearchStats {
  std::uint64_t points_visited = 0;   ///< distance evaluations, total
  std::uint64_t queries = 0;
};

/// Reusable per-worker search scratch — the arena a serving loop hands to
/// every `graph_search_batch` call so the hot path stops paying an O(n)
/// visited-array allocation+clear per query. Each worker thread lazily
/// acquires a private slot (one mutex-protected lookup per query); inside a
/// slot, visited marks are epoch-stamped so "clear" is a counter bump.
class SearchScratch {
 public:
  struct Slot {
    std::vector<std::uint32_t> mark;  ///< epoch stamp per base point
    std::uint32_t epoch = 0;
    std::vector<std::uint32_t> sample;
    std::vector<std::uint32_t> expand;
    std::vector<float> qprep;  ///< prepared-query buffer (sq8 path only)

    /// Starts one query over a base of `n` points: grows `mark` if needed
    /// and invalidates every previous mark by bumping the epoch.
    void begin(std::size_t n) {
      if (mark.size() < n) {
        mark.assign(n, 0);
        epoch = 0;
      }
      if (++epoch == 0) {  // epoch wrapped: hard-clear once every 2^32 queries
        std::fill(mark.begin(), mark.end(), 0);
        epoch = 1;
      }
    }

    /// Returns whether `id` was already visited this query; marks it either way.
    bool test_and_set(std::uint32_t id) {
      if (mark[id] == epoch) return true;
      mark[id] = epoch;
      return false;
    }
  };

  /// The calling thread's slot (created on first use).
  Slot& local();

  /// Squared-norm cache of the base rows, built lazily on the first batch
  /// and reused by every later one (the serving engine searches one base for
  /// its whole lifetime). Returns an empty span — "no cache" to the distance
  /// kernels — in strict mode, or if the scratch is handed a base of a
  /// different size than the one the cache was built for.
  std::span<const float> base_norms(const FloatMatrix& base);

 private:
  std::mutex mutex_;
  std::unordered_map<std::thread::id, std::unique_ptr<Slot>> slots_;
  std::once_flag norms_once_;
  std::vector<float> base_norms_;
};

/// Result of a batched search: one KnnGraph row per query plus each query's
/// distance-evaluation count. `visits` is written per query by its own warp
/// (no shared accumulator), so summing it is deterministic regardless of
/// worker count or schedule.
struct BatchSearchResult {
  KnnGraph results;
  std::vector<std::uint64_t> visits;
};

/// Batched entry point used by the serving engine: answers every row of
/// `queries` against `base` using `graph` for navigation, one warp per query.
///
/// `tags[i]` seeds query i's RNG stream (entry sampling). Results are a pure
/// function of (base, graph, params, query vector, tag) — independent of how
/// requests were batched together, which worker ran them, or what else was in
/// the batch. This is the determinism contract `serve::ServeEngine` relies
/// on: it tags each request once at admission, so replays and re-batched runs
/// return bit-identical neighbors. An empty `tags` span means "use the row
/// index", which reproduces the classic `graph_search` behavior.
///
/// Degenerate inputs are clamped, never UB:
///  - zero queries → an empty result, no kernel launch
///  - `k > base.rows()` → rows carry all base points, tail slots invalid
///  - `entry_keep > entry_sample` → keep clamped to the sample size
///  - `entry_sample` larger than the base → sampling stops at n points
///
/// `scratch` may be null (a private arena is used for the call).
///
/// `sq8`, when valid, is the base's compressed tier (kernels::Sq8View over
/// codes aligned with `base` rows): every candidate distance during entry
/// scoring and descent streams the u8 code rows asymmetrically, and the top
/// `params.rerank_depth` survivors are rescored against the fp32 base rows
/// before the exact top-k is emitted. A null/invalid view leaves the search
/// bit-identical to the uncompressed path.
///
/// `exclude`, when non-empty, must have one byte per base point; points with
/// a non-zero byte (tombstones in the dynamic index) are *never admitted to
/// the result top-k* (nor to the sq8 exact rerank) but remain navigable:
/// the descent still walks through them, so a graph whose edges have not yet
/// been repaired after a delete keeps its connectivity. An empty span is
/// "no exclusions" and leaves the search bit-identical to before.
BatchSearchResult graph_search_batch(ThreadPool& pool, const FloatMatrix& base,
                                     const KnnGraph& graph,
                                     const FloatMatrix& queries,
                                     std::span<const std::uint64_t> tags,
                                     const SearchParams& params,
                                     SearchScratch* scratch = nullptr,
                                     simt::StatsAccumulator* acc = nullptr,
                                     const kernels::Sq8View* sq8 = nullptr,
                                     std::span<const std::uint8_t> exclude = {});

/// Answers every query against `base` using `graph` for navigation; one
/// warp per query on the SIMT substrate. Returns a KnnGraph with one row per
/// query (ids refer to base points). Thin wrapper over `graph_search_batch`
/// with row-index tags; `stats` totals are merged per-query in index order
/// (deterministic for any pool size).
KnnGraph graph_search(ThreadPool& pool, const FloatMatrix& base,
                      const KnnGraph& graph, const FloatMatrix& queries,
                      const SearchParams& params,
                      SearchStats* stats = nullptr,
                      simt::StatsAccumulator* acc = nullptr,
                      const kernels::Sq8View* sq8 = nullptr);

}  // namespace wknng::core
