#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "common/topk.hpp"
#include "kernels/sq8.hpp"
#include "opt/serving_graph.hpp"
#include "simt/stats.hpp"

namespace wknng::core {

/// The descent's candidate frontier: a min-heap over borrowed storage, popped
/// in ascending (dist, id) order — the exact pop sequence of the
/// std::priority_queue it replaced (all elements are distinct, since the
/// visited marks admit each id once, so the order is total and bit-identical
/// regardless of internal heap layout). Two properties matter on the serving
/// path:
///
///  - *No per-query allocation*: the storage vector lives in a
///    SearchScratch::Slot and keeps its capacity across queries; `reset`
///    only clears the length.
///  - *Bounded*: when the heap reaches its capacity, `push` first evicts
///    every element whose distance exceeds the caller's current pruning
///    bound (the result heap's worst). Such elements can never be expanded:
///    the descent breaks at the first popped candidate above the bound, and
///    the bound only tightens — so evicting them is behavior-identical, it
///    just reaches the "frontier exhausted" exit instead of the "bound
///    crossed" exit. If nothing is evictable (bound still +inf), the storage
///    grows — correctness over the cap, amortized by slot reuse.
class FrontierHeap {
 public:
  /// Binds to `storage` (cleared) with a soft capacity of `capacity`.
  FrontierHeap(std::vector<Neighbor>& storage, std::size_t capacity)
      : heap_(&storage), cap_(capacity < 4 ? 4 : capacity) {
    heap_->clear();
  }

  bool empty() const { return heap_->empty(); }
  std::size_t size() const { return heap_->size(); }

  /// The minimum element (undefined when empty).
  const Neighbor& top() const { return heap_->front(); }

  /// Inserts `nb`; `bound` is the caller's current pruning threshold
  /// (elements strictly above it are evictable, see class comment).
  void push(Neighbor nb, float bound) {
    if (heap_->size() >= cap_) compact(bound);
    heap_->push_back(nb);
    std::push_heap(heap_->begin(), heap_->end(), Cmp{});
  }

  /// Removes and returns the minimum element.
  Neighbor pop() {
    std::pop_heap(heap_->begin(), heap_->end(), Cmp{});
    const Neighbor nb = heap_->back();
    heap_->pop_back();
    return nb;
  }

 private:
  // std::*_heap build a max-heap under the comparator; "greater" makes the
  // front the minimum Neighbor — the same (dist, id) pop order as the old
  // MinHeapCmp priority_queue.
  struct Cmp {
    bool operator()(const Neighbor& a, const Neighbor& b) const {
      return b < a;
    }
  };

  /// Drops every element with dist > bound, then re-heapifies. Quadratic-free
  /// single pass; a no-op when bound is +inf.
  void compact(float bound) {
    auto it = std::remove_if(
        heap_->begin(), heap_->end(),
        [bound](const Neighbor& nb) { return nb.dist > bound; });
    if (it == heap_->end()) return;  // nothing evictable: grow instead
    heap_->erase(it, heap_->end());
    std::make_heap(heap_->begin(), heap_->end(), Cmp{});
  }

  std::vector<Neighbor>* heap_;
  std::size_t cap_;
};

/// Out-of-sample query answering over a built K-NN graph (GNNS-style
/// best-first descent; Hajebi et al., IJCAI 2011) — the "similarity search"
/// application the abstract motivates, as a library facility.
///
/// A K-NN graph is only weakly navigable across cluster boundaries, so the
/// search seeds itself from the best of a scored random sample
/// (`entry_sample`) instead of raw random entries, then descends greedily
/// with a bounded frontier (`beam`).
struct SearchParams {
  std::size_t k = 10;             ///< results per query
  std::size_t entry_sample = 256; ///< random base points scored for entry
  std::size_t entry_keep = 8;     ///< best entries that seed the frontier
  std::size_t beam = 48;          ///< result/frontier width during descent
  std::uint64_t seed = 7;         ///< entry sampling seed

  /// Adaptive early termination: stop the descent once `patience` consecutive
  /// hop expansions admit nothing into the result/beam heap (the top-k has
  /// stopped improving). 0 disables the check — the descent runs until the
  /// frontier's best candidate is worse than the heap's worst, exactly the
  /// pre-existing stopping rule, so the default is bit-identical to before.
  std::size_t patience = 0;

  /// Per-query distance-evaluation budget: the descent stops expanding once
  /// `visits` reaches this many scored candidates (checked at hop
  /// granularity, so a query may overshoot by one row of expansions). A query
  /// stopped by its budget while the frontier still held a useful candidate
  /// is flagged in BatchSearchResult::capped — the signal the serving side's
  /// bucket learner escalates on. 0 = unlimited (bit-identical to before).
  std::size_t visit_budget = 0;

  /// Compressed-tier rerank depth: how many sq8-scored candidates survive
  /// to the exact fp32 rerank before the top-k is emitted. 0 = auto (2*k);
  /// explicit values are clamped up to k. Ignored unless an Sq8View is
  /// supplied to the search.
  std::size_t rerank_depth = 0;
};

struct SearchStats {
  std::uint64_t points_visited = 0;   ///< distance evaluations, total
  std::uint64_t queries = 0;
};

/// Admission validation shared by every search entry point (and by
/// serve::ServeEngine at construction, so a misconfigured engine fails at
/// setup instead of at the first query). Throws wknng::SearchParamError on a
/// configuration that cannot produce meaningful results:
///  - `k == 0` (no results requested)
///  - `entry_sample == 0` (nothing would seed the descent; every query would
///    silently come back empty — historically this was clamped into the
///    entry_keep bound and slipped through)
/// `entry_keep > entry_sample` remains a clamp, not an error: the keep heap
/// simply cannot outgrow the sample feeding it.
void validate_search_params(const SearchParams& params);

/// Reusable per-worker search scratch — the arena a serving loop hands to
/// every `graph_search_batch` call so the hot path stops paying an O(n)
/// visited-array allocation+clear per query. Each worker thread lazily
/// acquires a private slot (one mutex-protected lookup per query); inside a
/// slot, visited marks are epoch-stamped so "clear" is a counter bump.
class SearchScratch {
 public:
  struct Slot {
    std::vector<std::uint32_t> mark;  ///< epoch stamp per base point
    std::uint32_t epoch = 0;
    std::vector<std::uint32_t> sample;
    std::vector<std::uint32_t> expand;
    std::vector<float> qprep;  ///< prepared-query buffer (sq8 path only)
    std::vector<Neighbor> frontier;  ///< FrontierHeap storage (capacity reused)

    /// Starts one query over a base of `n` points: grows `mark` if needed
    /// and invalidates every previous mark by bumping the epoch.
    void begin(std::size_t n) {
      if (mark.size() < n) {
        mark.assign(n, 0);
        epoch = 0;
      }
      if (++epoch == 0) {  // epoch wrapped: hard-clear once every 2^32 queries
        std::fill(mark.begin(), mark.end(), 0);
        epoch = 1;
      }
    }

    /// Returns whether `id` was already visited this query; marks it either way.
    bool test_and_set(std::uint32_t id) {
      if (mark[id] == epoch) return true;
      mark[id] = epoch;
      return false;
    }
  };

  /// The calling thread's slot (created on first use).
  Slot& local();

  /// Squared-norm cache of the base rows, built lazily on the first batch
  /// and reused by every later one (the serving engine searches one base for
  /// its whole lifetime). Returns an empty span — "no cache" to the distance
  /// kernels — in strict mode, or if the scratch is handed a base of a
  /// different size than the one the cache was built for.
  std::span<const float> base_norms(const FloatMatrix& base);

 private:
  std::mutex mutex_;
  std::unordered_map<std::thread::id, std::unique_ptr<Slot>> slots_;
  std::once_flag norms_once_;
  std::vector<float> base_norms_;
};

/// Result of a batched search: one KnnGraph row per query plus each query's
/// distance-evaluation count. `visits` is written per query by its own warp
/// (no shared accumulator), so summing it is deterministic regardless of
/// worker count or schedule.
struct BatchSearchResult {
  KnnGraph results;
  std::vector<std::uint64_t> visits;

  /// capped[i] != 0 when query i was stopped by `SearchParams::visit_budget`
  /// while the frontier still held a candidate inside the result heap's
  /// bound — i.e. the budget, not convergence, ended the search. All zeros
  /// when no budget is set. The serving engine's bucket controller escalates
  /// exactly these queries to the next budget rung.
  std::vector<std::uint8_t> capped;
};

/// Batched entry point used by the serving engine: answers every row of
/// `queries` against `base` using `graph` for navigation, one warp per query.
///
/// `tags[i]` seeds query i's RNG stream (entry sampling). Results are a pure
/// function of (base, graph, params, query vector, tag) — independent of how
/// requests were batched together, which worker ran them, or what else was in
/// the batch. This is the determinism contract `serve::ServeEngine` relies
/// on: it tags each request once at admission, so replays and re-batched runs
/// return bit-identical neighbors. An empty `tags` span means "use the row
/// index", which reproduces the classic `graph_search` behavior.
///
/// Degenerate inputs are clamped, never UB:
///  - zero queries → an empty result, no kernel launch
///  - `k > base.rows()` → rows carry all base points, tail slots invalid
///  - `entry_keep > entry_sample` → keep clamped to the sample size
///  - `entry_sample` larger than the base → sampling stops at n points
///
/// `scratch` may be null (a private arena is used for the call).
///
/// `sq8`, when valid, is the base's compressed tier (kernels::Sq8View over
/// codes aligned with `base` rows): every candidate distance during entry
/// scoring and descent streams the u8 code rows asymmetrically, and the top
/// `params.rerank_depth` survivors are rescored against the fp32 base rows
/// before the exact top-k is emitted. A null/invalid view leaves the search
/// bit-identical to the uncompressed path.
///
/// `exclude`, when non-empty, must have one byte per base point; points with
/// a non-zero byte (tombstones in the dynamic index) are *never admitted to
/// the result top-k* (nor to the sq8 exact rerank) but remain navigable:
/// the descent still walks through them, so a graph whose edges have not yet
/// been repaired after a delete keeps its connectivity. An empty span is
/// "no exclusions" and leaves the search bit-identical to before.
BatchSearchResult graph_search_batch(ThreadPool& pool, const FloatMatrix& base,
                                     const KnnGraph& graph,
                                     const FloatMatrix& queries,
                                     std::span<const std::uint64_t> tags,
                                     const SearchParams& params,
                                     SearchScratch* scratch = nullptr,
                                     simt::StatsAccumulator* acc = nullptr,
                                     const kernels::Sq8View* sq8 = nullptr,
                                     std::span<const std::uint8_t> exclude = {});

/// The optimized serve path: answers every query over a pruned,
/// BFS-reordered CSR layout (opt::optimize_serving) instead of the raw
/// builder graph. Same warp-per-query kernel shape and determinism contract
/// as graph_search_batch, plus three serve-time levers:
///
///  - *Cache-blocked expansion with software prefetch*: neighbor lists are
///    CSR rows in BFS order, and while `l2_batch` scores one warp-tile of
///    candidates the next tile's base rows (and the frontier head's CSR row)
///    are prefetched — the descent streams instead of pointer-chasing.
///  - *Pruned degree*: occluded edges are gone, so each hop scores fewer
///    candidates for the same navigability.
///  - *Adaptive termination*: `params.patience` / `params.visit_budget`
///    behave exactly as on the raw path.
///
/// External stability: entry sampling draws ids in the *pre-permutation* id
/// space and maps them through `sg.old_to_new`, and every emitted neighbor is
/// mapped back through `sg.new_to_old` — so with pruning disabled and no
/// early termination, results are externally identical to
/// graph_search_batch over the source graph (same entries, same distances,
/// same ids; tie-breaks between equal-distance points are the only possible
/// difference). Tombstones travel inside the layout (`sg.exclude`, permuted
/// at build time), which is why a layout must never outlive the snapshot
/// version it was built from — see opt::ServingGraph::source_version.
///
/// The sq8 compressed tier is not routed through the optimized layout
/// (codes stay in source order); serving falls back to the raw path when a
/// snapshot carries both.
///
/// `exclude`, when non-empty, must have one byte per layout row *in the
/// permuted id space* and replaces the layout's baked `sg.exclude` — the
/// dynamic index uses this to serve delete-only publications through a reused
/// layout by re-permuting the fresh tombstone vector instead of rebuilding
/// the whole layout. Empty = use `sg.exclude` as built.
BatchSearchResult serving_search_batch(ThreadPool& pool,
                                       const opt::ServingGraph& sg,
                                       const FloatMatrix& queries,
                                       std::span<const std::uint64_t> tags,
                                       const SearchParams& params,
                                       std::span<const std::uint8_t> exclude = {},
                                       SearchScratch* scratch = nullptr,
                                       simt::StatsAccumulator* acc = nullptr);

/// Answers every query against `base` using `graph` for navigation; one
/// warp per query on the SIMT substrate. Returns a KnnGraph with one row per
/// query (ids refer to base points). Thin wrapper over `graph_search_batch`
/// with row-index tags; `stats` totals are merged per-query in index order
/// (deterministic for any pool size).
KnnGraph graph_search(ThreadPool& pool, const FloatMatrix& base,
                      const KnnGraph& graph, const FloatMatrix& queries,
                      const SearchParams& params,
                      SearchStats* stats = nullptr,
                      simt::StatsAccumulator* acc = nullptr,
                      const kernels::Sq8View* sq8 = nullptr);

}  // namespace wknng::core
