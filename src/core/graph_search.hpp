#pragma once

#include <cstdint>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "simt/stats.hpp"

namespace wknng::core {

/// Out-of-sample query answering over a built K-NN graph (GNNS-style
/// best-first descent; Hajebi et al., IJCAI 2011) — the "similarity search"
/// application the abstract motivates, as a library facility.
///
/// A K-NN graph is only weakly navigable across cluster boundaries, so the
/// search seeds itself from the best of a scored random sample
/// (`entry_sample`) instead of raw random entries, then descends greedily
/// with a bounded frontier (`beam`).
struct SearchParams {
  std::size_t k = 10;             ///< results per query
  std::size_t entry_sample = 256; ///< random base points scored for entry
  std::size_t entry_keep = 8;     ///< best entries that seed the frontier
  std::size_t beam = 48;          ///< result/frontier width during descent
  std::uint64_t seed = 7;         ///< entry sampling seed
};

struct SearchStats {
  std::uint64_t points_visited = 0;   ///< distance evaluations, total
  std::uint64_t queries = 0;
};

/// Answers every query against `base` using `graph` for navigation; one
/// warp per query on the SIMT substrate. Returns a KnnGraph with one row per
/// query (ids refer to base points).
KnnGraph graph_search(ThreadPool& pool, const FloatMatrix& base,
                      const KnnGraph& graph, const FloatMatrix& queries,
                      const SearchParams& params,
                      SearchStats* stats = nullptr,
                      simt::StatsAccumulator* acc = nullptr);

}  // namespace wknng::core
