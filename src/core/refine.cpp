#include "core/refine.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"
#include "core/leaf_knn.hpp"
#include "kernels/kernels.hpp"
#include "simt/fault.hpp"
#include "simt/launch.hpp"
#include "simt/packed.hpp"
#include "simt/sort.hpp"
#include "simt/warp_distance.hpp"

namespace wknng::core {

using simt::kWarpSize;
using simt::Lanes;
using simt::Packed;
using simt::Warp;

Adjacency snapshot_adjacency(ThreadPool& pool, const KnnSetArray& sets,
                             std::size_t reverse_cap) {
  const std::size_t n = sets.num_points();
  const std::size_t k = sets.k();
  if (reverse_cap == 0) reverse_cap = k;

  Adjacency adj;
  adj.n = n;
  adj.k = k;
  adj.fwd.assign(n * k, Adjacency::kInvalidId);
  adj.fwd_count.assign(n, 0);

  pool.parallel_for(n, 256, [&](std::size_t p) {
    adj.fwd_count[p] = static_cast<std::uint32_t>(
        sets.snapshot_ids(static_cast<std::uint32_t>(p), adj.fwd.data() + p * k));
  });

  // Reverse edges: count (capped), prefix-sum, fill. Serial counting pass —
  // O(nk), negligible next to the distance work it enables.
  std::vector<std::uint32_t> count(n, 0);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::uint32_t q : adj.forward(static_cast<std::uint32_t>(p))) {
      if (count[q] < reverse_cap) ++count[q];
    }
  }
  adj.rev_offsets.assign(n + 1, 0);
  for (std::size_t p = 0; p < n; ++p) {
    adj.rev_offsets[p + 1] = adj.rev_offsets[p] + count[p];
  }
  adj.rev.assign(adj.rev_offsets[n], 0);
  std::vector<std::uint32_t> cursor(adj.rev_offsets.begin(),
                                    adj.rev_offsets.end() - 1);
  std::vector<std::uint32_t> filled(n, 0);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::uint32_t q : adj.forward(static_cast<std::uint32_t>(p))) {
      if (filled[q] < reverse_cap) {
        adj.rev[cursor[q]++] = static_cast<std::uint32_t>(p);
        ++filled[q];
      }
    }
  }
  return adj;
}

namespace {

/// Gathers, dedups and prunes the candidate ids for point p into scratch.
/// Returns the candidate span (possibly empty). Candidate order — and hence
/// the sampled subset — is deterministic: a sorted-unique set minus current
/// neighbors, truncated to the sample budget.
std::span<std::uint32_t> gather_candidates(Warp& w, const Adjacency& adj,
                                           std::uint32_t p,
                                           std::size_t sample_cap) {
  const auto fwd_p = adj.forward(p);
  const auto rev_p = adj.reverse(p);

  // Upper bound on raw candidates: every base neighbor contributes up to k.
  const std::size_t base = fwd_p.size() + rev_p.size();
  const std::size_t raw_cap = base * adj.k;
  auto buf = w.scratch().alloc<std::uint32_t>(raw_cap);

  std::size_t count = 0;
  auto push_neighbors_of = [&](std::uint32_t q) {
    for (std::uint32_t r : adj.forward(q)) {
      if (r != p) buf[count++] = r;
    }
    w.count_read(adj.forward(q).size() * sizeof(std::uint32_t));
  };
  for (std::uint32_t q : fwd_p) push_neighbors_of(q);
  for (std::uint32_t q : rev_p) push_neighbors_of(q);
  w.count_read((fwd_p.size() + rev_p.size()) * sizeof(std::uint32_t));

  // Dedup (warp sort + unique in scratch).
  std::span<std::uint32_t> cands(buf.data(), count);
  simt::sort_scratch(w, cands);
  auto new_end = std::unique(cands.begin(), cands.end());
  count = static_cast<std::size_t>(new_end - cands.begin());

  // Remove p's current forward neighbors (already in the set; scanning here
  // is cheaper than burning a distance evaluation on them).
  std::size_t kept = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t r = cands[i];
    const bool known = std::find(fwd_p.begin(), fwd_p.end(), r) != fwd_p.end();
    if (!known) cands[kept++] = r;
  }
  count = std::min(kept, sample_cap);
  return cands.subspan(0, count);
}

void refine_point_pairwise(Warp& w, const FloatMatrix& points,
                           std::span<const std::uint32_t> cands,
                           std::uint32_t p, Strategy strategy,
                           KnnSetArray& sets, const kernels::Sq8View* sq8) {
  auto xp = points.row(p);
  if (sq8 != nullptr && sq8->valid()) {
    std::vector<float> wbuf;
    const kernels::Sq8Query q =
        simt::warp_sq8_prepare(w, xp, sq8->codebook(), wbuf);
    for (std::uint32_t r : cands) {
      const float dist = simt::warp_sq8_l2_dims(w, q, sq8->row(r));
      sets.insert(w, strategy, p, Packed::make(dist, r));
    }
    return;
  }
  for (std::uint32_t r : cands) {
    const float dist = simt::warp_l2_dims(w, xp, points.row(r));
    sets.insert(w, strategy, p, Packed::make(dist, r));
  }
}

void refine_point_tiled(Warp& w, const FloatMatrix& points,
                        std::span<const std::uint32_t> cands, std::uint32_t p,
                        KnnSetArray& sets, std::span<const float> norms_by_id,
                        const kernels::Sq8View* sq8) {
  auto xp = points.row(p);
  const bool use_sq8 = sq8 != nullptr && sq8->valid();
  std::vector<float> wbuf;
  kernels::Sq8Query q;
  if (use_sq8) q = simt::warp_sq8_prepare(w, xp, sq8->codebook(), wbuf);
  for (std::size_t t0 = 0; t0 < cands.size(); t0 += kWarpSize) {
    const std::size_t cnt = std::min<std::size_t>(kWarpSize, cands.size() - t0);
    Lanes<std::uint32_t> ids{};
    Lanes<bool> active{};
    for (std::size_t l = 0; l < cnt; ++l) {
      ids[l] = cands[t0 + l];
      active[l] = true;
    }
    const Lanes<float> dists =
        use_sq8 ? simt::warp_sq8_l2_batch(
                      w, q, ids, active,
                      [&](std::uint32_t id) { return sq8->row(id); },
                      sq8->terms)
                : simt::warp_l2_batch(
                      w, xp, ids, active,
                      [&](std::uint32_t id) { return points.row(id); },
                      norms_by_id);
    Lanes<std::uint64_t> run;
    run.fill(Packed::kEmpty);
    for (std::size_t l = 0; l < cnt; ++l) {
      run[l] = Packed::make(dists[l], ids[l]);
    }
    simt::bitonic_sort_lanes(w, run);
    sets.merge_sorted_tile(w, p, run);
  }
}

}  // namespace

std::size_t refine_round(ThreadPool& pool, const FloatMatrix& points,
                         const Adjacency& adj, const BuildParams& params,
                         KnnSetArray& sets, simt::StatsAccumulator* acc,
                         const kernels::Sq8View* sq8) {
  const std::size_t n = sets.num_points();
  WKNNG_CHECK(adj.n == n);
  const bool use_sq8 = sq8 != nullptr && sq8->valid();

  // Per-point recovery: a failed point keeps its current (valid) set for
  // this round; the caller decides whether a skipped point degrades the
  // build. Failures leave no lock held — the lock-timeout site fires before
  // acquisition and scratch is allocated before the critical sections.
  // Whole-dataset squared-norm cache: one O(n*dim) pass funds the norm-trick
  // fast path of every tiled/batched evaluation this round (the strict
  // scalar backend ignores it, so skip the pass there).
  std::vector<float> norms;
  if (!use_sq8 && (params.strategy == Strategy::kTiled ||
                   params.strategy == Strategy::kShared ||
                   params.refine_mode == RefineMode::kLocalJoin)) {
    if (!kernels::strict_mode()) norms = kernels::row_norms(points);
  }

  std::atomic<std::size_t> skipped{0};
  const auto guarded = [&skipped](auto&& body) {
    try {
      body();
    } catch (const ScratchOverflowError&) {
      skipped.fetch_add(1, std::memory_order_relaxed);
    } catch (const WarpAbortError&) {
      skipped.fetch_add(1, std::memory_order_relaxed);
    } catch (const LockTimeoutError&) {
      skipped.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // Scratch needs room for the raw candidate gather plus the tiled kernel's
  // merge buffer. The gather bound is (max fwd+rev degree) * k ids.
  std::size_t max_rev = 0;
  for (std::size_t p = 0; p < n; ++p) {
    max_rev = std::max<std::size_t>(
        max_rev, adj.rev_offsets[p + 1] - adj.rev_offsets[p]);
  }
  const std::size_t gather_bytes =
      (adj.k + max_rev) * adj.k * sizeof(std::uint32_t) + 4096;
  simt::LaunchConfig config;
  config.scratch_bytes = std::max(params.scratch_bytes, gather_bytes);
  config.grain = 16;
  config.schedule = params.schedule;

  if (params.refine_mode == RefineMode::kLocalJoin) {
    // Local join: each warp brute-forces its point's combined neighborhood
    // as a bucket. Joined ids include p itself so the pairs (p, q) are also
    // refreshed.
    config.trace_label = "refine_local_join";
    simt::launch_warps(pool, n, config, acc, [&](Warp& w) {
      guarded([&] {
        const auto p = static_cast<std::uint32_t>(w.id());
        const auto fwd = adj.forward(p);
        const auto rev = adj.reverse(p);
        auto join = w.scratch().alloc<std::uint32_t>(fwd.size() + rev.size() + 1);
        std::size_t count = 0;
        join[count++] = p;
        for (std::uint32_t q : fwd) join[count++] = q;
        for (std::uint32_t q : rev) join[count++] = q;
        std::span<std::uint32_t> ids(join.data(), count);
        simt::sort_scratch(w, ids);
        auto end = std::unique(ids.begin(), ids.end());
        const std::size_t unique_count =
            std::min<std::size_t>(end - ids.begin(), params.refine_sample);
        process_bucket(w, points, ids.subspan(0, unique_count), params.strategy,
                       sets, norms, sq8);
      });
    });
    return skipped.load(std::memory_order_relaxed);
  }

  config.trace_label = "refine_expand";
  simt::launch_warps(pool, n, config, acc, [&](Warp& w) {
    guarded([&] {
      simt::fault_maybe_throw(simt::FaultSite::kWarpAbort);
      const auto p = static_cast<std::uint32_t>(w.id());
      auto cands = gather_candidates(w, adj, p, params.refine_sample);
      if (cands.empty()) return;
      if (params.strategy == Strategy::kTiled ||
          params.strategy == Strategy::kShared) {
        // kShared refines like kTiled: candidates scored in scratch, one
        // merge per tile — the natural scratch-first discipline.
        refine_point_tiled(w, points, cands, p, sets, norms, sq8);
      } else {
        refine_point_pairwise(w, points, cands, p, params.strategy, sets, sq8);
      }
    });
  });
  return skipped.load(std::memory_order_relaxed);
}

}  // namespace wknng::core
