#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/knn_set.hpp"
#include "core/params.hpp"
#include "kernels/sq8.hpp"
#include "simt/stats.hpp"

namespace wknng::core {

/// Adjacency snapshot taken between refinement rounds: forward edges are the
/// current k-NN sets; reverse edges are their transpose, capped per point so
/// hub points do not blow up candidate generation (the standard NN-Descent
/// sampling discipline).
struct Adjacency {
  std::size_t n = 0;
  std::size_t k = 0;
  std::vector<std::uint32_t> fwd;        ///< n * k, kInvalidId padded
  std::vector<std::uint32_t> fwd_count;  ///< valid entries per row
  std::vector<std::uint32_t> rev;        ///< CSR payload
  std::vector<std::uint32_t> rev_offsets;///< CSR offsets (n + 1)

  static constexpr std::uint32_t kInvalidId = ~std::uint32_t{0};

  std::span<const std::uint32_t> forward(std::uint32_t p) const {
    return {fwd.data() + static_cast<std::size_t>(p) * k, fwd_count[p]};
  }
  std::span<const std::uint32_t> reverse(std::uint32_t p) const {
    return {rev.data() + rev_offsets[p], rev.data() + rev_offsets[p + 1]};
  }
};

/// Builds the forward/reverse adjacency snapshot from the current k-NN sets.
/// `reverse_cap` limits reverse edges kept per point (0 means k).
Adjacency snapshot_adjacency(ThreadPool& pool, const KnnSetArray& sets,
                             std::size_t reverse_cap);

/// One neighbor-of-neighbor refinement round (NN-Descent-style local join):
/// one warp per point p gathers the neighbors of p's forward+reverse
/// neighbors, dedups them in scratch, drops p's current neighbors, then
/// scores at most `params.refine_sample` candidates with the strategy's
/// kernel shape and submits them to p's k-NN set.
///
/// Updates flow only into p's own set, so a round is deterministic for the
/// lock-based strategies regardless of warp scheduling.
///
/// Per-point failures (scratch overflow, warp abort, lock timeout — real or
/// injected) are caught inside the warp body: the point keeps its current
/// set for this round and is counted in the return value. Returns the
/// number of points skipped that way (0 on a clean round).
///
/// `sq8`, when valid, scores every candidate against the compressed (u8)
/// rows asymmetrically instead of the fp32 rows (see leaf_knn).
std::size_t refine_round(ThreadPool& pool, const FloatMatrix& points,
                         const Adjacency& adj, const BuildParams& params,
                         KnnSetArray& sets, simt::StatsAccumulator* acc,
                         const kernels::Sq8View* sq8 = nullptr);

}  // namespace wknng::core
