#include "core/graph_search.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/topk.hpp"
#include "core/params.hpp"
#include "kernels/kernels.hpp"
#include "simt/launch.hpp"
#include "simt/warp_distance.hpp"

namespace wknng::core {

using simt::kWarpSize;
using simt::Lanes;
using simt::Warp;

namespace {

struct MinHeapCmp {
  bool operator()(const Neighbor& a, const Neighbor& b) const { return b < a; }
};

}  // namespace

SearchScratch::Slot& SearchScratch::local() {
  const std::thread::id tid = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Slot>& slot = slots_[tid];
  if (!slot) slot = std::make_unique<Slot>();
  return *slot;
}

std::span<const float> SearchScratch::base_norms(const FloatMatrix& base) {
  std::call_once(norms_once_, [&] {
    if (!kernels::strict_mode()) base_norms_ = kernels::row_norms(base);
  });
  if (base_norms_.size() != base.rows()) return {};
  return base_norms_;
}

BatchSearchResult graph_search_batch(ThreadPool& pool, const FloatMatrix& base,
                                     const KnnGraph& graph,
                                     const FloatMatrix& queries,
                                     std::span<const std::uint64_t> tags,
                                     const SearchParams& params,
                                     SearchScratch* scratch,
                                     simt::StatsAccumulator* acc,
                                     const kernels::Sq8View* sq8,
                                     std::span<const std::uint8_t> exclude) {
  WKNNG_CHECK(base.cols() == queries.cols());
  WKNNG_CHECK_MSG(exclude.empty() || exclude.size() == base.rows(),
                  "exclusion mask size " << exclude.size() << " != base "
                                         << base.rows());
  WKNNG_CHECK(graph.num_points() == base.rows());
  WKNNG_CHECK_MSG(params.k > 0, "k must be positive");
  const bool use_sq8 = sq8 != nullptr && sq8->valid();
  if (use_sq8) {
    WKNNG_CHECK_MSG(sq8->matrix->rows() == base.rows() &&
                        sq8->matrix->dim() == base.cols(),
                    "sq8 codes are " << sq8->matrix->rows() << "x"
                        << sq8->matrix->dim() << ", base is " << base.rows()
                        << "x" << base.cols());
  }
  WKNNG_CHECK_MSG(tags.empty() || tags.size() == queries.rows(),
                  "tags size " << tags.size() << " != queries "
                               << queries.rows());
  const std::size_t n = base.rows();
  const std::size_t nq = queries.rows();

  BatchSearchResult out;
  out.results = KnnGraph(nq, params.k);
  out.visits.assign(nq, 0);
  if (nq == 0 || n == 0) return out;  // nothing to search; no launch

  // Degenerate-parameter clamps (see header): results never exceed the base,
  // and the entry heap never outgrows the sample feeding it.
  const std::size_t k_eff = std::min(params.k, n);
  const std::size_t entry_keep = std::max<std::size_t>(
      1, std::min(params.entry_keep, std::max<std::size_t>(
                                         1, params.entry_sample)));
  // Compressed path: how many sq8-ranked survivors get the exact rescore.
  // Zero on the uncompressed path, so the result-heap size is untouched.
  const std::size_t rr_eff =
      use_sq8 ? std::min(effective_rerank_depth(k_eff, params.rerank_depth), n)
              : 0;

  SearchScratch local_scratch;
  SearchScratch& scr = scratch != nullptr ? *scratch : local_scratch;
  const std::span<const float> base_norms = scr.base_norms(base);

  simt::LaunchConfig search_config;
  search_config.trace_label = "graph_search";
  simt::launch_warps(pool, nq, search_config, acc, [&](Warp& w) {
    const std::size_t qi = w.id();
    const std::uint64_t tag = tags.empty() ? qi : tags[qi];
    const auto query = queries.row(qi);
    Rng rng(params.seed, 0x5EA5C000ULL + tag);

    SearchScratch::Slot& slot = scr.local();
    slot.begin(n);
    // Tombstone check: one byte load on candidate admission; an empty mask
    // compiles down to the constant-false branch.
    const bool has_exclude = !exclude.empty();
    auto is_excluded = [&](std::uint32_t id) {
      return has_exclude && exclude[id] != 0;
    };
    std::uint64_t visits = 0;
    std::priority_queue<Neighbor, std::vector<Neighbor>, MinHeapCmp> frontier;
    // The compressed path widens the result heap to the rerank depth so the
    // exact rescore has a pool to re-order (rr_eff is 0 otherwise).
    TopK best(std::max(std::max(k_eff, params.beam), rr_eff));

    // Compressed path: prepare the query once per warp (one fp32 row read);
    // every candidate after this streams 1 byte/dim of code data.
    kernels::Sq8Query sq8_q;
    if (use_sq8) {
      sq8_q = simt::warp_sq8_prepare(w, query, sq8->codebook(), slot.qprep);
    }

    // Entry scoring: warp evaluates the sample in candidate-parallel tiles.
    auto score_ids = [&](const std::vector<std::uint32_t>& ids,
                         TopK& sink) {
      for (std::size_t t0 = 0; t0 < ids.size(); t0 += kWarpSize) {
        const std::size_t cnt = std::min<std::size_t>(kWarpSize, ids.size() - t0);
        Lanes<std::uint32_t> lane_ids{};
        Lanes<bool> active{};
        for (std::size_t l = 0; l < cnt; ++l) {
          lane_ids[l] = ids[t0 + l];
          active[l] = true;
        }
        const Lanes<float> d =
            use_sq8 ? simt::warp_sq8_l2_batch(
                          w, sq8_q, lane_ids, active,
                          [&](std::uint32_t p) { return sq8->row(p); },
                          sq8->terms)
                    : simt::warp_l2_batch(
                          w, query, lane_ids, active,
                          [&](std::uint32_t p) { return base.row(p); },
                          base_norms);
        for (std::size_t l = 0; l < cnt; ++l) sink.push(d[l], lane_ids[l]);
      }
      visits += ids.size();
    };

    std::vector<std::uint32_t>& sample = slot.sample;
    sample.clear();
    for (std::size_t e = 0; e < params.entry_sample && sample.size() < n; ++e) {
      const auto id = static_cast<std::uint32_t>(rng.next_below(n));
      if (slot.test_and_set(id)) continue;
      sample.push_back(id);
    }
    TopK entries(entry_keep);
    score_ids(sample, entries);
    for (const Neighbor& e : entries.take_sorted()) {
      frontier.push(e);  // excluded entries still navigate
      if (!is_excluded(e.id)) best.push(e.dist, e.id);
    }

    // Best-first descent over the graph.
    std::vector<std::uint32_t>& expand = slot.expand;
    while (!frontier.empty()) {
      const Neighbor cur = frontier.top();
      frontier.pop();
      if (cur.dist > best.worst()) break;
      expand.clear();
      for (const Neighbor& nb : graph.row(cur.id)) {
        if (nb.id == KnnGraph::kInvalid) break;
        if (slot.test_and_set(nb.id)) continue;
        expand.push_back(nb.id);
      }
      w.count_read(graph.k() * sizeof(Neighbor));
      for (std::size_t t0 = 0; t0 < expand.size(); t0 += kWarpSize) {
        const std::size_t cnt = std::min<std::size_t>(kWarpSize, expand.size() - t0);
        Lanes<std::uint32_t> lane_ids{};
        Lanes<bool> active{};
        for (std::size_t l = 0; l < cnt; ++l) {
          lane_ids[l] = expand[t0 + l];
          active[l] = true;
        }
        const Lanes<float> d =
            use_sq8 ? simt::warp_sq8_l2_batch(
                          w, sq8_q, lane_ids, active,
                          [&](std::uint32_t p) { return sq8->row(p); },
                          sq8->terms)
                    : simt::warp_l2_batch(
                          w, query, lane_ids, active,
                          [&](std::uint32_t p) { return base.row(p); },
                          base_norms);
        for (std::size_t l = 0; l < cnt; ++l) {
          if (d[l] < best.worst()) {
            frontier.push({d[l], lane_ids[l]});
            if (!is_excluded(lane_ids[l])) best.push(d[l], lane_ids[l]);
          }
        }
        visits += cnt;
      }
    }

    auto found = best.take_sorted();
    if (use_sq8) {
      // Exact rerank: rescore the top rr_eff sq8-ranked survivors against the
      // fp32 base rows so the emitted top-k carries exact distances in exact
      // order. Approximation error only matters below the rerank horizon.
      if (found.size() > rr_eff) found.resize(rr_eff);
      TopK exact(k_eff);
      for (std::size_t t0 = 0; t0 < found.size(); t0 += kWarpSize) {
        const std::size_t cnt =
            std::min<std::size_t>(kWarpSize, found.size() - t0);
        Lanes<std::uint32_t> lane_ids{};
        Lanes<bool> active{};
        for (std::size_t l = 0; l < cnt; ++l) {
          lane_ids[l] = found[t0 + l].id;
          active[l] = true;
        }
        const Lanes<float> d = simt::warp_l2_batch(
            w, query, lane_ids, active,
            [&](std::uint32_t p) { return base.row(p); }, base_norms);
        for (std::size_t l = 0; l < cnt; ++l) exact.push(d[l], lane_ids[l]);
        visits += cnt;
      }
      found = exact.take_sorted();
    }
    if (found.size() > k_eff) found.resize(k_eff);
    auto row = out.results.row(qi);
    std::copy(found.begin(), found.end(), row.begin());
    out.visits[qi] = visits;  // this warp's slot only: no shared accumulator
  });

  return out;
}

KnnGraph graph_search(ThreadPool& pool, const FloatMatrix& base,
                      const KnnGraph& graph, const FloatMatrix& queries,
                      const SearchParams& params, SearchStats* stats,
                      simt::StatsAccumulator* acc,
                      const kernels::Sq8View* sq8) {
  BatchSearchResult batch = graph_search_batch(pool, base, graph, queries, {},
                                               params, nullptr, acc, sq8);
  if (stats != nullptr) {
    // Sequential index-order merge: the total is identical for every pool
    // size and schedule, unlike a racing shared counter.
    for (const std::uint64_t v : batch.visits) stats->points_visited += v;
    stats->queries += queries.rows();
  }
  return std::move(batch.results);
}

}  // namespace wknng::core
