#include "core/graph_search.hpp"

#include <algorithm>
#include <atomic>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/topk.hpp"
#include "simt/launch.hpp"
#include "simt/warp_distance.hpp"

namespace wknng::core {

using simt::kWarpSize;
using simt::Lanes;
using simt::Warp;

namespace {

struct MinHeapCmp {
  bool operator()(const Neighbor& a, const Neighbor& b) const { return b < a; }
};

}  // namespace

KnnGraph graph_search(ThreadPool& pool, const FloatMatrix& base,
                      const KnnGraph& graph, const FloatMatrix& queries,
                      const SearchParams& params, SearchStats* stats,
                      simt::StatsAccumulator* acc) {
  WKNNG_CHECK(base.cols() == queries.cols());
  WKNNG_CHECK(graph.num_points() == base.rows());
  WKNNG_CHECK_MSG(params.k > 0 && params.k <= base.rows(),
                  "k=" << params.k << " base=" << base.rows());
  const std::size_t n = base.rows();
  const std::size_t nq = queries.rows();

  KnnGraph out(nq, params.k);
  std::atomic<std::uint64_t> visited_total{0};

  simt::launch_warps(pool, nq, acc, [&](Warp& w) {
    const std::size_t qi = w.id();
    const auto query = queries.row(qi);
    Rng rng(params.seed, 0x5EA5C000ULL + qi);

    std::vector<char> visited(n, 0);
    std::uint64_t visits = 0;
    std::priority_queue<Neighbor, std::vector<Neighbor>, MinHeapCmp> frontier;
    TopK best(std::max(params.k, params.beam));

    // Entry scoring: warp evaluates the sample in candidate-parallel tiles.
    auto score_ids = [&](const std::vector<std::uint32_t>& ids,
                         TopK& sink) {
      for (std::size_t t0 = 0; t0 < ids.size(); t0 += kWarpSize) {
        const std::size_t cnt = std::min<std::size_t>(kWarpSize, ids.size() - t0);
        Lanes<std::uint32_t> lane_ids{};
        Lanes<bool> active{};
        for (std::size_t l = 0; l < cnt; ++l) {
          lane_ids[l] = ids[t0 + l];
          active[l] = true;
        }
        const Lanes<float> d = simt::warp_l2_batch(
            w, query, lane_ids, active,
            [&](std::uint32_t p) { return base.row(p); });
        for (std::size_t l = 0; l < cnt; ++l) sink.push(d[l], lane_ids[l]);
      }
      visits += ids.size();
    };

    std::vector<std::uint32_t> sample;
    sample.reserve(params.entry_sample);
    for (std::size_t e = 0; e < params.entry_sample && sample.size() < n; ++e) {
      const auto id = static_cast<std::uint32_t>(rng.next_below(n));
      if (visited[id]) continue;
      visited[id] = 1;
      sample.push_back(id);
    }
    TopK entries(std::max<std::size_t>(1, params.entry_keep));
    score_ids(sample, entries);
    for (const Neighbor& e : entries.take_sorted()) {
      frontier.push(e);
      best.push(e.dist, e.id);
    }

    // Best-first descent over the graph.
    std::vector<std::uint32_t> expand;
    while (!frontier.empty()) {
      const Neighbor cur = frontier.top();
      frontier.pop();
      if (cur.dist > best.worst()) break;
      expand.clear();
      for (const Neighbor& nb : graph.row(cur.id)) {
        if (nb.id == KnnGraph::kInvalid) break;
        if (visited[nb.id]) continue;
        visited[nb.id] = 1;
        expand.push_back(nb.id);
      }
      w.count_read(graph.k() * sizeof(Neighbor));
      for (std::size_t t0 = 0; t0 < expand.size(); t0 += kWarpSize) {
        const std::size_t cnt = std::min<std::size_t>(kWarpSize, expand.size() - t0);
        Lanes<std::uint32_t> lane_ids{};
        Lanes<bool> active{};
        for (std::size_t l = 0; l < cnt; ++l) {
          lane_ids[l] = expand[t0 + l];
          active[l] = true;
        }
        const Lanes<float> d = simt::warp_l2_batch(
            w, query, lane_ids, active,
            [&](std::uint32_t p) { return base.row(p); });
        for (std::size_t l = 0; l < cnt; ++l) {
          if (d[l] < best.worst()) {
            frontier.push({d[l], lane_ids[l]});
            best.push(d[l], lane_ids[l]);
          }
        }
        visits += cnt;
      }
    }

    auto found = best.take_sorted();
    if (found.size() > params.k) found.resize(params.k);
    auto row = out.row(qi);
    std::copy(found.begin(), found.end(), row.begin());
    visited_total.fetch_add(visits, std::memory_order_relaxed);
  });

  if (stats != nullptr) {
    stats->points_visited += visited_total.load();
    stats->queries += nq;
  }
  return out;
}

}  // namespace wknng::core
