#include "core/graph_search.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/topk.hpp"
#include "core/params.hpp"
#include "kernels/kernels.hpp"
#include "simt/launch.hpp"
#include "simt/warp_distance.hpp"

// Software prefetch for the serving path's frontier pipeline: a hint, never
// a semantic — compilers without the builtin just skip it.
#if defined(__GNUC__) || defined(__clang__)
#define WKNNG_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define WKNNG_PREFETCH(addr) ((void)0)
#endif

namespace wknng::core {

using simt::kWarpSize;
using simt::Lanes;
using simt::Warp;

namespace {

/// Soft capacity of the frontier heap: generous enough that eviction is rare
/// (evictable elements are the ones the descent could never expand anyway),
/// small enough that a slot's storage stays cache-resident.
std::size_t frontier_capacity(const SearchParams& params) {
  return std::max<std::size_t>(2 * (params.beam + kWarpSize), 128);
}

}  // namespace

void validate_search_params(const SearchParams& params) {
  if (params.k == 0) {
    throw SearchParamError("SearchParams: k must be positive");
  }
  if (params.entry_sample == 0) {
    throw SearchParamError(
        "SearchParams: entry_sample must be positive — with no scored entry "
        "sample the descent has no seeds and every query would come back "
        "empty");
  }
}

SearchScratch::Slot& SearchScratch::local() {
  const std::thread::id tid = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Slot>& slot = slots_[tid];
  if (!slot) slot = std::make_unique<Slot>();
  return *slot;
}

std::span<const float> SearchScratch::base_norms(const FloatMatrix& base) {
  std::call_once(norms_once_, [&] {
    if (!kernels::strict_mode()) base_norms_ = kernels::row_norms(base);
  });
  if (base_norms_.size() != base.rows()) return {};
  return base_norms_;
}

BatchSearchResult graph_search_batch(ThreadPool& pool, const FloatMatrix& base,
                                     const KnnGraph& graph,
                                     const FloatMatrix& queries,
                                     std::span<const std::uint64_t> tags,
                                     const SearchParams& params,
                                     SearchScratch* scratch,
                                     simt::StatsAccumulator* acc,
                                     const kernels::Sq8View* sq8,
                                     std::span<const std::uint8_t> exclude) {
  WKNNG_CHECK(base.cols() == queries.cols());
  WKNNG_CHECK_MSG(exclude.empty() || exclude.size() == base.rows(),
                  "exclusion mask size " << exclude.size() << " != base "
                                         << base.rows());
  WKNNG_CHECK(graph.num_points() == base.rows());
  validate_search_params(params);
  const bool use_sq8 = sq8 != nullptr && sq8->valid();
  if (use_sq8) {
    WKNNG_CHECK_MSG(sq8->matrix->rows() == base.rows() &&
                        sq8->matrix->dim() == base.cols(),
                    "sq8 codes are " << sq8->matrix->rows() << "x"
                        << sq8->matrix->dim() << ", base is " << base.rows()
                        << "x" << base.cols());
  }
  WKNNG_CHECK_MSG(tags.empty() || tags.size() == queries.rows(),
                  "tags size " << tags.size() << " != queries "
                               << queries.rows());
  const std::size_t n = base.rows();
  const std::size_t nq = queries.rows();

  BatchSearchResult out;
  out.results = KnnGraph(nq, params.k);
  out.visits.assign(nq, 0);
  out.capped.assign(nq, 0);
  if (nq == 0 || n == 0) return out;  // nothing to search; no launch

  // Degenerate-parameter clamps (see header): results never exceed the base,
  // and the entry heap never outgrows the sample feeding it. entry_sample is
  // known positive — admission validation rejected zero.
  const std::size_t k_eff = std::min(params.k, n);
  const std::size_t entry_keep = std::max<std::size_t>(
      1, std::min(params.entry_keep, params.entry_sample));
  // Compressed path: how many sq8-ranked survivors get the exact rescore.
  // Zero on the uncompressed path, so the result-heap size is untouched.
  const std::size_t rr_eff =
      use_sq8 ? std::min(effective_rerank_depth(k_eff, params.rerank_depth), n)
              : 0;
  const std::size_t frontier_cap = frontier_capacity(params);

  SearchScratch local_scratch;
  SearchScratch& scr = scratch != nullptr ? *scratch : local_scratch;
  const std::span<const float> base_norms = scr.base_norms(base);

  simt::LaunchConfig search_config;
  search_config.trace_label = "graph_search";
  simt::launch_warps(pool, nq, search_config, acc, [&](Warp& w) {
    const std::size_t qi = w.id();
    const std::uint64_t tag = tags.empty() ? qi : tags[qi];
    const auto query = queries.row(qi);
    Rng rng(params.seed, 0x5EA5C000ULL + tag);

    SearchScratch::Slot& slot = scr.local();
    slot.begin(n);
    // Tombstone check: one byte load on candidate admission; an empty mask
    // compiles down to the constant-false branch.
    const bool has_exclude = !exclude.empty();
    auto is_excluded = [&](std::uint32_t id) {
      return has_exclude && exclude[id] != 0;
    };
    std::uint64_t visits = 0;
    bool capped = false;
    FrontierHeap frontier(slot.frontier, frontier_cap);
    // The compressed path widens the result heap to the rerank depth so the
    // exact rescore has a pool to re-order (rr_eff is 0 otherwise).
    TopK best(std::max(std::max(k_eff, params.beam), rr_eff));

    // Compressed path: prepare the query once per warp (one fp32 row read);
    // every candidate after this streams 1 byte/dim of code data.
    kernels::Sq8Query sq8_q;
    if (use_sq8) {
      sq8_q = simt::warp_sq8_prepare(w, query, sq8->codebook(), slot.qprep);
    }

    // Entry scoring: warp evaluates the sample in candidate-parallel tiles.
    auto score_ids = [&](const std::vector<std::uint32_t>& ids,
                         TopK& sink) {
      for (std::size_t t0 = 0; t0 < ids.size(); t0 += kWarpSize) {
        const std::size_t cnt = std::min<std::size_t>(kWarpSize, ids.size() - t0);
        Lanes<std::uint32_t> lane_ids{};
        Lanes<bool> active{};
        for (std::size_t l = 0; l < cnt; ++l) {
          lane_ids[l] = ids[t0 + l];
          active[l] = true;
        }
        const Lanes<float> d =
            use_sq8 ? simt::warp_sq8_l2_batch(
                          w, sq8_q, lane_ids, active,
                          [&](std::uint32_t p) { return sq8->row(p); },
                          sq8->terms)
                    : simt::warp_l2_batch(
                          w, query, lane_ids, active,
                          [&](std::uint32_t p) { return base.row(p); },
                          base_norms);
        for (std::size_t l = 0; l < cnt; ++l) sink.push(d[l], lane_ids[l]);
      }
      visits += ids.size();
    };

    std::vector<std::uint32_t>& sample = slot.sample;
    sample.clear();
    for (std::size_t e = 0; e < params.entry_sample && sample.size() < n; ++e) {
      const auto id = static_cast<std::uint32_t>(rng.next_below(n));
      if (slot.test_and_set(id)) continue;
      sample.push_back(id);
    }
    TopK entries(entry_keep);
    score_ids(sample, entries);
    for (const Neighbor& e : entries.take_sorted()) {
      frontier.push(e, best.worst());  // excluded entries still navigate
      if (!is_excluded(e.id)) best.push(e.dist, e.id);
    }

    // Best-first descent over the graph.
    std::vector<std::uint32_t>& expand = slot.expand;
    std::size_t stale_hops = 0;  // hops since the result heap last improved
    while (!frontier.empty()) {
      const Neighbor cur = frontier.pop();
      if (cur.dist > best.worst()) break;
      if (params.visit_budget != 0 && visits >= params.visit_budget) {
        capped = true;  // the frontier still held a useful candidate
        break;
      }
      expand.clear();
      for (const Neighbor& nb : graph.row(cur.id)) {
        if (nb.id == KnnGraph::kInvalid) break;
        if (slot.test_and_set(nb.id)) continue;
        expand.push_back(nb.id);
      }
      w.count_read(graph.k() * sizeof(Neighbor));
      bool improved = false;
      for (std::size_t t0 = 0; t0 < expand.size(); t0 += kWarpSize) {
        const std::size_t cnt = std::min<std::size_t>(kWarpSize, expand.size() - t0);
        Lanes<std::uint32_t> lane_ids{};
        Lanes<bool> active{};
        for (std::size_t l = 0; l < cnt; ++l) {
          lane_ids[l] = expand[t0 + l];
          active[l] = true;
        }
        const Lanes<float> d =
            use_sq8 ? simt::warp_sq8_l2_batch(
                          w, sq8_q, lane_ids, active,
                          [&](std::uint32_t p) { return sq8->row(p); },
                          sq8->terms)
                    : simt::warp_l2_batch(
                          w, query, lane_ids, active,
                          [&](std::uint32_t p) { return base.row(p); },
                          base_norms);
        for (std::size_t l = 0; l < cnt; ++l) {
          if (d[l] < best.worst()) {
            frontier.push({d[l], lane_ids[l]}, best.worst());
            if (!is_excluded(lane_ids[l])) {
              best.push(d[l], lane_ids[l]);
              improved = true;
            }
          }
        }
        visits += cnt;
      }
      if (params.patience != 0) {
        stale_hops = improved ? 0 : stale_hops + 1;
        if (stale_hops >= params.patience) break;
      }
    }

    auto found = best.take_sorted();
    if (use_sq8) {
      // Exact rerank: rescore the top rr_eff sq8-ranked survivors against the
      // fp32 base rows so the emitted top-k carries exact distances in exact
      // order. Approximation error only matters below the rerank horizon.
      if (found.size() > rr_eff) found.resize(rr_eff);
      TopK exact(k_eff);
      for (std::size_t t0 = 0; t0 < found.size(); t0 += kWarpSize) {
        const std::size_t cnt =
            std::min<std::size_t>(kWarpSize, found.size() - t0);
        Lanes<std::uint32_t> lane_ids{};
        Lanes<bool> active{};
        for (std::size_t l = 0; l < cnt; ++l) {
          lane_ids[l] = found[t0 + l].id;
          active[l] = true;
        }
        const Lanes<float> d = simt::warp_l2_batch(
            w, query, lane_ids, active,
            [&](std::uint32_t p) { return base.row(p); }, base_norms);
        for (std::size_t l = 0; l < cnt; ++l) exact.push(d[l], lane_ids[l]);
        visits += cnt;
      }
      found = exact.take_sorted();
    }
    if (found.size() > k_eff) found.resize(k_eff);
    auto row = out.results.row(qi);
    std::copy(found.begin(), found.end(), row.begin());
    out.visits[qi] = visits;  // this warp's slot only: no shared accumulator
    out.capped[qi] = capped ? 1 : 0;
  });

  return out;
}

BatchSearchResult serving_search_batch(ThreadPool& pool,
                                       const opt::ServingGraph& sg,
                                       const FloatMatrix& queries,
                                       std::span<const std::uint64_t> tags,
                                       const SearchParams& params,
                                       std::span<const std::uint8_t> exclude,
                                       SearchScratch* scratch,
                                       simt::StatsAccumulator* acc) {
  WKNNG_CHECK_MSG(sg.dim == queries.cols(),
                  "serving layout dim " << sg.dim << " != query dim "
                                        << queries.cols());
  WKNNG_CHECK_MSG(sg.offsets.size() == sg.n() + 1,
                  "serving layout CSR malformed");
  WKNNG_CHECK_MSG(exclude.empty() || exclude.size() == sg.n(),
                  "exclusion override size " << exclude.size()
                                             << " != layout rows " << sg.n());
  validate_search_params(params);
  WKNNG_CHECK_MSG(tags.empty() || tags.size() == queries.rows(),
                  "tags size " << tags.size() << " != queries "
                               << queries.rows());
  const std::size_t n = sg.n();
  const std::size_t nq = queries.rows();
  const std::size_t dim = sg.dim;

  BatchSearchResult out;
  out.results = KnnGraph(nq, params.k);
  out.visits.assign(nq, 0);
  out.capped.assign(nq, 0);
  if (nq == 0 || n == 0) return out;

  const std::size_t k_eff = std::min(params.k, n);
  const std::size_t entry_keep = std::max<std::size_t>(
      1, std::min(params.entry_keep, params.entry_sample));
  const std::size_t frontier_cap = frontier_capacity(params);

  SearchScratch local_scratch;
  SearchScratch& scr = scratch != nullptr ? *scratch : local_scratch;
  // The layout carries its own norm cache, gathered into the permuted order
  // at build time (empty when built in strict mode — the scalar backend
  // ignores caches either way, per the kernels contract).
  const std::span<const float> base_norms(sg.norms);

  simt::LaunchConfig search_config;
  search_config.trace_label = "serving_search";
  simt::launch_warps(pool, nq, search_config, acc, [&](Warp& w) {
    const std::size_t qi = w.id();
    const std::uint64_t tag = tags.empty() ? qi : tags[qi];
    const auto query = queries.row(qi);
    // Same stream derivation as the raw path, and entries are drawn in the
    // *old* id space below — the permuted layout seeds from the same points.
    Rng rng(params.seed, 0x5EA5C000ULL + tag);

    SearchScratch::Slot& slot = scr.local();
    slot.begin(n);
    // Caller override first (fresh tombstones, already permuted), the
    // layout's baked mask otherwise.
    const std::span<const std::uint8_t> excl =
        !exclude.empty() ? exclude
                         : std::span<const std::uint8_t>(sg.exclude);
    const bool has_exclude = !excl.empty();
    auto is_excluded = [&](std::uint32_t id) {
      return has_exclude && excl[id] != 0;
    };
    std::uint64_t visits = 0;
    bool capped = false;
    FrontierHeap frontier(slot.frontier, frontier_cap);
    TopK best(std::max(k_eff, params.beam));

    auto score_ids = [&](const std::vector<std::uint32_t>& ids, TopK& sink) {
      for (std::size_t t0 = 0; t0 < ids.size(); t0 += kWarpSize) {
        const std::size_t cnt =
            std::min<std::size_t>(kWarpSize, ids.size() - t0);
        Lanes<std::uint32_t> lane_ids{};
        Lanes<bool> active{};
        for (std::size_t l = 0; l < cnt; ++l) {
          lane_ids[l] = ids[t0 + l];
          active[l] = true;
        }
        const Lanes<float> d = simt::warp_l2_batch(
            w, query, lane_ids, active,
            [&](std::uint32_t p) { return sg.base.row(p); }, base_norms);
        for (std::size_t l = 0; l < cnt; ++l) sink.push(d[l], lane_ids[l]);
      }
      visits += ids.size();
    };

    std::vector<std::uint32_t>& sample = slot.sample;
    sample.clear();
    for (std::size_t e = 0; e < params.entry_sample && sample.size() < n; ++e) {
      const auto old_id = static_cast<std::uint32_t>(rng.next_below(n));
      const std::uint32_t id = sg.old_to_new[old_id];
      if (slot.test_and_set(id)) continue;
      sample.push_back(id);
    }
    TopK entries(entry_keep);
    score_ids(sample, entries);
    for (const Neighbor& e : entries.take_sorted()) {
      frontier.push(e, best.worst());
      if (!is_excluded(e.id)) best.push(e.dist, e.id);
    }

    // Prefetch pipeline: while l2_batch scores one warp-tile of candidates,
    // the next tile's base rows are already on their way — the BFS layout
    // makes those rows near-adjacent, so the hints mostly hit the same pages.
    std::vector<std::uint32_t>& expand = slot.expand;
    auto prefetch_tile = [&](std::size_t t0) {
      const std::size_t end = std::min(expand.size(), t0 + kWarpSize);
      for (std::size_t i = t0; i < end; ++i) {
        const float* r = sg.base.row(expand[i]).data();
        for (std::size_t d = 0; d < dim; d += 16) WKNNG_PREFETCH(r + d);
      }
    };

    std::size_t stale_hops = 0;
    while (!frontier.empty()) {
      const Neighbor cur = frontier.pop();
      if (cur.dist > best.worst()) break;
      if (params.visit_budget != 0 && visits >= params.visit_budget) {
        capped = true;
        break;
      }
      // The heap's new head is the likely next expansion: start its CSR row
      // toward the cache while this hop streams.
      if (!frontier.empty()) {
        WKNNG_PREFETCH(sg.neighbors.data() + sg.offsets[frontier.top().id]);
      }
      expand.clear();
      const auto row = sg.row(cur.id);
      for (const std::uint32_t nb : row) {
        if (slot.test_and_set(nb)) continue;
        expand.push_back(nb);
      }
      w.count_read(row.size() * sizeof(std::uint32_t));
      prefetch_tile(0);
      bool improved = false;
      for (std::size_t t0 = 0; t0 < expand.size(); t0 += kWarpSize) {
        prefetch_tile(t0 + kWarpSize);
        const std::size_t cnt =
            std::min<std::size_t>(kWarpSize, expand.size() - t0);
        Lanes<std::uint32_t> lane_ids{};
        Lanes<bool> active{};
        for (std::size_t l = 0; l < cnt; ++l) {
          lane_ids[l] = expand[t0 + l];
          active[l] = true;
        }
        const Lanes<float> d = simt::warp_l2_batch(
            w, query, lane_ids, active,
            [&](std::uint32_t p) { return sg.base.row(p); }, base_norms);
        for (std::size_t l = 0; l < cnt; ++l) {
          if (d[l] < best.worst()) {
            frontier.push({d[l], lane_ids[l]}, best.worst());
            if (!is_excluded(lane_ids[l])) {
              best.push(d[l], lane_ids[l]);
              improved = true;
            }
          }
        }
        visits += cnt;
      }
      if (params.patience != 0) {
        stale_hops = improved ? 0 : stale_hops + 1;
        if (stale_hops >= params.patience) break;
      }
    }

    auto found = best.take_sorted();
    if (found.size() > k_eff) found.resize(k_eff);
    // Back to the caller's id space. The remap can reorder equal-distance
    // ties, so re-establish the row invariant (sorted by (dist, id)).
    for (Neighbor& nb : found) nb.id = sg.new_to_old[nb.id];
    std::sort(found.begin(), found.end());
    auto out_row = out.results.row(qi);
    std::copy(found.begin(), found.end(), out_row.begin());
    out.visits[qi] = visits;
    out.capped[qi] = capped ? 1 : 0;
  });

  return out;
}

KnnGraph graph_search(ThreadPool& pool, const FloatMatrix& base,
                      const KnnGraph& graph, const FloatMatrix& queries,
                      const SearchParams& params, SearchStats* stats,
                      simt::StatsAccumulator* acc,
                      const kernels::Sq8View* sq8) {
  BatchSearchResult batch = graph_search_batch(pool, base, graph, queries, {},
                                               params, nullptr, acc, sq8);
  if (stats != nullptr) {
    // Sequential index-order merge: the total is identical for every pool
    // size and schedule, unlike a racing shared counter.
    for (const std::uint64_t v : batch.visits) stats->points_visited += v;
    stats->queries += queries.rows();
  }
  return std::move(batch.results);
}

}  // namespace wknng::core
