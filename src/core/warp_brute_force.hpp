#pragma once

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/params.hpp"
#include "simt/stats.hpp"

namespace wknng::core {

/// Exact all-pairs K-NN graph on the SIMT substrate: the whole dataset is
/// processed as a 2-D grid of 32x32 tile pairs, one warp per tile pair, each
/// computing its distance block with scratch-staged coordinates (the tiled
/// strategy's kernel shape) and merging sorted runs into the global k-NN
/// sets. This is the substrate's equivalent of a GPU brute-force baseline
/// (what FAISS's GpuIndexFlat does), and doubles as an exact reference that
/// exercises the concurrent k-NN-set machinery at maximum contention —
/// every point's set is updated by ~n/32 different warps.
///
/// Cost is O(n^2 d / 32) per warp-step; use for baselines and tests, not
/// for large n.
KnnGraph warp_brute_force_knng(ThreadPool& pool, const FloatMatrix& points,
                               std::size_t k,
                               simt::StatsAccumulator* acc = nullptr,
                               std::size_t scratch_bytes = 48 * 1024);

}  // namespace wknng::core
