#include "core/warp_brute_force.hpp"

#include "common/error.hpp"
#include "core/knn_set.hpp"
#include "core/tiled_block.hpp"
#include "kernels/kernels.hpp"
#include "simt/launch.hpp"

namespace wknng::core {

KnnGraph warp_brute_force_knng(ThreadPool& pool, const FloatMatrix& points,
                               std::size_t k, simt::StatsAccumulator* acc,
                               std::size_t scratch_bytes) {
  const std::size_t n = points.rows();
  WKNNG_CHECK_MSG(k > 0 && k < n, "need 0 < k < n; k=" << k << " n=" << n);

  KnnSetArray sets(n, k);
  // Whole-dataset squared-norm cache for the tile micro-kernel's norm-trick
  // path (ignored by the strict scalar backend).
  std::vector<float> norms;
  if (!kernels::strict_mode()) norms = kernels::row_norms(points);
  const std::size_t num_tiles = (n + simt::kWarpSize - 1) / simt::kWarpSize;
  // Enumerate the upper-triangular tile-pair grid (including the diagonal):
  // warp w handles the pair with linear index w.
  const std::size_t num_pairs = num_tiles * (num_tiles + 1) / 2;

  simt::LaunchConfig config;
  config.scratch_bytes = scratch_bytes;
  config.grain = 4;
  config.trace_label = "warp_brute_force";
  simt::launch_warps(pool, num_pairs, config, acc, [&](simt::Warp& w) {
    // Unrank the linear index into (ta, tb) with ta <= tb: row-major over
    // the upper triangle.
    std::size_t idx = w.id();
    std::size_t ta = 0;
    std::size_t row_len = num_tiles;
    while (idx >= row_len) {
      idx -= row_len;
      ++ta;
      --row_len;
    }
    const std::size_t tb = ta + idx;

    const std::size_t a0 = ta * simt::kWarpSize;
    const std::size_t b0 = tb * simt::kWarpSize;
    const std::size_t na = std::min<std::size_t>(simt::kWarpSize, n - a0);
    const std::size_t nb = std::min<std::size_t>(simt::kWarpSize, n - b0);

    const detail::TileBuffers buf =
        detail::alloc_tile_buffers(w, points.cols(), k);
    detail::process_tile_pair(
        w, points, [&](std::size_t i) { return a0 + i; }, na,
        [&](std::size_t j) { return b0 + j; }, nb,
        /*diagonal=*/ta == tb, sets, buf, norms);
  });

  return sets.extract(pool);
}

}  // namespace wknng::core
