#pragma once

/// Umbrella header: the complete public API of the w-KNNG library.
///
/// Typical flow:
///   wknng::ThreadPool pool;
///   wknng::FloatMatrix pts = wknng::data::read_fvecs("base.fvecs");
///   wknng::core::BuildParams params;          // k, strategy, trees, ...
///   auto result = wknng::core::build_knng(pool, pts, params);
///   wknng::data::write_knng("base.knng", result.graph);
///
/// Subsystem map (see DESIGN.md):
///   common/     containers, pool, RNG, KnnGraph
///   simt/       the warp-execution substrate the kernels run on
///   data/       synthetic sets, .fvecs/.ivecs and graph I/O, transforms
///   exact/      brute force + recall (ground truth)
///   core/       the w-KNNG builder, strategies, metrics, incremental mode
///   ivf/        IVF-Flat baseline (FAISS surrogate)
///   nndescent/  NN-Descent baseline
///   obs/        span tracing, metrics registry, Prometheus/JSON exporters
///   opt/        serve-graph optimization: occlusion pruning, cache-blocked
///               CSR relayout, learned per-query visit budgets
///   serve/      batched, deadline-aware query serving over a built graph
///   shard/      fault-tolerant sharded build orchestration + query routing
///   dynamic/    mutable K-NNG: inserts, tombstone deletes, WAL, repair

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "common/topk.hpp"
#include "core/builder.hpp"
#include "core/graph_metrics.hpp"
#include "core/graph_ops.hpp"
#include "core/graph_search.hpp"
#include "core/incremental.hpp"
#include "core/params.hpp"
#include "core/warp_brute_force.hpp"
#include "data/graph_io.hpp"
#include "data/io.hpp"
#include "data/synthetic.hpp"
#include "data/transforms.hpp"
#include "data/wal.hpp"
#include "dynamic/dynamic_knng.hpp"
#include "dynamic/metrics.hpp"
#include "exact/brute_force.hpp"
#include "exact/recall.hpp"
#include "ivf/ivf_flat.hpp"
#include "ivf/ivf_sq8.hpp"
#include "nndescent/nn_descent.hpp"
#include "obs/audit.hpp"
#include "obs/build_info.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/params.hpp"
#include "obs/registry.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "opt/budget.hpp"
#include "opt/metrics.hpp"
#include "opt/optimize.hpp"
#include "opt/serving_graph.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/metrics.hpp"
#include "serve/snapshot.hpp"
#include "shard/manager.hpp"
#include "shard/partition.hpp"
#include "shard/report.hpp"
#include "shard/router.hpp"
#include "shard/stitch.hpp"
#include "shard/worker_loss.hpp"
#include "tuner/tuner.hpp"
