#include "data/graph_io.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/error.hpp"

// rename() lives in <cstdio>; no POSIX-only calls needed for the atomic
// checkpoint write.

namespace wknng::data {

namespace {

constexpr char kMagic[8] = {'W', 'K', 'N', 'N', 'G', '1', '\0', '\0'};
constexpr char kCkptMagic[8] = {'W', 'K', 'N', 'N', 'G', 'C', 'P', '1'};
constexpr char kSq8Magic[8] = {'W', 'K', 'N', 'N', 'G', 'S', 'Q', '8'};
constexpr char kServingMagic[8] = {'W', 'K', 'N', 'N', 'G', 'O', 'P', '1'};
constexpr char kManifestMagic[] = "WKNNGSHARDS1";
constexpr std::uint32_t kSq8CodecVersion = 1;
constexpr std::uint32_t kServingCodecVersion = 1;

// WKNNGOP1 flag bits.
constexpr std::uint32_t kServingPruned = 1u << 0;
constexpr std::uint32_t kServingReordered = 1u << 1;
constexpr std::uint32_t kServingHasExclude = 1u << 2;
constexpr std::uint32_t kServingHasNorms = 1u << 3;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

[[noreturn]] void throw_io(const std::string& path, const std::string& what) {
  throw IoError(path + ": " + what);
}

/// Reads exactly `count` items of `size` bytes or throws a typed IoError
/// naming what was being read — the single short-read gate every reader in
/// this file goes through.
void read_exact(std::FILE* f, const std::string& path, void* dst,
                std::size_t size, std::size_t count, const char* what) {
  if (std::fread(dst, size, count, f) != count) {
    throw_io(path, std::string("truncated ") + what);
  }
}

/// Total file size in bytes (position is left at `restore_to`).
long file_bytes(std::FILE* f, const std::string& path, long restore_to) {
  if (std::fseek(f, 0, SEEK_END) != 0) throw_io(path, "seek failed");
  const long bytes = std::ftell(f);
  if (bytes < 0) throw_io(path, "tell failed");
  if (std::fseek(f, restore_to, SEEK_SET) != 0) throw_io(path, "seek failed");
  return bytes;
}

/// Byte count of one serialized SQ8 payload (header + codebook + codes),
/// computed wide so a garbage header cannot overflow the expectation.
__uint128_t sq8_payload_bytes(std::uint64_t n, std::uint64_t dim) {
  return __uint128_t(sizeof(kSq8Magic)) + sizeof(std::uint32_t) +
         2 * sizeof(std::uint64_t) +
         __uint128_t(2) * dim * sizeof(float) + __uint128_t(n) * dim;
}

void write_sq8_payload(std::FILE* f, const std::string& path,
                       const kernels::Sq8Matrix& m) {
  const std::uint64_t n = m.rows();
  const std::uint64_t dim = m.dim();
  WKNNG_CHECK_MSG(m.codebook.dim() == dim,
                  path << ": sq8 codebook dim " << m.codebook.dim()
                       << " does not match code dim " << dim);
  WKNNG_CHECK(std::fwrite(kSq8Magic, 1, sizeof(kSq8Magic), f) ==
              sizeof(kSq8Magic));
  WKNNG_CHECK(std::fwrite(&kSq8CodecVersion, sizeof(kSq8CodecVersion), 1, f) ==
              1);
  WKNNG_CHECK(std::fwrite(&n, sizeof(n), 1, f) == 1);
  WKNNG_CHECK(std::fwrite(&dim, sizeof(dim), 1, f) == 1);
  WKNNG_CHECK(std::fwrite(m.codebook.bias.data(), sizeof(float), dim, f) ==
              dim);
  WKNNG_CHECK(std::fwrite(m.codebook.scale.data(), sizeof(float), dim, f) ==
              dim);
  for (std::size_t i = 0; i < n; ++i) {
    WKNNG_CHECK(std::fwrite(m.row(i).data(), 1, dim, f) == dim);
  }
}

/// Reads one SQ8 payload starting at the current file position. `remaining`
/// is the byte count from the current position to EOF: the header's (n, dim)
/// is validated against it *before* any code storage is allocated, so a
/// garbage trailer can neither trigger a huge allocation nor a read past the
/// buffer.
kernels::Sq8Matrix read_sq8_payload(std::FILE* f, const std::string& path,
                                    std::uint64_t remaining) {
  if (remaining < sizeof(kSq8Magic) + sizeof(std::uint32_t) +
                      2 * sizeof(std::uint64_t)) {
    throw_io(path, "truncated sq8 header");
  }
  char magic[8] = {};
  read_exact(f, path, magic, 1, sizeof(magic), "sq8 header");
  if (std::memcmp(magic, kSq8Magic, sizeof(kSq8Magic)) != 0) {
    throw_io(path, "not a WKNNGSQ8 payload");
  }
  std::uint32_t version = 0;
  read_exact(f, path, &version, sizeof(version), 1, "sq8 header");
  if (version != kSq8CodecVersion) {
    std::ostringstream os;
    os << "unsupported sq8 codec version " << version
       << " (this build reads version " << kSq8CodecVersion << ")";
    throw_io(path, os.str());
  }
  std::uint64_t n = 0, dim = 0;
  read_exact(f, path, &n, sizeof(n), 1, "sq8 header");
  read_exact(f, path, &dim, sizeof(dim), 1, "sq8 header");
  if (n == 0 || dim == 0 || n >= (1ULL << 32) || dim >= (1ULL << 32)) {
    std::ostringstream os;
    os << "implausible sq8 header n=" << n << " dim=" << dim;
    throw_io(path, os.str());
  }
  if (sq8_payload_bytes(n, dim) > __uint128_t(remaining)) {
    std::ostringstream os;
    os << "sq8 payload truncated: header says n=" << n << " dim=" << dim
       << " but only " << remaining << " bytes remain";
    throw_io(path, os.str());
  }
  kernels::Sq8Matrix m;
  m.codebook.bias.resize(dim);
  m.codebook.scale.resize(dim);
  read_exact(f, path, m.codebook.bias.data(), sizeof(float), dim,
             "sq8 codebook bias");
  read_exact(f, path, m.codebook.scale.data(), sizeof(float), dim,
             "sq8 codebook scale");
  m.codes.resize(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    read_exact(f, path, m.codes.row(i).data(), 1, dim, "sq8 code rows");
  }
  return m;
}

/// Byte count of one serialized WKNNGOP1 payload, computed wide so a garbage
/// header cannot overflow the expectation.
__uint128_t serving_payload_bytes(std::uint64_t n, std::uint64_t dim,
                                  std::uint64_t edges, bool has_norms,
                                  bool has_exclude) {
  __uint128_t bytes = __uint128_t(sizeof(kServingMagic)) +
                      2 * sizeof(std::uint32_t) + 6 * sizeof(std::uint64_t) +
                      __uint128_t(n + 1) * sizeof(std::uint32_t) +
                      __uint128_t(edges) * sizeof(std::uint32_t) +
                      __uint128_t(n) * sizeof(std::uint32_t) +
                      __uint128_t(n) * dim * sizeof(float);
  if (has_norms) bytes += __uint128_t(n) * sizeof(float);
  if (has_exclude) bytes += __uint128_t(n);
  return bytes;
}

void write_serving_payload(std::FILE* f, const std::string& path,
                           const opt::ServingGraph& sg) {
  sg.check_valid();
  WKNNG_CHECK_MSG(sg.n() > 0 && sg.dim > 0,
                  path << ": refusing to serialize an empty serving layout");
  const std::uint64_t n = sg.n();
  const std::uint64_t dim = sg.dim;
  WKNNG_CHECK(std::fwrite(kServingMagic, 1, sizeof(kServingMagic), f) ==
              sizeof(kServingMagic));
  WKNNG_CHECK(std::fwrite(&kServingCodecVersion, sizeof(kServingCodecVersion),
                          1, f) == 1);
  std::uint32_t flags = 0;
  if (sg.pruned) flags |= kServingPruned;
  if (sg.reordered) flags |= kServingReordered;
  if (!sg.exclude.empty()) flags |= kServingHasExclude;
  if (!sg.norms.empty()) flags |= kServingHasNorms;
  WKNNG_CHECK(std::fwrite(&flags, sizeof(flags), 1, f) == 1);
  const std::uint64_t source_k = sg.source_k;
  const std::uint64_t min_degree = sg.min_degree;
  WKNNG_CHECK(std::fwrite(&dim, sizeof(dim), 1, f) == 1);
  WKNNG_CHECK(std::fwrite(&n, sizeof(n), 1, f) == 1);
  WKNNG_CHECK(std::fwrite(&source_k, sizeof(source_k), 1, f) == 1);
  WKNNG_CHECK(std::fwrite(&sg.source_version, sizeof(sg.source_version), 1,
                          f) == 1);
  WKNNG_CHECK(std::fwrite(&min_degree, sizeof(min_degree), 1, f) == 1);
  WKNNG_CHECK(std::fwrite(&sg.edges_before, sizeof(sg.edges_before), 1, f) ==
              1);
  WKNNG_CHECK(std::fwrite(sg.offsets.data(), sizeof(std::uint32_t), n + 1,
                          f) == n + 1);
  if (!sg.neighbors.empty()) {
    WKNNG_CHECK(std::fwrite(sg.neighbors.data(), sizeof(std::uint32_t),
                            sg.neighbors.size(), f) == sg.neighbors.size());
  }
  WKNNG_CHECK(std::fwrite(sg.new_to_old.data(), sizeof(std::uint32_t), n, f) ==
              n);
  for (std::size_t i = 0; i < n; ++i) {
    WKNNG_CHECK(std::fwrite(sg.base.row(i).data(), sizeof(float), dim, f) ==
                dim);
  }
  if (!sg.norms.empty()) {
    WKNNG_CHECK(std::fwrite(sg.norms.data(), sizeof(float), n, f) == n);
  }
  if (!sg.exclude.empty()) {
    WKNNG_CHECK(std::fwrite(sg.exclude.data(), 1, n, f) == n);
  }
}

/// Reads one WKNNGOP1 payload starting at the current position. `remaining`
/// is the byte count to EOF; the header is validated against it before any
/// header-sized allocation, and the payload must account for *exactly*
/// `remaining` bytes — this doubles as the trailer-is-everything check for
/// combined graph+layout files.
opt::ServingGraph read_serving_payload(std::FILE* f, const std::string& path,
                                       std::uint64_t remaining) {
  if (remaining < sizeof(kServingMagic) + 2 * sizeof(std::uint32_t) +
                      6 * sizeof(std::uint64_t)) {
    throw_io(path, "truncated serving-layout header");
  }
  char magic[8] = {};
  read_exact(f, path, magic, 1, sizeof(magic), "serving-layout header");
  if (std::memcmp(magic, kServingMagic, sizeof(kServingMagic)) != 0) {
    throw_io(path, "not a WKNNGOP1 payload");
  }
  std::uint32_t version = 0, flags = 0;
  read_exact(f, path, &version, sizeof(version), 1, "serving-layout header");
  if (version != kServingCodecVersion) {
    std::ostringstream os;
    os << "unsupported serving-layout codec version " << version
       << " (this build reads version " << kServingCodecVersion << ")";
    throw_io(path, os.str());
  }
  read_exact(f, path, &flags, sizeof(flags), 1, "serving-layout header");
  std::uint64_t dim = 0, n = 0, source_k = 0, source_version = 0,
                min_degree = 0, edges_before = 0;
  read_exact(f, path, &dim, sizeof(dim), 1, "serving-layout header");
  read_exact(f, path, &n, sizeof(n), 1, "serving-layout header");
  read_exact(f, path, &source_k, sizeof(source_k), 1, "serving-layout header");
  read_exact(f, path, &source_version, sizeof(source_version), 1,
             "serving-layout header");
  read_exact(f, path, &min_degree, sizeof(min_degree), 1,
             "serving-layout header");
  read_exact(f, path, &edges_before, sizeof(edges_before), 1,
             "serving-layout header");
  if (n == 0 || dim == 0 || n >= (1ULL << 32) || dim >= (1ULL << 32)) {
    std::ostringstream os;
    os << "implausible serving-layout header n=" << n << " dim=" << dim;
    throw_io(path, os.str());
  }

  opt::ServingGraph sg;
  sg.dim = dim;
  sg.source_k = source_k;
  sg.source_version = source_version;
  sg.min_degree = min_degree;
  sg.edges_before = edges_before;
  sg.pruned = (flags & kServingPruned) != 0;
  sg.reordered = (flags & kServingReordered) != 0;

  sg.offsets.resize(n + 1);
  read_exact(f, path, sg.offsets.data(), sizeof(std::uint32_t), n + 1,
             "serving-layout offsets");
  const std::uint64_t edges = sg.offsets.back();
  // Only now is the edge count known; re-validate the full payload size
  // before the edge-sized allocation.
  if (serving_payload_bytes(n, dim, edges, (flags & kServingHasNorms) != 0,
                            (flags & kServingHasExclude) != 0) !=
      __uint128_t(remaining)) {
    std::ostringstream os;
    os << "serving-layout payload size does not match header (n=" << n
       << ", dim=" << dim << ", edges=" << edges << ", " << remaining
       << " bytes)";
    throw_io(path, os.str());
  }
  sg.edges_after = edges;
  sg.neighbors.resize(edges);
  if (edges != 0) {
    read_exact(f, path, sg.neighbors.data(), sizeof(std::uint32_t), edges,
               "serving-layout edges");
  }
  sg.new_to_old.resize(n);
  read_exact(f, path, sg.new_to_old.data(), sizeof(std::uint32_t), n,
             "serving-layout permutation");
  sg.base = FloatMatrix(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    read_exact(f, path, sg.base.row(i).data(), sizeof(float), dim,
               "serving-layout base rows");
  }
  if ((flags & kServingHasNorms) != 0) {
    sg.norms.resize(n);
    read_exact(f, path, sg.norms.data(), sizeof(float), n,
               "serving-layout norm cache");
  }
  if ((flags & kServingHasExclude) != 0) {
    sg.exclude.resize(n);
    read_exact(f, path, sg.exclude.data(), 1, n,
               "serving-layout exclusion mask");
  }

  // Invert the permutation; check_valid proves it bijective (a duplicate in
  // new_to_old leaves some old_to_new slot inconsistent and is caught there).
  sg.old_to_new.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t old_id = sg.new_to_old[i];
    if (old_id >= n) throw_io(path, "serving-layout permutation out of range");
    sg.old_to_new[old_id] = static_cast<std::uint32_t>(i);
  }
  try {
    sg.check_valid();
  } catch (const Error& e) {
    throw_io(path, std::string("serving layout invalid: ") + e.what());
  }
  return sg;
}

/// Shared body of read_knng / read_knng_serving: reads the WKNNG1 payload,
/// then parses whatever follows as an exactly-sized WKNNGOP1 trailer.
/// `serving` non-null ⇒ the trailer is required and returned through it;
/// null ⇒ a trailer is tolerated (still fully validated) and discarded.
KnnGraph read_knng_file(const std::string& path, opt::ServingGraph* serving) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) throw_io(path, "cannot open");

  char magic[8] = {};
  read_exact(f.get(), path, magic, 1, sizeof(magic), "header");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw_io(path, "not a WKNNG1 file");
  }

  std::uint64_t n = 0, k = 0;
  read_exact(f.get(), path, &n, sizeof(n), 1, "header");
  read_exact(f.get(), path, &k, sizeof(k), 1, "header");
  if (n == 0 || k == 0 || n >= (1ULL << 32) || k >= (1ULL << 32)) {
    std::ostringstream os;
    os << "implausible header n=" << n << " k=" << k;
    throw_io(path, os.str());
  }

  // Validate payload size before allocating anything header-sized. The
  // expectation is computed wide so a hostile header cannot overflow it into
  // an accidental match. A longer file must carry an exactly-sized
  // serving-layout trailer; any other trailing bytes are corruption.
  const long header = 8 + 2 * static_cast<long>(sizeof(std::uint64_t));
  const long bytes = file_bytes(f.get(), path, header);
  const __uint128_t expect =
      __uint128_t(header) + __uint128_t(n) * k * sizeof(Neighbor);
  if (__uint128_t(bytes) < expect) {
    std::ostringstream os;
    os << "size " << bytes << " does not match header (n=" << n
       << ", k=" << k << ")";
    throw_io(path, os.str());
  }
  const std::uint64_t trailer_bytes =
      static_cast<std::uint64_t>(__uint128_t(bytes) - expect);

  KnnGraph g(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = g.row(i);
    read_exact(f.get(), path, row.data(), sizeof(Neighbor), k, "graph rows");
  }
  if (!g.check_invariants()) throw_io(path, "graph invariants violated");

  if (trailer_bytes != 0) {
    opt::ServingGraph sg = read_serving_payload(f.get(), path, trailer_bytes);
    if (serving != nullptr) *serving = std::move(sg);
  } else if (serving != nullptr) {
    throw_io(path, "no serving-layout trailer (plain WKNNG1 file)");
  }
  return g;
}

}  // namespace

void write_knng(const std::string& path, const KnnGraph& g) {
  File f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) throw_io(path, "cannot open for writing");

  WKNNG_CHECK(std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) == sizeof(kMagic));
  const std::uint64_t n = g.num_points();
  const std::uint64_t k = g.k();
  WKNNG_CHECK(std::fwrite(&n, sizeof(n), 1, f.get()) == 1);
  WKNNG_CHECK(std::fwrite(&k, sizeof(k), 1, f.get()) == 1);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = g.row(i);
    static_assert(sizeof(Neighbor) == 8);
    WKNNG_CHECK(std::fwrite(row.data(), sizeof(Neighbor), k, f.get()) == k);
  }
}

KnnGraph read_knng(const std::string& path) {
  return read_knng_file(path, nullptr);
}

void write_serving(const std::string& path, const opt::ServingGraph& sg) {
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    if (f == nullptr) throw_io(tmp, "cannot open for writing");
    write_serving_payload(f.get(), tmp, sg);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_io(tmp, "cannot rename to " + path);
  }
}

opt::ServingGraph read_serving(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) throw_io(path, "cannot open");
  const long bytes = file_bytes(f.get(), path, 0);
  return read_serving_payload(f.get(), path,
                              static_cast<std::uint64_t>(bytes));
}

void write_knng_serving(const std::string& path, const KnnGraph& g,
                        const opt::ServingGraph& sg) {
  WKNNG_CHECK_MSG(sg.n() == g.num_points(),
                  path << ": serving layout has " << sg.n() << " rows, graph "
                       << g.num_points());
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    if (f == nullptr) throw_io(tmp, "cannot open for writing");
    WKNNG_CHECK(std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) ==
                sizeof(kMagic));
    const std::uint64_t n = g.num_points();
    const std::uint64_t k = g.k();
    WKNNG_CHECK(std::fwrite(&n, sizeof(n), 1, f.get()) == 1);
    WKNNG_CHECK(std::fwrite(&k, sizeof(k), 1, f.get()) == 1);
    for (std::size_t i = 0; i < n; ++i) {
      WKNNG_CHECK(std::fwrite(g.row(i).data(), sizeof(Neighbor), k, f.get()) ==
                  k);
    }
    write_serving_payload(f.get(), tmp, sg);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_io(tmp, "cannot rename to " + path);
  }
}

std::pair<KnnGraph, opt::ServingGraph> read_knng_serving(
    const std::string& path) {
  opt::ServingGraph sg;
  KnnGraph g = read_knng_file(path, &sg);
  return {std::move(g), std::move(sg)};
}

void write_checkpoint(const std::string& path, const BuildCheckpoint& c) {
  WKNNG_CHECK_MSG(c.shape_ok(), "checkpoint shape mismatch: " << c.sets.size()
                                    << " words for n=" << c.n
                                    << " k=" << c.k);
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    if (f == nullptr) throw_io(tmp, "cannot open for writing");

    WKNNG_CHECK(std::fwrite(kCkptMagic, 1, sizeof(kCkptMagic), f.get()) ==
                sizeof(kCkptMagic));
    WKNNG_CHECK(std::fwrite(&c.signature, sizeof(c.signature), 1, f.get()) == 1);
    WKNNG_CHECK(std::fwrite(&c.n, sizeof(c.n), 1, f.get()) == 1);
    WKNNG_CHECK(std::fwrite(&c.k, sizeof(c.k), 1, f.get()) == 1);
    WKNNG_CHECK(std::fwrite(&c.rounds_done, sizeof(c.rounds_done), 1, f.get()) ==
                1);
    WKNNG_CHECK(std::fwrite(&c.effective_strategy, sizeof(c.effective_strategy),
                            1, f.get()) == 1);
    const std::uint64_t nq = c.quarantined.size();
    WKNNG_CHECK(std::fwrite(&nq, sizeof(nq), 1, f.get()) == 1);
    if (nq != 0) {
      WKNNG_CHECK(std::fwrite(c.quarantined.data(), sizeof(std::uint32_t), nq,
                              f.get()) == nq);
    }
    WKNNG_CHECK(std::fwrite(c.sets.data(), sizeof(std::uint64_t), c.sets.size(),
                            f.get()) == c.sets.size());
    if (c.sq8 != nullptr) {
      WKNNG_CHECK_MSG(c.sq8->rows() == c.n,
                      "checkpoint sq8 codes have " << c.sq8->rows()
                          << " rows for n=" << c.n);
      write_sq8_payload(f.get(), tmp, *c.sq8);
    }
  }
  // Publish atomically so an interrupted build never leaves a torn file at
  // the checkpoint path.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_io(tmp, "cannot rename to " + path);
  }
}

BuildCheckpoint read_checkpoint(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) throw_io(path, "cannot open");

  char magic[8] = {};
  read_exact(f.get(), path, magic, 1, sizeof(magic), "checkpoint header");
  if (std::memcmp(magic, kCkptMagic, sizeof(kCkptMagic)) != 0) {
    throw_io(path, "not a WKNNGCP1 checkpoint");
  }

  BuildCheckpoint c;
  read_exact(f.get(), path, &c.signature, sizeof(c.signature), 1,
             "checkpoint header");
  read_exact(f.get(), path, &c.n, sizeof(c.n), 1, "checkpoint header");
  read_exact(f.get(), path, &c.k, sizeof(c.k), 1, "checkpoint header");
  read_exact(f.get(), path, &c.rounds_done, sizeof(c.rounds_done), 1,
             "checkpoint header");
  read_exact(f.get(), path, &c.effective_strategy,
             sizeof(c.effective_strategy), 1, "checkpoint header");
  std::uint64_t nq = 0;
  read_exact(f.get(), path, &nq, sizeof(nq), 1, "checkpoint header");
  if (c.n == 0 || c.k == 0 || c.n >= (1ULL << 32) || c.k >= (1ULL << 32) ||
      nq > c.n) {
    std::ostringstream os;
    os << "implausible checkpoint header n=" << c.n << " k=" << c.k
       << " quarantined=" << nq;
    throw_io(path, os.str());
  }

  // Validate payload size before allocating anything header-sized; the
  // expectation is computed wide so a hostile header cannot overflow it.
  const long header = static_cast<long>(
      sizeof(kCkptMagic) + 3 * sizeof(std::uint64_t) +
      2 * sizeof(std::uint32_t) + sizeof(std::uint64_t));
  const __uint128_t payload = __uint128_t(nq) * sizeof(std::uint32_t) +
                              __uint128_t(c.n) * c.k * sizeof(std::uint64_t);
  const long bytes = file_bytes(f.get(), path, header);
  // Two valid sizes: the classic layout, or classic + the sq8 code trailer a
  // compression=sq8 build appends. A *shorter* file is truncated; a longer
  // one must parse as a complete, exactly-sized sq8 trailer — any other
  // trailing bytes are corruption, rejected before they are interpreted.
  if (__uint128_t(bytes) < __uint128_t(header) + payload) {
    std::ostringstream os;
    os << "size " << bytes << " does not match checkpoint header (n=" << c.n
       << ", k=" << c.k << ", quarantined=" << nq << ")";
    throw_io(path, os.str());
  }
  const std::uint64_t trailer_bytes = static_cast<std::uint64_t>(
      __uint128_t(bytes) - __uint128_t(header) - payload);

  c.quarantined.resize(nq);
  if (nq != 0) {
    read_exact(f.get(), path, c.quarantined.data(), sizeof(std::uint32_t), nq,
               "checkpoint quarantine list");
  }
  c.sets.resize(c.n * c.k);
  read_exact(f.get(), path, c.sets.data(), sizeof(std::uint64_t),
             c.sets.size(), "checkpoint k-NN sets");
  for (std::size_t i = 1; i < c.quarantined.size(); ++i) {
    if (!(c.quarantined[i - 1] < c.quarantined[i])) {
      throw CheckpointMismatchError(path +
                                    ": quarantine list not sorted/unique");
    }
  }
  if (trailer_bytes != 0) {
    kernels::Sq8Matrix m = read_sq8_payload(f.get(), path, trailer_bytes);
    if (sq8_payload_bytes(m.rows(), m.dim()) != __uint128_t(trailer_bytes)) {
      std::ostringstream os;
      os << "trailing " << trailer_bytes
         << " bytes do not match the sq8 trailer header (n=" << m.rows()
         << ", dim=" << m.dim() << ")";
      throw_io(path, os.str());
    }
    if (m.rows() != c.n) {
      std::ostringstream os;
      os << path << ": sq8 trailer has " << m.rows() << " rows for n=" << c.n;
      throw CheckpointMismatchError(os.str());
    }
    c.sq8 = std::make_shared<kernels::Sq8Matrix>(std::move(m));
  }
  return c;
}

void write_sq8(const std::string& path, const kernels::Sq8Matrix& m) {
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    if (f == nullptr) throw_io(tmp, "cannot open for writing");
    write_sq8_payload(f.get(), tmp, m);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_io(tmp, "cannot rename to " + path);
  }
}

kernels::Sq8Matrix read_sq8(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) throw_io(path, "cannot open");
  const long bytes = file_bytes(f.get(), path, 0);
  kernels::Sq8Matrix m =
      read_sq8_payload(f.get(), path, static_cast<std::uint64_t>(bytes));
  if (sq8_payload_bytes(m.rows(), m.dim()) != __uint128_t(bytes)) {
    std::ostringstream os;
    os << "size " << bytes << " does not match sq8 header (n=" << m.rows()
       << ", dim=" << m.dim() << ")";
    throw_io(path, os.str());
  }
  return m;
}

// --- Sharded-build artifacts ------------------------------------------------

std::string shard_artifact_path(const std::string& prefix, std::size_t shard,
                                const std::string& ext) {
  std::ostringstream os;
  os << prefix << ".shard" << shard << "." << ext;
  return os.str();
}

void write_shard_manifest(const std::string& path, const ShardManifest& m) {
  WKNNG_CHECK_MSG(m.artifacts.size() == m.num_shards,
                  path << ": manifest lists " << m.artifacts.size()
                       << " artifacts for " << m.num_shards << " shards");
  WKNNG_CHECK_MSG(m.partitioner == "random" || m.partitioner == "kmeans",
                  path << ": unknown partitioner '" << m.partitioner << "'");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw_io(tmp, "cannot open for writing");
    out << kManifestMagic << "\n";
    out << "n " << m.n << "\n";
    out << "dim " << m.dim << "\n";
    out << "k " << m.k << "\n";
    out << "shards " << m.num_shards << "\n";
    out << "partitioner " << m.partitioner << "\n";
    out << "seed " << m.seed << "\n";
    out << "hash " << m.partition_hash << "\n";
    for (std::size_t s = 0; s < m.artifacts.size(); ++s) {
      WKNNG_CHECK_MSG(!m.artifacts[s].empty() &&
                          m.artifacts[s].find_first_of(" \n\r") ==
                              std::string::npos,
                      path << ": artifact name for shard " << s
                           << " is empty or contains whitespace");
      out << "artifact " << s << " " << m.artifacts[s] << "\n";
    }
    out.flush();
    if (!out) throw_io(tmp, "write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_io(tmp, "cannot rename to " + path);
  }
}

ShardManifest read_shard_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw_io(path, "cannot open");
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    throw_io(path, "not a WKNNGSHARDS1 manifest");
  }

  ShardManifest m;
  const auto parse_u64 = [&](const std::string& text,
                             const char* what) -> std::uint64_t {
    std::uint64_t v = 0;
    std::istringstream is(text);
    if (!(is >> v) || !(is >> std::ws).eof()) {
      throw_io(path, std::string("malformed ") + what + " value '" + text +
                         "'");
    }
    return v;
  };

  // Fixed header fields, in order; a missing, reordered, or duplicated field
  // is corruption.
  const char* fields[] = {"n", "dim", "k", "shards", "partitioner", "seed",
                          "hash"};
  for (const char* field : fields) {
    if (!std::getline(in, line)) {
      throw_io(path, std::string("truncated manifest: missing ") + field);
    }
    std::istringstream is(line);
    std::string key, value;
    if (!(is >> key >> value) || key != field || !(is >> std::ws).eof()) {
      throw_io(path, std::string("malformed manifest line '") + line +
                         "' (expected '" + field + " <value>')");
    }
    if (std::string(field) == "n") m.n = parse_u64(value, field);
    else if (std::string(field) == "dim") m.dim = parse_u64(value, field);
    else if (std::string(field) == "k") m.k = parse_u64(value, field);
    else if (std::string(field) == "shards")
      m.num_shards = parse_u64(value, field);
    else if (std::string(field) == "partitioner") m.partitioner = value;
    else if (std::string(field) == "seed") m.seed = parse_u64(value, field);
    else m.partition_hash = parse_u64(value, field);
  }
  if (m.partitioner != "random" && m.partitioner != "kmeans") {
    throw_io(path, "unknown partitioner '" + m.partitioner + "'");
  }
  if (m.n == 0 || m.k == 0 || m.num_shards == 0 ||
      m.num_shards >= (1ULL << 20) || m.num_shards > m.n) {
    std::ostringstream os;
    os << "implausible manifest header n=" << m.n << " k=" << m.k
       << " shards=" << m.num_shards;
    throw_io(path, os.str());
  }

  m.artifacts.resize(m.num_shards);
  for (std::uint64_t s = 0; s < m.num_shards; ++s) {
    if (!std::getline(in, line)) {
      std::ostringstream os;
      os << "truncated manifest: missing artifact line for shard " << s;
      throw_io(path, os.str());
    }
    std::istringstream is(line);
    std::string key, index, name;
    if (!(is >> key >> index >> name) || key != "artifact" ||
        !(is >> std::ws).eof() || parse_u64(index, "artifact index") != s) {
      throw_io(path, "malformed artifact line '" + line + "'");
    }
    m.artifacts[s] = name;
  }
  // Anything after the last artifact line is trailing garbage.
  while (std::getline(in, line)) {
    if (!line.empty()) throw_io(path, "trailing garbage after manifest");
  }
  return m;
}

}  // namespace wknng::data
