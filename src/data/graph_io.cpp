#include "data/graph_io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/error.hpp"

namespace wknng::data {

namespace {

constexpr char kMagic[8] = {'W', 'K', 'N', 'N', 'G', '1', '\0', '\0'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

void write_knng(const std::string& path, const KnnGraph& g) {
  File f(std::fopen(path.c_str(), "wb"));
  WKNNG_CHECK_MSG(f != nullptr, "cannot open " << path << " for writing");

  WKNNG_CHECK(std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) == sizeof(kMagic));
  const std::uint64_t n = g.num_points();
  const std::uint64_t k = g.k();
  WKNNG_CHECK(std::fwrite(&n, sizeof(n), 1, f.get()) == 1);
  WKNNG_CHECK(std::fwrite(&k, sizeof(k), 1, f.get()) == 1);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = g.row(i);
    static_assert(sizeof(Neighbor) == 8);
    WKNNG_CHECK(std::fwrite(row.data(), sizeof(Neighbor), k, f.get()) == k);
  }
}

KnnGraph read_knng(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  WKNNG_CHECK_MSG(f != nullptr, "cannot open " << path);

  char magic[8] = {};
  WKNNG_CHECK_MSG(std::fread(magic, 1, sizeof(magic), f.get()) == sizeof(magic),
                  path << ": truncated header");
  WKNNG_CHECK_MSG(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                  path << ": not a WKNNG1 file");

  std::uint64_t n = 0, k = 0;
  WKNNG_CHECK(std::fread(&n, sizeof(n), 1, f.get()) == 1);
  WKNNG_CHECK(std::fread(&k, sizeof(k), 1, f.get()) == 1);
  WKNNG_CHECK_MSG(k > 0 && n > 0 && k < (1ULL << 32) && n < (1ULL << 32),
                  path << ": implausible header n=" << n << " k=" << k);

  // Validate payload size before reading.
  const long header = 8 + 2 * static_cast<long>(sizeof(std::uint64_t));
  WKNNG_CHECK(std::fseek(f.get(), 0, SEEK_END) == 0);
  const long bytes = std::ftell(f.get());
  WKNNG_CHECK_MSG(
      bytes == header + static_cast<long>(n * k * sizeof(Neighbor)),
      path << ": size " << bytes << " does not match header (n=" << n
           << ", k=" << k << ")");
  WKNNG_CHECK(std::fseek(f.get(), header, SEEK_SET) == 0);

  KnnGraph g(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = g.row(i);
    WKNNG_CHECK(std::fread(row.data(), sizeof(Neighbor), k, f.get()) == k);
  }
  WKNNG_CHECK_MSG(g.check_invariants(), path << ": graph invariants violated");
  return g;
}

}  // namespace wknng::data
