#include "data/graph_io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/error.hpp"

// rename() lives in <cstdio>; no POSIX-only calls needed for the atomic
// checkpoint write.

namespace wknng::data {

namespace {

constexpr char kMagic[8] = {'W', 'K', 'N', 'N', 'G', '1', '\0', '\0'};
constexpr char kCkptMagic[8] = {'W', 'K', 'N', 'N', 'G', 'C', 'P', '1'};
constexpr char kSq8Magic[8] = {'W', 'K', 'N', 'N', 'G', 'S', 'Q', '8'};
constexpr std::uint32_t kSq8CodecVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

/// Byte count of one serialized SQ8 payload (header + codebook + codes).
long sq8_payload_bytes(std::uint64_t n, std::uint64_t dim) {
  return static_cast<long>(sizeof(kSq8Magic) + sizeof(std::uint32_t) +
                           2 * sizeof(std::uint64_t) +
                           2 * dim * sizeof(float) + n * dim);
}

void write_sq8_payload(std::FILE* f, const std::string& path,
                       const kernels::Sq8Matrix& m) {
  const std::uint64_t n = m.rows();
  const std::uint64_t dim = m.dim();
  WKNNG_CHECK_MSG(m.codebook.dim() == dim,
                  path << ": sq8 codebook dim " << m.codebook.dim()
                       << " does not match code dim " << dim);
  WKNNG_CHECK(std::fwrite(kSq8Magic, 1, sizeof(kSq8Magic), f) ==
              sizeof(kSq8Magic));
  WKNNG_CHECK(std::fwrite(&kSq8CodecVersion, sizeof(kSq8CodecVersion), 1, f) ==
              1);
  WKNNG_CHECK(std::fwrite(&n, sizeof(n), 1, f) == 1);
  WKNNG_CHECK(std::fwrite(&dim, sizeof(dim), 1, f) == 1);
  WKNNG_CHECK(std::fwrite(m.codebook.bias.data(), sizeof(float), dim, f) ==
              dim);
  WKNNG_CHECK(std::fwrite(m.codebook.scale.data(), sizeof(float), dim, f) ==
              dim);
  for (std::size_t i = 0; i < n; ++i) {
    WKNNG_CHECK(std::fwrite(m.row(i).data(), 1, dim, f) == dim);
  }
}

/// Reads one SQ8 payload starting at the current file position. The caller
/// has already validated that the file holds sq8_payload_bytes(n, dim) from
/// here (n and dim read out of the payload header by peeking, or implied by
/// an enclosing header).
kernels::Sq8Matrix read_sq8_payload(std::FILE* f, const std::string& path) {
  char magic[8] = {};
  WKNNG_CHECK_MSG(std::fread(magic, 1, sizeof(magic), f) == sizeof(magic),
                  path << ": truncated sq8 header");
  WKNNG_CHECK_MSG(std::memcmp(magic, kSq8Magic, sizeof(kSq8Magic)) == 0,
                  path << ": not a WKNNGSQ8 payload");
  std::uint32_t version = 0;
  WKNNG_CHECK_MSG(std::fread(&version, sizeof(version), 1, f) == 1,
                  path << ": truncated sq8 header");
  WKNNG_CHECK_MSG(version == kSq8CodecVersion,
                  path << ": unsupported sq8 codec version " << version
                       << " (this build reads version " << kSq8CodecVersion
                       << ")");
  std::uint64_t n = 0, dim = 0;
  WKNNG_CHECK_MSG(std::fread(&n, sizeof(n), 1, f) == 1,
                  path << ": truncated sq8 header");
  WKNNG_CHECK_MSG(std::fread(&dim, sizeof(dim), 1, f) == 1,
                  path << ": truncated sq8 header");
  WKNNG_CHECK_MSG(n > 0 && dim > 0 && n < (1ULL << 32) && dim < (1ULL << 32),
                  path << ": implausible sq8 header n=" << n
                       << " dim=" << dim);
  kernels::Sq8Matrix m;
  m.codebook.bias.resize(dim);
  m.codebook.scale.resize(dim);
  WKNNG_CHECK(std::fread(m.codebook.bias.data(), sizeof(float), dim, f) ==
              dim);
  WKNNG_CHECK(std::fread(m.codebook.scale.data(), sizeof(float), dim, f) ==
              dim);
  m.codes.resize(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    WKNNG_CHECK(std::fread(m.codes.row(i).data(), 1, dim, f) == dim);
  }
  return m;
}

}  // namespace

void write_knng(const std::string& path, const KnnGraph& g) {
  File f(std::fopen(path.c_str(), "wb"));
  WKNNG_CHECK_MSG(f != nullptr, "cannot open " << path << " for writing");

  WKNNG_CHECK(std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) == sizeof(kMagic));
  const std::uint64_t n = g.num_points();
  const std::uint64_t k = g.k();
  WKNNG_CHECK(std::fwrite(&n, sizeof(n), 1, f.get()) == 1);
  WKNNG_CHECK(std::fwrite(&k, sizeof(k), 1, f.get()) == 1);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = g.row(i);
    static_assert(sizeof(Neighbor) == 8);
    WKNNG_CHECK(std::fwrite(row.data(), sizeof(Neighbor), k, f.get()) == k);
  }
}

KnnGraph read_knng(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  WKNNG_CHECK_MSG(f != nullptr, "cannot open " << path);

  char magic[8] = {};
  WKNNG_CHECK_MSG(std::fread(magic, 1, sizeof(magic), f.get()) == sizeof(magic),
                  path << ": truncated header");
  WKNNG_CHECK_MSG(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                  path << ": not a WKNNG1 file");

  std::uint64_t n = 0, k = 0;
  WKNNG_CHECK(std::fread(&n, sizeof(n), 1, f.get()) == 1);
  WKNNG_CHECK(std::fread(&k, sizeof(k), 1, f.get()) == 1);
  WKNNG_CHECK_MSG(k > 0 && n > 0 && k < (1ULL << 32) && n < (1ULL << 32),
                  path << ": implausible header n=" << n << " k=" << k);

  // Validate payload size before reading.
  const long header = 8 + 2 * static_cast<long>(sizeof(std::uint64_t));
  WKNNG_CHECK(std::fseek(f.get(), 0, SEEK_END) == 0);
  const long bytes = std::ftell(f.get());
  WKNNG_CHECK_MSG(
      bytes == header + static_cast<long>(n * k * sizeof(Neighbor)),
      path << ": size " << bytes << " does not match header (n=" << n
           << ", k=" << k << ")");
  WKNNG_CHECK(std::fseek(f.get(), header, SEEK_SET) == 0);

  KnnGraph g(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = g.row(i);
    WKNNG_CHECK(std::fread(row.data(), sizeof(Neighbor), k, f.get()) == k);
  }
  WKNNG_CHECK_MSG(g.check_invariants(), path << ": graph invariants violated");
  return g;
}

void write_checkpoint(const std::string& path, const BuildCheckpoint& c) {
  WKNNG_CHECK_MSG(c.shape_ok(), "checkpoint shape mismatch: " << c.sets.size()
                                    << " words for n=" << c.n
                                    << " k=" << c.k);
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    WKNNG_CHECK_MSG(f != nullptr, "cannot open " << tmp << " for writing");

    WKNNG_CHECK(std::fwrite(kCkptMagic, 1, sizeof(kCkptMagic), f.get()) ==
                sizeof(kCkptMagic));
    WKNNG_CHECK(std::fwrite(&c.signature, sizeof(c.signature), 1, f.get()) == 1);
    WKNNG_CHECK(std::fwrite(&c.n, sizeof(c.n), 1, f.get()) == 1);
    WKNNG_CHECK(std::fwrite(&c.k, sizeof(c.k), 1, f.get()) == 1);
    WKNNG_CHECK(std::fwrite(&c.rounds_done, sizeof(c.rounds_done), 1, f.get()) ==
                1);
    WKNNG_CHECK(std::fwrite(&c.effective_strategy, sizeof(c.effective_strategy),
                            1, f.get()) == 1);
    const std::uint64_t nq = c.quarantined.size();
    WKNNG_CHECK(std::fwrite(&nq, sizeof(nq), 1, f.get()) == 1);
    if (nq != 0) {
      WKNNG_CHECK(std::fwrite(c.quarantined.data(), sizeof(std::uint32_t), nq,
                              f.get()) == nq);
    }
    WKNNG_CHECK(std::fwrite(c.sets.data(), sizeof(std::uint64_t), c.sets.size(),
                            f.get()) == c.sets.size());
    if (c.sq8 != nullptr) {
      WKNNG_CHECK_MSG(c.sq8->rows() == c.n,
                      "checkpoint sq8 codes have " << c.sq8->rows()
                          << " rows for n=" << c.n);
      write_sq8_payload(f.get(), tmp, *c.sq8);
    }
  }
  // Publish atomically so an interrupted build never leaves a torn file at
  // the checkpoint path.
  WKNNG_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                  "cannot rename " << tmp << " to " << path);
}

BuildCheckpoint read_checkpoint(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  WKNNG_CHECK_MSG(f != nullptr, "cannot open " << path);

  char magic[8] = {};
  WKNNG_CHECK_MSG(std::fread(magic, 1, sizeof(magic), f.get()) == sizeof(magic),
                  path << ": truncated checkpoint header");
  WKNNG_CHECK_MSG(std::memcmp(magic, kCkptMagic, sizeof(kCkptMagic)) == 0,
                  path << ": not a WKNNGCP1 checkpoint");

  BuildCheckpoint c;
  WKNNG_CHECK_MSG(std::fread(&c.signature, sizeof(c.signature), 1, f.get()) == 1,
                  path << ": truncated checkpoint header");
  WKNNG_CHECK_MSG(std::fread(&c.n, sizeof(c.n), 1, f.get()) == 1,
                  path << ": truncated checkpoint header");
  WKNNG_CHECK_MSG(std::fread(&c.k, sizeof(c.k), 1, f.get()) == 1,
                  path << ": truncated checkpoint header");
  WKNNG_CHECK_MSG(
      std::fread(&c.rounds_done, sizeof(c.rounds_done), 1, f.get()) == 1,
      path << ": truncated checkpoint header");
  WKNNG_CHECK_MSG(std::fread(&c.effective_strategy,
                             sizeof(c.effective_strategy), 1, f.get()) == 1,
                  path << ": truncated checkpoint header");
  std::uint64_t nq = 0;
  WKNNG_CHECK_MSG(std::fread(&nq, sizeof(nq), 1, f.get()) == 1,
                  path << ": truncated checkpoint header");
  WKNNG_CHECK_MSG(c.n > 0 && c.k > 0 && c.n < (1ULL << 32) &&
                      c.k < (1ULL << 32) && nq <= c.n,
                  path << ": implausible checkpoint header n=" << c.n
                       << " k=" << c.k << " quarantined=" << nq);

  // Validate payload size before allocating anything header-sized.
  const long header = static_cast<long>(
      sizeof(kCkptMagic) + 3 * sizeof(std::uint64_t) +
      2 * sizeof(std::uint32_t) + sizeof(std::uint64_t));
  const long payload = static_cast<long>(nq * sizeof(std::uint32_t) +
                                         c.n * c.k * sizeof(std::uint64_t));
  WKNNG_CHECK(std::fseek(f.get(), 0, SEEK_END) == 0);
  const long bytes = std::ftell(f.get());
  // Two valid sizes: the classic layout, or classic + the sq8 code trailer
  // a compression=sq8 build appends. Anything else is corruption. The
  // trailer's own (n, dim) header is validated after the fixed part (dim is
  // not knowable from the checkpoint header alone).
  const bool has_sq8 = bytes > header + payload;
  WKNNG_CHECK_MSG(bytes == header + payload || has_sq8,
                  path << ": size " << bytes
                       << " does not match checkpoint header (n=" << c.n
                       << ", k=" << c.k << ", quarantined=" << nq << ")");
  WKNNG_CHECK(std::fseek(f.get(), header, SEEK_SET) == 0);

  c.quarantined.resize(nq);
  if (nq != 0) {
    WKNNG_CHECK(std::fread(c.quarantined.data(), sizeof(std::uint32_t), nq,
                           f.get()) == nq);
  }
  c.sets.resize(c.n * c.k);
  WKNNG_CHECK(std::fread(c.sets.data(), sizeof(std::uint64_t), c.sets.size(),
                         f.get()) == c.sets.size());
  for (std::size_t i = 1; i < c.quarantined.size(); ++i) {
    WKNNG_CHECK_MSG(c.quarantined[i - 1] < c.quarantined[i],
                    path << ": quarantine list not sorted/unique");
  }
  if (has_sq8) {
    kernels::Sq8Matrix m = read_sq8_payload(f.get(), path);
    WKNNG_CHECK_MSG(
        bytes == header + payload + sq8_payload_bytes(m.rows(), m.dim()),
        path << ": size " << bytes
             << " does not match checkpoint + sq8 trailer (n=" << c.n
             << ", k=" << c.k << ", dim=" << m.dim() << ")");
    WKNNG_CHECK_MSG(m.rows() == c.n, path << ": sq8 trailer has " << m.rows()
                                          << " rows for n=" << c.n);
    c.sq8 = std::make_shared<kernels::Sq8Matrix>(std::move(m));
  }
  return c;
}

void write_sq8(const std::string& path, const kernels::Sq8Matrix& m) {
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    WKNNG_CHECK_MSG(f != nullptr, "cannot open " << tmp << " for writing");
    write_sq8_payload(f.get(), tmp, m);
  }
  WKNNG_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                  "cannot rename " << tmp << " to " << path);
}

kernels::Sq8Matrix read_sq8(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  WKNNG_CHECK_MSG(f != nullptr, "cannot open " << path);
  kernels::Sq8Matrix m = read_sq8_payload(f.get(), path);
  WKNNG_CHECK(std::fseek(f.get(), 0, SEEK_END) == 0);
  const long bytes = std::ftell(f.get());
  WKNNG_CHECK_MSG(bytes == sq8_payload_bytes(m.rows(), m.dim()),
                  path << ": size " << bytes
                       << " does not match sq8 header (n=" << m.rows()
                       << ", dim=" << m.dim() << ")");
  return m;
}

}  // namespace wknng::data
