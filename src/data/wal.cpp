#include "data/wal.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/error.hpp"

namespace wknng::data {

namespace {

constexpr char kWalMagic[8] = {'W', 'K', 'N', 'N', 'G', 'W', 'A', 'L'};
constexpr std::uint32_t kWalFormat = 1;
constexpr std::size_t kHeaderBytes =
    sizeof(kWalMagic) + 2 * sizeof(std::uint32_t) + 3 * sizeof(std::uint64_t);
constexpr std::size_t kPayloadHeaderBytes =
    2 * sizeof(std::uint16_t) + sizeof(std::uint64_t);
/// Frame-length sanity bound: no single mutation batch approaches a GiB.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

[[noreturn]] void throw_io(const std::string& path, const std::string& what) {
  throw IoError(path + ": " + what);
}

/// Little-endian scalar append into a byte buffer (the payload serializer).
template <typename T>
void put(std::vector<unsigned char>& buf, T v) {
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  buf.insert(buf.end(), bytes, bytes + sizeof(T));
}

/// Bounds-checked scalar read out of a payload buffer.
template <typename T>
T get(const std::vector<unsigned char>& buf, std::size_t& at,
      const std::string& path) {
  if (buf.size() - at < sizeof(T)) throw_io(path, "truncated record payload");
  T v;
  std::memcpy(&v, buf.data() + at, sizeof(T));
  at += sizeof(T);
  return v;
}

std::vector<unsigned char> serialize_payload(const WalRecord& r) {
  std::vector<unsigned char> buf;
  put(buf, static_cast<std::uint16_t>(r.type));
  put(buf, std::uint16_t{0});
  put(buf, r.version);
  switch (r.type) {
    case WalRecord::Type::kInsert: {
      const auto count = static_cast<std::uint32_t>(r.rows.rows());
      const auto dim = static_cast<std::uint32_t>(r.rows.cols());
      WKNNG_CHECK_MSG(r.external_ids.size() == count,
                      "insert record ids " << r.external_ids.size()
                                           << " != rows " << count);
      put(buf, count);
      put(buf, dim);
      for (const std::uint32_t id : r.external_ids) put(buf, id);
      for (std::size_t i = 0; i < count; ++i) {
        const auto row = r.rows.row(i);
        const auto* p = reinterpret_cast<const unsigned char*>(row.data());
        buf.insert(buf.end(), p, p + dim * sizeof(float));
      }
      break;
    }
    case WalRecord::Type::kDelete: {
      const auto count = static_cast<std::uint32_t>(r.external_ids.size());
      put(buf, count);
      put(buf, std::uint32_t{0});
      for (const std::uint32_t id : r.external_ids) put(buf, id);
      break;
    }
    case WalRecord::Type::kRepair:
      put(buf, r.rounds);
      put(buf, std::uint32_t{0});
      break;
    case WalRecord::Type::kCompact:
      break;
  }
  return buf;
}

WalRecord parse_payload(const std::vector<unsigned char>& buf,
                        const std::string& path) {
  std::size_t at = 0;
  WalRecord r;
  const auto type = get<std::uint16_t>(buf, at, path);
  get<std::uint16_t>(buf, at, path);  // flags
  r.version = get<std::uint64_t>(buf, at, path);
  switch (type) {
    case 1: {
      r.type = WalRecord::Type::kInsert;
      const auto count = get<std::uint32_t>(buf, at, path);
      const auto dim = get<std::uint32_t>(buf, at, path);
      const std::uint64_t need =
          std::uint64_t(count) * sizeof(std::uint32_t) +
          std::uint64_t(count) * dim * sizeof(float);
      if (buf.size() - at != need) {
        throw_io(path, "insert record payload size mismatch");
      }
      r.external_ids.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        r.external_ids[i] = get<std::uint32_t>(buf, at, path);
      }
      r.rows = FloatMatrix(count, dim);
      std::memcpy(r.rows.data(), buf.data() + at,
                  std::size_t(count) * dim * sizeof(float));
      break;
    }
    case 2: {
      r.type = WalRecord::Type::kDelete;
      const auto count = get<std::uint32_t>(buf, at, path);
      get<std::uint32_t>(buf, at, path);  // reserved
      if (buf.size() - at != std::uint64_t(count) * sizeof(std::uint32_t)) {
        throw_io(path, "delete record payload size mismatch");
      }
      r.external_ids.resize(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        r.external_ids[i] = get<std::uint32_t>(buf, at, path);
      }
      break;
    }
    case 3:
      r.type = WalRecord::Type::kRepair;
      r.rounds = get<std::uint32_t>(buf, at, path);
      get<std::uint32_t>(buf, at, path);  // reserved
      break;
    case 4:
      r.type = WalRecord::Type::kCompact;
      break;
    default: {
      std::ostringstream os;
      os << "unknown WAL record type " << type;
      throw_io(path, os.str());
    }
  }
  return r;
}

struct SegmentHeader {
  std::uint64_t signature = 0;
  std::uint64_t seq = 0;
  std::uint64_t first_version = 0;
};

/// Reads and validates one segment header; returns false on a file too short
/// to hold one (a segment that crashed before its atomic roll completed is
/// impossible at the final path, so a short file at the final path is
/// corruption — the caller decides).
bool read_header(std::FILE* f, const std::string& path, SegmentHeader& h) {
  char magic[8] = {};
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic)) return false;
  if (std::memcmp(magic, kWalMagic, sizeof(kWalMagic)) != 0) {
    throw_io(path, "not a WKNNGWAL segment");
  }
  std::uint32_t format = 0, reserved = 0;
  if (std::fread(&format, sizeof(format), 1, f) != 1) return false;
  if (format != kWalFormat) {
    std::ostringstream os;
    os << "unsupported WAL format " << format << " (this build reads "
       << kWalFormat << ")";
    throw_io(path, os.str());
  }
  if (std::fread(&reserved, sizeof(reserved), 1, f) != 1) return false;
  if (std::fread(&h.signature, sizeof(h.signature), 1, f) != 1) return false;
  if (std::fread(&h.seq, sizeof(h.seq), 1, f) != 1) return false;
  if (std::fread(&h.first_version, sizeof(h.first_version), 1, f) != 1) {
    return false;
  }
  return true;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int b = 0; b < 8; ++b) {
        c = (c & 1u) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFU;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::string wal_segment_path(const std::string& dir, std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return dir + "/" + name;
}

WalWriter::WalWriter(std::string dir, std::uint64_t signature,
                     std::uint64_t start_seq, std::uint64_t start_version,
                     std::size_t segment_bytes)
    : dir_(std::move(dir)),
      signature_(signature),
      seq_(start_seq),
      last_version_(start_version),
      segment_bytes_(std::max<std::size_t>(segment_bytes, kHeaderBytes)) {
  WKNNG_CHECK_MSG(seq_ > 0, "WAL segment sequence is 1-based");
  std::filesystem::create_directories(dir_);
  open_segment();
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void WalWriter::open_segment() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    ++seq_;
  }
  const std::string path = wal_segment_path(dir_, seq_);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw_io(tmp, "cannot open for writing");
  bool ok = std::fwrite(kWalMagic, 1, sizeof(kWalMagic), f) ==
            sizeof(kWalMagic);
  const std::uint32_t format = kWalFormat, reserved = 0;
  ok = ok && std::fwrite(&format, sizeof(format), 1, f) == 1;
  ok = ok && std::fwrite(&reserved, sizeof(reserved), 1, f) == 1;
  ok = ok && std::fwrite(&signature_, sizeof(signature_), 1, f) == 1;
  ok = ok && std::fwrite(&seq_, sizeof(seq_), 1, f) == 1;
  ok = ok && std::fwrite(&last_version_, sizeof(last_version_), 1, f) == 1;
  ok = ok && std::fflush(f) == 0;
  if (!ok) {
    std::fclose(f);
    throw_io(tmp, "segment header write failed");
  }
  // Atomic roll: the segment appears at its final path only with a complete
  // header; appends continue through the same (renamed) inode.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fclose(f);
    throw_io(path, "segment rename failed");
  }
  file_ = f;
  active_bytes_ = kHeaderBytes;
  ++segments_opened_;
}

void WalWriter::append(const WalRecord& record) {
  WKNNG_CHECK_MSG(record.version > last_version_,
                  "WAL versions must increase: " << record.version
                                                 << " after " << last_version_);
  const std::vector<unsigned char> payload = serialize_payload(record);
  WKNNG_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
                  "WAL record too large: " << payload.size() << " bytes");
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  const std::string path = wal_segment_path(dir_, seq_);
  bool ok = std::fwrite(&len, sizeof(len), 1, file_) == 1;
  ok = ok && std::fwrite(&crc, sizeof(crc), 1, file_) == 1;
  ok = ok && (payload.empty() ||
              std::fwrite(payload.data(), 1, payload.size(), file_) ==
                  payload.size());
  // Flush per record: an acknowledged mutation reaches the kernel before the
  // caller's apply step runs, so SIGKILL can only tear the *last* frame.
  ok = ok && std::fflush(file_) == 0;
  if (!ok) throw_io(path, "record append failed");
  last_version_ = record.version;
  const std::uint64_t frame = 2 * sizeof(std::uint32_t) + payload.size();
  bytes_appended_ += frame;
  active_bytes_ += frame;
  ++records_appended_;
  if (active_bytes_ >= segment_bytes_) open_segment();
}

WalReplay replay_wal(const std::string& dir, std::uint64_t signature,
                     std::uint64_t start_version,
                     const std::function<void(const WalRecord&)>& apply) {
  WalReplay out;
  out.last_version = start_version;

  // Collect segments in sequence order from the directory listing.
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long seq = 0;
    if (std::sscanf(name.c_str(), "wal-%06llu.log", &seq) == 1 &&
        name == std::string(wal_segment_path("", seq), 1)) {
      segments.emplace_back(seq, entry.path().string());
    }
  }
  if (ec || segments.empty()) return out;  // absent/empty dir: nothing logged
  std::sort(segments.begin(), segments.end());

  bool tear_seen = false;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const auto& [seq, path] = segments[s];
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw_io(path, "cannot open for reading");
    struct Closer {
      std::FILE* f;
      ~Closer() { std::fclose(f); }
    } closer{f};

    SegmentHeader h;
    if (!read_header(f, path, h)) {
      throw_io(path, "truncated segment header");
    }
    if (h.signature != signature) {
      std::ostringstream os;
      os << "WAL signature mismatch: segment has " << h.signature
         << ", base checkpoint has " << signature;
      throw_io(path, os.str());
    }
    if (h.seq != seq) throw_io(path, "segment sequence/name mismatch");
    // Chain contract: a segment must continue exactly where the intact
    // prefix left off. This is also what certifies a mid-log tear: the next
    // segment was opened by a recovered writer at the torn position.
    if (h.first_version != out.last_version) {
      std::ostringstream os;
      os << "WAL chain broken: segment opens at version " << h.first_version
         << " but replay is at " << out.last_version;
      throw_io(path, os.str());
    }
    tear_seen = false;
    ++out.segments;
    out.next_seq = seq + 1;

    while (true) {
      std::uint32_t len = 0, crc = 0;
      const std::size_t got_len = std::fread(&len, 1, sizeof(len), f);
      if (got_len == 0) break;  // clean end of segment
      if (got_len < sizeof(len) ||
          std::fread(&crc, sizeof(crc), 1, f) != 1) {
        tear_seen = true;  // frame header torn
        break;
      }
      if (len < kPayloadHeaderBytes || len > kMaxPayloadBytes) {
        tear_seen = true;  // implausible length: torn/garbage frame
        break;
      }
      std::vector<unsigned char> payload(len);
      if (std::fread(payload.data(), 1, len, f) != len) {
        tear_seen = true;  // payload torn
        break;
      }
      if (crc32(payload.data(), payload.size()) != crc) {
        tear_seen = true;  // bits flipped or partially written
        break;
      }
      WalRecord r = parse_payload(payload, path);
      if (r.version <= out.last_version) {
        throw_io(path, "WAL record versions must increase strictly");
      }
      out.last_version = r.version;
      ++out.records;
      apply(r);
    }
    // A tear anywhere but the final segment is only legitimate if the next
    // segment chains from the intact prefix — which the first_version check
    // at the top of the loop enforces on the next iteration.
  }
  out.torn_tail = tear_seen;
  return out;
}

}  // namespace wknng::data
