#pragma once

#include <cstdint>
#include <string>

#include "common/matrix.hpp"

namespace wknng::data {

/// Families of seeded synthetic point sets. These stand in for the
/// SIFT/GIST-class public datasets of the paper's evaluation (see DESIGN.md,
/// substitutions table): each family controls the property that drives a
/// KNNG experiment — dimensionality, cluster structure, or intrinsic
/// dimension — while remaining exactly reproducible from (spec, seed).
enum class DatasetKind {
  kUniform,   ///< i.i.d. uniform in [0,1]^dim — worst case for partitioning trees
  kClusters,  ///< Gaussian mixture — the structure real feature sets exhibit
  kSphere,    ///< unit-sphere shell with radial noise — constant-norm regime
  kManifold,  ///< low intrinsic dimension embedded in high ambient dimension
};

/// Full description of a synthetic dataset; equality of specs implies
/// bit-identical data.
struct DatasetSpec {
  DatasetKind kind = DatasetKind::kClusters;
  std::size_t n = 10000;
  std::size_t dim = 32;
  std::uint64_t seed = 42;

  // kClusters parameters.
  std::size_t clusters = 32;      ///< number of mixture components
  float cluster_spread = 0.05f;   ///< component std-dev (centres live in [0,1]^d)

  // kSphere parameter.
  float radial_noise = 0.02f;     ///< std-dev of radius jitter around 1.0

  // kManifold parameters.
  std::size_t intrinsic_dim = 8;  ///< latent dimensionality
  float ambient_noise = 0.01f;    ///< i.i.d. noise added in ambient space
};

/// Generates the dataset described by `spec` (rows = points).
FloatMatrix generate(const DatasetSpec& spec);

/// Short human-readable tag, e.g. "clusters-n10000-d32-s42" — used by the
/// bench harness to label series.
std::string describe(const DatasetSpec& spec);

// Convenience constructors for the common cases.
FloatMatrix make_uniform(std::size_t n, std::size_t dim, std::uint64_t seed);
FloatMatrix make_clusters(std::size_t n, std::size_t dim, std::size_t clusters,
                          float spread, std::uint64_t seed);

}  // namespace wknng::data
