#include "data/io.hpp"

#include <cstdio>
#include <memory>

#include "common/error.hpp"

namespace wknng::data {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

File open_or_throw(const std::string& path, const char* mode) {
  File f(std::fopen(path.c_str(), mode));
  WKNNG_CHECK_MSG(f != nullptr, "cannot open " << path << " (mode " << mode << ")");
  return f;
}

long file_size(std::FILE* f) {
  WKNNG_CHECK(std::fseek(f, 0, SEEK_END) == 0);
  const long size = std::ftell(f);
  WKNNG_CHECK(size >= 0);
  WKNNG_CHECK(std::fseek(f, 0, SEEK_SET) == 0);
  return size;
}

/// Shared reader: .fvecs and .ivecs differ only in element type, and both
/// use 4-byte elements.
template <typename T>
Matrix<T> read_xvecs(const std::string& path) {
  static_assert(sizeof(T) == 4);
  File f = open_or_throw(path, "rb");
  const long bytes = file_size(f.get());

  std::int32_t dim = 0;
  WKNNG_CHECK_MSG(std::fread(&dim, sizeof(dim), 1, f.get()) == 1,
                  path << ": empty file");
  WKNNG_CHECK_MSG(dim > 0, path << ": bad dimension " << dim);

  // Validate the header against the file size BEFORE sizing any allocation:
  // a garbage dimension from a corrupt header must fail here with a clear
  // message, not as a huge (or bogus) Matrix allocation below. `dim * 4L`
  // cannot overflow: dim < 2^31 and long is 64-bit on every supported target.
  const long record = static_cast<long>(sizeof(std::int32_t)) + dim * 4L;
  WKNNG_CHECK_MSG(record <= bytes,
                  path << ": dimension " << dim << " implies a " << record
                       << "B record, but the file holds only " << bytes
                       << "B (truncated or corrupt header)");
  WKNNG_CHECK_MSG(bytes % record == 0,
                  path << ": size " << bytes << " not a multiple of record "
                       << record << " (truncated file?)");
  const std::size_t n = static_cast<std::size_t>(bytes / record);

  WKNNG_CHECK(std::fseek(f.get(), 0, SEEK_SET) == 0);
  Matrix<T> m(n, static_cast<std::size_t>(dim));
  for (std::size_t i = 0; i < n; ++i) {
    std::int32_t row_dim = 0;
    WKNNG_CHECK(std::fread(&row_dim, sizeof(row_dim), 1, f.get()) == 1);
    WKNNG_CHECK_MSG(row_dim == dim, path << ": row " << i << " has dim "
                                         << row_dim << ", expected " << dim);
    WKNNG_CHECK(std::fread(m.row(i).data(), 4, static_cast<std::size_t>(dim),
                           f.get()) == static_cast<std::size_t>(dim));
  }
  return m;
}

template <typename T>
void write_xvecs(const std::string& path, const Matrix<T>& m) {
  static_assert(sizeof(T) == 4);
  File f = open_or_throw(path, "wb");
  const auto dim = static_cast<std::int32_t>(m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    WKNNG_CHECK(std::fwrite(&dim, sizeof(dim), 1, f.get()) == 1);
    WKNNG_CHECK(std::fwrite(m.row(i).data(), 4, m.cols(), f.get()) == m.cols());
  }
}

}  // namespace

FloatMatrix read_fvecs(const std::string& path) { return read_xvecs<float>(path); }

void write_fvecs(const std::string& path, const FloatMatrix& m) {
  write_xvecs(path, m);
}

Matrix<std::int32_t> read_ivecs(const std::string& path) {
  return read_xvecs<std::int32_t>(path);
}

void write_ivecs(const std::string& path, const Matrix<std::int32_t>& m) {
  write_xvecs(path, m);
}

}  // namespace wknng::data
