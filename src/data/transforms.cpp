#include "data/transforms.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wknng::data {

void normalize_rows(FloatMatrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    auto row = m.row(i);
    double norm_sq = 0.0;
    for (float v : row) norm_sq += static_cast<double>(v) * v;
    if (norm_sq <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (float& v : row) v *= inv;
  }
}

float max_row_norm(const FloatMatrix& m) {
  double best = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double norm_sq = 0.0;
    for (float v : m.row(i)) norm_sq += static_cast<double>(v) * v;
    best = std::max(best, norm_sq);
  }
  return static_cast<float>(std::sqrt(best));
}

FloatMatrix mips_augment_base(const FloatMatrix& m, float radius) {
  const double r_sq = static_cast<double>(radius) * radius;
  FloatMatrix out(m.rows(), m.cols() + 1);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    auto src = m.row(i);
    auto dst = out.row(i);
    double norm_sq = 0.0;
    for (std::size_t d = 0; d < src.size(); ++d) {
      dst[d] = src[d];
      norm_sq += static_cast<double>(src[d]) * src[d];
    }
    WKNNG_CHECK_MSG(norm_sq <= r_sq * (1.0 + 1e-6),
                    "row " << i << " norm exceeds radius " << radius);
    dst[src.size()] =
        static_cast<float>(std::sqrt(std::max(0.0, r_sq - norm_sq)));
  }
  return out;
}

FloatMatrix mips_augment_queries(const FloatMatrix& m) {
  FloatMatrix out(m.rows(), m.cols() + 1);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    auto src = m.row(i);
    auto dst = out.row(i);
    for (std::size_t d = 0; d < src.size(); ++d) dst[d] = src[d];
    dst[src.size()] = 0.0f;
  }
  return out;
}

FloatMatrix random_project(const FloatMatrix& m, std::size_t out_dim,
                           std::uint64_t seed) {
  WKNNG_CHECK_MSG(out_dim > 0, "out_dim must be positive");
  const std::size_t in_dim = m.cols();
  // Projection matrix: out_dim x in_dim, entries N(0, 1/out_dim).
  FloatMatrix proj(out_dim, in_dim);
  Rng rng(seed, 101);
  const float scale = 1.0f / std::sqrt(static_cast<float>(out_dim));
  for (std::size_t i = 0; i < proj.size(); ++i) {
    proj.data()[i] = scale * rng.next_gaussian();
  }

  FloatMatrix out(m.rows(), out_dim);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    auto src = m.row(i);
    auto dst = out.row(i);
    for (std::size_t o = 0; o < out_dim; ++o) {
      auto p = proj.row(o);
      float acc = 0.0f;
      for (std::size_t d = 0; d < in_dim; ++d) acc += p[d] * src[d];
      dst[o] = acc;
    }
  }
  return out;
}

}  // namespace wknng::data
