#pragma once

#include <cstdint>

#include "common/matrix.hpp"

namespace wknng::data {

/// Metric-reduction and preprocessing transforms. The w-KNNG kernels compute
/// squared Euclidean distance only (like the paper); other similarity
/// measures are supported the standard way — by transforming the data so
/// that L2 nearest neighbors coincide with the desired measure's neighbors:
///
///   cosine        -> normalize_rows(): ||x'-y'||^2 = 2 - 2 cos(x, y)
///   inner product -> mips_augment_*(): Shrivastava & Li's asymmetric L2
///                    reduction (NIPS 2014, simplified symmetric variant)
///   too many dims -> random_project(): Johnson–Lindenstrauss sketch

/// Scales every row to unit L2 norm (rows with zero norm are left
/// unchanged). After this, an L2 K-NN graph is exactly a cosine K-NN graph.
void normalize_rows(FloatMatrix& m);

/// Returns the largest row L2 norm of m (the MIPS augmentation radius).
float max_row_norm(const FloatMatrix& m);

/// MIPS -> L2 reduction, base side: appends one coordinate
/// sqrt(radius^2 - ||x||^2) to every row (radius must be >= every row norm,
/// e.g. max_row_norm()). With queries augmented by a zero coordinate,
///   argmin_y ||q' - y'||^2 = argmax_y <q, y>.
FloatMatrix mips_augment_base(const FloatMatrix& m, float radius);

/// MIPS -> L2 reduction, query side: appends a zero coordinate.
FloatMatrix mips_augment_queries(const FloatMatrix& m);

/// Johnson–Lindenstrauss random projection to `out_dim` dimensions using a
/// seeded Gaussian matrix scaled by 1/sqrt(out_dim); pairwise squared
/// distances are preserved within (1 +- eps) for out_dim = O(log n / eps^2).
/// Used to accelerate very high-dimensional builds at a small recall cost.
FloatMatrix random_project(const FloatMatrix& m, std::size_t out_dim,
                           std::uint64_t seed);

}  // namespace wknng::data
