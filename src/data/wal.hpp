#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace wknng::data {

/// Write-ahead delta log of the dynamic index (src/dynamic) — WKNNGWAL1.
///
/// The log is a directory of append-only segment files, anchored to a
/// WKNNGCP1 base checkpoint by core::build_signature: base + log replay
/// reproduces the exact published graph version bit for bit, because every
/// state transition the index performs (insert batch, delete batch, repair
/// pass, compaction) is appended as one record *before* it is applied, and
/// each transition is a deterministic function of the state it runs on.
///
/// Segment file `<dir>/wal-<seq:06>.log` (little-endian):
///   magic         "WKNNGWAL"  (8 bytes)
///   format        uint32      (1; readers reject unknown versions)
///   reserved      uint32      (0)
///   signature     uint64      (core::build_signature of the base build)
///   seq           uint64      (1-based segment sequence number)
///   first_version uint64      (index version when the segment was opened)
///
/// followed by CRC-framed records:
///   len     uint32   payload byte count
///   crc     uint32   crc32 (IEEE) of the payload
///   payload len bytes:
///     type    uint16   (1=insert, 2=delete, 3=repair, 4=compact)
///     flags   uint16   (0)
///     version uint64   (index version *after* applying; strictly increasing)
///     insert: count u32, dim u32, count x u32 external ids,
///             count*dim x float rows
///     delete: count u32, reserved u32, count x u32 external ids
///     repair: rounds u32, reserved u32
///     compact: (empty)
///
/// Durability/atomicity contract:
///  * A segment becomes visible to recovery only once its header is complete:
///    the header is written to `<path>.tmp` and renamed (atomic segment
///    roll), after which records are appended in place and flushed per
///    append.
///  * SIGKILL mid-append leaves at most one torn record at the tail of the
///    newest segment; replay discards it and reports the last intact version.
///  * A writer restarted after a crash opens a *new* segment (it never
///    appends after a torn tail). Replay follows the segment chain across
///    the tear: a mid-segment bad record is accepted as a tear exactly when
///    the next segment's first_version continues from the last intact
///    record; anything else throws wknng::IoError (real corruption).
struct WalRecord {
  enum class Type : std::uint16_t {
    kInsert = 1,
    kDelete = 2,
    kRepair = 3,
    kCompact = 4,
  };

  Type type = Type::kInsert;
  std::uint64_t version = 0;  ///< index version after applying this record
  std::vector<std::uint32_t> external_ids;  ///< insert/delete targets
  FloatMatrix rows;                         ///< insert payload rows
  std::uint32_t rounds = 0;                 ///< repair rounds
};

/// CRC-32 (IEEE 802.3) over `bytes` bytes — the record framing checksum.
/// Exposed so tests can forge/verify frames.
std::uint32_t crc32(const void* data, std::size_t bytes);

/// Canonical segment path: "<dir>/wal-<seq:06>.log".
std::string wal_segment_path(const std::string& dir, std::uint64_t seq);

/// Appender. Opens segment `start_seq` on construction (atomic header roll)
/// and rolls to the next segment whenever the active one crosses
/// `segment_bytes`. Every append is flushed to the kernel before returning,
/// so an acknowledged mutation survives process death.
class WalWriter {
 public:
  WalWriter(std::string dir, std::uint64_t signature, std::uint64_t start_seq,
            std::uint64_t start_version, std::size_t segment_bytes);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record (record.version must be > every prior version).
  void append(const WalRecord& record);

  std::uint64_t bytes_appended() const { return bytes_appended_; }
  std::uint64_t records_appended() const { return records_appended_; }
  std::uint64_t active_seq() const { return seq_; }
  std::uint64_t segments_opened() const { return segments_opened_; }

 private:
  void open_segment();

  std::string dir_;
  std::uint64_t signature_;
  std::uint64_t seq_;
  std::uint64_t last_version_;
  std::size_t segment_bytes_;
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t records_appended_ = 0;
  std::uint64_t segments_opened_ = 0;
  std::uint64_t active_bytes_ = 0;
  std::FILE* file_ = nullptr;
};

/// Outcome of one log replay.
struct WalReplay {
  std::uint64_t last_version = 0;  ///< version after the last intact record
  std::size_t records = 0;         ///< intact records applied
  std::size_t segments = 0;        ///< segment files visited
  bool torn_tail = false;          ///< a torn tail record was discarded
  std::uint64_t next_seq = 1;      ///< segment a restarted writer should open
};

/// Replays every intact record under `dir` in (seq, offset) order, invoking
/// `apply` per record. `signature` must match every segment header
/// (build_signature anchoring — throws wknng::IoError otherwise), and record
/// versions must increase strictly from `start_version`. An empty/absent
/// directory replays zero records.
WalReplay replay_wal(const std::string& dir, std::uint64_t signature,
                     std::uint64_t start_version,
                     const std::function<void(const WalRecord&)>& apply);

}  // namespace wknng::data
