#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace wknng::data {

/// Texmex `.fvecs` / `.ivecs` I/O — the on-disk format of the standard ANN
/// benchmark datasets (SIFT1M, GIST1M, ...). Each vector is stored as a
/// little-endian int32 dimension followed by `dim` 4-byte elements. Having
/// this reader means the bench harness accepts the paper's real datasets
/// unchanged whenever they are available; the synthetic generators are the
/// offline stand-in.

/// Reads an entire .fvecs file. Throws wknng::Error on malformed input or
/// inconsistent dimensions.
FloatMatrix read_fvecs(const std::string& path);

/// Writes a matrix as .fvecs (one vector per row).
void write_fvecs(const std::string& path, const FloatMatrix& m);

/// Reads an .ivecs file (e.g. ground-truth neighbor ids) as a row-major
/// int32 matrix.
Matrix<std::int32_t> read_ivecs(const std::string& path);

/// Writes int32 rows as .ivecs.
void write_ivecs(const std::string& path, const Matrix<std::int32_t>& m);

}  // namespace wknng::data
