#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/knn_graph.hpp"
#include "kernels/sq8.hpp"
#include "opt/serving_graph.hpp"

namespace wknng::data {

/// Binary K-NN graph serialization, so expensive builds can be computed once
/// and consumed by downstream pipelines (t-SNE, search services).
///
/// Format (little-endian):
///   magic   "WKNNG1\0\0"  (8 bytes)
///   n       uint64
///   k       uint64
///   entries n*k x { float dist; uint32 id }   (id 0xFFFFFFFF = empty slot)
///
/// read_knng validates the magic, the header against the file size, and the
/// graph invariants (sorted rows, no self loops/duplicates), throwing
/// wknng::IoError on any mismatch — a corrupted cache must never flow
/// silently into a pipeline.
///
/// Error contract (all readers in this file): a missing/unopenable file, a
/// bad magic, an implausible header, a short read, a size mismatch, or
/// trailing garbage throws the typed wknng::IoError *before* any
/// header-sized allocation is trusted; checkpoint-specific inconsistencies
/// (unsorted quarantine list, sq8 trailer shape not matching the header)
/// throw wknng::CheckpointMismatchError. No reader ever asserts or reads
/// past the end of a truncated buffer.
void write_knng(const std::string& path, const KnnGraph& g);

/// Tolerates (and fully validates) an optional WKNNGOP1 serving-layout
/// trailer appended by write_knng_serving; any other trailing bytes are
/// corruption and throw. Use read_knng_serving to get the trailer back.
KnnGraph read_knng(const std::string& path);

/// Optimized serving-layout persistence: the pruned, CSR-packed, BFS-permuted
/// layout opt::optimize_serving builds, written standalone so a serving
/// process can load it without re-running the pipeline. Payload
/// (little-endian):
///   magic    "WKNNGOP1"  (8 bytes)
///   version  uint32      (layout codec version, currently 1)
///   flags    uint32      (bit0 pruned, bit1 reordered, bit2 exclusion mask
///                         present, bit3 norm cache present)
///   dim, n, source_k, source_version, min_degree, edges_before  uint64 each
///   offsets    (n+1) x uint32
///   neighbors  offsets[n] x uint32   (edge targets, new-id space)
///   new_to_old n x uint32
///   base       n*dim x float         (rows gathered into new order)
///   [norms     n x float]            (bit3)
///   [exclude   n x uint8]            (bit2)
/// `old_to_new` is re-derived by inversion and `edges_after` from the CSR;
/// the reader runs ServingGraph::check_valid before returning, so a corrupt
/// layout can never reach the search kernel. Writes are atomic (tmp+rename).
void write_serving(const std::string& path, const opt::ServingGraph& sg);

opt::ServingGraph read_serving(const std::string& path);

/// Graph + layout in one artifact: the WKNNG1 payload followed by the
/// WKNNGOP1 payload as a trailer (the checkpoint/sq8 trailer idiom). Plain
/// read_knng on such a file returns just the graph; read_knng_serving
/// returns both and throws IoError when the trailer is absent.
void write_knng_serving(const std::string& path, const KnnGraph& g,
                        const opt::ServingGraph& sg);

std::pair<KnnGraph, opt::ServingGraph> read_knng_serving(
    const std::string& path);

/// A resumable snapshot of a build at a phase boundary: the packed k-NN set
/// state after the leaf pass (rounds_done == 0) or after refinement round
/// rounds_done. The builder's phases are Markovian in this state, so
/// resuming from it reproduces the uninterrupted build bit for bit under a
/// deterministic schedule.
///
/// `signature` is core::build_signature of the parameters and data the state
/// was produced under; resume verifies it before trusting the words.
/// `effective_strategy` is the core::Strategy enum value the build actually
/// ran with (it differs from the requested one after a kShared -> kTiled
/// degradation). `quarantined` lists the non-finite input rows excluded from
/// the build, sorted ascending.
struct BuildCheckpoint {
  std::uint64_t signature = 0;
  std::uint64_t n = 0;
  std::uint64_t k = 0;
  std::uint32_t rounds_done = 0;
  std::uint32_t effective_strategy = 0;
  std::vector<std::uint32_t> quarantined;
  std::vector<std::uint64_t> sets;  ///< n*k packed (dist,id) words

  /// Compressed-tier codes (compression=sq8 builds only). Persisted as an
  /// optional trailer so the sq8 distances a resumed build computes come
  /// from the exact codes the checkpointed state was produced under.
  std::shared_ptr<const kernels::Sq8Matrix> sq8;

  bool shape_ok() const { return sets.size() == n * k; }
};

/// Binary checkpoint serialization (little-endian):
///   magic        "WKNNGCP1"  (8 bytes)
///   signature    uint64
///   n, k         uint64 each
///   rounds_done  uint32
///   strategy     uint32
///   n_quarantined uint64
///   quarantined  n_quarantined x uint32
///   sets         n*k x uint64
///   [sq8 payload]  optional trailer (see write_sq8) when the build ran with
///                  compression=sq8; absent otherwise, so compression=none
///                  checkpoints are byte-identical to the pre-sq8 format.
///
/// The write is atomic: the file is written to `path + ".tmp"` and renamed,
/// so an interrupted writer never leaves a half-written checkpoint at
/// `path`. read_checkpoint validates the magic, the header against the file
/// size, and the shape, throwing wknng::Error on any mismatch.
void write_checkpoint(const std::string& path, const BuildCheckpoint& c);

BuildCheckpoint read_checkpoint(const std::string& path);

/// Standalone SQ8 code persistence, so serving can keep scoring compressed
/// rows without the original fp32 data set. Payload (little-endian):
///   magic   "WKNNGSQ8"  (8 bytes)
///   version uint32      (codec version, currently 1 — bumped if the codec
///                        ever changes meaning; readers reject unknown ones)
///   n, dim  uint64 each
///   bias    dim x float
///   scale   dim x float
///   codes   n*dim x uint8
/// The same payload doubles as the optional checkpoint trailer. read_sq8
/// validates the magic, version, and the header against the file size.
void write_sq8(const std::string& path, const kernels::Sq8Matrix& m);

kernels::Sq8Matrix read_sq8(const std::string& path);

// --- Sharded-build artifacts (src/shard) -----------------------------------

/// Canonical per-shard artifact path: "<prefix>.shard<index>.<ext>" — the
/// naming every sharded-build job and its manifest agree on. `ext` is
/// "ckpt" for the WKNNGCP1 job artifact and "knng" for a finished shard
/// graph.
std::string shard_artifact_path(const std::string& prefix, std::size_t shard,
                                const std::string& ext);

/// The manifest a sharded build writes next to its per-shard artifacts
/// ("<prefix>.manifest"): enough to re-derive and *verify* the partition on
/// resume, plus the artifact name of every shard job. Text format, one field
/// per line:
///
///   WKNNGSHARDS1
///   n <uint64>
///   dim <uint64>
///   k <uint64>
///   shards <uint64>
///   partitioner <random|kmeans>
///   seed <uint64>
///   hash <uint64>          (ShardPartition::hash() over the assignment)
///   artifact <index> <filename>    (one line per shard, ascending index)
///
/// The write is atomic (tmp + rename). read_shard_manifest throws IoError on
/// any malformed, truncated, or garbage-trailing input.
struct ShardManifest {
  std::uint64_t n = 0;
  std::uint64_t dim = 0;
  std::uint64_t k = 0;
  std::uint64_t num_shards = 0;
  std::string partitioner;        ///< "random" or "kmeans"
  std::uint64_t seed = 0;
  std::uint64_t partition_hash = 0;
  std::vector<std::string> artifacts;  ///< per-shard checkpoint filenames
};

void write_shard_manifest(const std::string& path, const ShardManifest& m);

ShardManifest read_shard_manifest(const std::string& path);

}  // namespace wknng::data
