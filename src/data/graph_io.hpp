#pragma once

#include <string>

#include "common/knn_graph.hpp"

namespace wknng::data {

/// Binary K-NN graph serialization, so expensive builds can be computed once
/// and consumed by downstream pipelines (t-SNE, search services).
///
/// Format (little-endian):
///   magic   "WKNNG1\0\0"  (8 bytes)
///   n       uint64
///   k       uint64
///   entries n*k x { float dist; uint32 id }   (id 0xFFFFFFFF = empty slot)
///
/// read_knng validates the magic, the header against the file size, and the
/// graph invariants (sorted rows, no self loops/duplicates), throwing
/// wknng::Error on any mismatch — a corrupted cache must never flow silently
/// into a pipeline.
void write_knng(const std::string& path, const KnnGraph& g);

KnnGraph read_knng(const std::string& path);

}  // namespace wknng::data
