#include "data/synthetic.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wknng::data {

namespace {

FloatMatrix gen_uniform(const DatasetSpec& spec) {
  FloatMatrix m(spec.n, spec.dim);
  Rng rng(spec.seed, 1);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.next_float();
  return m;
}

FloatMatrix gen_clusters(const DatasetSpec& spec) {
  WKNNG_CHECK(spec.clusters > 0);
  Rng centre_rng(spec.seed, 2);
  FloatMatrix centres(spec.clusters, spec.dim);
  for (std::size_t i = 0; i < centres.size(); ++i) {
    centres.data()[i] = centre_rng.next_float();
  }

  FloatMatrix m(spec.n, spec.dim);
  Rng rng(spec.seed, 3);
  for (std::size_t i = 0; i < spec.n; ++i) {
    const std::size_t c = i % spec.clusters;  // balanced assignment
    auto centre = centres.row(c);
    auto row = m.row(i);
    for (std::size_t d = 0; d < spec.dim; ++d) {
      row[d] = centre[d] + spec.cluster_spread * rng.next_gaussian();
    }
  }
  return m;
}

FloatMatrix gen_sphere(const DatasetSpec& spec) {
  FloatMatrix m(spec.n, spec.dim);
  Rng rng(spec.seed, 4);
  for (std::size_t i = 0; i < spec.n; ++i) {
    auto row = m.row(i);
    double norm_sq = 0.0;
    for (std::size_t d = 0; d < spec.dim; ++d) {
      row[d] = rng.next_gaussian();
      norm_sq += static_cast<double>(row[d]) * row[d];
    }
    const float radius = 1.0f + spec.radial_noise * rng.next_gaussian();
    const float scale =
        norm_sq > 0.0 ? radius / static_cast<float>(std::sqrt(norm_sq)) : 0.0f;
    for (std::size_t d = 0; d < spec.dim; ++d) row[d] *= scale;
  }
  return m;
}

FloatMatrix gen_manifold(const DatasetSpec& spec) {
  WKNNG_CHECK(spec.intrinsic_dim > 0);
  // Random linear embedding: x = B z + noise, z ~ N(0, I_m), B is dim x m.
  Rng basis_rng(spec.seed, 5);
  FloatMatrix basis(spec.dim, spec.intrinsic_dim);
  const float col_scale = 1.0f / std::sqrt(static_cast<float>(spec.intrinsic_dim));
  for (std::size_t i = 0; i < basis.size(); ++i) {
    basis.data()[i] = col_scale * basis_rng.next_gaussian();
  }

  FloatMatrix m(spec.n, spec.dim);
  Rng rng(spec.seed, 6);
  std::vector<float> z(spec.intrinsic_dim);
  for (std::size_t i = 0; i < spec.n; ++i) {
    for (auto& v : z) v = rng.next_gaussian();
    auto row = m.row(i);
    for (std::size_t d = 0; d < spec.dim; ++d) {
      float acc = 0.0f;
      auto b = basis.row(d);
      for (std::size_t j = 0; j < spec.intrinsic_dim; ++j) acc += b[j] * z[j];
      row[d] = acc + spec.ambient_noise * rng.next_gaussian();
    }
  }
  return m;
}

const char* kind_name(DatasetKind k) {
  switch (k) {
    case DatasetKind::kUniform: return "uniform";
    case DatasetKind::kClusters: return "clusters";
    case DatasetKind::kSphere: return "sphere";
    case DatasetKind::kManifold: return "manifold";
  }
  return "?";
}

}  // namespace

FloatMatrix generate(const DatasetSpec& spec) {
  WKNNG_CHECK_MSG(spec.n > 0 && spec.dim > 0,
                  "n=" << spec.n << " dim=" << spec.dim);
  switch (spec.kind) {
    case DatasetKind::kUniform: return gen_uniform(spec);
    case DatasetKind::kClusters: return gen_clusters(spec);
    case DatasetKind::kSphere: return gen_sphere(spec);
    case DatasetKind::kManifold: return gen_manifold(spec);
  }
  throw Error("unknown DatasetKind");
}

std::string describe(const DatasetSpec& spec) {
  std::ostringstream os;
  os << kind_name(spec.kind) << "-n" << spec.n << "-d" << spec.dim << "-s"
     << spec.seed;
  return os.str();
}

FloatMatrix make_uniform(std::size_t n, std::size_t dim, std::uint64_t seed) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kUniform;
  spec.n = n;
  spec.dim = dim;
  spec.seed = seed;
  return generate(spec);
}

FloatMatrix make_clusters(std::size_t n, std::size_t dim, std::size_t clusters,
                          float spread, std::uint64_t seed) {
  DatasetSpec spec;
  spec.kind = DatasetKind::kClusters;
  spec.n = n;
  spec.dim = dim;
  spec.clusters = clusters;
  spec.cluster_spread = spread;
  spec.seed = seed;
  return generate(spec);
}

}  // namespace wknng::data
