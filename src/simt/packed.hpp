#pragma once

#include <bit>
#include <cstdint>
#include <limits>

namespace wknng::simt {

/// 64-bit packed (distance, id) candidate: the unit every k-NN-set strategy
/// stores in global memory.
///
/// Layout: [ distance bits (high 32) | point id (low 32) ].
/// For non-negative IEEE-754 floats the raw bit pattern is monotonic under
/// unsigned comparison, so a single 64-bit unsigned compare orders candidates
/// by distance with id as deterministic tiebreak — which is exactly what the
/// lock-free atomic-min strategy needs (one CAS replaces the whole pair).
///
/// kEmpty (all ones) is larger than any real candidate, so empty slots lose
/// every comparison and never need special-casing on the insert path.
struct Packed {
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  /// Packs a squared distance (must be >= 0 or +inf) and a point id.
  static std::uint64_t make(float dist, std::uint32_t id) {
    // Normalise -0.0f so the encoding stays monotonic.
    if (dist == 0.0f) dist = 0.0f;
    const auto bits = std::bit_cast<std::uint32_t>(dist);
    return (static_cast<std::uint64_t>(bits) << 32) | id;
  }

  static float dist(std::uint64_t packed) {
    return std::bit_cast<float>(static_cast<std::uint32_t>(packed >> 32));
  }

  static std::uint32_t id(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed & 0xFFFFFFFFULL);
  }

  static bool is_empty(std::uint64_t packed) { return packed == kEmpty; }

  /// True iff the packed distance is a finite non-negative float — i.e. a
  /// candidate the k-NN set may admit. NaN/inf distances (a corrupted
  /// distance unit) and negative floats pack to bit patterns that sort after
  /// every valid candidate, so in a sorted run the invalid suffix can be
  /// truncated at the first non-finite entry.
  static bool is_finite(std::uint64_t packed) {
    const auto bits = static_cast<std::uint32_t>(packed >> 32);
    // sign bit clear and exponent not all-ones.
    return (bits & 0x80000000U) == 0 && (bits & 0x7F800000U) != 0x7F800000U;
  }
};

}  // namespace wknng::simt
