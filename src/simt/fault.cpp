#include "simt/fault.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/rng.hpp"

namespace wknng::simt {

namespace {

/// Per-thread warp binding, mirroring the race detector's: a warp task runs
/// on exactly one pool worker, so its opportunity counter is thread-local.
/// Host-side opportunities (no warp bound) use the injector's own counter —
/// launches are issued sequentially from the build thread.
struct WarpContext {
  bool active = false;
  std::uint32_t warp = 0;
  std::uint64_t opportunities = 0;
};

thread_local WarpContext t_ctx;

constexpr std::uint64_t kHostTag = ~std::uint64_t{0};

}  // namespace

const char* fault_site_name(FaultSite s) {
  switch (s) {
    case FaultSite::kScratchAlloc: return "scratch-alloc";
    case FaultSite::kWarpAbort: return "warp-abort";
    case FaultSite::kLockTimeout: return "lock-timeout";
    case FaultSite::kCorruptDistance: return "corrupt-distance";
    case FaultSite::kLaunchAlloc: return "launch-alloc";
  }
  return "?";
}

FaultSite fault_site_from_name(const std::string& name) {
  for (const FaultSite s : all_fault_sites()) {
    if (name == fault_site_name(s)) return s;
  }
  throw Error("unknown fault site: " + name +
              " (valid: scratch-alloc, warp-abort, lock-timeout, "
              "corrupt-distance, launch-alloc)");
}

std::string FaultSpec::to_string() const {
  std::ostringstream os;
  os << fault_site_name(site) << ":" << seed << ":" << probability;
  if (max_faults != 0) os << ":" << max_faults;
  return os.str();
}

FaultSpec fault_spec_from_string(const std::string& text) {
  FaultSpec spec;
  spec.enabled = true;

  std::string rest = text;
  auto next_field = [&]() {
    const auto pos = rest.find(':');
    std::string field = rest.substr(0, pos);
    rest = pos == std::string::npos ? "" : rest.substr(pos + 1);
    return field;
  };

  spec.site = fault_site_from_name(next_field());
  const std::string seed_text = next_field();
  WKNNG_CHECK_MSG(!seed_text.empty(),
                  "fault spec needs a seed: \"" << text
                      << "\" (format site:seed[:probability[:max_faults]])");
  spec.seed = std::strtoull(seed_text.c_str(), nullptr, 10);
  if (!rest.empty()) {
    char* end = nullptr;
    const std::string prob_text = next_field();
    spec.probability = std::strtod(prob_text.c_str(), &end);
    WKNNG_CHECK_MSG(end != prob_text.c_str() && spec.probability >= 0.0 &&
                        spec.probability <= 1.0,
                    "fault probability must be in [0, 1]: " << prob_text);
  }
  if (!rest.empty()) {
    spec.max_faults = std::strtoull(next_field().c_str(), nullptr, 10);
  }
  return spec;
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec) {
  WKNNG_CHECK_MSG(spec_.probability >= 0.0 && spec_.probability <= 1.0,
                  "fault probability must be in [0, 1]: " << spec_.probability);
  // probability as a compare bound on a uniform 53-bit draw.
  threshold_ = static_cast<std::uint64_t>(
      spec_.probability * static_cast<double>(std::uint64_t{1} << 53));
}

FaultInjector::~FaultInjector() {
  WKNNG_CHECK_MSG(active_fault_injector() != this,
                  "FaultInjector destroyed while still installed");
}

void FaultInjector::enter_warp(std::uint32_t warp_id) {
  t_ctx.active = true;
  t_ctx.warp = warp_id;
  t_ctx.opportunities = 0;
}

void FaultInjector::exit_warp() { t_ctx = WarpContext{}; }

bool FaultInjector::should_fire(FaultSite site) {
  if (!spec_.enabled || site != spec_.site) return false;

  // One decision per opportunity, keyed by where we are — not by when we ran.
  std::uint64_t warp_tag, opportunity;
  if (t_ctx.active) {
    warp_tag = t_ctx.warp;
    opportunity = t_ctx.opportunities++;
  } else {
    warp_tag = kHostTag;
    opportunity = host_opportunities_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t launch = launch_.load(std::memory_order_relaxed);

  SplitMix64 sm(spec_.seed ^
                (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(site) + 1)) ^
                (0xBF58476D1CE4E5B9ULL * (launch + 1)) ^
                (0x94D049BB133111EBULL * (warp_tag + 1)) ^
                (0xD6E8FEB86659FD93ULL * (opportunity + 1)));
  if ((sm.next() >> 11) >= threshold_) return false;

  if (spec_.max_faults != 0) {
    const std::uint64_t used =
        budget_used_.fetch_add(1, std::memory_order_relaxed);
    if (used >= spec_.max_faults) return false;  // campaign budget exhausted
  }
  injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

ScopedFaultInjection::ScopedFaultInjection(FaultInjector& f) {
  FaultInjector* expected = nullptr;
  const bool installed = fault_detail::g_active.compare_exchange_strong(
      expected, &f, std::memory_order_acq_rel);
  WKNNG_CHECK_MSG(installed,
                  "a FaultInjector is already installed (one at a time)");
}

ScopedFaultInjection::~ScopedFaultInjection() {
  fault_detail::g_active.store(nullptr, std::memory_order_release);
}

void throw_injected_fault(FaultSite site) {
  const FaultInjector* f = active_fault_injector();
  std::ostringstream os;
  os << "injected fault at " << fault_site_name(site);
  if (f != nullptr) os << " (spec " << f->spec().to_string() << ")";
  switch (site) {
    case FaultSite::kScratchAlloc: throw ScratchOverflowError(os.str());
    case FaultSite::kWarpAbort: throw WarpAbortError(os.str());
    case FaultSite::kLockTimeout: throw LockTimeoutError(os.str());
    case FaultSite::kLaunchAlloc: throw LaunchAllocError(os.str());
    case FaultSite::kCorruptDistance:
      break;  // corruption returns a NaN, it does not throw
  }
  throw Error(os.str());
}

}  // namespace wknng::simt
