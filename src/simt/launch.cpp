#include "simt/launch.hpp"

namespace wknng::simt {

namespace {

/// One scratch arena per worker thread, reused across launches.
WarpScratch& thread_scratch(std::size_t capacity) {
  thread_local WarpScratch scratch;
  scratch.set_budget(capacity);  // exact budget: small launches must not
                                 // inherit a previous launch's headroom
  return scratch;
}

}  // namespace

void launch_warps(ThreadPool& pool, std::size_t num_warps,
                  const LaunchConfig& config, StatsAccumulator* acc,
                  const std::function<void(Warp&)>& body) {
  pool.parallel_for(num_warps, config.grain, [&](std::size_t warp_id) {
    WarpScratch& scratch = thread_scratch(config.scratch_bytes);
    scratch.reset();
    scratch.reset_peak();

    Stats local;
    Warp warp(static_cast<std::uint32_t>(warp_id), scratch, local);
    body(warp);

    local.warps_executed = 1;
    local.scratch_bytes_peak = scratch.peak_used();
    if (acc != nullptr) acc->flush(local);
  });
}

}  // namespace wknng::simt
