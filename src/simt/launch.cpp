#include "simt/launch.hpp"

#include <optional>

#include "obs/trace.hpp"
#include "simt/fault.hpp"
#include "simt/race.hpp"

namespace wknng::simt {

namespace {

/// One scratch arena per worker thread, reused across launches.
WarpScratch& thread_scratch(std::size_t capacity) {
  thread_local WarpScratch scratch;
  scratch.set_budget(capacity);  // exact budget: small launches must not
                                 // inherit a previous launch's headroom
  return scratch;
}

/// Binds/unbinds the running thread to a warp in the race detector, safely
/// across exceptions thrown by the kernel body.
class WarpBinding {
 public:
  WarpBinding(RaceDetector* det, std::uint32_t warp_id, Stats* stats)
      : det_(det) {
    if (det_ != nullptr) det_->enter_warp(warp_id, stats);
  }
  ~WarpBinding() {
    if (det_ != nullptr) det_->exit_warp();
  }

 private:
  RaceDetector* det_;
};

/// Same, for the fault injector: bound warps draw per-warp fault decisions
/// instead of sharing the host opportunity counter.
class FaultWarpBinding {
 public:
  FaultWarpBinding(FaultInjector* inj, std::uint32_t warp_id) : inj_(inj) {
    if (inj_ != nullptr) inj_->enter_warp(warp_id);
  }
  ~FaultWarpBinding() {
    if (inj_ != nullptr) inj_->exit_warp();
  }

 private:
  FaultInjector* inj_;
};

}  // namespace

void launch_warps(ThreadPool& pool, std::size_t num_warps,
                  const LaunchConfig& config, StatsAccumulator* acc,
                  const std::function<void(Warp&)>& body) {
  RaceDetector* det = active_race_detector();
  if (det != nullptr) det->begin_epoch();  // a launch is a device-wide barrier

  FaultInjector* inj = active_fault_injector();
  if (inj != nullptr) {
    // Register the launch before the allocation fault point: a retried
    // launch gets a new launch index and thus fresh fault decisions.
    inj->begin_launch();
    fault_maybe_throw(FaultSite::kLaunchAlloc);  // "device OOM" at grid setup
  }

  // Same hook shape as the race/fault detectors: one acquire load, and a
  // null tracer keeps the whole block dead.
  obs::Tracer* tr = obs::active_tracer();
  std::uint64_t phase_idx = 0;
  std::uint64_t launch_idx = 0;
  std::optional<obs::Span> launch_span;
  if (tr != nullptr) {
    phase_idx = tr->current_phase();
    launch_idx = tr->next_launch();
    launch_span.emplace(
        tr, config.trace_label != nullptr ? config.trace_label : "launch",
        "launch",
        obs::Tracer::span_id(phase_idx, launch_idx, 0, obs::SpanSalt::kLaunch),
        obs::kTrackLaunch);
    launch_span->arg_num("num_warps", static_cast<std::uint64_t>(num_warps));
  }

  const auto run_one = [&](std::size_t warp_id) {
    WarpScratch& scratch = thread_scratch(config.scratch_bytes);
    scratch.reset();
    scratch.reset_peak();

    // Optional per-warp span: consecutive grains share a warp-group track so
    // wide launches stay readable. The span opens before the body (so its
    // duration covers the kernel) and closes with the warp's stats attached.
    std::optional<obs::Span> ws;
    if (tr != nullptr && tr->warp_spans()) {
      const std::uint64_t group =
          warp_id / (config.grain > 0 ? config.grain : 1);
      ws.emplace(tr, "warp", "warp",
                 obs::Tracer::span_id(phase_idx, launch_idx, warp_id,
                                      obs::SpanSalt::kWarp),
                 obs::kTrackWarpBase +
                     static_cast<std::uint32_t>(group % obs::kNumWarpTracks));
    }

    Stats local;
    Warp warp(static_cast<std::uint32_t>(warp_id), scratch, local);
    {
      WarpBinding binding(det, static_cast<std::uint32_t>(warp_id), &local);
      FaultWarpBinding fault_binding(inj,
                                     static_cast<std::uint32_t>(warp_id));
      body(warp);
    }

    local.warps_executed = 1;
    local.scratch_bytes_peak = scratch.peak_used();

    if (ws) {
      ws->arg_num("warp_id", static_cast<std::uint64_t>(warp_id));
      ws->arg("stats", local.to_json());
      ws->finish();
    }

    if (acc != nullptr) acc->flush(local);
  };

  if (!is_deterministic(config.schedule)) {
    pool.parallel_for(num_warps, config.grain, run_one);
    return;
  }
  // Deterministic replay: the policy's order, one warp at a time on the
  // calling thread. Shadow state still flags lock-discipline violations
  // (detection is access-set based, not interleaving based), and any
  // order-dependence of the kernel's result reproduces on every run.
  for (const std::size_t warp_id :
       schedule_order(num_warps, config.grain, config.schedule)) {
    run_one(warp_id);
  }
}

}  // namespace wknng::simt
