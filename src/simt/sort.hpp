#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "simt/warp.hpp"

namespace wknng::simt {

/// In-register bitonic sort of one value per lane, ascending across lanes
/// (lane 0 ends with the minimum). This is the classic warp-level bitonic
/// network built from __shfl_xor exchanges: log2(32)*(log2(32)+1)/2 = 15
/// compare-exchange stages, each one shuffle plus a predicated min/max.
///
/// The tiled k-NN-set strategy uses it to sort a tile of 32 packed
/// candidates before merging them into a point's k-set.
template <typename T>
inline void bitonic_sort_lanes(Warp& w, Lanes<T>& v) {
  for (int k = 2; k <= kWarpSize; k <<= 1) {
    for (int j = k >> 1; j > 0; j >>= 1) {
      const Lanes<T> partner = w.shfl_xor(v, j);
      for (int l = 0; l < kWarpSize; ++l) {
        const bool lower = (l & j) == 0;
        const bool ascending = (l & k) == 0;
        const bool keep_min = (lower == ascending);
        const T a = v[l];
        const T b = partner[l];
        v[l] = keep_min ? (b < a ? b : a) : (a < b ? b : a);
      }
    }
  }
}

/// Merges a sorted ascending run of 32 lane values into a sorted ascending
/// k-element list, keeping the k smallest. `list` is both input and output;
/// `tmp` must have room for list.size() elements. Duplicate values (the same
/// candidate submitted by two trees) collapse to one entry; when dedup
/// shrinks the merged prefix the tail is filled with `pad` (the "empty slot"
/// sentinel, which must compare greater-or-equal to every real value).
///
/// Modelled cost: the merge-path steps a warp would execute —
/// ceil((k + 32) / 32) collective rounds — are charged to the stats.
template <typename T>
inline void merge_sorted_run(Warp& w, std::span<T> list, const Lanes<T>& run,
                             std::span<T> tmp, T pad) {
  const std::size_t k = list.size();
  w.stats().warp_collectives += (k + kWarpSize * 2 - 1) / kWarpSize;

  std::size_t li = 0;  // cursor in list
  int ri = 0;          // cursor in run
  std::size_t out = 0;
  T prev{};
  bool have_prev = false;
  while (out < k && (li < k || ri < kWarpSize)) {
    T next;
    if (li < k && (ri >= kWarpSize || !(run[ri] < list[li]))) {
      next = list[li++];
    } else {
      next = run[ri++];
    }
    if (have_prev && !(prev < next) && !(next < prev)) continue;  // dedupe equal
    tmp[out++] = next;
    prev = next;
    have_prev = true;
  }
  while (out < k) tmp[out++] = pad;
  for (std::size_t i = 0; i < k; ++i) list[i] = tmp[i];
}

/// Warp-cooperative sort of a scratch array (ascending). On hardware this
/// is a bitonic sort over scratch with depth O(log^2 n); the modelled cost
/// charged to the stats is that collective depth, while the simulator
/// executes an ordinary introsort (the result is identical — sorting is
/// deterministic up to equal elements, and all callers sort totally-ordered
/// distinct-or-interchangeable keys).
template <typename T>
inline void sort_scratch(Warp& w, std::span<T> data) {
  std::size_t depth = 1;
  for (std::size_t n = 1; n < data.size(); n <<= 1) ++depth;
  w.stats().warp_collectives += depth * depth * ((data.size() + kWarpSize - 1) / kWarpSize);
  std::sort(data.begin(), data.end());
}

}  // namespace wknng::simt
