#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wknng::simt {

/// How launch_warps orders warp tasks — the substrate's handle on the one
/// scheduling freedom a GPU has at warp granularity. The default is the
/// performance path; the deterministic policies exist for the schedule
/// fuzzer: replaying one kernel under many interleavings makes races and
/// order-dependent results reproduce on every run instead of once a month.
enum class SchedulePolicy : std::uint8_t {
  /// Dynamic claiming on the thread pool (greedy-then-oldest hardware
  /// scheduling analogue). Fast, nondeterministic interleaving.
  kDynamic,
  /// Warp ids executed in ascending order on the calling thread.
  kSequential,
  /// Warp ids executed in descending order on the calling thread.
  kReverse,
  /// Seeded Fisher–Yates permutation of grain-sized warp blocks, executed
  /// on the calling thread. Different seeds are different interleavings.
  kShuffled,
};

const char* schedule_policy_name(SchedulePolicy p);

/// A concrete schedule choice; `seed` only matters for kShuffled.
struct ScheduleSpec {
  SchedulePolicy policy = SchedulePolicy::kDynamic;
  std::uint64_t seed = 0;
};

inline bool is_deterministic(const ScheduleSpec& s) {
  return s.policy != SchedulePolicy::kDynamic;
}

/// The execution order a deterministic policy induces: warp ids grouped into
/// `grain`-sized blocks of consecutive ids (the scheduling granularity of
/// LaunchConfig), blocks ordered by the policy, then flattened. Requires a
/// deterministic policy.
std::vector<std::size_t> schedule_order(std::size_t num_warps,
                                        std::size_t grain,
                                        const ScheduleSpec& spec);

/// The standard fuzzing sweep: sequential, reverse, and `num_seeds` shuffled
/// permutations (seeds 1..num_seeds). Run a kernel under every returned spec
/// and compare results to surface order dependence.
std::vector<ScheduleSpec> fuzzing_schedules(std::size_t num_seeds);

}  // namespace wknng::simt
