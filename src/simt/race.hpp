#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "simt/stats.hpp"

namespace wknng::simt {

/// Classification of one instrumented global-memory access. Plain accesses
/// participate in the race state machine; atomic accesses are the substrate's
/// linearization points (single hardware instructions on a GPU) and are
/// recorded for accounting only.
enum class AccessKind : std::uint8_t {
  kPlainRead,
  kPlainWrite,
  kAtomicRead,
  kAtomicWrite,
  kAtomicRmw,
};

const char* access_kind_name(AccessKind k);

/// One flagged conflict: two warps touched the same global cell inside the
/// same launch epoch, at least one access was a plain write, and no spin
/// lock was common to both access paths.
struct RaceReport {
  const void* cell = nullptr;
  std::uint64_t epoch = 0;       ///< launch barrier interval of the conflict
  std::uint32_t first_warp = 0;  ///< warp of the cell's first access this epoch
  std::uint32_t second_warp = 0; ///< warp whose access completed the race
  AccessKind second_kind = AccessKind::kPlainRead;
  std::string region;            ///< label of the enclosing buffer, if any

  std::string to_string() const;
};

/// Shadow-state data-race detector for the SIMT substrate — the analogue of
/// TSan/Eraser for the repo's "global memory".
///
/// Model: every instrumented access is an event (warp id, launch epoch,
/// kind, lockset). Kernels separated by a launch barrier cannot race, so
/// shadow state is scoped to one epoch (`begin_epoch` is called by
/// launch_warps). Within an epoch the detector runs the classic Eraser
/// lockset discipline per cell:
///
///   * the first access initialises the cell's candidate lockset with the
///     warp's currently-held spin locks;
///   * every later plain access intersects the candidate lockset;
///   * a race is flagged once the cell has been touched by two different
///     warps, at least one plain write occurred, and the candidate lockset
///     is empty.
///
/// Atomic accesses never race with anything (they model single-instruction
/// atomics); mixed plain/atomic traffic on one cell is the substrate's
/// documented "racy monotonic peek" idiom and is deliberately not flagged.
///
/// Detection is schedule-independent: conflicts are flagged from the access
/// *sets*, not from physically observed interleavings, so even a fully
/// sequential schedule replay (see simt/schedule.hpp) surfaces every
/// lock-discipline violation deterministically.
///
/// At most one detector is installed process-wide at a time (see
/// ScopedRaceDetection); the disabled fast path is a single relaxed load.
class RaceDetector {
 public:
  RaceDetector();
  ~RaceDetector();

  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  /// Starts a new launch-barrier interval; shadow state from earlier epochs
  /// becomes stale (lazily discarded).
  void begin_epoch();

  std::uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Names a buffer range so reports can say "knn_sets" instead of a bare
  /// address. Call before launching kernels that touch the range.
  void label_region(const void* begin, std::size_t bytes, std::string name);

  /// Number of distinct racy cells flagged so far.
  std::size_t race_count() const;
  std::vector<RaceReport> reports() const;

  std::uint64_t plain_events() const {
    return plain_events_.load(std::memory_order_relaxed);
  }
  std::uint64_t atomic_events() const {
    return atomic_events_.load(std::memory_order_relaxed);
  }

  /// Clears shadow state, reports and counters (epoch is preserved).
  void reset();

  // --- Recording entry points (called via the inline hooks below) ---------

  void record(const void* cell, AccessKind kind);
  void record_range(const void* base, std::size_t stride, std::size_t count,
                    AccessKind kind);
  void on_lock_acquire(const void* lock);
  void on_lock_release(const void* lock);

  /// Binds the calling thread to a warp for the duration of one warp task;
  /// `stats` (may be null) receives shadow_events attribution.
  void enter_warp(std::uint32_t warp_id, Stats* stats);
  void exit_warp();

 private:
  struct Shadow {
    std::uint64_t epoch = 0;
    std::uint32_t first_warp = 0;
    bool multi_warp = false;
    bool had_write = false;
    bool reported = false;
    std::vector<const void*> lockset;  ///< candidate lockset (intersection)
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<const void*, Shadow> cells;
  };
  struct Region {
    const char* begin;
    const char* end;
    std::string name;
  };

  static constexpr std::size_t kShards = 64;

  Shard& shard_for(const void* cell);
  std::string region_of(const void* cell) const;

  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> plain_events_{0};
  std::atomic<std::uint64_t> atomic_events_{0};
  std::unique_ptr<Shard[]> shards_;
  mutable std::mutex report_mutex_;
  std::vector<RaceReport> reports_;
  mutable std::mutex region_mutex_;
  std::vector<Region> regions_;
};

namespace race_detail {
/// The process-wide active detector; nullptr (the default) disables every
/// instrumentation hook at the cost of one relaxed load + predicted branch.
inline std::atomic<RaceDetector*> g_active{nullptr};
}  // namespace race_detail

inline RaceDetector* active_race_detector() {
  return race_detail::g_active.load(std::memory_order_acquire);
}

/// Installs `d` as the process-wide detector for the scope's lifetime.
/// Nesting is rejected (one detector at a time keeps attribution unambiguous).
class ScopedRaceDetection {
 public:
  explicit ScopedRaceDetection(RaceDetector& d);
  ~ScopedRaceDetection();

  ScopedRaceDetection(const ScopedRaceDetection&) = delete;
  ScopedRaceDetection& operator=(const ScopedRaceDetection&) = delete;
};

// --- Inline hooks: the only code on the instrumented fast path -------------

inline void race_on_access(const void* cell, AccessKind kind) {
  if (RaceDetector* d = active_race_detector()) d->record(cell, kind);
}

inline void race_on_range(const void* base, std::size_t stride,
                          std::size_t count, AccessKind kind) {
  if (RaceDetector* d = active_race_detector()) {
    d->record_range(base, stride, count, kind);
  }
}

inline void race_on_lock_acquire(const void* lock) {
  if (RaceDetector* d = active_race_detector()) d->on_lock_acquire(lock);
}

inline void race_on_lock_release(const void* lock) {
  if (RaceDetector* d = active_race_detector()) d->on_lock_release(lock);
}

}  // namespace wknng::simt
