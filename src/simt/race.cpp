#include "simt/race.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace wknng::simt {

namespace {

/// Per-thread warp binding. A warp task runs on exactly one pool worker, so
/// its identity and held-lock set are thread-local; host-side accesses (no
/// warp bound) are epoch-separated from kernels and are not recorded.
struct WarpContext {
  bool active = false;
  std::uint32_t warp = 0;
  Stats* stats = nullptr;
  std::vector<const void*> locks;
};

thread_local WarpContext t_ctx;

void intersect_lockset(std::vector<const void*>& target,
                       const std::vector<const void*>& held) {
  std::erase_if(target, [&](const void* l) {
    return std::find(held.begin(), held.end(), l) == held.end();
  });
}

}  // namespace

const char* access_kind_name(AccessKind k) {
  switch (k) {
    case AccessKind::kPlainRead: return "plain-read";
    case AccessKind::kPlainWrite: return "plain-write";
    case AccessKind::kAtomicRead: return "atomic-read";
    case AccessKind::kAtomicWrite: return "atomic-write";
    case AccessKind::kAtomicRmw: return "atomic-rmw";
  }
  return "?";
}

std::string RaceReport::to_string() const {
  std::ostringstream os;
  os << "race on cell " << cell;
  if (!region.empty()) os << " (" << region << ")";
  os << " epoch " << epoch << ": warp " << second_warp << " "
     << access_kind_name(second_kind) << " conflicts with warp " << first_warp
     << " (no common lock)";
  return os.str();
}

RaceDetector::RaceDetector() : shards_(std::make_unique<Shard[]>(kShards)) {}

RaceDetector::~RaceDetector() {
  WKNNG_CHECK_MSG(active_race_detector() != this,
                  "RaceDetector destroyed while still installed");
}

void RaceDetector::begin_epoch() {
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

void RaceDetector::label_region(const void* begin, std::size_t bytes,
                                std::string name) {
  std::lock_guard<std::mutex> lock(region_mutex_);
  const char* b = static_cast<const char*>(begin);
  regions_.push_back({b, b + bytes, std::move(name)});
}

std::size_t RaceDetector::race_count() const {
  std::lock_guard<std::mutex> lock(report_mutex_);
  return reports_.size();
}

std::vector<RaceReport> RaceDetector::reports() const {
  std::lock_guard<std::mutex> lock(report_mutex_);
  return reports_;
}

void RaceDetector::reset() {
  for (std::size_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    shards_[s].cells.clear();
  }
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    reports_.clear();
  }
  plain_events_.store(0, std::memory_order_relaxed);
  atomic_events_.store(0, std::memory_order_relaxed);
}

RaceDetector::Shard& RaceDetector::shard_for(const void* cell) {
  // Cells are >= 4 bytes apart; fold the address down to a shard index.
  const auto addr = reinterpret_cast<std::uintptr_t>(cell);
  return shards_[(addr >> 3) % kShards];
}

std::string RaceDetector::region_of(const void* cell) const {
  std::lock_guard<std::mutex> lock(region_mutex_);
  const char* c = static_cast<const char*>(cell);
  for (const Region& r : regions_) {
    if (c >= r.begin && c < r.end) return r.name;
  }
  return {};
}

void RaceDetector::record(const void* cell, AccessKind kind) {
  WarpContext& ctx = t_ctx;
  if (!ctx.active) return;  // host-side access: epoch-separated, not tracked

  const bool atomic = kind == AccessKind::kAtomicRead ||
                      kind == AccessKind::kAtomicWrite ||
                      kind == AccessKind::kAtomicRmw;
  if (ctx.stats != nullptr) ++ctx.stats->shadow_events;
  if (atomic) {
    // Atomic accesses are linearization points; they are counted but do not
    // enter the lockset state machine (see class comment).
    atomic_events_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  plain_events_.fetch_add(1, std::memory_order_relaxed);

  const bool is_write = kind == AccessKind::kPlainWrite;
  const std::uint64_t ep = epoch_.load(std::memory_order_relaxed);

  Shard& shard = shard_for(cell);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Shadow& s = shard.cells[cell];
  if (s.epoch != ep) {
    // First access this epoch: exclusive state, candidate lockset = held set.
    s.epoch = ep;
    s.first_warp = ctx.warp;
    s.multi_warp = false;
    s.had_write = is_write;
    s.reported = false;
    s.lockset = ctx.locks;
    return;
  }
  if (ctx.warp != s.first_warp) s.multi_warp = true;
  s.had_write = s.had_write || is_write;
  intersect_lockset(s.lockset, ctx.locks);
  if (s.multi_warp && s.had_write && s.lockset.empty() && !s.reported) {
    s.reported = true;
    RaceReport r;
    r.cell = cell;
    r.epoch = ep;
    r.first_warp = s.first_warp;
    r.second_warp = ctx.warp;
    r.second_kind = kind;
    r.region = region_of(cell);
    std::lock_guard<std::mutex> report_lock(report_mutex_);
    reports_.push_back(std::move(r));
  }
}

void RaceDetector::record_range(const void* base, std::size_t stride,
                                std::size_t count, AccessKind kind) {
  const char* p = static_cast<const char*>(base);
  for (std::size_t i = 0; i < count; ++i) record(p + i * stride, kind);
}

void RaceDetector::on_lock_acquire(const void* lock) {
  if (!t_ctx.active) return;
  t_ctx.locks.push_back(lock);
}

void RaceDetector::on_lock_release(const void* lock) {
  if (!t_ctx.active) return;
  auto& locks = t_ctx.locks;
  const auto it = std::find(locks.rbegin(), locks.rend(), lock);
  if (it != locks.rend()) locks.erase(std::next(it).base());
}

void RaceDetector::enter_warp(std::uint32_t warp_id, Stats* stats) {
  t_ctx.active = true;
  t_ctx.warp = warp_id;
  t_ctx.stats = stats;
  t_ctx.locks.clear();
}

void RaceDetector::exit_warp() {
  t_ctx.active = false;
  t_ctx.stats = nullptr;
  t_ctx.locks.clear();
}

ScopedRaceDetection::ScopedRaceDetection(RaceDetector& d) {
  RaceDetector* expected = nullptr;
  const bool installed = race_detail::g_active.compare_exchange_strong(
      expected, &d, std::memory_order_acq_rel);
  WKNNG_CHECK_MSG(installed,
                  "a RaceDetector is already installed (one at a time)");
}

ScopedRaceDetection::~ScopedRaceDetection() {
  race_detail::g_active.store(nullptr, std::memory_order_release);
}

}  // namespace wknng::simt
