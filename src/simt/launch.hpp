#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/thread_pool.hpp"
#include "simt/schedule.hpp"
#include "simt/scratch.hpp"
#include "simt/stats.hpp"
#include "simt/warp.hpp"

namespace wknng::simt {

/// Launch-time configuration of a warp grid — the substrate's analogue of
/// CUDA's <<<grid, block, smem>>> triple, reduced to what a warp-centric
/// kernel needs: how many warps, how much scratch each owns, how many
/// warp tasks one worker claims at a time (scheduling granularity), and
/// which schedule policy orders the warp tasks (see simt/schedule.hpp).
struct LaunchConfig {
  std::size_t scratch_bytes = WarpScratch::kDefaultBytes;
  std::size_t grain = 1;  ///< consecutive warp ids claimed per scheduling step
  ScheduleSpec schedule;  ///< kDynamic (default) or a deterministic replay
  /// Kernel name shown on launch spans when a tracer is active (obs/trace.hpp);
  /// a null label traces as "launch". Must point at a string literal or
  /// storage outliving the launch.
  const char* trace_label = nullptr;
};

/// Executes `body(warp)` for warp ids [0, num_warps) on the thread pool.
///
/// Scheduling model: the pool's workers are the SM's warp slots; warps are
/// claimed dynamically (like greedy-then-oldest hardware scheduling, this
/// absorbs the skewed leaf sizes of an RP forest). Each worker thread owns a
/// persistent WarpScratch (its shared-memory partition) that is reset before
/// every warp task. Per-warp Stats are accumulated locally and flushed once
/// per warp into `acc` (if non-null), so instrumentation does not perturb
/// the measured kernels.
///
/// With a deterministic SchedulePolicy the warps are instead replayed one at
/// a time on the calling thread in the policy's order — the schedule fuzzer:
/// running the same kernel under several policies/seeds surfaces
/// order-dependent results deterministically. Either way, an installed
/// RaceDetector (simt/race.hpp) is notified of the launch barrier and every
/// warp task is bound to it.
///
/// Kernels requiring a device-wide barrier are expressed as consecutive
/// launches, exactly as on real hardware.
void launch_warps(ThreadPool& pool, std::size_t num_warps,
                  const LaunchConfig& config, StatsAccumulator* acc,
                  const std::function<void(Warp&)>& body);

/// Overload with default config.
inline void launch_warps(ThreadPool& pool, std::size_t num_warps,
                         StatsAccumulator* acc,
                         const std::function<void(Warp&)>& body) {
  launch_warps(pool, num_warps, LaunchConfig{}, acc, body);
}

}  // namespace wknng::simt
