#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>

#include "common/error.hpp"

namespace wknng::simt {

/// The failure modes the substrate can inject deterministically — each one
/// models a real hazard of a production GPU k-NN build: shared memory
/// exhaustion, a killed/preempted warp, lock starvation, silent data
/// corruption in a distance unit, and device-allocation failure at launch.
/// Sites are checked by inline hooks (fault_point / fault_maybe_throw /
/// fault_corrupt_distance below) that cost one relaxed load and a predicted
/// branch when no injector is installed — the same contract as the race
/// hooks in simt/race.hpp.
enum class FaultSite : std::uint8_t {
  kScratchAlloc,     ///< WarpScratch::alloc throws ScratchOverflowError
  kWarpAbort,        ///< the kernel body throws WarpAbortError mid-bucket
  kLockTimeout,      ///< SpinLockArray::acquire throws LockTimeoutError
  kCorruptDistance,  ///< a distance kernel returns NaN instead of the result
  kLaunchAlloc,      ///< launch_warps throws LaunchAllocError before running
};

inline constexpr std::size_t kNumFaultSites = 5;

/// All sites, for sweep loops (tests, CI).
constexpr std::array<FaultSite, kNumFaultSites> all_fault_sites() {
  return {FaultSite::kScratchAlloc, FaultSite::kWarpAbort,
          FaultSite::kLockTimeout, FaultSite::kCorruptDistance,
          FaultSite::kLaunchAlloc};
}

const char* fault_site_name(FaultSite s);

/// Parses "scratch-alloc" / "warp-abort" / "lock-timeout" /
/// "corrupt-distance" / "launch-alloc" (throws wknng::Error listing the
/// valid names otherwise).
FaultSite fault_site_from_name(const std::string& name);

/// A concrete injection campaign: which site fails, how often, and the seed
/// every decision derives from. Same shape as ScheduleSpec: a value in
/// BuildParams, overridable from the environment (WKNNG_INJECT_FAULTS).
///
/// Decisions are a pure function of (seed, site, launch index, warp id,
/// per-warp opportunity index) — independent of thread scheduling — so a
/// failure observed once reproduces on every run with the same spec, even
/// under the dynamic schedule. `max_faults` caps the campaign (0 = no cap):
/// with probability 1 and a small cap, exactly the first N opportunities
/// fail, which is how tests pin "fail once, then recover".
struct FaultSpec {
  bool enabled = false;
  FaultSite site = FaultSite::kScratchAlloc;
  std::uint64_t seed = 1;
  double probability = 0.01;
  std::uint64_t max_faults = 0;  ///< 0 = unlimited

  std::string to_string() const;
};

/// Parses "site:seed[:probability[:max_faults]]" — the WKNNG_INJECT_FAULTS
/// format, e.g. "lock-timeout:42:0.05" or "scratch-alloc:7:1:2". The result
/// is enabled. Throws wknng::Error on malformed input.
FaultSpec fault_spec_from_string(const std::string& text);

/// The seeded decision engine. At most one injector is installed
/// process-wide (ScopedFaultInjection); launch_warps registers launches and
/// binds warp tasks, the site hooks ask should_fire(). Thread-safe: warp
/// bindings are thread-local, counters are atomic.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultSpec& spec() const { return spec_; }

  /// Number of faults actually injected so far.
  std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Called by launch_warps at every launch; the launch index feeds the
  /// decision hash so retried launches draw fresh decisions instead of
  /// deterministically re-failing forever.
  void begin_launch() { launch_.fetch_add(1, std::memory_order_relaxed); }

  /// Binds the calling thread to a warp for one warp task (resets the
  /// warp-local opportunity counter).
  void enter_warp(std::uint32_t warp_id);
  void exit_warp();

  /// The decision: does the next opportunity at `site` fail?
  bool should_fire(FaultSite site);

 private:
  FaultSpec spec_;
  std::uint64_t threshold_;  ///< probability as a u64 compare bound
  std::atomic<std::uint64_t> launch_{0};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> budget_used_{0};
  std::atomic<std::uint64_t> host_opportunities_{0};
};

namespace fault_detail {
/// The process-wide active injector; nullptr (the default) disables every
/// hook at the cost of one relaxed load + predicted branch.
inline std::atomic<FaultInjector*> g_active{nullptr};
}  // namespace fault_detail

inline FaultInjector* active_fault_injector() {
  return fault_detail::g_active.load(std::memory_order_acquire);
}

/// Installs `f` as the process-wide injector for the scope's lifetime.
/// Nesting is rejected (one campaign at a time keeps attribution unambiguous).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector& f);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

/// Throws the typed error matching `site` with a message that names the
/// site and seed, so a failure log alone is enough to reproduce the run.
[[noreturn]] void throw_injected_fault(FaultSite site);

// --- Inline hooks: the only code on the instrumented fast path -------------

/// True iff an injector is installed and decides this opportunity fails.
inline bool fault_point(FaultSite site) {
  FaultInjector* f = active_fault_injector();
  return f != nullptr && f->should_fire(site);
}

/// Checks the site and throws its typed error when the decision fires.
inline void fault_maybe_throw(FaultSite site) {
  if (fault_point(site)) throw_injected_fault(site);
}

/// Distance-corruption hook: passes `dist` through, or returns NaN when the
/// kCorruptDistance decision fires (the k-NN-set insert paths reject
/// non-finite candidates, so a corrupted value is dropped and counted, never
/// silently admitted).
inline float fault_corrupt_distance(float dist) {
  if (fault_point(FaultSite::kCorruptDistance)) {
    return std::numeric_limits<float>::quiet_NaN();
  }
  return dist;
}

}  // namespace wknng::simt
