#pragma once

#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

namespace wknng::simt {

/// Work-unit counters for one warp (or an aggregate of many warps).
///
/// The substrate runs on a CPU, so wall-clock alone cannot be compared
/// directly against GPU numbers. These counters capture the quantities that
/// *do* determine GPU performance — distance evaluations, global-memory
/// traffic, atomic contention — and are the basis of the work-accounting
/// experiment (Tab. 3 in DESIGN.md).
struct Stats {
  std::uint64_t distance_evals = 0;   ///< full point-to-point distance computations
  std::uint64_t flops = 0;            ///< floating-point ops in distance kernels
  std::uint64_t global_reads = 0;     ///< bytes read from "global memory"
  std::uint64_t global_writes = 0;    ///< bytes written to "global memory"
  std::uint64_t atomic_ops = 0;       ///< completed atomic RMW operations
  std::uint64_t cas_retries = 0;      ///< failed CAS attempts (contention measure)
  std::uint64_t lock_acquires = 0;    ///< spin-lock acquisitions
  std::uint64_t lock_spins = 0;       ///< failed lock attempts while spinning
  std::uint64_t warp_collectives = 0; ///< shuffles/ballots/reductions/scans executed
  std::uint64_t scratch_bytes_peak = 0; ///< max per-warp scratch footprint observed
  std::uint64_t warps_executed = 0;   ///< number of warp tasks accumulated here
  std::uint64_t shadow_events = 0;    ///< race-detector accesses recorded (0 unless
                                      ///< a detector is installed — see simt/race.hpp)
  std::uint64_t nonfinite_dropped = 0; ///< candidates rejected for NaN/inf distance
                                       ///< (corrupt input or injected corruption)

  Stats& operator+=(const Stats& o) {
    distance_evals += o.distance_evals;
    flops += o.flops;
    global_reads += o.global_reads;
    global_writes += o.global_writes;
    atomic_ops += o.atomic_ops;
    cas_retries += o.cas_retries;
    lock_acquires += o.lock_acquires;
    lock_spins += o.lock_spins;
    warp_collectives += o.warp_collectives;
    scratch_bytes_peak = scratch_bytes_peak > o.scratch_bytes_peak
                             ? scratch_bytes_peak
                             : o.scratch_bytes_peak;
    warps_executed += o.warps_executed;
    shadow_events += o.shadow_events;
    nonfinite_dropped += o.nonfinite_dropped;
    return *this;
  }

  /// JSON object with one key per counter. The conditional counters
  /// (`shadow_events`, `nonfinite_dropped`) appear only when non-zero,
  /// matching operator<< — a clean run's stats dump stays free of
  /// debugging-machinery noise.
  std::string to_json() const {
    std::ostringstream os;
    os << "{\"distance_evals\":" << distance_evals << ",\"flops\":" << flops
       << ",\"global_reads\":" << global_reads
       << ",\"global_writes\":" << global_writes
       << ",\"atomic_ops\":" << atomic_ops
       << ",\"cas_retries\":" << cas_retries
       << ",\"lock_acquires\":" << lock_acquires
       << ",\"lock_spins\":" << lock_spins
       << ",\"warp_collectives\":" << warp_collectives
       << ",\"scratch_bytes_peak\":" << scratch_bytes_peak
       << ",\"warps_executed\":" << warps_executed;
    if (shadow_events != 0) os << ",\"shadow_events\":" << shadow_events;
    if (nonfinite_dropped != 0) {
      os << ",\"nonfinite_dropped\":" << nonfinite_dropped;
    }
    os << "}";
    return os.str();
  }

  /// Inverse of to_json for flat Stats objects: scans for each known
  /// `"key":value` pair; absent keys stay zero. Tolerates whitespace after
  /// the colon but is not a general JSON parser — it exists for round-trip
  /// tests and tool-side ingestion of our own output.
  static Stats from_json(const std::string& json) {
    Stats s;
    const auto field = [&json](const char* key) -> std::uint64_t {
      const std::string needle = std::string("\"") + key + "\":";
      const std::size_t pos = json.find(needle);
      if (pos == std::string::npos) return 0;
      const char* p = json.c_str() + pos + needle.size();
      while (*p == ' ') ++p;
      return std::strtoull(p, nullptr, 10);
    };
    s.distance_evals = field("distance_evals");
    s.flops = field("flops");
    s.global_reads = field("global_reads");
    s.global_writes = field("global_writes");
    s.atomic_ops = field("atomic_ops");
    s.cas_retries = field("cas_retries");
    s.lock_acquires = field("lock_acquires");
    s.lock_spins = field("lock_spins");
    s.warp_collectives = field("warp_collectives");
    s.scratch_bytes_peak = field("scratch_bytes_peak");
    s.warps_executed = field("warps_executed");
    s.shadow_events = field("shadow_events");
    s.nonfinite_dropped = field("nonfinite_dropped");
    return s;
  }

  friend std::ostream& operator<<(std::ostream& os, const Stats& s) {
    os << "dist_evals=" << s.distance_evals << " flops=" << s.flops
       << " gmem_rd=" << s.global_reads << " gmem_wr=" << s.global_writes
       << " atomics=" << s.atomic_ops << " cas_retry=" << s.cas_retries
       << " locks=" << s.lock_acquires << " lock_spin=" << s.lock_spins
       << " collectives=" << s.warp_collectives
       << " warps=" << s.warps_executed;
    if (s.shadow_events != 0) os << " shadow=" << s.shadow_events;
    if (s.nonfinite_dropped != 0) os << " nonfinite=" << s.nonfinite_dropped;
    return os;
  }
};

/// Work done between two cumulative snapshots: every additive counter is
/// subtracted, while `scratch_bytes_peak` (a max-merge, not a sum) is taken
/// from `after`. This is how trace spans attribute Stats to the interval
/// they cover.
inline Stats stats_delta(const Stats& after, const Stats& before) {
  Stats d;
  d.distance_evals = after.distance_evals - before.distance_evals;
  d.flops = after.flops - before.flops;
  d.global_reads = after.global_reads - before.global_reads;
  d.global_writes = after.global_writes - before.global_writes;
  d.atomic_ops = after.atomic_ops - before.atomic_ops;
  d.cas_retries = after.cas_retries - before.cas_retries;
  d.lock_acquires = after.lock_acquires - before.lock_acquires;
  d.lock_spins = after.lock_spins - before.lock_spins;
  d.warp_collectives = after.warp_collectives - before.warp_collectives;
  d.scratch_bytes_peak = after.scratch_bytes_peak;
  d.warps_executed = after.warps_executed - before.warps_executed;
  d.shadow_events = after.shadow_events - before.shadow_events;
  d.nonfinite_dropped = after.nonfinite_dropped - before.nonfinite_dropped;
  return d;
}

/// Thread-safe sink that warp tasks flush their local Stats into at the end
/// of their lifetime. One mutex-protected flush per warp task keeps the hot
/// path (plain member increments on the local Stats) contention-free.
class StatsAccumulator {
 public:
  void flush(const Stats& s) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_ += s;
  }

  Stats total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    total_ = Stats{};
  }

 private:
  mutable std::mutex mutex_;
  Stats total_;
};

}  // namespace wknng::simt
