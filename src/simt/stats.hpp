#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>

namespace wknng::simt {

/// Work-unit counters for one warp (or an aggregate of many warps).
///
/// The substrate runs on a CPU, so wall-clock alone cannot be compared
/// directly against GPU numbers. These counters capture the quantities that
/// *do* determine GPU performance — distance evaluations, global-memory
/// traffic, atomic contention — and are the basis of the work-accounting
/// experiment (Tab. 3 in DESIGN.md).
struct Stats {
  std::uint64_t distance_evals = 0;   ///< full point-to-point distance computations
  std::uint64_t flops = 0;            ///< floating-point ops in distance kernels
  std::uint64_t global_reads = 0;     ///< bytes read from "global memory"
  std::uint64_t global_writes = 0;    ///< bytes written to "global memory"
  std::uint64_t atomic_ops = 0;       ///< completed atomic RMW operations
  std::uint64_t cas_retries = 0;      ///< failed CAS attempts (contention measure)
  std::uint64_t lock_acquires = 0;    ///< spin-lock acquisitions
  std::uint64_t lock_spins = 0;       ///< failed lock attempts while spinning
  std::uint64_t warp_collectives = 0; ///< shuffles/ballots/reductions/scans executed
  std::uint64_t scratch_bytes_peak = 0; ///< max per-warp scratch footprint observed
  std::uint64_t warps_executed = 0;   ///< number of warp tasks accumulated here
  std::uint64_t shadow_events = 0;    ///< race-detector accesses recorded (0 unless
                                      ///< a detector is installed — see simt/race.hpp)
  std::uint64_t nonfinite_dropped = 0; ///< candidates rejected for NaN/inf distance
                                       ///< (corrupt input or injected corruption)

  Stats& operator+=(const Stats& o) {
    distance_evals += o.distance_evals;
    flops += o.flops;
    global_reads += o.global_reads;
    global_writes += o.global_writes;
    atomic_ops += o.atomic_ops;
    cas_retries += o.cas_retries;
    lock_acquires += o.lock_acquires;
    lock_spins += o.lock_spins;
    warp_collectives += o.warp_collectives;
    scratch_bytes_peak = scratch_bytes_peak > o.scratch_bytes_peak
                             ? scratch_bytes_peak
                             : o.scratch_bytes_peak;
    warps_executed += o.warps_executed;
    shadow_events += o.shadow_events;
    nonfinite_dropped += o.nonfinite_dropped;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, const Stats& s) {
    os << "dist_evals=" << s.distance_evals << " flops=" << s.flops
       << " gmem_rd=" << s.global_reads << " gmem_wr=" << s.global_writes
       << " atomics=" << s.atomic_ops << " cas_retry=" << s.cas_retries
       << " locks=" << s.lock_acquires << " lock_spin=" << s.lock_spins
       << " collectives=" << s.warp_collectives
       << " warps=" << s.warps_executed;
    if (s.shadow_events != 0) os << " shadow=" << s.shadow_events;
    if (s.nonfinite_dropped != 0) os << " nonfinite=" << s.nonfinite_dropped;
    return os;
  }
};

/// Thread-safe sink that warp tasks flush their local Stats into at the end
/// of their lifetime. One mutex-protected flush per warp task keeps the hot
/// path (plain member increments on the local Stats) contention-free.
class StatsAccumulator {
 public:
  void flush(const Stats& s) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_ += s;
  }

  Stats total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    total_ = Stats{};
  }

 private:
  mutable std::mutex mutex_;
  Stats total_;
};

}  // namespace wknng::simt
