#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

#include "common/error.hpp"
#include "simt/fault.hpp"
#include "simt/race.hpp"
#include "simt/stats.hpp"

namespace wknng::simt {

/// A "global memory" allocation: plain host memory dressed in the device
/// vocabulary. The wrapper exists so kernel code reads like device code and
/// so concurrent regions are explicit — any cell that multiple warps may
/// touch concurrently must be accessed through the atomic_* helpers below,
/// which are implemented with std::atomic_ref (C++20) on the raw storage.
template <typename T>
class DeviceBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  DeviceBuffer() = default;

  explicit DeviceBuffer(std::size_t n, T fill = T{}) { assign(n, fill); }

  void assign(std::size_t n, T fill = T{}) {
    size_ = n;
    data_ = std::make_unique<T[]>(n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = fill;
  }

  /// Grows to n elements, preserving the existing prefix; new cells get
  /// `fill`. Must not race with concurrent access (host-side reallocation).
  void resize_preserving(std::size_t n, T fill = T{}) {
    auto next = std::make_unique<T[]>(n);
    const std::size_t keep = std::min(size_, n);
    for (std::size_t i = 0; i < keep; ++i) next[i] = data_[i];
    for (std::size_t i = keep; i < n; ++i) next[i] = fill;
    data_ = std::move(next);
    size_ = n;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  std::span<T> span() { return {data_.get(), size_}; }
  std::span<const T> span() const { return {data_.get(), size_}; }

  std::span<T> subspan(std::size_t offset, std::size_t n) {
    return span().subspan(offset, n);
  }
  std::span<const T> subspan(std::size_t offset, std::size_t n) const {
    return span().subspan(offset, n);
  }

 private:
  std::size_t size_ = 0;
  std::unique_ptr<T[]> data_;
};

// --- Plain global-memory operations ----------------------------------------
// Instrumented counterparts of an ordinary load/store. When no RaceDetector
// is installed (the default) each hook is one relaxed load of a global plus
// a predicted-not-taken branch — kernels pay nothing measurable. When a
// detector is installed every access feeds the shadow state, so lock-
// discipline violations between warps are flagged (see simt/race.hpp).

/// Plain (non-atomic) load of a global cell. Racing with a concurrent plain
/// write IS a data race and will be flagged by the detector; use the
/// atomic_* helpers for intentionally concurrent cells.
template <typename T>
inline T plain_load(const T& cell) {
  race_on_access(&cell, AccessKind::kPlainRead);
  return cell;
}

/// Plain (non-atomic) store to a global cell.
template <typename T>
inline void plain_store(T& cell, T value) {
  race_on_access(&cell, AccessKind::kPlainWrite);
  cell = value;
}

/// Declares a plain read of `count` consecutive cells starting at `base`
/// (for block transfers where per-element accessor calls would obscure the
/// kernel). The data itself is accessed by the caller.
template <typename T>
inline void plain_read_range(const T* base, std::size_t count) {
  race_on_range(base, sizeof(T), count, AccessKind::kPlainRead);
}

/// Declares a plain write of `count` consecutive cells starting at `base`.
template <typename T>
inline void plain_write_range(T* base, std::size_t count) {
  race_on_range(base, sizeof(T), count, AccessKind::kPlainWrite);
}

// --- Atomic global-memory operations ---------------------------------------
// Every helper takes the warp's Stats so contention is measurable; the
// cas_retries counter is the substrate's proxy for the serialisation that
// atomic conflicts cause on real hardware.

/// Relaxed atomic load (CUDA: plain global load of a volatile cell).
template <typename T>
inline T atomic_load(const T& cell) {
  race_on_access(&cell, AccessKind::kAtomicRead);
  return std::atomic_ref<T>(const_cast<T&>(cell)).load(std::memory_order_relaxed);
}

/// Relaxed atomic store.
template <typename T>
inline void atomic_store(T& cell, T value) {
  race_on_access(&cell, AccessKind::kAtomicWrite);
  std::atomic_ref<T>(cell).store(value, std::memory_order_relaxed);
}

/// Atomic fetch-add (CUDA atomicAdd).
template <typename T>
inline T atomic_add(T& cell, T delta, Stats& stats) {
  ++stats.atomic_ops;
  race_on_access(&cell, AccessKind::kAtomicRmw);
  return std::atomic_ref<T>(cell).fetch_add(delta, std::memory_order_relaxed);
}

/// Single compare-and-swap attempt (CUDA atomicCAS). On failure `expected`
/// is updated with the observed value and cas_retries is bumped.
inline bool atomic_cas(std::uint64_t& cell, std::uint64_t& expected,
                       std::uint64_t desired, Stats& stats) {
  ++stats.atomic_ops;
  race_on_access(&cell, AccessKind::kAtomicRmw);
  const bool ok = std::atomic_ref<std::uint64_t>(cell).compare_exchange_strong(
      expected, desired, std::memory_order_acq_rel, std::memory_order_relaxed);
  if (!ok) ++stats.cas_retries;
  return ok;
}

/// Atomic minimum on a 64-bit packed candidate (CUDA atomicMin on ull).
/// Returns the previous value. Loops CAS until the cell is <= `value`.
inline std::uint64_t atomic_min_u64(std::uint64_t& cell, std::uint64_t value,
                                    Stats& stats) {
  std::uint64_t observed = atomic_load(cell);
  while (observed > value) {
    if (atomic_cas(cell, observed, value, stats)) return observed;
  }
  ++stats.atomic_ops;  // the final (read-only, winning-less) probe
  return observed;
}

/// Array of per-element spin locks — the "basic" and "tiled" strategies use
/// one lock per point to serialise k-NN-set updates, mimicking the classic
/// GPU idiom of a global lock word grabbed by lane 0 of a warp.
class SpinLockArray {
 public:
  SpinLockArray() = default;

  explicit SpinLockArray(std::size_t n) { assign(n); }

  void assign(std::size_t n) {
    size_ = n;
    locks_ = std::make_unique<std::atomic<std::uint32_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i) {
      locks_[i].store(0, std::memory_order_relaxed);
    }
  }

  std::size_t size() const { return size_; }

  /// Spins until lock i is acquired; every failed attempt is recorded. The
  /// acquisition is reported to the race detector's lockset machinery. The
  /// kLockTimeout fault site fires before the lock is taken, so an injected
  /// LockTimeoutError never leaves a lock held.
  void acquire(std::size_t i, Stats& stats) {
    fault_maybe_throw(FaultSite::kLockTimeout);
    ++stats.lock_acquires;
    std::uint32_t expected = 0;
    while (!locks_[i].compare_exchange_weak(expected, 1,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
      ++stats.lock_spins;
      expected = 0;
    }
    race_on_lock_acquire(&locks_[i]);
  }

  /// Non-blocking attempt; returns true on success.
  bool try_acquire(std::size_t i, Stats& stats) {
    std::uint32_t expected = 0;
    if (locks_[i].compare_exchange_strong(expected, 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
      ++stats.lock_acquires;
      race_on_lock_acquire(&locks_[i]);
      return true;
    }
    ++stats.lock_spins;
    return false;
  }

  void release(std::size_t i) {
    race_on_lock_release(&locks_[i]);
    locks_[i].store(0, std::memory_order_release);
  }

 private:
  std::size_t size_ = 0;
  std::unique_ptr<std::atomic<std::uint32_t>[]> locks_;
};

}  // namespace wknng::simt
