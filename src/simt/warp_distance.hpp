#pragma once

#include <cstdint>
#include <span>

#include "simt/fault.hpp"
#include "simt/warp.hpp"

namespace wknng::simt {

/// Dimension-parallel squared Euclidean distance: the 32 lanes stride the
/// `dim` coordinates of one point pair and the partial sums are combined by
/// a warp reduction. This is the access pattern the paper's leaf kernel
/// uses when a warp examines one candidate pair at a time: consecutive lanes
/// read consecutive floats, i.e. perfectly coalesced global loads.
inline float warp_l2_dims(Warp& w, std::span<const float> x,
                          std::span<const float> y) {
  const std::size_t dim = x.size();
  Lanes<float> partial{};
  for (std::size_t d = 0; d < dim; ++d) {
    const float diff = x[d] - y[d];
    partial[d & (kWarpSize - 1)] += diff * diff;
  }
  Stats& s = w.stats();
  ++s.distance_evals;
  s.flops += 3 * dim + kWarpSize;
  w.count_read(2 * dim * sizeof(float));
  return fault_corrupt_distance(w.reduce_sum(partial));
}

/// Candidate-parallel squared Euclidean distances: each active lane owns one
/// candidate row and computes its full distance to the query `q`. The query
/// is register/scratch-resident (read once), so global traffic is one row
/// per active lane — the access pattern of the tiled strategy, where a warp
/// scores a whole tile of candidates against one point.
///
/// `row(id)` must return the coordinates of point `id`; `active[l]` masks
/// lanes without a candidate.
template <typename RowFn>
inline Lanes<float> warp_l2_batch(Warp& w, std::span<const float> q,
                                  const Lanes<std::uint32_t>& ids,
                                  const Lanes<bool>& active, RowFn&& row) {
  const std::size_t dim = q.size();
  Lanes<float> out{};
  std::uint64_t n_active = 0;
  for (int l = 0; l < kWarpSize; ++l) {
    if (!active[l]) continue;
    ++n_active;
    std::span<const float> r = row(ids[l]);
    float acc = 0.0f;
    for (std::size_t d = 0; d < dim; ++d) {
      const float diff = q[d] - r[d];
      acc += diff * diff;
    }
    out[l] = fault_corrupt_distance(acc);
  }
  Stats& s = w.stats();
  s.distance_evals += n_active;
  s.flops += 3 * dim * n_active;
  // Query row is charged once (scratch-resident), candidate rows per lane.
  w.count_read((n_active + 1) * dim * sizeof(float));
  return out;
}

}  // namespace wknng::simt
