#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/kernels.hpp"
#include "kernels/sq8.hpp"
#include "simt/fault.hpp"
#include "simt/warp.hpp"

namespace wknng::simt {

// The distance arithmetic itself is delegated to the runtime-dispatched CPU
// kernels (src/kernels): the 32-lane dimension striding of the SIMT model
// maps onto SIMD lanes, and the scalar/strict backend reproduces the original
// lane-strided accumulation bit-exactly. The warp layer keeps owning the
// *accounting*: distance_evals / flops / global_reads / warp_collectives are
// charged exactly as the modeled hardware kernel would incur them, and the
// fault-injection hook fires once per produced distance, as before.
static_assert(kWarpSize == 32,
              "kernels' strict scalar backend models a 32-lane warp; "
              "update kernels_scalar.cpp if the warp width changes");

/// Dimension-parallel squared Euclidean distance: the 32 lanes stride the
/// `dim` coordinates of one point pair and the partial sums are combined by
/// a warp reduction. This is the access pattern the paper's leaf kernel
/// uses when a warp examines one candidate pair at a time: consecutive lanes
/// read consecutive floats, i.e. perfectly coalesced global loads.
inline float warp_l2_dims(Warp& w, std::span<const float> x,
                          std::span<const float> y) {
  const std::size_t dim = x.size();
  const float dist = kernels::ops().l2_one(x.data(), y.data(), dim);
  Stats& s = w.stats();
  ++s.distance_evals;
  s.flops += 3 * dim + kWarpSize;
  // The modeled warp combines its lane partials with one 5-step shuffle
  // reduction; charge it even though the SIMD kernel folded it into hsum.
  s.warp_collectives += 5;
  w.count_read(2 * dim * sizeof(float));
  return fault_corrupt_distance(dist);
}

/// Candidate-parallel squared Euclidean distances: each active lane owns one
/// candidate row and computes its full distance to the query `q`. The query
/// is register/scratch-resident (read once), so global traffic is one row
/// per active lane — the access pattern of the tiled strategy, where a warp
/// scores a whole tile of candidates against one point.
///
/// `row(id)` must return the coordinates of point `id`; `active[l]` masks
/// lanes without a candidate. `norms_by_id`, when non-empty, is a dataset-
/// wide squared-norm cache indexed by point id that the SIMD backends use
/// for the norm-trick decomposition (the strict backend ignores it).
template <typename RowFn>
inline Lanes<float> warp_l2_batch(Warp& w, std::span<const float> q,
                                  const Lanes<std::uint32_t>& ids,
                                  const Lanes<bool>& active, RowFn&& row,
                                  std::span<const float> norms_by_id = {}) {
  const std::size_t dim = q.size();
  const float* rows[kWarpSize];
  float lane_norms[kWarpSize];
  float dists[kWarpSize];
  std::uint64_t n_active = 0;
  for (int l = 0; l < kWarpSize; ++l) {
    if (!active[l]) continue;
    std::span<const float> r = row(ids[l]);
    rows[n_active] = r.data();
    if (!norms_by_id.empty()) lane_norms[n_active] = norms_by_id[ids[l]];
    ++n_active;
  }
  Lanes<float> out{};
  if (n_active > 0) {
    kernels::ops().l2_batch(q.data(), rows,
                            norms_by_id.empty() ? nullptr : lane_norms,
                            n_active, dim, dists);
    std::uint64_t k = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (!active[l]) continue;
      out[l] = fault_corrupt_distance(dists[k++]);
    }
  }
  Stats& s = w.stats();
  s.distance_evals += n_active;
  s.flops += 3 * dim * n_active;
  // Candidate rows are charged per active lane; the scratch-resident query
  // row is charged once — and only when the warp actually read it (a fully
  // inactive mask touches no memory at all).
  if (n_active > 0) {
    w.count_read((n_active + 1) * dim * sizeof(float));
  }
  return out;
}

// --- SQ8 compressed-tier variants ------------------------------------------
// Same shapes against u8 code rows (kernels/sq8.hpp): the fp32 query side is
// prepared once per point (one full-precision row read, charged here), after
// which every candidate distance streams 1 byte/dim instead of 4 — the
// bandwidth lever of the compressed storage tier. The fault hook still fires
// once per produced distance.

/// Prepares `query` for asymmetric scoring and charges the one fp32 row read
/// (plus the centering/pre-scale arithmetic) the modeled warp performs to
/// stage the query in registers/scratch.
inline kernels::Sq8Query warp_sq8_prepare(Warp& w, std::span<const float> query,
                                          const kernels::Sq8Codebook& codebook,
                                          std::vector<float>& w_buf) {
  const std::size_t dim = query.size();
  w.stats().flops += 3 * dim;
  w.count_read(dim * sizeof(float));
  return kernels::sq8_prepare(query, codebook, w_buf);
}

/// Pair shape: one prepared query against one code row (the sq8 analogue of
/// warp_l2_dims). Only the code row is charged — the query was charged by
/// warp_sq8_prepare.
inline float warp_sq8_l2_dims(Warp& w, const kernels::Sq8Query& q,
                              std::span<const std::uint8_t> code) {
  const float dist = kernels::ops().sq8_l2_one(q, code.data());
  Stats& s = w.stats();
  ++s.distance_evals;
  // Dequantize (mul+add) + diff + square-accumulate per dimension, then the
  // same 5-step shuffle reduction as the fp32 pair kernel.
  s.flops += 4 * q.dim + kWarpSize;
  s.warp_collectives += 5;
  w.count_read(q.dim * sizeof(std::uint8_t));
  return fault_corrupt_distance(dist);
}

/// Candidate-parallel shape: each active lane owns one code row (the sq8
/// analogue of warp_l2_batch). `code(id)` must return point id's code row;
/// `terms_by_id`, when non-empty, is the dataset-wide code-term cache
/// (kernels::sq8_code_terms) the SIMD backends use for the expanded form
/// (the strict backend ignores it).
template <typename CodeFn>
inline Lanes<float> warp_sq8_l2_batch(Warp& w, const kernels::Sq8Query& q,
                                      const Lanes<std::uint32_t>& ids,
                                      const Lanes<bool>& active, CodeFn&& code,
                                      std::span<const float> terms_by_id = {}) {
  const std::uint8_t* rows[kWarpSize];
  float lane_terms[kWarpSize];
  float dists[kWarpSize];
  std::uint64_t n_active = 0;
  for (int l = 0; l < kWarpSize; ++l) {
    if (!active[l]) continue;
    std::span<const std::uint8_t> r = code(ids[l]);
    rows[n_active] = r.data();
    if (!terms_by_id.empty()) lane_terms[n_active] = terms_by_id[ids[l]];
    ++n_active;
  }
  Lanes<float> out{};
  if (n_active > 0) {
    kernels::ops().sq8_l2_batch(q, rows,
                                terms_by_id.empty() ? nullptr : lane_terms,
                                n_active, dists);
    std::uint64_t k = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (!active[l]) continue;
      out[l] = fault_corrupt_distance(dists[k++]);
    }
  }
  Stats& s = w.stats();
  s.distance_evals += n_active;
  s.flops += 4 * q.dim * n_active;
  // Code rows are 1 byte/dim; the prepared query is register/scratch
  // resident and was charged at preparation time.
  if (n_active > 0) {
    w.count_read(n_active * q.dim * sizeof(std::uint8_t));
  }
  return out;
}

}  // namespace wknng::simt
