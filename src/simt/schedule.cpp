#include "simt/schedule.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wknng::simt {

const char* schedule_policy_name(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::kDynamic: return "dynamic";
    case SchedulePolicy::kSequential: return "sequential";
    case SchedulePolicy::kReverse: return "reverse";
    case SchedulePolicy::kShuffled: return "shuffled";
  }
  return "?";
}

std::vector<std::size_t> schedule_order(std::size_t num_warps,
                                        std::size_t grain,
                                        const ScheduleSpec& spec) {
  WKNNG_CHECK_MSG(is_deterministic(spec),
                  "schedule_order needs a deterministic policy");
  grain = std::max<std::size_t>(1, grain);
  const std::size_t num_blocks = (num_warps + grain - 1) / grain;
  std::vector<std::size_t> blocks(num_blocks);
  std::iota(blocks.begin(), blocks.end(), std::size_t{0});

  switch (spec.policy) {
    case SchedulePolicy::kSequential:
      break;
    case SchedulePolicy::kReverse:
      std::reverse(blocks.begin(), blocks.end());
      break;
    case SchedulePolicy::kShuffled: {
      Rng rng(spec.seed, /*stream=*/0x5C4EDULL);
      for (std::size_t i = num_blocks; i > 1; --i) {
        const std::size_t j = rng.next_below(i);
        std::swap(blocks[i - 1], blocks[j]);
      }
      break;
    }
    case SchedulePolicy::kDynamic:
      break;  // unreachable (checked above)
  }

  std::vector<std::size_t> order;
  order.reserve(num_warps);
  for (const std::size_t b : blocks) {
    const std::size_t begin = b * grain;
    const std::size_t end = std::min(begin + grain, num_warps);
    for (std::size_t id = begin; id < end; ++id) order.push_back(id);
  }
  return order;
}

std::vector<ScheduleSpec> fuzzing_schedules(std::size_t num_seeds) {
  std::vector<ScheduleSpec> specs;
  specs.push_back({SchedulePolicy::kSequential, 0});
  specs.push_back({SchedulePolicy::kReverse, 0});
  for (std::size_t s = 1; s <= num_seeds; ++s) {
    specs.push_back({SchedulePolicy::kShuffled, s});
  }
  return specs;
}

}  // namespace wknng::simt
