#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "simt/fault.hpp"

namespace wknng::simt {

/// Per-warp scratch arena — the substrate's model of the shared-memory
/// partition a resident warp owns on a GPU SM.
///
/// Kernels allocate typed spans out of it with `alloc<T>(n)` and must call
/// `reset()` between logical phases (allocation is bump-pointer, there is no
/// free). Capacity defaults to 48 KiB, the per-SM shared-memory size of the
/// Pascal/Volta-class GPUs contemporary with the paper; kernels that need a
/// different configuration call `require()` up front, which mirrors CUDA's
/// dynamic shared-memory launch parameter.
///
/// The arena is reused across warp tasks on the same worker thread, so
/// allocation costs nothing at steady state.
class WarpScratch {
 public:
  static constexpr std::size_t kDefaultBytes = 48 * 1024;

  explicit WarpScratch(std::size_t capacity_bytes = kDefaultBytes)
      : buffer_(capacity_bytes), limit_(capacity_bytes) {}

  /// Logical capacity: the launch-configured shared-memory budget. Physical
  /// storage may be larger (arenas are reused across launches and never
  /// shrink), but allocations and capacity() always respect the budget —
  /// otherwise a small-budget experiment would silently borrow space from a
  /// previous launch.
  std::size_t capacity() const { return limit_; }
  std::size_t used() const { return used_; }
  std::size_t peak_used() const { return peak_used_; }

  /// Grows the budget (and storage) to at least `capacity_bytes`.
  void require(std::size_t capacity_bytes) {
    if (buffer_.size() < capacity_bytes) buffer_.resize(capacity_bytes);
    if (limit_ < capacity_bytes) limit_ = capacity_bytes;
  }

  /// Sets the budget exactly (launch-time configuration); storage grows if
  /// needed but is kept when the budget shrinks.
  void set_budget(std::size_t capacity_bytes) {
    if (buffer_.size() < capacity_bytes) buffer_.resize(capacity_bytes);
    limit_ = capacity_bytes;
  }

  /// Bump-allocates n elements of T, aligned to alignof(T). Overflowing the
  /// budget throws ScratchOverflowError (a typed wknng::Error) so the
  /// recovery layer can retry the bucket with a cheaper strategy; the
  /// kScratchAlloc fault site simulates the same failure.
  template <typename T>
  std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_maybe_throw(FaultSite::kScratchAlloc);
    const std::size_t align = alignof(T);
    std::size_t offset = (used_ + align - 1) / align * align;
    const std::size_t bytes = n * sizeof(T);
    if (offset + bytes > limit_) {
      std::ostringstream os;
      os << "scratch overflow: want " << bytes << "B at offset " << offset
         << ", capacity " << limit_ << "B";
      throw ScratchOverflowError(os.str());
    }
    used_ = offset + bytes;
    if (used_ > peak_used_) peak_used_ = used_;
    return {reinterpret_cast<T*>(buffer_.data() + offset), n};
  }

  /// Releases all allocations (contents become indeterminate).
  void reset() { used_ = 0; }

  /// Stack-discipline partial release: `release(mark())` undoes every alloc
  /// made after the mark. Lets helpers take temporary scratch without
  /// growing the caller's footprint.
  std::size_t mark() const { return used_; }
  void release(std::size_t m) { used_ = m; }

  /// Clears the peak-usage watermark (e.g. between benchmark repetitions).
  void reset_peak() { peak_used_ = used_; }

 private:
  std::vector<std::byte> buffer_;
  std::size_t limit_ = 0;
  std::size_t used_ = 0;
  std::size_t peak_used_ = 0;
};

}  // namespace wknng::simt
