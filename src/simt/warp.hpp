#pragma once

#include <array>
#include <cstdint>
#include <utility>

#include "simt/race.hpp"
#include "simt/scratch.hpp"
#include "simt/stats.hpp"

namespace wknng::simt {

/// Number of lanes per warp, matching NVIDIA hardware. The value is a
/// compile-time constant throughout: every collective below is a fixed-size
/// loop the compiler can unroll/vectorise.
inline constexpr int kWarpSize = 32;

/// Per-lane register file slice: element l is lane l's private value.
/// SIMT kernels in this repo are written in "lane-array style": instead of
/// 32 hardware threads in lockstep, one CPU task owns the whole warp and
/// manipulates Lanes<T> values, with warp collectives as explicit functions.
/// This preserves warp-synchronous semantics exactly (there is no intra-warp
/// nondeterminism) and makes the kernels unit-testable.
template <typename T>
using Lanes = std::array<T, kWarpSize>;

/// Applies f(lane) for every lane in order — the SIMT body of a warp-uniform
/// region. Divergence is expressed with per-lane predicates, exactly like
/// predicated execution on hardware.
template <typename F>
inline void for_each_lane(F&& f) {
  for (int l = 0; l < kWarpSize; ++l) f(l);
}

/// Builds a Lanes<T> with value f(lane).
template <typename T, typename F>
inline Lanes<T> make_lanes(F&& f) {
  Lanes<T> v{};
  for (int l = 0; l < kWarpSize; ++l) v[l] = f(l);
  return v;
}

/// Lane-id vector {0, 1, ..., 31}.
inline Lanes<int> lane_ids() {
  return make_lanes<int>([](int l) { return l; });
}

/// Execution context for one warp: identity, scratch ("shared memory"
/// partition), and work counters. Collectives are members so that every one
/// of them is accounted in Stats::warp_collectives — the warp-instruction
/// budget the paper's strategies trade against global-memory traffic.
class Warp {
 public:
  Warp(std::uint32_t id, WarpScratch& scratch, Stats& stats)
      : id_(id), scratch_(&scratch), stats_(&stats) {}

  std::uint32_t id() const { return id_; }
  WarpScratch& scratch() { return *scratch_; }
  Stats& stats() { return *stats_; }

  /// Counts `bytes` of global-memory reads (call sites annotate traffic).
  void count_read(std::uint64_t bytes) { stats_->global_reads += bytes; }
  void count_write(std::uint64_t bytes) { stats_->global_writes += bytes; }

  /// Address-aware variants: count the traffic AND feed each cell into the
  /// race detector's shadow state (no-ops beyond the byte count unless a
  /// detector is installed). Use these for block transfers on cells other
  /// warps may touch concurrently.
  template <typename T>
  void record_read(const T* base, std::size_t count) {
    count_read(count * sizeof(T));
    race_on_range(base, sizeof(T), count, AccessKind::kPlainRead);
  }
  template <typename T>
  void record_write(T* base, std::size_t count) {
    count_write(count * sizeof(T));
    race_on_range(base, sizeof(T), count, AccessKind::kPlainWrite);
  }

  // --- Collectives -------------------------------------------------------
  // Each models one warp-wide instruction (shfl/ballot/reduction step chain)
  // and bumps warp_collectives once.

  /// Broadcast: every lane receives lane `src`'s value (CUDA __shfl_sync).
  template <typename T>
  T shfl(const Lanes<T>& v, int src) {
    ++stats_->warp_collectives;
    return v[src & (kWarpSize - 1)];
  }

  /// Butterfly exchange (CUDA __shfl_xor_sync): lane l gets lane (l^mask).
  template <typename T>
  Lanes<T> shfl_xor(const Lanes<T>& v, int mask) {
    ++stats_->warp_collectives;
    Lanes<T> out{};
    for (int l = 0; l < kWarpSize; ++l) out[l] = v[l ^ mask];
    return out;
  }

  /// Shift down (CUDA __shfl_down_sync): lane l gets lane l+delta's value;
  /// lanes with l+delta >= 32 keep their own.
  template <typename T>
  Lanes<T> shfl_down(const Lanes<T>& v, int delta) {
    ++stats_->warp_collectives;
    Lanes<T> out{};
    for (int l = 0; l < kWarpSize; ++l) {
      out[l] = (l + delta < kWarpSize) ? v[l + delta] : v[l];
    }
    return out;
  }

  /// Predicate mask (CUDA __ballot_sync): bit l set iff pred[l].
  std::uint32_t ballot(const Lanes<bool>& pred) {
    ++stats_->warp_collectives;
    std::uint32_t mask = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      mask |= pred[l] ? (1u << l) : 0u;
    }
    return mask;
  }

  bool any(const Lanes<bool>& pred) { return ballot(pred) != 0; }
  bool all(const Lanes<bool>& pred) { return ballot(pred) == 0xFFFFFFFFu; }

  /// Warp-wide reduction with a binary op; models the log2(32)-step shuffle
  /// tree (counted as the 5 collective steps it costs on hardware).
  template <typename T, typename Op>
  T reduce(const Lanes<T>& v, Op op) {
    stats_->warp_collectives += 5;
    T acc = v[0];
    for (int l = 1; l < kWarpSize; ++l) acc = op(acc, v[l]);
    return acc;
  }

  template <typename T>
  T reduce_sum(const Lanes<T>& v) {
    return reduce(v, [](T a, T b) { return a + b; });
  }

  template <typename T>
  T reduce_min(const Lanes<T>& v) {
    return reduce(v, [](T a, T b) { return b < a ? b : a; });
  }

  template <typename T>
  T reduce_max(const Lanes<T>& v) {
    return reduce(v, [](T a, T b) { return a < b ? b : a; });
  }

  /// Lane index holding the minimum value (ties -> lowest lane).
  template <typename T>
  int argmin_lane(const Lanes<T>& v) {
    stats_->warp_collectives += 5;
    int best = 0;
    for (int l = 1; l < kWarpSize; ++l) {
      if (v[l] < v[best]) best = l;
    }
    return best;
  }

  /// Lane index holding the maximum value (ties -> lowest lane).
  template <typename T>
  int argmax_lane(const Lanes<T>& v) {
    stats_->warp_collectives += 5;
    int best = 0;
    for (int l = 1; l < kWarpSize; ++l) {
      if (v[best] < v[l]) best = l;
    }
    return best;
  }

  /// Inclusive prefix sum across lanes (Hillis–Steele, 5 shuffle steps).
  template <typename T>
  Lanes<T> inclusive_scan_sum(const Lanes<T>& v) {
    stats_->warp_collectives += 5;
    Lanes<T> out = v;
    for (int l = 1; l < kWarpSize; ++l) out[l] = out[l - 1] + v[l];
    return out;
  }

  /// Exclusive prefix sum across lanes (lane 0 gets T{}).
  template <typename T>
  Lanes<T> exclusive_scan_sum(const Lanes<T>& v) {
    stats_->warp_collectives += 5;
    Lanes<T> out{};
    T acc{};
    for (int l = 0; l < kWarpSize; ++l) {
      out[l] = acc;
      acc = acc + v[l];
    }
    return out;
  }

  /// Stream compaction: values of predicate-true lanes are packed into the
  /// low lanes of `out` in lane order; returns the packed count. On hardware
  /// this is one ballot plus a popc-prefix per lane — charged as 2
  /// collectives. Remaining out-lanes are value-initialised.
  template <typename T>
  int compact(const Lanes<T>& v, const Lanes<bool>& pred, Lanes<T>& out) {
    stats_->warp_collectives += 2;
    out = Lanes<T>{};
    int count = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (pred[l]) out[count++] = v[l];
    }
    return count;
  }

 private:
  std::uint32_t id_;
  WarpScratch* scratch_;
  Stats* stats_;
};

}  // namespace wknng::simt
