#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace wknng::obs {

/// Doubles in exported JSON/Prometheus text: plain decimal, trimmed,
/// locale-independent — the same rendering the serve metrics always used.
inline std::string fmt_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Minimal JSON string escape (quotes, backslashes, control characters).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus label-value escape: backslash, double quote, newline.
inline std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace wknng::obs
