#include "obs/build_info.hpp"

#include <cstdlib>
#include <sstream>

#include "kernels/kernels.hpp"
#include "obs/json_util.hpp"
#include "obs/registry.hpp"

#ifndef WKNNG_VERSION_STRING
#define WKNNG_VERSION_STRING "0.0.0"
#endif
#ifndef WKNNG_GIT_DESCRIBE
#define WKNNG_GIT_DESCRIBE "unknown"
#endif

namespace wknng::obs {

namespace {

std::string env_or_empty(const char* name) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : std::string();
}

std::string compiler_string() {
#if defined(__clang_version__)
  return std::string("clang ") + __clang_version__;
#elif defined(__VERSION__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

BuildInfo build_info() {
  BuildInfo info;
  info.version = WKNNG_VERSION_STRING;
  info.git_describe = WKNNG_GIT_DESCRIBE;
  info.compiler = compiler_string();
  info.kernel_backend = kernels::backend_name(kernels::active_backend());
#ifdef WKNNG_SANITIZE_BUILD
  info.sanitize = true;
#else
  info.sanitize = false;
#endif
  info.race_env = env_or_empty("WKNNG_CHECK_RACES");
  info.fault_env = env_or_empty("WKNNG_INJECT_FAULTS");
  info.trace_env = env_or_empty("WKNNG_TRACE");
  return info;
}

std::string to_json(const BuildInfo& info) {
  std::ostringstream os;
  os << "{\"version\":\"" << json_escape(info.version) << "\""
     << ",\"git_describe\":\"" << json_escape(info.git_describe) << "\""
     << ",\"compiler\":\"" << json_escape(info.compiler) << "\""
     << ",\"kernel_backend\":\"" << json_escape(info.kernel_backend) << "\""
     << ",\"sanitize\":" << (info.sanitize ? "true" : "false")
     << ",\"race_env\":\"" << json_escape(info.race_env) << "\""
     << ",\"fault_env\":\"" << json_escape(info.fault_env) << "\""
     << ",\"trace_env\":\"" << json_escape(info.trace_env) << "\"}";
  return os.str();
}

void register_build_info(MetricsRegistry& reg, const BuildInfo& info) {
  reg.info("wknng_build_info",
           {{"version", info.version},
            {"git_describe", info.git_describe},
            {"compiler", info.compiler},
            {"kernel_backend", info.kernel_backend},
            {"sanitize", info.sanitize ? "1" : "0"},
            {"race_env", info.race_env},
            {"fault_env", info.fault_env},
            {"trace_env", info.trace_env}},
           "Static build/runtime configuration of this binary");
  reg.info("wknng_kernel_backend_info", {{"backend", info.kernel_backend}},
           "Kernel backend selected by runtime dispatch");
}

}  // namespace wknng::obs
