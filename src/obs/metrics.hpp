#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wknng::obs {

/// Monotonic event counter. Relaxed increments: hot paths only ever add,
/// and reports tolerate a momentarily stale read.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (phase seconds, health flags, queue
/// depths). Relaxed stores/loads — a gauge is a report-time snapshot.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are strictly increasing bucket upper
/// bounds (inclusive), with an implicit +inf overflow bucket. Recording is
/// lock-free (one relaxed bucket increment plus count/sum updates);
/// percentiles are extracted at report time by linear interpolation inside
/// the covering bucket — the Prometheus model, embedded. Bucket layouts are
/// fixed at construction so two runs of the same config produce structurally
/// identical output.
///
/// Percentile edge-case contract (shared by serve and the obs registry):
///  * empty histogram        -> 0 for every percentile
///  * single recorded sample -> that sample's value (max_seen is exact)
///  * overflow-bucket mass   -> the observed maximum, never an invented bound
///  * interpolation          -> clamped to [bucket lo, min(bucket hi, max)]
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double max_seen() const { return max_.load(std::memory_order_relaxed); }

  /// Value at percentile `p` in [0, 100]; 0 when the histogram is empty.
  double percentile(double p) const;

  /// The bucket upper bounds this histogram was constructed with (the
  /// implicit +inf overflow bucket is not listed).
  const std::vector<double>& bounds() const { return bounds_; }

  /// Snapshot of per-bucket counts, bounds().size() + 1 entries (last is the
  /// overflow bucket). The Prometheus exporter renders these cumulatively.
  std::vector<std::uint64_t> bucket_counts() const;

  /// {"count":..,"sum":..,"mean":..,"p50":..,"p95":..,"p99":..,"max":..,
  ///  "buckets":[{"le":bound,"count":n},...]}  (overflow bucket has "le":"inf")
  std::string to_json() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Interpolated percentile over an explicit bucket-count snapshot — the exact
/// computation (and edge-case contract) of Histogram::percentile, exposed so
/// windowed aggregators (obs/slo.hpp) merging bucket counts across sub-window
/// shards report percentiles identical to a single histogram fed the same
/// samples. `buckets` has bounds.size() + 1 entries (last = overflow),
/// `total` their sum, `max_seen` the largest recorded value.
double percentile_from_buckets(const std::vector<double>& bounds,
                               const std::vector<std::uint64_t>& buckets,
                               std::uint64_t total, double max_seen, double p);

/// 1-2-5 geometric series from 1 µs to 10 s — the latency bucket layout every
/// serving histogram shares.
std::vector<double> latency_bounds_us();

/// 1-2-5 geometric series from 1 to `max_value` (sizes, visit counts).
std::vector<double> size_bounds(double max_value);

}  // namespace wknng::obs
