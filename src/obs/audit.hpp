#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/matrix.hpp"
#include "obs/slo.hpp"

namespace wknng::obs {

class FlightRecorder;

/// Online recall-audit knobs. `fraction == 0` disables everything.
struct AuditOptions {
  double fraction = 0.0;         ///< sampled share of answered read queries
  std::uint64_t seed = 42;       ///< sampling hash seed
  std::size_t k = 10;            ///< exact re-answer depth
  std::size_t queue_capacity = 1024;  ///< pending audits before dropping
  WindowConfig window{8, 256};   ///< rolling estimate horizon, in request ticks
  std::size_t sample_log_capacity = 65536;  ///< per-sample log kept for joins
};

/// Pure counter-hash sample decision — the same splitmix shape as the fault
/// injector's should_fire: a query is audited iff
/// splitmix(seed ^ index-stream) < fraction * 2^64. A pure function of
/// (seed, fraction, index), so identical runs audit bit-identical sets and
/// the decision never reads generator state or a clock.
bool audit_should_sample(std::uint64_t seed, double fraction,
                         std::uint64_t index);

/// What the audited query actually saw, pinned. `pin` keeps the snapshot
/// alive; `base`, `exclude`, and `external_ids` alias it. Under DynamicKnng
/// churn this is how the ground truth matches the graph the query ran on:
/// the engine captures the *pinned* snapshot, not the current one.
struct AuditTarget {
  std::shared_ptr<const void> pin;
  const FloatMatrix* base = nullptr;
  std::span<const std::uint8_t> exclude;        ///< non-zero = invisible row
  std::span<const std::uint32_t> external_ids;  ///< row -> stable id; empty = identity
  std::uint64_t version = 0;
};

/// One completed audit, joinable on (index, version) with flight records and
/// serve responses.
struct AuditSample {
  std::uint64_t index = 0;    ///< the query's request counter / tag
  std::uint64_t version = 0;  ///< snapshot version the query (and truth) saw
  double recall = 0.0;
};

/// Rolling recall estimate with a 95% confidence interval (normal
/// approximation over the per-query recalls in the window).
struct AuditEstimate {
  std::uint64_t audited = 0;
  double recall = 0.0;
  double ci_halfwidth = 0.0;
};

/// Online recall auditor: deterministically samples answered queries by
/// counter-hash, re-answers each with an exact l2_batch scan over the pinned
/// snapshot's live rows on a background thread, and publishes a rolling
/// recall estimate.
///
/// The sample *set* is a pure function of (seed, fraction, request indices);
/// each sample's recall is a pure function of (snapshot, query, served ids);
/// and the rolling window advances on request-counter ticks — so the
/// estimate, like everything else in the quality plane, replays
/// bit-identically. Only queue-full drops (`dropped`) are timing-dependent,
/// and they are counted, never silent.
///
/// Completed samples feed an attached SloTracker (`record_recall`, ticked by
/// request counter) and annotate the active FlightRecorder, promoting
/// low-recall queries into the slow-query log.
class RecallAuditor {
 public:
  explicit RecallAuditor(AuditOptions options);
  ~RecallAuditor();

  RecallAuditor(const RecallAuditor&) = delete;
  RecallAuditor& operator=(const RecallAuditor&) = delete;

  const AuditOptions& options() const { return options_; }
  bool enabled() const { return options_.fraction > 0.0; }

  /// The pure sampling decision for request counter `index`.
  bool should_sample(std::uint64_t index) const;

  /// Queues one audit job. `served_ids` are the externally-visible neighbor
  /// ids the client received. Returns false (counting a drop) when the
  /// audit queue is full.
  bool submit(std::uint64_t index, std::vector<float> query,
              std::vector<std::uint32_t> served_ids, AuditTarget target);

  /// Blocks until every queued audit has completed.
  void drain();

  /// Rolling-window estimate (the published number).
  AuditEstimate estimate() const;
  /// Cumulative since construction.
  AuditEstimate lifetime_estimate() const;

  /// Completed samples, submission-completion order, capped at
  /// sample_log_capacity (tests and offline agreement checks join on this).
  std::vector<AuditSample> samples() const;

  std::uint64_t submitted() const;
  std::uint64_t completed() const;
  std::uint64_t dropped() const;

  /// Wires completed samples into the SLO tracker; pass nullptr to unwire.
  /// The active flight recorder is looked up per completion, like tracing.
  void attach_slo(SloTracker* slo);

  /// The exact ground-truth comparison one audit performs, exposed so tests
  /// can run the identical offline evaluation: exact top-k over the
  /// target's live rows (l2_batch scan, tombstones excluded, ids mapped
  /// through external_ids), then |served ∩ exact| / k.
  static double exact_recall(const AuditTarget& target,
                             std::span<const float> query,
                             std::span<const std::uint32_t> served_ids,
                             std::size_t k);

 private:
  struct Job {
    std::uint64_t index = 0;
    std::vector<float> query;
    std::vector<std::uint32_t> served_ids;
    AuditTarget target;
  };

  void worker_loop();
  void complete(const Job& job, double recall);

  const AuditOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< worker wakeup
  std::condition_variable drain_cv_;  ///< drain() wakeup
  std::deque<Job> queue_;
  bool stopping_ = false;
  bool busy_ = false;

  WindowedHistogram window_;  ///< per-sample recalls, ticked by request index
  std::vector<AuditSample> sample_log_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  double lifetime_sum_ = 0.0;
  double lifetime_sum_sq_ = 0.0;
  SloTracker* slo_ = nullptr;

  std::thread worker_;
};

/// Export the auditor as live `wknng_slo_recall_*` / `wknng_slo_audit*`
/// gauges. `a` must outlive the registry's exports.
void register_audit_metrics(MetricsRegistry& reg, const RecallAuditor& a);

}  // namespace wknng::obs
