#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace wknng::obs {

/// Flight-recorder policy. All thresholds classify *after* the fact — they
/// never change how a query executes.
struct FlightOptions {
  std::size_t capacity = 1024;   ///< ring size (most recent queries kept)
  double slow_latency_us = 0.0;  ///< promote over this total latency; 0 = off
  double low_recall = 0.0;       ///< promote audited samples under this; 0 = off
  std::string log_path;          ///< slow-query JSON-lines sink; "" = memory only
};

/// Why a record was promoted to the slow-query log. kOk records stay in the
/// ring only.
enum class FlightVerdict : std::uint8_t {
  kOk,
  kSlow,       ///< answered fine but over slow_latency_us
  kTimeout,    ///< deadline verdict (pre-dispatch or late completion)
  kShed,       ///< rejected at admission
  kFailed,     ///< batch execution failed
  kLowRecall,  ///< audited recall under low_recall
};
const char* flight_verdict_name(FlightVerdict v);

/// One query's black-box record: everything needed to reconstruct what the
/// request saw without re-running it. `span_id` is the Perfetto span id of
/// the serve batch that executed it (Tracer::span_id over the batch index),
/// so a slow-log line joins 1:1 with the trace. `recall` is -1 until the
/// auditor annotates the record.
struct FlightRecord {
  std::uint64_t request_id = 0;
  std::uint64_t tag = 0;
  std::uint64_t snapshot_version = 0;
  std::uint64_t span_id = 0;
  std::uint64_t visits = 0;          ///< distance evaluations
  std::uint64_t budget_rung = 0;     ///< ladder rung served under; 0 = unlimited
  std::uint32_t escalations = 0;     ///< budget re-runs this query took
  std::uint32_t batch_size = 0;      ///< live size of its micro-batch
  std::uint32_t entry_keep = 0;      ///< entry points the descent started from
  std::uint32_t hops = 0;            ///< frontier expansions (0 if not tracked)
  std::uint8_t status = 0;           ///< serve::QueryStatus numeric value
  FlightVerdict verdict = FlightVerdict::kOk;
  double queue_us = 0.0;
  double total_us = 0.0;
  double recall = -1.0;
};

/// Bounded ring of per-query FlightRecords with slow-query promotion.
///
/// `record` classifies the query (status verdicts first, then the latency
/// threshold), stores it in the ring, and appends promoted records to the
/// JSON-lines log. `annotate_recall` back-fills an audited query's recall
/// (joined on tag) and promotes it when it falls under `low_recall` — the
/// recall half of "breaching a latency/recall threshold".
///
/// Enabled-path cost: one mutex acquisition and a struct copy per query —
/// guarded by the tab2 BM_FlightOn bench. The disabled path is the caller's
/// `active_flight_recorder()` check: one atomic load (BM_FlightOff).
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightOptions options);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  const FlightOptions& options() const { return options_; }

  /// Stores `rec` (classifying its verdict when still kOk) and promotes it
  /// when the verdict warrants.
  void record(FlightRecord rec);

  /// Back-fills the newest ring record with `tag`; promotes it as kLowRecall
  /// when under the threshold. Returns false when the tag already rotated
  /// out of the ring.
  bool annotate_recall(std::uint64_t tag, double recall);

  /// Ring contents, oldest to newest.
  std::vector<FlightRecord> ring() const;

  /// Promoted records (the slow-query log), in promotion order. Kept
  /// in-memory alongside the file sink so tests and reports need no re-parse.
  std::vector<FlightRecord> slow_log() const;

  std::uint64_t recorded() const;
  std::uint64_t promoted() const;

  /// Flushes the JSON-lines sink (also done on destruction).
  void flush();

  static std::string to_json_line(const FlightRecord& rec);

 private:
  void promote_locked(const FlightRecord& rec);

  const FlightOptions options_;
  mutable std::mutex mu_;
  std::vector<FlightRecord> ring_;
  std::uint64_t cursor_ = 0;     ///< total records ever written
  std::uint64_t promoted_ = 0;
  std::vector<FlightRecord> slow_log_;
  std::ofstream sink_;
};

namespace flight_detail {
// Process-global active recorder — the same shape as trace_detail::g_active /
// the fault hook: disabled cost is one acquire load plus a predicted branch.
inline std::atomic<FlightRecorder*> g_active{nullptr};
}  // namespace flight_detail

/// The currently-installed flight recorder, or nullptr when off.
inline FlightRecorder* active_flight_recorder() {
  return flight_detail::g_active.load(std::memory_order_acquire);
}

/// RAII installer. Only one recorder may be active at a time; nesting throws.
class ScopedFlightRecording {
 public:
  explicit ScopedFlightRecording(FlightRecorder& recorder);
  ~ScopedFlightRecording();

  ScopedFlightRecording(const ScopedFlightRecording&) = delete;
  ScopedFlightRecording& operator=(const ScopedFlightRecording&) = delete;
};

}  // namespace wknng::obs
