#include "obs/flight.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "obs/json_util.hpp"

namespace wknng::obs {

const char* flight_verdict_name(FlightVerdict v) {
  switch (v) {
    case FlightVerdict::kOk: return "ok";
    case FlightVerdict::kSlow: return "slow";
    case FlightVerdict::kTimeout: return "timeout";
    case FlightVerdict::kShed: return "shed";
    case FlightVerdict::kFailed: return "failed";
    case FlightVerdict::kLowRecall: return "low_recall";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(FlightOptions options)
    : options_(std::move(options)) {
  WKNNG_CHECK_MSG(options_.capacity > 0, "flight ring needs capacity >= 1");
  ring_.resize(options_.capacity);
  if (!options_.log_path.empty()) {
    sink_.open(options_.log_path, std::ios::out | std::ios::trunc);
    WKNNG_CHECK_MSG(sink_.is_open(),
                    "cannot open flight log " << options_.log_path);
  }
}

FlightRecorder::~FlightRecorder() { flush(); }

void FlightRecorder::promote_locked(const FlightRecord& rec) {
  ++promoted_;
  slow_log_.push_back(rec);
  if (sink_.is_open()) sink_ << to_json_line(rec) << '\n';
}

void FlightRecorder::record(FlightRecord rec) {
  if (rec.verdict == FlightVerdict::kOk) {
    // Status verdicts outrank the latency threshold: a timed-out query is
    // "timeout" even when it was also slow.
    switch (rec.status) {
      case 1: rec.verdict = FlightVerdict::kTimeout; break;
      case 2: rec.verdict = FlightVerdict::kShed; break;
      case 3: rec.verdict = FlightVerdict::kFailed; break;
      default:
        if (options_.slow_latency_us > 0.0 &&
            rec.total_us > options_.slow_latency_us) {
          rec.verdict = FlightVerdict::kSlow;
        }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ring_[cursor_ % ring_.size()] = rec;
  ++cursor_;
  if (rec.verdict != FlightVerdict::kOk) promote_locked(rec);
}

bool FlightRecorder::annotate_recall(std::uint64_t tag, double recall) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t live = std::min<std::uint64_t>(cursor_, ring_.size());
  for (std::uint64_t back = 0; back < live; ++back) {
    FlightRecord& rec = ring_[(cursor_ - 1 - back) % ring_.size()];
    if (rec.tag != tag) continue;
    rec.recall = recall;
    if (options_.low_recall > 0.0 && recall < options_.low_recall) {
      FlightRecord promoted = rec;
      promoted.verdict = FlightVerdict::kLowRecall;
      promote_locked(promoted);
    }
    return true;
  }
  return false;
}

std::vector<FlightRecord> FlightRecorder::ring() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightRecord> out;
  const std::uint64_t live = std::min<std::uint64_t>(cursor_, ring_.size());
  out.reserve(live);
  for (std::uint64_t i = 0; i < live; ++i) {
    out.push_back(ring_[(cursor_ - live + i) % ring_.size()]);
  }
  return out;
}

std::vector<FlightRecord> FlightRecorder::slow_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_log_;
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cursor_;
}

std::uint64_t FlightRecorder::promoted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return promoted_;
}

void FlightRecorder::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_.is_open()) sink_.flush();
}

std::string FlightRecorder::to_json_line(const FlightRecord& rec) {
  std::ostringstream os;
  os << "{\"type\":\"flight\",\"request_id\":" << rec.request_id
     << ",\"tag\":" << rec.tag
     << ",\"snapshot_version\":" << rec.snapshot_version << ",\"span_id\":\"0x"
     << std::hex << rec.span_id << std::dec << "\",\"visits\":" << rec.visits
     << ",\"budget_rung\":" << rec.budget_rung
     << ",\"escalations\":" << rec.escalations
     << ",\"batch_size\":" << rec.batch_size
     << ",\"entry_keep\":" << rec.entry_keep << ",\"hops\":" << rec.hops
     << ",\"status\":" << static_cast<unsigned>(rec.status)
     << ",\"verdict\":\"" << flight_verdict_name(rec.verdict)
     << "\",\"queue_us\":" << fmt_double(rec.queue_us)
     << ",\"total_us\":" << fmt_double(rec.total_us)
     << ",\"recall\":" << fmt_double(rec.recall) << "}";
  return os.str();
}

ScopedFlightRecording::ScopedFlightRecording(FlightRecorder& recorder) {
  FlightRecorder* expected = nullptr;
  WKNNG_CHECK_MSG(flight_detail::g_active.compare_exchange_strong(
                      expected, &recorder, std::memory_order_acq_rel),
                  "a flight recorder is already active");
}

ScopedFlightRecording::~ScopedFlightRecording() {
  flight_detail::g_active.store(nullptr, std::memory_order_release);
}

}  // namespace wknng::obs
