#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/json_util.hpp"

namespace wknng::obs {

Tracer::Tracer(bool warp_spans)
    : warp_spans_(warp_spans), origin_(std::chrono::steady_clock::now()) {}

double Tracer::now_us() const {
  const auto dt = std::chrono::steady_clock::now() - origin_;
  return std::chrono::duration<double, std::micro>(dt).count();
}

void Tracer::record(TraceEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

void Tracer::instant(
    const std::string& name, const std::string& cat, std::uint32_t tid,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'i';
  ev.id = span_id(current_phase(), event_count(), 0, SpanSalt::kInstant);
  ev.tid = tid;
  ev.ts_us = now_us();
  ev.args = std::move(args);
  record(std::move(ev));
}

std::uint64_t Tracer::span_id(std::uint64_t a, std::uint64_t b,
                              std::uint64_t c, SpanSalt salt) {
  // splitmix64-style finalizer over the packed indices: cheap, stateless,
  // and collision-free in practice for the small index ranges involved.
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL;
  x ^= b + 0xbf58476d1ce4e5b9ULL + (x << 6) + (x >> 2);
  x ^= c + 0x94d049bb133111ebULL + (x << 6) + (x >> 2);
  x ^= static_cast<std::uint64_t>(salt) + 0x2545f4914f6cdd1dULL + (x << 6) +
       (x >> 2);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t Tracer::begin_phase(const char* name) {
  (void)name;
  return phase_index_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Tracer::to_chrome_json() const {
  std::vector<TraceEvent> evs = events();
  std::stable_sort(evs.begin(), evs.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.tid < b.tid;
                   });
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : evs) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
       << json_escape(ev.cat) << "\",\"ph\":\"" << ev.ph
       << "\",\"pid\":1,\"tid\":" << ev.tid
       << ",\"ts\":" << fmt_double(ev.ts_us);
    if (ev.ph == 'X') os << ",\"dur\":" << fmt_double(ev.dur_us);
    if (ev.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{\"span_id\":\"0x";
    os << std::hex << ev.id << std::dec << "\"";
    for (const auto& [k, v] : ev.args) {
      os << ",\"" << json_escape(k) << "\":" << v;
    }
    os << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  WKNNG_CHECK_MSG(out.good(), "cannot open trace output '" << path << "'");
  out << to_chrome_json();
  WKNNG_CHECK_MSG(out.good(), "failed writing trace output '" << path << "'");
}

ScopedTracing::ScopedTracing(Tracer& tracer) {
  Tracer* expected = nullptr;
  const bool installed = trace_detail::g_active.compare_exchange_strong(
      expected, &tracer, std::memory_order_release,
      std::memory_order_relaxed);
  WKNNG_CHECK_MSG(installed, "a tracer is already active (nesting)");
}

ScopedTracing::~ScopedTracing() {
  trace_detail::g_active.store(nullptr, std::memory_order_release);
}

void Span::arg_num(const std::string& key, double v) {
  if (tracer_) ev_.args.emplace_back(key, fmt_double(v));
}

void Span::arg_num(const std::string& key, std::uint64_t v) {
  if (tracer_) ev_.args.emplace_back(key, std::to_string(v));
}

void Span::arg_str(const std::string& key, const std::string& v) {
  if (tracer_) ev_.args.emplace_back(key, "\"" + json_escape(v) + "\"");
}

}  // namespace wknng::obs
