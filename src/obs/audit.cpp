#include "obs/audit.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/topk.hpp"
#include "kernels/kernels.hpp"
#include "obs/flight.hpp"
#include "obs/registry.hpp"

namespace wknng::obs {

namespace {

/// Stream-id salt for audit sampling draws — its own disjoint 64-bit block,
/// like the loadgen's arrival/mutation streams, so the audit sample set
/// never correlates with arrivals, write mix, or kernel RNG streams.
constexpr std::uint64_t kAuditStream = 0xA0D17BA5E0000000ULL;

/// Scan chunk: row pointers gathered per chunk so the dispatched l2_batch
/// kernel (not a scalar loop) does the distance work.
constexpr std::size_t kScanChunk = 256;

AuditEstimate estimate_from(std::uint64_t n, double sum, double sum_sq) {
  AuditEstimate est;
  est.audited = n;
  if (n == 0) return est;
  const double dn = static_cast<double>(n);
  est.recall = sum / dn;
  const double var = std::max(0.0, sum_sq / dn - est.recall * est.recall);
  // 95% normal-approximation interval over the per-query recalls.
  est.ci_halfwidth = 1.96 * std::sqrt(var / dn);
  return est;
}

}  // namespace

bool audit_should_sample(std::uint64_t seed, double fraction,
                         std::uint64_t index) {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  SplitMix64 sm(seed ^ (kAuditStream + index));
  const double u =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;  // [0, 1)
  return u < fraction;
}

RecallAuditor::RecallAuditor(AuditOptions options)
    : options_(std::move(options)),
      window_(options_.window,
              {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}) {
  WKNNG_CHECK_MSG(options_.k > 0, "audit depth k must be >= 1");
  WKNNG_CHECK_MSG(options_.queue_capacity > 0,
                  "audit queue needs capacity >= 1");
  worker_ = std::thread([this] { worker_loop(); });
}

RecallAuditor::~RecallAuditor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool RecallAuditor::should_sample(std::uint64_t index) const {
  return audit_should_sample(options_.seed, options_.fraction, index);
}

bool RecallAuditor::submit(std::uint64_t index, std::vector<float> query,
                           std::vector<std::uint32_t> served_ids,
                           AuditTarget target) {
  WKNNG_CHECK_MSG(target.base != nullptr, "audit target needs a base matrix");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= options_.queue_capacity) {
      ++dropped_;
      return false;
    }
    Job job;
    job.index = index;
    job.query = std::move(query);
    job.served_ids = std::move(served_ids);
    job.target = std::move(target);
    queue_.push_back(std::move(job));
    ++submitted_;
  }
  work_cv_.notify_one();
  return true;
}

void RecallAuditor::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return queue_.empty() && !busy_; });
}

void RecallAuditor::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    double recall = 0.0;
    try {
      recall = exact_recall(job.target, job.query, job.served_ids, options_.k);
    } catch (...) {
      // An audit must never take the serving process down; a failed scan
      // scores 0 and shows up in the estimate rather than vanishing.
      recall = 0.0;
    }
    complete(job, recall);
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_ = false;
    }
    drain_cv_.notify_all();
  }
}

void RecallAuditor::complete(const Job& job, double recall) {
  SloTracker* slo = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++completed_;
    lifetime_sum_ += recall;
    lifetime_sum_sq_ += recall * recall;
    window_.record(job.index, recall);
    if (sample_log_.size() < options_.sample_log_capacity) {
      sample_log_.push_back({job.index, job.target.version, recall});
    }
    slo = slo_;
  }
  if (slo != nullptr) slo->record_recall(job.index, recall);
  if (FlightRecorder* flight = active_flight_recorder()) {
    flight->annotate_recall(job.index, recall);
  }
}

AuditEstimate RecallAuditor::estimate() const {
  std::lock_guard<std::mutex> lock(mu_);
  const WindowStats w = window_.stats();
  return estimate_from(w.count, w.sum, w.sum_sq);
}

AuditEstimate RecallAuditor::lifetime_estimate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return estimate_from(completed_, lifetime_sum_, lifetime_sum_sq_);
}

std::vector<AuditSample> RecallAuditor::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sample_log_;
}

std::uint64_t RecallAuditor::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

std::uint64_t RecallAuditor::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

std::uint64_t RecallAuditor::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void RecallAuditor::attach_slo(SloTracker* slo) {
  std::lock_guard<std::mutex> lock(mu_);
  slo_ = slo;
}

double RecallAuditor::exact_recall(const AuditTarget& target,
                                   std::span<const float> query,
                                   std::span<const std::uint32_t> served_ids,
                                   std::size_t k) {
  WKNNG_CHECK_MSG(target.base != nullptr, "audit target needs a base matrix");
  const FloatMatrix& base = *target.base;
  WKNNG_CHECK_MSG(query.size() == base.cols(),
                  "audit query dim " << query.size() << " != base dim "
                                     << base.cols());
  const bool masked = target.exclude.size() == base.rows();

  // Exact top-k over the live rows: chunked row-pointer gather through the
  // dispatched l2_batch kernel — the same fp32 scan whether the query was
  // served from fp32 rows, the SQ8 tier, or the optimized layout.
  TopK top(k);
  const float* rows[kScanChunk];
  std::uint32_t ids[kScanChunk];
  float dists[kScanChunk];
  std::size_t filled = 0;
  const auto flush = [&] {
    if (filled == 0) return;
    kernels::ops().l2_batch(query.data(), rows, nullptr, filled, base.cols(),
                            dists);
    for (std::size_t j = 0; j < filled; ++j) top.push(dists[j], ids[j]);
    filled = 0;
  };
  for (std::size_t r = 0; r < base.rows(); ++r) {
    if (masked && target.exclude[r] != 0) continue;
    rows[filled] = base.row(r).data();
    ids[filled] = static_cast<std::uint32_t>(r);
    if (++filled == kScanChunk) flush();
  }
  flush();

  std::vector<Neighbor> exact = top.take_sorted();
  if (exact.empty()) return served_ids.empty() ? 1.0 : 0.0;

  // Compare in the client's id space: ground-truth rows map through the
  // snapshot's external ids, exactly like the served answer did.
  std::vector<std::uint32_t> truth_ids;
  truth_ids.reserve(exact.size());
  for (const Neighbor& nb : exact) {
    std::uint32_t id = nb.id;
    if (!target.external_ids.empty() && id < target.external_ids.size()) {
      id = target.external_ids[id];
    }
    truth_ids.push_back(id);
  }
  std::sort(truth_ids.begin(), truth_ids.end());
  std::uint64_t hits = 0;
  const std::size_t depth = std::min(served_ids.size(), truth_ids.size());
  for (std::size_t j = 0; j < depth; ++j) {
    if (std::binary_search(truth_ids.begin(), truth_ids.end(),
                           served_ids[j])) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth_ids.size());
}

void register_audit_metrics(MetricsRegistry& reg, const RecallAuditor& a) {
  const RecallAuditor* p = &a;
  reg.gauge_fn("wknng_slo_recall_estimate",
               [p] { return p->estimate().recall; },
               "Rolling-window audited recall estimate");
  reg.gauge_fn("wknng_slo_recall_ci_halfwidth",
               [p] { return p->estimate().ci_halfwidth; },
               "95% confidence half-width of the audited recall estimate");
  reg.gauge_fn("wknng_slo_audited_total",
               [p] { return static_cast<double>(p->completed()); },
               "Audited queries completed");
  reg.gauge_fn("wknng_slo_audit_dropped_total",
               [p] { return static_cast<double>(p->dropped()); },
               "Audit samples dropped at a full audit queue");
  reg.gauge_fn("wknng_slo_audit_fraction",
               [p] { return p->options().fraction; },
               "Configured audit sampling fraction");
}

}  // namespace wknng::obs
