#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "obs/json_util.hpp"

namespace wknng::obs {

namespace {

std::vector<double> one_two_five_series(double lo, double hi) {
  std::vector<double> bounds;
  double decade = lo;
  while (decade <= hi) {
    for (const double m : {1.0, 2.0, 5.0}) {
      const double b = decade * m;
      if (b > hi) break;
      bounds.push_back(b);
    }
    decade *= 10.0;
  }
  return bounds;
}

}  // namespace

std::vector<double> latency_bounds_us() {
  return one_two_five_series(1.0, 1e7);  // 1 µs .. 10 s
}

std::vector<double> size_bounds(double max_value) {
  return one_two_five_series(1.0, max_value);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  WKNNG_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    WKNNG_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                    "histogram bounds must be strictly increasing");
  }
  buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  double seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const std::uint64_t c = count();
  return c == 0 ? 0.0 : sum() / static_cast<double>(c);
}

double percentile_from_buckets(const std::vector<double>& bounds,
                               const std::vector<std::uint64_t>& buckets,
                               std::uint64_t total, double max_seen, double p) {
  if (total == 0) return 0.0;
  // A single sample is known exactly: max_seen *is* the sample. Returning it
  // avoids interpolating a bucket position out of one observation.
  if (total == 1) return max_seen;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i == buckets.size() - 1) return max_seen;  // overflow bucket
      const double hi = bounds[i];
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      // Interpolated position, capped at the observed maximum so a nearly
      // empty bucket never reports a value no sample ever reached.
      return std::min(lo + (hi - lo) * std::clamp(within, 0.0, 1.0), max_seen);
    }
    cumulative += in_bucket;
  }
  return max_seen;
}

double Histogram::percentile(double p) const {
  return percentile_from_buckets(bounds_, bucket_counts(), count(), max_seen(),
                                 p);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::string Histogram::to_json() const {
  std::ostringstream os;
  os << "{\"count\":" << count() << ",\"sum\":" << fmt_double(sum())
     << ",\"mean\":" << fmt_double(mean())
     << ",\"p50\":" << fmt_double(percentile(50))
     << ",\"p95\":" << fmt_double(percentile(95))
     << ",\"p99\":" << fmt_double(percentile(99))
     << ",\"max\":" << fmt_double(max_seen()) << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;  // sparse dump: empty buckets carry no information
    if (!first) os << ",";
    first = false;
    os << "{\"le\":";
    if (i == bounds_.size()) {
      os << "\"inf\"";
    } else {
      os << fmt_double(bounds_[i]);
    }
    os << ",\"count\":" << c << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace wknng::obs
