#pragma once

#include <string>

namespace wknng::obs {

class MetricsRegistry;

/// Static facts about this binary and its runtime configuration: what was
/// compiled, which kernel backend dispatch selected, and which debugging
/// knobs (sanitizer build, race/fault/trace env) are live. Exported via both
/// registry formats and `wknng_cli --version` so every artifact records the
/// configuration that produced it.
struct BuildInfo {
  std::string version;
  std::string git_describe;
  std::string compiler;
  std::string kernel_backend;  // resolved by kernels::dispatch at call time
  bool sanitize = false;       // WKNNG_SANITIZE compile knob
  std::string race_env;        // WKNNG_CHECK_RACES ("" when unset)
  std::string fault_env;       // WKNNG_INJECT_FAULTS ("" when unset)
  std::string trace_env;       // WKNNG_TRACE ("" when unset)
};

/// Collect the current build info (queries kernels::active_backend()).
BuildInfo build_info();

std::string to_json(const BuildInfo& info);

/// Register two info-style metrics: `wknng_build_info{...}` with the full
/// label set and `wknng_kernel_backend_info{backend="..."}` for dashboards
/// that only care about the dispatch decision.
void register_build_info(MetricsRegistry& reg, const BuildInfo& info);

}  // namespace wknng::obs
