#include "obs/registry.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "obs/json_util.hpp"

namespace wknng::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    const char c = name[i];
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    case 2: return "histogram";
    case 3: return "gauge";  // gauge_fn exports as a gauge
    case 4: return "info";
    case 5: return "json";
    default: return "unknown";
  }
}

}  // namespace

MetricsRegistry::Entry* MetricsRegistry::find_locked(const std::string& name) {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

MetricsRegistry::Entry& MetricsRegistry::add_locked(const std::string& name,
                                                    const std::string& help,
                                                    Kind kind) {
  WKNNG_CHECK_MSG(valid_metric_name(name),
                  "invalid metric name '" << name << "'");
  Entry e;
  e.name = name;
  e.help = help;
  e.kind = kind;
  entries_.push_back(std::move(e));
  return entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = find_locked(name)) {
    WKNNG_CHECK_MSG(e->kind == Kind::kCounter && !e->linked,
                    "metric '" << name << "' already registered as "
                               << (e->linked ? "linked " : "")
                               << kind_name(static_cast<int>(e->kind)));
    return const_cast<Counter&>(*e->counter);
  }
  owned_counters_.emplace_back();
  Counter& c = owned_counters_.back();
  add_locked(name, help, Kind::kCounter).counter = &c;
  return c;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = find_locked(name)) {
    WKNNG_CHECK_MSG(e->kind == Kind::kGauge && !e->linked,
                    "metric '" << name << "' already registered as "
                               << (e->linked ? "linked " : "")
                               << kind_name(static_cast<int>(e->kind)));
    return const_cast<Gauge&>(*e->gauge);
  }
  owned_gauges_.emplace_back();
  Gauge& g = owned_gauges_.back();
  add_locked(name, help, Kind::kGauge).gauge = &g;
  return g;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = find_locked(name)) {
    WKNNG_CHECK_MSG(e->kind == Kind::kHistogram && !e->linked,
                    "metric '" << name << "' already registered as "
                               << (e->linked ? "linked " : "")
                               << kind_name(static_cast<int>(e->kind)));
    return const_cast<Histogram&>(*e->histogram);
  }
  owned_histograms_.emplace_back(std::move(bounds));
  Histogram& h = owned_histograms_.back();
  add_locked(name, help, Kind::kHistogram).histogram = &h;
  return h;
}

void MetricsRegistry::link_counter(const std::string& name, const Counter& c,
                                   const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  WKNNG_CHECK_MSG(find_locked(name) == nullptr,
                  "metric '" << name << "' already registered");
  Entry& e = add_locked(name, help, Kind::kCounter);
  e.counter = &c;
  e.linked = true;
}

void MetricsRegistry::link_histogram(const std::string& name,
                                     const Histogram& h,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  WKNNG_CHECK_MSG(find_locked(name) == nullptr,
                  "metric '" << name << "' already registered");
  Entry& e = add_locked(name, help, Kind::kHistogram);
  e.histogram = &h;
  e.linked = true;
}

void MetricsRegistry::gauge_fn(const std::string& name,
                               std::function<double()> fn,
                               const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  WKNNG_CHECK_MSG(find_locked(name) == nullptr,
                  "metric '" << name << "' already registered");
  add_locked(name, help, Kind::kGaugeFn).fn = std::move(fn);
}

void MetricsRegistry::info(
    const std::string& name,
    std::vector<std::pair<std::string, std::string>> labels,
    const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  WKNNG_CHECK_MSG(find_locked(name) == nullptr,
                  "metric '" << name << "' already registered");
  add_locked(name, help, Kind::kInfo).labels = std::move(labels);
}

void MetricsRegistry::json_blob(const std::string& name,
                                const std::string& raw_json) {
  std::lock_guard<std::mutex> lock(mu_);
  WKNNG_CHECK_MSG(find_locked(name) == nullptr,
                  "metric '" << name << "' already registered");
  add_locked(name, "", Kind::kJsonBlob).raw_json = raw_json;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        if (!e.help.empty()) os << "# HELP " << e.name << " " << e.help << "\n";
        os << "# TYPE " << e.name << " counter\n";
        os << e.name << " " << e.counter->value() << "\n";
        break;
      case Kind::kGauge:
        if (!e.help.empty()) os << "# HELP " << e.name << " " << e.help << "\n";
        os << "# TYPE " << e.name << " gauge\n";
        os << e.name << " " << fmt_double(e.gauge->value()) << "\n";
        break;
      case Kind::kGaugeFn:
        if (!e.help.empty()) os << "# HELP " << e.name << " " << e.help << "\n";
        os << "# TYPE " << e.name << " gauge\n";
        os << e.name << " " << fmt_double(e.fn()) << "\n";
        break;
      case Kind::kHistogram: {
        if (!e.help.empty()) os << "# HELP " << e.name << " " << e.help << "\n";
        os << "# TYPE " << e.name << " histogram\n";
        // One coherent snapshot of the bucket array; count/sum are derived
        // from it so the rendered histogram is always self-consistent even
        // while the instrument is being written concurrently.
        const std::vector<std::uint64_t> counts =
            e.histogram->bucket_counts();
        const std::vector<double>& bounds = e.histogram->bounds();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          cumulative += counts[i];
          os << e.name << "_bucket{le=\"" << fmt_double(bounds[i]) << "\"} "
             << cumulative << "\n";
        }
        cumulative += counts.back();
        os << e.name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
        os << e.name << "_sum " << fmt_double(e.histogram->sum()) << "\n";
        os << e.name << "_count " << cumulative << "\n";
        break;
      }
      case Kind::kInfo: {
        if (!e.help.empty()) os << "# HELP " << e.name << " " << e.help << "\n";
        os << "# TYPE " << e.name << " gauge\n";
        os << e.name << "{";
        bool first = true;
        for (const auto& [k, v] : e.labels) {
          if (!first) os << ",";
          first = false;
          os << k << "=\"" << prom_escape(v) << "\"";
        }
        os << "} 1\n";
        break;
      }
      case Kind::kJsonBlob:
        break;  // JSON export only
    }
  }
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"metrics\":{";
  bool first = true;
  for (const Entry& e : entries_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(e.name) << "\":";
    switch (e.kind) {
      case Kind::kCounter:
        os << "{\"kind\":\"counter\",\"value\":" << e.counter->value() << "}";
        break;
      case Kind::kGauge:
        os << "{\"kind\":\"gauge\",\"value\":" << fmt_double(e.gauge->value())
           << "}";
        break;
      case Kind::kGaugeFn:
        os << "{\"kind\":\"gauge\",\"value\":" << fmt_double(e.fn()) << "}";
        break;
      case Kind::kHistogram:
        os << "{\"kind\":\"histogram\",\"data\":" << e.histogram->to_json()
           << "}";
        break;
      case Kind::kInfo: {
        os << "{\"kind\":\"info\",\"labels\":{";
        bool lfirst = true;
        for (const auto& [k, v] : e.labels) {
          if (!lfirst) os << ",";
          lfirst = false;
          os << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
        }
        os << "}}";
        break;
      }
      case Kind::kJsonBlob:
        os << "{\"kind\":\"json\",\"data\":" << e.raw_json << "}";
        break;
    }
  }
  os << "}}";
  return os.str();
}

}  // namespace wknng::obs
