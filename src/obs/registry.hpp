#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace wknng::obs {

/// Central metrics registry: the single place build results, serve metrics,
/// fault-injection counts, and kernel-backend info register into, and the
/// single place Prometheus/JSON scrapes read from.
///
/// Two registration styles coexist:
///  * Owned metrics (`counter`/`gauge`/`histogram`): the registry allocates
///    and owns the instrument; callers keep the returned reference. Storage
///    is a deque so addresses stay stable across later registrations.
///  * Linked metrics (`link_counter`/`link_histogram`/`gauge_fn`): an
///    externally-owned live instrument (e.g. `serve::ServeMetrics` fields)
///    is exported by reference — scrapes see its current value without any
///    copying or double accounting. The linked object must outlive the
///    registry or be exported before it dies.
///
/// Registration and export take one mutex; instrument *updates* never do —
/// counters/gauges/histograms stay lock-free on the hot path. Concurrent
/// flush (instrument updates) and scrape (`to_prometheus`/`to_json`) are
/// therefore safe, which the sanitize-race job exercises.
///
/// Metric names must match `[a-zA-Z_:][a-zA-Z0-9_:]*` (the Prometheus rule);
/// re-requesting an existing *owned* name with the same kind returns the same
/// instrument. Any other duplicate — kind mismatch, re-linking a taken name,
/// or requesting an owned instrument over a linked entry — throws.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Export a live, externally-owned counter/histogram under `name`.
  void link_counter(const std::string& name, const Counter& c,
                    const std::string& help = "");
  void link_histogram(const std::string& name, const Histogram& h,
                      const std::string& help = "");

  /// Gauge whose value is computed at scrape time.
  void gauge_fn(const std::string& name, std::function<double()> fn,
                const std::string& help = "");

  /// Info-style metric: constant gauge of 1 carrying its payload in labels
  /// (`wknng_build_info{compiler="...",backend="..."} 1`).
  void info(const std::string& name,
            std::vector<std::pair<std::string, std::string>> labels,
            const std::string& help = "");

  /// Pre-rendered JSON attached to the JSON export only (the Prometheus
  /// exporter skips it). `raw_json` must already be valid JSON.
  void json_blob(const std::string& name, const std::string& raw_json);

  /// Prometheus text exposition format: # HELP / # TYPE lines, cumulative
  /// `_bucket{le=...}` + `_sum` + `_count` for histograms, one `name{labels} 1`
  /// line per info metric.
  std::string to_prometheus() const;

  /// {"metrics":{name:{"kind":...,...}}} — histograms embed Histogram::to_json.
  std::string to_json() const;

  std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kGaugeFn, kInfo, kJsonBlob };

  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    // Linked entries export an externally-owned instrument; the owned getters
    // must never alias them (that would hand out a mutable reference to an
    // object the registry does not own).
    bool linked = false;
    // Owned instruments live in the deques below; these point either there
    // or at a linked external instrument.
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    std::function<double()> fn;
    std::vector<std::pair<std::string, std::string>> labels;
    std::string raw_json;
  };

  Entry* find_locked(const std::string& name);
  Entry& add_locked(const std::string& name, const std::string& help,
                    Kind kind);

  mutable std::mutex mu_;
  std::deque<Counter> owned_counters_;
  std::deque<Gauge> owned_gauges_;
  std::deque<Histogram> owned_histograms_;
  std::vector<Entry> entries_;
};

}  // namespace wknng::obs
