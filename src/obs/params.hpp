#pragma once

#include <cstdlib>
#include <string>

namespace wknng::obs {

/// Observability knobs carried on BuildParams / ServeOptions.
///
/// `trace` gates *participation*: when true (the default) and a tracer is
/// installed via ScopedTracing, spans are emitted; when false the component
/// ignores any active tracer. `trace_path` asks the builder to own a tracer
/// itself — if no tracer is already active it installs one for the duration
/// of the build and writes Chrome trace-event JSON to the path at the end.
struct ObsParams {
  bool trace = true;
  bool trace_warps = false;   // per-warp-group spans (verbose; off by default)
  std::string trace_path;     // non-empty => builder owns + writes a tracer
};

/// Apply WKNNG_TRACE / WKNNG_TRACE_WARPS on top of `base`:
///   WKNNG_TRACE=0       -> trace = false
///   WKNNG_TRACE=1       -> trace = true
///   WKNNG_TRACE=<path>  -> trace = true, trace_path = <path> (if unset)
///   WKNNG_TRACE_WARPS=1 -> trace_warps = true
inline ObsParams params_from_env(ObsParams base) {
  if (const char* env = std::getenv("WKNNG_TRACE")) {
    const std::string v(env);
    if (v == "0") {
      base.trace = false;
    } else {
      base.trace = true;
      if (v != "1" && base.trace_path.empty()) base.trace_path = v;
    }
  }
  if (const char* env = std::getenv("WKNNG_TRACE_WARPS")) {
    base.trace_warps = std::string(env) == "1";
  }
  return base;
}

}  // namespace wknng::obs
