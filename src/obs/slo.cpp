#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "obs/json_util.hpp"
#include "obs/registry.hpp"

namespace wknng::obs {

namespace {

void check_window(const WindowConfig& cfg, const char* what) {
  WKNNG_CHECK_MSG(cfg.shards > 0, what << ": window needs >= 1 shard");
  WKNNG_CHECK_MSG(cfg.shard_span > 0, what << ": shard span must be positive");
}

std::string window_stats_json(const WindowStats& s) {
  std::ostringstream os;
  os << "{\"count\":" << s.count << ",\"mean\":" << fmt_double(s.mean)
     << ",\"p50\":" << fmt_double(s.p50) << ",\"p95\":" << fmt_double(s.p95)
     << ",\"p99\":" << fmt_double(s.p99) << ",\"max\":" << fmt_double(s.max)
     << "}";
  return os.str();
}

std::string rate_stats_json(const WindowedRate::Stats& s) {
  std::ostringstream os;
  os << "{\"events\":" << s.events << ",\"hits\":" << s.hits
     << ",\"rate\":" << fmt_double(s.rate) << "}";
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// WindowedHistogram

WindowedHistogram::WindowedHistogram(WindowConfig config,
                                     std::vector<double> bounds)
    : config_(config), bounds_(std::move(bounds)), shards_(config.shards) {
  check_window(config_, "WindowedHistogram");
  WKNNG_CHECK_MSG(!bounds_.empty(), "WindowedHistogram needs bounds");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    WKNNG_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                    "WindowedHistogram bounds must be strictly increasing");
  }
  for (Shard& s : shards_) s.buckets.assign(bounds_.size() + 1, 0);
}

void WindowedHistogram::record(std::uint64_t tick, double value) {
  const std::uint64_t era = tick / config_.shard_span;
  const std::size_t slot = static_cast<std::size_t>(era % config_.shards);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());

  std::lock_guard<std::mutex> lock(mu_);
  Shard& s = shards_[slot];
  if (s.era != era) {
    if (s.era != kEmptyEra && era < s.era) {
      // The slot already rotated to a newer era: this record fell out of the
      // window before it arrived. Dropping it (counted) keeps aggregates a
      // function of the surviving multiset.
      ++late_drops_;
      return;
    }
    s.era = era;
    s.count = 0;
    s.sum = 0.0;
    s.sum_sq = 0.0;
    s.max = 0.0;
    std::fill(s.buckets.begin(), s.buckets.end(), std::uint64_t{0});
  }
  ++s.count;
  s.sum += value;
  s.sum_sq += value * value;
  s.max = std::max(s.max, value);
  ++s.buckets[bucket];
  if (max_era_ == kEmptyEra || era > max_era_) max_era_ = era;
}

WindowStats WindowedHistogram::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WindowStats out;
  if (max_era_ == kEmptyEra) return out;
  std::vector<std::uint64_t> merged(bounds_.size() + 1, 0);
  const std::uint64_t oldest_live =
      max_era_ >= config_.shards - 1 ? max_era_ - (config_.shards - 1) : 0;
  for (const Shard& s : shards_) {
    if (s.era == kEmptyEra || s.era < oldest_live) continue;  // rotated out
    out.count += s.count;
    out.sum += s.sum;
    out.sum_sq += s.sum_sq;
    out.max = std::max(out.max, s.max);
    for (std::size_t b = 0; b < merged.size(); ++b) merged[b] += s.buckets[b];
  }
  if (out.count == 0) return out;
  out.mean = out.sum / static_cast<double>(out.count);
  out.p50 = percentile_from_buckets(bounds_, merged, out.count, out.max, 50);
  out.p95 = percentile_from_buckets(bounds_, merged, out.count, out.max, 95);
  out.p99 = percentile_from_buckets(bounds_, merged, out.count, out.max, 99);
  return out;
}

std::uint64_t WindowedHistogram::late_drops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return late_drops_;
}

// ---------------------------------------------------------------------------
// WindowedRate

WindowedRate::WindowedRate(WindowConfig config)
    : config_(config), shards_(config.shards) {
  check_window(config_, "WindowedRate");
}

void WindowedRate::record(std::uint64_t tick, bool hit) {
  const std::uint64_t era = tick / config_.shard_span;
  const std::size_t slot = static_cast<std::size_t>(era % config_.shards);

  std::lock_guard<std::mutex> lock(mu_);
  Shard& s = shards_[slot];
  if (s.era != era) {
    if (s.era != kEmptyEra && era < s.era) return;  // out of window: drop
    s.era = era;
    s.events = 0;
    s.hits = 0;
  }
  ++s.events;
  if (hit) ++s.hits;
  if (max_era_ == kEmptyEra || era > max_era_) max_era_ = era;
}

WindowedRate::Stats WindowedRate::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  if (max_era_ == kEmptyEra) return out;
  const std::uint64_t oldest_live =
      max_era_ >= config_.shards - 1 ? max_era_ - (config_.shards - 1) : 0;
  for (const Shard& s : shards_) {
    if (s.era == kEmptyEra || s.era < oldest_live) continue;
    out.events += s.events;
    out.hits += s.hits;
  }
  if (out.events != 0) {
    out.rate = static_cast<double>(out.hits) / static_cast<double>(out.events);
  }
  return out;
}

// ---------------------------------------------------------------------------
// SloTracker

const char* slo_signal_name(SloSignal s) {
  switch (s) {
    case SloSignal::kLatency: return "latency";
    case SloSignal::kRecall: return "recall";
  }
  return "unknown";
}

SloTracker::SloTracker(SloTrackerOptions options)
    : options_(std::move(options)),
      latency_(options_.stats_window, latency_bounds_us()),
      occupancy_(options_.stats_window,
                 // occupancy lives in [0, 1]: fine fixed linear-ish bounds so
                 // percentiles resolve small batches from full ones
                 {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}),
      shed_(options_.stats_window),
      escalation_(options_.stats_window),
      latency_signal_(options_.latency_rule),
      recall_signal_(options_.recall_rule) {
  WKNNG_CHECK_MSG(options_.objective.error_budget > 0.0,
                  "SLO error budget must be positive");
}

void SloTracker::set_alert_callback(AlertCallback cb) {
  std::lock_guard<std::mutex> lock(mu_);
  callback_ = std::move(cb);
}

double SloTracker::burn_of(const WindowedRate::Stats& s, double error_budget) {
  return s.events == 0 ? 0.0 : s.rate / error_budget;
}

void SloTracker::feed_signal_locked(SloSignal signal, SignalState& state,
                                    const BurnRule& rule, std::uint64_t tick,
                                    bool bad, std::vector<SloAlert>& pending) {
  state.fast.record(tick, bad);
  state.slow.record(tick, bad);
  const WindowedRate::Stats fast = state.fast.stats();
  const WindowedRate::Stats slow = state.slow.stats();
  if (fast.events < rule.min_events || slow.events < rule.min_events) return;
  const double burn_fast = burn_of(fast, options_.objective.error_budget);
  const double burn_slow = burn_of(slow, options_.objective.error_budget);
  const bool firing = burn_fast >= rule.threshold && burn_slow >= rule.threshold;
  if (firing == state.active) return;
  state.active = firing;
  SloAlert alert;
  alert.signal = signal;
  alert.firing = firing;
  alert.tick = tick;
  alert.sequence = alert_sequence_++;
  alert.burn_fast = burn_fast;
  alert.burn_slow = burn_slow;
  if (alert_log_.size() >= options_.alert_log_capacity &&
      !alert_log_.empty()) {
    alert_log_.erase(alert_log_.begin());
  }
  alert_log_.push_back(alert);
  pending.push_back(alert);
}

void SloTracker::dispatch(std::vector<SloAlert>&& pending) {
  if (pending.empty()) return;
  AlertCallback cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cb = callback_;
  }
  if (!cb) return;
  // Serialized so a multi-threaded engine delivers edges in sequence order.
  std::lock_guard<std::mutex> lock(callback_mu_);
  for (const SloAlert& a : pending) cb(a);
}

void SloTracker::record_request(std::uint64_t tick, double latency_us,
                                RequestOutcome outcome,
                                std::uint32_t escalations) {
  std::vector<SloAlert> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_seen_;
    latency_.record(tick, latency_us);
    shed_.record(tick, outcome == RequestOutcome::kShed);
    escalation_.record(tick, escalations > 0);
    if (options_.objective.p99_latency_us > 0.0) {
      // A request that was not answered with usable neighbors in time burns
      // budget exactly like a slow one: shed / failed / timed-out requests
      // are latency-SLO violations, not a separate books.
      const bool bad = outcome != RequestOutcome::kOk ||
                       latency_us > options_.objective.p99_latency_us;
      feed_signal_locked(SloSignal::kLatency, latency_signal_,
                         options_.latency_rule, tick, bad, pending);
    }
  }
  dispatch(std::move(pending));
}

void SloTracker::record_batch(std::uint64_t batch_tick, std::size_t batch_size,
                              std::size_t max_batch) {
  const double occupancy =
      max_batch == 0 ? 0.0
                     : static_cast<double>(batch_size) /
                           static_cast<double>(max_batch);
  std::lock_guard<std::mutex> lock(mu_);
  occupancy_.record(batch_tick, occupancy);
}

void SloTracker::record_recall(std::uint64_t tick, double recall) {
  std::vector<SloAlert> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.objective.min_recall > 0.0) {
      feed_signal_locked(SloSignal::kRecall, recall_signal_,
                         options_.recall_rule, tick,
                         recall < options_.objective.min_recall, pending);
    }
  }
  dispatch(std::move(pending));
}

void SloTracker::note_publication(std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  ++publications_;
  last_version_ = version;
}

WindowStats SloTracker::latency_window() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latency_.stats();
}

WindowStats SloTracker::occupancy_window() const {
  std::lock_guard<std::mutex> lock(mu_);
  return occupancy_.stats();
}

WindowedRate::Stats SloTracker::shed_window() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_.stats();
}

WindowedRate::Stats SloTracker::escalation_window() const {
  std::lock_guard<std::mutex> lock(mu_);
  return escalation_.stats();
}

double SloTracker::latency_burn(bool fast) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.objective.p99_latency_us <= 0.0) return 0.0;
  return burn_of(fast ? latency_signal_.fast.stats()
                      : latency_signal_.slow.stats(),
                 options_.objective.error_budget);
}

double SloTracker::recall_burn(bool fast) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.objective.min_recall <= 0.0) return 0.0;
  return burn_of(fast ? recall_signal_.fast.stats()
                      : recall_signal_.slow.stats(),
                 options_.objective.error_budget);
}

bool SloTracker::alert_active(SloSignal s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return s == SloSignal::kLatency ? latency_signal_.active
                                  : recall_signal_.active;
}

std::uint64_t SloTracker::alerts_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alert_sequence_;
}

std::vector<SloAlert> SloTracker::alert_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alert_log_;
}

std::uint64_t SloTracker::requests_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_seen_;
}

std::uint64_t SloTracker::publications() const {
  std::lock_guard<std::mutex> lock(mu_);
  return publications_;
}

std::uint64_t SloTracker::last_published_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_version_;
}

std::string SloTracker::to_json() const {
  // Taken outside the member lock via the accessors, each of which locks.
  const WindowStats lat = latency_window();
  const WindowStats occ = occupancy_window();
  const WindowedRate::Stats shed = shed_window();
  const WindowedRate::Stats esc = escalation_window();
  const std::vector<SloAlert> log = alert_log();

  std::ostringstream os;
  os << "{\"objective\":{\"p99_latency_us\":"
     << fmt_double(options_.objective.p99_latency_us)
     << ",\"min_recall\":" << fmt_double(options_.objective.min_recall)
     << ",\"error_budget\":" << fmt_double(options_.objective.error_budget)
     << "},\"requests\":" << requests_seen()
     << ",\"latency_window\":" << window_stats_json(lat)
     << ",\"occupancy_window\":" << window_stats_json(occ)
     << ",\"shed_window\":" << rate_stats_json(shed)
     << ",\"escalation_window\":" << rate_stats_json(esc)
     << ",\"latency_burn\":{\"fast\":" << fmt_double(latency_burn(true))
     << ",\"slow\":" << fmt_double(latency_burn(false))
     << ",\"active\":" << (alert_active(SloSignal::kLatency) ? 1 : 0)
     << "},\"recall_burn\":{\"fast\":" << fmt_double(recall_burn(true))
     << ",\"slow\":" << fmt_double(recall_burn(false))
     << ",\"active\":" << (alert_active(SloSignal::kRecall) ? 1 : 0)
     << "},\"publications\":" << publications()
     << ",\"snapshot_version\":" << last_published_version()
     << ",\"alerts_fired\":" << alerts_fired() << ",\"alerts\":[";
  for (std::size_t i = 0; i < log.size(); ++i) {
    const SloAlert& a = log[i];
    if (i != 0) os << ",";
    os << "{\"signal\":\"" << slo_signal_name(a.signal)
       << "\",\"firing\":" << (a.firing ? 1 : 0) << ",\"tick\":" << a.tick
       << ",\"sequence\":" << a.sequence
       << ",\"burn_fast\":" << fmt_double(a.burn_fast)
       << ",\"burn_slow\":" << fmt_double(a.burn_slow) << "}";
  }
  os << "]}";
  return os.str();
}

void register_slo_metrics(MetricsRegistry& reg, const SloTracker& t) {
  const SloTracker* p = &t;
  reg.gauge_fn("wknng_slo_latency_p50_us",
               [p] { return p->latency_window().p50; },
               "Rolling-window p50 request latency (us)");
  reg.gauge_fn("wknng_slo_latency_p95_us",
               [p] { return p->latency_window().p95; },
               "Rolling-window p95 request latency (us)");
  reg.gauge_fn("wknng_slo_latency_p99_us",
               [p] { return p->latency_window().p99; },
               "Rolling-window p99 request latency (us)");
  reg.gauge_fn("wknng_slo_shed_ratio", [p] { return p->shed_window().rate; },
               "Rolling-window shed fraction of completed requests");
  reg.gauge_fn("wknng_slo_escalation_ratio",
               [p] { return p->escalation_window().rate; },
               "Rolling-window fraction of requests that escalated budget rungs");
  reg.gauge_fn("wknng_slo_batch_occupancy",
               [p] { return p->occupancy_window().mean; },
               "Rolling-window mean batch occupancy (size / max_batch)");
  reg.gauge_fn("wknng_slo_latency_burn_fast",
               [p] { return p->latency_burn(true); },
               "Latency-objective burn rate over the fast window");
  reg.gauge_fn("wknng_slo_latency_burn_slow",
               [p] { return p->latency_burn(false); },
               "Latency-objective burn rate over the slow window");
  reg.gauge_fn("wknng_slo_recall_burn_fast",
               [p] { return p->recall_burn(true); },
               "Recall-objective burn rate over the fast window");
  reg.gauge_fn("wknng_slo_recall_burn_slow",
               [p] { return p->recall_burn(false); },
               "Recall-objective burn rate over the slow window");
  reg.gauge_fn("wknng_slo_latency_alert_active",
               [p] { return p->alert_active(SloSignal::kLatency) ? 1.0 : 0.0; },
               "1 while the latency burn-rate alert is firing");
  reg.gauge_fn("wknng_slo_recall_alert_active",
               [p] { return p->alert_active(SloSignal::kRecall) ? 1.0 : 0.0; },
               "1 while the recall burn-rate alert is firing");
  reg.gauge_fn("wknng_slo_alerts_total",
               [p] { return static_cast<double>(p->alerts_fired()); },
               "Alert edges fired (rising + clearing)");
  reg.gauge_fn("wknng_slo_snapshot_version",
               [p] { return static_cast<double>(p->last_published_version()); },
               "Version of the last snapshot publication the tracker saw");
  reg.gauge_fn("wknng_slo_publications_total",
               [p] { return static_cast<double>(p->publications()); },
               "Snapshot publications the tracker saw");
}

}  // namespace wknng::obs
