#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace wknng::obs {

class MetricsRegistry;

/// Shape of one sliding window: a ring of `shards` fixed sub-windows, each
/// covering `shard_span` ticks of a caller-supplied monotone event counter
/// (request index, batch index, audit index). The window spans the last
/// `shards * shard_span` ticks. Counter-advanced on purpose: window
/// boundaries are a pure function of the tick, never of a clock, so two runs
/// feeding the same (tick, value) multiset aggregate bit-identically.
struct WindowConfig {
  std::size_t shards = 8;
  std::uint64_t shard_span = 128;

  std::uint64_t span() const {
    return static_cast<std::uint64_t>(shards) * shard_span;
  }
};

/// Aggregate over one window's live shards. Percentiles use the shared
/// bucket-interpolation contract (percentile_from_buckets), so a window and
/// a cumulative Histogram fed the same samples report the same values.
struct WindowStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;  ///< for variance / confidence intervals
  double mean = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Rolling fixed-bucket histogram over the last `config.span()` ticks.
///
/// Each record lands in the shard owning era = tick / shard_span (ring slot
/// era % shards); a record whose era supersedes the slot's resets it. The
/// aggregate therefore depends only on the *multiset* of (tick, value)
/// records — per-slot, exactly the records of that slot's newest era
/// survive, and stats() skips slots whose era has rotated out of the window
/// — never on arrival order. A record older than the window when its slot
/// has already moved on is dropped and counted (`late_drops`), the one
/// order-sensitive residue, which touches counts only at the rotation edge.
///
/// A steady-clock timestamp of the last shard rotation is kept for display
/// (`last_advance_unix_us` analogue in exports) but never read in any
/// decision path.
class WindowedHistogram {
 public:
  WindowedHistogram(WindowConfig config, std::vector<double> bounds);

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void record(std::uint64_t tick, double value);

  WindowStats stats() const;
  std::uint64_t late_drops() const;
  const WindowConfig& config() const { return config_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  static constexpr std::uint64_t kEmptyEra = ~std::uint64_t{0};

  struct Shard {
    std::uint64_t era = kEmptyEra;
    std::uint64_t count = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    double max = 0.0;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1, last = overflow
  };

  mutable std::mutex mu_;
  WindowConfig config_;
  std::vector<double> bounds_;
  std::vector<Shard> shards_;
  std::uint64_t max_era_ = kEmptyEra;
  std::uint64_t late_drops_ = 0;
};

/// Rolling (events, hits) pair over the last `config.span()` ticks — shed
/// rate, escalation rate, SLO bad-event rate. Same shard/era semantics as
/// WindowedHistogram.
class WindowedRate {
 public:
  struct Stats {
    std::uint64_t events = 0;
    std::uint64_t hits = 0;
    double rate = 0.0;  ///< hits / events; 0 when no events
  };

  explicit WindowedRate(WindowConfig config);

  WindowedRate(const WindowedRate&) = delete;
  WindowedRate& operator=(const WindowedRate&) = delete;

  void record(std::uint64_t tick, bool hit);
  Stats stats() const;
  const WindowConfig& config() const { return config_; }

 private:
  static constexpr std::uint64_t kEmptyEra = ~std::uint64_t{0};

  struct Shard {
    std::uint64_t era = kEmptyEra;
    std::uint64_t events = 0;
    std::uint64_t hits = 0;
  };

  mutable std::mutex mu_;
  WindowConfig config_;
  std::vector<Shard> shards_;
  std::uint64_t max_era_ = kEmptyEra;
};

/// The two objective signals the tracker evaluates.
enum class SloSignal : std::uint8_t { kLatency, kRecall };
const char* slo_signal_name(SloSignal s);

/// How one served request ended, from the SLO tracker's point of view.
/// Mirrors serve::QueryStatus without depending on the serve layer.
enum class RequestOutcome : std::uint8_t { kOk, kTimeout, kShed, kFailed };

/// "recall >= R, p99 <= D" service objective. A signal with a zero target is
/// disabled. `error_budget` is the tolerated bad-event fraction — e.g. 0.01
/// means "99% of requests within the latency bound" — shared by both
/// signals; burn rate = observed bad fraction / error_budget.
struct SloObjective {
  double p99_latency_us = 0.0;  ///< bad: latency over this, or not served
  double min_recall = 0.0;      ///< bad: audited sample under this
  double error_budget = 0.01;
};

/// One multi-window burn-rate rule (the SRE fast+slow pair): alert when the
/// burn rate over *both* windows reaches `threshold`. The fast window makes
/// the alert responsive; the slow window keeps a brief spike from paging.
/// `min_events` gates each window until it has seen enough events to mean
/// anything — a counter, so warmup is replay-deterministic too.
struct BurnRule {
  WindowConfig fast{4, 64};
  WindowConfig slow{16, 256};
  double threshold = 2.0;
  std::uint64_t min_events = 64;
};

/// One alert edge. `firing` distinguishes the rising edge (burn crossed the
/// rule) from the clearing edge; `sequence` is the tracker-wide monotone
/// alert ordinal, so an alert log is totally ordered without timestamps.
struct SloAlert {
  SloSignal signal = SloSignal::kLatency;
  bool firing = true;
  std::uint64_t tick = 0;      ///< event counter at the edge
  std::uint64_t sequence = 0;
  double burn_fast = 0.0;
  double burn_slow = 0.0;
};

struct SloTrackerOptions {
  SloObjective objective;
  BurnRule latency_rule;
  BurnRule recall_rule;
  WindowConfig stats_window{8, 128};  ///< latency/occupancy/rate windows
  std::size_t alert_log_capacity = 256;
};

/// Windowed SLO evaluation over a serving run.
///
/// Feeds: `record_request` per completed request (any outcome; tick =
/// request id), `record_batch` per dispatched micro-batch (tick = batch
/// index), `record_recall` per audited sample (tick = the sample's request
/// counter, from the auditor), `note_publication` per snapshot swap.
///
/// Every decision — window membership, warmup, burn thresholds, alert edges
/// — is keyed on caller-supplied counters and recorded values only; no
/// method reads a clock. Two runs feeding identical event streams produce
/// bit-identical window aggregates, burn rates, and alert sequences
/// (tests/obs/test_slo.cpp pins this).
///
/// Thread-safe: one mutex over all state; the alert callback is invoked
/// *after* the mutex is released (callbacks may re-enter read accessors).
class SloTracker {
 public:
  using AlertCallback = std::function<void(const SloAlert&)>;

  explicit SloTracker(SloTrackerOptions options = {});

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  void set_alert_callback(AlertCallback cb);

  void record_request(std::uint64_t tick, double latency_us,
                      RequestOutcome outcome, std::uint32_t escalations = 0);
  void record_batch(std::uint64_t batch_tick, std::size_t batch_size,
                    std::size_t max_batch);
  void record_recall(std::uint64_t tick, double recall);
  void note_publication(std::uint64_t version);

  const SloTrackerOptions& options() const { return options_; }

  WindowStats latency_window() const;
  WindowStats occupancy_window() const;   ///< batch size / max_batch, in [0,1]
  WindowedRate::Stats shed_window() const;
  WindowedRate::Stats escalation_window() const;

  /// Burn rate (bad fraction / error budget) over the rule's fast or slow
  /// window; 0 while the signal is disabled.
  double latency_burn(bool fast) const;
  double recall_burn(bool fast) const;

  bool alert_active(SloSignal s) const;
  std::uint64_t alerts_fired() const;      ///< edges, rising + clearing
  std::vector<SloAlert> alert_log() const; ///< oldest dropped past capacity

  std::uint64_t requests_seen() const;
  std::uint64_t publications() const;
  std::uint64_t last_published_version() const;

  /// Everything above as one JSON object (the --slo-report payload).
  std::string to_json() const;

 private:
  struct SignalState {
    WindowedRate fast;
    WindowedRate slow;
    bool active = false;
    SignalState(const BurnRule& rule)
        : fast(rule.fast), slow(rule.slow) {}
  };

  /// Feeds one bad/good event into `state`, evaluates the rule, and appends
  /// any edge to `pending`. Caller holds mu_.
  void feed_signal_locked(SloSignal signal, SignalState& state,
                          const BurnRule& rule, std::uint64_t tick, bool bad,
                          std::vector<SloAlert>& pending);
  static double burn_of(const WindowedRate::Stats& s, double error_budget);
  void dispatch(std::vector<SloAlert>&& pending);

  const SloTrackerOptions options_;

  mutable std::mutex mu_;
  WindowedHistogram latency_;
  WindowedHistogram occupancy_;
  WindowedRate shed_;
  WindowedRate escalation_;
  SignalState latency_signal_;
  SignalState recall_signal_;
  std::vector<SloAlert> alert_log_;
  std::uint64_t alert_sequence_ = 0;
  std::uint64_t requests_seen_ = 0;
  std::uint64_t publications_ = 0;
  std::uint64_t last_version_ = 0;
  AlertCallback callback_;
  std::mutex callback_mu_;  ///< serializes callback invocations
};

/// Export the tracker as live `wknng_slo_*` gauges (scrape-time reads).
/// `t` must outlive the registry's exports.
void register_slo_metrics(MetricsRegistry& reg, const SloTracker& t);

}  // namespace wknng::obs
