#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace wknng::obs {

// Virtual "thread" (track) ids in the exported trace. Build phases render on
// one lane, kernel launches on a second, serve batches on a third, and
// optional per-warp-group spans fan out over a bounded set of extra lanes so
// arbitrarily wide launches don't explode the track count.
inline constexpr std::uint32_t kTrackBuild = 0;
inline constexpr std::uint32_t kTrackLaunch = 1;
inline constexpr std::uint32_t kTrackServe = 2;
inline constexpr std::uint32_t kTrackShard = 3;
inline constexpr std::uint32_t kTrackDynamic = 4;
inline constexpr std::uint32_t kTrackWarpBase = 16;
inline constexpr std::uint32_t kNumWarpTracks = 32;

/// Category salts keeping span ids from colliding across kinds even when the
/// underlying (phase, launch, warp) indices coincide.
enum class SpanSalt : std::uint64_t {
  kBuild = 1,
  kPhase = 2,
  kLaunch = 3,
  kWarp = 4,
  kServeBatch = 5,
  kCheckpoint = 6,
  kInstant = 7,
  kShardJob = 8,
  kDynamicOp = 9,
};

/// One Chrome trace-event. `args` values are raw JSON fragments (already
/// quoted/escaped by the producer) so numeric stats need no re-parsing.
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';  // 'X' complete span, 'i' instant
  std::uint64_t id = 0;
  std::uint32_t tid = kTrackBuild;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Span tracer with deterministic ids. Timestamps and durations come from a
/// steady clock (they describe *when*, and may vary run to run); span *ids*
/// never do — they are counter-hashed from (phase index, launch index, warp
/// index, salt), so the id structure of a build trace is a pure function of
/// the schedule. Two identical builds produce the identical multiset of
/// (name, cat, id) triples, which tests assert.
///
/// Recording takes one mutex append; the disabled path is a single relaxed
/// pointer load (see active_tracer), mirroring the race/fault hook pattern.
class Tracer {
 public:
  explicit Tracer(bool warp_spans = false);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool warp_spans() const { return warp_spans_; }

  /// Microseconds since this tracer was constructed (steady clock).
  double now_us() const;

  void record(TraceEvent ev);
  void instant(const std::string& name, const std::string& cat,
               std::uint32_t tid,
               std::vector<std::pair<std::string, std::string>> args = {});

  /// Deterministic id: splitmix-style hash of the three indices and the salt.
  static std::uint64_t span_id(std::uint64_t a, std::uint64_t b,
                               std::uint64_t c, SpanSalt salt);

  /// Enter a new top-level phase ("forest", "leaf", "refine_round", ...).
  /// Returns the phase's ordinal. Launch counters observed by launch_warps
  /// attribute to the current phase.
  std::uint64_t begin_phase(const char* name);
  std::uint64_t current_phase() const {
    return phase_index_.load(std::memory_order_acquire);
  }
  /// Next launch ordinal (global, monotone — launches are sequential within
  /// a build so this doubles as a per-phase order).
  std::uint64_t next_launch() {
    return launch_counter_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Next serve-batch ordinal.
  std::uint64_t next_batch() {
    return batch_counter_.fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t event_count() const;
  std::vector<TraceEvent> events() const;

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — Chrome trace-event JSON,
  /// loadable in Perfetto / chrome://tracing. Events are sorted by (ts, tid)
  /// so the output is stable for a given set of spans.
  std::string to_chrome_json() const;
  void write_chrome_json(const std::string& path) const;

 private:
  const bool warp_spans_;
  const std::chrono::steady_clock::time_point origin_;
  std::atomic<std::uint64_t> phase_index_{0};
  std::atomic<std::uint64_t> launch_counter_{0};
  std::atomic<std::uint64_t> batch_counter_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

namespace trace_detail {
// Process-global active tracer, installed via ScopedTracing. Same shape as
// fault_detail::g_active / the race-detector hook: one relaxed/acquire load
// plus a predicted-not-taken branch when disabled.
inline std::atomic<Tracer*> g_active{nullptr};
}  // namespace trace_detail

/// The currently-installed tracer, or nullptr when tracing is off.
inline Tracer* active_tracer() {
  return trace_detail::g_active.load(std::memory_order_acquire);
}

/// RAII installer. Only one tracer may be active at a time; nesting throws.
class ScopedTracing {
 public:
  explicit ScopedTracing(Tracer& tracer);
  ~ScopedTracing();

  ScopedTracing(const ScopedTracing&) = delete;
  ScopedTracing& operator=(const ScopedTracing&) = delete;
};

/// RAII span: captures the start time at construction and records a complete
/// ('X') event at destruction. A null tracer makes every method a no-op, so
/// call sites write straight-line code and pay nothing when tracing is off.
class Span {
 public:
  Span(Tracer* tracer, std::string name, std::string cat, std::uint64_t id,
       std::uint32_t tid)
      : tracer_(tracer) {
    if (!tracer_) return;
    ev_.name = std::move(name);
    ev_.cat = std::move(cat);
    ev_.id = id;
    ev_.tid = tid;
    ev_.ts_us = tracer_->now_us();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  /// Attach a raw-JSON argument (caller guarantees `json` is valid JSON).
  void arg(const std::string& key, std::string json) {
    if (tracer_) ev_.args.emplace_back(key, std::move(json));
  }
  void arg_num(const std::string& key, double v);
  void arg_num(const std::string& key, std::uint64_t v);
  void arg_str(const std::string& key, const std::string& v);

  /// Record the span now instead of at destruction (idempotent).
  void finish() {
    if (!tracer_) return;
    ev_.dur_us = tracer_->now_us() - ev_.ts_us;
    tracer_->record(std::move(ev_));
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_;
  TraceEvent ev_;
};

}  // namespace wknng::obs
