#include "dynamic/metrics.hpp"

#include <sstream>

#include "obs/registry.hpp"

namespace wknng::dynamic {

std::string DynamicMetrics::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{"
     << "\"inserts\":" << inserts.value()
     << ",\"insert_rows\":" << insert_rows.value()
     << ",\"deletes\":" << deletes.value()
     << ",\"delete_rows\":" << delete_rows.value()
     << ",\"repairs\":" << repairs.value()
     << ",\"repaired_rows\":" << repaired_rows.value()
     << ",\"compactions\":" << compactions.value()
     << ",\"reclaimed_rows\":" << reclaimed_rows.value()
     << ",\"wal_records\":" << wal_records.value()
     << ",\"wal_bytes\":" << wal_bytes.value()
     << ",\"replayed_records\":" << replayed_records.value()
     << ",\"layout_rebuilds\":" << layout_rebuilds.value()
     << ",\"layout_reuses\":" << layout_reuses.value() << "}"
     << ",\"version\":" << version.value()
     << ",\"total_rows\":" << total_rows.value()
     << ",\"live_rows\":" << live_rows.value()
     << ",\"tombstones\":" << tombstones.value()
     << ",\"tombstone_ratio\":" << tombstone_ratio.value()
     << ",\"dirty_rows\":" << dirty_rows.value() << "}";
  return os.str();
}

void register_metrics(obs::MetricsRegistry& reg, const DynamicMetrics& m) {
  reg.link_counter("wknng_dynamic_inserts_total", m.inserts,
                   "Insert batches accepted by the dynamic index");
  reg.link_counter("wknng_dynamic_insert_rows_total", m.insert_rows,
                   "Rows inserted into the dynamic index");
  reg.link_counter("wknng_dynamic_deletes_total", m.deletes,
                   "Delete batches accepted by the dynamic index");
  reg.link_counter("wknng_dynamic_delete_rows_total", m.delete_rows,
                   "Rows tombstoned in the dynamic index");
  reg.link_counter("wknng_dynamic_repairs_total", m.repairs,
                   "Dirty-region repair passes run");
  reg.link_counter("wknng_dynamic_repaired_rows_total", m.repaired_rows,
                   "Row-rounds repaired by dirty-region NN-Descent");
  reg.link_counter("wknng_dynamic_compactions_total", m.compactions,
                   "Compactions (tombstone reclamation) run");
  reg.link_counter("wknng_dynamic_reclaimed_rows_total", m.reclaimed_rows,
                   "Tombstoned slots reclaimed by compaction");
  reg.link_counter("wknng_dynamic_wal_records_total", m.wal_records,
                   "Records appended to the write-ahead delta log");
  reg.link_counter("wknng_dynamic_wal_bytes_total", m.wal_bytes,
                   "Bytes appended to the write-ahead delta log");
  reg.link_counter("wknng_dynamic_replayed_records_total", m.replayed_records,
                   "Delta-log records re-applied during recovery");
  reg.link_counter("wknng_dynamic_layout_rebuilds_total", m.layout_rebuilds,
                   "Optimized serving layouts rebuilt at publication");
  reg.link_counter("wknng_dynamic_layout_reuses_total", m.layout_reuses,
                   "Publications that reused a layout with a fresh mask");
  reg.gauge_fn("wknng_dynamic_version", [&m] { return m.version.value(); },
               "Last published graph version");
  reg.gauge_fn("wknng_dynamic_total_rows",
               [&m] { return m.total_rows.value(); },
               "Internal rows (live + tombstoned)");
  reg.gauge_fn("wknng_dynamic_live_rows", [&m] { return m.live_rows.value(); },
               "Rows visible to queries");
  reg.gauge_fn("wknng_dynamic_tombstones",
               [&m] { return m.tombstones.value(); },
               "Tombstoned rows awaiting compaction");
  reg.gauge_fn("wknng_dynamic_tombstone_ratio",
               [&m] { return m.tombstone_ratio.value(); },
               "Tombstoned fraction of internal rows");
  reg.gauge_fn("wknng_dynamic_dirty_rows", [&m] { return m.dirty_rows.value(); },
               "Rows awaiting dirty-region repair");
}

}  // namespace wknng::dynamic
