#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace wknng::obs {
class MetricsRegistry;
}  // namespace wknng::obs

namespace wknng::dynamic {

/// Instrumentation of the mutable index (`wknng_dynamic_*` series). Counters
/// accumulate over the index lifetime; gauges are refreshed by the index
/// after every version bump, so an exporter scrape sees the last published
/// state without touching the writer lock.
struct DynamicMetrics {
  obs::Counter inserts;            ///< insert batches accepted
  obs::Counter insert_rows;        ///< rows inserted
  obs::Counter deletes;            ///< delete batches accepted
  obs::Counter delete_rows;        ///< rows tombstoned
  obs::Counter repairs;            ///< dirty-region repair passes run
  obs::Counter repaired_rows;      ///< row-rounds repaired
  obs::Counter compactions;        ///< compactions run
  obs::Counter reclaimed_rows;     ///< tombstoned slots reclaimed
  obs::Counter wal_records;        ///< records appended to the delta log
  obs::Counter wal_bytes;          ///< bytes appended to the delta log
  obs::Counter replayed_records;   ///< records re-applied during recovery
  obs::Counter layout_rebuilds;    ///< optimized serving layouts rebuilt
  obs::Counter layout_reuses;      ///< publications reusing a layout (fresh mask)

  obs::Gauge version;              ///< last published graph version
  obs::Gauge total_rows;           ///< internal rows (live + tombstoned)
  obs::Gauge live_rows;            ///< rows visible to queries
  obs::Gauge tombstones;           ///< tombstoned rows awaiting compaction
  obs::Gauge tombstone_ratio;      ///< tombstones / total
  obs::Gauge dirty_rows;           ///< rows awaiting repair

  std::string to_json() const;
};

/// Registers the `wknng_dynamic_*` series into the central registry (linked
/// instruments: `m` must outlive `reg`'s export calls).
void register_metrics(obs::MetricsRegistry& reg, const DynamicMetrics& m);

}  // namespace wknng::dynamic
