#include "dynamic/dynamic_knng.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "common/topk.hpp"
#include "core/builder.hpp"
#include "core/incremental.hpp"
#include "core/leaf_knn.hpp"
#include "core/refine.hpp"
#include "core/rp_forest.hpp"
#include "data/graph_io.hpp"
#include "obs/trace.hpp"
#include "opt/optimize.hpp"
#include "simt/launch.hpp"
#include "simt/packed.hpp"
#include "simt/warp_distance.hpp"

namespace wknng::dynamic {

using simt::kWarpSize;
using simt::Lanes;
using simt::Packed;
using simt::Warp;

namespace {

/// Appends rows of `extra` to `base` (reallocating copy — rows are immutable
/// once stored; this runs between kernel launches only).
FloatMatrix append_rows(const FloatMatrix& base, const FloatMatrix& extra) {
  WKNNG_CHECK(base.cols() == extra.cols());
  FloatMatrix out(base.rows() + extra.rows(), base.cols());
  std::memcpy(out.data(), base.data(), base.size() * sizeof(float));
  std::memcpy(out.data() + base.size(), extra.data(),
              extra.size() * sizeof(float));
  return out;
}

const char* op_name(data::WalRecord::Type t) {
  switch (t) {
    case data::WalRecord::Type::kInsert: return "dynamic_insert";
    case data::WalRecord::Type::kDelete: return "dynamic_delete";
    case data::WalRecord::Type::kRepair: return "dynamic_repair";
    case data::WalRecord::Type::kCompact: return "dynamic_compact";
  }
  return "dynamic_op";
}

/// RAII span of one logged state transition: id is counter-hashed from the
/// version the transition produces, so two runs of the same mutation history
/// trace the identical id structure.
obs::Span op_span(data::WalRecord::Type t, std::uint64_t version) {
  obs::Tracer* tracer = obs::active_tracer();
  return obs::Span(tracer, op_name(t), "dynamic",
                   obs::Tracer::span_id(version, 0, 0,
                                        obs::SpanSalt::kDynamicOp),
                   obs::kTrackDynamic);
}

}  // namespace

DynamicKnng::DynamicKnng(ThreadPool& pool, const core::BuildParams& params,
                         FloatMatrix base_points, std::string dir,
                         DynamicParams dyn)
    : pool_(&pool),
      params_(params),
      dyn_(std::move(dyn)),
      dir_(std::move(dir)),
      dim_(base_points.cols()),
      points_(std::move(base_points)),
      sets_(points_.rows(), params.k) {
  WKNNG_CHECK_MSG(params_.compression == core::Compression::kNone,
                  "dynamic index does not support the compressed tier");
  WKNNG_CHECK_MSG(points_.rows() > params_.k,
                  "need more base points than k");
  std::filesystem::create_directories(dir_);
  signature_ = core::build_signature(params_, points_.rows(), dim_);

  // Base build: the standard w-KNNG pipeline feeding our own set array
  // (mirrors IncrementalKnng so the base state is the familiar one).
  const core::Buckets forest =
      core::build_rp_forest(*pool_, points_, params_.num_trees,
                            params_.leaf_size, params_.seed, &acc_,
                            params_.spill);
  core::leaf_knn(*pool_, points_, forest, params_.strategy, sets_, &acc_,
                 params_.scratch_bytes);
  for (std::size_t round = 0; round < params_.refine_iters; ++round) {
    const core::Adjacency adj =
        core::snapshot_adjacency(*pool_, sets_, params_.reverse_cap);
    core::refine_round(*pool_, points_, adj, params_, sets_, &acc_);
  }

  // Anchor: the WKNNGCP1 image replay restarts from.
  data::BuildCheckpoint ck;
  ck.signature = signature_;
  ck.n = points_.rows();
  ck.k = params_.k;
  ck.rounds_done = static_cast<std::uint32_t>(params_.refine_iters);
  ck.effective_strategy = static_cast<std::uint32_t>(params_.strategy);
  ck.sets.assign(sets_.words().begin(), sets_.words().end());
  data::write_checkpoint(base_checkpoint_path(dir_), ck);

  const std::size_t n0 = points_.rows();
  external_.resize(n0);
  intern_.reserve(n0);
  for (std::size_t p = 0; p < n0; ++p) {
    external_[p] = static_cast<std::uint32_t>(p);
    intern_.emplace(static_cast<std::uint32_t>(p),
                    static_cast<std::uint32_t>(p));
  }
  next_external_ = static_cast<std::uint32_t>(n0);
  tombstone_.assign(n0, 0);
  dirty_mark_.assign(n0, 0);
  version_ = 1;
  graph_ = sets_.extract(*pool_);

  wal_ = std::make_unique<data::WalWriter>(dir_, signature_, 1, version_,
                                           dyn_.wal_segment_bytes);
  std::lock_guard<std::mutex> lock(mu_);
  publish_locked();
}

DynamicKnng::DynamicKnng(Recover, ThreadPool& pool,
                         const core::BuildParams& params,
                         FloatMatrix base_points, std::string dir,
                         DynamicParams dyn)
    : pool_(&pool),
      params_(params),
      dyn_(std::move(dyn)),
      dir_(std::move(dir)),
      dim_(base_points.cols()),
      points_(std::move(base_points)),
      sets_(points_.rows(), params.k) {
  WKNNG_CHECK_MSG(params_.compression == core::Compression::kNone,
                  "dynamic index does not support the compressed tier");
  signature_ = core::build_signature(params_, points_.rows(), dim_);
  init_base_from_checkpoint(points_);

  const std::size_t n0 = points_.rows();
  external_.resize(n0);
  intern_.reserve(n0);
  for (std::size_t p = 0; p < n0; ++p) {
    external_[p] = static_cast<std::uint32_t>(p);
    intern_.emplace(static_cast<std::uint32_t>(p),
                    static_cast<std::uint32_t>(p));
  }
  next_external_ = static_cast<std::uint32_t>(n0);
  tombstone_.assign(n0, 0);
  dirty_mark_.assign(n0, 0);
  version_ = 1;
  graph_ = sets_.extract(*pool_);

  data::WalReplay replay;
  {
    obs::Span span(obs::active_tracer(), "dynamic_replay", "dynamic",
                   obs::Tracer::span_id(0, 0, 0, obs::SpanSalt::kDynamicOp),
                   obs::kTrackDynamic);
    replay = data::replay_wal(dir_, signature_, version_,
                              [&](const data::WalRecord& rec) {
                                apply_record(rec);
                              });
    span.arg_num("records", static_cast<std::uint64_t>(replay.records));
    span.arg_num("last_version", replay.last_version);
  }
  WKNNG_CHECK_MSG(replay.records == 0 || replay.last_version == version_,
                  "replay ended at version " << replay.last_version
                                             << " but index is at " << version_);
  replay_torn_tail_ = replay.torn_tail;
  metrics_.replayed_records.add(replay.records);

  // A restarted writer always opens a fresh segment: it must never append
  // after a (possibly torn) tail it did not write.
  wal_ = std::make_unique<data::WalWriter>(dir_, signature_, replay.next_seq,
                                           version_, dyn_.wal_segment_bytes);
  std::lock_guard<std::mutex> lock(mu_);
  publish_locked();
}

void DynamicKnng::init_base_from_checkpoint(const FloatMatrix& base_points) {
  const data::BuildCheckpoint ck =
      data::read_checkpoint(base_checkpoint_path(dir_));
  if (ck.signature != signature_) {
    std::ostringstream os;
    os << "base checkpoint signature " << ck.signature
       << " does not match build signature " << signature_
       << " (different parameters or base data)";
    throw CheckpointMismatchError(os.str());
  }
  if (ck.n != base_points.rows() || ck.k != params_.k) {
    std::ostringstream os;
    os << "base checkpoint shape (n=" << ck.n << ", k=" << ck.k
       << ") does not match (n=" << base_points.rows() << ", k=" << params_.k
       << ")";
    throw CheckpointMismatchError(os.str());
  }
  sets_.restore(ck.sets);
}

// --- Mutations --------------------------------------------------------------

std::vector<std::uint32_t> DynamicKnng::insert(const FloatMatrix& rows) {
  // Typed admission, all before the lock and the log: a rejected batch never
  // mutates the index and never produces a WAL record.
  if (rows.rows() == 0) {
    throw MutationError("insert: empty batch");
  }
  if (rows.cols() != dim_) {
    std::ostringstream os;
    os << "insert: batch dim " << rows.cols() << " != index dim " << dim_;
    throw MutationError(os.str());
  }
  const std::vector<std::uint32_t> bad = core::scan_nonfinite_rows(*pool_, rows);
  if (!bad.empty()) {
    std::ostringstream os;
    os << "insert: non-finite values in batch row " << bad.front() << " ("
       << bad.size() << " bad row" << (bad.size() == 1 ? "" : "s")
       << "); the dynamic index rejects rather than quarantines";
    throw MutationError(os.str());
  }

  std::lock_guard<std::mutex> lock(mu_);
  obs::Span span = op_span(data::WalRecord::Type::kInsert, version_ + 1);

  std::vector<std::uint32_t> ids(rows.rows());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = next_external_ + static_cast<std::uint32_t>(i);
  }

  data::WalRecord rec;
  rec.type = data::WalRecord::Type::kInsert;
  rec.version = version_ + 1;
  rec.external_ids = ids;
  rec.rows = rows;
  const std::uint64_t before = wal_->bytes_appended();
  wal_->append(rec);
  metrics_.wal_records.add(1);
  metrics_.wal_bytes.add(wal_->bytes_appended() - before);

  apply_insert(rows, ids, /*replaying=*/false);
  publish_locked();
  span.arg_num("rows", static_cast<std::uint64_t>(rows.rows()));
  span.finish();
  if (dyn_.auto_maintain) maintain_locked();
  return ids;
}

std::size_t DynamicKnng::erase(std::span<const std::uint32_t> external_ids) {
  std::lock_guard<std::mutex> lock(mu_);

  // Admission: resolve to live internal rows, dropping unknowns, repeats,
  // and already-tombstoned ids — the log only ever records effective deletes.
  std::vector<std::uint32_t> accepted;
  accepted.reserve(external_ids.size());
  std::unordered_set<std::uint32_t> seen;
  for (const std::uint32_t ext : external_ids) {
    const auto it = intern_.find(ext);
    if (it == intern_.end()) continue;
    if (tombstone_[it->second]) continue;
    if (!seen.insert(ext).second) continue;
    accepted.push_back(ext);
  }
  if (accepted.empty()) return 0;

  obs::Span span = op_span(data::WalRecord::Type::kDelete, version_ + 1);
  data::WalRecord rec;
  rec.type = data::WalRecord::Type::kDelete;
  rec.version = version_ + 1;
  rec.external_ids = accepted;
  const std::uint64_t before = wal_->bytes_appended();
  wal_->append(rec);
  metrics_.wal_records.add(1);
  metrics_.wal_bytes.add(wal_->bytes_appended() - before);

  apply_delete(accepted, /*replaying=*/false);
  publish_locked();
  span.arg_num("rows", static_cast<std::uint64_t>(accepted.size()));
  span.finish();
  if (dyn_.auto_maintain) maintain_locked();
  return accepted.size();
}

// --- Apply: the deterministic state transitions -----------------------------

void DynamicKnng::apply_record(const data::WalRecord& rec) {
  WKNNG_CHECK_MSG(rec.version == version_ + 1,
                  "WAL record version " << rec.version
                                        << " does not continue from "
                                        << version_);
  switch (rec.type) {
    case data::WalRecord::Type::kInsert:
      apply_insert(rec.rows, rec.external_ids, /*replaying=*/true);
      return;
    case data::WalRecord::Type::kDelete:
      apply_delete(rec.external_ids, /*replaying=*/true);
      return;
    case data::WalRecord::Type::kRepair:
      apply_repair(rec.rounds, /*replaying=*/true);
      return;
    case data::WalRecord::Type::kCompact:
      apply_compact(/*replaying=*/true);
      return;
  }
  throw IoError("WAL record with unknown type survived framing");
}

void DynamicKnng::apply_insert(const FloatMatrix& rows,
                               std::span<const std::uint32_t> external_ids,
                               bool replaying) {
  WKNNG_CHECK(rows.rows() == external_ids.size());
  const std::size_t old_n = points_.rows();
  const std::size_t batch = rows.rows();
  const std::size_t k = params_.k;

  // Phase 1: read-only descent over the frozen pre-batch graph. Every batch
  // row searches the same state (batch points never see each other), and each
  // query's RNG stream is keyed by its stable external id — the result is a
  // pure function of (pre-batch state, row, external id), independent of
  // batching and scheduling. Tombstoned rows are excluded from the results
  // (a deleted point must never become a new point's neighbor) but remain
  // navigable.
  core::SearchParams sp = dyn_.insert_search;
  sp.k = k;
  sp.seed = params_.seed;
  std::vector<std::uint64_t> tags(batch);
  for (std::size_t i = 0; i < batch; ++i) tags[i] = external_ids[i];
  const core::BatchSearchResult found = core::graph_search_batch(
      *pool_, points_, graph_, rows, tags, sp, nullptr, &acc_, nullptr,
      tombstone_);

  // Phase 2: grow storage, then connect — forward edges into the new rows,
  // reverse edges into the found neighbors, through the same strategy-
  // dispatched edge discipline the incremental builder uses.
  points_ = append_rows(points_, rows);
  sets_.grow(points_.rows());
  tombstone_.resize(points_.rows(), 0);
  dirty_mark_.resize(points_.rows(), 0);
  external_.reserve(points_.rows());
  for (std::size_t i = 0; i < batch; ++i) {
    const auto internal = static_cast<std::uint32_t>(old_n + i);
    external_.push_back(external_ids[i]);
    intern_[external_ids[i]] = internal;
    if (external_ids[i] >= next_external_) next_external_ = external_ids[i] + 1;
  }

  const core::Strategy strategy = params_.strategy;
  simt::LaunchConfig config;
  config.scratch_bytes = params_.scratch_bytes;
  config.trace_label = "dynamic_connect";
  simt::launch_warps(*pool_, batch, config, &acc_, [&](Warp& w) {
    const auto id = static_cast<std::uint32_t>(old_n + w.id());
    const auto row = found.results.row(w.id());
    const std::size_t cnt = found.results.row_size(w.id());
    core::connect_point(w, sets_, strategy, id, row.subspan(0, cnt));
  });

  // Dirty marking happens host-side after the launch so the dirty list's
  // order never depends on warp scheduling.
  for (std::size_t i = 0; i < batch; ++i) {
    mark_dirty(static_cast<std::uint32_t>(old_n + i));
    const auto row = found.results.row(i);
    const std::size_t cnt = found.results.row_size(i);
    for (std::size_t s = 0; s < cnt; ++s) mark_dirty(row[s].id);
  }

  version_ += 1;
  graph_ = sets_.extract(*pool_);  // refresh: the next descent's frozen state
  force_reopt_ = true;  // row count changed: any optimized layout is stale
  if (!replaying) {
    metrics_.inserts.add(1);
    metrics_.insert_rows.add(batch);
  }
}

void DynamicKnng::apply_delete(std::span<const std::uint32_t> external_ids,
                               bool replaying) {
  std::vector<std::uint8_t> in_batch(points_.rows(), 0);
  std::size_t deleted = 0;
  for (const std::uint32_t ext : external_ids) {
    const auto it = intern_.find(ext);
    WKNNG_CHECK_MSG(it != intern_.end(),
                    "delete record names unknown external id " << ext);
    const std::uint32_t p = it->second;
    if (tombstone_[p]) continue;  // erase() filters these; replay is belt-and-braces
    tombstone_[p] = 1;
    ++tombstone_count_;
    in_batch[p] = 1;
    mark_dirty(p);
    ++deleted;
  }

  // Reverse pass: every live row pointing at a deleted one is graph-degraded
  // until repair re-scores it; find them in parallel, mark in host order.
  std::vector<std::uint8_t> touched(points_.rows(), 0);
  const std::size_t k = params_.k;
  pool_->parallel_for(points_.rows(), 256, [&](std::size_t p) {
    if (tombstone_[p]) return;
    std::vector<std::uint32_t> ids(k);
    const std::size_t cnt =
        sets_.snapshot_ids(static_cast<std::uint32_t>(p), ids.data());
    for (std::size_t s = 0; s < cnt; ++s) {
      if (ids[s] < in_batch.size() && in_batch[ids[s]] != 0) {
        touched[p] = 1;
        return;
      }
    }
  });
  for (std::size_t p = 0; p < touched.size(); ++p) {
    if (touched[p] != 0) mark_dirty(static_cast<std::uint32_t>(p));
  }

  version_ += 1;
  // sets_ (and so graph_) are untouched by a delete: visibility is the
  // published tombstone mask, repair/compaction do the edge work later.
  if (!replaying) {
    metrics_.deletes.add(1);
    metrics_.delete_rows.add(deleted);
  }
}

std::size_t DynamicKnng::repair(std::size_t rounds) {
  std::lock_guard<std::mutex> lock(mu_);
  return repair_locked(rounds == 0 ? dyn_.repair_rounds : rounds);
}

std::size_t DynamicKnng::repair_locked(std::size_t rounds) {
  if (dirty_.empty() || rounds == 0) return 0;
  obs::Span span = op_span(data::WalRecord::Type::kRepair, version_ + 1);
  data::WalRecord rec;
  rec.type = data::WalRecord::Type::kRepair;
  rec.version = version_ + 1;
  rec.rounds = static_cast<std::uint32_t>(rounds);
  const std::uint64_t before = wal_->bytes_appended();
  wal_->append(rec);
  metrics_.wal_records.add(1);
  metrics_.wal_bytes.add(wal_->bytes_appended() - before);

  const std::size_t repaired = apply_repair(rounds, /*replaying=*/false);
  publish_locked();
  span.arg_num("row_rounds", static_cast<std::uint64_t>(repaired));
  return repaired;
}

std::size_t DynamicKnng::apply_repair(std::size_t rounds, bool replaying) {
  const std::size_t k = params_.k;
  const std::size_t sample_cap =
      params_.refine_sample == 0 ? 512 : params_.refine_sample;
  std::size_t repaired = 0;

  for (std::size_t round = 0; round < rounds; ++round) {
    if (dirty_.empty()) break;
    std::vector<std::uint32_t> work = dirty_;
    std::sort(work.begin(), work.end());

    // Candidates come from a frozen adjacency snapshot; each warp scores them
    // against its own point and rewrites *only its own row* — the refine_round
    // discipline, which makes a round deterministic under any warp schedule.
    const core::Adjacency adj =
        core::snapshot_adjacency(*pool_, sets_, params_.reverse_cap);

    simt::LaunchConfig config;
    config.scratch_bytes = params_.scratch_bytes;
    config.trace_label = "dynamic_repair";
    simt::launch_warps(*pool_, work.size(), config, &acc_, [&](Warp& w) {
      const std::uint32_t p = work[w.id()];
      if (tombstone_[p] != 0) return;

      std::vector<std::uint8_t> seen(points_.rows(), 0);
      seen[p] = 1;
      std::vector<std::uint32_t> cand;
      cand.reserve(sample_cap);
      auto consider = [&](std::uint32_t c) {
        if (c >= seen.size() || seen[c] != 0) return;
        seen[c] = 1;
        if (tombstone_[c] != 0) return;  // lazy expansion exclusion
        if (cand.size() < sample_cap) cand.push_back(c);
      };
      for (const std::uint32_t q : adj.forward(p)) consider(q);
      for (const std::uint32_t q : adj.reverse(p)) consider(q);
      for (const std::uint32_t q : adj.forward(p)) {
        for (const std::uint32_t r : adj.forward(q)) consider(r);
      }
      for (const std::uint32_t q : adj.reverse(p)) {
        for (const std::uint32_t r : adj.forward(q)) consider(r);
      }

      // Keep the row's surviving live entries (their distances are stored),
      // rescore the candidate pool, take the k best of the union.
      TopK best(k);
      const std::uint64_t* slots = sets_.row(p);
      for (std::size_t s = 0; s < k; ++s) {
        const std::uint64_t v = slots[s];
        if (Packed::is_empty(v) || !Packed::is_finite(v)) continue;
        const std::uint32_t id = Packed::id(v);
        if (id >= points_.rows() || id == p || tombstone_[id] != 0) continue;
        if (seen[id] == 0) seen[id] = 1;
        best.push(Packed::dist(v), id);
      }
      w.count_read(k * sizeof(std::uint64_t));

      const auto query = points_.row(p);
      for (std::size_t t0 = 0; t0 < cand.size(); t0 += kWarpSize) {
        const std::size_t cnt =
            std::min<std::size_t>(kWarpSize, cand.size() - t0);
        Lanes<std::uint32_t> lane_ids{};
        Lanes<bool> active{};
        for (std::size_t l = 0; l < cnt; ++l) {
          lane_ids[l] = cand[t0 + l];
          active[l] = true;
        }
        const Lanes<float> d = simt::warp_l2_batch(
            w, query, lane_ids, active,
            [&](std::uint32_t c) { return points_.row(c); });
        for (std::size_t l = 0; l < cnt; ++l) best.push(d[l], lane_ids[l]);
      }

      // Own-row rewrite, sorted ascending with kEmpty padding — valid under
      // every strategy's row invariant.
      auto result = best.take_sorted();
      std::uint64_t* out = sets_.row(p);
      for (std::size_t s = 0; s < k; ++s) {
        out[s] = s < result.size()
                     ? Packed::make(result[s].dist, result[s].id)
                     : Packed::kEmpty;
      }
      w.count_write(k * sizeof(std::uint64_t));
    });

    for (const std::uint32_t p : work) {
      if (tombstone_[p] == 0) ++repaired;
    }
  }

  for (const std::uint32_t p : dirty_) dirty_mark_[p] = 0;
  dirty_.clear();
  version_ += 1;
  graph_ = sets_.extract(*pool_);
  // Edge drift: the layout stays safe (same rows, same permutation) but
  // serves pre-repair adjacency; tolerated up to optimize_staleness passes.
  ++repairs_since_opt_;
  if (!replaying) {
    metrics_.repairs.add(1);
    metrics_.repaired_rows.add(repaired);
  }
  return repaired;
}

bool DynamicKnng::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  return compact_locked();
}

bool DynamicKnng::compact_locked() {
  if (tombstone_count_ == 0) return false;
  if (tombstone_count_ >= points_.rows()) return false;  // refuse to empty
  obs::Span span = op_span(data::WalRecord::Type::kCompact, version_ + 1);
  data::WalRecord rec;
  rec.type = data::WalRecord::Type::kCompact;
  rec.version = version_ + 1;
  const std::uint64_t before = wal_->bytes_appended();
  wal_->append(rec);
  metrics_.wal_records.add(1);
  metrics_.wal_bytes.add(wal_->bytes_appended() - before);

  apply_compact(/*replaying=*/false);
  publish_locked();
  return true;
}

void DynamicKnng::apply_compact(bool replaying) {
  const std::size_t old_n = points_.rows();
  const std::size_t k = params_.k;

  // Live rows keep their relative order, so the remap is monotone and the
  // rewritten rows stay sorted after id substitution... except where a
  // tombstoned neighbor is dropped — those rows are marked dirty below.
  std::vector<std::uint32_t> remap(old_n, KnnGraph::kInvalid);
  std::vector<std::uint32_t> live;
  live.reserve(old_n - tombstone_count_);
  for (std::size_t p = 0; p < old_n; ++p) {
    if (tombstone_[p] != 0) continue;
    remap[p] = static_cast<std::uint32_t>(live.size());
    live.push_back(static_cast<std::uint32_t>(p));
  }
  const std::size_t new_n = live.size();
  WKNNG_CHECK_MSG(new_n > 0, "compaction would empty the index");

  std::vector<std::uint64_t> new_words(new_n * k, Packed::kEmpty);
  std::vector<std::uint8_t> lost(new_n, 0);
  pool_->parallel_for(new_n, 64, [&](std::size_t i) {
    const std::uint32_t p = live[i];
    const std::uint64_t* src = sets_.row(p);
    std::vector<std::uint64_t> vals;
    vals.reserve(k);
    for (std::size_t s = 0; s < k; ++s) {
      const std::uint64_t v = src[s];
      if (Packed::is_empty(v)) continue;
      const std::uint32_t id = Packed::id(v);
      if (!Packed::is_finite(v) || id >= old_n || id == p ||
          remap[id] == KnnGraph::kInvalid) {
        lost[i] = 1;  // dropped an edge: this row needs repair attention
        continue;
      }
      vals.push_back(Packed::make(Packed::dist(v), remap[id]));
    }
    std::sort(vals.begin(), vals.end());
    std::copy(vals.begin(), vals.end(), new_words.data() + i * k);
  });

  FloatMatrix new_points(new_n, dim_);
  pool_->parallel_for(new_n, 256, [&](std::size_t i) {
    const auto src = points_.row(live[i]);
    auto dst = new_points.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  });

  // Dirty set: surviving old marks (remapped, original order) plus every row
  // that lost an edge (ascending) — both host-side deterministic.
  std::vector<std::uint8_t> new_mark(new_n, 0);
  std::vector<std::uint32_t> new_dirty;
  for (const std::uint32_t p : dirty_) {
    const std::uint32_t m = remap[p];
    if (m == KnnGraph::kInvalid || new_mark[m] != 0) continue;
    new_mark[m] = 1;
    new_dirty.push_back(m);
  }
  for (std::size_t i = 0; i < new_n; ++i) {
    if (lost[i] != 0 && new_mark[i] == 0) {
      new_mark[i] = 1;
      new_dirty.push_back(static_cast<std::uint32_t>(i));
    }
  }

  std::vector<std::uint32_t> new_external(new_n);
  intern_.clear();
  intern_.reserve(new_n);
  for (std::size_t i = 0; i < new_n; ++i) {
    new_external[i] = external_[live[i]];
    intern_[new_external[i]] = static_cast<std::uint32_t>(i);
  }

  const std::size_t reclaimed = old_n - new_n;
  points_ = std::move(new_points);
  sets_.shrink(new_n);
  sets_.restore(new_words);
  external_ = std::move(new_external);
  tombstone_.assign(new_n, 0);
  tombstone_count_ = 0;
  dirty_mark_ = std::move(new_mark);
  dirty_ = std::move(new_dirty);
  version_ += 1;
  graph_ = sets_.extract(*pool_);
  force_reopt_ = true;  // internal ids rewritten: the permutation is void
  if (!replaying) {
    metrics_.compactions.add(1);
    metrics_.reclaimed_rows.add(reclaimed);
  }
}

void DynamicKnng::maintain() {
  std::lock_guard<std::mutex> lock(mu_);
  maintain_locked();
}

void DynamicKnng::maintain_locked() {
  if (dirty_.size() >= dyn_.repair_threshold) {
    repair_locked(dyn_.repair_rounds);
  }
  const double ratio =
      points_.rows() == 0
          ? 0.0
          : static_cast<double>(tombstone_count_) /
                static_cast<double>(points_.rows());
  if (tombstone_count_ > 0 && ratio >= dyn_.compact_threshold) {
    compact_locked();
  }
}

// --- Publication & introspection --------------------------------------------

void DynamicKnng::publish_locked() {
  auto snap = std::make_shared<serve::GraphSnapshot>(version_, points_, graph_);
  snap->tombstones =
      std::make_shared<const std::vector<std::uint8_t>>(tombstone_);
  snap->external_ids =
      std::make_shared<const std::vector<std::uint32_t>>(external_);
  if (dyn_.optimize) {
    const bool reusable = serving_ != nullptr && !force_reopt_ &&
                          repairs_since_opt_ <= dyn_.optimize_staleness &&
                          serving_->n() == points_.rows();
    if (!reusable) {
      // Structural staleness: the permutation, shape, or too much edge drift.
      // Build fresh under the writer lock — readers keep the previous
      // snapshot (previous layout included) until the swap below.
      serving_ = std::make_shared<const opt::ServingGraph>(opt::optimize_serving(
          *pool_, points_, graph_, dyn_.optimize_options, tombstone_, version_,
          &acc_));
      force_reopt_ = false;
      repairs_since_opt_ = 0;
      metrics_.layout_rebuilds.add(1);
      snap->serving = serving_;  // baked exclude == this version's tombstones
    } else {
      // Delete-only drift: the permutation is still exact, so reuse the
      // layout and re-permute the current tombstones into its id space —
      // points deleted since the build stay invisible on the optimized path.
      snap->serving = serving_;
      auto mask =
          std::make_shared<std::vector<std::uint8_t>>(points_.rows(), 0);
      for (std::size_t p = 0; p < points_.rows(); ++p) {
        (*mask)[serving_->old_to_new[p]] = tombstone_[p];
      }
      snap->serving_exclude = std::move(mask);
      metrics_.layout_reuses.add(1);
    }
  }
  std::shared_ptr<const serve::GraphSnapshot> pub = std::move(snap);
  slot_.publish(pub);
  refresh_gauges_locked();
  if (dyn_.slo != nullptr) dyn_.slo->note_publication(version_);
  if (dyn_.on_publish) dyn_.on_publish(std::move(pub));
}

void DynamicKnng::refresh_gauges_locked() {
  const auto total = static_cast<double>(points_.rows());
  metrics_.version.set(static_cast<double>(version_));
  metrics_.total_rows.set(total);
  metrics_.live_rows.set(total - static_cast<double>(tombstone_count_));
  metrics_.tombstones.set(static_cast<double>(tombstone_count_));
  metrics_.tombstone_ratio.set(
      total == 0.0 ? 0.0 : static_cast<double>(tombstone_count_) / total);
  metrics_.dirty_rows.set(static_cast<double>(dirty_.size()));
}

void DynamicKnng::mark_dirty(std::uint32_t internal) {
  if (dirty_mark_[internal] != 0) return;
  dirty_mark_[internal] = 1;
  dirty_.push_back(internal);
}

DynamicState DynamicKnng::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  DynamicState s;
  s.version = version_;
  s.total_rows = points_.rows();
  s.live_rows = points_.rows() - tombstone_count_;
  s.tombstones = tombstone_count_;
  s.dirty_rows = dirty_.size();
  s.next_external = next_external_;
  s.tombstone_ratio =
      s.total_rows == 0
          ? 0.0
          : static_cast<double>(s.tombstones) /
                static_cast<double>(s.total_rows);
  return s;
}

std::uint64_t DynamicKnng::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

bool DynamicKnng::contains(std::uint32_t external_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = intern_.find(external_id);
  return it != intern_.end() && tombstone_[it->second] == 0;
}

}  // namespace wknng::dynamic
