#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/graph_search.hpp"
#include "core/knn_set.hpp"
#include "core/params.hpp"
#include "data/wal.hpp"
#include "dynamic/metrics.hpp"
#include "obs/slo.hpp"
#include "opt/serving_graph.hpp"
#include "serve/snapshot.hpp"
#include "simt/stats.hpp"

namespace wknng::dynamic {

/// Knobs of the mutable lifecycle.
struct DynamicParams {
  /// Descent used to seed each inserted point's neighbors (search-then-
  /// connect): the kernel is core::graph_search_batch over the last published
  /// graph; `k` and `seed` are overridden from the index's BuildParams.
  core::SearchParams insert_search{
      .k = 0, .entry_sample = 64, .entry_keep = 8, .beam = 32};

  std::size_t repair_rounds = 1;    ///< NN-Descent rounds per repair pass
  std::size_t repair_threshold = 64;  ///< dirty rows before auto repair fires
  double compact_threshold = 0.25;  ///< tombstone ratio triggering compaction
  std::size_t wal_segment_bytes = 4u << 20;  ///< delta-log segment roll size

  /// Run threshold-driven repair/compaction inline after each mutation batch
  /// (the default). Off, the caller schedules `repair()` / `compact()` —
  /// what the CLI churn driver does to stop at exact versions.
  bool auto_maintain = true;

  /// Attach an optimized serving layout (opt::optimize_serving) to every
  /// published snapshot. The layout is rebuilt when its permutation or shape
  /// goes stale — always after an insert (row count changed) or a compaction
  /// (internal ids rewritten), and after more than `optimize_staleness`
  /// repair passes accumulated edge drift. Between rebuilds a delete-only
  /// publication reuses the layout with the current tombstone vector
  /// re-permuted into its id space, so queries on the optimized path never
  /// observe a stale permutation *or* a resurrected point.
  bool optimize = false;
  opt::OptimizeOptions optimize_options;
  std::size_t optimize_staleness = 4;  ///< repair passes tolerated per layout

  /// Invoked with every published snapshot (after the internal slot is
  /// updated) — the hook a ServeEngine wires `publish` through so queries
  /// move to the new version while in-flight batches finish on their pinned
  /// one.
  std::function<void(std::shared_ptr<const serve::GraphSnapshot>)> on_publish;

  /// SLO tracker fed a publication tick per published version (must outlive
  /// the index). For engineless use — when publications route through a
  /// ServeEngine that owns its own tracker, leave this null or the engine
  /// double-counts them.
  obs::SloTracker* slo = nullptr;
};

/// Point-in-time state summary (all counters under one lock acquisition).
struct DynamicState {
  std::uint64_t version = 0;
  std::size_t total_rows = 0;
  std::size_t live_rows = 0;
  std::size_t tombstones = 0;
  std::size_t dirty_rows = 0;
  std::uint64_t next_external = 0;
  double tombstone_ratio = 0.0;
};

/// The mutable K-NNG: owns the full dynamic lifecycle on top of the static
/// substrate — online inserts (search-then-connect through the shared
/// core::connect_point edge discipline), tombstone deletes (invisible to
/// results immediately via the search kernel's exclusion mask, excluded from
/// candidate expansion lazily by repair/compaction), bounded dirty-region
/// NN-Descent repair, threshold-triggered compaction with a stable
/// external-id map, and a write-ahead delta log (data/wal.hpp) anchored to a
/// WKNNGCP1 base checkpoint.
///
/// Versioning: the base graph is version 1; every accepted state transition
/// (insert batch, delete batch, repair pass, compaction) appends one WAL
/// record, bumps the version by exactly one, and publishes a fresh
/// serve::GraphSnapshot. Because each transition is a deterministic function
/// of the state it runs on (two-phase inserts descend a frozen pre-batch
/// graph; repair rounds write only their own rows; compaction is a pure
/// remap), replaying base + log reproduces the published graph of any logged
/// version bit for bit — the crash-recovery contract CI proves by md5.
///
/// Concurrency: mutations and maintenance serialize on one writer mutex;
/// readers never take it — they pin published snapshots (serve::SnapshotSlot).
class DynamicKnng {
 public:
  /// Fresh index: builds the base graph over `base_points` with `params`
  /// (the IncrementalKnng pipeline: RP forest -> leaf pass -> refine rounds),
  /// writes the WKNNGCP1 base checkpoint to `<dir>/base.ckpt`, opens WAL
  /// segment 1, and publishes version 1. `dir` must be writable; the
  /// compression tier is not supported (`params.compression` must be kNone).
  DynamicKnng(ThreadPool& pool, const core::BuildParams& params,
              FloatMatrix base_points, std::string dir,
              DynamicParams dyn = DynamicParams{});

  /// Recovery: restores the base checkpoint from `<dir>/base.ckpt` (verified
  /// against core::build_signature of `params` and `base_points` — throws
  /// wknng::CheckpointMismatchError on any drift), replays every intact
  /// delta-log record, and publishes the recovered version. A torn tail left
  /// by SIGKILL is discarded; the next accepted mutation opens a new segment.
  struct Recover {};
  DynamicKnng(Recover, ThreadPool& pool, const core::BuildParams& params,
              FloatMatrix base_points, std::string dir,
              DynamicParams dyn = DynamicParams{});

  DynamicKnng(const DynamicKnng&) = delete;
  DynamicKnng& operator=(const DynamicKnng&) = delete;

  // --- Mutations (thread-safe; serialized on the writer mutex) -------------

  /// Inserts a batch of rows; returns their stable external ids. Typed
  /// admission (wknng::MutationError): empty batch, dimension mismatch, or
  /// any non-finite row rejects the whole batch before it reaches the log.
  std::vector<std::uint32_t> insert(const FloatMatrix& rows);

  /// Tombstones the given external ids. Ids that are unknown or already
  /// tombstoned are skipped; returns the number actually deleted (0 deletes
  /// nothing and logs nothing). Deleted points stop appearing in query
  /// results with the very next published snapshot.
  std::size_t erase(std::span<const std::uint32_t> external_ids);

  // --- Maintenance ---------------------------------------------------------

  /// Runs `rounds` dirty-region NN-Descent rounds (0 = DynamicParams
  /// default) over the dirty set on the shared pool. Returns row-rounds
  /// repaired (0 when the dirty set is empty — nothing is logged).
  std::size_t repair(std::size_t rounds = 0);

  /// Compacts now if any tombstones exist: rewrites live rows, drops
  /// tombstoned slots, remaps internal ids (external ids are stable).
  /// Returns whether a compaction ran.
  bool compact();

  /// Threshold-driven maintenance: repair when the dirty set crossed
  /// `repair_threshold`, compact when the tombstone ratio crossed
  /// `compact_threshold`. What mutations run inline under auto_maintain.
  void maintain();

  // --- Read side -----------------------------------------------------------

  std::shared_ptr<const serve::GraphSnapshot> snapshot() const {
    return slot_.current();
  }
  serve::SnapshotSlot& slot() { return slot_; }

  DynamicState state() const;
  std::uint64_t version() const;
  std::size_t dim() const { return dim_; }
  std::size_t k() const { return params_.k; }
  std::uint64_t signature() const { return signature_; }
  bool replay_torn_tail() const { return replay_torn_tail_; }
  const DynamicMetrics& metrics() const { return metrics_; }
  simt::Stats stats() const { return acc_.total(); }

  /// True while `external_id` resolves to a live (non-tombstoned) row.
  bool contains(std::uint32_t external_id) const;

  /// Canonical base-checkpoint path inside a WAL directory.
  static std::string base_checkpoint_path(const std::string& dir) {
    return dir + "/base.ckpt";
  }

 private:
  void init_base_from_checkpoint(const FloatMatrix& base_points);
  void publish_locked();
  void maintain_locked();

  // apply_* perform one logged state transition; `replaying` suppresses
  // side-channel effects that must not differ between live and replayed
  // application (there are none today — the flag only routes metrics).
  void apply_insert(const FloatMatrix& rows,
                    std::span<const std::uint32_t> external_ids,
                    bool replaying);
  void apply_delete(std::span<const std::uint32_t> external_ids,
                    bool replaying);
  std::size_t apply_repair(std::size_t rounds, bool replaying);
  void apply_compact(bool replaying);
  void apply_record(const data::WalRecord& rec);

  std::size_t repair_locked(std::size_t rounds);
  bool compact_locked();
  void mark_dirty(std::uint32_t internal);
  void refresh_gauges_locked();

  ThreadPool* pool_;
  core::BuildParams params_;
  DynamicParams dyn_;
  std::string dir_;
  std::size_t dim_ = 0;
  std::uint64_t signature_ = 0;
  bool replay_torn_tail_ = false;

  mutable std::mutex mu_;  ///< single-writer serialization
  FloatMatrix points_;     ///< internal rows (live + tombstoned)
  core::KnnSetArray sets_;
  KnnGraph graph_;  ///< extraction of sets_ at the last version bump
  std::vector<std::uint8_t> tombstone_;   ///< internal row -> deleted?
  std::vector<std::uint32_t> external_;   ///< internal -> external id
  std::unordered_map<std::uint32_t, std::uint32_t> intern_;  ///< external -> internal
  std::uint32_t next_external_ = 0;
  std::uint64_t version_ = 0;
  std::size_t tombstone_count_ = 0;
  std::vector<std::uint8_t> dirty_mark_;  ///< internal row -> dirty?
  std::vector<std::uint32_t> dirty_;      ///< dirty rows, insertion order

  std::unique_ptr<data::WalWriter> wal_;
  serve::SnapshotSlot slot_;
  DynamicMetrics metrics_;
  mutable simt::StatsAccumulator acc_;

  // Optimized-layout lifecycle (only under dyn_.optimize). The layout is
  // immutable once built; these fields decide, per publication, whether it
  // is still safe to reuse or must be rebuilt (see DynamicParams::optimize).
  std::shared_ptr<const opt::ServingGraph> serving_;
  bool force_reopt_ = false;       ///< permutation/shape invalidated
  std::size_t repairs_since_opt_ = 0;  ///< edge drift since the last build
};

}  // namespace wknng::dynamic
