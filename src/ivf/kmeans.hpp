#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/thread_pool.hpp"

namespace wknng::ivf {

/// Lloyd k-means configuration for the IVF coarse quantizer.
struct KMeansParams {
  std::size_t clusters = 64;
  std::size_t iterations = 10;    ///< Lloyd rounds after seeding
  std::size_t seed_sample = 0;    ///< points used for k-means++ seeding (0 = all)
  std::uint64_t seed = 99;
};

struct KMeansResult {
  FloatMatrix centroids;                  ///< clusters x dim
  std::vector<std::uint32_t> assignment;  ///< per point, nearest centroid
  double inertia = 0.0;                   ///< sum of squared distances
  std::uint64_t distance_evals = 0;       ///< work-accounting counter
};

/// k-means++ seeding followed by Lloyd iterations. Deterministic in
/// (points, params). Empty clusters are re-seeded from the farthest points
/// of the largest cluster, so exactly `clusters` non-empty centroids come
/// back whenever n >= clusters.
KMeansResult kmeans(ThreadPool& pool, const FloatMatrix& points,
                    const KMeansParams& params);

}  // namespace wknng::ivf
