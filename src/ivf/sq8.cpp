#include "ivf/sq8.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace wknng::ivf {

Sq8Matrix sq8_encode(const FloatMatrix& points) {
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  WKNNG_CHECK_MSG(n > 0 && dim > 0, "cannot train SQ8 on an empty set");

  Sq8Matrix out;
  out.codebook.bias.assign(dim, 0.0f);
  out.codebook.scale.assign(dim, 0.0f);

  // Per-dimension range.
  std::vector<float> lo(dim, std::numeric_limits<float>::max());
  std::vector<float> hi(dim, std::numeric_limits<float>::lowest());
  for (std::size_t i = 0; i < n; ++i) {
    auto row = points.row(i);
    for (std::size_t d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], row[d]);
      hi[d] = std::max(hi[d], row[d]);
    }
  }
  for (std::size_t d = 0; d < dim; ++d) {
    out.codebook.bias[d] = lo[d];
    // Degenerate (constant) dimensions quantize to code 0 with a tiny scale
    // so dequantization reproduces the constant exactly enough.
    out.codebook.scale[d] = std::max((hi[d] - lo[d]) / 255.0f, 1e-20f);
  }

  out.codes.resize(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    auto src = points.row(i);
    auto dst = out.codes.row(i);
    for (std::size_t d = 0; d < dim; ++d) {
      const float normalized =
          (src[d] - out.codebook.bias[d]) / out.codebook.scale[d];
      dst[d] = static_cast<std::uint8_t>(
          std::clamp(std::lround(normalized), 0L, 255L));
    }
  }
  return out;
}

FloatMatrix sq8_decode(const Sq8Matrix& m) {
  FloatMatrix out(m.rows(), m.dim());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    auto src = m.row(i);
    auto dst = out.row(i);
    for (std::size_t d = 0; d < m.dim(); ++d) {
      dst[d] = m.codebook.bias[d] +
               m.codebook.scale[d] * static_cast<float>(src[d]);
    }
  }
  return out;
}

float sq8_l2_sq(std::span<const float> query,
                std::span<const std::uint8_t> code,
                const Sq8Codebook& codebook) {
  float acc = 0.0f;
  for (std::size_t d = 0; d < query.size(); ++d) {
    const float decoded =
        codebook.bias[d] + codebook.scale[d] * static_cast<float>(code[d]);
    const float diff = query[d] - decoded;
    acc += diff * diff;
  }
  return acc;
}

}  // namespace wknng::ivf
