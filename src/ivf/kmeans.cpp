#include "ivf/kmeans.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exact/brute_force.hpp"
#include "kernels/kernels.hpp"

namespace wknng::ivf {

namespace {

/// k-means++ seeding over a (possibly sampled) subset: each next centre is
/// drawn with probability proportional to squared distance from the chosen
/// set (Arthur & Vassilvitskii, SODA 2007).
FloatMatrix seed_centroids(const FloatMatrix& points,
                           const KMeansParams& params,
                           std::uint64_t* dist_evals) {
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  const std::size_t kc = params.clusters;

  // Deterministic seeding sample.
  Rng rng(params.seed, 11);
  std::vector<std::uint32_t> pool_ids(n);
  for (std::size_t i = 0; i < n; ++i) pool_ids[i] = static_cast<std::uint32_t>(i);
  std::size_t sample = params.seed_sample == 0
                           ? n
                           : std::min<std::size_t>(params.seed_sample, n);
  sample = std::max(sample, kc);
  for (std::size_t i = 0; i < sample; ++i) {
    const std::size_t j = i + rng.next_below(n - i);
    std::swap(pool_ids[i], pool_ids[j]);
  }
  pool_ids.resize(sample);

  FloatMatrix centroids(kc, dim);
  std::vector<float> best_d(sample, std::numeric_limits<float>::max());

  // First centre: uniform.
  std::uint32_t first = pool_ids[rng.next_below(sample)];
  std::copy(points.row(first).begin(), points.row(first).end(),
            centroids.row(0).begin());

  for (std::size_t c = 1; c <= kc; ++c) {
    // Refresh distances against the newest centre.
    auto newest = centroids.row(c - 1);
    double total = 0.0;
    for (std::size_t i = 0; i < sample; ++i) {
      const float d = exact::l2_sq(points.row(pool_ids[i]), newest);
      ++*dist_evals;
      best_d[i] = std::min(best_d[i], d);
      total += best_d[i];
    }
    if (c == kc) break;

    // Sample the next centre ~ D^2. Degenerate total (all points identical
    // to chosen centres) falls back to uniform.
    std::size_t pick = 0;
    if (total > 0.0) {
      double r = rng.next_double() * total;
      for (std::size_t i = 0; i < sample; ++i) {
        r -= best_d[i];
        if (r <= 0.0) {
          pick = i;
          break;
        }
      }
    } else {
      pick = rng.next_below(sample);
    }
    std::copy(points.row(pool_ids[pick]).begin(),
              points.row(pool_ids[pick]).end(), centroids.row(c).begin());
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(ThreadPool& pool, const FloatMatrix& points,
                    const KMeansParams& params) {
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  const std::size_t kc = params.clusters;
  WKNNG_CHECK_MSG(kc > 0 && kc <= n, "clusters=" << kc << " n=" << n);

  KMeansResult result;
  result.centroids = seed_centroids(points, params, &result.distance_evals);
  result.assignment.assign(n, 0);

  std::vector<double> sums(kc * dim);
  std::vector<std::uint32_t> counts(kc);

  // Stable centroid row pointers for the batched kernel; the norm cache is
  // rebuilt every iteration because the update step moves the centroids.
  std::vector<const float*> cent_rows(kc);
  for (std::size_t c = 0; c < kc; ++c) {
    cent_rows[c] = result.centroids.row(c).data();
  }
  std::vector<float> cent_norms;
  const kernels::KernelOps& ops = kernels::ops();

  for (std::size_t iter = 0; iter < params.iterations; ++iter) {
    const float* norms_ptr = nullptr;
    if (!kernels::strict_mode()) {
      cent_norms = kernels::row_norms(result.centroids);
      norms_ptr = cent_norms.data();
    }
    // Assign (parallel): each point is scored against all centroids with the
    // batched kernel; the argmin scan keeps the original ascending-c
    // tie-break (strict '<').
    std::atomic<std::uint64_t> evals{0};
    pool.parallel_for(n, 64, [&](std::size_t i) {
      auto x = points.row(i);
      float best = std::numeric_limits<float>::max();
      std::uint32_t best_c = 0;
      constexpr std::size_t kChunk = 256;
      float dist[kChunk];
      for (std::size_t c0 = 0; c0 < kc; c0 += kChunk) {
        const std::size_t cnt = std::min(kChunk, kc - c0);
        ops.l2_batch(x.data(), cent_rows.data() + c0,
                     norms_ptr != nullptr ? norms_ptr + c0 : nullptr, cnt, dim,
                     dist);
        for (std::size_t c = 0; c < cnt; ++c) {
          if (dist[c] < best) {
            best = dist[c];
            best_c = static_cast<std::uint32_t>(c0 + c);
          }
        }
      }
      result.assignment[i] = best_c;
      evals.fetch_add(kc, std::memory_order_relaxed);
    });
    result.distance_evals += evals.load();

    // Update (serial accumulation; O(n*dim), cheap next to assignment).
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = result.assignment[i];
      auto x = points.row(i);
      double* s = sums.data() + static_cast<std::size_t>(c) * dim;
      for (std::size_t d = 0; d < dim; ++d) s[d] += x[d];
      ++counts[c];
    }
    for (std::size_t c = 0; c < kc; ++c) {
      if (counts[c] == 0) continue;  // handled below
      auto row = result.centroids.row(c);
      const double* s = sums.data() + c * dim;
      for (std::size_t d = 0; d < dim; ++d) {
        row[d] = static_cast<float>(s[d] / counts[c]);
      }
    }

    // Empty-cluster repair: steal the point farthest from its centroid in
    // the biggest cluster (FAISS's strategy, simplified).
    for (std::size_t c = 0; c < kc; ++c) {
      if (counts[c] != 0) continue;
      std::size_t big = static_cast<std::size_t>(
          std::max_element(counts.begin(), counts.end()) - counts.begin());
      float far_d = -1.0f;
      std::size_t far_i = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (result.assignment[i] != big) continue;
        const float d = exact::l2_sq(points.row(i), result.centroids.row(big));
        ++result.distance_evals;
        if (d > far_d) {
          far_d = d;
          far_i = i;
        }
      }
      std::copy(points.row(far_i).begin(), points.row(far_i).end(),
                result.centroids.row(c).begin());
      result.assignment[far_i] = static_cast<std::uint32_t>(c);
      --counts[big];
      ++counts[c];
    }
  }

  // Final inertia.
  double inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    inertia += exact::l2_sq(points.row(i),
                            result.centroids.row(result.assignment[i]));
    ++result.distance_evals;
  }
  result.inertia = inertia;
  return result;
}

}  // namespace wknng::ivf
