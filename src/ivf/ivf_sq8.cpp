#include "ivf/ivf_sq8.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "common/topk.hpp"
#include "exact/brute_force.hpp"

namespace wknng::ivf {

IvfSq8Index IvfSq8Index::build(ThreadPool& pool, const FloatMatrix& points,
                               const IvfParams& params, IvfCost* cost) {
  IvfSq8Index index;
  index.flat_ = IvfFlatIndex::build(pool, points, params, cost);
  Timer timer;
  index.quantized_ = sq8_encode(points);
  if (cost != nullptr) cost->train_seconds += timer.elapsed_s();
  return index;
}

KnnGraph IvfSq8Index::search(ThreadPool& pool, const FloatMatrix& points,
                             const FloatMatrix& queries, std::size_t k,
                             std::size_t nprobe, std::size_t rescore,
                             std::span<const std::uint32_t> exclude_self,
                             IvfCost* cost) const {
  const std::size_t nq = queries.rows();
  const std::size_t nl = flat_.nlist();
  nprobe = std::clamp<std::size_t>(nprobe, 1, nl);
  WKNNG_CHECK(exclude_self.empty() || exclude_self.size() == nq);
  WKNNG_CHECK(queries.cols() == quantized_.dim());
  Timer timer;

  const std::size_t scan_k = std::max(k, rescore);
  KnnGraph g(nq, k);
  std::atomic<std::uint64_t> evals{0};
  pool.parallel_for(nq, 16, [&](std::size_t qi) {
    auto q = queries.row(qi);
    std::uint64_t local_evals = 0;

    TopK coarse(nprobe);
    for (std::size_t c = 0; c < nl; ++c) {
      coarse.push(exact::l2_sq(q, flat_.centroids().row(c)),
                  static_cast<std::uint32_t>(c));
    }
    local_evals += nl;

    const std::uint32_t skip =
        exclude_self.empty() ? exact::kNoExclude : exclude_self[qi];
    TopK heap(scan_k);
    for (const Neighbor& probe : coarse.take_sorted()) {
      for (std::uint32_t id : flat_.list(probe.id)) {
        if (id == skip) continue;
        heap.push(sq8_l2_sq(q, quantized_.row(id), quantized_.codebook), id);
        ++local_evals;
      }
    }

    auto found = heap.take_sorted();
    if (rescore > k) {
      // Exact re-ranking of the quantized shortlist.
      TopK exact_heap(k);
      for (const Neighbor& cand : found) {
        exact_heap.push(exact::l2_sq(q, points.row(cand.id)), cand.id);
        ++local_evals;
      }
      found = exact_heap.take_sorted();
    }
    if (found.size() > k) found.resize(k);
    std::copy(found.begin(), found.end(), g.row(qi).begin());
    evals.fetch_add(local_evals, std::memory_order_relaxed);
  });

  if (cost != nullptr) {
    cost->distance_evals += evals.load();
    cost->search_seconds += timer.elapsed_s();
  }
  return g;
}

KnnGraph IvfSq8Index::build_knng(ThreadPool& pool, const FloatMatrix& points,
                                 std::size_t k, std::size_t nprobe,
                                 std::size_t rescore, IvfCost* cost) const {
  std::vector<std::uint32_t> self(points.rows());
  std::iota(self.begin(), self.end(), 0u);
  return search(pool, points, points, k, nprobe, rescore, self, cost);
}

}  // namespace wknng::ivf
