#pragma once

// Compatibility shim: the SQ8 codec moved to src/kernels/sq8.{hpp,cpp} when
// it was promoted into the runtime-dispatched kernel table (see DESIGN.md,
// "Compressed storage tier"). This header keeps the historical ivf:: names
// alive for existing call sites and tests; new code should include
// kernels/sq8.hpp directly.

#include "kernels/sq8.hpp"

namespace wknng::ivf {

using Sq8Codebook = kernels::Sq8Codebook;
using Sq8Matrix = kernels::Sq8Matrix;

/// Trains the per-dimension codebook on `points` and encodes every row
/// (throws wknng::Sq8TrainError on empty, non-finite, or fully
/// zero-variance training sets); sq8_decode dequantizes every code back to
/// floats with per-dimension error <= scale/2. Using-declarations, not
/// wrappers: Sq8Matrix is the kernels type, so ADL on unqualified calls
/// already finds the kernels overloads — a distinct ivf:: wrapper would
/// make those calls ambiguous.
using kernels::sq8_encode;
using kernels::sq8_decode;

/// Asymmetric squared L2: float query against one dequantized code row
/// (serial reference accumulation — the scalar backend's sq8 rows and the
/// test layer's differential oracle).
inline float sq8_l2_sq(std::span<const float> query,
                       std::span<const std::uint8_t> code,
                       const Sq8Codebook& codebook) {
  return kernels::sq8_l2_sq_ref(query, code, codebook);
}

}  // namespace wknng::ivf
