#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.hpp"

namespace wknng::ivf {

/// 8-bit scalar quantization (FAISS's SQ8): each dimension is affinely
/// mapped onto [0, 255] using its own min/max over the training set. Cuts
/// vector memory 4x; distances are computed asymmetrically (float query vs
/// dequantized code) so the query loses no precision.
struct Sq8Codebook {
  std::vector<float> bias;   ///< per-dimension minimum
  std::vector<float> scale;  ///< per-dimension (max - min) / 255, >= epsilon

  std::size_t dim() const { return bias.size(); }
};

/// A quantized point set: n x dim uint8 codes plus the codebook.
struct Sq8Matrix {
  Matrix<std::uint8_t> codes;
  Sq8Codebook codebook;

  std::size_t rows() const { return codes.rows(); }
  std::size_t dim() const { return codes.cols(); }
  std::span<const std::uint8_t> row(std::size_t i) const { return codes.row(i); }
};

/// Trains the per-dimension codebook on `points` and encodes every row.
Sq8Matrix sq8_encode(const FloatMatrix& points);

/// Dequantizes every code back to floats (reconstruction, for tests and
/// rescoring caches). Reconstruction error per dimension is <= scale/2.
FloatMatrix sq8_decode(const Sq8Matrix& m);

/// Asymmetric squared L2: float query against one dequantized code row.
float sq8_l2_sq(std::span<const float> query, std::span<const std::uint8_t> code,
                const Sq8Codebook& codebook);

}  // namespace wknng::ivf
