#pragma once

#include <cstdint>
#include <vector>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "ivf/kmeans.hpp"

namespace wknng::ivf {

/// IVF-Flat index configuration — the FAISS-surrogate baseline of the
/// speed-versus-accuracy experiments (DESIGN.md, Fig. 2/3). nlist plays
/// FAISS's `nlist`, nprobe its `nprobe`; construction is k-means on the full
/// point set followed by inverted-list assignment.
struct IvfParams {
  std::size_t nlist = 64;         ///< coarse clusters (inverted lists)
  std::size_t kmeans_iters = 10;
  std::size_t seed_sample = 0;    ///< k-means++ seeding sample (0 = all points)
  std::uint64_t seed = 99;
};

/// Cost counters for work accounting (comparable to simt::Stats fields).
struct IvfCost {
  std::uint64_t distance_evals = 0;
  double train_seconds = 0.0;
  double search_seconds = 0.0;
};

/// Inverted-file index with exact (flat) residual scan.
class IvfFlatIndex {
 public:
  /// Trains the coarse quantizer and builds the inverted lists.
  static IvfFlatIndex build(ThreadPool& pool, const FloatMatrix& points,
                            const IvfParams& params, IvfCost* cost = nullptr);

  std::size_t nlist() const { return params_.nlist; }
  const FloatMatrix& centroids() const { return centroids_; }

  /// Points in inverted list `c`.
  std::span<const std::uint32_t> list(std::size_t c) const {
    return {list_ids_.data() + list_offsets_[c],
            list_ids_.data() + list_offsets_[c + 1]};
  }

  /// k-NN of each query among the points of the `nprobe` closest lists.
  /// `exclude_self` (same length as queries) removes a base id per query —
  /// used when queries are base points, as in KNNG extraction.
  KnnGraph search(ThreadPool& pool, const FloatMatrix& points,
                  const FloatMatrix& queries, std::size_t k,
                  std::size_t nprobe,
                  std::span<const std::uint32_t> exclude_self = {},
                  IvfCost* cost = nullptr) const;

  /// All-points K-NN graph — how FAISS is driven to build a KNNG: every base
  /// point queries the index, excluding itself.
  KnnGraph build_knng(ThreadPool& pool, const FloatMatrix& points,
                      std::size_t k, std::size_t nprobe,
                      IvfCost* cost = nullptr) const;

 private:
  IvfParams params_;
  FloatMatrix centroids_;
  std::vector<std::uint32_t> list_ids_;
  std::vector<std::uint32_t> list_offsets_;
  // Squared-norm caches for the norm-trick kernels, filled at build (empty
  // in strict mode). point_norms_ is indexed by base point id; search()
  // falls back to uncached scoring if it is handed a different-sized base.
  std::vector<float> centroid_norms_;
  std::vector<float> point_norms_;
};

}  // namespace wknng::ivf
