#include "ivf/ivf_flat.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "common/topk.hpp"
#include "exact/brute_force.hpp"

namespace wknng::ivf {

IvfFlatIndex IvfFlatIndex::build(ThreadPool& pool, const FloatMatrix& points,
                                 const IvfParams& params, IvfCost* cost) {
  WKNNG_CHECK_MSG(params.nlist > 0 && params.nlist <= points.rows(),
                  "nlist=" << params.nlist << " n=" << points.rows());
  Timer timer;

  KMeansParams km;
  km.clusters = params.nlist;
  km.iterations = params.kmeans_iters;
  km.seed_sample = params.seed_sample;
  km.seed = params.seed;
  KMeansResult trained = kmeans(pool, points, km);

  IvfFlatIndex index;
  index.params_ = params;
  index.centroids_ = std::move(trained.centroids);

  // Counting sort of point ids into inverted lists.
  const std::size_t n = points.rows();
  std::vector<std::uint32_t> counts(params.nlist, 0);
  for (std::uint32_t c : trained.assignment) ++counts[c];
  index.list_offsets_.assign(params.nlist + 1, 0);
  for (std::size_t c = 0; c < params.nlist; ++c) {
    index.list_offsets_[c + 1] = index.list_offsets_[c] + counts[c];
  }
  index.list_ids_.assign(n, 0);
  std::vector<std::uint32_t> cursor(index.list_offsets_.begin(),
                                    index.list_offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    index.list_ids_[cursor[trained.assignment[i]]++] =
        static_cast<std::uint32_t>(i);
  }

  if (cost != nullptr) {
    cost->distance_evals += trained.distance_evals;
    cost->train_seconds += timer.elapsed_s();
  }
  return index;
}

KnnGraph IvfFlatIndex::search(ThreadPool& pool, const FloatMatrix& points,
                              const FloatMatrix& queries, std::size_t k,
                              std::size_t nprobe,
                              std::span<const std::uint32_t> exclude_self,
                              IvfCost* cost) const {
  const std::size_t nq = queries.rows();
  const std::size_t nl = params_.nlist;
  nprobe = std::clamp<std::size_t>(nprobe, 1, nl);
  WKNNG_CHECK(exclude_self.empty() || exclude_self.size() == nq);
  Timer timer;

  KnnGraph g(nq, k);
  std::atomic<std::uint64_t> evals{0};
  pool.parallel_for(nq, 16, [&](std::size_t qi) {
    auto q = queries.row(qi);
    std::uint64_t local_evals = 0;

    // Rank the coarse centroids.
    TopK coarse(nprobe);
    for (std::size_t c = 0; c < nl; ++c) {
      coarse.push(exact::l2_sq(q, centroids_.row(c)),
                  static_cast<std::uint32_t>(c));
    }
    local_evals += nl;
    const auto probes = coarse.take_sorted();

    const std::uint32_t skip = exclude_self.empty()
                                   ? exact::kNoExclude
                                   : exclude_self[qi];
    TopK heap(k);
    for (const Neighbor& probe : probes) {
      for (std::uint32_t id : list(probe.id)) {
        if (id == skip) continue;
        heap.push(exact::l2_sq(q, points.row(id)), id);
        ++local_evals;
      }
    }
    const auto sorted = heap.take_sorted();
    std::copy(sorted.begin(), sorted.end(), g.row(qi).begin());
    evals.fetch_add(local_evals, std::memory_order_relaxed);
  });

  if (cost != nullptr) {
    cost->distance_evals += evals.load();
    cost->search_seconds += timer.elapsed_s();
  }
  return g;
}

KnnGraph IvfFlatIndex::build_knng(ThreadPool& pool, const FloatMatrix& points,
                                  std::size_t k, std::size_t nprobe,
                                  IvfCost* cost) const {
  std::vector<std::uint32_t> self(points.rows());
  std::iota(self.begin(), self.end(), 0u);
  return search(pool, points, points, k, nprobe, self, cost);
}

}  // namespace wknng::ivf
