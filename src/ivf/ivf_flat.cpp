#include "ivf/ivf_flat.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "common/topk.hpp"
#include "exact/brute_force.hpp"
#include "kernels/kernels.hpp"

namespace wknng::ivf {

IvfFlatIndex IvfFlatIndex::build(ThreadPool& pool, const FloatMatrix& points,
                                 const IvfParams& params, IvfCost* cost) {
  WKNNG_CHECK_MSG(params.nlist > 0 && params.nlist <= points.rows(),
                  "nlist=" << params.nlist << " n=" << points.rows());
  Timer timer;

  KMeansParams km;
  km.clusters = params.nlist;
  km.iterations = params.kmeans_iters;
  km.seed_sample = params.seed_sample;
  km.seed = params.seed;
  KMeansResult trained = kmeans(pool, points, km);

  IvfFlatIndex index;
  index.params_ = params;
  index.centroids_ = std::move(trained.centroids);

  // Counting sort of point ids into inverted lists.
  const std::size_t n = points.rows();
  std::vector<std::uint32_t> counts(params.nlist, 0);
  for (std::uint32_t c : trained.assignment) ++counts[c];
  index.list_offsets_.assign(params.nlist + 1, 0);
  for (std::size_t c = 0; c < params.nlist; ++c) {
    index.list_offsets_[c + 1] = index.list_offsets_[c] + counts[c];
  }
  index.list_ids_.assign(n, 0);
  std::vector<std::uint32_t> cursor(index.list_offsets_.begin(),
                                    index.list_offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    index.list_ids_[cursor[trained.assignment[i]]++] =
        static_cast<std::uint32_t>(i);
  }

  // Norm caches for the norm-trick scan kernels (skipped in strict mode,
  // where the scalar backend ignores them anyway).
  if (!kernels::strict_mode()) {
    index.centroid_norms_ = kernels::row_norms(index.centroids_);
    index.point_norms_ = kernels::row_norms(points);
  }

  if (cost != nullptr) {
    cost->distance_evals += trained.distance_evals;
    cost->train_seconds += timer.elapsed_s();
  }
  return index;
}

KnnGraph IvfFlatIndex::search(ThreadPool& pool, const FloatMatrix& points,
                              const FloatMatrix& queries, std::size_t k,
                              std::size_t nprobe,
                              std::span<const std::uint32_t> exclude_self,
                              IvfCost* cost) const {
  const std::size_t nq = queries.rows();
  const std::size_t nl = params_.nlist;
  nprobe = std::clamp<std::size_t>(nprobe, 1, nl);
  WKNNG_CHECK(exclude_self.empty() || exclude_self.size() == nq);
  Timer timer;

  KnnGraph g(nq, k);
  const kernels::KernelOps& ops = kernels::ops();
  const std::size_t dim = points.cols();
  // Use the build-time norm caches when they match what we were handed;
  // a mismatched base (or strict mode) simply scores uncached.
  const float* cent_norms =
      centroid_norms_.size() == nl ? centroid_norms_.data() : nullptr;
  const float* pt_norms =
      point_norms_.size() == points.rows() ? point_norms_.data() : nullptr;
  std::vector<const float*> cent_rows(nl);
  for (std::size_t c = 0; c < nl; ++c) cent_rows[c] = centroids_.row(c).data();

  std::atomic<std::uint64_t> evals{0};
  pool.parallel_for(nq, 16, [&](std::size_t qi) {
    auto q = queries.row(qi);
    std::uint64_t local_evals = 0;
    constexpr std::size_t kChunk = 256;
    float dist[kChunk];

    // Rank the coarse centroids with the batched kernel.
    TopK coarse(nprobe);
    for (std::size_t c0 = 0; c0 < nl; c0 += kChunk) {
      const std::size_t cnt = std::min(kChunk, nl - c0);
      ops.l2_batch(q.data(), cent_rows.data() + c0,
                   cent_norms != nullptr ? cent_norms + c0 : nullptr, cnt, dim,
                   dist);
      for (std::size_t c = 0; c < cnt; ++c) {
        coarse.push(dist[c], static_cast<std::uint32_t>(c0 + c));
      }
    }
    local_evals += nl;
    const auto probes = coarse.take_sorted();

    const std::uint32_t skip = exclude_self.empty()
                                   ? exact::kNoExclude
                                   : exclude_self[qi];
    TopK heap(k);
    const float* rows[kChunk];
    float row_norms[kChunk];
    std::uint32_t row_ids[kChunk];
    for (const Neighbor& probe : probes) {
      // Gather the probed list (minus the self id, which the pre-dispatch
      // loop never scored) into chunks for the batched kernel; heap pushes
      // keep list order.
      const std::span<const std::uint32_t> ids = list(probe.id);
      std::size_t filled = 0;
      auto flush = [&] {
        if (filled == 0) return;
        ops.l2_batch(q.data(), rows, pt_norms != nullptr ? row_norms : nullptr,
                     filled, dim, dist);
        for (std::size_t t = 0; t < filled; ++t) heap.push(dist[t], row_ids[t]);
        local_evals += filled;
        filled = 0;
      };
      for (std::uint32_t id : ids) {
        if (id == skip) continue;
        rows[filled] = points.row(id).data();
        if (pt_norms != nullptr) row_norms[filled] = pt_norms[id];
        row_ids[filled] = id;
        if (++filled == kChunk) flush();
      }
      flush();
    }
    const auto sorted = heap.take_sorted();
    std::copy(sorted.begin(), sorted.end(), g.row(qi).begin());
    evals.fetch_add(local_evals, std::memory_order_relaxed);
  });

  if (cost != nullptr) {
    cost->distance_evals += evals.load();
    cost->search_seconds += timer.elapsed_s();
  }
  return g;
}

KnnGraph IvfFlatIndex::build_knng(ThreadPool& pool, const FloatMatrix& points,
                                  std::size_t k, std::size_t nprobe,
                                  IvfCost* cost) const {
  std::vector<std::uint32_t> self(points.rows());
  std::iota(self.begin(), self.end(), 0u);
  return search(pool, points, points, k, nprobe, self, cost);
}

}  // namespace wknng::ivf
