#pragma once

#include "ivf/ivf_flat.hpp"
#include "ivf/sq8.hpp"

namespace wknng::ivf {

/// IVF with 8-bit scalar-quantized storage (FAISS's IndexIVFScalarQuantizer
/// with QT_8bit): the inverted lists hold uint8 codes (4x less memory than
/// flat), scanned with asymmetric float-vs-dequantized distances, with an
/// optional exact rescoring pass over the best `rescore` candidates to
/// recover the precision the quantizer loses near ties.
class IvfSq8Index {
 public:
  /// Trains the coarse quantizer and the SQ8 codebook, encodes every point.
  static IvfSq8Index build(ThreadPool& pool, const FloatMatrix& points,
                           const IvfParams& params, IvfCost* cost = nullptr);

  std::size_t nlist() const { return flat_.nlist(); }
  const Sq8Matrix& quantized() const { return quantized_; }

  /// Memory held by the vector payload (codes), for the memory column of
  /// the quantization experiment.
  std::size_t code_bytes() const {
    return quantized_.rows() * quantized_.dim();
  }

  /// k-NN of each query over the nprobe closest lists, scanning codes.
  /// `rescore` > k re-ranks that many quantized candidates with exact float
  /// distances against `points` (pass the original matrix); rescore == 0
  /// returns quantized distances directly.
  KnnGraph search(ThreadPool& pool, const FloatMatrix& points,
                  const FloatMatrix& queries, std::size_t k,
                  std::size_t nprobe, std::size_t rescore = 0,
                  std::span<const std::uint32_t> exclude_self = {},
                  IvfCost* cost = nullptr) const;

  /// All-points K-NN graph (every base point queries, excluding itself).
  KnnGraph build_knng(ThreadPool& pool, const FloatMatrix& points,
                      std::size_t k, std::size_t nprobe,
                      std::size_t rescore = 0, IvfCost* cost = nullptr) const;

 private:
  IvfFlatIndex flat_;     ///< coarse quantizer + inverted lists (reused)
  Sq8Matrix quantized_;
};

}  // namespace wknng::ivf
