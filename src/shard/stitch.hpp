#pragma once

#include <cstdint>
#include <vector>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/graph_search.hpp"
#include "shard/partition.hpp"

namespace wknng::shard {

/// The cross-shard neighbor-exchange round run after the per-shard graphs
/// are merged: a sharded build only ever scores intra-shard pairs, so a
/// point sitting near a shard boundary is missing its true neighbors on the
/// other side. The stitch finds those points (their second-nearest shard
/// centroid is almost as close as their own), searches the neighboring
/// shard's graph for candidates, and offers each candidate edge to *both*
/// endpoints' merged rows (a bounded insert that keeps rows sorted).
struct StitchParams {
  bool enabled = true;

  /// A point is a boundary point iff d2 <= boundary_ratio * d1, where d1/d2
  /// are its squared distances to its own and second-nearest shard centroid.
  /// 1.0 stitches almost nothing; larger ratios stitch deeper into shard
  /// interiors (at the cost of more foreign searches).
  double boundary_ratio = 4.0;

  /// Foreign candidates retrieved per boundary point (0 = the graph's k).
  std::size_t candidates = 0;

  /// Search knobs for the foreign-shard descent (k is overridden by
  /// `candidates`; the tag is the point's global id, so results are a pure
  /// function of the point — batching- and schedule-independent).
  core::SearchParams search;
};

struct StitchStats {
  std::uint64_t boundary_points = 0;
  std::uint64_t stitched_edges = 0;  ///< offers actually inserted
};

/// Offers `cand` to the bounded sorted row `row` (ascending (dist, id),
/// valid prefix). Returns true when inserted. Rejects self-loops, duplicate
/// ids, non-finite distances, and candidates worse than a full row's tail.
bool offer_edge(std::span<Neighbor> row, std::uint32_t self, Neighbor cand);

/// Runs one stitch round over `merged` in place. `shard_bases[s]` /
/// `shard_graphs[s]` are shard s's gathered rows and local-id graph
/// (quarantined shards may be empty: they are skipped as search targets but
/// their points still receive offered edges). Deterministic in its inputs:
/// offers are generated shard-by-shard and applied in ascending
/// (target shard, point, candidate-rank) order on one thread.
StitchStats stitch_graph(ThreadPool& pool, const FloatMatrix& points,
                         const ShardPartition& part,
                         const std::vector<FloatMatrix>& shard_bases,
                         const std::vector<KnnGraph>& shard_graphs,
                         KnnGraph& merged, const StitchParams& params);

}  // namespace wknng::shard
