#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wknng::obs {
class MetricsRegistry;
}  // namespace wknng::obs

namespace wknng::shard {

/// Lifecycle of one per-shard build job inside the manager:
///
///   kQueued -> kRunning -> kDone
///                   \-> (loss) -> kQueued (retry, budget permitting)
///                   \-> (budget exhausted, salvage failed) -> kQuarantined
///
/// A job is kDone once any of its attempts commits (first completion wins;
/// all attempts are bit-identical, so which one is immaterial to the graph).
/// kQuarantined jobs contribute empty rows to the merged graph and mark the
/// whole build degraded.
enum class JobState : std::uint8_t { kQueued, kRunning, kDone, kQuarantined };

const char* job_state_name(JobState s);

/// Per-job slice of the health ledger.
struct ShardJobReport {
  std::size_t shard = 0;
  std::size_t points = 0;            ///< member points in this shard
  JobState state = JobState::kQueued;
  std::uint32_t attempts = 0;        ///< attempts actually started
  std::uint32_t retries = 0;         ///< replacement attempts after a loss
  std::uint32_t speculations = 0;    ///< straggler twins launched (0 or 1)
  std::uint32_t losses = 0;          ///< worker-loss events (thrown + stalled)
  std::uint32_t watchdog_kills = 0;  ///< losses declared via missed heartbeat
  std::uint64_t heartbeats = 0;      ///< verified heartbeats received
  std::uint32_t winning_attempt = 0; ///< attempt index that committed
  bool salvaged = false;             ///< completed by the loss-immune attempt
  double seconds = 0.0;              ///< first enqueue -> commit wall time
  std::uint64_t faults_injected = 0; ///< in-build fault-campaign decisions
};

/// The `BuildResult`-style health surface of one sharded build: what the
/// orchestration had to survive, per job and in aggregate. `degraded` is set
/// when the *output* may differ from the ideal run — a quarantined shard or
/// a partition fallback — never by successful retries or speculation alone
/// (those reproduce the ideal graph bit for bit).
struct ShardBuildReport {
  std::size_t shards = 0;
  std::size_t workers = 0;
  bool degraded = false;
  bool partition_fallback = false;

  std::uint64_t retries_total = 0;
  std::uint64_t speculations_total = 0;
  std::uint64_t losses_total = 0;
  std::uint64_t watchdog_kills_total = 0;
  std::uint64_t heartbeats_total = 0;
  std::uint64_t quarantined_shards = 0;
  std::uint64_t boundary_points = 0;  ///< points offered to the stitch round
  std::uint64_t stitched_edges = 0;   ///< cross-shard edges the stitch added

  double partition_seconds = 0.0;
  double build_seconds = 0.0;   ///< queue open -> last job committed
  double stitch_seconds = 0.0;
  double total_seconds = 0.0;

  std::vector<ShardJobReport> jobs;

  std::string to_json() const;
};

/// Register the report's aggregate counters and timings into the central
/// metrics registry (`wknng_shard_*` series) plus the full per-job ledger as
/// a JSON blob, mirroring core::register_build_metrics.
void register_shard_metrics(obs::MetricsRegistry& reg,
                            const ShardBuildReport& r);

}  // namespace wknng::shard
