#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/builder.hpp"
#include "shard/partition.hpp"
#include "shard/report.hpp"
#include "shard/stitch.hpp"
#include "simt/fault.hpp"

namespace wknng::shard {

/// Knobs of one fault-tolerant sharded build campaign.
struct ShardBuildParams {
  /// Per-shard build parameters. `checkpoint_path` is ignored (the manager
  /// owns artifact naming); `refine_iters` also sets the slice count — each
  /// job runs as refine_iters+1 checkpointed slices, and every slice
  /// boundary is a heartbeat, a persisted WKNNGCP1 artifact, and a potential
  /// worker-loss point.
  core::BuildParams build;

  ShardPartitionParams partition;

  std::size_t workers = 2;      ///< concurrent shard-build workers
  std::size_t max_retries = 2;  ///< replacement attempts per shard after losses

  /// After the retry budget is spent, run one final loss-immune attempt
  /// before quarantining the shard. It resumes from the last published
  /// checkpoint, so the merged graph stays identical to the fault-free run
  /// even under loss probability 1.
  bool salvage = true;

  /// Straggler speculation: when the queue is drained, a worker is idle, and
  /// a job's only live attempt has not beaten for `speculate_after_ms`, a
  /// twin attempt is launched from the last published checkpoint. First
  /// completion wins; the loser is cancelled. At most one twin per job.
  bool speculate = false;
  double speculate_after_ms = 200.0;

  /// Missed-heartbeat watchdog: a live attempt whose last verified heartbeat
  /// is older than this is declared lost (cancelled, counted, replaced).
  /// 0 disables the watchdog.
  std::uint64_t heartbeat_timeout_ms = 0;

  /// Deterministic worker-loss campaign (see shard/worker_loss.hpp): `site`
  /// picks which typed error the dying worker raises, `seed`/`probability`
  /// drive the pure (shard, attempt, slice) schedule. `max_faults` is not
  /// consulted — the schedule stays a pure function so tests can precompute
  /// the exact retry counts.
  simt::FaultSpec worker_loss;

  /// When true, a fired loss stalls the worker silently (its heartbeat just
  /// stops) instead of raising — the scenario the watchdog and speculation
  /// exist for. Requires the watchdog or speculation to be enabled,
  /// otherwise the stalled job could never be declared lost.
  bool loss_stall = false;

  /// Artifact naming root (required): per-shard checkpoints land at
  /// `<prefix>.shard<i>.ckpt` and the manifest at `<prefix>.manifest`.
  std::string artifact_prefix;

  /// Resume mode: verify the manifest on disk against the freshly derived
  /// partition (n/dim/k/shards/partitioner/seed/assignment hash) and let
  /// jobs pick up from their published checkpoints. A missing or mismatched
  /// manifest falls back to a fresh build; stale checkpoints are rejected by
  /// the builder's signature check.
  bool resume = false;

  StitchParams stitch;
};

/// Everything a sharded build produces: the merged (and stitched) global
/// graph, the partition it was built under, the per-shard bases and local
/// graphs (kept for routing), and the orchestration health ledger.
struct ShardBuildResult {
  KnnGraph merged;  ///< n x k, global ids
  ShardPartition partition;
  std::vector<FloatMatrix> shard_bases;  ///< gathered member rows per shard
  std::vector<KnnGraph> shard_graphs;    ///< local ids; empty if quarantined
  ShardBuildReport report;
};

/// The work-queue orchestrator: partitions the corpus, runs one resumable
/// build job per shard on an in-process worker pool, and survives worker
/// loss via heartbeats, checkpoint-resume retries, capped budgets with
/// quarantine, and straggler speculation. The merged graph of a campaign
/// with losses is bit-identical to the fault-free run of the same config —
/// losses only ever kill workers at slice boundaries, never corrupt state,
/// and every attempt of a job is deterministic from its resume point.
class ShardManager {
 public:
  ShardManager(ThreadPool& pool, ShardBuildParams params);

  const ShardBuildParams& params() const { return params_; }

  ShardBuildResult build(const FloatMatrix& points) const;

 private:
  ThreadPool* pool_;
  ShardBuildParams params_;
};

/// One-call convenience wrapper.
ShardBuildResult build_sharded_knng(ThreadPool& pool,
                                    const FloatMatrix& points,
                                    const ShardBuildParams& params);

}  // namespace wknng::shard
