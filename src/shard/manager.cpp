#include "shard/manager.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "data/graph_io.hpp"
#include "obs/trace.hpp"
#include "shard/worker_loss.hpp"

namespace wknng::shard {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Control-flow token, not an error: the attempt was superseded (commit
/// race, watchdog kill, shutdown) and must vanish without bookkeeping.
struct AttemptCancelled {};

struct Attempt {
  std::size_t shard = 0;
  std::uint32_t index = 0;       ///< per-job monotone attempt ordinal
  bool speculative = false;
  bool loss_immune = false;      ///< the salvage attempt ignores the schedule
  std::shared_ptr<std::atomic<bool>> cancelled;
};

struct LiveAttempt {
  std::uint32_t index = 0;
  std::shared_ptr<std::atomic<bool>> cancelled;
  Clock::time_point last_beat;
};

struct Job {
  std::size_t shard = 0;
  JobState state = JobState::kQueued;
  std::uint32_t next_attempt = 0;
  std::uint32_t attempts_started = 0;
  std::uint32_t failures = 0;     ///< charged against the retry budget
  std::uint32_t retries = 0;
  std::uint32_t speculations = 0;
  std::uint32_t losses = 0;
  std::uint32_t watchdog_kills = 0;
  std::uint64_t heartbeats = 0;
  bool speculated = false;
  bool salvage_enqueued = false;
  bool committed = false;         ///< terminal (kDone or kQuarantined)
  bool salvaged = false;
  std::uint32_t winning_attempt = 0;
  double seconds = 0.0;
  Clock::time_point enqueued_at;
  std::vector<LiveAttempt> live;
  core::BuildResult result;
};

/// The manager/worker queue of one campaign. Workers are plain threads; the
/// heavy lifting inside each build still runs on the shared ThreadPool
/// (which supports concurrent parallel_for callers), so `workers` controls
/// job-level concurrency, not core usage.
class Orchestrator {
 public:
  Orchestrator(ThreadPool& pool, const ShardBuildParams& params,
               const std::vector<FloatMatrix>& bases)
      : pool_(pool), params_(params), bases_(bases), jobs_(bases.size()) {
    for (std::size_t s = 0; s < jobs_.size(); ++s) jobs_[s].shard = s;
  }

  void run() {
    const auto now = Clock::now();
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (Job& j : jobs_) {
        j.enqueued_at = now;
        enqueue_locked(j, /*speculative=*/false, /*immune=*/false);
      }
    }
    const std::size_t nw = std::min(params_.workers, jobs_.size());
    std::vector<std::thread> workers;
    workers.reserve(nw);
    for (std::size_t w = 0; w < nw; ++w) {
      workers.emplace_back([this] { worker_main(); });
    }
    supervise();
    for (std::thread& t : workers) t.join();
  }

  std::vector<Job>& jobs() { return jobs_; }

 private:
  std::string committed_path(std::size_t shard) const {
    return data::shard_artifact_path(params_.artifact_prefix, shard, "ckpt");
  }

  void enqueue_locked(Job& j, bool speculative, bool immune) {
    Attempt a;
    a.shard = j.shard;
    a.index = j.next_attempt++;
    a.speculative = speculative;
    a.loss_immune = immune;
    a.cancelled = std::make_shared<std::atomic<bool>>(false);
    queue_.push_back(std::move(a));
    if (!j.committed && j.live.empty()) j.state = JobState::kQueued;
    cv_.notify_one();
  }

  /// A non-committing attempt ended (thrown loss, real error, or watchdog
  /// kill): charge the budget and pick retry / salvage / quarantine / wait.
  void replace_locked(Job& j) {
    if (j.committed) return;
    ++j.failures;
    if (j.failures <= params_.max_retries) {
      ++j.retries;
      enqueue_locked(j, false, false);
    } else if (params_.salvage && !j.salvage_enqueued) {
      j.salvage_enqueued = true;
      enqueue_locked(j, false, /*immune=*/true);
    } else if (j.live.empty()) {
      quarantine_locked(j);
    }
    // else: a sibling attempt is still live — its outcome decides the job.
  }

  void quarantine_locked(Job& j) {
    j.committed = true;
    j.state = JobState::kQuarantined;
    j.seconds = seconds_between(j.enqueued_at, Clock::now());
    ++done_count_;
    cv_.notify_all();
  }

  void remove_live_locked(Job& j,
                          const std::shared_ptr<std::atomic<bool>>& flag) {
    for (auto it = j.live.begin(); it != j.live.end(); ++it) {
      if (it->cancelled == flag) {
        j.live.erase(it);
        return;
      }
    }
  }

  /// Worker-side heartbeat: the manager recomputes the counter-hashed token
  /// and refreshes the attempt's liveness clock only on a match, so a stale
  /// or confused beat can never keep a dead attempt alive.
  void accept_heartbeat(const Attempt& a, std::uint64_t slice,
                        std::uint64_t token) {
    std::lock_guard<std::mutex> lk(mu_);
    Job& j = jobs_[a.shard];
    if (token != heartbeat_token(params_.build.seed, a.shard, a.index, slice)) {
      return;
    }
    for (LiveAttempt& la : j.live) {
      if (la.cancelled == a.cancelled) {
        la.last_beat = Clock::now();
        ++j.heartbeats;
        return;
      }
    }
  }

  void publish_checkpoint(std::size_t shard, std::uint32_t attempt,
                          const std::string& priv) {
    const std::string dst = committed_path(shard);
    const std::string tmp = dst + ".pub" + std::to_string(attempt);
    std::error_code ec;
    std::filesystem::copy_file(
        priv, tmp, std::filesystem::copy_options::overwrite_existing, ec);
    if (ec) {
      throw IoError("shard checkpoint publish failed copying '" + priv +
                    "': " + ec.message());
    }
    std::filesystem::rename(tmp, dst, ec);
    if (ec) {
      throw IoError("shard checkpoint publish failed renaming onto '" + dst +
                    "': " + ec.message());
    }
  }

  /// The committed checkpoint to resume from, if one exists and matches the
  /// build signature (a stale artifact from another config is ignored, not
  /// trusted — the builder would reject it anyway).
  std::optional<data::BuildCheckpoint> load_resume_point(
      std::size_t shard, std::uint64_t expected_signature) const {
    const std::string path = committed_path(shard);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return std::nullopt;
    try {
      data::BuildCheckpoint c = data::read_checkpoint(path);
      if (c.signature != expected_signature) return std::nullopt;
      return c;
    } catch (const Error&) {
      return std::nullopt;
    }
  }

  /// The injected death of this worker: counted at fire time (the schedule
  /// ledger), then either raised as the campaign's typed site error or — in
  /// stall mode — a silent heartbeat stop until the watchdog or a winning
  /// twin cancels the attempt.
  void fire_loss(const Attempt& a) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++jobs_[a.shard].losses;
    }
    if (!params_.loss_stall) {
      simt::throw_injected_fault(params_.worker_loss.site);
    }
    while (!a.cancelled->load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    throw AttemptCancelled{};
  }

  /// One attempt of one job: the sliced, checkpointed build. Slice s ends
  /// with checkpoint rounds_done == s published at the committed artifact
  /// path; refine_iters+1 slices complete the job. Resumes from whatever the
  /// committed artifact already holds, so a replacement attempt repeats no
  /// finished round — and since every slice is deterministic from its
  /// checkpoint, all attempts of a job produce bit-identical state.
  core::BuildResult run_attempt(const Attempt& a) {
    const FloatMatrix& pts = bases_[a.shard];
    const std::uint64_t rounds = params_.build.refine_iters;
    core::BuildParams bp = params_.build;
    const std::string priv =
        committed_path(a.shard) + ".a" + std::to_string(a.index);
    bp.checkpoint_path = priv;
    const std::uint64_t sig =
        core::build_signature(bp, pts.rows(), pts.cols());
    std::optional<data::BuildCheckpoint> cur = load_resume_point(a.shard, sig);
    core::BuildResult out;
    for (;;) {
      if (a.cancelled->load(std::memory_order_acquire)) {
        throw AttemptCancelled{};
      }
      std::uint64_t slice = 0;
      bool wrote = true;
      if (!cur) {
        slice = 0;
        bp.refine_iters = 0;
      } else if (cur->rounds_done < rounds) {
        slice = cur->rounds_done + 1;
        bp.refine_iters = slice;
      } else {
        slice = rounds;  // state complete on disk: extraction-only pass
        bp.refine_iters = rounds;
        wrote = false;
      }
      core::KnngBuilder b(pool_, bp);
      out = cur ? b.resume(pts, *cur) : b.build(pts);
      if (wrote) {
        cur = data::read_checkpoint(priv);
        publish_checkpoint(a.shard, a.index, priv);
      }
      accept_heartbeat(a, slice,
                       heartbeat_token(params_.build.seed, a.shard, a.index,
                                       slice));
      if (!a.loss_immune &&
          worker_loss_fires(params_.worker_loss, a.shard, a.index, slice)) {
        fire_loss(a);
      }
      if (slice == rounds) break;
    }
    std::error_code ec;
    std::filesystem::remove(priv, ec);  // attempt-private scratch
    return out;
  }

  void commit(const Attempt& a, core::BuildResult r) {
    std::lock_guard<std::mutex> lk(mu_);
    Job& j = jobs_[a.shard];
    remove_live_locked(j, a.cancelled);
    if (j.committed) return;  // a bit-identical sibling already won
    j.committed = true;
    j.state = JobState::kDone;
    j.winning_attempt = a.index;
    j.salvaged = a.loss_immune;
    j.seconds = seconds_between(j.enqueued_at, Clock::now());
    j.result = std::move(r);
    for (LiveAttempt& la : j.live) {
      la.cancelled->store(true, std::memory_order_release);
    }
    j.live.clear();
    ++done_count_;
    cv_.notify_all();
  }

  void on_attempt_failure(const Attempt& a) {
    std::lock_guard<std::mutex> lk(mu_);
    Job& j = jobs_[a.shard];
    remove_live_locked(j, a.cancelled);
    if (a.cancelled->load(std::memory_order_acquire)) return;  // superseded
    replace_locked(j);
  }

  void worker_main() {
    obs::Tracer* tr =
        params_.build.obs.trace ? obs::active_tracer() : nullptr;
    for (;;) {
      Attempt a;
      bool stale = false;
      {
        std::unique_lock<std::mutex> lk(mu_);
        ++idle_workers_;
        cv_.wait(lk, [&] { return shutdown_ || !queue_.empty(); });
        --idle_workers_;
        if (queue_.empty()) return;  // shutdown and drained
        a = std::move(queue_.front());
        queue_.pop_front();
        Job& j = jobs_[a.shard];
        stale = j.committed;
        if (!stale) {
          j.state = JobState::kRunning;
          ++j.attempts_started;
          j.live.push_back({a.index, a.cancelled, Clock::now()});
        }
      }
      if (stale) continue;
      std::optional<obs::Span> span;
      if (tr != nullptr) {
        span.emplace(tr, "shard_job", "shard",
                     obs::Tracer::span_id(a.shard, a.index, 0,
                                          obs::SpanSalt::kShardJob),
                     obs::kTrackShard);
        span->arg_num("shard", static_cast<std::uint64_t>(a.shard));
        span->arg_num("attempt", static_cast<std::uint64_t>(a.index));
        span->arg_num("speculative",
                      static_cast<std::uint64_t>(a.speculative ? 1 : 0));
      }
      try {
        commit(a, run_attempt(a));
      } catch (const AttemptCancelled&) {
        std::lock_guard<std::mutex> lk(mu_);
        remove_live_locked(jobs_[a.shard], a.cancelled);
      } catch (const std::exception&) {
        on_attempt_failure(a);
      }
    }
  }

  /// The manager loop: waits for completions while running the
  /// missed-heartbeat watchdog and the straggler-speculation policy.
  void supervise() {
    std::unique_lock<std::mutex> lk(mu_);
    while (done_count_ < jobs_.size()) {
      cv_.wait_for(lk, std::chrono::milliseconds(2));
      const auto now = Clock::now();
      if (params_.heartbeat_timeout_ms > 0) watchdog_locked(now);
      if (params_.speculate) speculate_locked(now);
    }
    shutdown_ = true;
    cv_.notify_all();
  }

  void watchdog_locked(Clock::time_point now) {
    for (Job& j : jobs_) {
      if (j.committed) continue;
      for (auto it = j.live.begin(); it != j.live.end();) {
        if (ms_between(it->last_beat, now) >
            static_cast<double>(params_.heartbeat_timeout_ms)) {
          it->cancelled->store(true, std::memory_order_release);
          it = j.live.erase(it);
          ++j.watchdog_kills;
          replace_locked(j);
        } else {
          ++it;
        }
      }
    }
  }

  void speculate_locked(Clock::time_point now) {
    if (!queue_.empty() || idle_workers_ == 0) return;
    for (Job& j : jobs_) {
      if (j.committed || j.speculated || j.live.size() != 1) continue;
      if (ms_between(j.live[0].last_beat, now) >= params_.speculate_after_ms) {
        j.speculated = true;
        ++j.speculations;
        enqueue_locked(j, /*speculative=*/true, /*immune=*/false);
      }
    }
  }

  ThreadPool& pool_;
  const ShardBuildParams& params_;
  const std::vector<FloatMatrix>& bases_;
  std::vector<Job> jobs_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Attempt> queue_;
  std::size_t idle_workers_ = 0;
  std::size_t done_count_ = 0;
  bool shutdown_ = false;
};

}  // namespace

ShardManager::ShardManager(ThreadPool& pool, ShardBuildParams params)
    : pool_(&pool), params_(std::move(params)) {
  WKNNG_CHECK_MSG(params_.workers > 0, "need at least one shard worker");
  WKNNG_CHECK_MSG(!params_.artifact_prefix.empty(),
                  "sharded builds persist per-shard checkpoints: "
                  "artifact_prefix must be set");
  WKNNG_CHECK_MSG(params_.speculate_after_ms >= 0.0,
                  "speculate_after_ms must be >= 0");
  WKNNG_CHECK_MSG(
      !params_.loss_stall || params_.heartbeat_timeout_ms > 0 ||
          params_.speculate,
      "loss_stall needs the watchdog or speculation to declare the loss");
  // Mirror the builder's environment resolution so the campaign-wide
  // injector below is built from the same spec every per-shard builder will
  // re-derive (they then run under the ambient injector instead of nesting).
  if (const char* env = std::getenv("WKNNG_INJECT_FAULTS");
      env != nullptr && *env != '\0') {
    params_.build.faults = simt::fault_spec_from_string(env);
  }
  params_.build.checkpoint_path.clear();  // the manager owns artifact naming
}

ShardBuildResult ShardManager::build(const FloatMatrix& points) const {
  const auto t0 = Clock::now();
  const std::size_t n = points.rows();
  WKNNG_CHECK_MSG(n > params_.build.k,
                  "need more points than k: n=" << n << " k=" << params_.build.k);

  ShardBuildResult out;

  // Phase 1: partition. The min-points floor guarantees every shard is
  // buildable (the per-shard builder needs n_shard > k even after its own
  // quarantine pass; 2*k+2 leaves headroom for non-finite rows).
  ShardPartitionParams pp = params_.partition;
  pp.min_points = std::max(pp.min_points, 2 * params_.build.k + 2);
  out.partition = partition_points(*pool_, points, pp);
  const std::size_t shards = out.partition.num_shards();
  out.report.partition_seconds = seconds_between(t0, Clock::now());

  out.shard_bases.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    out.shard_bases.push_back(gather_rows(points, out.partition.members[s]));
  }

  // Phase 2: manifest. Written up-front (atomically) so a killed process
  // leaves a resumable ledger; on resume the freshly derived partition must
  // match it exactly before any artifact is trusted.
  const std::string manifest_path = params_.artifact_prefix + ".manifest";
  data::ShardManifest manifest;
  manifest.n = n;
  manifest.dim = points.cols();
  manifest.k = params_.build.k;
  manifest.num_shards = shards;
  manifest.partitioner = partitioner_name(out.partition.effective);
  manifest.seed = pp.seed;
  manifest.partition_hash = out.partition.hash();
  for (std::size_t s = 0; s < shards; ++s) {
    manifest.artifacts.push_back(
        std::filesystem::path(
            data::shard_artifact_path(params_.artifact_prefix, s, "ckpt"))
            .filename()
            .string());
  }
  bool resume_ok = false;
  if (params_.resume) {
    try {
      const data::ShardManifest prev = data::read_shard_manifest(manifest_path);
      resume_ok = prev.n == manifest.n && prev.dim == manifest.dim &&
                  prev.k == manifest.k &&
                  prev.num_shards == manifest.num_shards &&
                  prev.partitioner == manifest.partitioner &&
                  prev.seed == manifest.seed &&
                  prev.partition_hash == manifest.partition_hash;
    } catch (const Error&) {
      resume_ok = false;
    }
  }
  if (!resume_ok) {
    // Fresh campaign: stale committed artifacts must not be resumed from.
    for (std::size_t s = 0; s < shards; ++s) {
      std::error_code ec;
      std::filesystem::remove(
          data::shard_artifact_path(params_.artifact_prefix, s, "ckpt"), ec);
    }
  }
  data::write_shard_manifest(manifest_path, manifest);

  // One campaign-wide fault injector: per-shard builders detect it as
  // ambient and run under it instead of nesting their own (which
  // ScopedFaultInjection rejects for concurrent jobs).
  std::optional<simt::FaultInjector> injector;
  std::optional<simt::ScopedFaultInjection> injection;
  if (params_.build.faults.enabled &&
      simt::active_fault_injector() == nullptr) {
    injector.emplace(params_.build.faults);
    injection.emplace(*injector);
  }

  std::optional<obs::Span> root;
  obs::Tracer* tr = params_.build.obs.trace ? obs::active_tracer() : nullptr;
  if (tr != nullptr) {
    root.emplace(tr, "shard_build", "shard",
                 obs::Tracer::span_id(shards, params_.workers, 0,
                                      obs::SpanSalt::kShardJob),
                 obs::kTrackShard);
    root->arg_num("shards", static_cast<std::uint64_t>(shards));
    root->arg_num("workers", static_cast<std::uint64_t>(params_.workers));
  }

  // Phase 3: the queue.
  const auto tq = Clock::now();
  Orchestrator orch(*pool_, params_, out.shard_bases);
  orch.run();
  out.report.build_seconds = seconds_between(tq, Clock::now());
  injection.reset();

  // Phase 4: merge. Local rows translate to global ids; ties at equal
  // distance may change rank order under translation, so rows are re-sorted
  // into the canonical (dist, id) order. Quarantined shards contribute empty
  // rows (valid-prefix semantics) and mark the build degraded.
  out.merged = KnnGraph(n, params_.build.k);
  out.shard_graphs.resize(shards);
  out.report.shards = shards;
  out.report.workers = params_.workers;
  out.report.partition_fallback = out.partition.fallback;
  out.report.degraded = out.partition.fallback;
  for (Job& j : orch.jobs()) {
    const std::vector<std::uint32_t>& members =
        out.partition.members[j.shard];
    ShardJobReport jr;
    jr.shard = j.shard;
    jr.points = members.size();
    jr.state = j.state;
    jr.attempts = j.attempts_started;
    jr.retries = j.retries;
    jr.speculations = j.speculations;
    jr.losses = j.losses;
    jr.watchdog_kills = j.watchdog_kills;
    jr.heartbeats = j.heartbeats;
    jr.winning_attempt = j.winning_attempt;
    jr.salvaged = j.salvaged;
    jr.seconds = j.seconds;
    jr.faults_injected = j.result.health.faults_injected;
    out.report.retries_total += j.retries;
    out.report.speculations_total += j.speculations;
    out.report.losses_total += j.losses;
    out.report.watchdog_kills_total += j.watchdog_kills;
    out.report.heartbeats_total += j.heartbeats;
    if (j.state == JobState::kDone) {
      KnnGraph& local = j.result.graph;
      for (std::size_t i = 0; i < local.num_points(); ++i) {
        const auto src = local.row(i);
        const auto dst = out.merged.row(members[i]);
        std::size_t valid = 0;
        for (const Neighbor& nb : src) {
          if (nb.id == KnnGraph::kInvalid) break;
          dst[valid++] = {nb.dist, members[nb.id]};
        }
        std::sort(dst.begin(), dst.begin() + valid);
      }
      out.shard_graphs[j.shard] = std::move(local);
      out.report.degraded =
          out.report.degraded || j.result.health.degraded;
    } else {
      ++out.report.quarantined_shards;
      out.report.degraded = true;
    }
    out.report.jobs.push_back(jr);
  }

  // Phase 5: the cross-shard stitch round.
  if (params_.stitch.enabled && shards > 1) {
    const auto ts = Clock::now();
    const StitchStats st =
        stitch_graph(*pool_, points, out.partition, out.shard_bases,
                     out.shard_graphs, out.merged, params_.stitch);
    out.report.boundary_points = st.boundary_points;
    out.report.stitched_edges = st.stitched_edges;
    out.report.stitch_seconds = seconds_between(ts, Clock::now());
  }

  out.report.total_seconds = seconds_between(t0, Clock::now());
  if (root) {
    root->arg("report", out.report.to_json());
    root->finish();
  }
  return out;
}

ShardBuildResult build_sharded_knng(ThreadPool& pool,
                                    const FloatMatrix& points,
                                    const ShardBuildParams& params) {
  return ShardManager(pool, params).build(points);
}

}  // namespace wknng::shard
