#include "shard/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ivf/kmeans.hpp"

namespace wknng::shard {

namespace {

std::uint64_t mix_chain(std::uint64_t h, std::uint64_t v) {
  return SplitMix64(h ^ (v * 0x9E3779B97F4A7C15ULL)).next();
}

bool row_finite(std::span<const float> row) {
  for (const float v : row) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::vector<std::vector<std::uint32_t>> members_of(
    const std::vector<std::uint32_t>& assignment, std::size_t shards) {
  std::vector<std::vector<std::uint32_t>> members(shards);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    members[assignment[i]].push_back(static_cast<std::uint32_t>(i));
  }
  return members;  // ascending by construction (i is monotone)
}

std::size_t smallest(const std::vector<std::vector<std::uint32_t>>& members) {
  std::size_t m = ~std::size_t{0};
  for (const auto& list : members) m = std::min(m, list.size());
  return m;
}

/// Seeded-shuffle round-robin: rank points by a per-point hash key and deal
/// rank r to shard r % shards. Sizes differ by at most one.
std::vector<std::uint32_t> random_assignment(std::size_t n, std::size_t shards,
                                             std::uint64_t seed) {
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<std::uint64_t> key(n);
  for (std::size_t i = 0; i < n; ++i) key[i] = mix_chain(seed, i + 1);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return key[a] != key[b] ? key[a] < key[b] : a < b;
            });
  std::vector<std::uint32_t> assignment(n);
  for (std::size_t r = 0; r < n; ++r) {
    assignment[order[r]] = static_cast<std::uint32_t>(r % shards);
  }
  return assignment;
}

/// Mean of each shard's finite member rows (all-zero when a shard has none):
/// the routing/boundary centroid for the random partitioner.
FloatMatrix mean_centroids(const FloatMatrix& points,
                           const std::vector<std::vector<std::uint32_t>>& members) {
  const std::size_t dim = points.cols();
  FloatMatrix centroids(members.size(), dim);
  std::vector<double> acc(dim);
  for (std::size_t s = 0; s < members.size(); ++s) {
    std::fill(acc.begin(), acc.end(), 0.0);
    std::size_t used = 0;
    for (const std::uint32_t id : members[s]) {
      const auto row = points.row(id);
      if (!row_finite(row)) continue;
      for (std::size_t d = 0; d < dim; ++d) acc[d] += row[d];
      ++used;
    }
    auto out = centroids.row(s);
    for (std::size_t d = 0; d < dim; ++d) {
      out[d] = used > 0 ? static_cast<float>(acc[d] / static_cast<double>(used))
                        : 0.0f;
    }
  }
  return centroids;
}

}  // namespace

const char* partitioner_name(Partitioner p) {
  switch (p) {
    case Partitioner::kKMeans: return "kmeans";
    case Partitioner::kRandom: return "random";
  }
  return "?";
}

Partitioner partitioner_from_name(const std::string& name) {
  if (name == "kmeans") return Partitioner::kKMeans;
  if (name == "random") return Partitioner::kRandom;
  throw Error("unknown partitioner '" + name + "' (expected kmeans|random)");
}

std::uint64_t ShardPartition::hash() const {
  std::uint64_t h = mix_chain(0x5348415244u /* "SHARD" */, assignment.size());
  h = mix_chain(h, members.size());
  for (const std::uint32_t a : assignment) h = mix_chain(h, a + 1);
  return h;
}

ShardPartition partition_points(ThreadPool& pool, const FloatMatrix& points,
                                const ShardPartitionParams& params) {
  const std::size_t n = points.rows();
  WKNNG_CHECK_MSG(n > 0, "cannot partition an empty point set");
  WKNNG_CHECK_MSG(params.shards > 0, "shards must be >= 1");

  // The min-points floor bounds how many shards n points can sustain.
  std::size_t shards = params.shards;
  if (params.min_points > 0) {
    shards = std::min(shards, std::max<std::size_t>(1, n / params.min_points));
  }
  shards = std::min(shards, n);

  ShardPartition part;
  part.seed = params.seed;

  if (shards == 1) {
    part.assignment.assign(n, 0);
    part.members = members_of(part.assignment, 1);
    part.centroids = mean_centroids(points, part.members);
    part.effective = params.partitioner;
    part.fallback = shards != params.shards;
    return part;
  }

  if (params.partitioner == Partitioner::kKMeans) {
    // Sanitize for the assignment decision only: a NaN row would make every
    // centroid distance NaN. The zeroed copy is dropped after clustering.
    FloatMatrix clean(n, points.cols());
    for (std::size_t i = 0; i < n; ++i) {
      const auto src = points.row(i);
      auto dst = clean.row(i);
      if (row_finite(src)) {
        std::copy(src.begin(), src.end(), dst.begin());
      } else {
        std::fill(dst.begin(), dst.end(), 0.0f);
      }
    }
    ivf::KMeansParams kp;
    kp.clusters = shards;
    kp.iterations = params.kmeans_iterations;
    kp.seed = params.seed;
    const ivf::KMeansResult km = ivf::kmeans(pool, clean, kp);
    auto members = members_of(km.assignment, shards);
    if (params.min_points == 0 || smallest(members) >= params.min_points) {
      part.assignment = km.assignment;
      part.members = std::move(members);
      part.centroids = km.centroids;
      part.effective = Partitioner::kKMeans;
      part.fallback = shards != params.shards;
      return part;
    }
    // An undersized k-means shard cannot be built; degrade to the balanced
    // random split (quarantine-and-degrade, not failure).
    part.fallback = true;
  }

  part.assignment = random_assignment(n, shards, params.seed);
  part.members = members_of(part.assignment, shards);
  part.centroids = mean_centroids(points, part.members);
  part.effective = Partitioner::kRandom;
  part.fallback = part.fallback || shards != params.shards ||
                  params.partitioner != Partitioner::kRandom;
  return part;
}

FloatMatrix gather_rows(const FloatMatrix& points,
                        const std::vector<std::uint32_t>& ids) {
  FloatMatrix out(ids.size(), points.cols());
  for (std::size_t r = 0; r < ids.size(); ++r) {
    const auto src = points.row(ids[r]);
    std::copy(src.begin(), src.end(), out.row(r).begin());
  }
  return out;
}

}  // namespace wknng::shard
