#include "shard/report.hpp"

#include <sstream>

#include "obs/registry.hpp"

namespace wknng::shard {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kQuarantined: return "quarantined";
  }
  return "?";
}

std::string ShardBuildReport::to_json() const {
  std::ostringstream os;
  os << "{\"shards\":" << shards << ",\"workers\":" << workers
     << ",\"degraded\":" << (degraded ? "true" : "false")
     << ",\"partition_fallback\":" << (partition_fallback ? "true" : "false")
     << ",\"retries\":" << retries_total
     << ",\"speculations\":" << speculations_total
     << ",\"losses\":" << losses_total
     << ",\"watchdog_kills\":" << watchdog_kills_total
     << ",\"heartbeats\":" << heartbeats_total
     << ",\"quarantined_shards\":" << quarantined_shards
     << ",\"boundary_points\":" << boundary_points
     << ",\"stitched_edges\":" << stitched_edges
     << ",\"partition_seconds\":" << partition_seconds
     << ",\"build_seconds\":" << build_seconds
     << ",\"stitch_seconds\":" << stitch_seconds
     << ",\"total_seconds\":" << total_seconds << ",\"jobs\":[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ShardJobReport& j = jobs[i];
    if (i > 0) os << ",";
    os << "{\"shard\":" << j.shard << ",\"points\":" << j.points
       << ",\"state\":\"" << job_state_name(j.state) << "\""
       << ",\"attempts\":" << j.attempts << ",\"retries\":" << j.retries
       << ",\"speculations\":" << j.speculations
       << ",\"losses\":" << j.losses
       << ",\"watchdog_kills\":" << j.watchdog_kills
       << ",\"heartbeats\":" << j.heartbeats
       << ",\"winning_attempt\":" << j.winning_attempt
       << ",\"salvaged\":" << (j.salvaged ? "true" : "false")
       << ",\"seconds\":" << j.seconds
       << ",\"faults_injected\":" << j.faults_injected << "}";
  }
  os << "]}";
  return os.str();
}

void register_shard_metrics(obs::MetricsRegistry& reg,
                            const ShardBuildReport& r) {
  const auto gauge = [&reg](const char* name, double v, const char* help) {
    reg.gauge(name, help).set(v);
  };
  const auto counter = [&reg](const char* name, std::uint64_t v,
                              const char* help) {
    reg.counter(name, help).add(v);
  };

  gauge("wknng_shard_shards", static_cast<double>(r.shards),
        "Shards in the build");
  gauge("wknng_shard_workers", static_cast<double>(r.workers),
        "Concurrent shard-build workers");
  gauge("wknng_shard_degraded", r.degraded ? 1.0 : 0.0,
        "1 when the merged graph may differ from the ideal run");
  gauge("wknng_shard_partition_fallback", r.partition_fallback ? 1.0 : 0.0,
        "1 when the requested partition degraded (e.g. kmeans -> random)");
  counter("wknng_shard_retries_total", r.retries_total,
          "Replacement attempts enqueued after worker losses");
  counter("wknng_shard_speculations_total", r.speculations_total,
          "Speculative straggler twins launched");
  counter("wknng_shard_losses_total", r.losses_total,
          "Worker-loss events (thrown and stalled)");
  counter("wknng_shard_watchdog_kills_total", r.watchdog_kills_total,
          "Losses declared by the missed-heartbeat watchdog");
  counter("wknng_shard_heartbeats_total", r.heartbeats_total,
          "Verified heartbeats received from workers");
  counter("wknng_shard_quarantined_total", r.quarantined_shards,
          "Shards quarantined after exhausting their retry budget");
  counter("wknng_shard_boundary_points_total", r.boundary_points,
          "Points offered to the cross-shard stitch round");
  counter("wknng_shard_stitched_edges_total", r.stitched_edges,
          "Cross-shard edges added by the stitch round");
  gauge("wknng_shard_partition_seconds", r.partition_seconds,
        "Partitioning wall time");
  gauge("wknng_shard_build_seconds", r.build_seconds,
        "Queue-open to last-commit wall time");
  gauge("wknng_shard_stitch_seconds", r.stitch_seconds,
        "Stitch-round wall time");
  gauge("wknng_shard_total_seconds", r.total_seconds,
        "End-to-end sharded build wall time");
  reg.json_blob("wknng_shard_report", r.to_json());
}

}  // namespace wknng::shard
