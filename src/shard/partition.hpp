#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/thread_pool.hpp"

namespace wknng::shard {

/// How the corpus is split into shards before the per-shard builds run.
enum class Partitioner : std::uint8_t {
  /// Coarse k-means over the points (src/ivf quantizer): shards follow the
  /// data's cluster structure, so most true neighbors stay intra-shard and
  /// the merged graph loses little recall.
  kKMeans,
  /// Seeded-shuffle round-robin: balanced shard sizes by construction, no
  /// geometric locality. The degrade target when k-means yields shards too
  /// small to build (and a baseline for the fig12 bench).
  kRandom,
};

const char* partitioner_name(Partitioner p);

/// Parses "kmeans" / "random" (throws wknng::Error listing the valid names
/// otherwise).
Partitioner partitioner_from_name(const std::string& name);

struct ShardPartitionParams {
  std::size_t shards = 4;
  Partitioner partitioner = Partitioner::kKMeans;
  std::uint64_t seed = 1234;          ///< k-means seeding / shuffle keys
  std::size_t kmeans_iterations = 8;  ///< Lloyd rounds for the coarse split
  /// Smallest shard the per-shard builder can digest (it needs more points
  /// than k). Requested shard counts are reduced, and k-means splits are
  /// degraded to random, until every shard meets the floor. 0 = no floor.
  std::size_t min_points = 0;
};

/// A concrete split: per-point shard assignment plus the inverse (member
/// lists, ascending point ids) and one centroid per shard for routing and
/// boundary detection. Deterministic in (points, params).
struct ShardPartition {
  FloatMatrix centroids;                           ///< shards x dim
  std::vector<std::uint32_t> assignment;           ///< per point, its shard
  std::vector<std::vector<std::uint32_t>> members; ///< per shard, ascending
  Partitioner effective = Partitioner::kKMeans;    ///< after any fallback
  std::uint64_t seed = 0;
  bool fallback = false;  ///< a k-means request degraded to random

  std::size_t num_shards() const { return members.size(); }

  /// Order-sensitive digest of (n, num_shards, assignment): the manifest
  /// stores it so a resumed build can verify it re-derived the identical
  /// partition before trusting per-shard artifacts.
  std::uint64_t hash() const;
};

/// Splits `points` into at most `params.shards` shards (fewer when the
/// min-points floor forces it; always at least 1). Non-finite rows are
/// assigned by a sanitized copy (coordinates zeroed for the assignment
/// decision only) so a NaN coordinate cannot poison the k-means step — the
/// per-shard builder quarantines those rows itself.
ShardPartition partition_points(ThreadPool& pool, const FloatMatrix& points,
                                const ShardPartitionParams& params);

/// Copies the given rows of `points` into a dense matrix (the per-shard base
/// handed to the builder; row r of the result is points.row(ids[r])).
FloatMatrix gather_rows(const FloatMatrix& points,
                        const std::vector<std::uint32_t>& ids);

}  // namespace wknng::shard
