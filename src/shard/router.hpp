#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/graph_search.hpp"
#include "obs/slo.hpp"
#include "shard/manager.hpp"

namespace wknng::shard {

/// Query fan-out over a sharded build.
struct RouterParams {
  /// Shards probed per query: the `top_p` nearest by centroid distance.
  /// Clamped to the number of routable (non-quarantined) shards.
  std::size_t top_p = 2;

  /// Per-shard descent knobs. `k` is the per-query result count; each probed
  /// shard returns its own top-k and the router k-way-merges them.
  core::SearchParams search;

  /// Rolling per-query fan-out window (shards actually probed), ticked by a
  /// router-owned monotone query counter — the SLO plane's view of routing
  /// spread. Must outlive the router; null = off.
  obs::WindowedHistogram* fanout_window = nullptr;
};

struct RouteStats {
  std::uint64_t queries = 0;
  std::uint64_t probes = 0;  ///< (query, shard) pairs actually searched
};

/// Serves queries against a ShardBuildResult: scores each query against the
/// shard centroids with the batched L2 kernel, fans out to the `top_p`
/// nearest shards' local graphs, translates local ids back to global ids,
/// and k-way-merges the per-shard candidate lists into one sorted top-k row.
///
/// Deterministic: per-shard searches tag each query with its global batch
/// index (so results are batching-independent, same contract as serving),
/// centroid ties break toward the smaller shard index, and merge ties break
/// by (dist, id). Quarantined shards (empty local graph) are never probed —
/// their points are only reachable through stitched edges in the merged
/// graph, not through the router.
class ShardRouter {
 public:
  /// `build` must outlive the router (bases/graphs/centroids are borrowed).
  ShardRouter(ThreadPool& pool, const ShardBuildResult& build,
              RouterParams params);

  const RouterParams& params() const { return params_; }

  /// Shard indices this router can probe (non-quarantined, non-empty).
  const std::vector<std::uint32_t>& routable() const { return routable_; }

  /// The `top_p` routable shards nearest to `query` (ascending centroid
  /// distance, ties toward smaller shard index).
  std::vector<std::uint32_t> top_shards(std::span<const float> query) const;

  /// One row of global-id neighbors per query row, sorted by (dist, id).
  KnnGraph route_batch(const FloatMatrix& queries,
                       RouteStats* stats = nullptr) const;

 private:
  ThreadPool* pool_;
  const ShardBuildResult* build_;
  RouterParams params_;
  std::vector<std::uint32_t> routable_;
  std::vector<const float*> centroid_rows_;  ///< routable shards only
  /// Monotone tick for the fan-out window: one per routed query, so window
  /// membership depends on route order, never on a clock.
  mutable std::atomic<std::uint64_t> fanout_tick_{0};
  /// Per-shard scratch (SearchScratch is non-movable, hence unique_ptr).
  mutable std::vector<std::unique_ptr<core::SearchScratch>> scratch_;
};

}  // namespace wknng::shard
