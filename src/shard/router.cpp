#include "shard/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "shard/stitch.hpp"

namespace wknng::shard {

ShardRouter::ShardRouter(ThreadPool& pool, const ShardBuildResult& build,
                         RouterParams params)
    : pool_(&pool), build_(&build), params_(params) {
  WKNNG_CHECK_MSG(params_.top_p > 0, "router top_p must be >= 1");
  WKNNG_CHECK_MSG(params_.search.k > 0, "router k must be >= 1");
  const std::size_t shards = build.partition.num_shards();
  WKNNG_CHECK(build.shard_bases.size() == shards &&
              build.shard_graphs.size() == shards);
  for (std::size_t s = 0; s < shards; ++s) {
    if (build.shard_graphs[s].num_points() == 0) continue;  // quarantined
    routable_.push_back(static_cast<std::uint32_t>(s));
    centroid_rows_.push_back(build.partition.centroids.row(s).data());
    scratch_.push_back(std::make_unique<core::SearchScratch>());
  }
  WKNNG_CHECK_MSG(!routable_.empty(), "no routable shards (all quarantined)");
}

std::vector<std::uint32_t> ShardRouter::top_shards(
    std::span<const float> query) const {
  const std::size_t routable = routable_.size();
  const std::size_t dim = build_->partition.centroids.cols();
  WKNNG_CHECK(query.size() == dim);
  std::vector<float> dists(routable);
  bool finite = true;
  for (const float v : query) {
    if (!std::isfinite(v)) {
      finite = false;
      break;
    }
  }
  if (finite) {
    kernels::ops().l2_batch(query.data(), centroid_rows_.data(), nullptr,
                            routable, dim, dists.data());
  } else {
    std::fill(dists.begin(), dists.end(), 0.0f);  // degenerate: shard order
  }
  std::vector<std::uint32_t> order(routable);
  for (std::size_t r = 0; r < routable; ++r) {
    order[r] = static_cast<std::uint32_t>(r);
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (dists[a] != dists[b]) return dists[a] < dists[b];
              return routable_[a] < routable_[b];
            });
  const std::size_t p = std::min(params_.top_p, routable);
  std::vector<std::uint32_t> out(p);
  for (std::size_t r = 0; r < p; ++r) out[r] = routable_[order[r]];
  return out;
}

KnnGraph ShardRouter::route_batch(const FloatMatrix& queries,
                                  RouteStats* stats) const {
  const std::size_t nq = queries.rows();
  const std::size_t k = params_.search.k;
  KnnGraph out(nq, k);
  if (nq == 0) return out;
  WKNNG_CHECK(queries.cols() == build_->partition.centroids.cols());

  // Fan-out plan: per routable shard, which query rows probe it.
  std::vector<std::vector<std::uint32_t>> plan(routable_.size());
  for (std::size_t q = 0; q < nq; ++q) {
    const std::vector<std::uint32_t> shards = top_shards(queries.row(q));
    if (params_.fanout_window != nullptr) {
      params_.fanout_window->record(
          fanout_tick_.fetch_add(1, std::memory_order_relaxed),
          static_cast<double>(shards.size()));
    }
    for (const std::uint32_t s : shards) {
      // top_shards returns global shard ids; map back to the routable slot.
      const auto it = std::lower_bound(routable_.begin(), routable_.end(), s);
      plan[static_cast<std::size_t>(it - routable_.begin())].push_back(
          static_cast<std::uint32_t>(q));
    }
  }

  // Per-query bounded merge rows (reuse the stitch insert).
  for (std::size_t r = 0; r < routable_.size(); ++r) {
    const std::vector<std::uint32_t>& qs = plan[r];
    if (qs.empty()) continue;
    const std::uint32_t s = routable_[r];
    const std::size_t dim = queries.cols();
    FloatMatrix sub(qs.size(), dim);
    std::vector<std::uint64_t> tags(qs.size());
    for (std::size_t q = 0; q < qs.size(); ++q) {
      const auto src = queries.row(qs[q]);
      std::copy(src.begin(), src.end(), sub.row(q).begin());
      tags[q] = qs[q];  // global batch index: batching-independent results
    }
    const core::BatchSearchResult found = core::graph_search_batch(
        *pool_, build_->shard_bases[s], build_->shard_graphs[s], sub, tags,
        params_.search, scratch_[r].get());
    const std::vector<std::uint32_t>& locals = build_->partition.members[s];
    for (std::size_t q = 0; q < qs.size(); ++q) {
      const auto cands = found.results.row(q);
      const auto dst = out.row(qs[q]);
      for (const Neighbor& c : cands) {
        if (c.id == KnnGraph::kInvalid) break;
        offer_edge(dst, KnnGraph::kInvalid, {c.dist, locals[c.id]});
      }
    }
    if (stats != nullptr) stats->probes += qs.size();
  }
  if (stats != nullptr) stats->queries += nq;
  return out;
}

}  // namespace wknng::shard
