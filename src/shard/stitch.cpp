#include "shard/stitch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "kernels/kernels.hpp"

namespace wknng::shard {

namespace {

bool row_finite(std::span<const float> row) {
  for (const float v : row) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

bool offer_edge(std::span<Neighbor> row, std::uint32_t self, Neighbor cand) {
  if (cand.id == self || cand.id == KnnGraph::kInvalid) return false;
  if (!std::isfinite(cand.dist)) return false;
  std::size_t valid = 0;
  while (valid < row.size() && row[valid].id != KnnGraph::kInvalid) {
    if (row[valid].id == cand.id) return false;
    ++valid;
  }
  if (valid == row.size() && !(cand < row[valid - 1])) return false;
  // Insertion point in the sorted prefix.
  std::size_t pos = valid;
  while (pos > 0 && cand < row[pos - 1]) --pos;
  const std::size_t last = std::min(valid, row.size() - 1);
  for (std::size_t j = last; j > pos; --j) row[j] = row[j - 1];
  row[pos] = cand;
  return true;
}

StitchStats stitch_graph(ThreadPool& pool, const FloatMatrix& points,
                         const ShardPartition& part,
                         const std::vector<FloatMatrix>& shard_bases,
                         const std::vector<KnnGraph>& shard_graphs,
                         KnnGraph& merged, const StitchParams& params) {
  StitchStats stats;
  const std::size_t shards = part.num_shards();
  if (!params.enabled || shards < 2) return stats;
  WKNNG_CHECK(shard_bases.size() == shards && shard_graphs.size() == shards);

  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();

  // Score every point against every shard centroid (query x L batch shape).
  std::vector<const float*> rows(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    rows[s] = part.centroids.row(s).data();
  }
  std::vector<float> dists(shards);

  // Boundary points grouped by the foreign shard they will search.
  std::vector<std::vector<std::uint32_t>> probes(shards);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = points.row(i);
    if (!row_finite(row)) continue;
    kernels::ops().l2_batch(row.data(), rows.data(), nullptr, shards, dim,
                            dists.data());
    const std::uint32_t owner = part.assignment[i];
    std::size_t second = shards;
    for (std::size_t s = 0; s < shards; ++s) {
      if (s == owner) continue;
      if (second == shards || dists[s] < dists[second]) second = s;
    }
    if (second == shards || shard_graphs[second].num_points() == 0) continue;
    if (static_cast<double>(dists[second]) <=
        params.boundary_ratio * static_cast<double>(dists[owner])) {
      probes[second].push_back(static_cast<std::uint32_t>(i));
      ++stats.boundary_points;
    }
  }

  core::SearchParams sp = params.search;
  sp.k = params.candidates != 0 ? params.candidates : merged.k();
  core::SearchScratch scratch;

  for (std::size_t t = 0; t < shards; ++t) {
    const std::vector<std::uint32_t>& qs = probes[t];
    if (qs.empty()) continue;
    FloatMatrix queries(qs.size(), dim);
    std::vector<std::uint64_t> tags(qs.size());
    for (std::size_t q = 0; q < qs.size(); ++q) {
      const auto src = points.row(qs[q]);
      std::copy(src.begin(), src.end(), queries.row(q).begin());
      tags[q] = qs[q];
    }
    const core::BatchSearchResult found = core::graph_search_batch(
        pool, shard_bases[t], shard_graphs[t], queries, tags, sp, &scratch);
    const std::vector<std::uint32_t>& locals = part.members[t];
    for (std::size_t q = 0; q < qs.size(); ++q) {
      const std::uint32_t i = qs[q];
      const auto cands = found.results.row(q);
      for (const Neighbor& c : cands) {
        if (c.id == KnnGraph::kInvalid) break;
        const std::uint32_t g = locals[c.id];
        if (offer_edge(merged.row(i), i, {c.dist, g})) ++stats.stitched_edges;
        if (offer_edge(merged.row(g), g, {c.dist, i})) ++stats.stitched_edges;
      }
    }
  }
  return stats;
}

}  // namespace wknng::shard
