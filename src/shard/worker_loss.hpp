#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "simt/fault.hpp"

namespace wknng::shard {

namespace loss_detail {
inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return SplitMix64(h ^ (v * 0x9E3779B97F4A7C15ULL)).next();
}
}  // namespace loss_detail

/// The deterministic worker-loss schedule of a shard-build campaign: whether
/// the worker running `attempt` of shard `shard` dies at the boundary of
/// `slice` (a slice ends when checkpoint rounds_done == slice is persisted).
///
/// A pure function of (spec.seed, spec.site, shard, attempt, slice) — no
/// global counters, no `max_faults` budget — so a test can precompute the
/// exact loss schedule (and therefore the exact retry counts) a campaign
/// will produce, independent of worker count and thread timing. Losses fire
/// *after* the slice's checkpoint is published, modeling a worker that died
/// between finishing a round and picking up the next: the replacement
/// attempt resumes from that checkpoint and the merged graph stays
/// bit-identical to the fault-free run.
inline bool worker_loss_fires(const simt::FaultSpec& spec, std::uint64_t shard,
                              std::uint64_t attempt, std::uint64_t slice) {
  if (!spec.enabled || spec.probability <= 0.0) return false;
  std::uint64_t h = loss_detail::mix(
      spec.seed, static_cast<std::uint64_t>(spec.site) + 1);
  h = loss_detail::mix(h, shard + 1);
  h = loss_detail::mix(h, attempt + 1);
  h = loss_detail::mix(h, slice + 1);
  if (spec.probability >= 1.0) return true;
  return static_cast<double>(h >> 11) * 0x1.0p-53 < spec.probability;
}

/// The heartbeat a live attempt emits at every slice boundary is not a bare
/// timestamp: it carries this counter-hashed token, a pure function of
/// (seed, shard, attempt, slice). The manager recomputes the expectation and
/// refreshes the attempt's liveness clock only on a match — a zombie worker
/// replaying a stale slice (or a confused one beating for the wrong job)
/// cannot keep a dead attempt looking alive.
inline std::uint64_t heartbeat_token(std::uint64_t seed, std::uint64_t shard,
                                     std::uint64_t attempt,
                                     std::uint64_t slice) {
  std::uint64_t h = loss_detail::mix(seed ^ 0x48454152545342ULL, shard + 1);
  h = loss_detail::mix(h, attempt + 1);
  return loss_detail::mix(h, slice + 1);
}

}  // namespace wknng::shard
