#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wknng {

/// Fixed-size worker pool exposing a single primitive: `parallel_for`, a
/// dynamically load-balanced index loop. Dynamic chunk claiming (an atomic
/// cursor) is deliberate: the workloads here (warps over variable-size
/// RP-forest leaves) are irregular, and static partitioning would idle
/// workers on skewed buckets.
///
/// `parallel_for` may be called from several threads at once: each submitter
/// runs its own job to completion on its own thread, and idle workers are
/// shared round-robin across all in-flight jobs. This is what lets the
/// serving layer (src/serve) execute overlapping query batches on one pool —
/// the substrate's analogue of concurrent kernels sharing an SM.
///
/// The pool is also the repo's stand-in for a GPU's warp scheduler: the SIMT
/// substrate (src/simt) maps "resident warps" onto these workers.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs body(i) for every i in [0, n), distributing chunks of `grain`
  /// consecutive indices dynamically across all workers plus the calling
  /// thread. Blocks until every index is done. Exceptions thrown by `body`
  /// are rethrown (the first one) on the calling thread.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)>& body);

  /// Convenience overload with grain 1.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
    parallel_for(n, 1, body);
  }

 private:
  struct Job {
    std::size_t n = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> done{0};
    std::atomic<int> active{0};  // workers currently inside run_job
    std::exception_ptr error;  // first exception; guarded by error_mutex
    std::mutex error_mutex;
  };

  void worker_loop();
  static void run_job(Job& job);
  Job* pick_job_locked();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<Job*> jobs_;   // in-flight jobs (guarded by mutex_)
  std::size_t rr_ = 0;       // round-robin pick cursor over jobs_
  bool stop_ = false;
};

}  // namespace wknng
