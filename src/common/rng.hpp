#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

namespace wknng {

/// SplitMix64 — used to expand a single user seed into stream seeds.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the repo's workhorse PRNG. Deterministic across platforms
/// (unlike std::mt19937 distributions), cheap, and splittable via jump-free
/// SplitMix64 reseeding: every logical stream (tree, warp, dataset) derives
/// its own Rng from (seed, stream_id).
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) {
    SplitMix64 sm(seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1)));
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform in [0, 1).
  float next_float() { return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f; }

  /// Uniform integer in [0, bound). Lemire widening-multiply with debiasing
  /// rejection (Lemire, "Fast random integer generation in an interval", 2019).
  std::uint64_t next_below(std::uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (cached second value).
  float next_gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    float u1 = next_float();
    while (u1 <= 1e-12f) u1 = next_float();
    const float u2 = next_float();
    const float r = std::sqrt(-2.0f * std::log(u1));
    const float theta = 2.0f * std::numbers::pi_v<float> * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  float cached_ = 0.0f;
  bool has_cached_ = false;
};

}  // namespace wknng
