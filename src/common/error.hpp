#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace wknng {

/// Exception type thrown by all WKNNG_CHECK* failures. Carries the failed
/// condition text and the file:line of the check site.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// --- Typed failures --------------------------------------------------------
// The recovery layer (core/builder, core/leaf_knn) distinguishes these to
// pick a policy: retry the bucket, fall back to another strategy, or give
// up. Each is thrown both by the real condition and by the matching
// fault-injection site (simt/fault.hpp), so recovery code cannot tell a
// simulated failure from a real one — which is the point.

/// A warp's scratch ("shared memory") budget was exceeded — the space
/// limitation that motivates the paper's global-memory strategies.
class ScratchOverflowError : public Error {
 public:
  using Error::Error;
};

/// A warp task aborted mid-kernel (injected preemption/kill).
class WarpAbortError : public Error {
 public:
  using Error::Error;
};

/// A spin-lock acquisition gave up (injected starvation/timeout).
class LockTimeoutError : public Error {
 public:
  using Error::Error;
};

/// A kernel launch could not allocate its grid (injected device OOM).
class LaunchAllocError : public Error {
 public:
  using Error::Error;
};

/// A build checkpoint does not match the parameters or data it is being
/// resumed with.
class CheckpointMismatchError : public Error {
 public:
  using Error::Error;
};

/// A persisted artifact (graph, checkpoint, sq8 codes, shard manifest) could
/// not be read or written: missing file, short read, size/header mismatch,
/// or trailing garbage. Every data/graph_io read path throws this instead of
/// reading past a truncated buffer.
class IoError : public Error {
 public:
  using Error::Error;
};

/// A shard build worker was lost mid-job: its heartbeat stopped and the
/// manager declared it dead (src/shard). The job is retried from its last
/// checkpoint by another worker.
class WorkerLostError : public Error {
 public:
  using Error::Error;
};

/// The SQ8 codec cannot be trained on the given set: it is empty, contains
/// non-finite values, or has zero variance in every dimension (all points
/// identical), so no meaningful per-dimension range exists.
class Sq8TrainError : public Error {
 public:
  using Error::Error;
};

/// A mutation batch was rejected at admission by the mutable-index layer
/// (core::IncrementalKnng, dynamic::DynamicKnng): empty batch, dimension
/// mismatch, or an id that cannot be resolved. Rejected batches are never
/// applied and never reach the write-ahead log.
class MutationError : public Error {
 public:
  using Error::Error;
};

/// Search parameters rejected at admission (core::validate_search_params):
/// a configuration that cannot produce meaningful results — e.g.
/// `entry_sample == 0`, which would seed the descent with an empty frontier
/// and silently answer every query with an empty row. Thrown before any
/// kernel launch so a misconfigured serving path fails loudly at setup, not
/// quietly at query time.
class SearchParamError : public Error {
 public:
  using Error::Error;
};

/// A served query's deadline passed before its result could be delivered
/// (src/serve): the request is answered with a typed timeout result instead
/// of its neighbors.
class DeadlineExceededError : public Error {
 public:
  using Error::Error;
};

/// A served query was rejected at admission because the request queue was
/// full (src/serve load shedding) or the engine was shutting down.
class OverloadShedError : public Error {
 public:
  using Error::Error;
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace wknng

/// Always-on invariant check (library public API boundary). Throws wknng::Error.
#define WKNNG_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::wknng::detail::throw_check_failure(#cond, __FILE__, __LINE__, "");   \
    }                                                                        \
  } while (0)

/// Check with a streamed message: WKNNG_CHECK_MSG(k > 0, "k=" << k).
#define WKNNG_CHECK_MSG(cond, stream_expr)                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream wknng_os_;                                          \
      wknng_os_ << stream_expr;                                              \
      ::wknng::detail::throw_check_failure(#cond, __FILE__, __LINE__,        \
                                           wknng_os_.str());                 \
    }                                                                        \
  } while (0)
