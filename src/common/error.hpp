#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace wknng {

/// Exception type thrown by all WKNNG_CHECK* failures. Carries the failed
/// condition text and the file:line of the check site.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace wknng

/// Always-on invariant check (library public API boundary). Throws wknng::Error.
#define WKNNG_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::wknng::detail::throw_check_failure(#cond, __FILE__, __LINE__, "");   \
    }                                                                        \
  } while (0)

/// Check with a streamed message: WKNNG_CHECK_MSG(k > 0, "k=" << k).
#define WKNNG_CHECK_MSG(cond, stream_expr)                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream wknng_os_;                                          \
      wknng_os_ << stream_expr;                                              \
      ::wknng::detail::throw_check_failure(#cond, __FILE__, __LINE__,        \
                                           wknng_os_.str());                 \
    }                                                                        \
  } while (0)
