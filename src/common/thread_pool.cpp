#include "common/thread_pool.hpp"

#include <algorithm>

namespace wknng {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in every parallel_for, so spawn n-1.
  if (n > 1) workers_.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_job(Job& job) {
  while (true) {
    const std::size_t begin = job.cursor.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.n) break;
    const std::size_t end = std::min(begin + job.grain, job.n);
    try {
      for (std::size_t i = begin; i < end; ++i) (*job.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    job.done.fetch_add(end - begin, std::memory_order_acq_rel);
  }
}

ThreadPool::Job* ThreadPool::pick_job_locked() {
  // Round-robin over the in-flight jobs so concurrent submitters share the
  // workers instead of the newest job starving the others.
  const std::size_t m = jobs_.size();
  for (std::size_t off = 0; off < m; ++off) {
    Job* j = jobs_[(rr_ + off) % m];
    if (j->cursor.load(std::memory_order_relaxed) < j->n) {
      rr_ = (rr_ + off + 1) % m;
      return j;
    }
  }
  return nullptr;
}

void ThreadPool::worker_loop() {
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || pick_job_locked() != nullptr; });
      if (stop_) return;
      job = pick_job_locked();
      if (job == nullptr) continue;  // raced with another worker; wait again
      job->active.fetch_add(1, std::memory_order_relaxed);
    }
    run_job(*job);
    // The Job lives on the submitter's stack; it may only be destroyed once
    // `active` drops to zero, which the submitter waits for under mutex_.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job->active.fetch_sub(1, std::memory_order_acq_rel);
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);

  Job job;
  job.n = n;
  job.grain = grain;
  job.body = &body;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(&job);
  }
  cv_.notify_all();

  run_job(job);  // the calling thread works too

  {
    std::unique_lock<std::mutex> lock(mutex_);
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
    done_cv_.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) == n &&
             job.active.load(std::memory_order_acquire) == 0;
    });
  }

  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace wknng
