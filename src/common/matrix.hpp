#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <utility>

#include "common/error.hpp"

namespace wknng {

/// Row-major dense matrix of trivially-copyable elements with 64-byte aligned
/// storage. This is the canonical layout for point sets throughout the repo:
/// `rows()` points, each a contiguous `cols()`-dimensional vector, so a warp
/// striding the dimensions of one point reads one cache-friendly row
/// (Core Guidelines Per.19: access memory predictably).
template <typename T>
class Matrix {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols) { resize(rows, cols); }

  Matrix(const Matrix& other) : Matrix(other.rows_, other.cols_) {
    if (size() != 0) std::memcpy(data_.get(), other.data_.get(), size() * sizeof(T));
  }

  Matrix& operator=(const Matrix& other) {
    if (this == &other) return *this;
    Matrix tmp(other);
    *this = std::move(tmp);
    return *this;
  }

  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// Reallocates to rows x cols; contents are zero-initialised.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    const std::size_t bytes = round_up(rows * cols * sizeof(T), kAlign);
    if (bytes == 0) {
      data_.reset();
      return;
    }
    void* p = std::aligned_alloc(kAlign, bytes);
    WKNNG_CHECK_MSG(p != nullptr, "aligned_alloc of " << bytes << " bytes failed");
    std::memset(p, 0, bytes);
    data_.reset(static_cast<T*>(p));
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }

  /// Contiguous view of row `r`.
  std::span<T> row(std::size_t r) {
    return {data_.get() + r * cols_, cols_};
  }
  std::span<const T> row(std::size_t r) const {
    return {data_.get() + r * cols_, cols_};
  }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

 private:
  static constexpr std::size_t kAlign = 64;

  static constexpr std::size_t round_up(std::size_t v, std::size_t a) {
    return (v + a - 1) / a * a;
  }

  struct FreeDeleter {
    void operator()(T* p) const { std::free(p); }
  };

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::unique_ptr<T[], FreeDeleter> data_;
};

using FloatMatrix = Matrix<float>;

}  // namespace wknng
