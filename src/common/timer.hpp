#pragma once

#include <chrono>

namespace wknng {

/// Monotonic wall-clock stopwatch. `elapsed_s()` may be called repeatedly;
/// `lap_s()` returns time since the previous lap (or construction).
class Timer {
 public:
  Timer() : start_(Clock::now()), lap_(start_) {}

  void reset() {
    start_ = Clock::now();
    lap_ = start_;
  }

  double elapsed_s() const { return seconds_since(start_); }
  double elapsed_ms() const { return elapsed_s() * 1e3; }

  double lap_s() {
    const auto now = Clock::now();
    const double s = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;

  double seconds_since(Clock::time_point t) const {
    return std::chrono::duration<double>(Clock::now() - t).count();
  }

  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace wknng
