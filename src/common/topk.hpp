#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace wknng {

/// A (distance, id) candidate as used by every KNN component in the repo.
/// Ordering is by distance, with id as deterministic tiebreak.
struct Neighbor {
  float dist = 0.0f;
  std::uint32_t id = 0;

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.dist == b.dist && a.id == b.id;
  }
};

/// Bounded max-heap keeping the k smallest (distance, id) pairs seen.
/// Host-side counterpart of the SIMT k-NN-set strategies; used by the exact
/// brute-force baseline, IVF search, and ground-truth computation.
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) { heap_.reserve(k); }

  std::size_t k() const { return k_; }
  std::size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() == k_; }

  /// Largest (worst) distance currently kept; +inf while not full.
  float worst() const {
    return full() ? heap_.front().dist : std::numeric_limits<float>::infinity();
  }

  /// Offers a candidate; O(log k) when it displaces, O(1) when rejected.
  /// NaN distances are rejected outright: a NaN would poison the heap order
  /// (every comparison false) and, downstream, the packed-u64 encoding the
  /// SIMT k-NN sets key on.
  void push(float dist, std::uint32_t id) {
    if (std::isnan(dist)) return;
    if (heap_.size() < k_) {
      heap_.push_back({dist, id});
      std::push_heap(heap_.begin(), heap_.end());
      return;
    }
    if (Neighbor{dist, id} < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = {dist, id};
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  /// Destructively extracts contents sorted ascending by (dist, id).
  std::vector<Neighbor> take_sorted() {
    std::sort_heap(heap_.begin(), heap_.end());
    return std::move(heap_);
  }

 private:
  std::size_t k_;
  std::vector<Neighbor> heap_;
};

}  // namespace wknng
