#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/topk.hpp"

namespace wknng {

/// The product every builder in this repo emits: for each of n points, its
/// (up to) k nearest neighbors sorted ascending by (distance, id). Rows may
/// hold fewer than k valid entries (approximate builders on tiny or
/// degenerate inputs); invalid tail slots have id == kInvalid.
class KnnGraph {
 public:
  static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};

  KnnGraph() = default;

  KnnGraph(std::size_t n, std::size_t k)
      : n_(n), k_(k),
        flat_(n * k, Neighbor{std::numeric_limits<float>::infinity(), kInvalid}) {}

  std::size_t num_points() const { return n_; }
  std::size_t k() const { return k_; }

  std::span<Neighbor> row(std::size_t i) {
    return {flat_.data() + i * k_, k_};
  }
  std::span<const Neighbor> row(std::size_t i) const {
    return {flat_.data() + i * k_, k_};
  }

  /// Number of valid (id != kInvalid) entries in row i. Valid entries are
  /// always a prefix of the row.
  std::size_t row_size(std::size_t i) const {
    auto r = row(i);
    std::size_t c = 0;
    while (c < r.size() && r[c].id != kInvalid) ++c;
    return c;
  }

  /// Checks the container invariants; used by tests and debug assertions.
  ///  - every row sorted ascending by (dist, id)
  ///  - no duplicate ids within a row
  ///  - no self-loops (row i never contains id i)
  ///  - valid entries form a prefix
  bool check_invariants() const {
    for (std::size_t i = 0; i < n_; ++i) {
      auto r = row(i);
      bool seen_invalid = false;
      for (std::size_t j = 0; j < r.size(); ++j) {
        if (r[j].id == kInvalid) {
          seen_invalid = true;
          continue;
        }
        if (seen_invalid) return false;          // hole in the prefix
        if (r[j].id == i) return false;          // self-loop
        if (j > 0 && r[j - 1].id != kInvalid && !(r[j - 1] < r[j])) {
          return false;                          // unsorted or duplicate
        }
        for (std::size_t l = 0; l < j; ++l) {
          if (r[l].id == r[j].id) return false;  // duplicate id
        }
      }
    }
    return true;
  }

 private:
  std::size_t n_ = 0;
  std::size_t k_ = 0;
  std::vector<Neighbor> flat_;
};

}  // namespace wknng
