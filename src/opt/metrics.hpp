#pragma once

#include "opt/budget.hpp"
#include "opt/serving_graph.hpp"

namespace wknng::obs {
class MetricsRegistry;
}  // namespace wknng::obs

namespace wknng::opt {

/// Exports one serving layout's pipeline stats as `wknng_opt_*` gauges
/// (edges before/after pruning, pruned-edge count, row count, pipeline
/// flags). Values are copied at registration — a layout is immutable once
/// built, so there is nothing live to link.
void register_serving_metrics(obs::MetricsRegistry& reg,
                              const ServingGraph& sg);

/// Exports a live budget controller as `wknng_opt_budget_*` scrape-time
/// gauges (observations, relearns, current ladder rungs). `controller` must
/// outlive the registry's exports.
void register_budget_metrics(obs::MetricsRegistry& reg,
                             const BudgetController& controller);

}  // namespace wknng::opt
