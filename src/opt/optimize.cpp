#include "opt/optimize.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/topk.hpp"
#include "kernels/kernels.hpp"
#include "simt/launch.hpp"
#include "simt/warp_distance.hpp"

namespace wknng::opt {

using simt::kWarpSize;
using simt::Warp;

namespace {

/// Phase 1 — occlusion pruning, one warp per row. Candidates are scanned in
/// ascending-distance order (the row invariant); a candidate q is dropped
/// when an already-kept closer neighbor r occludes it: d(p,r) < d(p,q) and
/// d(q,r) < d(p,q) — q is reachable through r in two short hops, so the
/// direct edge buys expansion cost without navigability (the
/// relative-neighborhood rule GRNND's RNN-Descent applies during
/// construction). The keep-floor then re-admits the nearest dropped
/// candidates until `min_degree` edges survive.
///
/// Every row is pruned independently from read-only inputs, so the result is
/// bit-identical across pool sizes and schedules for a given kernel backend.
void prune_rows(ThreadPool& pool, const FloatMatrix& base,
                const KnnGraph& graph, std::size_t min_degree,
                std::vector<std::uint32_t>& kept_flat,
                std::vector<std::uint32_t>& kept_count,
                simt::StatsAccumulator* acc) {
  const std::size_t n = graph.num_points();
  const std::size_t k = graph.k();
  kept_flat.assign(n * k, KnnGraph::kInvalid);
  kept_count.assign(n, 0);

  simt::LaunchConfig cfg;
  cfg.grain = 32;  // rows are cheap; amortize the scheduling step
  cfg.trace_label = "opt_prune";
  simt::launch_warps(pool, n, cfg, acc, [&](Warp& w) {
    const auto p = static_cast<std::uint32_t>(w.id());
    const auto row = graph.row(p);
    std::vector<Neighbor> kept;
    std::vector<Neighbor> dropped;
    kept.reserve(k);
    for (const Neighbor& nb : row) {
      if (nb.id == KnnGraph::kInvalid) break;
      bool occluded = false;
      for (const Neighbor& r : kept) {
        if (!(r.dist < nb.dist)) continue;  // rule needs a strictly closer r
        const float dqr =
            simt::warp_l2_dims(w, base.row(nb.id), base.row(r.id));
        if (dqr < nb.dist) {
          occluded = true;
          break;
        }
      }
      (occluded ? dropped : kept).push_back(nb);
    }
    // Keep-floor: the nearest dropped candidates come back, closest first,
    // until the row has min_degree edges (or none are left to re-admit).
    for (const Neighbor& d : dropped) {
      if (kept.size() >= min_degree) break;
      kept.push_back(d);
    }
    std::sort(kept.begin(), kept.end());  // restore ascending (dist, id)
    for (std::size_t i = 0; i < kept.size(); ++i) {
      kept_flat[p * k + i] = kept[i].id;
    }
    kept_count[p] = static_cast<std::uint32_t>(kept.size());
  });
}

/// Phase 2 — BFS ordering over the pruned adjacency: start from the highest
/// in-degree row (the hub most descents funnel through; ties to the lowest
/// id), walk breadth-first appending neighbors in row order, and restart at
/// the next unvisited hub when a component is exhausted. Rows a descent
/// visits together end up adjacent, so their vectors and CSR rows share
/// cache lines after the gather.
std::vector<std::uint32_t> bfs_order(const std::vector<std::uint32_t>& kept_flat,
                                     const std::vector<std::uint32_t>& kept_count,
                                     std::size_t n, std::size_t k) {
  std::vector<std::uint32_t> in_degree(n, 0);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t i = 0; i < kept_count[p]; ++i) {
      ++in_degree[kept_flat[p * k + i]];
    }
  }
  std::vector<std::uint32_t> seeds(n);
  std::iota(seeds.begin(), seeds.end(), 0);
  std::sort(seeds.begin(), seeds.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (in_degree[a] != in_degree[b]) {
                return in_degree[a] > in_degree[b];
              }
              return a < b;
            });

  std::vector<std::uint32_t> order;
  order.reserve(n);
  std::vector<std::uint8_t> enqueued(n, 0);
  std::size_t head = 0;  // order doubles as the BFS queue
  for (const std::uint32_t seed : seeds) {
    if (enqueued[seed]) continue;
    enqueued[seed] = 1;
    order.push_back(seed);
    while (head < order.size()) {
      const std::uint32_t u = order[head++];
      for (std::size_t i = 0; i < kept_count[u]; ++i) {
        const std::uint32_t v = kept_flat[u * k + i];
        if (enqueued[v]) continue;
        enqueued[v] = 1;
        order.push_back(v);
      }
    }
  }
  return order;  // new id -> old id
}

}  // namespace

ServingGraph optimize_serving(ThreadPool& pool, const FloatMatrix& base,
                              const KnnGraph& graph,
                              const OptimizeOptions& options,
                              std::span<const std::uint8_t> tombstones,
                              std::uint64_t source_version,
                              simt::StatsAccumulator* acc) {
  WKNNG_CHECK_MSG(graph.num_points() == base.rows(),
                  "graph has " << graph.num_points() << " rows, base "
                               << base.rows());
  WKNNG_CHECK_MSG(tombstones.empty() || tombstones.size() == base.rows(),
                  "tombstone mask size " << tombstones.size() << " != base "
                                         << base.rows());
  const std::size_t n = base.rows();
  const std::size_t k = graph.k();

  ServingGraph sg;
  sg.dim = base.cols();
  sg.source_k = k;
  sg.source_version = source_version;
  sg.min_degree = options.min_degree;
  sg.pruned = options.prune;
  sg.reordered = options.reorder;
  if (n == 0) {
    sg.offsets.assign(1, 0);
    sg.base = FloatMatrix(0, base.cols());
    return sg;
  }

  // Phase 1: per-row edge selection (or a straight copy when pruning is
  // off — the relayout below still applies).
  std::vector<std::uint32_t> kept_flat;
  std::vector<std::uint32_t> kept_count;
  if (options.prune) {
    prune_rows(pool, base, graph, options.min_degree, kept_flat, kept_count,
               acc);
  } else {
    kept_flat.assign(n * k, KnnGraph::kInvalid);
    kept_count.assign(n, 0);
    for (std::size_t p = 0; p < n; ++p) {
      const std::size_t width = graph.row_size(p);
      const auto row = graph.row(p);
      for (std::size_t i = 0; i < width; ++i) {
        kept_flat[p * k + i] = row[i].id;
      }
      kept_count[p] = static_cast<std::uint32_t>(width);
    }
  }
  for (std::size_t p = 0; p < n; ++p) {
    sg.edges_before += graph.row_size(p);
    sg.edges_after += kept_count[p];
  }

  // Phase 2: the row permutation.
  if (options.reorder) {
    sg.new_to_old = bfs_order(kept_flat, kept_count, n, k);
  } else {
    sg.new_to_old.resize(n);
    std::iota(sg.new_to_old.begin(), sg.new_to_old.end(), 0);
  }
  sg.old_to_new.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sg.old_to_new[sg.new_to_old[i]] = i;
  }

  // Phase 3: CSR packing in the new id space (edge order inside a row is
  // preserved — ascending source-graph distance) and the gathers.
  sg.offsets.resize(n + 1);
  sg.offsets[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sg.offsets[i + 1] = sg.offsets[i] + kept_count[sg.new_to_old[i]];
  }
  sg.neighbors.resize(sg.offsets[n]);
  sg.base = FloatMatrix(n, base.cols());
  if (!tombstones.empty()) sg.exclude.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t old_id = sg.new_to_old[i];
    std::uint32_t* dst = sg.neighbors.data() + sg.offsets[i];
    for (std::size_t e = 0; e < kept_count[old_id]; ++e) {
      dst[e] = sg.old_to_new[kept_flat[old_id * k + e]];
    }
    const auto src = base.row(old_id);
    std::copy(src.begin(), src.end(), sg.base.row(i).begin());
    if (!tombstones.empty()) sg.exclude[i] = tombstones[old_id];
  }
  if (!kernels::strict_mode()) sg.norms = kernels::row_norms(sg.base);
  return sg;
}

}  // namespace wknng::opt
