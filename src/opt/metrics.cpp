#include "opt/metrics.hpp"

#include "obs/registry.hpp"

namespace wknng::opt {

void register_serving_metrics(obs::MetricsRegistry& reg,
                              const ServingGraph& sg) {
  reg.gauge("wknng_opt_rows", "rows in the optimized serving layout")
      .set(static_cast<double>(sg.n()));
  reg.gauge("wknng_opt_edges_before", "source-graph edges before pruning")
      .set(static_cast<double>(sg.edges_before));
  reg.gauge("wknng_opt_edges_after", "edges surviving occlusion pruning")
      .set(static_cast<double>(sg.edges_after));
  reg.gauge("wknng_opt_edges_pruned", "edges dropped by occlusion pruning")
      .set(static_cast<double>(sg.edges_before - sg.edges_after));
  reg.gauge("wknng_opt_min_degree", "keep-floor applied during pruning")
      .set(static_cast<double>(sg.min_degree));
  reg.gauge("wknng_opt_reordered", "1 when rows are BFS-reordered")
      .set(sg.reordered ? 1.0 : 0.0);
}

void register_budget_metrics(obs::MetricsRegistry& reg,
                             const BudgetController& controller) {
  reg.gauge_fn(
      "wknng_opt_budget_observations",
      [&controller] {
        return static_cast<double>(controller.observations());
      },
      "completed queries the budget learner has observed");
  reg.gauge_fn(
      "wknng_opt_budget_relearns",
      [&controller] { return static_cast<double>(controller.relearns()); },
      "times the budget ladder was re-derived");
  reg.gauge_fn(
      "wknng_opt_budget_predict",
      [&controller] { return static_cast<double>(controller.predict()); },
      "visit budget currently allocated to a fresh query (0 = unlimited)");
}

}  // namespace wknng::opt
