#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/matrix.hpp"

namespace wknng::opt {

/// Knobs of the serve-graph optimization pipeline (opt::optimize_serving).
struct OptimizeOptions {
  /// Relative-neighborhood occlusion pruning (the RNN-Descent rule from
  /// GRNND): drop edge (p,q) when some closer kept neighbor r occludes it —
  /// d(p,r) < d(p,q) and d(q,r) < d(p,q). Occluded edges add expansion work
  /// without adding navigability, so dropping them trades nothing for degree.
  bool prune = true;

  /// Keep-floor: a pruned row never drops below this many edges (the nearest
  /// dropped candidates are re-admitted, closest first), so sparse regions
  /// keep enough fan-out to stay navigable. Rows shorter than this in the
  /// source graph are kept whole.
  std::size_t min_degree = 4;

  /// BFS relayout: renumber rows in breadth-first order from the highest
  /// in-degree hub (ties to the lowest id; each exhausted component restarts
  /// at the next unvisited hub), so the neighborhoods a descent walks are
  /// adjacent in memory. Off = identity permutation (CSR packing and
  /// pruning still apply).
  bool reorder = true;
};

/// A finished K-NNG post-processed for serving: occlusion-pruned, packed
/// into CSR, rows renumbered into BFS order with the base vectors gathered
/// to match, plus the old<->new permutation that keeps externally visible
/// ids stable. Built once per published graph by opt::optimize_serving;
/// consumed by core::serving_search_batch.
///
/// Id spaces: `neighbors`, `exclude`, `norms` and `base` rows live in the
/// *new* (permuted) space; `new_to_old[i]` maps a new id back to the source
/// graph's row (what callers see), `old_to_new` is its inverse. A layout is
/// only valid against the exact graph/base/tombstones it was built from —
/// `source_version` records which published snapshot that was, and the
/// serving engine refuses to pair a layout with any other version.
struct ServingGraph {
  std::size_t dim = 0;
  std::size_t source_k = 0;          ///< row width of the source graph
  std::uint64_t source_version = 0;  ///< snapshot version built from

  std::vector<std::uint32_t> offsets;    ///< n+1 CSR row starts
  std::vector<std::uint32_t> neighbors;  ///< edge targets, new-id space
  FloatMatrix base;                      ///< base rows gathered into new order
  std::vector<float> norms;         ///< ||row||^2 per new id (empty in strict)
  std::vector<std::uint32_t> new_to_old;
  std::vector<std::uint32_t> old_to_new;
  std::vector<std::uint8_t> exclude;  ///< permuted tombstones (may be empty)

  // Pipeline stats (exported as obs gauges by opt::register_serving_metrics).
  std::uint64_t edges_before = 0;
  std::uint64_t edges_after = 0;
  std::size_t min_degree = 0;
  bool pruned = false;
  bool reordered = false;

  std::size_t n() const { return new_to_old.size(); }

  /// CSR row of new-id `id`: edge targets in ascending-distance order.
  std::span<const std::uint32_t> row(std::uint32_t id) const {
    return {neighbors.data() + offsets[id], offsets[id + 1] - offsets[id]};
  }

  /// Structural self-check (permutation bijective, CSR well-formed, shapes
  /// consistent). Throws wknng::Error; used by the persistence reader and
  /// the dynamic republish path before a layout is allowed to serve.
  void check_valid() const {
    const std::size_t count = n();
    WKNNG_CHECK_MSG(old_to_new.size() == count, "permutation shape mismatch");
    WKNNG_CHECK_MSG(base.rows() == count && base.cols() == dim,
                    "gathered base is " << base.rows() << "x" << base.cols()
                                        << ", expected " << count << "x"
                                        << dim);
    WKNNG_CHECK_MSG(offsets.size() == count + 1 && offsets.front() == 0 &&
                        offsets.back() == neighbors.size(),
                    "CSR offsets malformed");
    WKNNG_CHECK_MSG(norms.empty() || norms.size() == count,
                    "norm cache shape mismatch");
    WKNNG_CHECK_MSG(exclude.empty() || exclude.size() == count,
                    "exclusion mask shape mismatch");
    std::vector<std::uint8_t> seen(count, 0);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t old_id = new_to_old[i];
      WKNNG_CHECK_MSG(old_id < count && !seen[old_id] &&
                          old_to_new[old_id] == i,
                      "permutation is not a bijection at new id " << i);
      seen[old_id] = 1;
      WKNNG_CHECK_MSG(offsets[i] <= offsets[i + 1], "CSR offsets not sorted");
    }
    for (const std::uint32_t nb : neighbors) {
      WKNNG_CHECK_MSG(nb < count, "edge target " << nb << " out of range");
    }
  }
};

}  // namespace wknng::opt
