#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

namespace wknng::opt {

/// Knobs of the visit-budget bucket learner.
struct BudgetOptions {
  std::size_t sample_size = 64;   ///< completions observed before any ladder
  std::size_t num_buckets = 4;    ///< rungs in the learned ladder
  std::size_t update_epoch = 256; ///< re-learn every this many observations
  double headroom = 1.5;          ///< multiplier on the top (max-cost) rung
};

/// Learns a small set of per-query visit budgets from completed queries —
/// the cctools `bucketing` idea applied to search cost: most queries
/// converge cheaply, a few need the full walk, and a fixed budget sized for
/// the hardest query makes everyone pay the tail. The controller watches
/// completed (un-capped) queries' visit counts, learns a short ladder of
/// budget "buckets" at fixed quantiles of the observed cost distribution,
/// allocates new queries the smallest rung, and escalates a query that hits
/// its rung while still improving to the next one (the final escape rung is
/// unlimited, so results are never silently truncated — a miss costs a
/// re-run, exactly like a bucketing task retried with a bigger allocation).
///
/// Determinism: observations land in a log-scale histogram (commutative, so
/// the learned ladder depends only on the *multiset* of completions seen at
/// each epoch boundary, not their arrival order), the ladder is re-derived
/// every `update_epoch` observations from counters alone, and nothing reads
/// a clock. A serving run replayed with the same completion multiset per
/// epoch yields the same ladder; per-query *results* stay exact regardless,
/// since escalation ends at the unlimited rung.
///
/// Thread-safe; `observe` is one mutex-guarded histogram bump (the serving
/// engine calls it per completed query).
class BudgetController {
 public:
  explicit BudgetController(BudgetOptions options = {});

  /// Records a completed query's distance-evaluation count.
  void observe(std::uint64_t visits);

  /// The budget to allocate a fresh query: the smallest learned rung, or 0
  /// (unlimited) while still in the sampling phase.
  std::uint64_t predict() const;

  /// The next rung after `current` missed; 0 (unlimited) past the top rung.
  std::uint64_t escalate(std::uint64_t current) const;

  /// The 1-based position of `budget` in the current ladder; 0 for an
  /// unlimited (or not-in-ladder) budget. Flight records carry this so a
  /// slow query's log line names the rung that answered it.
  std::uint64_t rung_of(std::uint64_t budget) const;

  /// The current ladder, ascending (empty while sampling).
  std::vector<std::uint64_t> ladder() const;

  std::uint64_t observations() const;
  std::uint64_t relearns() const;

 private:
  void relearn_locked();

  static constexpr std::size_t kBins = 64;
  /// Upper bound of histogram bin b (half-octave spacing: ~2^(b/2)).
  static std::uint64_t bin_bound(std::size_t b);
  static std::size_t bin_of(std::uint64_t visits);

  BudgetOptions options_;
  mutable std::mutex mu_;
  std::array<std::uint64_t, kBins> hist_{};
  std::uint64_t count_ = 0;
  std::uint64_t relearns_ = 0;
  std::vector<std::uint64_t> ladder_;
};

}  // namespace wknng::opt
