#pragma once

#include <cstdint>
#include <span>

#include "common/knn_graph.hpp"
#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "opt/serving_graph.hpp"
#include "simt/stats.hpp"

namespace wknng::opt {

/// Turns a finished K-NNG into a ServingGraph: occlusion-prunes every row
/// (warp-parallel on the SIMT substrate, one warp per row — rows are
/// independent, so the result is bit-identical for any pool size or
/// schedule), renumbers rows into BFS order from the highest in-degree hub,
/// packs the surviving edges into CSR, and gathers `base` rows (plus their
/// squared-norm cache, skipped in strict mode) and `tombstones` into the new
/// order.
///
/// `tombstones`, when non-empty, must be one byte per base row (the dynamic
/// index's deletion mask frozen at publish time); it is permuted into
/// ServingGraph::exclude so the optimized search path excludes exactly the
/// rows the raw path would. `source_version` labels the snapshot the layout
/// was built from — the serving side's staleness guard.
///
/// Distance arithmetic routes through the dispatched kernels, so the pruning
/// decisions (float comparisons) are bit-stable per backend; scalar and AVX2
/// may legitimately prune differently, exactly as they build differently.
ServingGraph optimize_serving(ThreadPool& pool, const FloatMatrix& base,
                              const KnnGraph& graph,
                              const OptimizeOptions& options = {},
                              std::span<const std::uint8_t> tombstones = {},
                              std::uint64_t source_version = 0,
                              simt::StatsAccumulator* acc = nullptr);

}  // namespace wknng::opt
