#include "opt/budget.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace wknng::opt {

BudgetController::BudgetController(BudgetOptions options)
    : options_(options) {
  WKNNG_CHECK_MSG(options_.num_buckets >= 1, "budget ladder needs >= 1 rung");
  WKNNG_CHECK_MSG(options_.update_epoch >= 1, "update_epoch must be positive");
  WKNNG_CHECK_MSG(options_.headroom >= 1.0, "headroom must be >= 1");
}

std::uint64_t BudgetController::bin_bound(std::size_t b) {
  // Half-octave boundaries: 1, 2, 3, 4, 6, 8, 11, 16, ... — bin b covers
  // (bound(b-1), bound(b)]. Exact integers, no floating point.
  const std::uint64_t octave = 1ULL << (b / 2);
  return (b % 2 == 0) ? octave : octave + (octave >> 1);
}

std::size_t BudgetController::bin_of(std::uint64_t visits) {
  for (std::size_t b = 0; b < kBins - 1; ++b) {
    if (visits <= bin_bound(b)) return b;
  }
  return kBins - 1;
}

void BudgetController::observe(std::uint64_t visits) {
  std::lock_guard<std::mutex> lock(mu_);
  ++hist_[bin_of(visits)];
  ++count_;
  // First ladder after the sampling phase, then once per epoch. The trigger
  // is the observation counter alone — no clocks.
  const bool sampled = count_ >= options_.sample_size;
  if (sampled && (ladder_.empty() || count_ % options_.update_epoch == 0)) {
    relearn_locked();
  }
}

void BudgetController::relearn_locked() {
  // Rung j sits at the cost quantile covering 1 - 2^-(j+1) of observed
  // completions (1/2, 3/4, 7/8, ...); the top rung is the max observed cost
  // with headroom. A query's expected rungs-tried is therefore < 2 while
  // most of the fleet runs at the cheap rung — the bucketing trade.
  std::array<std::uint64_t, kBins> cum{};
  std::uint64_t running = 0;
  std::size_t max_bin = 0;
  for (std::size_t b = 0; b < kBins; ++b) {
    running += hist_[b];
    cum[b] = running;
    if (hist_[b] != 0) max_bin = b;
  }
  std::vector<std::uint64_t> ladder;
  ladder.reserve(options_.num_buckets);
  for (std::size_t j = 0; j + 1 < options_.num_buckets; ++j) {
    // Quantile 1 - 2^-(j+1), in integers: at least count - count/2^(j+1)
    // observations at or below the rung.
    const std::uint64_t target = count_ - (count_ >> (j + 1));
    for (std::size_t b = 0; b <= max_bin; ++b) {
      if (cum[b] >= target) {
        ladder.push_back(bin_bound(b));
        break;
      }
    }
  }
  const auto top = static_cast<std::uint64_t>(
      static_cast<double>(bin_bound(max_bin)) * options_.headroom);
  ladder.push_back(std::max<std::uint64_t>(top, 1));
  // Strictly ascending: collapse duplicate quantiles landing in one bin.
  std::sort(ladder.begin(), ladder.end());
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  ladder_ = std::move(ladder);
  ++relearns_;
}

std::uint64_t BudgetController::predict() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ladder_.empty() ? 0 : ladder_.front();
}

std::uint64_t BudgetController::escalate(std::uint64_t current) const {
  if (current == 0) return 0;  // already unlimited
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::uint64_t rung : ladder_) {
    if (rung > current) return rung;
  }
  return 0;  // past the top rung: the unlimited escape hatch
}

std::uint64_t BudgetController::rung_of(std::uint64_t budget) const {
  if (budget == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < ladder_.size(); ++i) {
    if (ladder_[i] == budget) return i + 1;
  }
  return 0;
}

std::vector<std::uint64_t> BudgetController::ladder() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ladder_;
}

std::uint64_t BudgetController::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::uint64_t BudgetController::relearns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return relearns_;
}

}  // namespace wknng::opt
