#include "tuner/tuner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "exact/brute_force.hpp"
#include "exact/recall.hpp"

namespace wknng::tuner {

double estimate_recall(ThreadPool& pool, const FloatMatrix& points,
                       const KnnGraph& graph, std::size_t k,
                       std::size_t sample, std::uint64_t seed) {
  const exact::SampledTruth truth =
      exact::sampled_ground_truth(pool, points, k, sample, seed);
  return exact::recall(graph, truth);
}

TuneResult tune_wknng(ThreadPool& pool, const FloatMatrix& points,
                      core::BuildParams base, const TuneOptions& options) {
  WKNNG_CHECK_MSG(!options.tree_ladder.empty() && !options.refine_ladder.empty(),
                  "empty tuning ladder");

  // Ground truth once; every candidate configuration is scored against it.
  const exact::SampledTruth truth = exact::sampled_ground_truth(
      pool, points, base.k, options.sample, options.sample_seed);

  TuneResult result;
  result.params = base;

  // Cost-ordered walk: configurations sorted by a work proxy
  // (trees * (1 + refine)), so the first hit is near-cheapest.
  struct Config {
    std::size_t trees;
    std::size_t refine;
    std::size_t cost;
  };
  std::vector<Config> ladder;
  for (std::size_t trees : options.tree_ladder) {
    for (std::size_t refine : options.refine_ladder) {
      ladder.push_back({trees, refine, trees * (1 + refine)});
    }
  }
  std::stable_sort(ladder.begin(), ladder.end(),
                   [](const Config& a, const Config& b) { return a.cost < b.cost; });

  double best_recall = -1.0;
  for (const Config& config : ladder) {
    core::BuildParams params = base;
    params.num_trees = config.trees;
    params.refine_iters = config.refine;

    const core::BuildResult built = core::build_knng(pool, points, params);
    ++result.configs_tried;
    result.tuning_distance_evals += built.stats.distance_evals;
    const double recall = exact::recall(built.graph, truth);

    if (recall > best_recall) {
      best_recall = recall;
      result.params = params;
      result.achieved_recall = recall;
    }
    if (recall >= options.target_recall) {
      result.params = params;
      result.achieved_recall = recall;
      result.reached_target = true;
      break;
    }
  }
  return result;
}

}  // namespace wknng::tuner
