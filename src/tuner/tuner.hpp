#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "core/builder.hpp"
#include "core/params.hpp"

namespace wknng::tuner {

/// The paper's "equivalent accuracy" protocol as a library facility: tune a
/// system's knobs until a sampled-recall target is met, so different systems
/// can be compared at matched quality. Recall is estimated against exact
/// ground truth on a deterministic sample of points (O(sample * n * d), not
/// O(n^2 d)).

struct TuneOptions {
  double target_recall = 0.9;
  std::size_t sample = 200;        ///< ground-truth sample size
  std::uint64_t sample_seed = 777;
  /// Forest sizes tried, in order (each with every refine count below).
  std::vector<std::size_t> tree_ladder = {2, 4, 8, 16};
  std::vector<std::size_t> refine_ladder = {0, 1, 2};
};

struct TuneResult {
  core::BuildParams params;      ///< cheapest configuration that hit target
  double achieved_recall = 0.0;  ///< sampled recall of that configuration
  bool reached_target = false;   ///< false => params is the best attempt
  std::size_t configs_tried = 0;
  std::uint64_t tuning_distance_evals = 0;  ///< work spent tuning (builds)
};

/// Estimates recall@k of `graph` on a deterministic point sample (the same
/// estimator the tuner uses).
double estimate_recall(ThreadPool& pool, const FloatMatrix& points,
                       const KnnGraph& graph, std::size_t k,
                       std::size_t sample = 200, std::uint64_t seed = 777);

/// Walks the (trees x refine) ladder from cheapest to most expensive and
/// returns the first configuration whose sampled recall reaches the target.
/// `base` supplies every non-laddered knob (k, strategy, leaf size, ...).
TuneResult tune_wknng(ThreadPool& pool, const FloatMatrix& points,
                      core::BuildParams base, const TuneOptions& options = {});

}  // namespace wknng::tuner
