// Portable scalar backend — the strict mode. Every function here replicates
// the accumulation order the repo used before runtime dispatch existed, so a
// build pinned to this backend (WKNNG_KERNEL=scalar) reproduces pre-dispatch
// graphs bit-for-bit. Norm caches are deliberately ignored: the norm trick
// reassociates the arithmetic, and strictness means "the original bits".

#include <cmath>

#include "kernels/backend_detail.hpp"

namespace wknng::kernels {
namespace {

/// Number of virtual lanes in the lane-strided accumulation — must stay in
/// lockstep with simt::kWarpSize (static_asserted at the warp_distance call
/// site).
constexpr std::size_t kLanes = 32;

/// Lane-strided order: dimension d accumulates into partial[d % 32], and the
/// partials are combined lane 0 -> 31 — exactly the SIMT warp_l2_dims
/// kernel's dimension-parallel reduction.
float scalar_l2_one(const float* x, const float* y, std::size_t dim) {
  float partial[kLanes] = {};
  for (std::size_t d = 0; d < dim; ++d) {
    const float diff = x[d] - y[d];
    partial[d & (kLanes - 1)] += diff * diff;
  }
  float acc = partial[0];
  for (std::size_t l = 1; l < kLanes; ++l) acc = acc + partial[l];
  return acc;
}

/// Serial order: one accumulator, dimensions in order — the host baseline
/// (exact::l2_sq) and the candidate-parallel lane body of warp_l2_batch.
float scalar_l2_serial(const float* x, const float* y, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t d = 0; d < dim; ++d) {
    const float diff = x[d] - y[d];
    acc += diff * diff;
  }
  return acc;
}

void scalar_l2_batch(const float* q, const float* const* rows,
                     const float* /*row_norms*/, std::size_t count,
                     std::size_t dim, float* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = scalar_l2_serial(q, rows[i], dim);
  }
}

void scalar_l2_tile(const float* const* a_rows, const float* /*a_norms*/,
                    std::size_t na, const float* const* b_rows,
                    const float* /*b_norms*/, std::size_t nb, std::size_t dim,
                    float* out, std::size_t ld) {
  for (std::size_t i = 0; i < na; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      out[i * ld + j] = scalar_l2_serial(a_rows[i], b_rows[j], dim);
    }
  }
}

float scalar_norm_sq(const float* x, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t d = 0; d < dim; ++d) acc += x[d] * x[d];
  return acc;
}

bool scalar_has_nonfinite(const float* x, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::isfinite(x[i])) return true;
  }
  return false;
}

constexpr KernelOps kScalarOps = {
    Backend::kScalar,     "scalar",        scalar_l2_one,
    scalar_l2_serial,     scalar_l2_batch, scalar_l2_tile,
    scalar_norm_sq,       scalar_has_nonfinite,
    detail::sq8_scalar_one, detail::sq8_scalar_batch,
    detail::sq8_scalar_tile, detail::sq8_scalar_term,
};

}  // namespace

namespace detail {
const KernelOps* scalar_ops() { return &kScalarOps; }
}  // namespace detail

}  // namespace wknng::kernels
