#pragma once

// Internal glue between the dispatch unit and the per-ISA translation units.
// Each backend TU defines one `make_*_ops()` factory returning its dispatch
// table, or nullptr when the ISA cannot be compiled/run. Not installed API.

#include "kernels/kernels.hpp"

namespace wknng::kernels::detail {

const KernelOps* scalar_ops();

/// nullptr when the build has no SSE2 support (non-x86 targets).
const KernelOps* sse2_ops();

/// nullptr when the compiler cannot target AVX2+FMA. Runtime cpuid gating
/// happens in dispatch.cpp — this only reports compile-time availability.
const KernelOps* avx2_ops();

/// True iff the running CPU supports the ISA (compile-time availability is
/// separate — see ops_for()).
bool cpu_supports(Backend b);

// --- SQ8 rows --------------------------------------------------------------
// Each backend's sq8_* entries live in a sibling TU (sq8_<isa>.cpp) so the
// ISA-specific flags stay per-file; the fp32 TU of the same backend places
// them in its KernelOps table. The SSE2/AVX2 declarations are only
// referenced from tables compiled under the matching ISA guard, and the sq8
// TUs use the identical guard, so a compiled-out backend leaves no dangling
// references.

float sq8_scalar_one(const Sq8Query& q, const std::uint8_t* code);
void sq8_scalar_batch(const Sq8Query& q, const std::uint8_t* const* rows,
                      const float* code_terms, std::size_t count, float* out);
void sq8_scalar_tile(const Sq8Query* a, std::size_t na,
                     const std::uint8_t* const* b_rows, const float* b_terms,
                     std::size_t nb, float* out, std::size_t ld);
float sq8_scalar_term(const float* scale, const std::uint8_t* code,
                      std::size_t dim);

float sq8_sse2_one(const Sq8Query& q, const std::uint8_t* code);
void sq8_sse2_batch(const Sq8Query& q, const std::uint8_t* const* rows,
                    const float* code_terms, std::size_t count, float* out);
void sq8_sse2_tile(const Sq8Query* a, std::size_t na,
                   const std::uint8_t* const* b_rows, const float* b_terms,
                   std::size_t nb, float* out, std::size_t ld);
float sq8_sse2_term(const float* scale, const std::uint8_t* code,
                    std::size_t dim);

float sq8_avx2_one(const Sq8Query& q, const std::uint8_t* code);
void sq8_avx2_batch(const Sq8Query& q, const std::uint8_t* const* rows,
                    const float* code_terms, std::size_t count, float* out);
void sq8_avx2_tile(const Sq8Query* a, std::size_t na,
                   const std::uint8_t* const* b_rows, const float* b_terms,
                   std::size_t nb, float* out, std::size_t ld);
float sq8_avx2_term(const float* scale, const std::uint8_t* code,
                    std::size_t dim);

}  // namespace wknng::kernels::detail
