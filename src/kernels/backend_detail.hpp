#pragma once

// Internal glue between the dispatch unit and the per-ISA translation units.
// Each backend TU defines one `make_*_ops()` factory returning its dispatch
// table, or nullptr when the ISA cannot be compiled/run. Not installed API.

#include "kernels/kernels.hpp"

namespace wknng::kernels::detail {

const KernelOps* scalar_ops();

/// nullptr when the build has no SSE2 support (non-x86 targets).
const KernelOps* sse2_ops();

/// nullptr when the compiler cannot target AVX2+FMA. Runtime cpuid gating
/// happens in dispatch.cpp — this only reports compile-time availability.
const KernelOps* avx2_ops();

/// True iff the running CPU supports the ISA (compile-time availability is
/// separate — see ops_for()).
bool cpu_supports(Backend b);

}  // namespace wknng::kernels::detail
