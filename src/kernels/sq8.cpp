#include "kernels/sq8.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "kernels/kernels.hpp"

namespace wknng::kernels {

Sq8Matrix sq8_encode(const FloatMatrix& points) {
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  if (n == 0 || dim == 0) {
    throw Sq8TrainError("cannot train SQ8 on an empty set");
  }

  Sq8Matrix out;
  out.codebook.bias.assign(dim, 0.0f);
  out.codebook.scale.assign(dim, 0.0f);

  // Per-dimension range. Non-finite values would poison the range (and the
  // codes of every point sharing the dimension), so they are a training
  // error — the builder quarantines such rows before encoding.
  std::vector<float> lo(dim, std::numeric_limits<float>::max());
  std::vector<float> hi(dim, std::numeric_limits<float>::lowest());
  for (std::size_t i = 0; i < n; ++i) {
    auto row = points.row(i);
    for (std::size_t d = 0; d < dim; ++d) {
      if (!std::isfinite(row[d])) {
        throw Sq8TrainError("SQ8 training set contains NaN/Inf (row " +
                            std::to_string(i) +
                            "): quarantine non-finite rows before encoding");
      }
      lo[d] = std::min(lo[d], row[d]);
      hi[d] = std::max(hi[d], row[d]);
    }
  }
  std::size_t degenerate = 0;
  for (std::size_t d = 0; d < dim; ++d) {
    out.codebook.bias[d] = lo[d];
    if (hi[d] > lo[d]) {
      out.codebook.scale[d] = (hi[d] - lo[d]) / 255.0f;
    } else {
      // Constant dimension: scale stays exactly 0, every code is 0, and
      // decode reproduces the constant (bias) bit-exactly.
      ++degenerate;
    }
  }
  if (degenerate == dim) {
    throw Sq8TrainError(
        "SQ8 training set has zero variance in every dimension "
        "(all points identical): no quantization range exists");
  }

  out.codes.resize(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    auto src = points.row(i);
    auto dst = out.codes.row(i);
    for (std::size_t d = 0; d < dim; ++d) {
      const float scale = out.codebook.scale[d];
      if (scale == 0.0f) {
        dst[d] = 0;
        continue;
      }
      const float normalized = (src[d] - out.codebook.bias[d]) / scale;
      dst[d] = static_cast<std::uint8_t>(
          std::clamp(std::lround(normalized), 0L, 255L));
    }
  }
  return out;
}

FloatMatrix sq8_decode(const Sq8Matrix& m) {
  FloatMatrix out(m.rows(), m.dim());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    auto src = m.row(i);
    auto dst = out.row(i);
    for (std::size_t d = 0; d < m.dim(); ++d) {
      dst[d] = m.codebook.bias[d] +
               m.codebook.scale[d] * static_cast<float>(src[d]);
    }
  }
  return out;
}

float sq8_l2_sq_ref(std::span<const float> query,
                    std::span<const std::uint8_t> code,
                    const Sq8Codebook& codebook) {
  float acc = 0.0f;
  for (std::size_t d = 0; d < query.size(); ++d) {
    const float decoded =
        codebook.bias[d] + codebook.scale[d] * static_cast<float>(code[d]);
    const float diff = query[d] - decoded;
    acc += diff * diff;
  }
  return acc;
}

Sq8Query sq8_prepare_into(std::span<const float> query,
                          const Sq8Codebook& codebook, float* w_out) {
  const std::size_t dim = query.size();
  float self = 0.0f;
  for (std::size_t d = 0; d < dim; ++d) {
    const float centered = query[d] - codebook.bias[d];
    w_out[d] = centered * codebook.scale[d];
    self += centered * centered;
  }
  Sq8Query q;
  q.q = query.data();
  q.w = w_out;
  q.bias = codebook.bias.data();
  q.scale = codebook.scale.data();
  q.self = self;
  q.dim = dim;
  return q;
}

Sq8Query sq8_prepare(std::span<const float> query, const Sq8Codebook& codebook,
                     std::vector<float>& w_buf) {
  w_buf.resize(query.size());
  return sq8_prepare_into(query, codebook, w_buf.data());
}

std::vector<float> sq8_code_terms(const Sq8Matrix& m) {
  std::vector<float> terms(m.rows());
  const KernelOps& k = ops();
  const float* scale = m.codebook.scale.data();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    terms[r] = k.sq8_term(scale, m.row(r).data(), m.dim());
  }
  return terms;
}

}  // namespace wknng::kernels
