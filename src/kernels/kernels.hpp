#pragma once

// Runtime-dispatched SIMD distance kernels — the CPU analogue of the paper's
// warp-wide distance math. Every hot distance loop in the repo routes through
// one of three primitives, bound once at startup to the widest ISA the CPU
// supports (AVX2+FMA > SSE2 > portable scalar):
//
//   l2_one    one pair        (the warp-per-pair shape of warp_l2_dims)
//   l2_batch  1 query x L     (the candidate-parallel shape of warp_l2_batch)
//   l2_tile   Q x L tile      (the GEMM-style shape of the tiled strategy),
//             using the ||x||^2 + ||y||^2 - 2 x.y decomposition with cached
//             squared norms on the SIMD backends
//
// The table also carries the same three shapes for the SQ8 compressed tier
// (sq8_l2_one / sq8_l2_batch / sq8_l2_tile, plus the sq8_term cache
// accumulation) — asymmetric fp32-query x u8-code distances that cut the
// candidate-row traffic 4x. See kernels/sq8.hpp for the codec and the
// expanded-form decomposition the SIMD backends use.
//
// Determinism contract (see DESIGN.md, "CPU vectorization layer"):
//  * Every backend uses a fixed accumulation order, so results are
//    bit-reproducible across runs, thread counts and schedules for a given
//    backend.
//  * The scalar backend is the strict mode: it replicates the pre-dispatch
//    accumulation orders exactly (lane-strided for l2_one, serial for
//    everything else), so WKNNG_KERNEL=scalar reproduces seed-identical
//    graphs and ignores all norm caches.
//  * The SIMD backends compute all three primitives from one shared
//    dot/norm core, so within a backend the same point pair yields the same
//    bits regardless of which primitive scored it (the packed-candidate
//    dedup in the k-NN sets relies on this).
//
// Selection: WKNNG_KERNEL=scalar|strict|sse2|avx2|auto overrides the cpuid
// pick; requesting an ISA the CPU (or the build) cannot run throws Error.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace wknng::kernels {

struct Sq8Query;  // kernels/sq8.hpp — prepared query for the sq8_* rows

enum class Backend : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

inline constexpr std::size_t kNumBackends = 3;

const char* backend_name(Backend b);

/// Parses "scalar" / "strict" (alias for scalar) / "sse2" / "avx2" / "auto".
/// "auto" (and "") return the cpuid pick. Throws wknng::Error on anything
/// else, listing the valid names.
Backend backend_from_string(const std::string& name);

/// The widest backend this CPU supports (of those compiled in).
Backend detect_backend();

/// The dispatch table of one backend. All row pointers must point at
/// `dim`-float rows; `out`/`ld` address a row-major tile. Norm pointers may
/// be null, in which case the SIMD backends compute the squared norms on the
/// fly (with the exact same accumulation as `norm_sq`, so the bits do not
/// depend on whether a cache was supplied). The scalar backend ignores norm
/// caches entirely — see the strict-mode contract above.
struct KernelOps {
  Backend backend;
  const char* name;

  /// One pair, warp-lane contract: the scalar implementation replicates the
  /// lane-strided accumulation of the SIMT warp_l2_dims kernel bit-exactly.
  float (*l2_one)(const float* x, const float* y, std::size_t dim);

  /// One pair, host contract: the scalar implementation is the plain serial
  /// accumulation every pre-dispatch baseline used (exact::l2_sq).
  float (*l2_serial)(const float* x, const float* y, std::size_t dim);

  /// One query against `count` candidate rows; out[i] = ||q - rows[i]||^2.
  void (*l2_batch)(const float* q, const float* const* rows,
                   const float* row_norms, std::size_t count, std::size_t dim,
                   float* out);

  /// Q x L tile: out[i * ld + j] = ||a_i - b_j||^2. SIMD backends use the
  /// norm trick with a register-blocked dot micro-kernel; scalar is the
  /// serial direct-subtraction reference.
  void (*l2_tile)(const float* const* a_rows, const float* a_norms,
                  std::size_t na, const float* const* b_rows,
                  const float* b_norms, std::size_t nb, std::size_t dim,
                  float* out, std::size_t ld);

  /// Squared Euclidean norm; the accumulation every norm cache is built with.
  float (*norm_sq)(const float* x, std::size_t dim);

  /// True iff any of the `count` floats is NaN or +-inf (vectorized scan
  /// used by the builder's input quarantine).
  bool (*has_nonfinite)(const float* x, std::size_t count);

  // --- SQ8 asymmetric rows (kernels/sq8.hpp) -------------------------------
  // fp32 query (prepared once with sq8_prepare) against u8 code rows. The
  // scalar backend evaluates the direct dequantize-subtract form serially
  // (bit-identical to the pre-dispatch ivf::sq8_l2_sq) and ignores term
  // caches; the SIMD backends use the expanded self - 2*dot(w,c) + term(c)
  // decomposition from one shared u8-widening dot core, so — exactly like
  // the fp32 rows — the same (query, code row) pair yields the same bits
  // under every shape and whether or not a term cache was supplied.

  /// One prepared query against one code row.
  float (*sq8_l2_one)(const Sq8Query& q, const std::uint8_t* code);

  /// One prepared query against `count` code rows; out[i] = d(q, rows[i]).
  /// `code_terms` may be null (terms recomputed with sq8_term's order).
  void (*sq8_l2_batch)(const Sq8Query& q, const std::uint8_t* const* rows,
                       const float* code_terms, std::size_t count, float* out);

  /// Q x L tile of prepared queries against code rows:
  /// out[i * ld + j] = d(a[i], b_rows[j]). `b_terms` may be null.
  void (*sq8_l2_tile)(const Sq8Query* a, std::size_t na,
                      const std::uint8_t* const* b_rows, const float* b_terms,
                      std::size_t nb, float* out, std::size_t ld);

  /// sum_d (scale[d] * code[d])^2 — the accumulation every code-term cache
  /// is built with (the sq8 analogue of norm_sq).
  float (*sq8_term)(const float* scale, const std::uint8_t* code,
                    std::size_t dim);
};

/// Dispatch table for `b`, or nullptr when the backend is compiled out or
/// the CPU cannot run it. ops_for(kScalar) never returns nullptr.
const KernelOps* ops_for(Backend b);

/// The process-wide active table. Resolved once on first use: WKNNG_KERNEL
/// if set (throwing on an unknown or unsupported value), else the cpuid
/// pick. Subsequent calls are one relaxed atomic load.
const KernelOps& ops();

inline Backend active_backend() { return ops().backend; }

/// True iff the active backend is the scalar/strict one.
inline bool strict_mode() { return active_backend() == Backend::kScalar; }

/// Forces the active table (tests and benches only; not thread-safe against
/// concurrent first-use resolution). Restores the previous table on
/// destruction. Throws when the backend is unsupported on this CPU.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b);
  ~ScopedBackend();

  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  const KernelOps* prev_;
};

// --- Convenience wrappers over the active table ----------------------------

inline float l2_one(std::span<const float> x, std::span<const float> y) {
  return ops().l2_one(x.data(), y.data(), x.size());
}

inline float l2_serial(std::span<const float> x, std::span<const float> y) {
  return ops().l2_serial(x.data(), y.data(), x.size());
}

inline float norm_sq(std::span<const float> x) {
  return ops().norm_sq(x.data(), x.size());
}

inline bool has_nonfinite(std::span<const float> x) {
  return ops().has_nonfinite(x.data(), x.size());
}

/// Per-dataset squared-norm cache: norms[i] = ||row i||^2, computed with the
/// active backend's norm_sq so cached and on-the-fly norms agree bit-exactly.
inline std::vector<float> row_norms(const FloatMatrix& m) {
  std::vector<float> norms(m.rows());
  const KernelOps& k = ops();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    norms[r] = k.norm_sq(m.row(r).data(), m.cols());
  }
  return norms;
}

}  // namespace wknng::kernels
