#pragma once

// SQ8 compressed storage tier: 8-bit scalar quantization (FAISS's SQ8) with
// asymmetric distances, promoted out of src/ivf into the kernels layer so
// every distance consumer (leaf pass, refinement, graph search, IVF) shares
// one codec and the runtime-dispatched sq8_* KernelOps rows.
//
// Codec: each dimension is affinely mapped onto [0, 255] using its own
// min/max over the training set — code = round((x - bias) / scale) with
// bias = min and scale = (max - min) / 255. A constant dimension gets
// scale = 0 exactly: it encodes to code 0 and decodes to bias bit-exactly
// (no epsilon fudge). Training rejects empty, non-finite, or fully
// degenerate (every dimension constant) sets with Sq8TrainError.
//
// Distances are asymmetric — fp32 query against u8 codes — so the query
// side loses no precision. The SIMD backends use the expanded form
//
//   ||q - (b + s*c)||^2 = self - 2 * dot(w, c) + term(c)
//     w[d]    = (q[d] - bias[d]) * scale[d]     (pre-scaled query)
//     self    = sum_d (q[d] - bias[d])^2
//     term(c) = sum_d (scale[d] * c[d])^2       (cacheable per code row)
//
// computed once per query by sq8_prepare(); the scalar backend is the
// strict reference and evaluates the direct dequantize-subtract form
// serially (bit-identical to the pre-dispatch ivf::sq8_l2_sq). See
// kernels.hpp for the per-backend bit-reproducibility contract.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.hpp"

namespace wknng::kernels {

/// Per-dimension affine codebook.
struct Sq8Codebook {
  std::vector<float> bias;   ///< per-dimension minimum
  std::vector<float> scale;  ///< per-dimension (max - min) / 255; exactly 0
                             ///< for a constant dimension

  std::size_t dim() const { return bias.size(); }
};

/// A quantized point set: n x dim uint8 codes plus the codebook.
struct Sq8Matrix {
  Matrix<std::uint8_t> codes;
  Sq8Codebook codebook;

  std::size_t rows() const { return codes.rows(); }
  std::size_t dim() const { return codes.cols(); }
  std::span<const std::uint8_t> row(std::size_t i) const {
    return codes.row(i);
  }
};

/// A query prepared for asymmetric scoring against one codebook. Holds both
/// the original row (scalar/strict backend: direct dequantized form) and the
/// pre-scaled form (SIMD backends: expanded decomposition). The pointers
/// alias caller-owned storage; the prepared query must not outlive the query
/// row, the codebook, or the `w` buffer passed to sq8_prepare.
struct Sq8Query {
  const float* q = nullptr;      ///< original fp32 query row
  const float* w = nullptr;      ///< (q[d] - bias[d]) * scale[d]
  const float* bias = nullptr;   ///< codebook bias (aliased)
  const float* scale = nullptr;  ///< codebook scale (aliased)
  float self = 0.0f;             ///< sum_d (q[d] - bias[d])^2
  std::size_t dim = 0;
};

/// Builds the pre-scaled form of `query` into `w_buf` (resized to dim) and
/// returns the prepared handle. The accumulation of `self` is serial and
/// backend-independent, so a query prepared once scores bit-identically
/// under every shape of the active backend.
Sq8Query sq8_prepare(std::span<const float> query, const Sq8Codebook& codebook,
                     std::vector<float>& w_buf);

/// Same preparation into caller-provided storage (`w_out` must hold
/// query.size() floats). Lets tile-shaped callers stage a whole warp of
/// prepared queries into slices of one buffer without per-query allocation.
Sq8Query sq8_prepare_into(std::span<const float> query,
                          const Sq8Codebook& codebook, float* w_out);

/// Trains the per-dimension codebook on `points` and encodes every row.
/// Throws wknng::Sq8TrainError when the set is empty, contains NaN/Inf
/// (callers must quarantine first — the builder does), or every dimension
/// is constant.
Sq8Matrix sq8_encode(const FloatMatrix& points);

/// Dequantizes every code back to floats (reconstruction, for tests and
/// rescoring caches). Reconstruction error per dimension is <= scale/2.
FloatMatrix sq8_decode(const Sq8Matrix& m);

/// Serial reference for the asymmetric squared L2 (float query against one
/// dequantized code row) — the pre-dispatch ivf::sq8_l2_sq accumulation,
/// and the function the scalar backend's sq8 rows replicate bit-exactly.
float sq8_l2_sq_ref(std::span<const float> query,
                    std::span<const std::uint8_t> code,
                    const Sq8Codebook& codebook);

/// Per-dataset code-term cache: terms[i] = sum_d (scale[d] * codes[i][d])^2,
/// computed with the active backend's sq8_term so cached and on-the-fly
/// terms agree bit-exactly (the sq8 analogue of row_norms). The strict
/// backend ignores term caches entirely.
std::vector<float> sq8_code_terms(const Sq8Matrix& m);

/// Borrowed view of a quantized dataset threaded through the build and
/// search paths: the code matrix plus the optional per-row term cache
/// (empty in strict mode, where the scalar backend would ignore it anyway).
struct Sq8View {
  const Sq8Matrix* matrix = nullptr;
  std::span<const float> terms;  ///< indexed by point id; may be empty

  bool valid() const { return matrix != nullptr; }
  std::span<const std::uint8_t> row(std::size_t i) const {
    return matrix->row(i);
  }
  const Sq8Codebook& codebook() const { return matrix->codebook; }
};

}  // namespace wknng::kernels
