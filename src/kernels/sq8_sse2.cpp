// SSE2 SQ8 rows: 4-wide asymmetric distances on u8 codes, compiled with the
// x86-64 baseline flags (no extra -m options). Guarded identically to
// kernels_sse2.cpp so the backend table and its sq8 rows are compiled in or
// out together.
//
// Bit-consistency design (mirrors the fp32 SSE2 TU): one shared u8-widening
// dot core — a single vector accumulator, whole 4-code blocks, the fixed
// horizontal-sum tree, then a serial scalar tail — feeds every shape, and
// the term core follows the same skeleton, so cached and on-the-fly code
// terms agree bit-exactly. SSE2 has no cvtepu8 (that is SSE4.1): codes are
// widened with two zero-unpacks before the int->float convert.

#include "kernels/backend_detail.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cstring>

#include "kernels/sq8.hpp"

namespace wknng::kernels::detail {
namespace {

constexpr std::size_t kVec = 4;

/// Same fixed reduction tree as the fp32 SSE2 TU.
inline float hsum(__m128 v) {
  __m128 hi = _mm_movehl_ps(v, v);
  __m128 sum2 = _mm_add_ps(v, hi);
  __m128 hi1 = _mm_shuffle_ps(sum2, sum2, 1);
  return _mm_cvtss_f32(_mm_add_ss(sum2, hi1));
}

/// Widens 4 u8 codes to fp32 lanes: unpack through u16/u32, then convert.
inline __m128 load_codes4(const std::uint8_t* c) {
  std::uint32_t packed;
  std::memcpy(&packed, c, sizeof(packed));
  __m128i v = _mm_cvtsi32_si128(static_cast<int>(packed));
  v = _mm_unpacklo_epi8(v, _mm_setzero_si128());
  v = _mm_unpacklo_epi16(v, _mm_setzero_si128());
  return _mm_cvtepi32_ps(v);
}

/// w . widen(c) — the shared core every sq8 shape is assembled from.
inline float dot_codes(const float* w, const std::uint8_t* c,
                       std::size_t dim) {
  __m128 acc = _mm_setzero_ps();
  const std::size_t blocks = dim & ~(kVec - 1);
  for (std::size_t d = 0; d < blocks; d += kVec) {
    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_loadu_ps(w + d), load_codes4(c + d)));
  }
  float res = hsum(acc);
  for (std::size_t d = blocks; d < dim; ++d) {
    res += w[d] * static_cast<float>(c[d]);
  }
  return res;
}

/// Expanded-form epilogue; 2*d is exact, and the clamp absorbs the small
/// negatives cancellation can produce.
inline float sq8_from(float self, float d, float term) {
  const float r = self - 2.0f * d + term;
  return r < 0.0f ? 0.0f : r;
}

}  // namespace

float sq8_sse2_term(const float* scale, const std::uint8_t* code,
                    std::size_t dim) {
  __m128 acc = _mm_setzero_ps();
  const std::size_t blocks = dim & ~(kVec - 1);
  for (std::size_t d = 0; d < blocks; d += kVec) {
    const __m128 v = _mm_mul_ps(_mm_loadu_ps(scale + d), load_codes4(code + d));
    acc = _mm_add_ps(acc, _mm_mul_ps(v, v));
  }
  float res = hsum(acc);
  for (std::size_t d = blocks; d < dim; ++d) {
    const float t = scale[d] * static_cast<float>(code[d]);
    res += t * t;
  }
  return res;
}

float sq8_sse2_one(const Sq8Query& q, const std::uint8_t* code) {
  return sq8_from(q.self, dot_codes(q.w, code, q.dim),
                  sq8_sse2_term(q.scale, code, q.dim));
}

void sq8_sse2_batch(const Sq8Query& q, const std::uint8_t* const* rows,
                    const float* code_terms, std::size_t count, float* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const float term = code_terms != nullptr
                           ? code_terms[i]
                           : sq8_sse2_term(q.scale, rows[i], q.dim);
    out[i] = sq8_from(q.self, dot_codes(q.w, rows[i], q.dim), term);
  }
}

void sq8_sse2_tile(const Sq8Query* a, std::size_t na,
                   const std::uint8_t* const* b_rows, const float* b_terms,
                   std::size_t nb, float* out, std::size_t ld) {
  if (na == 0 || nb == 0) return;
  float bt_stack[64];
  std::vector<float> bt_heap;
  const float* bt = b_terms;
  if (bt == nullptr) {
    // Code terms are query-independent: materialize them once per tile with
    // the canonical term accumulation (the scale pointer is shared across
    // the tile's queries — one codebook per dataset).
    float* buf = bt_stack;
    if (nb > 64) {
      bt_heap.resize(nb);
      buf = bt_heap.data();
    }
    const std::size_t dim = a[0].dim;
    for (std::size_t j = 0; j < nb; ++j) {
      buf[j] = sq8_sse2_term(a[0].scale, b_rows[j], dim);
    }
    bt = buf;
  }
  for (std::size_t i = 0; i < na; ++i) {
    const Sq8Query& q = a[i];
    for (std::size_t j = 0; j < nb; ++j) {
      out[i * ld + j] =
          sq8_from(q.self, dot_codes(q.w, b_rows[j], q.dim), bt[j]);
    }
  }
}

}  // namespace wknng::kernels::detail

#else  // !defined(__SSE2__): nothing to define — the SSE2 table that would
       // reference these rows is compiled out under the same guard.

#endif
