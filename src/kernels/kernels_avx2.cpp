// AVX2+FMA backend: 8-wide distance kernels. This TU is the only one built
// with -mavx2 -mfma (see src/kernels/CMakeLists.txt); dispatch.cpp refuses to
// hand out this table unless cpuid confirms the running CPU has both.
//
// Bit-consistency design (mirrors the SSE2 TU at twice the width): one
// shared norm/dot core — a single vector FMA accumulator per quantity, whole
// 8-float blocks, one fixed horizontal-sum tree, then a serial scalar tail.
// All scalar tails use std::fmaf so the tail contraction is pinned down
// explicitly (this TU is compiled with FMA available, so a bare a*b+c could
// legally contract at some call sites and not others). Every primitive and
// every norm cache therefore produces identical bits for the same pair.

#include "kernels/backend_detail.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <cmath>
#include <immintrin.h>

namespace wknng::kernels {
namespace {

constexpr std::size_t kVec = 8;

/// Fixed reduction tree: fold high lane onto low, then the SSE tree.
inline float hsum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum4 = _mm_add_ps(lo, hi);               // v0+v4 .. v3+v7
  __m128 hi2 = _mm_movehl_ps(sum4, sum4);
  __m128 sum2 = _mm_add_ps(sum4, hi2);
  __m128 hi1 = _mm_shuffle_ps(sum2, sum2, 1);
  return _mm_cvtss_f32(_mm_add_ss(sum2, hi1));
}

/// ||x||^2 — the canonical accumulation every norm cache on this backend is
/// built with.
float avx2_norm_sq(const float* x, std::size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  const std::size_t blocks = dim & ~(kVec - 1);
  for (std::size_t d = 0; d < blocks; d += kVec) {
    const __m256 v = _mm256_loadu_ps(x + d);
    acc = _mm256_fmadd_ps(v, v, acc);
  }
  float res = hsum(acc);
  for (std::size_t d = blocks; d < dim; ++d) res = std::fmaf(x[d], x[d], res);
  return res;
}

/// x . y with the same skeleton as avx2_norm_sq.
inline float dot(const float* x, const float* y, std::size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  const std::size_t blocks = dim & ~(kVec - 1);
  for (std::size_t d = 0; d < blocks; d += kVec) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + d), _mm256_loadu_ps(y + d), acc);
  }
  float res = hsum(acc);
  for (std::size_t d = blocks; d < dim; ++d) res = std::fmaf(x[d], y[d], res);
  return res;
}

/// Norm-trick epilogue; 2*d is exact, so contraction cannot change the bits,
/// and the clamp keeps cancellation from going (tiny) negative.
inline float l2_from(float nx, float ny, float d) {
  const float r = nx + ny - 2.0f * d;
  return r < 0.0f ? 0.0f : r;
}

float avx2_l2_pair(const float* x, const float* y, std::size_t dim) {
  return l2_from(avx2_norm_sq(x, dim), avx2_norm_sq(y, dim), dot(x, y, dim));
}

void avx2_l2_batch(const float* q, const float* const* rows,
                   const float* row_norms, std::size_t count, std::size_t dim,
                   float* out) {
  const float nq = avx2_norm_sq(q, dim);
  for (std::size_t i = 0; i < count; ++i) {
    const float nr =
        row_norms != nullptr ? row_norms[i] : avx2_norm_sq(rows[i], dim);
    out[i] = l2_from(nq, nr, dot(q, rows[i], dim));
  }
}

void avx2_l2_tile(const float* const* a_rows, const float* a_norms,
                  std::size_t na, const float* const* b_rows,
                  const float* b_norms, std::size_t nb, std::size_t dim,
                  float* out, std::size_t ld) {
  float bn_stack[64];
  std::vector<float> bn_heap;
  const float* bn = b_norms;
  if (bn == nullptr) {
    float* buf = bn_stack;
    if (nb > 64) {
      bn_heap.resize(nb);
      buf = bn_heap.data();
    }
    for (std::size_t j = 0; j < nb; ++j) buf[j] = avx2_norm_sq(b_rows[j], dim);
    bn = buf;
  }
  const std::size_t blocks = dim & ~(kVec - 1);
  for (std::size_t i = 0; i < na; ++i) {
    const float* a = a_rows[i];
    const float nx = a_norms != nullptr ? a_norms[i] : avx2_norm_sq(a, dim);
    std::size_t j = 0;
    // 1x4 register block: one A row broadcast against four B rows, four
    // independent FMA chains. Each chain follows exactly the dot() sequence,
    // so the bits match the unblocked primitives pair-for-pair.
    for (; j + 4 <= nb; j += 4) {
      const float* b0 = b_rows[j];
      const float* b1 = b_rows[j + 1];
      const float* b2 = b_rows[j + 2];
      const float* b3 = b_rows[j + 3];
      __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
      for (std::size_t d = 0; d < blocks; d += kVec) {
        const __m256 av = _mm256_loadu_ps(a + d);
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + d), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + d), acc1);
        acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + d), acc2);
        acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + d), acc3);
      }
      float d0 = hsum(acc0), d1 = hsum(acc1), d2 = hsum(acc2), d3 = hsum(acc3);
      for (std::size_t d = blocks; d < dim; ++d) {
        d0 = std::fmaf(a[d], b0[d], d0);
        d1 = std::fmaf(a[d], b1[d], d1);
        d2 = std::fmaf(a[d], b2[d], d2);
        d3 = std::fmaf(a[d], b3[d], d3);
      }
      out[i * ld + j] = l2_from(nx, bn[j], d0);
      out[i * ld + j + 1] = l2_from(nx, bn[j + 1], d1);
      out[i * ld + j + 2] = l2_from(nx, bn[j + 2], d2);
      out[i * ld + j + 3] = l2_from(nx, bn[j + 3], d3);
    }
    for (; j < nb; ++j) {
      out[i * ld + j] = l2_from(nx, bn[j], dot(a, b_rows[j], dim));
    }
  }
}

bool avx2_has_nonfinite(const float* x, std::size_t count) {
  // Exponent-all-ones test in the integer domain.
  const __m256i exp_mask = _mm256_set1_epi32(0x7F800000);
  const std::size_t blocks = count & ~(kVec - 1);
  for (std::size_t i = 0; i < blocks; i += kVec) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i bad =
        _mm256_cmpeq_epi32(_mm256_and_si256(v, exp_mask), exp_mask);
    if (_mm256_movemask_epi8(bad) != 0) return true;
  }
  for (std::size_t i = blocks; i < count; ++i) {
    union {
      float f;
      std::uint32_t u;
    } pun{x[i]};
    if ((pun.u & 0x7F800000U) == 0x7F800000U) return true;
  }
  return false;
}

constexpr KernelOps kAvx2Ops = {
    Backend::kAvx2, "avx2",        avx2_l2_pair, avx2_l2_pair,
    avx2_l2_batch,  avx2_l2_tile,  avx2_norm_sq, avx2_has_nonfinite,
    detail::sq8_avx2_one,  detail::sq8_avx2_batch,
    detail::sq8_avx2_tile, detail::sq8_avx2_term,
};

}  // namespace

namespace detail {
const KernelOps* avx2_ops() { return &kAvx2Ops; }
}  // namespace detail

}  // namespace wknng::kernels

#else  // compiler could not target AVX2+FMA: backend compiled out.

namespace wknng::kernels::detail {
const KernelOps* avx2_ops() { return nullptr; }
}  // namespace wknng::kernels::detail

#endif
