// Runtime backend selection. The table is resolved exactly once per process
// (WKNNG_KERNEL override first, cpuid otherwise) and then served from a
// relaxed atomic — the hot paths pay one load per call site, nothing more.

#include <atomic>
#include <cstdlib>

#include "common/error.hpp"
#include "kernels/backend_detail.hpp"

namespace wknng::kernels {

namespace detail {

bool cpu_supports(Backend b) {
#if defined(__x86_64__) || defined(__i386__)
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0;
  }
  return false;
#else
  return b == Backend::kScalar;
#endif
}

}  // namespace detail

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Backend detect_backend() {
  if (ops_for(Backend::kAvx2) != nullptr) return Backend::kAvx2;
  if (ops_for(Backend::kSse2) != nullptr) return Backend::kSse2;
  return Backend::kScalar;
}

Backend backend_from_string(const std::string& name) {
  if (name == "scalar" || name == "strict") return Backend::kScalar;
  if (name == "sse2") return Backend::kSse2;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "auto" || name.empty()) return detect_backend();
  throw Error("unknown kernel backend '" + name +
              "' (valid: scalar, strict, sse2, avx2, auto)");
}

const KernelOps* ops_for(Backend b) {
  const KernelOps* table = nullptr;
  switch (b) {
    case Backend::kScalar:
      table = detail::scalar_ops();
      break;
    case Backend::kSse2:
      table = detail::sse2_ops();
      break;
    case Backend::kAvx2:
      table = detail::avx2_ops();
      break;
  }
  if (table == nullptr) return nullptr;  // compiled out
  if (!detail::cpu_supports(b)) return nullptr;
  return table;
}

namespace {

std::atomic<const KernelOps*> g_active{nullptr};

const KernelOps* resolve() {
  Backend pick = detect_backend();
  if (const char* env = std::getenv("WKNNG_KERNEL");
      env != nullptr && *env != '\0') {
    pick = backend_from_string(env);
    const KernelOps* table = ops_for(pick);
    if (table == nullptr) {
      throw Error(std::string("WKNNG_KERNEL=") + env +
                  " requests a backend this build/CPU cannot run");
    }
    return table;
  }
  return ops_for(pick);  // detect_backend() only returns runnable backends
}

}  // namespace

const KernelOps& ops() {
  const KernelOps* table = g_active.load(std::memory_order_relaxed);
  if (table == nullptr) {
    // Benign race: concurrent first calls resolve to the same table.
    table = resolve();
    g_active.store(table, std::memory_order_relaxed);
  }
  return *table;
}

ScopedBackend::ScopedBackend(Backend b) {
  const KernelOps* table = ops_for(b);
  if (table == nullptr) {
    throw Error(std::string("kernel backend '") + backend_name(b) +
                "' is not available on this build/CPU");
  }
  prev_ = &ops();  // force first-use resolution before overriding
  g_active.store(table, std::memory_order_relaxed);
}

ScopedBackend::~ScopedBackend() {
  g_active.store(prev_, std::memory_order_relaxed);
}

}  // namespace wknng::kernels
