// Scalar SQ8 rows — the strict reference. Every shape evaluates the direct
// dequantize-subtract form with one serial accumulator, bit-identical to the
// pre-dispatch ivf::sq8_l2_sq, and term caches are deliberately ignored:
// the expanded decomposition reassociates the arithmetic, and strictness
// means "the original bits" (same policy as the fp32 scalar backend and its
// norm caches).

#include "kernels/backend_detail.hpp"
#include "kernels/sq8.hpp"

namespace wknng::kernels::detail {

namespace {

/// Direct form, serial order — must stay in lockstep with sq8_l2_sq_ref.
float direct(const Sq8Query& q, const std::uint8_t* code) {
  float acc = 0.0f;
  for (std::size_t d = 0; d < q.dim; ++d) {
    const float decoded = q.bias[d] + q.scale[d] * static_cast<float>(code[d]);
    const float diff = q.q[d] - decoded;
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

float sq8_scalar_one(const Sq8Query& q, const std::uint8_t* code) {
  return direct(q, code);
}

void sq8_scalar_batch(const Sq8Query& q, const std::uint8_t* const* rows,
                      const float* /*code_terms*/, std::size_t count,
                      float* out) {
  for (std::size_t i = 0; i < count; ++i) out[i] = direct(q, rows[i]);
}

void sq8_scalar_tile(const Sq8Query* a, std::size_t na,
                     const std::uint8_t* const* b_rows,
                     const float* /*b_terms*/, std::size_t nb, float* out,
                     std::size_t ld) {
  for (std::size_t i = 0; i < na; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      out[i * ld + j] = direct(a[i], b_rows[j]);
    }
  }
}

float sq8_scalar_term(const float* scale, const std::uint8_t* code,
                      std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t d = 0; d < dim; ++d) {
    const float t = scale[d] * static_cast<float>(code[d]);
    acc += t * t;
  }
  return acc;
}

}  // namespace wknng::kernels::detail
