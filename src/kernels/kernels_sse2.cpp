// SSE2 backend: 4-wide distance kernels, compiled with the x86-64 baseline
// flags (no extra -m options needed). This is the portable fast path for
// CPUs without AVX2 and the mid rung of the WKNNG_KERNEL matrix.
//
// Bit-consistency design (shared with the AVX2 TU): every primitive is
// assembled from the same norm/dot cores — one vector accumulator per
// quantity, whole 4-float blocks, a fixed horizontal-sum tree, then a serial
// scalar tail. The same point pair therefore produces the same bits no
// matter which primitive scored it or whether its norms came from a cache.
// This TU is compiled without FMA, so the compiler cannot contract the
// scalar tails either — codegen is order-preserving everywhere.

#include "kernels/backend_detail.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace wknng::kernels {
namespace {

constexpr std::size_t kVec = 4;

/// Fixed reduction tree: (v0+v2, v1+v3) then +. One definition per TU so
/// every primitive reduces identically.
inline float hsum(__m128 v) {
  __m128 hi = _mm_movehl_ps(v, v);              // v2, v3
  __m128 sum2 = _mm_add_ps(v, hi);              // v0+v2, v1+v3
  __m128 hi1 = _mm_shuffle_ps(sum2, sum2, 1);   // v1+v3
  return _mm_cvtss_f32(_mm_add_ss(sum2, hi1));
}

/// ||x||^2 with the backend's canonical accumulation (norm caches are built
/// from this, so cached and on-the-fly norms agree bit-exactly).
float sse2_norm_sq(const float* x, std::size_t dim) {
  __m128 acc = _mm_setzero_ps();
  const std::size_t blocks = dim & ~(kVec - 1);
  for (std::size_t d = 0; d < blocks; d += kVec) {
    const __m128 v = _mm_loadu_ps(x + d);
    acc = _mm_add_ps(acc, _mm_mul_ps(v, v));
  }
  float res = hsum(acc);
  for (std::size_t d = blocks; d < dim; ++d) res += x[d] * x[d];
  return res;
}

/// x . y with the same skeleton as sse2_norm_sq.
inline float dot(const float* x, const float* y, std::size_t dim) {
  __m128 acc = _mm_setzero_ps();
  const std::size_t blocks = dim & ~(kVec - 1);
  for (std::size_t d = 0; d < blocks; d += kVec) {
    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_loadu_ps(x + d), _mm_loadu_ps(y + d)));
  }
  float res = hsum(acc);
  for (std::size_t d = blocks; d < dim; ++d) res += x[d] * y[d];
  return res;
}

/// Norm-trick epilogue. 2*d is exact (power-of-two multiply), so the value
/// cannot depend on whether the compiler contracts the expression; the clamp
/// absorbs the small negatives cancellation can produce (Packed::make
/// requires non-negative distances).
inline float l2_from(float nx, float ny, float d) {
  const float r = nx + ny - 2.0f * d;
  return r < 0.0f ? 0.0f : r;
}

float sse2_l2_pair(const float* x, const float* y, std::size_t dim) {
  return l2_from(sse2_norm_sq(x, dim), sse2_norm_sq(y, dim), dot(x, y, dim));
}

void sse2_l2_batch(const float* q, const float* const* rows,
                   const float* row_norms, std::size_t count, std::size_t dim,
                   float* out) {
  const float nq = sse2_norm_sq(q, dim);
  for (std::size_t i = 0; i < count; ++i) {
    const float nr =
        row_norms != nullptr ? row_norms[i] : sse2_norm_sq(rows[i], dim);
    out[i] = l2_from(nq, nr, dot(q, rows[i], dim));
  }
}

void sse2_l2_tile(const float* const* a_rows, const float* a_norms,
                  std::size_t na, const float* const* b_rows,
                  const float* b_norms, std::size_t nb, std::size_t dim,
                  float* out, std::size_t ld) {
  float bn_stack[64];
  std::vector<float> bn_heap;
  const float* bn = b_norms;
  if (bn == nullptr) {
    float* buf = bn_stack;
    if (nb > 64) {
      bn_heap.resize(nb);
      buf = bn_heap.data();
    }
    for (std::size_t j = 0; j < nb; ++j) buf[j] = sse2_norm_sq(b_rows[j], dim);
    bn = buf;
  }
  const std::size_t blocks = dim & ~(kVec - 1);
  for (std::size_t i = 0; i < na; ++i) {
    const float* a = a_rows[i];
    const float nx = a_norms != nullptr ? a_norms[i] : sse2_norm_sq(a, dim);
    std::size_t j = 0;
    // 1x4 register block: one A row streamed against four B rows. Each
    // pair's accumulator follows exactly the dot() sequence, so the bits
    // match the unblocked primitives.
    for (; j + 4 <= nb; j += 4) {
      const float* b0 = b_rows[j];
      const float* b1 = b_rows[j + 1];
      const float* b2 = b_rows[j + 2];
      const float* b3 = b_rows[j + 3];
      __m128 acc0 = _mm_setzero_ps(), acc1 = _mm_setzero_ps();
      __m128 acc2 = _mm_setzero_ps(), acc3 = _mm_setzero_ps();
      for (std::size_t d = 0; d < blocks; d += kVec) {
        const __m128 av = _mm_loadu_ps(a + d);
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(av, _mm_loadu_ps(b0 + d)));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(av, _mm_loadu_ps(b1 + d)));
        acc2 = _mm_add_ps(acc2, _mm_mul_ps(av, _mm_loadu_ps(b2 + d)));
        acc3 = _mm_add_ps(acc3, _mm_mul_ps(av, _mm_loadu_ps(b3 + d)));
      }
      float d0 = hsum(acc0), d1 = hsum(acc1), d2 = hsum(acc2), d3 = hsum(acc3);
      for (std::size_t d = blocks; d < dim; ++d) {
        d0 += a[d] * b0[d];
        d1 += a[d] * b1[d];
        d2 += a[d] * b2[d];
        d3 += a[d] * b3[d];
      }
      out[i * ld + j] = l2_from(nx, bn[j], d0);
      out[i * ld + j + 1] = l2_from(nx, bn[j + 1], d1);
      out[i * ld + j + 2] = l2_from(nx, bn[j + 2], d2);
      out[i * ld + j + 3] = l2_from(nx, bn[j + 3], d3);
    }
    for (; j < nb; ++j) {
      out[i * ld + j] = l2_from(nx, bn[j], dot(a, b_rows[j], dim));
    }
  }
}

bool sse2_has_nonfinite(const float* x, std::size_t count) {
  // Exponent-all-ones test in the integer domain: robust against any float
  // optimization assumptions.
  const __m128i exp_mask = _mm_set1_epi32(0x7F800000);
  const std::size_t blocks = count & ~(kVec - 1);
  for (std::size_t i = 0; i < blocks; i += kVec) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m128i bad =
        _mm_cmpeq_epi32(_mm_and_si128(v, exp_mask), exp_mask);
    if (_mm_movemask_epi8(bad) != 0) return true;
  }
  for (std::size_t i = blocks; i < count; ++i) {
    union {
      float f;
      std::uint32_t u;
    } pun{x[i]};
    if ((pun.u & 0x7F800000U) == 0x7F800000U) return true;
  }
  return false;
}

constexpr KernelOps kSse2Ops = {
    Backend::kSse2, "sse2",        sse2_l2_pair, sse2_l2_pair,
    sse2_l2_batch,  sse2_l2_tile,  sse2_norm_sq, sse2_has_nonfinite,
    detail::sq8_sse2_one,  detail::sq8_sse2_batch,
    detail::sq8_sse2_tile, detail::sq8_sse2_term,
};

}  // namespace

namespace detail {
const KernelOps* sse2_ops() { return &kSse2Ops; }
}  // namespace detail

}  // namespace wknng::kernels

#else  // !defined(__SSE2__)

namespace wknng::kernels::detail {
const KernelOps* sse2_ops() { return nullptr; }
}  // namespace wknng::kernels::detail

#endif
