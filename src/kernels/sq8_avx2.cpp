// AVX2+FMA SQ8 rows: 8-wide asymmetric distances on u8 codes. This TU is
// built with -mavx2 -mfma exactly like kernels_avx2.cpp (see CMakeLists) and
// guarded identically, so the backend table and its sq8 rows are compiled in
// or out together.
//
// The hot loop is the maddubs-style integer-widening FMA: load 8 codes
// (one 8-byte load — a quarter of the fp32 row traffic), widen u8 -> i32 ->
// fp32, and FMA against the pre-scaled query. Bit-consistency mirrors the
// fp32 AVX2 TU: one shared widening-dot core (single FMA accumulator, whole
// 8-code blocks, the fixed hsum tree, fmaf-pinned scalar tails) feeds every
// shape, and the term core follows the same skeleton so cached and
// on-the-fly code terms agree bit-exactly. The tile kernel adds a 1x4
// register block whose four chains each follow the unblocked dot sequence,
// so blocking never changes the bits.

#include "kernels/backend_detail.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

#include "kernels/sq8.hpp"

namespace wknng::kernels::detail {
namespace {

constexpr std::size_t kVec = 8;

/// Same fixed reduction tree as the fp32 AVX2 TU.
inline float hsum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum4 = _mm_add_ps(lo, hi);
  __m128 hi2 = _mm_movehl_ps(sum4, sum4);
  __m128 sum2 = _mm_add_ps(sum4, hi2);
  __m128 hi1 = _mm_shuffle_ps(sum2, sum2, 1);
  return _mm_cvtss_f32(_mm_add_ss(sum2, hi1));
}

/// Widens 8 u8 codes to fp32 lanes with one 8-byte load.
inline __m256 load_codes8(const std::uint8_t* c) {
  const __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(c));
  return _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
}

/// w . widen(c) — the shared core every sq8 shape is assembled from.
inline float dot_codes(const float* w, const std::uint8_t* c,
                       std::size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  const std::size_t blocks = dim & ~(kVec - 1);
  for (std::size_t d = 0; d < blocks; d += kVec) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(w + d), load_codes8(c + d), acc);
  }
  float res = hsum(acc);
  for (std::size_t d = blocks; d < dim; ++d) {
    res = std::fmaf(w[d], static_cast<float>(c[d]), res);
  }
  return res;
}

/// Expanded-form epilogue; 2*d is exact, so contraction cannot change the
/// bits, and the clamp keeps cancellation from going (tiny) negative.
inline float sq8_from(float self, float d, float term) {
  const float r = self - 2.0f * d + term;
  return r < 0.0f ? 0.0f : r;
}

}  // namespace

float sq8_avx2_term(const float* scale, const std::uint8_t* code,
                    std::size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  const std::size_t blocks = dim & ~(kVec - 1);
  for (std::size_t d = 0; d < blocks; d += kVec) {
    const __m256 v =
        _mm256_mul_ps(_mm256_loadu_ps(scale + d), load_codes8(code + d));
    acc = _mm256_fmadd_ps(v, v, acc);
  }
  float res = hsum(acc);
  for (std::size_t d = blocks; d < dim; ++d) {
    const float t = scale[d] * static_cast<float>(code[d]);
    res = std::fmaf(t, t, res);
  }
  return res;
}

float sq8_avx2_one(const Sq8Query& q, const std::uint8_t* code) {
  return sq8_from(q.self, dot_codes(q.w, code, q.dim),
                  sq8_avx2_term(q.scale, code, q.dim));
}

void sq8_avx2_batch(const Sq8Query& q, const std::uint8_t* const* rows,
                    const float* code_terms, std::size_t count, float* out) {
  const float* w = q.w;
  const std::size_t dim = q.dim;
  const std::size_t blocks = dim & ~(kVec - 1);
  std::size_t i = 0;
  // 4 candidate rows per step, four independent FMA chains: a single chain
  // is latency-bound on the fmadd dependency, which caps the batch shape at
  // a fraction of the load bandwidth the 1-byte codes leave free. Each
  // chain follows exactly the dot_codes() sequence, so the bits match the
  // one-at-a-time primitive row-for-row.
  for (; i + 4 <= count; i += 4) {
    const std::uint8_t* b0 = rows[i];
    const std::uint8_t* b1 = rows[i + 1];
    const std::uint8_t* b2 = rows[i + 2];
    const std::uint8_t* b3 = rows[i + 3];
    __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
    for (std::size_t d = 0; d < blocks; d += kVec) {
      const __m256 wv = _mm256_loadu_ps(w + d);
      acc0 = _mm256_fmadd_ps(wv, load_codes8(b0 + d), acc0);
      acc1 = _mm256_fmadd_ps(wv, load_codes8(b1 + d), acc1);
      acc2 = _mm256_fmadd_ps(wv, load_codes8(b2 + d), acc2);
      acc3 = _mm256_fmadd_ps(wv, load_codes8(b3 + d), acc3);
    }
    float d0 = hsum(acc0), d1 = hsum(acc1), d2 = hsum(acc2), d3 = hsum(acc3);
    for (std::size_t d = blocks; d < dim; ++d) {
      d0 = std::fmaf(w[d], static_cast<float>(b0[d]), d0);
      d1 = std::fmaf(w[d], static_cast<float>(b1[d]), d1);
      d2 = std::fmaf(w[d], static_cast<float>(b2[d]), d2);
      d3 = std::fmaf(w[d], static_cast<float>(b3[d]), d3);
    }
    const bool cached = code_terms != nullptr;
    out[i] = sq8_from(q.self, d0,
                      cached ? code_terms[i] : sq8_avx2_term(q.scale, b0, dim));
    out[i + 1] = sq8_from(
        q.self, d1, cached ? code_terms[i + 1] : sq8_avx2_term(q.scale, b1, dim));
    out[i + 2] = sq8_from(
        q.self, d2, cached ? code_terms[i + 2] : sq8_avx2_term(q.scale, b2, dim));
    out[i + 3] = sq8_from(
        q.self, d3, cached ? code_terms[i + 3] : sq8_avx2_term(q.scale, b3, dim));
  }
  for (; i < count; ++i) {
    const float term = code_terms != nullptr
                           ? code_terms[i]
                           : sq8_avx2_term(q.scale, rows[i], q.dim);
    out[i] = sq8_from(q.self, dot_codes(q.w, rows[i], q.dim), term);
  }
}

void sq8_avx2_tile(const Sq8Query* a, std::size_t na,
                   const std::uint8_t* const* b_rows, const float* b_terms,
                   std::size_t nb, float* out, std::size_t ld) {
  if (na == 0 || nb == 0) return;
  float bt_stack[64];
  std::vector<float> bt_heap;
  const float* bt = b_terms;
  if (bt == nullptr) {
    // Code terms are query-independent: materialize once per tile with the
    // canonical term accumulation (one codebook per dataset, so the scale
    // pointer is shared across the tile's queries).
    float* buf = bt_stack;
    if (nb > 64) {
      bt_heap.resize(nb);
      buf = bt_heap.data();
    }
    const std::size_t dim = a[0].dim;
    for (std::size_t j = 0; j < nb; ++j) {
      buf[j] = sq8_avx2_term(a[0].scale, b_rows[j], dim);
    }
    bt = buf;
  }
  for (std::size_t i = 0; i < na; ++i) {
    const Sq8Query& q = a[i];
    const float* w = q.w;
    const std::size_t dim = q.dim;
    const std::size_t blocks = dim & ~(kVec - 1);
    std::size_t j = 0;
    // 1x4 register block: one pre-scaled query streamed against four code
    // rows, four independent FMA chains. Each chain follows exactly the
    // dot_codes() sequence, so the bits match the unblocked primitives
    // pair-for-pair.
    for (; j + 4 <= nb; j += 4) {
      const std::uint8_t* b0 = b_rows[j];
      const std::uint8_t* b1 = b_rows[j + 1];
      const std::uint8_t* b2 = b_rows[j + 2];
      const std::uint8_t* b3 = b_rows[j + 3];
      __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
      for (std::size_t d = 0; d < blocks; d += kVec) {
        const __m256 wv = _mm256_loadu_ps(w + d);
        acc0 = _mm256_fmadd_ps(wv, load_codes8(b0 + d), acc0);
        acc1 = _mm256_fmadd_ps(wv, load_codes8(b1 + d), acc1);
        acc2 = _mm256_fmadd_ps(wv, load_codes8(b2 + d), acc2);
        acc3 = _mm256_fmadd_ps(wv, load_codes8(b3 + d), acc3);
      }
      float d0 = hsum(acc0), d1 = hsum(acc1), d2 = hsum(acc2), d3 = hsum(acc3);
      for (std::size_t d = blocks; d < dim; ++d) {
        d0 = std::fmaf(w[d], static_cast<float>(b0[d]), d0);
        d1 = std::fmaf(w[d], static_cast<float>(b1[d]), d1);
        d2 = std::fmaf(w[d], static_cast<float>(b2[d]), d2);
        d3 = std::fmaf(w[d], static_cast<float>(b3[d]), d3);
      }
      out[i * ld + j] = sq8_from(q.self, d0, bt[j]);
      out[i * ld + j + 1] = sq8_from(q.self, d1, bt[j + 1]);
      out[i * ld + j + 2] = sq8_from(q.self, d2, bt[j + 2]);
      out[i * ld + j + 3] = sq8_from(q.self, d3, bt[j + 3]);
    }
    for (; j < nb; ++j) {
      out[i * ld + j] = sq8_from(q.self, dot_codes(w, b_rows[j], dim), bt[j]);
    }
  }
}

}  // namespace wknng::kernels::detail

#else  // compiler could not target AVX2+FMA: nothing to define — the AVX2
       // table that would reference these rows is compiled out under the
       // same guard.

#endif
