file(REMOVE_RECURSE
  "CMakeFiles/test_ivf.dir/test_ivf_flat.cpp.o"
  "CMakeFiles/test_ivf.dir/test_ivf_flat.cpp.o.d"
  "CMakeFiles/test_ivf.dir/test_kmeans.cpp.o"
  "CMakeFiles/test_ivf.dir/test_kmeans.cpp.o.d"
  "CMakeFiles/test_ivf.dir/test_sq8.cpp.o"
  "CMakeFiles/test_ivf.dir/test_sq8.cpp.o.d"
  "test_ivf"
  "test_ivf.pdb"
  "test_ivf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ivf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
