# CMake generated Testfile for 
# Source directory: /root/repo/tests/ivf
# Build directory: /root/repo/build/tests/ivf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ivf/test_ivf[1]_include.cmake")
