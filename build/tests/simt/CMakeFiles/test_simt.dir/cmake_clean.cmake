file(REMOVE_RECURSE
  "CMakeFiles/test_simt.dir/test_distance.cpp.o"
  "CMakeFiles/test_simt.dir/test_distance.cpp.o.d"
  "CMakeFiles/test_simt.dir/test_launch.cpp.o"
  "CMakeFiles/test_simt.dir/test_launch.cpp.o.d"
  "CMakeFiles/test_simt.dir/test_memory.cpp.o"
  "CMakeFiles/test_simt.dir/test_memory.cpp.o.d"
  "CMakeFiles/test_simt.dir/test_packed.cpp.o"
  "CMakeFiles/test_simt.dir/test_packed.cpp.o.d"
  "CMakeFiles/test_simt.dir/test_scratch.cpp.o"
  "CMakeFiles/test_simt.dir/test_scratch.cpp.o.d"
  "CMakeFiles/test_simt.dir/test_sort.cpp.o"
  "CMakeFiles/test_simt.dir/test_sort.cpp.o.d"
  "CMakeFiles/test_simt.dir/test_warp.cpp.o"
  "CMakeFiles/test_simt.dir/test_warp.cpp.o.d"
  "test_simt"
  "test_simt.pdb"
  "test_simt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
