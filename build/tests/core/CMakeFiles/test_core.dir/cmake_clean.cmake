file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_builder.cpp.o"
  "CMakeFiles/test_core.dir/test_builder.cpp.o.d"
  "CMakeFiles/test_core.dir/test_graph_metrics.cpp.o"
  "CMakeFiles/test_core.dir/test_graph_metrics.cpp.o.d"
  "CMakeFiles/test_core.dir/test_graph_ops.cpp.o"
  "CMakeFiles/test_core.dir/test_graph_ops.cpp.o.d"
  "CMakeFiles/test_core.dir/test_graph_search.cpp.o"
  "CMakeFiles/test_core.dir/test_graph_search.cpp.o.d"
  "CMakeFiles/test_core.dir/test_incremental.cpp.o"
  "CMakeFiles/test_core.dir/test_incremental.cpp.o.d"
  "CMakeFiles/test_core.dir/test_knn_set.cpp.o"
  "CMakeFiles/test_core.dir/test_knn_set.cpp.o.d"
  "CMakeFiles/test_core.dir/test_leaf_knn.cpp.o"
  "CMakeFiles/test_core.dir/test_leaf_knn.cpp.o.d"
  "CMakeFiles/test_core.dir/test_refine.cpp.o"
  "CMakeFiles/test_core.dir/test_refine.cpp.o.d"
  "CMakeFiles/test_core.dir/test_rp_forest.cpp.o"
  "CMakeFiles/test_core.dir/test_rp_forest.cpp.o.d"
  "CMakeFiles/test_core.dir/test_tiled_block.cpp.o"
  "CMakeFiles/test_core.dir/test_tiled_block.cpp.o.d"
  "CMakeFiles/test_core.dir/test_warp_brute_force.cpp.o"
  "CMakeFiles/test_core.dir/test_warp_brute_force.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
