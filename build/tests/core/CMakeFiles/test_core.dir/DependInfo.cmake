
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_builder.cpp" "tests/core/CMakeFiles/test_core.dir/test_builder.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_builder.cpp.o.d"
  "/root/repo/tests/core/test_graph_metrics.cpp" "tests/core/CMakeFiles/test_core.dir/test_graph_metrics.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_graph_metrics.cpp.o.d"
  "/root/repo/tests/core/test_graph_ops.cpp" "tests/core/CMakeFiles/test_core.dir/test_graph_ops.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_graph_ops.cpp.o.d"
  "/root/repo/tests/core/test_graph_search.cpp" "tests/core/CMakeFiles/test_core.dir/test_graph_search.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_graph_search.cpp.o.d"
  "/root/repo/tests/core/test_incremental.cpp" "tests/core/CMakeFiles/test_core.dir/test_incremental.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_incremental.cpp.o.d"
  "/root/repo/tests/core/test_knn_set.cpp" "tests/core/CMakeFiles/test_core.dir/test_knn_set.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_knn_set.cpp.o.d"
  "/root/repo/tests/core/test_leaf_knn.cpp" "tests/core/CMakeFiles/test_core.dir/test_leaf_knn.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_leaf_knn.cpp.o.d"
  "/root/repo/tests/core/test_refine.cpp" "tests/core/CMakeFiles/test_core.dir/test_refine.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_refine.cpp.o.d"
  "/root/repo/tests/core/test_rp_forest.cpp" "tests/core/CMakeFiles/test_core.dir/test_rp_forest.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_rp_forest.cpp.o.d"
  "/root/repo/tests/core/test_tiled_block.cpp" "tests/core/CMakeFiles/test_core.dir/test_tiled_block.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_tiled_block.cpp.o.d"
  "/root/repo/tests/core/test_warp_brute_force.cpp" "tests/core/CMakeFiles/test_core.dir/test_warp_brute_force.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_warp_brute_force.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wknng_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ivf/CMakeFiles/wknng_ivf.dir/DependInfo.cmake"
  "/root/repo/build/src/nndescent/CMakeFiles/wknng_nndescent.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/wknng_data.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/wknng_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/wknng_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wknng_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
