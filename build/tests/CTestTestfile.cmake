# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("simt")
subdirs("data")
subdirs("exact")
subdirs("core")
subdirs("ivf")
subdirs("nndescent")
subdirs("tuner")
subdirs("integration")
