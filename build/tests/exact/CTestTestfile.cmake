# CMake generated Testfile for 
# Source directory: /root/repo/tests/exact
# Build directory: /root/repo/build/tests/exact
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/exact/test_exact[1]_include.cmake")
