file(REMOVE_RECURSE
  "CMakeFiles/test_data.dir/test_graph_io.cpp.o"
  "CMakeFiles/test_data.dir/test_graph_io.cpp.o.d"
  "CMakeFiles/test_data.dir/test_io.cpp.o"
  "CMakeFiles/test_data.dir/test_io.cpp.o.d"
  "CMakeFiles/test_data.dir/test_synthetic.cpp.o"
  "CMakeFiles/test_data.dir/test_synthetic.cpp.o.d"
  "CMakeFiles/test_data.dir/test_transforms.cpp.o"
  "CMakeFiles/test_data.dir/test_transforms.cpp.o.d"
  "test_data"
  "test_data.pdb"
  "test_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
