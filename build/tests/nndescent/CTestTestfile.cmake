# CMake generated Testfile for 
# Source directory: /root/repo/tests/nndescent
# Build directory: /root/repo/build/tests/nndescent
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/nndescent/test_nndescent[1]_include.cmake")
