# Empty dependencies file for test_nndescent.
# This may be replaced when dependencies are built.
