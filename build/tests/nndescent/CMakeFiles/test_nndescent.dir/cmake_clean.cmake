file(REMOVE_RECURSE
  "CMakeFiles/test_nndescent.dir/test_nn_descent.cpp.o"
  "CMakeFiles/test_nndescent.dir/test_nn_descent.cpp.o.d"
  "test_nndescent"
  "test_nndescent.pdb"
  "test_nndescent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nndescent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
