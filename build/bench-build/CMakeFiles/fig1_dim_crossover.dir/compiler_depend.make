# Empty compiler generated dependencies file for fig1_dim_crossover.
# This may be replaced when dependencies are built.
