file(REMOVE_RECURSE
  "../bench/fig1_dim_crossover"
  "../bench/fig1_dim_crossover.pdb"
  "CMakeFiles/fig1_dim_crossover.dir/fig1_dim_crossover.cpp.o"
  "CMakeFiles/fig1_dim_crossover.dir/fig1_dim_crossover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_dim_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
