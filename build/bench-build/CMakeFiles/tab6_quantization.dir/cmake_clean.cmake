file(REMOVE_RECURSE
  "../bench/tab6_quantization"
  "../bench/tab6_quantization.pdb"
  "CMakeFiles/tab6_quantization.dir/tab6_quantization.cpp.o"
  "CMakeFiles/tab6_quantization.dir/tab6_quantization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
