# Empty compiler generated dependencies file for tab6_quantization.
# This may be replaced when dependencies are built.
