# Empty dependencies file for fig5_k_sweep.
# This may be replaced when dependencies are built.
