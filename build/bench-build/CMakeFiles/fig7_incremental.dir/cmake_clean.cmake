file(REMOVE_RECURSE
  "../bench/fig7_incremental"
  "../bench/fig7_incremental.pdb"
  "CMakeFiles/fig7_incremental.dir/fig7_incremental.cpp.o"
  "CMakeFiles/fig7_incremental.dir/fig7_incremental.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
