# Empty compiler generated dependencies file for fig7_incremental.
# This may be replaced when dependencies are built.
