file(REMOVE_RECURSE
  "../bench/tab4_tiled_scratch"
  "../bench/tab4_tiled_scratch.pdb"
  "CMakeFiles/tab4_tiled_scratch.dir/tab4_tiled_scratch.cpp.o"
  "CMakeFiles/tab4_tiled_scratch.dir/tab4_tiled_scratch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_tiled_scratch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
