# Empty dependencies file for tab4_tiled_scratch.
# This may be replaced when dependencies are built.
