file(REMOVE_RECURSE
  "../bench/fig10_graph_search"
  "../bench/fig10_graph_search.pdb"
  "CMakeFiles/fig10_graph_search.dir/fig10_graph_search.cpp.o"
  "CMakeFiles/fig10_graph_search.dir/fig10_graph_search.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_graph_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
