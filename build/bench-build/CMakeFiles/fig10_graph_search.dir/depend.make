# Empty dependencies file for fig10_graph_search.
# This may be replaced when dependencies are built.
