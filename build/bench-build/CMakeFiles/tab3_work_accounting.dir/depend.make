# Empty dependencies file for tab3_work_accounting.
# This may be replaced when dependencies are built.
