file(REMOVE_RECURSE
  "../bench/tab3_work_accounting"
  "../bench/tab3_work_accounting.pdb"
  "CMakeFiles/tab3_work_accounting.dir/tab3_work_accounting.cpp.o"
  "CMakeFiles/tab3_work_accounting.dir/tab3_work_accounting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_work_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
