
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab3_work_accounting.cpp" "bench-build/CMakeFiles/tab3_work_accounting.dir/tab3_work_accounting.cpp.o" "gcc" "bench-build/CMakeFiles/tab3_work_accounting.dir/tab3_work_accounting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wknng_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ivf/CMakeFiles/wknng_ivf.dir/DependInfo.cmake"
  "/root/repo/build/src/nndescent/CMakeFiles/wknng_nndescent.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/wknng_data.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/wknng_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/wknng_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wknng_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
