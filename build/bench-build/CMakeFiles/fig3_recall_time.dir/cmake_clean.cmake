file(REMOVE_RECURSE
  "../bench/fig3_recall_time"
  "../bench/fig3_recall_time.pdb"
  "CMakeFiles/fig3_recall_time.dir/fig3_recall_time.cpp.o"
  "CMakeFiles/fig3_recall_time.dir/fig3_recall_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_recall_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
