file(REMOVE_RECURSE
  "../bench/fig8_spill"
  "../bench/fig8_spill.pdb"
  "CMakeFiles/fig8_spill.dir/fig8_spill.cpp.o"
  "CMakeFiles/fig8_spill.dir/fig8_spill.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_spill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
