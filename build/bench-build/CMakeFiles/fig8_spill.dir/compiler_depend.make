# Empty compiler generated dependencies file for fig8_spill.
# This may be replaced when dependencies are built.
