# Empty dependencies file for fig6_leaf_size.
# This may be replaced when dependencies are built.
