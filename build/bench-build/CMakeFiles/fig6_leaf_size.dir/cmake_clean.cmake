file(REMOVE_RECURSE
  "../bench/fig6_leaf_size"
  "../bench/fig6_leaf_size.pdb"
  "CMakeFiles/fig6_leaf_size.dir/fig6_leaf_size.cpp.o"
  "CMakeFiles/fig6_leaf_size.dir/fig6_leaf_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_leaf_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
