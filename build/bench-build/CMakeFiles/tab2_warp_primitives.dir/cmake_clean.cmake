file(REMOVE_RECURSE
  "../bench/tab2_warp_primitives"
  "../bench/tab2_warp_primitives.pdb"
  "CMakeFiles/tab2_warp_primitives.dir/tab2_warp_primitives.cpp.o"
  "CMakeFiles/tab2_warp_primitives.dir/tab2_warp_primitives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_warp_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
