# Empty compiler generated dependencies file for tab2_warp_primitives.
# This may be replaced when dependencies are built.
