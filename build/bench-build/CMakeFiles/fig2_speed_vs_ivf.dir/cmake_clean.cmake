file(REMOVE_RECURSE
  "../bench/fig2_speed_vs_ivf"
  "../bench/fig2_speed_vs_ivf.pdb"
  "CMakeFiles/fig2_speed_vs_ivf.dir/fig2_speed_vs_ivf.cpp.o"
  "CMakeFiles/fig2_speed_vs_ivf.dir/fig2_speed_vs_ivf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_speed_vs_ivf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
