# Empty dependencies file for fig2_speed_vs_ivf.
# This may be replaced when dependencies are built.
