file(REMOVE_RECURSE
  "../bench/fig4_scaling_n"
  "../bench/fig4_scaling_n.pdb"
  "CMakeFiles/fig4_scaling_n.dir/fig4_scaling_n.cpp.o"
  "CMakeFiles/fig4_scaling_n.dir/fig4_scaling_n.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_scaling_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
