# Empty dependencies file for fig4_scaling_n.
# This may be replaced when dependencies are built.
