# Empty compiler generated dependencies file for tab1_phase_breakdown.
# This may be replaced when dependencies are built.
