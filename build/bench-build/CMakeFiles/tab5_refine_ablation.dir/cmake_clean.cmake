file(REMOVE_RECURSE
  "../bench/tab5_refine_ablation"
  "../bench/tab5_refine_ablation.pdb"
  "CMakeFiles/tab5_refine_ablation.dir/tab5_refine_ablation.cpp.o"
  "CMakeFiles/tab5_refine_ablation.dir/tab5_refine_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab5_refine_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
