# Empty compiler generated dependencies file for tab5_refine_ablation.
# This may be replaced when dependencies are built.
