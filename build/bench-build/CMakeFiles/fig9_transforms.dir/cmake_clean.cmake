file(REMOVE_RECURSE
  "../bench/fig9_transforms"
  "../bench/fig9_transforms.pdb"
  "CMakeFiles/fig9_transforms.dir/fig9_transforms.cpp.o"
  "CMakeFiles/fig9_transforms.dir/fig9_transforms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
