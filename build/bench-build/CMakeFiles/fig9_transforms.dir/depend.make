# Empty dependencies file for fig9_transforms.
# This may be replaced when dependencies are built.
