file(REMOVE_RECURSE
  "../examples/tsne_affinities"
  "../examples/tsne_affinities.pdb"
  "CMakeFiles/tsne_affinities.dir/tsne_affinities.cpp.o"
  "CMakeFiles/tsne_affinities.dir/tsne_affinities.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsne_affinities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
