# Empty compiler generated dependencies file for tsne_affinities.
# This may be replaced when dependencies are built.
