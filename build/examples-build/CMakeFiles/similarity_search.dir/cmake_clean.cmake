file(REMOVE_RECURSE
  "../examples/similarity_search"
  "../examples/similarity_search.pdb"
  "CMakeFiles/similarity_search.dir/similarity_search.cpp.o"
  "CMakeFiles/similarity_search.dir/similarity_search.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
