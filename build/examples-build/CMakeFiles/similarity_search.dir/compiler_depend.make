# Empty compiler generated dependencies file for similarity_search.
# This may be replaced when dependencies are built.
