file(REMOVE_RECURSE
  "../examples/wknng_cli"
  "../examples/wknng_cli.pdb"
  "CMakeFiles/wknng_cli.dir/wknng_cli.cpp.o"
  "CMakeFiles/wknng_cli.dir/wknng_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wknng_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
