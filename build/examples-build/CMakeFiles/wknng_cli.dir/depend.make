# Empty dependencies file for wknng_cli.
# This may be replaced when dependencies are built.
