file(REMOVE_RECURSE
  "../examples/knn_classifier"
  "../examples/knn_classifier.pdb"
  "CMakeFiles/knn_classifier.dir/knn_classifier.cpp.o"
  "CMakeFiles/knn_classifier.dir/knn_classifier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
