# Empty dependencies file for knn_classifier.
# This may be replaced when dependencies are built.
