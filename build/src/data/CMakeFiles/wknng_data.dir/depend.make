# Empty dependencies file for wknng_data.
# This may be replaced when dependencies are built.
