file(REMOVE_RECURSE
  "libwknng_data.a"
)
