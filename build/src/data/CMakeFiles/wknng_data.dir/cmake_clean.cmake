file(REMOVE_RECURSE
  "CMakeFiles/wknng_data.dir/graph_io.cpp.o"
  "CMakeFiles/wknng_data.dir/graph_io.cpp.o.d"
  "CMakeFiles/wknng_data.dir/io.cpp.o"
  "CMakeFiles/wknng_data.dir/io.cpp.o.d"
  "CMakeFiles/wknng_data.dir/synthetic.cpp.o"
  "CMakeFiles/wknng_data.dir/synthetic.cpp.o.d"
  "CMakeFiles/wknng_data.dir/transforms.cpp.o"
  "CMakeFiles/wknng_data.dir/transforms.cpp.o.d"
  "libwknng_data.a"
  "libwknng_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wknng_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
