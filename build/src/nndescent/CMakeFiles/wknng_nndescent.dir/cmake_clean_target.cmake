file(REMOVE_RECURSE
  "libwknng_nndescent.a"
)
