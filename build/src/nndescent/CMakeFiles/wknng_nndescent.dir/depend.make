# Empty dependencies file for wknng_nndescent.
# This may be replaced when dependencies are built.
