file(REMOVE_RECURSE
  "CMakeFiles/wknng_nndescent.dir/nn_descent.cpp.o"
  "CMakeFiles/wknng_nndescent.dir/nn_descent.cpp.o.d"
  "libwknng_nndescent.a"
  "libwknng_nndescent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wknng_nndescent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
