
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nndescent/nn_descent.cpp" "src/nndescent/CMakeFiles/wknng_nndescent.dir/nn_descent.cpp.o" "gcc" "src/nndescent/CMakeFiles/wknng_nndescent.dir/nn_descent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wknng_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/wknng_exact.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
