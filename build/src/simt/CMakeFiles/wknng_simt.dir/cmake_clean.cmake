file(REMOVE_RECURSE
  "CMakeFiles/wknng_simt.dir/launch.cpp.o"
  "CMakeFiles/wknng_simt.dir/launch.cpp.o.d"
  "libwknng_simt.a"
  "libwknng_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wknng_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
