file(REMOVE_RECURSE
  "libwknng_simt.a"
)
