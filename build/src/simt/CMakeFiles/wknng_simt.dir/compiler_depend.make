# Empty compiler generated dependencies file for wknng_simt.
# This may be replaced when dependencies are built.
