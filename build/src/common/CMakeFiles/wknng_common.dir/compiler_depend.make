# Empty compiler generated dependencies file for wknng_common.
# This may be replaced when dependencies are built.
