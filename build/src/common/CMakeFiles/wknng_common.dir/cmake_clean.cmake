file(REMOVE_RECURSE
  "CMakeFiles/wknng_common.dir/thread_pool.cpp.o"
  "CMakeFiles/wknng_common.dir/thread_pool.cpp.o.d"
  "libwknng_common.a"
  "libwknng_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wknng_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
