file(REMOVE_RECURSE
  "libwknng_common.a"
)
