# Empty dependencies file for wknng_tuner.
# This may be replaced when dependencies are built.
