file(REMOVE_RECURSE
  "CMakeFiles/wknng_tuner.dir/tuner.cpp.o"
  "CMakeFiles/wknng_tuner.dir/tuner.cpp.o.d"
  "libwknng_tuner.a"
  "libwknng_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wknng_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
