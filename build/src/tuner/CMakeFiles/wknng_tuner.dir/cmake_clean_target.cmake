file(REMOVE_RECURSE
  "libwknng_tuner.a"
)
