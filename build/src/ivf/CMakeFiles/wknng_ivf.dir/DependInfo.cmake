
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ivf/ivf_flat.cpp" "src/ivf/CMakeFiles/wknng_ivf.dir/ivf_flat.cpp.o" "gcc" "src/ivf/CMakeFiles/wknng_ivf.dir/ivf_flat.cpp.o.d"
  "/root/repo/src/ivf/ivf_sq8.cpp" "src/ivf/CMakeFiles/wknng_ivf.dir/ivf_sq8.cpp.o" "gcc" "src/ivf/CMakeFiles/wknng_ivf.dir/ivf_sq8.cpp.o.d"
  "/root/repo/src/ivf/kmeans.cpp" "src/ivf/CMakeFiles/wknng_ivf.dir/kmeans.cpp.o" "gcc" "src/ivf/CMakeFiles/wknng_ivf.dir/kmeans.cpp.o.d"
  "/root/repo/src/ivf/sq8.cpp" "src/ivf/CMakeFiles/wknng_ivf.dir/sq8.cpp.o" "gcc" "src/ivf/CMakeFiles/wknng_ivf.dir/sq8.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wknng_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/wknng_exact.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
