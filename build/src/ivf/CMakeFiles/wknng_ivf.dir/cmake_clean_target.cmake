file(REMOVE_RECURSE
  "libwknng_ivf.a"
)
