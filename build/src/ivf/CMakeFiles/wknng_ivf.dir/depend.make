# Empty dependencies file for wknng_ivf.
# This may be replaced when dependencies are built.
