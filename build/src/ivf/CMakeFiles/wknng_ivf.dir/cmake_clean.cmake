file(REMOVE_RECURSE
  "CMakeFiles/wknng_ivf.dir/ivf_flat.cpp.o"
  "CMakeFiles/wknng_ivf.dir/ivf_flat.cpp.o.d"
  "CMakeFiles/wknng_ivf.dir/ivf_sq8.cpp.o"
  "CMakeFiles/wknng_ivf.dir/ivf_sq8.cpp.o.d"
  "CMakeFiles/wknng_ivf.dir/kmeans.cpp.o"
  "CMakeFiles/wknng_ivf.dir/kmeans.cpp.o.d"
  "CMakeFiles/wknng_ivf.dir/sq8.cpp.o"
  "CMakeFiles/wknng_ivf.dir/sq8.cpp.o.d"
  "libwknng_ivf.a"
  "libwknng_ivf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wknng_ivf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
