file(REMOVE_RECURSE
  "libwknng_core.a"
)
