file(REMOVE_RECURSE
  "CMakeFiles/wknng_core.dir/builder.cpp.o"
  "CMakeFiles/wknng_core.dir/builder.cpp.o.d"
  "CMakeFiles/wknng_core.dir/graph_metrics.cpp.o"
  "CMakeFiles/wknng_core.dir/graph_metrics.cpp.o.d"
  "CMakeFiles/wknng_core.dir/graph_ops.cpp.o"
  "CMakeFiles/wknng_core.dir/graph_ops.cpp.o.d"
  "CMakeFiles/wknng_core.dir/graph_search.cpp.o"
  "CMakeFiles/wknng_core.dir/graph_search.cpp.o.d"
  "CMakeFiles/wknng_core.dir/incremental.cpp.o"
  "CMakeFiles/wknng_core.dir/incremental.cpp.o.d"
  "CMakeFiles/wknng_core.dir/knn_set.cpp.o"
  "CMakeFiles/wknng_core.dir/knn_set.cpp.o.d"
  "CMakeFiles/wknng_core.dir/leaf_knn.cpp.o"
  "CMakeFiles/wknng_core.dir/leaf_knn.cpp.o.d"
  "CMakeFiles/wknng_core.dir/refine.cpp.o"
  "CMakeFiles/wknng_core.dir/refine.cpp.o.d"
  "CMakeFiles/wknng_core.dir/rp_forest.cpp.o"
  "CMakeFiles/wknng_core.dir/rp_forest.cpp.o.d"
  "CMakeFiles/wknng_core.dir/warp_brute_force.cpp.o"
  "CMakeFiles/wknng_core.dir/warp_brute_force.cpp.o.d"
  "libwknng_core.a"
  "libwknng_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wknng_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
