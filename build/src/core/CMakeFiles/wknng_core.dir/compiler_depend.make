# Empty compiler generated dependencies file for wknng_core.
# This may be replaced when dependencies are built.
