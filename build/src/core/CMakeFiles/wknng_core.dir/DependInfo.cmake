
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/builder.cpp" "src/core/CMakeFiles/wknng_core.dir/builder.cpp.o" "gcc" "src/core/CMakeFiles/wknng_core.dir/builder.cpp.o.d"
  "/root/repo/src/core/graph_metrics.cpp" "src/core/CMakeFiles/wknng_core.dir/graph_metrics.cpp.o" "gcc" "src/core/CMakeFiles/wknng_core.dir/graph_metrics.cpp.o.d"
  "/root/repo/src/core/graph_ops.cpp" "src/core/CMakeFiles/wknng_core.dir/graph_ops.cpp.o" "gcc" "src/core/CMakeFiles/wknng_core.dir/graph_ops.cpp.o.d"
  "/root/repo/src/core/graph_search.cpp" "src/core/CMakeFiles/wknng_core.dir/graph_search.cpp.o" "gcc" "src/core/CMakeFiles/wknng_core.dir/graph_search.cpp.o.d"
  "/root/repo/src/core/incremental.cpp" "src/core/CMakeFiles/wknng_core.dir/incremental.cpp.o" "gcc" "src/core/CMakeFiles/wknng_core.dir/incremental.cpp.o.d"
  "/root/repo/src/core/knn_set.cpp" "src/core/CMakeFiles/wknng_core.dir/knn_set.cpp.o" "gcc" "src/core/CMakeFiles/wknng_core.dir/knn_set.cpp.o.d"
  "/root/repo/src/core/leaf_knn.cpp" "src/core/CMakeFiles/wknng_core.dir/leaf_knn.cpp.o" "gcc" "src/core/CMakeFiles/wknng_core.dir/leaf_knn.cpp.o.d"
  "/root/repo/src/core/refine.cpp" "src/core/CMakeFiles/wknng_core.dir/refine.cpp.o" "gcc" "src/core/CMakeFiles/wknng_core.dir/refine.cpp.o.d"
  "/root/repo/src/core/rp_forest.cpp" "src/core/CMakeFiles/wknng_core.dir/rp_forest.cpp.o" "gcc" "src/core/CMakeFiles/wknng_core.dir/rp_forest.cpp.o.d"
  "/root/repo/src/core/warp_brute_force.cpp" "src/core/CMakeFiles/wknng_core.dir/warp_brute_force.cpp.o" "gcc" "src/core/CMakeFiles/wknng_core.dir/warp_brute_force.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wknng_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/wknng_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
