# Empty dependencies file for wknng_exact.
# This may be replaced when dependencies are built.
