file(REMOVE_RECURSE
  "libwknng_exact.a"
)
