file(REMOVE_RECURSE
  "CMakeFiles/wknng_exact.dir/brute_force.cpp.o"
  "CMakeFiles/wknng_exact.dir/brute_force.cpp.o.d"
  "CMakeFiles/wknng_exact.dir/recall.cpp.o"
  "CMakeFiles/wknng_exact.dir/recall.cpp.o.d"
  "libwknng_exact.a"
  "libwknng_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wknng_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
