#include "ivf/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "exact/brute_force.hpp"

namespace wknng::ivf {
namespace {

TEST(KMeans, ShapesAndAssignmentsAreValid) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(300, 8, 5, 0.05f, 3);
  KMeansParams params;
  params.clusters = 5;
  const KMeansResult r = kmeans(pool, pts, params);
  EXPECT_EQ(r.centroids.rows(), 5u);
  EXPECT_EQ(r.centroids.cols(), 8u);
  ASSERT_EQ(r.assignment.size(), 300u);
  for (std::uint32_t a : r.assignment) EXPECT_LT(a, 5u);
  EXPECT_GT(r.distance_evals, 0u);
}

TEST(KMeans, AssignmentIsNearestCentroid) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_uniform(200, 6, 7);
  KMeansParams params;
  params.clusters = 8;
  const KMeansResult r = kmeans(pool, pts, params);
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    const float own = exact::l2_sq(pts.row(i), r.centroids.row(r.assignment[i]));
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_GE(exact::l2_sq(pts.row(i), r.centroids.row(c)) + 1e-5f, own)
          << "point " << i << " cluster " << c;
    }
  }
}

TEST(KMeans, RecoversWellSeparatedClusters) {
  ThreadPool pool(2);
  data::DatasetSpec spec;
  spec.kind = data::DatasetKind::kClusters;
  spec.n = 400;
  spec.dim = 8;
  spec.clusters = 4;
  spec.cluster_spread = 1e-3f;
  spec.seed = 11;
  const FloatMatrix pts = data::generate(spec);

  KMeansParams params;
  params.clusters = 4;
  params.iterations = 15;
  const KMeansResult r = kmeans(pool, pts, params);

  // All points of one true cluster must map to the same centroid, and the
  // four true clusters to four distinct centroids.
  std::set<std::uint32_t> used;
  for (std::size_t truec = 0; truec < 4; ++truec) {
    const std::uint32_t rep = r.assignment[truec];  // point truec is in cluster truec
    for (std::size_t i = truec; i < 400; i += 4) {
      EXPECT_EQ(r.assignment[i], rep) << "point " << i;
    }
    used.insert(rep);
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(KMeans, InertiaDecreasesWithIterations) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(500, 10, 16, 0.2f, 13);
  KMeansParams p1;
  p1.clusters = 16;
  p1.iterations = 1;
  KMeansParams p10 = p1;
  p10.iterations = 12;
  EXPECT_LE(kmeans(pool, pts, p10).inertia, kmeans(pool, pts, p1).inertia);
}

TEST(KMeans, DeterministicForSameSeed) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_uniform(150, 5, 17);
  KMeansParams params;
  params.clusters = 6;
  const KMeansResult a = kmeans(pool, pts, params);
  const KMeansResult b = kmeans(pool, pts, params);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeans, NoEmptyClusters) {
  ThreadPool pool(2);
  // Heavily duplicated data tends to produce empty clusters; repair must fix.
  FloatMatrix pts(100, 3);
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t d = 0; d < 3; ++d) {
      pts(i, d) = (i < 95) ? 0.5f : static_cast<float>(i);
    }
  }
  KMeansParams params;
  params.clusters = 10;
  params.iterations = 5;
  const KMeansResult r = kmeans(pool, pts, params);
  std::vector<int> count(10, 0);
  for (std::uint32_t a : r.assignment) ++count[a];
  for (int c : count) EXPECT_GT(c, 0);
}

TEST(KMeans, ClustersEqualsNIsValid) {
  ThreadPool pool(1);
  const FloatMatrix pts = data::make_uniform(8, 3, 19);
  KMeansParams params;
  params.clusters = 8;
  params.iterations = 3;
  const KMeansResult r = kmeans(pool, pts, params);
  std::set<std::uint32_t> used(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(used.size(), 8u);
}

TEST(KMeans, RejectsBadClusterCount) {
  ThreadPool pool(1);
  const FloatMatrix pts = data::make_uniform(10, 3, 1);
  KMeansParams params;
  params.clusters = 0;
  EXPECT_THROW(kmeans(pool, pts, params), Error);
  params.clusters = 11;
  EXPECT_THROW(kmeans(pool, pts, params), Error);
}


TEST(KMeans, SeedSampleSubsamplingStillCovers) {
  // Seeding from a 50-point subsample must still give usable centroids.
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(400, 6, 8, 0.05f, 29);
  KMeansParams params;
  params.clusters = 8;
  params.seed_sample = 50;
  params.iterations = 10;
  const KMeansResult r = kmeans(pool, pts, params);
  std::vector<int> count(8, 0);
  for (std::uint32_t a : r.assignment) ++count[a];
  for (int c : count) EXPECT_GT(c, 0);
  EXPECT_LT(r.inertia / 400.0, 0.1);  // tight clusters recovered
}

TEST(KMeans, SingleClusterIsTheMean) {
  ThreadPool pool(1);
  const FloatMatrix pts = data::make_uniform(60, 4, 31);
  KMeansParams params;
  params.clusters = 1;
  params.iterations = 3;
  const KMeansResult r = kmeans(pool, pts, params);
  for (std::size_t d = 0; d < 4; ++d) {
    double mean = 0.0;
    for (std::size_t i = 0; i < 60; ++i) mean += pts(i, d);
    mean /= 60.0;
    EXPECT_NEAR(r.centroids(0, d), mean, 1e-4);
  }
}

TEST(KMeans, ZeroIterationsKeepsSeedCentroids) {
  ThreadPool pool(1);
  const FloatMatrix pts = data::make_uniform(40, 3, 37);
  KMeansParams params;
  params.clusters = 4;
  params.iterations = 0;
  const KMeansResult r = kmeans(pool, pts, params);
  EXPECT_EQ(r.centroids.rows(), 4u);
  // Seeds are actual points.
  for (std::size_t c = 0; c < 4; ++c) {
    bool is_a_point = false;
    for (std::size_t i = 0; i < 40 && !is_a_point; ++i) {
      is_a_point = exact::l2_sq(r.centroids.row(c), pts.row(i)) == 0.0f;
    }
    EXPECT_TRUE(is_a_point) << "centroid " << c;
  }
}

}  // namespace
}  // namespace wknng::ivf
