#include "ivf/ivf_flat.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "data/synthetic.hpp"
#include "exact/brute_force.hpp"
#include "exact/recall.hpp"

namespace wknng::ivf {
namespace {

TEST(IvfFlat, ListsPartitionThePointSet) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(400, 8, 10, 0.1f, 3);
  IvfParams params;
  params.nlist = 16;
  const IvfFlatIndex index = IvfFlatIndex::build(pool, pts, params);
  std::vector<int> seen(400, 0);
  for (std::size_t c = 0; c < index.nlist(); ++c) {
    for (std::uint32_t id : index.list(c)) {
      ASSERT_LT(id, 400u);
      ++seen[id];
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(IvfFlat, FullProbeIsExact) {
  // nprobe == nlist must return exactly the brute-force answer.
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_uniform(250, 6, 7);
  IvfParams params;
  params.nlist = 10;
  const IvfFlatIndex index = IvfFlatIndex::build(pool, pts, params);
  const KnnGraph ivf_g = index.build_knng(pool, pts, 5, /*nprobe=*/10);
  const KnnGraph truth = exact::brute_force_knng(pool, pts, 5);
  EXPECT_EQ(exact::recall(ivf_g, truth), 1.0);
}

TEST(IvfFlat, RecallGrowsWithNprobe) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(800, 12, 20, 0.15f, 9);
  IvfParams params;
  params.nlist = 32;
  const IvfFlatIndex index = IvfFlatIndex::build(pool, pts, params);
  const KnnGraph truth = exact::brute_force_knng(pool, pts, 6);
  const double r1 = exact::recall(index.build_knng(pool, pts, 6, 1), truth);
  const double r4 = exact::recall(index.build_knng(pool, pts, 6, 4), truth);
  const double r32 = exact::recall(index.build_knng(pool, pts, 6, 32), truth);
  EXPECT_LE(r1, r4 + 1e-9);
  EXPECT_LE(r4, r32 + 1e-9);
  EXPECT_EQ(r32, 1.0);
}

TEST(IvfFlat, KnngExcludesSelf) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_uniform(150, 5, 11);
  IvfParams params;
  params.nlist = 8;
  const IvfFlatIndex index = IvfFlatIndex::build(pool, pts, params);
  const KnnGraph g = index.build_knng(pool, pts, 4, 8);
  for (std::size_t i = 0; i < 150; ++i) {
    for (const Neighbor& nb : g.row(i)) {
      if (nb.id == KnnGraph::kInvalid) break;
      EXPECT_NE(nb.id, i);
    }
  }
  EXPECT_TRUE(g.check_invariants());
}

TEST(IvfFlat, SeparateQueriesWork) {
  ThreadPool pool(2);
  const FloatMatrix base = data::make_clusters(300, 6, 6, 0.1f, 13);
  const FloatMatrix queries = data::make_clusters(20, 6, 6, 0.1f, 14);
  IvfParams params;
  params.nlist = 12;
  const IvfFlatIndex index = IvfFlatIndex::build(pool, base, params);
  const KnnGraph g = index.search(pool, base, queries, 3, 12);
  const KnnGraph truth = exact::brute_force_knn(pool, base, queries, 3);
  EXPECT_EQ(exact::recall(g, truth), 1.0);
}

TEST(IvfFlat, CostCountersArePopulated) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_uniform(200, 5, 17);
  IvfParams params;
  params.nlist = 8;
  IvfCost cost;
  const IvfFlatIndex index = IvfFlatIndex::build(pool, pts, params, &cost);
  EXPECT_GT(cost.distance_evals, 0u);
  EXPECT_GT(cost.train_seconds, 0.0);
  const std::uint64_t train_evals = cost.distance_evals;
  (void)index.build_knng(pool, pts, 4, 2, &cost);
  EXPECT_GT(cost.distance_evals, train_evals);
  EXPECT_GT(cost.search_seconds, 0.0);
}

TEST(IvfFlat, NprobeIsClampedToNlist) {
  ThreadPool pool(1);
  const FloatMatrix pts = data::make_uniform(100, 4, 19);
  IvfParams params;
  params.nlist = 4;
  const IvfFlatIndex index = IvfFlatIndex::build(pool, pts, params);
  EXPECT_NO_THROW((void)index.build_knng(pool, pts, 3, 1000));
  EXPECT_NO_THROW((void)index.build_knng(pool, pts, 3, 0));
}

TEST(IvfFlat, FewerProbesScanFewerPoints) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(600, 8, 12, 0.1f, 23);
  IvfParams params;
  params.nlist = 24;
  const IvfFlatIndex index = IvfFlatIndex::build(pool, pts, params);
  IvfCost c1, c8;
  (void)index.build_knng(pool, pts, 5, 1, &c1);
  (void)index.build_knng(pool, pts, 5, 8, &c8);
  EXPECT_LT(c1.distance_evals, c8.distance_evals);
}

}  // namespace
}  // namespace wknng::ivf
