#include "ivf/ivf_sq8.hpp"
#include "ivf/sq8.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "exact/brute_force.hpp"
#include "exact/recall.hpp"

namespace wknng::ivf {
namespace {

TEST(Sq8, ReconstructionErrorBoundedByHalfStep) {
  const FloatMatrix pts = data::make_uniform(200, 10, 3);
  const Sq8Matrix q = sq8_encode(pts);
  const FloatMatrix rec = sq8_decode(q);
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    for (std::size_t d = 0; d < pts.cols(); ++d) {
      EXPECT_LE(std::abs(rec(i, d) - pts(i, d)),
                q.codebook.scale[d] * 0.5f + 1e-6f)
          << "point " << i << " dim " << d;
    }
  }
}

TEST(Sq8, CodesUseTheFullRange) {
  const FloatMatrix pts = data::make_uniform(500, 4, 5);
  const Sq8Matrix q = sq8_encode(pts);
  for (std::size_t d = 0; d < 4; ++d) {
    std::uint8_t lo = 255, hi = 0;
    for (std::size_t i = 0; i < q.rows(); ++i) {
      lo = std::min(lo, q.row(i)[d]);
      hi = std::max(hi, q.row(i)[d]);
    }
    EXPECT_EQ(lo, 0);    // the minimum point maps to code 0
    EXPECT_EQ(hi, 255);  // the maximum point maps to code 255
  }
}

TEST(Sq8, ConstantDimensionRoundTripsExactly) {
  FloatMatrix pts(50, 3);
  for (std::size_t i = 0; i < 50; ++i) {
    pts(i, 0) = 7.25f;  // constant dim
    pts(i, 1) = static_cast<float>(i);
    pts(i, 2) = -1.0f * static_cast<float>(i);
  }
  const FloatMatrix rec = sq8_decode(sq8_encode(pts));
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_FLOAT_EQ(rec(i, 0), 7.25f);
  }
}

TEST(Sq8, AsymmetricDistanceMatchesDecodedDistance) {
  const FloatMatrix pts = data::make_uniform(60, 8, 7);
  const Sq8Matrix q = sq8_encode(pts);
  const FloatMatrix rec = sq8_decode(q);
  for (std::size_t i = 0; i < 10; ++i) {
    const float asym = sq8_l2_sq(pts.row(i), q.row(i + 20), q.codebook);
    const float decoded = exact::l2_sq(pts.row(i), rec.row(i + 20));
    EXPECT_NEAR(asym, decoded, 1e-3f * (decoded + 1.0f));
  }
}

TEST(Sq8, EncodeRejectsEmptyInput) {
  FloatMatrix empty;
  EXPECT_THROW(sq8_encode(empty), Error);
}

TEST(IvfSq8, QuartersTheVectorMemory) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_uniform(300, 16, 9);
  IvfParams params;
  params.nlist = 8;
  const IvfSq8Index index = IvfSq8Index::build(pool, pts, params);
  EXPECT_EQ(index.code_bytes(), 300u * 16u);  // 1 byte/dim vs 4 for float
}

TEST(IvfSq8, FullProbeNearlyMatchesExact) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(400, 12, 8, 0.1f, 11);
  IvfParams params;
  params.nlist = 8;
  const IvfSq8Index index = IvfSq8Index::build(pool, pts, params);
  const KnnGraph truth = exact::brute_force_knng(pool, pts, 5);
  const KnnGraph got = index.build_knng(pool, pts, 5, /*nprobe=*/8);
  // Quantization noise costs a little recall even at full probe.
  EXPECT_GT(exact::recall(got, truth), 0.9);
}

TEST(IvfSq8, RescoringRecoversQuantizationLoss) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_uniform(600, 16, 13);
  IvfParams params;
  params.nlist = 8;
  const IvfSq8Index index = IvfSq8Index::build(pool, pts, params);
  const KnnGraph truth = exact::brute_force_knng(pool, pts, 8);
  const double plain =
      exact::recall(index.build_knng(pool, pts, 8, 8, /*rescore=*/0), truth);
  const double rescored =
      exact::recall(index.build_knng(pool, pts, 8, 8, /*rescore=*/64), truth);
  EXPECT_GE(rescored + 1e-9, plain);
  EXPECT_GT(rescored, 0.99);  // full probe + rescoring ~= exact
}

TEST(IvfSq8, RecallGrowsWithNprobe) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(600, 10, 12, 0.1f, 17);
  IvfParams params;
  params.nlist = 16;
  const IvfSq8Index index = IvfSq8Index::build(pool, pts, params);
  const KnnGraph truth = exact::brute_force_knng(pool, pts, 6);
  const double r1 = exact::recall(index.build_knng(pool, pts, 6, 1), truth);
  const double r16 = exact::recall(index.build_knng(pool, pts, 6, 16), truth);
  EXPECT_LT(r1, r16);
}

TEST(IvfSq8, ExcludesSelfAndKeepsInvariants) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_uniform(200, 6, 19);
  IvfParams params;
  params.nlist = 4;
  const IvfSq8Index index = IvfSq8Index::build(pool, pts, params);
  const KnnGraph g = index.build_knng(pool, pts, 4, 4, 16);
  EXPECT_TRUE(g.check_invariants());
  for (std::size_t i = 0; i < 200; ++i) {
    for (const Neighbor& nb : g.row(i)) {
      if (nb.id == KnnGraph::kInvalid) break;
      EXPECT_NE(nb.id, i);
    }
  }
}

TEST(IvfSq8, CostCountersIncludeRescore) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_uniform(300, 8, 23);
  IvfParams params;
  params.nlist = 8;
  const IvfSq8Index index = IvfSq8Index::build(pool, pts, params);
  IvfCost plain, rescored;
  (void)index.build_knng(pool, pts, 5, 4, 0, &plain);
  (void)index.build_knng(pool, pts, 5, 4, 40, &rescored);
  EXPECT_GT(rescored.distance_evals, plain.distance_evals);
}

}  // namespace
}  // namespace wknng::ivf
