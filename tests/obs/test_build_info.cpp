// Build-info block: every field populated, JSON rendering valid, and the two
// info-style metrics (wknng_build_info, wknng_kernel_backend_info) present in
// both registry exports — the configuration provenance every artifact carries.
#include "obs/build_info.hpp"

#include <gtest/gtest.h>

#include <string>

#include "kernels/kernels.hpp"
#include "obs/registry.hpp"

namespace wknng::obs {
namespace {

TEST(BuildInfo, FieldsArePopulated) {
  const BuildInfo info = build_info();
  EXPECT_FALSE(info.version.empty());
  EXPECT_FALSE(info.git_describe.empty());
  EXPECT_FALSE(info.compiler.empty());
  // The backend string must be whatever dispatch actually resolved, so traces
  // and metrics record the kernel that produced them.
  EXPECT_EQ(info.kernel_backend,
            kernels::backend_name(kernels::active_backend()));
}

TEST(BuildInfo, ToJsonContainsEveryField) {
  BuildInfo info = build_info();
  info.race_env = "1";
  info.fault_env = "";
  const std::string j = to_json(info);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"version\":"), std::string::npos);
  EXPECT_NE(j.find("\"git_describe\":"), std::string::npos);
  EXPECT_NE(j.find("\"compiler\":"), std::string::npos);
  EXPECT_NE(j.find("\"kernel_backend\":"), std::string::npos);
  EXPECT_NE(j.find("\"sanitize\":"), std::string::npos);
  EXPECT_NE(j.find("\"race_env\":\"1\""), std::string::npos);
}

TEST(BuildInfo, RegistersInfoMetrics) {
  MetricsRegistry reg;
  register_build_info(reg, build_info());
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("wknng_build_info{"), std::string::npos) << prom;
  EXPECT_NE(prom.find("wknng_kernel_backend_info{backend=\""),
            std::string::npos);
  EXPECT_NE(prom.find("version=\""), std::string::npos);
  EXPECT_NE(prom.find("kernel_backend=\""), std::string::npos);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"wknng_build_info\":{\"kind\":\"info\""),
            std::string::npos);
}

TEST(BuildInfo, VersionStringsAreStable) {
  // Two calls agree — build info is static facts, not sampled state.
  const BuildInfo a = build_info();
  const BuildInfo b = build_info();
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.git_describe, b.git_describe);
  EXPECT_EQ(a.compiler, b.compiler);
  EXPECT_EQ(a.kernel_backend, b.kernel_backend);
}

}  // namespace
}  // namespace wknng::obs
