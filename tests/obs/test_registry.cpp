// Central metrics registry: registration semantics, both export formats,
// linked live instruments, and concurrent flush-vs-scrape safety (the
// sanitize-race job runs this binary under TSan). Also covers the two
// production registration entry points: core::register_build_metrics and
// serve::register_metrics.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/builder.hpp"
#include "data/synthetic.hpp"
#include "serve/metrics.hpp"

namespace wknng::obs {
namespace {

TEST(Registry, OwnedInstrumentsRoundTrip) {
  MetricsRegistry reg;
  Counter& c = reg.counter("wknng_test_total", "help text");
  Gauge& g = reg.gauge("wknng_test_gauge");
  Histogram& h = reg.histogram("wknng_test_hist", {1.0, 10.0});
  c.add(3);
  g.set(2.5);
  h.record(0.5);
  h.record(100.0);

  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# HELP wknng_test_total help text"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE wknng_test_total counter"), std::string::npos);
  EXPECT_NE(prom.find("wknng_test_total 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE wknng_test_gauge gauge"), std::string::npos);
  EXPECT_NE(prom.find("wknng_test_gauge 2.5"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE wknng_test_hist histogram"), std::string::npos);
  EXPECT_NE(prom.find("wknng_test_hist_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("wknng_test_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("wknng_test_hist_count 2"), std::string::npos);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"wknng_test_total\":{\"kind\":\"counter\",\"value\":3}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"wknng_test_hist\":{\"kind\":\"histogram\""),
            std::string::npos);
}

TEST(Registry, ReRequestReturnsSameInstrumentKindMismatchThrows) {
  MetricsRegistry reg;
  Counter& a = reg.counter("wknng_dup_total");
  Counter& b = reg.counter("wknng_dup_total");
  EXPECT_EQ(&a, &b);
  a.add(1);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_THROW(reg.gauge("wknng_dup_total"), Error);
  EXPECT_THROW(reg.histogram("wknng_dup_total", {1.0}), Error);
}

TEST(Registry, RejectsInvalidNamesAndDuplicateLinks) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter(""), Error);
  EXPECT_THROW(reg.counter("9starts_with_digit"), Error);
  EXPECT_THROW(reg.counter("has space"), Error);
  EXPECT_THROW(reg.counter("has-dash"), Error);
  reg.counter("ok_name_total");
  Counter external;
  EXPECT_THROW(reg.link_counter("ok_name_total", external), Error);
}

TEST(Registry, LinkedInstrumentsExportLiveValues) {
  MetricsRegistry reg;
  Counter live;
  Histogram lat(latency_bounds_us());
  reg.link_counter("wknng_linked_total", live, "live counter");
  reg.link_histogram("wknng_linked_us", lat);

  live.add(7);
  lat.record(42.0);
  std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("wknng_linked_total 7"), std::string::npos);
  EXPECT_NE(prom.find("wknng_linked_us_count 1"), std::string::npos);

  // The registry holds a reference, not a copy: later updates show up in the
  // next scrape without re-registering.
  live.add(5);
  prom = reg.to_prometheus();
  EXPECT_NE(prom.find("wknng_linked_total 12"), std::string::npos);
}

TEST(Registry, GaugeFnEvaluatedAtScrapeTime) {
  MetricsRegistry reg;
  std::atomic<int> v{1};
  reg.gauge_fn("wknng_fn_gauge", [&v] { return static_cast<double>(v.load()); });
  EXPECT_NE(reg.to_prometheus().find("wknng_fn_gauge 1"), std::string::npos);
  v.store(9);
  EXPECT_NE(reg.to_prometheus().find("wknng_fn_gauge 9"), std::string::npos);
}

TEST(Registry, InfoMetricRendersLabelsInBothFormats) {
  MetricsRegistry reg;
  reg.info("wknng_test_info", {{"backend", "scalar"}, {"version", "1.0"}});
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(
      prom.find("wknng_test_info{backend=\"scalar\",version=\"1.0\"} 1"),
      std::string::npos)
      << prom;
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"backend\":\"scalar\""), std::string::npos);
}

TEST(Registry, JsonBlobSkippedByPrometheus) {
  MetricsRegistry reg;
  reg.json_blob("build_stats", "{\"distance_evals\":10}");
  EXPECT_EQ(reg.to_prometheus(), "");
  EXPECT_NE(reg.to_json().find("\"build_stats\":{\"kind\":\"json\",\"data\":"
                               "{\"distance_evals\":10}}"),
            std::string::npos);
}

// Prometheus self-consistency under concurrent writes: _count must equal the
// +Inf bucket because both are derived from one bucket snapshot.
TEST(Registry, HistogramScrapeSelfConsistentUnderConcurrentWrites) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("wknng_hot_us", latency_bounds_us());
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&h, &stop, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        h.record(static_cast<double>((i++ * 37 + t) % 5000));
      }
    });
  }
  for (int scrape = 0; scrape < 50; ++scrape) {
    const std::string prom = reg.to_prometheus();
    const auto inf_pos = prom.find("_bucket{le=\"+Inf\"} ");
    ASSERT_NE(inf_pos, std::string::npos);
    const std::string inf_count = prom.substr(
        inf_pos + 19, prom.find('\n', inf_pos) - inf_pos - 19);
    const auto count_pos = prom.find("wknng_hot_us_count ");
    ASSERT_NE(count_pos, std::string::npos);
    const std::string total = prom.substr(
        count_pos + 19, prom.find('\n', count_pos) - count_pos - 19);
    EXPECT_EQ(inf_count, total) << prom;
    (void)reg.to_json();  // JSON scrape must also be safe concurrently
  }
  stop.store(true);
  for (auto& th : writers) th.join();
}

TEST(Registry, ConcurrentRegistrationIsSerialized) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < 50; ++i) {
        reg.counter("wknng_shared_total").add(1);
        reg.counter("wknng_t" + std::to_string(t) + "_total").add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("wknng_shared_total").value(), 200u);
  EXPECT_EQ(reg.size(), 5u);
}

// Registration racing a scrape: exports walk the entry list under the same
// mutex registration takes, so a scrape mid-registration must see a
// consistent prefix, never a torn entry (sanitize-race runs this).
TEST(Registry, ConcurrentRegisterWhileExporting) {
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::vector<std::thread> registrars;
  for (int t = 0; t < 3; ++t) {
    registrars.emplace_back([&reg, t, &stop] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string base =
            "wknng_race_t" + std::to_string(t) + "_" + std::to_string(i % 64);
        reg.counter(base + "_total").add(1);
        reg.gauge(base + "_gauge").set(static_cast<double>(i));
        reg.histogram(base + "_hist", {1.0, 10.0})
            .record(static_cast<double>(i % 20));
        try {
          reg.gauge_fn(base + "_fn", [] { return 1.0; });
        } catch (const Error&) {
          // Second lap over the rotating names: gauge_fn never aliases, so
          // the duplicate rejection itself races the scrape here.
        }
        ++i;
      }
    });
  }
  for (int scrape = 0; scrape < 100; ++scrape) {
    const std::string prom = reg.to_prometheus();
    EXPECT_EQ(std::count(prom.begin(), prom.end(), '\0'), 0);
    (void)reg.to_json();
    (void)reg.size();
  }
  stop.store(true);
  for (auto& th : registrars) th.join();
}

// Duplicate-name rejection must hold across every instrument kind, not just
// the owned counter/gauge/histogram trio.
TEST(Registry, DuplicateNameRejectedAcrossAllKinds) {
  Counter external_counter;
  Histogram external_hist(latency_bounds_us());
  const auto fresh_register = [&](MetricsRegistry& reg, int kind,
                                  const std::string& name) {
    switch (kind) {
      case 0: reg.counter(name); break;
      case 1: reg.gauge(name); break;
      case 2: reg.histogram(name, {1.0}); break;
      case 3: reg.link_counter(name, external_counter); break;
      case 4: reg.link_histogram(name, external_hist); break;
      case 5: reg.gauge_fn(name, [] { return 0.0; }); break;
      case 6: reg.info(name, {{"a", "b"}}); break;
      default: reg.json_blob(name, "{}"); break;
    }
  };
  for (int first = 0; first < 8; ++first) {
    for (int second = 0; second < 8; ++second) {
      // Re-requesting an owned instrument with its own kind aliases; every
      // other (kind, kind) pair on one name must throw.
      const bool aliasable = first == second && first <= 2;
      MetricsRegistry reg;
      fresh_register(reg, first, "wknng_kind_clash");
      if (aliasable) {
        fresh_register(reg, second, "wknng_kind_clash");
        EXPECT_EQ(reg.size(), 1u) << first << "/" << second;
      } else {
        EXPECT_THROW(fresh_register(reg, second, "wknng_kind_clash"), Error)
            << "kinds " << first << "/" << second << " did not throw";
      }
    }
  }
}

// Regression: the CLI registers build metrics and serve metrics into ONE
// registry. Both sides once tried to own `wknng_build_config_info`, and the
// second registration threw on the info-kind name clash — the combined
// export must stay legal.
TEST(Registry, BuildAndServeRegisterIntoOneRegistry) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(300, 8, 4, 0.1f, 11);
  core::BuildParams params;
  params.k = 4;
  params.num_trees = 2;
  params.refine_iters = 1;
  const core::BuildResult r = core::build_knng(pool, pts, params);

  serve::ServeMetrics m;
  m.enqueued.add(5);

  MetricsRegistry reg;
  core::register_build_metrics(reg, r);
  EXPECT_NO_THROW(serve::register_metrics(reg, m));
  // Registering the same serve metrics into the same registry twice is the
  // real double-registration shape; it must throw cleanly, not corrupt.
  EXPECT_THROW(serve::register_metrics(reg, m), Error);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("wknng_build_config_info"), std::string::npos);
  EXPECT_NE(prom.find("wknng_serve_enqueued_total 5"), std::string::npos);
}

TEST(Registry, BuildMetricsRegisterAfterRealBuild) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(400, 8, 6, 0.1f, 7);
  core::BuildParams params;
  params.k = 6;
  params.num_trees = 3;
  params.refine_iters = 1;
  const core::BuildResult r = core::build_knng(pool, pts, params);

  MetricsRegistry reg;
  core::register_build_metrics(reg, r);
  const std::string prom = reg.to_prometheus();
  for (const char* name :
       {"wknng_build_total_seconds", "wknng_build_forest_seconds",
        "wknng_build_leaf_seconds", "wknng_build_refine_seconds",
        "wknng_build_num_buckets", "wknng_build_distance_evals_total",
        "wknng_build_warps_executed_total",
        "wknng_build_faults_injected_total", "wknng_build_rounds_completed"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << "missing " << name;
  }
  // The substrate did real work; the counters must be nonzero.
  EXPECT_GT(r.stats.distance_evals, 0u);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"build_stats\":{\"kind\":\"json\""), std::string::npos);
}

TEST(Registry, ServeMetricsRegisterAndScrape) {
  serve::ServeMetrics m;
  m.enqueued.add(10);
  m.ok.add(9);
  m.latency_us.record(120.0);
  m.batch_size.record(4.0);

  MetricsRegistry reg;
  serve::register_metrics(reg, m);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("wknng_serve_enqueued_total 10"), std::string::npos);
  EXPECT_NE(prom.find("wknng_serve_ok_total 9"), std::string::npos);
  EXPECT_NE(prom.find("wknng_serve_latency_us_count 1"), std::string::npos);
  // Linked live: engine-side updates appear on the next scrape.
  m.enqueued.add(1);
  EXPECT_NE(reg.to_prometheus().find("wknng_serve_enqueued_total 11"),
            std::string::npos);
}

}  // namespace
}  // namespace wknng::obs
