// Flight recorder: ring semantics, verdict classification, slow-query
// promotion (memory + JSON-lines sink), recall back-fill, and the ambient
// install hook's zero/one-recorder contract.
#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace wknng::obs {
namespace {

FlightRecord make_record(std::uint64_t tag, double total_us,
                         std::uint8_t status = 0) {
  FlightRecord r;
  r.request_id = tag;
  r.tag = tag;
  r.snapshot_version = 7;
  r.span_id = 0xABCDEF;
  r.total_us = total_us;
  r.status = status;
  return r;
}

TEST(FlightRecorder, RingKeepsNewestCapacityRecords) {
  FlightOptions fo;
  fo.capacity = 4;
  FlightRecorder fr(fo);
  for (std::uint64_t i = 0; i < 10; ++i) fr.record(make_record(i, 100.0));
  EXPECT_EQ(fr.recorded(), 10u);
  const std::vector<FlightRecord> ring = fr.ring();
  ASSERT_EQ(ring.size(), 4u);
  // Oldest to newest: tags 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(ring[i].tag, 6 + i);
}

TEST(FlightRecorder, StatusVerdictsPromote) {
  FlightRecorder fr(FlightOptions{});
  fr.record(make_record(0, 10.0, 0));  // ok
  fr.record(make_record(1, 10.0, 1));  // timeout
  fr.record(make_record(2, 10.0, 2));  // shed
  fr.record(make_record(3, 10.0, 3));  // failed
  EXPECT_EQ(fr.promoted(), 3u);
  const std::vector<FlightRecord> slow = fr.slow_log();
  ASSERT_EQ(slow.size(), 3u);
  EXPECT_EQ(slow[0].verdict, FlightVerdict::kTimeout);
  EXPECT_EQ(slow[1].verdict, FlightVerdict::kShed);
  EXPECT_EQ(slow[2].verdict, FlightVerdict::kFailed);
}

TEST(FlightRecorder, SlowLatencyThresholdPromotes) {
  FlightOptions fo;
  fo.slow_latency_us = 1000.0;
  FlightRecorder fr(fo);
  fr.record(make_record(0, 500.0));
  fr.record(make_record(1, 1500.0));
  EXPECT_EQ(fr.promoted(), 1u);
  ASSERT_EQ(fr.slow_log().size(), 1u);
  EXPECT_EQ(fr.slow_log()[0].tag, 1u);
  EXPECT_EQ(fr.slow_log()[0].verdict, FlightVerdict::kSlow);
  // Threshold off (0): nothing latency-promotes.
  FlightRecorder off(FlightOptions{});
  off.record(make_record(0, 1e9));
  EXPECT_EQ(off.promoted(), 0u);
}

TEST(FlightRecorder, AnnotateRecallBackfillsAndPromotesLowRecall) {
  FlightOptions fo;
  fo.low_recall = 0.9;
  FlightRecorder fr(fo);
  fr.record(make_record(5, 100.0));
  fr.record(make_record(6, 100.0));
  EXPECT_TRUE(fr.annotate_recall(5, 0.95));  // fine: annotated, not promoted
  EXPECT_TRUE(fr.annotate_recall(6, 0.5));   // breach: promoted
  EXPECT_FALSE(fr.annotate_recall(99, 0.5)); // never recorded
  const std::vector<FlightRecord> ring = fr.ring();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_DOUBLE_EQ(ring[0].recall, 0.95);
  EXPECT_DOUBLE_EQ(ring[1].recall, 0.5);
  ASSERT_EQ(fr.slow_log().size(), 1u);
  EXPECT_EQ(fr.slow_log()[0].tag, 6u);
  EXPECT_EQ(fr.slow_log()[0].verdict, FlightVerdict::kLowRecall);
}

TEST(FlightRecorder, JsonLineCarriesJoinKeys) {
  FlightRecord r = make_record(42, 1234.5, 1);
  r.visits = 100;
  r.budget_rung = 2;
  r.escalations = 1;
  r.batch_size = 8;
  r.entry_keep = 4;
  r.verdict = FlightVerdict::kTimeout;
  r.queue_us = 10.5;
  const std::string line = FlightRecorder::to_json_line(r);
  EXPECT_NE(line.find("\"type\":\"flight\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"tag\":42"), std::string::npos);
  EXPECT_NE(line.find("\"snapshot_version\":7"), std::string::npos);
  EXPECT_NE(line.find("\"span_id\":\"0xabcdef\""), std::string::npos);
  EXPECT_NE(line.find("\"verdict\":\"timeout\""), std::string::npos);
  EXPECT_NE(line.find("\"visits\":100"), std::string::npos);
  EXPECT_NE(line.find("\"budget_rung\":2"), std::string::npos);
  EXPECT_NE(line.find("\"batch_size\":8"), std::string::npos);
}

TEST(FlightRecorder, PromotedRecordsLandInLogFile) {
  const std::string path = ::testing::TempDir() + "flight_sink.jsonl";
  {
    FlightOptions fo;
    fo.slow_latency_us = 100.0;
    fo.log_path = path;
    FlightRecorder fr(fo);
    fr.record(make_record(1, 50.0));   // not promoted
    fr.record(make_record(2, 500.0));  // promoted
    fr.flush();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_NE(line.find("\"type\":\"flight\""), std::string::npos);
    EXPECT_NE(line.find("\"tag\":2"), std::string::npos);
  }
  EXPECT_EQ(lines, 1u);
  std::remove(path.c_str());
}

TEST(ScopedFlightRecording, InstallsAndUninstalls) {
  EXPECT_EQ(active_flight_recorder(), nullptr);
  FlightRecorder fr(FlightOptions{});
  {
    ScopedFlightRecording scope(fr);
    EXPECT_EQ(active_flight_recorder(), &fr);
    FlightRecorder other(FlightOptions{});
    EXPECT_THROW(ScopedFlightRecording nested(other), Error);
    // The failed nest must not have clobbered the active recorder.
    EXPECT_EQ(active_flight_recorder(), &fr);
  }
  EXPECT_EQ(active_flight_recorder(), nullptr);
}

}  // namespace
}  // namespace wknng::obs
