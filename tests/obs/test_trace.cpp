// Span tracer: deterministic ids, Chrome trace-event JSON shape, and the
// end-to-end builder/serve integration — phase spans cover the build, span
// ids repeat exactly across identical builds, and tracing never perturbs the
// graph the deterministic schedule produces.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/builder.hpp"
#include "data/synthetic.hpp"
#include "serve/engine.hpp"
#include "support/temp_dir.hpp"

namespace wknng::obs {
namespace {

core::BuildParams small_params() {
  core::BuildParams p;
  p.k = 8;
  p.num_trees = 4;
  p.leaf_size = 48;
  p.refine_iters = 2;
  p.seed = 11;
  p.schedule.policy = simt::SchedulePolicy::kSequential;
  return p;
}

bool graphs_equal(const KnnGraph& a, const KnnGraph& b) {
  if (a.num_points() != b.num_points() || a.k() != b.k()) return false;
  for (std::size_t i = 0; i < a.num_points(); ++i) {
    const auto ra = a.row(i);
    const auto rb = b.row(i);
    for (std::size_t j = 0; j < a.k(); ++j) {
      if (ra[j].id != rb[j].id) return false;
      if (std::memcmp(&ra[j].dist, &rb[j].dist, sizeof(float)) != 0) {
        return false;
      }
    }
  }
  return true;
}

std::vector<TraceEvent> events_named(const Tracer& tr, const std::string& n) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : tr.events()) {
    if (e.name == n) out.push_back(e);
  }
  return out;
}

TEST(TraceIds, DeterministicAndSaltSeparated) {
  const std::uint64_t a = Tracer::span_id(1, 2, 3, SpanSalt::kLaunch);
  EXPECT_EQ(a, Tracer::span_id(1, 2, 3, SpanSalt::kLaunch));
  EXPECT_NE(a, Tracer::span_id(1, 2, 3, SpanSalt::kWarp));
  EXPECT_NE(a, Tracer::span_id(1, 2, 3, SpanSalt::kPhase));
  EXPECT_NE(a, Tracer::span_id(2, 1, 3, SpanSalt::kLaunch));
  EXPECT_NE(a, Tracer::span_id(1, 2, 4, SpanSalt::kLaunch));
  // The hash must spread consecutive indices: no two of the first 1000 launch
  // ids may collide.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(Tracer::span_id(0, i, 0, SpanSalt::kLaunch));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(TraceIds, NoWallClockInIds) {
  // Ids are pure functions of indices — two tracers constructed at different
  // times assign the same id to the same logical span.
  Tracer t1;
  Tracer t2;
  (void)t1;
  (void)t2;
  EXPECT_EQ(Tracer::span_id(5, 6, 7, SpanSalt::kServeBatch),
            Tracer::span_id(5, 6, 7, SpanSalt::kServeBatch));
}

TEST(Tracer, ChromeJsonShape) {
  Tracer tr;
  {
    Span s(&tr, "unit_phase", "phase", Tracer::span_id(0, 0, 0, SpanSalt::kPhase),
           kTrackBuild);
    s.arg_num("n", std::uint64_t{42});
    s.arg_str("label", "he\"llo");
  }
  tr.instant("marker", "test", kTrackBuild);
  const std::string json = tr.to_chrome_json();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);  // instant scope
  EXPECT_NE(json.find("\"n\":42"), std::string::npos);
  EXPECT_NE(json.find("he\\\"llo"), std::string::npos);  // escaped quote
  EXPECT_NE(json.find("\"span_id\":\"0x"), std::string::npos);
}

TEST(Tracer, NullTracerSpanIsNoOp) {
  Span s(nullptr, "ghost", "none", 1, 0);
  s.arg_num("x", 1.0);
  s.finish();  // must not crash; nothing to record anywhere
}

TEST(ScopedTracingTest, InstallUninstallAndNestingThrows) {
  EXPECT_EQ(active_tracer(), nullptr);
  Tracer tr;
  {
    ScopedTracing scope(tr);
    EXPECT_EQ(active_tracer(), &tr);
    Tracer inner;
    EXPECT_THROW(ScopedTracing nested(inner), Error);
    EXPECT_EQ(active_tracer(), &tr);  // failed install must not clobber
  }
  EXPECT_EQ(active_tracer(), nullptr);
}

TEST(BuildTrace, PhaseSpansCoverTheBuild) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(500, 12, 8, 0.1f, 3);
  Tracer tr;
  {
    ScopedTracing scope(tr);
    (void)core::build_knng(pool, pts, small_params());
  }
  ASSERT_GT(tr.event_count(), 0u);
  const auto build = events_named(tr, "build");
  ASSERT_EQ(build.size(), 1u);
  double phase_sum = 0.0;
  for (const char* name : {"forest", "leaf", "refine", "extract"}) {
    const auto spans = events_named(tr, name);
    ASSERT_EQ(spans.size(), 1u) << name;
    EXPECT_EQ(spans[0].tid, kTrackBuild);
    EXPECT_EQ(spans[0].cat, "phase");
    // Each phase nests inside the build root span.
    EXPECT_GE(spans[0].ts_us, build[0].ts_us);
    EXPECT_LE(spans[0].ts_us + spans[0].dur_us,
              build[0].ts_us + build[0].dur_us + 1.0);
    phase_sum += spans[0].dur_us;
  }
  // The four phases partition the build: their durations sum to the root
  // span within 5% (the acceptance bound CI enforces on real traces too).
  EXPECT_NEAR(phase_sum, build[0].dur_us, 0.05 * build[0].dur_us + 50.0);
  EXPECT_EQ(events_named(tr, "refine_round").size(), 2u);
  // Launch spans attribute to the launch track and exist for every phase.
  const auto launches = events_named(tr, "leaf_knn");
  ASSERT_GE(launches.size(), 1u);
  EXPECT_EQ(launches[0].tid, kTrackLaunch);
  // Exactly one of the two refine kernels runs, depending on refine_mode.
  EXPECT_GE(events_named(tr, "refine_local_join").size() +
                events_named(tr, "refine_expand").size(),
            1u);
  EXPECT_GE(events_named(tr, "rp_forest_level").size(), 1u);
}

TEST(BuildTrace, IdenticalBuildsProduceIdenticalSpanStructure) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(400, 10, 6, 0.1f, 9);
  using Key = std::tuple<std::string, std::string, std::uint64_t>;
  auto structure = [&]() {
    Tracer tr;
    {
      ScopedTracing scope(tr);
      (void)core::build_knng(pool, pts, small_params());
    }
    std::multiset<Key> keys;
    for (const TraceEvent& e : tr.events()) {
      keys.insert({e.name, e.cat, e.id});
    }
    return keys;
  };
  EXPECT_EQ(structure(), structure());
}

TEST(BuildTrace, TracingDoesNotPerturbTheGraph) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(600, 16, 8, 0.1f, 17);
  const core::BuildParams params = small_params();
  const KnnGraph off = core::build_knng(pool, pts, params).graph;
  Tracer tr(/*warp_spans=*/true);
  KnnGraph on = [&] {
    ScopedTracing scope(tr);
    return core::build_knng(pool, pts, params).graph;
  }();
  EXPECT_TRUE(graphs_equal(off, on));
  EXPECT_GT(tr.event_count(), 0u);
}

TEST(BuildTrace, WarpSpansGatedByFlag) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(300, 8, 5, 0.1f, 5);
  auto warp_events = [&](bool warp_spans) {
    Tracer tr(warp_spans);
    ScopedTracing scope(tr);
    (void)core::build_knng(pool, pts, small_params());
    std::size_t n = 0;
    for (const TraceEvent& e : tr.events()) {
      if (e.cat == "warp") ++n;
    }
    return n;
  };
  EXPECT_EQ(warp_events(false), 0u);
  EXPECT_GT(warp_events(true), 0u);
}

TEST(BuildTrace, BuilderOwnedTracerWritesFile) {
  const auto dir = wknng::testing::unique_test_dir("wknng_trace_test");
  const std::string path = (dir / "trace.json").string();
  {
    ThreadPool pool(2);
    const FloatMatrix pts = data::make_clusters(300, 8, 5, 0.1f, 5);
    core::BuildParams params = small_params();
    params.obs.trace_path = path;
    ASSERT_EQ(active_tracer(), nullptr);
    (void)core::build_knng(pool, pts, params);
    // The builder installed its own tracer and uninstalled it on the way out.
    EXPECT_EQ(active_tracer(), nullptr);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(content.find("\"name\":\"forest\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(BuildTrace, DisabledObsSuppressesSpans) {
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(300, 8, 5, 0.1f, 5);
  core::BuildParams params = small_params();
  params.obs.trace = false;  // participation off even with a tracer installed
  Tracer tr;
  {
    ScopedTracing scope(tr);
    (void)core::build_knng(pool, pts, params);
  }
  EXPECT_EQ(events_named(tr, "build").size(), 0u);
  EXPECT_EQ(events_named(tr, "forest").size(), 0u);
}

TEST(BuildTrace, CheckpointAndRestoreSpans) {
  const auto dir = wknng::testing::unique_test_dir("wknng_trace_ckpt");
  ThreadPool pool(2);
  const FloatMatrix pts = data::make_clusters(400, 10, 6, 0.1f, 21);
  core::BuildParams params = small_params();
  params.checkpoint_path = (dir / "build.ckpt").string();

  Tracer tr;
  {
    ScopedTracing scope(tr);
    (void)core::build_knng(pool, pts, params);
  }
  // One checkpoint after leaf (round 0) plus one per refine round.
  EXPECT_GE(events_named(tr, "checkpoint").size(), 2u);

  Tracer tr2;
  {
    ScopedTracing scope(tr2);
    core::KnngBuilder builder(pool, params);
    (void)builder.resume(pts, params.checkpoint_path);
  }
  const auto restore = events_named(tr2, "restore");
  ASSERT_EQ(restore.size(), 1u);
  EXPECT_EQ(events_named(tr2, "forest").size(), 0u);  // skipped on resume
  std::filesystem::remove_all(dir);
}

TEST(ServeTrace, BatchSpansRecorded) {
  ThreadPool pool(4);
  const FloatMatrix base = data::make_clusters(400, 8, 6, 0.1f, 13);
  core::BuildParams bp;
  bp.k = 8;
  bp.num_trees = 4;
  bp.refine_iters = 1;
  const KnnGraph graph = core::build_knng(pool, base, bp).graph;

  Tracer tr;
  {
    ScopedTracing scope(tr);
    serve::ServeOptions so;
    so.max_batch = 4;
    so.max_delay_us = 200;
    so.workers = 2;
    so.search.k = 5;
    serve::ServeEngine engine(pool, so, serve::make_snapshot(1, base, graph));
    std::vector<std::future<serve::QueryResult>> futs;
    for (std::size_t qi = 0; qi < 16; ++qi) {
      const auto row = base.row(qi);
      futs.push_back(engine.submit({row.begin(), row.end()}, 0, qi));
    }
    for (auto& f : futs) (void)f.get();
    engine.stop();
  }
  const auto batches = events_named(tr, "serve_batch");
  ASSERT_GE(batches.size(), 1u);
  std::set<std::uint64_t> ids;
  for (const TraceEvent& e : batches) {
    EXPECT_EQ(e.tid, kTrackServe);
    EXPECT_EQ(e.cat, "serve");
    ids.insert(e.id);
  }
  EXPECT_EQ(ids.size(), batches.size());  // ids unique per batch ordinal
}

TEST(Tracer, WriteRejectsUnwritablePath) {
  Tracer tr;
  EXPECT_THROW(tr.write_chrome_json("/nonexistent_dir_xyz/trace.json"), Error);
}

}  // namespace
}  // namespace wknng::obs
