// Percentile edge-case contract of the shared fixed-bucket histogram
// (obs/metrics.hpp). These are regression tests for the hardened rules:
// empty -> 0, single sample -> the sample, overflow mass -> observed max,
// interpolation clamped to the observed max. ServeMetrics reports p50/p95/p99
// through this exact code path, so a wrong answer here is a wrong SLO report.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.hpp"

namespace wknng::obs {
namespace {

TEST(Histogram, EmptyReportsZeroEverywhere) {
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 0.0);
}

TEST(Histogram, SingleSampleIsExactAtEveryPercentile) {
  Histogram h({10.0, 20.0});
  h.record(7.0);
  // One sample: every percentile is that sample, not an interpolated point
  // inside the [0, 10] bucket.
  EXPECT_DOUBLE_EQ(h.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 7.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 7.0);
}

TEST(Histogram, AllSamplesInOverflowReportObservedMax) {
  Histogram h({1.0, 2.0});
  h.record(50.0);
  h.record(75.0);
  h.record(60.0);
  // The overflow bucket has no upper bound; the only honest answer is the
  // maximum actually observed — never an invented bound.
  EXPECT_DOUBLE_EQ(h.percentile(50), 75.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 75.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 75.0);
}

TEST(Histogram, InterpolationClampedToObservedMax) {
  Histogram h({10.0});
  for (int i = 0; i < 100; ++i) h.record(5.0);
  // All mass sits in [0, 10] but nothing above 5 was ever recorded: naive
  // interpolation would report up to 10 for high percentiles.
  EXPECT_LE(h.percentile(99), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
}

TEST(Histogram, PercentilesAreMonotoneAcrossBuckets) {
  Histogram h(latency_bounds_us());
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  double prev = 0.0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  EXPECT_LE(h.percentile(100), h.max_seen());
  EXPECT_NEAR(h.percentile(50), 500.0, 260.0);  // within one 1-2-5 bucket
}

TEST(Histogram, BucketCountsSnapshotSumsToCount) {
  Histogram h({1.0, 5.0, 25.0});
  const double samples[] = {0.5, 3.0, 4.0, 10.0, 100.0};
  for (double s : samples) h.record(s);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), h.bounds().size() + 1);  // + overflow
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  EXPECT_EQ(total, h.count());
  EXPECT_EQ(counts[0], 1u);  // 0.5
  EXPECT_EQ(counts[1], 2u);  // 3, 4
  EXPECT_EQ(counts[2], 1u);  // 10
  EXPECT_EQ(counts[3], 1u);  // 100 -> overflow
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), Error);
  EXPECT_THROW((Histogram({1.0, 1.0})), Error);
  EXPECT_THROW((Histogram({5.0, 2.0})), Error);
}

TEST(Histogram, BoundaryValuesLandInInclusiveBucket) {
  Histogram h({10.0, 20.0});
  h.record(10.0);  // inclusive upper bound -> first bucket
  const auto counts = h.bucket_counts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
}

TEST(Histogram, ConcurrentRecordsLoseNothing) {
  Histogram h(size_bounds(65536.0));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>((t * kPerThread + i) % 1000));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t total = 0;
  for (std::uint64_t c : h.bucket_counts()) total += c;
  EXPECT_EQ(total, h.count());
}

TEST(Histogram, ToJsonContainsSummaryFields) {
  Histogram h({10.0});
  h.record(3.0);
  h.record(100.0);
  const std::string j = h.to_json();
  EXPECT_NE(j.find("\"count\":2"), std::string::npos) << j;
  EXPECT_NE(j.find("\"p50\""), std::string::npos);
  EXPECT_NE(j.find("\"p99\""), std::string::npos);
  EXPECT_NE(j.find("\"le\":\"inf\""), std::string::npos);
}

}  // namespace
}  // namespace wknng::obs
