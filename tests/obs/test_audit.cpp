// Online recall auditor: counter-hashed sampling determinism, the exact
// ground-truth comparison (tombstones, external ids), the rolling estimate's
// confidence interval, and the SLO/flight wiring on completion.
#include "obs/audit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/matrix.hpp"
#include "obs/flight.hpp"
#include "obs/registry.hpp"
#include "obs/slo.hpp"

namespace wknng::obs {
namespace {

/// Rows on a line: row i = (i, 0, 0, ...), so exact neighbors of the origin
/// query are rows 0, 1, 2, ... in order.
std::shared_ptr<FloatMatrix> line_base(std::size_t n, std::size_t dim = 4) {
  auto m = std::make_shared<FloatMatrix>(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = m->row(i);
    std::fill(row.begin(), row.end(), 0.0f);
    row[0] = static_cast<float>(i);
  }
  return m;
}

AuditTarget target_of(const std::shared_ptr<FloatMatrix>& base,
                      std::uint64_t version = 1) {
  AuditTarget t;
  t.pin = base;
  t.base = base.get();
  t.version = version;
  return t;
}

TEST(AuditSampling, PureFunctionOfSeedFractionIndex) {
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(audit_should_sample(42, 0.3, i), audit_should_sample(42, 0.3, i));
  }
  EXPECT_FALSE(audit_should_sample(42, 0.0, 7));
  EXPECT_TRUE(audit_should_sample(42, 1.0, 7));
}

TEST(AuditSampling, FractionControlsRate) {
  std::size_t hits = 0;
  const std::size_t n = 20000;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (audit_should_sample(1234, 0.25, i)) ++hits;
  }
  const double rate = static_cast<double>(hits) / static_cast<double>(n);
  EXPECT_NEAR(rate, 0.25, 0.02);
  // A different seed draws a different (but equally sized) set.
  std::size_t same = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (audit_should_sample(1234, 0.25, i) &&
        audit_should_sample(99, 0.25, i)) {
      ++same;
    }
  }
  EXPECT_LT(same, hits);  // the sets are not identical
}

TEST(AuditExactRecall, PerfectServedSetScoresOne) {
  const auto base = line_base(20);
  const std::vector<float> query(4, 0.0f);
  const std::vector<std::uint32_t> served = {0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(
      RecallAuditor::exact_recall(target_of(base), query, served, 5), 1.0);
}

TEST(AuditExactRecall, MissesLowerTheScore) {
  const auto base = line_base(20);
  const std::vector<float> query(4, 0.0f);
  // Rows 10 and 11 are not in the exact top-5 {0..4}.
  const std::vector<std::uint32_t> served = {0, 1, 2, 10, 11};
  EXPECT_DOUBLE_EQ(
      RecallAuditor::exact_recall(target_of(base), query, served, 5), 0.6);
}

TEST(AuditExactRecall, TombstonedRowsExcludedFromTruth) {
  const auto base = line_base(20);
  const std::vector<float> query(4, 0.0f);
  // Tombstone rows 0 and 1: exact top-5 becomes {2,3,4,5,6}. The spans only
  // need to outlive the synchronous exact_recall call.
  std::vector<std::uint8_t> dead(20, 0);
  dead[0] = dead[1] = 1;
  AuditTarget t = target_of(base);
  t.exclude = dead;
  const std::vector<std::uint32_t> served = {2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(RecallAuditor::exact_recall(t, query, served, 5), 1.0);
  const std::vector<std::uint32_t> stale = {0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RecallAuditor::exact_recall(t, query, stale, 5), 0.6);
}

TEST(AuditExactRecall, ExternalIdsMapTruthIntoClientSpace) {
  const auto base = line_base(10);
  const std::vector<float> query(4, 0.0f);
  // Row r is externally known as r + 100.
  std::vector<std::uint32_t> ext;
  for (std::uint32_t r = 0; r < 10; ++r) ext.push_back(r + 100);
  AuditTarget t = target_of(base);
  t.external_ids = ext;
  const std::vector<std::uint32_t> served = {100, 101, 102};
  EXPECT_DOUBLE_EQ(RecallAuditor::exact_recall(t, query, served, 3), 1.0);
  // Raw internal ids no longer match.
  const std::vector<std::uint32_t> internal = {0, 1, 2};
  EXPECT_DOUBLE_EQ(RecallAuditor::exact_recall(t, query, internal, 3), 0.0);
}

TEST(RecallAuditor, AuditsSubmittedQueriesAndEstimates) {
  const auto base = line_base(50);
  AuditOptions ao;
  ao.fraction = 1.0;
  ao.k = 5;
  RecallAuditor auditor(ao);
  // 8 perfect samples, 2 with recall 0.6.
  for (std::uint64_t i = 0; i < 10; ++i) {
    std::vector<std::uint32_t> served =
        i < 8 ? std::vector<std::uint32_t>{0, 1, 2, 3, 4}
              : std::vector<std::uint32_t>{0, 1, 2, 30, 31};
    ASSERT_TRUE(auditor.submit(i, std::vector<float>(4, 0.0f),
                               std::move(served), target_of(base)));
  }
  auditor.drain();
  EXPECT_EQ(auditor.submitted(), 10u);
  EXPECT_EQ(auditor.completed(), 10u);
  EXPECT_EQ(auditor.dropped(), 0u);

  const AuditEstimate est = auditor.estimate();
  EXPECT_EQ(est.audited, 10u);
  EXPECT_NEAR(est.recall, (8.0 * 1.0 + 2.0 * 0.6) / 10.0, 1e-12);
  // 95% normal CI over the per-sample recalls.
  const double mean = est.recall;
  const double var =
      (8.0 * (1.0 - mean) * (1.0 - mean) + 2.0 * (0.6 - mean) * (0.6 - mean)) /
      10.0;
  EXPECT_NEAR(est.ci_halfwidth, 1.96 * std::sqrt(var / 10.0), 1e-12);

  // The per-sample log carries (index, version, recall) for offline joins.
  const std::vector<AuditSample> samples = auditor.samples();
  ASSERT_EQ(samples.size(), 10u);
  EXPECT_EQ(samples[0].version, 1u);
}

TEST(RecallAuditor, FeedsSloTrackerAndFlightRecorder) {
  const auto base = line_base(30);
  SloTrackerOptions so;
  so.objective.min_recall = 0.9;
  SloTracker slo(so);
  FlightOptions fo;
  fo.low_recall = 0.9;
  FlightRecorder flight(fo);
  ScopedFlightRecording scope(flight);

  AuditOptions ao;
  ao.fraction = 1.0;
  ao.k = 5;
  RecallAuditor auditor(ao);
  auditor.attach_slo(&slo);

  FlightRecord rec;
  rec.tag = 3;
  flight.record(rec);

  ASSERT_TRUE(auditor.submit(3, std::vector<float>(4, 0.0f), {0, 1, 20, 21, 22},
                             target_of(base)));
  auditor.drain();
  // recall 0.4 reached the tracker's recall window...
  EXPECT_GT(slo.recall_burn(true), 0.0);
  // ...and the flight record was back-filled + promoted as low_recall.
  ASSERT_EQ(flight.slow_log().size(), 1u);
  EXPECT_EQ(flight.slow_log()[0].verdict, FlightVerdict::kLowRecall);
  EXPECT_DOUBLE_EQ(flight.ring().back().recall, 0.4);
}

TEST(RecallAuditor, QueueFullDropsAreCounted) {
  const auto base = line_base(2000, 16);
  AuditOptions ao;
  ao.fraction = 1.0;
  ao.k = 10;
  ao.queue_capacity = 2;
  RecallAuditor auditor(ao);
  std::size_t accepted = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    if (auditor.submit(i, std::vector<float>(16, 0.5f), {0, 1, 2},
                       target_of(base))) {
      ++accepted;
    }
  }
  auditor.drain();
  EXPECT_EQ(accepted + auditor.dropped(), 200u);
  EXPECT_EQ(auditor.completed(), accepted);
  // Capacity 2 against a slow exact scan cannot absorb 200 fast submits.
  EXPECT_GT(auditor.dropped(), 0u);
}

TEST(RecallAuditor, RegisterAuditMetricsExportsGauges) {
  AuditOptions ao;
  ao.fraction = 0.5;
  RecallAuditor auditor(ao);
  MetricsRegistry reg;
  register_audit_metrics(reg, auditor);
  const std::string prom = reg.to_prometheus();
  for (const char* name :
       {"wknng_slo_recall_estimate", "wknng_slo_recall_ci_halfwidth",
        "wknng_slo_audited_total", "wknng_slo_audit_dropped_total",
        "wknng_slo_audit_fraction"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << "missing " << name;
  }
  EXPECT_NE(prom.find("wknng_slo_audit_fraction 0.5"), std::string::npos);
}

}  // namespace
}  // namespace wknng::obs
