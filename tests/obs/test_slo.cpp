// Sliding-window aggregation and SLO burn-rate evaluation: era rotation,
// order-independence, late-record accounting, multi-window alert edges, and
// the bit-identical-replay contract the quality plane is built on.
#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "obs/registry.hpp"

namespace wknng::obs {
namespace {

TEST(WindowedHistogram, AggregatesWithinWindow) {
  WindowedHistogram w({4, 10}, {10.0, 100.0});
  for (std::uint64_t t = 0; t < 20; ++t) {
    w.record(t, static_cast<double>(t));
  }
  const WindowStats s = w.stats();
  EXPECT_EQ(s.count, 20u);
  EXPECT_DOUBLE_EQ(s.sum, 190.0);
  EXPECT_DOUBLE_EQ(s.mean, 9.5);
  EXPECT_DOUBLE_EQ(s.max, 19.0);
  EXPECT_EQ(w.late_drops(), 0u);
}

TEST(WindowedHistogram, RotationEvictsOldEras) {
  WindowedHistogram w({2, 10}, {10.0});  // window spans 20 ticks
  w.record(0, 1000.0);
  w.record(10, 5.0);
  EXPECT_EQ(w.stats().count, 2u);
  // Tick 20 reuses era-0's slot: the era-0 records must vanish.
  w.record(20, 7.0);
  const WindowStats s = w.stats();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.sum, 12.0);
}

TEST(WindowedHistogram, StatsExcludeErasOutsideWindow) {
  WindowedHistogram w({2, 10}, {10.0});
  w.record(0, 3.0);
  // Era 5 is far past era 0 + shards: the old shard still holds era-0 data
  // but stats() must not count it.
  w.record(50, 4.0);
  const WindowStats s = w.stats();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.sum, 4.0);
}

TEST(WindowedHistogram, LateRecordToRotatedSlotIsDroppedAndCounted) {
  WindowedHistogram w({2, 10}, {10.0});
  w.record(25, 1.0);  // era 2 in slot 0
  w.record(5, 99.0);  // era 0 targets slot 0, already superseded: dropped
  EXPECT_EQ(w.stats().count, 1u);
  EXPECT_EQ(w.late_drops(), 1u);
  EXPECT_DOUBLE_EQ(w.stats().max, 1.0);
}

// The aggregate is a pure function of the (tick, value) multiset: any
// permutation of in-window records yields bit-identical stats.
TEST(WindowedHistogram, OrderIndependentWithinWindow) {
  std::vector<std::pair<std::uint64_t, double>> events;
  for (std::uint64_t t = 100; t < 180; ++t) {
    events.push_back({t, static_cast<double>((t * 37) % 50)});
  }
  const auto run = [&](const auto& ordered) {
    WindowedHistogram w({8, 10}, {5.0, 20.0, 40.0});
    for (const auto& [t, v] : ordered) w.record(t, v);
    return w.stats();
  };
  const WindowStats base = run(events);
  std::mt19937 gen(7);
  for (int trial = 0; trial < 5; ++trial) {
    std::shuffle(events.begin(), events.end(), gen);
    const WindowStats s = run(events);
    EXPECT_EQ(s.count, base.count);
    EXPECT_EQ(s.sum, base.sum);        // bit-identical, not just close
    EXPECT_EQ(s.sum_sq, base.sum_sq);  // (same additions per shard)
    EXPECT_EQ(s.max, base.max);
    EXPECT_EQ(s.p50, base.p50);
    EXPECT_EQ(s.p99, base.p99);
  }
}

// Window percentiles share the cumulative Histogram's estimator, so the same
// samples produce the same values through either path.
TEST(WindowedHistogram, PercentilesMatchCumulativeHistogram) {
  const std::vector<double> bounds = latency_bounds_us();
  WindowedHistogram w({4, 64}, bounds);
  Histogram h(bounds);
  for (std::uint64_t t = 0; t < 200; ++t) {
    const double v = static_cast<double>((t * 13) % 900);
    w.record(t, v);
    h.record(v);
  }
  const WindowStats s = w.stats();
  EXPECT_EQ(s.p50, h.percentile(50));
  EXPECT_EQ(s.p95, h.percentile(95));
  EXPECT_EQ(s.p99, h.percentile(99));
}

TEST(WindowedRate, TracksHitFractionAndRotates) {
  WindowedRate r({2, 4});  // 8-tick window
  for (std::uint64_t t = 0; t < 8; ++t) r.record(t, t % 2 == 0);
  WindowedRate::Stats s = r.stats();
  EXPECT_EQ(s.events, 8u);
  EXPECT_EQ(s.hits, 4u);
  EXPECT_DOUBLE_EQ(s.rate, 0.5);
  // Rotating both shards with all-miss eras leaves a zero rate.
  for (std::uint64_t t = 8; t < 16; ++t) r.record(t, false);
  s = r.stats();
  EXPECT_EQ(s.events, 8u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_DOUBLE_EQ(s.rate, 0.0);
}

SloTrackerOptions latency_slo(double p99_us) {
  SloTrackerOptions o;
  o.objective.p99_latency_us = p99_us;
  o.objective.error_budget = 0.1;
  o.latency_rule.fast = {2, 8};
  o.latency_rule.slow = {4, 16};
  o.latency_rule.threshold = 2.0;
  o.latency_rule.min_events = 8;
  return o;
}

TEST(SloTracker, NoAlertWhileHealthy) {
  SloTracker t(latency_slo(1000.0));
  for (std::uint64_t i = 0; i < 200; ++i) {
    t.record_request(i, 100.0, RequestOutcome::kOk);
  }
  EXPECT_FALSE(t.alert_active(SloSignal::kLatency));
  EXPECT_EQ(t.alerts_fired(), 0u);
  EXPECT_EQ(t.requests_seen(), 200u);
  EXPECT_GT(t.latency_window().count, 0u);
}

TEST(SloTracker, BurnAlertRisesAndClears) {
  SloTracker t(latency_slo(1000.0));
  std::vector<SloAlert> seen;
  t.set_alert_callback([&](const SloAlert& a) { seen.push_back(a); });

  // Sustained breach: every request over the bound. Burn = 1.0/0.1 = 10x in
  // both windows once min_events is met.
  std::uint64_t tick = 0;
  for (; tick < 64; ++tick) {
    t.record_request(tick, 5000.0, RequestOutcome::kOk);
  }
  EXPECT_TRUE(t.alert_active(SloSignal::kLatency));
  ASSERT_FALSE(seen.empty());
  EXPECT_TRUE(seen.front().firing);
  EXPECT_EQ(seen.front().signal, SloSignal::kLatency);
  EXPECT_GE(seen.front().burn_fast, 2.0);
  EXPECT_GE(seen.front().burn_slow, 2.0);

  // Recovery: enough healthy eras to rotate the bad ones out of both windows.
  for (; tick < 200; ++tick) {
    t.record_request(tick, 100.0, RequestOutcome::kOk);
  }
  EXPECT_FALSE(t.alert_active(SloSignal::kLatency));
  EXPECT_FALSE(seen.back().firing);  // the clearing edge arrived
  EXPECT_EQ(t.alerts_fired(), seen.size());
}

TEST(SloTracker, ShedAndFailedCountAsBadEvents) {
  SloTracker t(latency_slo(1000.0));
  for (std::uint64_t i = 0; i < 64; ++i) {
    // Fast (under-bound) latency but shed: still a bad event.
    t.record_request(i, 10.0, RequestOutcome::kShed);
  }
  EXPECT_TRUE(t.alert_active(SloSignal::kLatency));
  EXPECT_DOUBLE_EQ(t.shed_window().rate, 1.0);
}

TEST(SloTracker, RecallSignalIndependentOfLatency) {
  SloTrackerOptions o;
  o.objective.min_recall = 0.9;
  o.objective.error_budget = 0.1;
  o.recall_rule.fast = {2, 8};
  o.recall_rule.slow = {4, 16};
  o.recall_rule.min_events = 8;
  SloTracker t(o);
  for (std::uint64_t i = 0; i < 64; ++i) t.record_recall(i, 0.5);
  EXPECT_TRUE(t.alert_active(SloSignal::kRecall));
  EXPECT_FALSE(t.alert_active(SloSignal::kLatency));
  // Latency objective is 0 = disabled: no latency burn no matter the values.
  for (std::uint64_t i = 0; i < 64; ++i) {
    t.record_request(i, 1e9, RequestOutcome::kOk);
  }
  EXPECT_DOUBLE_EQ(t.latency_burn(true), 0.0);
}

TEST(SloTracker, MinEventsGatesWarmup) {
  SloTrackerOptions o = latency_slo(1000.0);
  o.latency_rule.min_events = 1000;  // never enough events in this test
  SloTracker t(o);
  for (std::uint64_t i = 0; i < 64; ++i) {
    t.record_request(i, 5000.0, RequestOutcome::kOk);
  }
  EXPECT_FALSE(t.alert_active(SloSignal::kLatency));
  EXPECT_EQ(t.alerts_fired(), 0u);
}

// The replay contract: identical event streams produce bit-identical
// aggregates, burn rates, alert sequences, and JSON.
TEST(SloTracker, ReplayIsBitIdentical) {
  const auto run = [] {
    SloTracker t(latency_slo(500.0));
    std::vector<SloAlert> alerts;
    t.set_alert_callback([&](const SloAlert& a) { alerts.push_back(a); });
    for (std::uint64_t i = 0; i < 400; ++i) {
      const bool bad_phase = (i / 50) % 2 == 1;
      const double lat = bad_phase ? 2000.0 : 50.0;
      const RequestOutcome out =
          i % 97 == 0 ? RequestOutcome::kShed : RequestOutcome::kOk;
      t.record_request(i, lat, out, i % 13 == 0 ? 1 : 0);
      if (i % 4 == 0) t.record_batch(i / 4, 3 + (i % 5), 8);
      if (i % 7 == 0) t.record_recall(i, 0.8 + 0.01 * static_cast<double>(i % 20));
    }
    t.note_publication(3);
    return std::make_pair(t.to_json(), alerts);
  };
  const auto [json_a, alerts_a] = run();
  const auto [json_b, alerts_b] = run();
  EXPECT_EQ(json_a, json_b);
  ASSERT_EQ(alerts_a.size(), alerts_b.size());
  for (std::size_t i = 0; i < alerts_a.size(); ++i) {
    EXPECT_EQ(alerts_a[i].sequence, alerts_b[i].sequence);
    EXPECT_EQ(alerts_a[i].tick, alerts_b[i].tick);
    EXPECT_EQ(alerts_a[i].firing, alerts_b[i].firing);
    EXPECT_EQ(alerts_a[i].burn_fast, alerts_b[i].burn_fast);
    EXPECT_EQ(alerts_a[i].burn_slow, alerts_b[i].burn_slow);
  }
}

TEST(SloTracker, AlertLogCapacityDropsOldest) {
  SloTrackerOptions o = latency_slo(500.0);
  o.alert_log_capacity = 4;
  SloTracker t(o);
  // Alternate bad/good phases long enough to generate > 4 edges.
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const bool bad = (i / 40) % 2 == 0;
    t.record_request(i, bad ? 2000.0 : 10.0, RequestOutcome::kOk);
  }
  const std::vector<SloAlert> log = t.alert_log();
  EXPECT_LE(log.size(), 4u);
  EXPECT_GT(t.alerts_fired(), log.size());
  // The retained entries are the newest, still in sequence order.
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_GT(log[i].sequence, log[i - 1].sequence);
  }
}

TEST(SloTracker, PublicationsTracked) {
  SloTracker t;
  t.note_publication(5);
  t.note_publication(6);
  EXPECT_EQ(t.publications(), 2u);
  EXPECT_EQ(t.last_published_version(), 6u);
}

TEST(SloTracker, RegisterSloMetricsExportsGauges) {
  SloTracker t(latency_slo(1000.0));
  for (std::uint64_t i = 0; i < 32; ++i) {
    t.record_request(i, 100.0, RequestOutcome::kOk);
  }
  MetricsRegistry reg;
  register_slo_metrics(reg, t);
  const std::string prom = reg.to_prometheus();
  for (const char* name :
       {"wknng_slo_latency_p50_us", "wknng_slo_latency_p95_us",
        "wknng_slo_latency_p99_us", "wknng_slo_shed_ratio",
        "wknng_slo_escalation_ratio", "wknng_slo_batch_occupancy",
        "wknng_slo_latency_burn_fast", "wknng_slo_latency_burn_slow",
        "wknng_slo_recall_burn_fast", "wknng_slo_recall_burn_slow",
        "wknng_slo_latency_alert_active", "wknng_slo_recall_alert_active",
        "wknng_slo_alerts_total", "wknng_slo_snapshot_version",
        "wknng_slo_publications_total"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << "missing " << name;
  }
}

// Concurrent feeding + scraping must be race-free (sanitize-race runs this).
TEST(SloTracker, ConcurrentRecordAndScrape) {
  SloTracker t(latency_slo(500.0));
  std::vector<std::thread> feeders;
  std::atomic<bool> stop{false};
  for (int f = 0; f < 3; ++f) {
    feeders.emplace_back([&t, f, &stop] {
      std::uint64_t i = static_cast<std::uint64_t>(f) * 100000;
      while (!stop.load(std::memory_order_relaxed)) {
        t.record_request(i, static_cast<double>(i % 1000),
                         RequestOutcome::kOk);
        if (i % 5 == 0) t.record_recall(i, 0.9);
        ++i;
      }
    });
  }
  for (int s = 0; s < 50; ++s) {
    (void)t.to_json();
    (void)t.latency_window();
    (void)t.latency_burn(true);
    (void)t.alert_log();
  }
  stop.store(true);
  for (auto& th : feeders) th.join();
}

}  // namespace
}  // namespace wknng::obs
