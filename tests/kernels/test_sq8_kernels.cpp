// Tests of the SQ8 compressed-tier kernel rows (src/kernels/sq8.*): the
// differential layer (every SIMD backend against the serial reference and
// against each other), the per-backend bit-consistency contract across the
// one/batch/tile shapes and cached-vs-recomputed term caches, and the codec
// property layer (reconstruction bounds, degenerate dimensions, adversarial
// inputs, typed training errors, persistence round-trips).

#include "kernels/sq8.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/graph_io.hpp"
#include "ivf/sq8.hpp"
#include "kernels/kernels.hpp"

namespace wknng::kernels {
namespace {

// Dimensions straddling the SSE2 (16 codes/step) and AVX2 (32 codes/step)
// strides plus scalar-tail shapes.
const std::size_t kDims[] = {1, 3, 7, 15, 16, 17, 31, 32, 33, 100, 257};

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (const Backend b : {Backend::kScalar, Backend::kSse2, Backend::kAvx2}) {
    if (ops_for(b) != nullptr) out.push_back(b);
  }
  return out;
}

FloatMatrix random_rows(std::size_t n, std::size_t dim, std::uint64_t seed) {
  FloatMatrix m(n, dim);
  Rng rng(seed, 5);
  for (std::size_t r = 0; r < n; ++r) {
    for (float& v : m.row(r)) {
      v = static_cast<float>(rng.next_double() * 4.0 - 2.0);
    }
  }
  return m;
}

std::vector<const std::uint8_t*> code_ptrs(const Sq8Matrix& m) {
  std::vector<const std::uint8_t*> ptrs(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) ptrs[i] = m.row(i).data();
  return ptrs;
}

// --- Differential layer ----------------------------------------------------

// Every available backend's sq8_l2_one agrees with the serial dequantized
// reference to SIMD-reassociation tolerance, on every stride shape.
TEST(Sq8Differential, AllBackendsMatchReference) {
  for (const std::size_t dim : kDims) {
    const FloatMatrix pts = random_rows(24, dim, 0xD1F0 + dim);
    const Sq8Matrix m = sq8_encode(pts);
    const FloatMatrix queries = random_rows(6, dim, 0xD1F1 + dim);
    for (const Backend b : available_backends()) {
      const KernelOps* k = ops_for(b);
      ScopedBackend guard(b);
      std::vector<float> w;
      for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
        const Sq8Query q = sq8_prepare(queries.row(qi), m.codebook, w);
        for (std::size_t i = 0; i < m.rows(); ++i) {
          const float got = k->sq8_l2_one(q, m.row(i).data());
          const float want =
              sq8_l2_sq_ref(queries.row(qi), m.row(i), m.codebook);
          const float tol = 1e-3f * std::max(1.0f, std::abs(want));
          EXPECT_NEAR(got, want, tol)
              << backend_name(b) << " dim=" << dim << " q=" << qi
              << " row=" << i;
        }
      }
    }
  }
}

// The scalar backend is the strict reference: bit-identical to the
// pre-dispatch ivf::sq8_l2_sq accumulation, on every shape.
TEST(Sq8Differential, ScalarBitIdenticalToIvfReference) {
  for (const std::size_t dim : kDims) {
    const FloatMatrix pts = random_rows(16, dim, 0xABC0 + dim);
    const Sq8Matrix m = sq8_encode(pts);
    const FloatMatrix queries = random_rows(4, dim, 0xABC1 + dim);
    const KernelOps* k = ops_for(Backend::kScalar);
    std::vector<float> w;
    for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
      const Sq8Query q = sq8_prepare(queries.row(qi), m.codebook, w);
      for (std::size_t i = 0; i < m.rows(); ++i) {
        const float want = ivf::sq8_l2_sq(queries.row(qi), m.row(i),
                                          m.codebook);
        EXPECT_EQ(k->sq8_l2_one(q, m.row(i).data()), want)
            << "dim=" << dim << " q=" << qi << " row=" << i;
      }
    }
  }
}

// Available backends agree with each other (cross-ISA equivalence).
TEST(Sq8Differential, BackendsAgreePairwise) {
  const auto backends = available_backends();
  for (const std::size_t dim : {31u, 64u, 130u}) {
    const FloatMatrix pts = random_rows(20, dim, 0xC0DE + dim);
    const Sq8Matrix m = sq8_encode(pts);
    const FloatMatrix queries = random_rows(3, dim, 0xC1DE + dim);
    std::vector<float> w;
    for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
      const Sq8Query q = sq8_prepare(queries.row(qi), m.codebook, w);
      for (std::size_t i = 0; i < m.rows(); ++i) {
        const float ref = ops_for(backends[0])->sq8_l2_one(q, m.row(i).data());
        for (std::size_t bi = 1; bi < backends.size(); ++bi) {
          const float got =
              ops_for(backends[bi])->sq8_l2_one(q, m.row(i).data());
          EXPECT_NEAR(got, ref, 1e-3f * std::max(1.0f, std::abs(ref)))
              << backend_name(backends[bi]) << " vs "
              << backend_name(backends[0]) << " dim=" << dim;
        }
      }
    }
  }
}

// --- Per-backend bit-consistency across shapes -----------------------------

// Within one backend, one/batch/tile score the same (query, code row) pair
// to the same bits, with or without a term cache. This is the promise the
// packed-candidate dedup in the k-NN sets relies on.
TEST(Sq8BitConsistency, ShapesAgreeWithinEachBackend) {
  for (const Backend b : available_backends()) {
    const KernelOps* k = ops_for(b);
    ScopedBackend guard(b);
    for (const std::size_t dim : {7u, 32u, 100u}) {
      const FloatMatrix pts = random_rows(13, dim, 0xB17 + dim);
      const Sq8Matrix m = sq8_encode(pts);
      const std::vector<const std::uint8_t*> rows = code_ptrs(m);
      const std::vector<float> terms = sq8_code_terms(m);
      const FloatMatrix queries = random_rows(5, dim, 0xB18 + dim);

      std::vector<std::vector<float>> wbufs(queries.rows());
      std::vector<Sq8Query> prepared(queries.rows());
      for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
        prepared[qi] = sq8_prepare(queries.row(qi), m.codebook, wbufs[qi]);
      }

      // batch, with and without the cache, vs one-at-a-time.
      std::vector<float> batch_cached(m.rows());
      std::vector<float> batch_nocache(m.rows());
      for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
        k->sq8_l2_batch(prepared[qi], rows.data(), terms.data(), m.rows(),
                        batch_cached.data());
        k->sq8_l2_batch(prepared[qi], rows.data(), nullptr, m.rows(),
                        batch_nocache.data());
        for (std::size_t i = 0; i < m.rows(); ++i) {
          const float one = k->sq8_l2_one(prepared[qi], rows[i]);
          EXPECT_EQ(batch_cached[i], one)
              << backend_name(b) << " batch(cached) dim=" << dim;
          EXPECT_EQ(batch_nocache[i], one)
              << backend_name(b) << " batch(nocache) dim=" << dim;
        }
      }

      // tile (cached and uncached) vs one-at-a-time, including a padded ld.
      const std::size_t ld = m.rows() + 3;
      std::vector<float> tile(queries.rows() * ld, -1.0f);
      k->sq8_l2_tile(prepared.data(), prepared.size(), rows.data(),
                     terms.data(), m.rows(), tile.data(), ld);
      for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
        for (std::size_t i = 0; i < m.rows(); ++i) {
          EXPECT_EQ(tile[qi * ld + i], k->sq8_l2_one(prepared[qi], rows[i]))
              << backend_name(b) << " tile dim=" << dim;
        }
      }
      std::vector<float> tile2(queries.rows() * ld, -1.0f);
      k->sq8_l2_tile(prepared.data(), prepared.size(), rows.data(), nullptr,
                     m.rows(), tile2.data(), ld);
      EXPECT_EQ(tile, tile2) << backend_name(b) << " tile cache dim=" << dim;
    }
  }
}

// The term cache is built with the active backend's sq8_term accumulation.
TEST(Sq8BitConsistency, CodeTermsMatchPerRowAccumulation) {
  for (const Backend b : available_backends()) {
    ScopedBackend guard(b);
    const KernelOps* k = ops_for(b);
    const FloatMatrix pts = random_rows(9, 67, 0x7E53);
    const Sq8Matrix m = sq8_encode(pts);
    const std::vector<float> terms = sq8_code_terms(m);
    ASSERT_EQ(terms.size(), m.rows());
    for (std::size_t i = 0; i < m.rows(); ++i) {
      EXPECT_EQ(terms[i], k->sq8_term(m.codebook.scale.data(),
                                      m.row(i).data(), m.dim()))
          << backend_name(b) << " row " << i;
    }
  }
}

// Distances are never negative, even when the expanded form cancels badly
// (query exactly on a reconstructed point).
TEST(Sq8BitConsistency, SelfDistanceClampedNonNegative) {
  const FloatMatrix pts = random_rows(8, 48, 0xC1A);
  const Sq8Matrix m = sq8_encode(pts);
  const FloatMatrix recon = sq8_decode(m);
  for (const Backend b : available_backends()) {
    const KernelOps* k = ops_for(b);
    std::vector<float> w;
    for (std::size_t i = 0; i < m.rows(); ++i) {
      const Sq8Query q = sq8_prepare(recon.row(i), m.codebook, w);
      const float d = k->sq8_l2_one(q, m.row(i).data());
      EXPECT_GE(d, 0.0f) << backend_name(b) << " row " << i;
      EXPECT_LE(d, 1e-3f) << backend_name(b) << " row " << i;
    }
  }
}

// --- Codec property layer --------------------------------------------------

// Per-dimension reconstruction error is bounded by scale/2 (round-to-nearest
// onto a 255-step grid).
TEST(Sq8Codec, ReconstructionErrorWithinHalfScale) {
  for (const std::size_t dim : {5u, 33u, 96u}) {
    const FloatMatrix pts = random_rows(64, dim, 0x5EED + dim);
    const Sq8Matrix m = sq8_encode(pts);
    const FloatMatrix recon = sq8_decode(m);
    for (std::size_t i = 0; i < pts.rows(); ++i) {
      for (std::size_t d = 0; d < dim; ++d) {
        const float half = 0.5f * m.codebook.scale[d];
        // A hair of slack for the decode arithmetic itself.
        EXPECT_LE(std::abs(recon(i, d) - pts(i, d)),
                  half + 1e-6f * std::max(1.0f, std::abs(pts(i, d))))
            << "dim " << d << " row " << i;
      }
    }
  }
}

// A constant dimension gets scale exactly 0 and decodes bit-exactly.
TEST(Sq8Codec, ConstantDimensionIsExact) {
  FloatMatrix pts = random_rows(32, 8, 0xF1A7);
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    pts(i, 2) = 3.25f;    // exactly representable
    pts(i, 5) = -0.125f;  // exactly representable, negative
  }
  const Sq8Matrix m = sq8_encode(pts);
  EXPECT_EQ(m.codebook.scale[2], 0.0f);
  EXPECT_EQ(m.codebook.scale[5], 0.0f);
  const FloatMatrix recon = sq8_decode(m);
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    EXPECT_EQ(m.row(i)[2], 0);
    EXPECT_EQ(recon(i, 2), 3.25f);
    EXPECT_EQ(recon(i, 5), -0.125f);
  }
}

// Subnormal spreads and huge magnitudes encode without overflow/underflow
// surprises: codes stay in range and reconstruction stays finite and
// within the half-scale bound.
TEST(Sq8Codec, AdversarialMagnitudesStayFinite) {
  FloatMatrix pts(16, 4);
  Rng rng(0xADC, 1);
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    // dim 0: subnormal spread around 0.
    pts(i, 0) = static_cast<float>(rng.next_double() - 0.5) * 1e-41f;
    // dim 1: huge positive magnitudes.
    pts(i, 1) = 1e37f + static_cast<float>(rng.next_double()) * 1e37f;
    // dim 2: huge spread straddling zero.
    pts(i, 2) = static_cast<float>(rng.next_double() * 2.0 - 1.0) * 3e37f;
    // dim 3: ordinary values.
    pts(i, 3) = static_cast<float>(rng.next_double());
  }
  const Sq8Matrix m = sq8_encode(pts);
  const FloatMatrix recon = sq8_decode(m);
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_TRUE(std::isfinite(m.codebook.scale[d])) << "dim " << d;
    EXPECT_TRUE(std::isfinite(m.codebook.bias[d])) << "dim " << d;
  }
  std::vector<float> w;
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_TRUE(std::isfinite(recon(i, d))) << "row " << i << " dim " << d;
      EXPECT_LE(std::abs(recon(i, d) - pts(i, d)),
                0.5f * m.codebook.scale[d] * 1.0001f + 1e-6f)
          << "row " << i << " dim " << d;
    }
    // Squared distances between +-3e37 values overflow fp32 in exact math
    // too, so the property is relative: a backend may only return a
    // non-finite distance when the serial dequantized reference does.
    const Sq8Query q = sq8_prepare(pts.row(i), m.codebook, w);
    const float ref = sq8_l2_sq_ref(pts.row(i), m.row(0), m.codebook);
    for (const Backend b : available_backends()) {
      const float d = ops_for(b)->sq8_l2_one(q, m.row(0).data());
      if (std::isfinite(ref)) {
        EXPECT_TRUE(std::isfinite(d)) << backend_name(b) << " row " << i;
      }
    }
  }
}

// Training rejects the degenerate sets with the typed error.
TEST(Sq8Codec, TrainingRejectsDegenerateSets) {
  EXPECT_THROW(sq8_encode(FloatMatrix(0, 4)), Sq8TrainError);

  FloatMatrix nan_pts = random_rows(6, 4, 0xBAD);
  nan_pts(3, 1) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(sq8_encode(nan_pts), Sq8TrainError);

  FloatMatrix inf_pts = random_rows(6, 4, 0xBAE);
  inf_pts(0, 2) = std::numeric_limits<float>::infinity();
  EXPECT_THROW(sq8_encode(inf_pts), Sq8TrainError);

  FloatMatrix flat(5, 3);
  for (std::size_t i = 0; i < flat.rows(); ++i) {
    flat(i, 0) = 1.0f;
    flat(i, 1) = -2.0f;
    flat(i, 2) = 0.0f;
  }
  EXPECT_THROW(sq8_encode(flat), Sq8TrainError);

  // The typed error is still a wknng::Error (historical catch sites).
  EXPECT_THROW(sq8_encode(FloatMatrix(0, 4)), Error);
}

// Along one dimension, compressed distances are monotone in the code gap:
// moving the candidate code further from the query's position never brings
// the compressed distance down.
TEST(Sq8Codec, DistancesMonotoneInCodeGap) {
  FloatMatrix pts(256, 1);
  for (std::size_t i = 0; i < 256; ++i) {
    pts(i, 0) = static_cast<float>(i) * 0.5f - 60.0f;
  }
  const Sq8Matrix m = sq8_encode(pts);
  const float query[] = {pts(40, 0)};
  std::vector<float> w;
  const Sq8Query q = sq8_prepare({query, 1}, m.codebook, w);
  for (const Backend b : available_backends()) {
    const KernelOps* k = ops_for(b);
    float last = k->sq8_l2_one(q, m.row(40).data());
    for (std::size_t i = 41; i < 256; ++i) {
      const float d = k->sq8_l2_one(q, m.row(i).data());
      EXPECT_GE(d, last) << backend_name(b) << " ascending at " << i;
      last = d;
    }
    last = k->sq8_l2_one(q, m.row(40).data());
    for (std::size_t i = 40; i-- > 0;) {
      const float d = k->sq8_l2_one(q, m.row(i).data());
      EXPECT_GE(d, last) << backend_name(b) << " descending at " << i;
      last = d;
    }
  }
}

// --- Persistence -----------------------------------------------------------

TEST(Sq8Persistence, StandaloneFileRoundTrip) {
  const FloatMatrix pts = random_rows(37, 19, 0xF11E);
  const Sq8Matrix m = sq8_encode(pts);
  const std::string path = ::testing::TempDir() + "sq8_roundtrip.wksq8";
  data::write_sq8(path, m);
  const Sq8Matrix back = data::read_sq8(path);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.dim(), m.dim());
  EXPECT_EQ(back.codebook.bias, m.codebook.bias);
  EXPECT_EQ(back.codebook.scale, m.codebook.scale);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t d = 0; d < m.dim(); ++d) {
      ASSERT_EQ(back.row(i)[d], m.row(i)[d]) << "row " << i << " dim " << d;
    }
  }
  std::remove(path.c_str());
}

TEST(Sq8Persistence, CorruptFileRejected) {
  const FloatMatrix pts = random_rows(8, 5, 0xF11F);
  const Sq8Matrix m = sq8_encode(pts);
  const std::string path = ::testing::TempDir() + "sq8_corrupt.wksq8";
  data::write_sq8(path, m);
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputc('X', f);  // clobber the magic
    std::fclose(f);
  }
  EXPECT_THROW(data::read_sq8(path), Error);
  std::remove(path.c_str());
}

// Checkpoints with a compressed tier round-trip the codes through the
// optional trailer; checkpoints without stay readable (and reject a
// truncated trailer).
TEST(Sq8Persistence, CheckpointTrailerRoundTrip) {
  const FloatMatrix pts = random_rows(11, 6, 0xCB01);
  data::BuildCheckpoint c;
  c.signature = 0x1234567890ABCDEFULL;
  c.n = 11;
  c.k = 4;
  c.rounds_done = 2;
  c.effective_strategy = 1;
  c.quarantined = {3, 7};
  c.sets.assign(c.n * c.k, 0x0102030405060708ULL);
  c.sq8 = std::make_shared<const Sq8Matrix>(sq8_encode(pts));

  const std::string path = ::testing::TempDir() + "sq8_ckpt.wkcp";
  data::write_checkpoint(path, c);
  const data::BuildCheckpoint back = data::read_checkpoint(path);
  EXPECT_EQ(back.signature, c.signature);
  EXPECT_EQ(back.n, c.n);
  EXPECT_EQ(back.k, c.k);
  EXPECT_EQ(back.quarantined, c.quarantined);
  EXPECT_EQ(back.sets, c.sets);
  ASSERT_NE(back.sq8, nullptr);
  EXPECT_EQ(back.sq8->rows(), c.sq8->rows());
  EXPECT_EQ(back.sq8->dim(), c.sq8->dim());
  EXPECT_EQ(back.sq8->codebook.bias, c.sq8->codebook.bias);
  EXPECT_EQ(back.sq8->codebook.scale, c.sq8->codebook.scale);
  for (std::size_t i = 0; i < c.sq8->rows(); ++i) {
    for (std::size_t d = 0; d < c.sq8->dim(); ++d) {
      ASSERT_EQ(back.sq8->row(i)[d], c.sq8->row(i)[d]);
    }
  }

  // Classic checkpoint (no tier) still reads back with a null sq8.
  c.sq8 = nullptr;
  data::write_checkpoint(path, c);
  EXPECT_EQ(data::read_checkpoint(path).sq8, nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wknng::kernels
