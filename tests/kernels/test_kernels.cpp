// Tests of the runtime-dispatched distance-kernel backend (src/kernels):
// cross-ISA equivalence, the strict scalar backend's bit-exact accumulation
// contracts, norm-trick robustness on adversarial inputs, the WKNNG_KERNEL
// override round-trip, and the shared-core bit-consistency promise.

#include "kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/synthetic.hpp"

namespace wknng::kernels {
namespace {

// Dimensions straddling every vector-width boundary (SSE2 = 4, AVX2 = 8,
// warp = 32) plus scalar-tail shapes.
const std::size_t kDims[] = {1, 3, 7, 31, 32, 33, 100, 257};

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (const Backend b : {Backend::kScalar, Backend::kSse2, Backend::kAvx2}) {
    if (ops_for(b) != nullptr) out.push_back(b);
  }
  return out;
}

/// Serial direct-subtraction reference (the pre-dispatch baseline).
float ref_l2_serial(const float* x, const float* y, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t d = 0; d < dim; ++d) {
    const float diff = x[d] - y[d];
    acc += diff * diff;
  }
  return acc;
}

/// Lane-strided reference replicating simt::warp_l2_dims' accumulation.
float ref_l2_lanes(const float* x, const float* y, std::size_t dim) {
  float partial[32] = {};
  for (std::size_t d = 0; d < dim; ++d) {
    const float diff = x[d] - y[d];
    partial[d & 31] += diff * diff;
  }
  float acc = partial[0];
  for (std::size_t l = 1; l < 32; ++l) acc = acc + partial[l];
  return acc;
}

FloatMatrix random_rows(std::size_t n, std::size_t dim, std::uint64_t seed) {
  FloatMatrix m(n, dim);
  Rng rng(seed, 5);
  for (std::size_t r = 0; r < n; ++r) {
    for (float& v : m.row(r)) {
      v = static_cast<float>(rng.next_double() * 4.0 - 2.0);
    }
  }
  return m;
}

TEST(KernelDispatch, ScalarAlwaysAvailable) {
  ASSERT_NE(ops_for(Backend::kScalar), nullptr);
  EXPECT_EQ(ops_for(Backend::kScalar)->backend, Backend::kScalar);
}

TEST(KernelDispatch, BackendNamesRoundTrip) {
  EXPECT_EQ(backend_from_string("scalar"), Backend::kScalar);
  EXPECT_EQ(backend_from_string("strict"), Backend::kScalar);
  EXPECT_EQ(backend_from_string("sse2"), Backend::kSse2);
  EXPECT_EQ(backend_from_string("avx2"), Backend::kAvx2);
  EXPECT_EQ(backend_from_string("auto"), detect_backend());
  EXPECT_THROW(backend_from_string("sse9"), Error);
  for (const Backend b : available_backends()) {
    EXPECT_EQ(backend_from_string(backend_name(b)), b);
  }
}

TEST(KernelDispatch, ScopedBackendRestores) {
  const Backend before = active_backend();
  {
    ScopedBackend strict(Backend::kScalar);
    EXPECT_EQ(active_backend(), Backend::kScalar);
    EXPECT_TRUE(strict_mode());
  }
  EXPECT_EQ(active_backend(), before);
}

TEST(KernelDispatch, EnvOverrideRoundTrip) {
  // The dispatcher resolves WKNNG_KERNEL on first use in *this* process; a
  // child process is the honest way to exercise the env path end to end.
  // ops() is already resolved here, so spot-check parse errors instead, then
  // verify each runnable name through the string parser the env path uses.
  EXPECT_THROW(backend_from_string("neon"), Error);
  for (const Backend b : available_backends()) {
    const KernelOps* table = ops_for(backend_from_string(backend_name(b)));
    ASSERT_NE(table, nullptr);
    EXPECT_STREQ(table->name, backend_name(b));
  }
}

TEST(KernelStrict, L2OneMatchesLaneStridedReference) {
  const KernelOps& scalar = *ops_for(Backend::kScalar);
  for (const std::size_t dim : kDims) {
    const FloatMatrix m = random_rows(2, dim, 100 + dim);
    const float* x = m.row(0).data();
    const float* y = m.row(1).data();
    EXPECT_EQ(scalar.l2_one(x, y, dim), ref_l2_lanes(x, y, dim)) << dim;
  }
}

TEST(KernelStrict, SerialPrimitivesMatchSerialReference) {
  const KernelOps& scalar = *ops_for(Backend::kScalar);
  for (const std::size_t dim : kDims) {
    const FloatMatrix m = random_rows(3, dim, 200 + dim);
    const float* x = m.row(0).data();
    const float* y = m.row(1).data();
    const float ref = ref_l2_serial(x, y, dim);
    EXPECT_EQ(scalar.l2_serial(x, y, dim), ref) << dim;

    const float* rows[2] = {y, m.row(2).data()};
    float out[2];
    scalar.l2_batch(x, rows, nullptr, 2, dim, out);
    EXPECT_EQ(out[0], ref) << dim;

    float tile[2];
    scalar.l2_tile(&x, nullptr, 1, rows, nullptr, 2, dim, tile, 2);
    EXPECT_EQ(tile[0], ref) << dim;
    EXPECT_EQ(tile[1], out[1]) << dim;
  }
}

TEST(KernelEquivalence, AllBackendsAgreeWithinRelativeTolerance) {
  for (const Backend b : available_backends()) {
    const KernelOps& k = *ops_for(b);
    for (const std::size_t dim : kDims) {
      const FloatMatrix m = random_rows(8, dim, 300 + dim);
      for (std::size_t i = 0; i < 4; ++i) {
        const float* x = m.row(i).data();
        const float* y = m.row(i + 4).data();
        const float ref = ref_l2_serial(x, y, dim);
        const float tol = 1e-4f * std::max(1.0f, ref);
        EXPECT_NEAR(k.l2_one(x, y, dim), ref, tol) << k.name << " dim " << dim;
        EXPECT_NEAR(k.l2_serial(x, y, dim), ref, tol)
            << k.name << " dim " << dim;
      }
    }
  }
}

TEST(KernelEquivalence, SharedCoreBitConsistencyAcrossPrimitives) {
  // Within one backend, the same pair must produce identical bits through
  // l2_serial, l2_batch (cached and uncached norms) and l2_tile — the
  // packed-candidate dedup in the k-NN sets depends on it.
  for (const Backend b : available_backends()) {
    const KernelOps& k = *ops_for(b);
    for (const std::size_t dim : kDims) {
      const FloatMatrix m = random_rows(6, dim, 400 + dim);
      std::vector<float> norms(6);
      for (std::size_t r = 0; r < 6; ++r) {
        norms[r] = k.norm_sq(m.row(r).data(), dim);
      }
      const float* q = m.row(0).data();
      const float* rows[5];
      for (std::size_t r = 0; r < 5; ++r) rows[r] = m.row(r + 1).data();

      float cached[5];
      float uncached[5];
      k.l2_batch(q, rows, norms.data() + 1, 5, dim, cached);
      k.l2_batch(q, rows, nullptr, 5, dim, uncached);
      float tile[5];
      k.l2_tile(&q, norms.data(), 1, rows, norms.data() + 1, 5, dim, tile, 5);
      for (std::size_t r = 0; r < 5; ++r) {
        const float serial = k.l2_serial(q, rows[r], dim);
        EXPECT_EQ(cached[r], serial) << k.name << " dim " << dim;
        EXPECT_EQ(uncached[r], serial) << k.name << " dim " << dim;
        EXPECT_EQ(tile[r], serial) << k.name << " dim " << dim;
      }
    }
  }
}

TEST(KernelEquivalence, TileMatchesBatchOnLargeTiles) {
  // Exercise the register-blocked (4-wide) and remainder paths of l2_tile.
  for (const Backend b : available_backends()) {
    const KernelOps& k = *ops_for(b);
    const std::size_t dim = 48;
    const std::size_t na = 5;
    const std::size_t nb = 7;  // not a multiple of the 4-row block
    const FloatMatrix m = random_rows(na + nb, dim, 77);
    const float* a_rows[na];
    const float* b_rows[nb];
    for (std::size_t i = 0; i < na; ++i) a_rows[i] = m.row(i).data();
    for (std::size_t j = 0; j < nb; ++j) b_rows[j] = m.row(na + j).data();

    float tile[na * nb];
    k.l2_tile(a_rows, nullptr, na, b_rows, nullptr, nb, dim, tile, nb);
    for (std::size_t i = 0; i < na; ++i) {
      float batch[nb];
      k.l2_batch(a_rows[i], b_rows, nullptr, nb, dim, batch);
      for (std::size_t j = 0; j < nb; ++j) {
        EXPECT_EQ(tile[i * nb + j], batch[j]) << k.name << ' ' << i << ',' << j;
      }
    }
  }
}

TEST(KernelNormTrick, AdversarialInputsStayBoundedAndNonNegative) {
  // The norm trick loses relative accuracy when ||x - y||^2 << ||x||^2
  // (catastrophic cancellation); the contract is an *absolute* error bound
  // proportional to the norm magnitudes, plus a hard non-negativity clamp
  // (Packed::make requires dist >= 0).
  struct Case {
    const char* name;
    float base;
    float delta;
  };
  const Case cases[] = {
      {"large-magnitude", 1.0e18f, 1.0e12f},
      {"cancellation", 1.0e4f, 1.0e-3f},
      {"signed-zero", 0.0f, -0.0f},
      {"subnormal", 1.0e-40f, 1.0e-41f},
  };
  const std::size_t dim = 33;
  for (const Backend b : available_backends()) {
    const KernelOps& k = *ops_for(b);
    for (const Case& c : cases) {
      std::vector<float> x(dim, c.base);
      std::vector<float> y(dim, c.base + c.delta);
      const float nx = k.norm_sq(x.data(), dim);
      const float ny = k.norm_sq(y.data(), dim);
      for (const auto [p, q] :
           {std::pair{x.data(), y.data()}, std::pair{y.data(), x.data()}}) {
        const float d = k.l2_one(p, q, dim);
        ASSERT_TRUE(std::isfinite(d)) << k.name << ' ' << c.name;
        EXPECT_GE(d, 0.0f) << k.name << ' ' << c.name;
        const double strict = ref_l2_serial(p, q, dim);
        // c * eps * (||x||^2 + ||y||^2) with a generous constant.
        const double bound =
            64.0 * static_cast<double>(std::numeric_limits<float>::epsilon()) *
                (static_cast<double>(nx) + static_cast<double>(ny)) +
            1e-4 * strict;
        EXPECT_LE(std::abs(static_cast<double>(d) - strict), bound)
            << k.name << ' ' << c.name;
      }
    }
  }
}

TEST(KernelNormTrick, IdenticalPointsAreExactlyZero) {
  // nx + nx - 2*nx cancels exactly in float, so identical points must give
  // exactly 0 on every backend — tests (and the self-match convention)
  // rely on it.
  for (const Backend b : available_backends()) {
    const KernelOps& k = *ops_for(b);
    for (const std::size_t dim : kDims) {
      const FloatMatrix m = random_rows(1, dim, 500 + dim);
      const float* x = m.row(0).data();
      EXPECT_EQ(k.l2_one(x, x, dim), 0.0f) << k.name << " dim " << dim;
      EXPECT_EQ(k.l2_serial(x, x, dim), 0.0f) << k.name << " dim " << dim;
    }
  }
}

TEST(KernelNonFinite, FindsEveryNaNAndInfPosition) {
  for (const Backend b : available_backends()) {
    const KernelOps& k = *ops_for(b);
    for (const std::size_t dim : {1ul, 7ul, 8ul, 9ul, 64ul, 100ul}) {
      std::vector<float> v(dim, 0.5f);
      EXPECT_FALSE(k.has_nonfinite(v.data(), dim)) << k.name;
      for (const float bad : {std::numeric_limits<float>::quiet_NaN(),
                              std::numeric_limits<float>::infinity(),
                              -std::numeric_limits<float>::infinity()}) {
        for (std::size_t pos = 0; pos < dim; ++pos) {
          std::vector<float> w(v);
          w[pos] = bad;
          EXPECT_TRUE(k.has_nonfinite(w.data(), dim))
              << k.name << " dim " << dim << " pos " << pos;
        }
      }
      // Subnormals and big-but-finite values are NOT non-finite.
      v[dim / 2] = 1.0e-41f;
      v[0] = std::numeric_limits<float>::max();
      EXPECT_FALSE(k.has_nonfinite(v.data(), dim)) << k.name;
    }
  }
}

TEST(KernelNorms, CachedAndOnTheFlyNormsAgreeBitExactly) {
  for (const Backend b : available_backends()) {
    const KernelOps& k = *ops_for(b);
    ScopedBackend use(b);
    const FloatMatrix m = random_rows(9, 37, 901);
    const std::vector<float> cache = row_norms(m);
    ASSERT_EQ(cache.size(), 9u);
    for (std::size_t r = 0; r < 9; ++r) {
      EXPECT_EQ(cache[r], k.norm_sq(m.row(r).data(), 37)) << k.name;
    }
  }
}

}  // namespace
}  // namespace wknng::kernels
